#!/usr/bin/env bash
# Static hygiene gate for src/ (wired as `ctest -L lint`).
#
# Greps for banned patterns and, when clang-format is installed, checks
# formatting drift with --dry-run. Grep checks strip // comments first so
# prose like "the new element" never trips the allocator ban.
#
# Banned in library code (src/):
#   * raw new/delete outside containers — RAII or std containers only.
#     Exception: src/capi, where the C boundary owns the handle by contract.
#   * rand()/srand() and default-seeded / random_device-seeded engines —
#     every RNG must take an explicit seed (util/rng.hpp) so experiments
#     and property tests are reproducible.
#   * std::cout/std::cerr in library code — libraries return Status or take
#     an ostream; only examples/, bench/ and tools may print.
set -u
cd "$(dirname "$0")/.."

fail=0

# Library sources with // comments and string literals stripped (block
# comments in this codebase never hold code-like text; literals would
# false-positive on diagnostics that *mention* banned calls).
sources() {
  find src -name '*.hpp' -o -name '*.cpp' | sort
}
# Blank every backslash-escape pair first: without it, an escaped quote like
# "uses \"new\" here" leaves `s/"[^"]*"//g` misaligned — the \" closes the
# literal early and text that is really *inside* the string survives to trip
# the grep bans (or worse, hides real code between adjacent literals).
strip_noise() {
  sed -e 's/\\./ /g' -e 's/"[^"]*"//g' -e 's|//.*||' "$1"
}

# An unreadable source must fail the gate, not silently skip: sed would emit
# nothing for it, so every ban below would vacuously pass on that file.
for f in $(sources); do
  if [ ! -r "$f" ]; then
    echo "LINT: cannot read $f; refusing to lint a partial tree"
    fail=1
  fi
done
[ "$fail" -ne 0 ] && { echo "lint: FAILED"; exit 1; }

ban() {
  local pattern="$1" why="$2" exclude="${3:-^$}"
  local hits=""
  for f in $(sources); do
    case "$f" in
      $exclude) continue ;;
    esac
    local h
    h=$(strip_noise "$f" | grep -nE "$pattern" | sed "s|^|$f:|") || true
    [ -n "$h" ] && hits="$hits$h"$'\n'
  done
  if [ -n "$hits" ]; then
    echo "LINT: banned pattern ($why):"
    printf '%s' "$hits"
    fail=1
  fi
}

ban '(^|[^_[:alnum:]])new[[:space:]]+[_[:alnum:]:]+[[:space:]]*[({[]' \
    'raw new outside containers' 'src/capi/*'
ban '(^|[^_[:alnum:]])delete[[:space:]]+[_[:alnum:]]' \
    'raw delete outside containers' 'src/capi/*'
ban '(^|[^_[:alnum:]])s?rand[[:space:]]*\(' \
    'rand()/srand(): use the seeded util/rng.hpp Rng'
ban 'random_device' \
    'non-deterministic seeding: every Rng takes an explicit seed'
ban 'mt19937' \
    'direct engine use: go through the explicitly-seeded util/rng.hpp Rng' \
    'src/util/rng.hpp'
ban 'std::(cout|cerr)' \
    'stdout/stderr printing in library code (return Status instead)'

# Precision hygiene (DESIGN.md §14): the numeric stack is templated on its
# value type, and src/kernels/precision.hpp is the single file allowed to
# spell a concrete floating-point type. A raw `double` anywhere else under
# src/kernels/ re-hardwires FP64 behind the template's back — new code must
# use the template parameter V or the control-data aliases (flops_t,
# seconds_t, metric_t, tolerance_t). Lines containing `template` are exempt
# (explicit instantiations must name both widths), and a multi-line explicit
# instantiation (`template Status f<double>(...` wrapped by clang-format)
# stays exempt until its closing `;`.
prec_hits=""
for f in $(find src/kernels -name '*.hpp' -o -name '*.cpp' | sort); do
  [ "$f" = "src/kernels/precision.hpp" ] && continue
  h=$(strip_noise "$f" | awk '
    skip { if (index($0, ";")) skip = 0; next }
    /template/ {
      if ($0 ~ /^template [^<]/ && !index($0, ";")) skip = 1
      next
    }
    /(^|[^_[:alnum:]])double([^_[:alnum:]]|$)/ { printf "%d:%s\n", FNR, $0 }
  ' | sed "s|^|$f:|") || true
  [ -n "$h" ] && prec_hits="$prec_hits$h"$'\n'
done
if [ -n "$prec_hits" ]; then
  echo "LINT: raw double in src/kernels/ outside precision.hpp (use the" \
       "value-type template parameter or the control-data aliases):"
  printf '%s' "$prec_hits"
  fail=1
fi

# Snapshot wire-format gate: the checkpoint format constants and the tagged
# field registry must agree with tools/snapshot_format.lock. Growing or
# reordering fields without bumping the version would make old snapshot
# files misparse instead of being rejected; the lock forces the bump to be
# a conscious, reviewed edit in both places.
lock=tools/snapshot_format.lock
if [ -f "$lock" ]; then
  lock_version=$(sed -n 's/^version=//p' "$lock")
  lock_fields=$(sed -n 's/^fields=//p' "$lock")
  hdr_version=$(sed -n 's/.*kSnapshotFormatVersion = \([0-9]*\).*/\1/p' \
                    src/io/snapshot.hpp)
  hdr_fields=$(sed -n 's/.*kSnapshotFieldCount = \([0-9]*\).*/\1/p' \
                   src/io/snapshot.hpp)
  reg_fields=$(grep -c '^SNAPSHOT_FIELD(' src/io/snapshot.cpp)
  if [ "$hdr_version" != "$lock_version" ]; then
    echo "LINT: snapshot format version $hdr_version (src/io/snapshot.hpp)" \
         "disagrees with tools/snapshot_format.lock ($lock_version);" \
         "update the lock only together with a reviewed format change"
    fail=1
  fi
  if [ "$hdr_fields" != "$lock_fields" ] || [ "$reg_fields" != "$lock_fields" ]; then
    echo "LINT: snapshot field registry changed (header declares" \
         "$hdr_fields, registry has $reg_fields, lock records $lock_fields):" \
         "bump kSnapshotFormatVersion and tools/snapshot_format.lock together"
    fail=1
  fi
else
  echo "LINT: tools/snapshot_format.lock is missing"
  fail=1
fi

# StatusCode naming gate: every enumerator in util/status.hpp must have a
# `case StatusCode::kX:` in to_string. A code without a stable name prints
# as "unknown" in every diagnostic that reaches a user, so adding an
# enumerator forces extending the switch in the same edit.
status_hdr=src/util/status.hpp
enum_codes=$(sed -n '/^enum class StatusCode/,/^};/p' "$status_hdr" \
               | sed -e 's|//.*||' \
               | grep -oE '\bk[A-Z][A-Za-z0-9]*\b' | sort -u)
named_codes=$(sed -e 's|//.*||' "$status_hdr" \
               | grep -oE 'case StatusCode::k[A-Za-z0-9]+' \
               | sed 's/.*StatusCode:://' | sort -u)
missing=$(comm -23 <(printf '%s\n' "$enum_codes") \
                   <(printf '%s\n' "$named_codes"))
stale=$(comm -13 <(printf '%s\n' "$enum_codes") \
                 <(printf '%s\n' "$named_codes"))
if [ -n "$missing" ]; then
  echo "LINT: StatusCode enumerator(s) without a to_string case:" $missing
  fail=1
fi
if [ -n "$stale" ]; then
  echo "LINT: to_string names StatusCode(s) the enum no longer declares:" \
       $stale
  fail=1
fi

# C API error-code mapping gate: every StatusCode must also map to a
# pangulu_status in pangulu_c.cpp's set_status switch — a new code without a
# C mapping silently degrades to PANGULU_INTERNAL at the C boundary. kOk is
# handled by set_status's early is_ok() return, not a case label.
capi_src=src/capi/pangulu_c.cpp
capi_codes=$(sed -e 's|/\*.*\*/||' -e 's|//.*||' "$capi_src" \
               | grep -oE 'case StatusCode::k[A-Za-z0-9]+' \
               | sed 's/.*StatusCode:://' | sort -u)
capi_missing=$(comm -23 <(printf '%s\n' "$enum_codes" | grep -v '^kOk$') \
                        <(printf '%s\n' "$capi_codes"))
capi_stale=$(comm -13 <(printf '%s\n' "$enum_codes") \
                      <(printf '%s\n' "$capi_codes"))
if [ -n "$capi_missing" ]; then
  echo "LINT: StatusCode enumerator(s) without a C API mapping in" \
       "$capi_src:" $capi_missing
  fail=1
fi
if [ -n "$capi_stale" ]; then
  echo "LINT: $capi_src maps StatusCode(s) the enum no longer declares:" \
       $capi_stale
  fail=1
fi

# Header self-containment: every public header must compile standalone —
# include-what-you-use at the granularity that actually bites, since a header
# that leans on its includer's includes breaks the first new call site that
# includes it alone. Compiled with the same standard the build uses.
hdr_fail=0
while IFS= read -r h; do
  if ! printf '#include "%s"\n' "${h#src/}" \
       | c++ -std=c++20 -fsyntax-only -I src -x c++ - 2>/tmp/lint_hdr.$$; then
    echo "LINT: header $h is not self-contained:"
    sed 's/^/  /' /tmp/lint_hdr.$$
    hdr_fail=1
  fi
done < <(find src -name '*.hpp' | sort)
rm -f /tmp/lint_hdr.$$
[ "$hdr_fail" -ne 0 ] && fail=1

# Deeper static analysis, when the toolchain carries clang-tidy. The curated
# profile lives in .clang-tidy (zero-warning baseline; WarningsAsErrors '*').
# Prefer the build tree's real compile commands; fall back to the flags the
# build would use so the gate still runs on a clean checkout.
if command -v clang-tidy >/dev/null 2>&1; then
  tidy_db=""
  for d in build*/; do
    [ -f "${d}compile_commands.json" ] && tidy_db="${d%/}" && break
  done
  if [ -n "$tidy_db" ]; then
    tidy_cmd=(clang-tidy --quiet -p "$tidy_db")
    tidy_tail=()
  else
    tidy_cmd=(clang-tidy --quiet)
    tidy_tail=(-- -std=c++20 -Isrc)
  fi
  if ! "${tidy_cmd[@]}" $(find src -name '*.cpp' | sort) \
       "${tidy_tail[@]}" 2>/dev/null; then
    echo "LINT: clang-tidy reports findings (see above); the baseline is" \
         "zero warnings — fix or suppress with rationale in .clang-tidy"
    fail=1
  fi
else
  echo "note: clang-tidy not installed; static-analysis check skipped"
fi

# Formatting drift, when the toolchain carries clang-format.
if command -v clang-format >/dev/null 2>&1; then
  if ! clang-format --dry-run --Werror $(sources) 2>/dev/null; then
    echo "LINT: clang-format --dry-run reports drift (see above)"
    fail=1
  fi
else
  echo "note: clang-format not installed; formatting check skipped"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK ($(sources | wc -l) files checked)"
