// Scaling study — sweep the simulated cluster from 1 to 64 ranks on one
// matrix and print the strong-scaling curve of both solvers, the per-rank
// sync time, and the communication volume. A compact, single-matrix version
// of the Figure 12/13 benches that is handy for interactive exploration.
//
// Usage: scaling_study [matrix-name] [scale]
//   matrix-name: one of the 16 paper matrices (default: Ga41As41H72)
#include <iostream>
#include <string>

#include "baseline/supernodal.hpp"
#include "block/mapping.hpp"
#include "matgen/generators.hpp"
#include "ordering/reorder.hpp"
#include "runtime/sim.hpp"
#include "symbolic/fill.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pangulu;

  const std::string name = argc > 1 ? argv[1] : "Ga41As41H72";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.4;
  Csc a = matgen::paper_matrix(name, scale);
  std::cout << "scaling study on " << name << " stand-in (n=" << a.n_cols()
            << ", nnz=" << a.nnz() << ")\n";

  // Shared preprocessing.
  ordering::ReorderResult reorder;
  ordering::reorder(a, {}, &reorder).check();
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(reorder.permuted, &sym).check();
  const index_t bs = block::choose_block_size(a.n_cols(), sym.nnz_lu);
  block::BlockMatrix blocks = block::BlockMatrix::from_filled(sym.filled, bs);
  auto tasks = block::enumerate_tasks(blocks);
  const double flops = symbolic::factorization_flops(sym.filled);
  std::cout << "nnz(L+U)=" << sym.nnz_lu << " FLOPs=" << flops
            << " block size=" << bs << " (" << blocks.nb() << "^2 grid)\n\n";

  TextTable t({"ranks", "PanguLU GFLOPS", "efficiency", "sync (s)",
               "messages", "MiB sent", "baseline GFLOPS"});
  double gf1 = 0;
  for (rank_t ranks : {1, 2, 4, 8, 16, 32, 64}) {
    block::BlockMatrix bm = blocks;
    auto grid = block::ProcessGrid::make(ranks);
    auto map = block::balanced_mapping(bm, tasks, grid,
                                       block::cyclic_mapping(bm, grid), nullptr);
    runtime::SimOptions so;
    so.n_ranks = ranks;
    so.execute_numerics = false;
    runtime::SimResult res;
    runtime::simulate_factorization(bm, tasks, map, so, &res).check();
    const double gf = flops / res.makespan / 1e9;
    if (ranks == 1) gf1 = gf;

    baseline::SupernodalOptions bopts;
    bopts.n_ranks = ranks;
    bopts.execute_numerics = false;
    baseline::SupernodalSolver base;
    base.factorize(a, bopts).check();
    const double gfb =
        base.stats().flops_sparse / base.stats().sim.makespan / 1e9;

    t.add_row({std::to_string(ranks), TextTable::fmt(gf, 2),
               TextTable::fmt(100.0 * gf / (gf1 * ranks), 1) + "%",
               TextTable::fmt_sci(res.avg_sync),
               std::to_string(res.messages),
               TextTable::fmt(res.bytes / 1024.0 / 1024.0, 1),
               TextTable::fmt(gfb, 2)});
  }
  t.print(std::cout);
  return 0;
}
