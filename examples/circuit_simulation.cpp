// Circuit simulation scenario — the workload class (ASIC_680k-like) where
// the paper's regular 2D sparse blocking wins biggest over supernodal
// solvers. A transient analysis re-solves the same operator for many time
// steps: factorise once, then stream right-hand sides through solve().
// The example also factorises with the supernodal baseline to show the
// padded-storage and modeled-time gap on this matrix class.
#include <iostream>
#include <vector>

#include "baseline/supernodal.hpp"
#include "matgen/generators.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace pangulu;

  // Power-law netlist conductance matrix: irregular, unsymmetric.
  Csc g = matgen::circuit(/*n=*/4000, /*avg_degree=*/3.0, /*alpha=*/2.1,
                          /*seed=*/680);
  std::cout << "circuit matrix: n=" << g.n_cols() << " nnz=" << g.nnz()
            << "\n\n";

  solver::Options opts;
  opts.n_ranks = 4;  // simulate a 2x2 GPU grid
  solver::Solver pangu;
  Timer t;
  pangu.factorize(g, opts).check();
  std::cout << "PanguLU factorise: " << t.seconds() << "s wall, nnz(L+U)="
            << pangu.stats().nnz_lu << ", modeled numeric time on 4 GPUs: "
            << pangu.stats().sim.makespan << "s\n";

  baseline::SupernodalOptions bopts;
  bopts.n_ranks = 4;
  baseline::SupernodalSolver base;
  t.reset();
  base.factorize(g, bopts).check();
  std::cout << "supernodal baseline: " << t.seconds()
            << "s wall, stored nnz(L+U)=" << base.stats().nnz_lu_stored
            << " (" << TextTable::fmt(100.0 * base.stats().nnz_lu_stored /
                                          pangu.stats().nnz_lu - 100.0, 1)
            << "% padding vs PanguLU), modeled numeric time: "
            << base.stats().sim.makespan << "s\n\n";

  // Transient loop: 20 time steps. Every step changes the right-hand side;
  // every 5th step the conductances drift too (a Newton update), which only
  // needs refactorize() — the ordering/symbolic/blocking are frozen.
  Rng rng(7);
  Csc g_now = g;
  std::vector<value_t> x(static_cast<std::size_t>(g.n_cols()), 0.0);
  std::vector<value_t> b(static_cast<std::size_t>(g.n_rows()));
  double worst = 0.0;
  int refactors = 0;
  Timer loop_timer;
  for (int step = 0; step < 20; ++step) {
    if (step > 0 && step % 5 == 0) {
      for (auto& v : g_now.values_mut()) v *= (1.0 + 0.02 * rng.normal());
      pangu.refactorize(g_now).check();
      ++refactors;
    }
    for (auto& v : b) v = rng.normal();
    pangu.solve(b, x).check();
    worst = std::max(worst,
                     static_cast<double>(relative_residual(g_now, x, b)));
  }
  std::cout << "20 transient steps (" << refactors
            << " numeric-only refactorisations) in " << loop_timer.seconds()
            << "s wall; worst relative residual: " << worst << "\n";
  return 0;
}
