// Solve A x = b for a Matrix Market file — the same interface the original
// PanguLU artifact exposes (`numeric_file -F matrix.mtx`). The right-hand
// side is synthesised as A*ones unless a second file is given.
//
// Usage: matrix_market_solve <matrix.mtx> [ranks]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "io/matrix_market.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"

int main(int argc, char** argv) {
  using namespace pangulu;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <matrix.mtx> [ranks]\n";
    return 2;
  }
  Csc a;
  Status s = io::read_matrix_market_file(argv[1], &a);
  if (!s.is_ok()) {
    std::cerr << "failed to read " << argv[1] << ": " << s.message() << "\n";
    return 1;
  }
  if (a.n_rows() != a.n_cols()) {
    std::cerr << "matrix must be square (got " << a.n_rows() << "x"
              << a.n_cols() << ")\n";
    return 1;
  }
  std::cout << "read " << argv[1] << ": n=" << a.n_cols() << " nnz=" << a.nnz()
            << "\n";

  solver::Options opts;
  opts.n_ranks = argc > 2 ? std::atoi(argv[2]) : 1;
  solver::Solver solver;
  s = solver.factorize(a, opts);
  if (!s.is_ok()) {
    std::cerr << "factorisation failed: " << s.message() << "\n";
    return 1;
  }
  std::cout << "factorised: nnz(L+U)=" << solver.stats().nnz_lu
            << ", modeled numeric time on " << opts.n_ranks
            << " rank(s): " << solver.stats().sim.makespan << " s\n";

  std::vector<value_t> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(ones, b);
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  s = solver.solve(b, x);
  if (!s.is_ok()) {
    std::cerr << "solve failed: " << s.message() << "\n";
    return 1;
  }
  std::cout << "relative residual: " << relative_residual(a, x, b) << "\n";
  return 0;
}
