// Quickstart: build a sparse system, factorise it with PanguLU, solve, and
// check the residual. This is the smallest end-to-end use of the public API.
#include <iostream>
#include <vector>

#include "matgen/generators.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"

int main() {
  using namespace pangulu;

  // A 3D Poisson problem on a 12^3 grid (1728 unknowns).
  Csc a = matgen::grid3d_laplacian(12, 12, 12);
  std::cout << "matrix: n=" << a.n_cols() << " nnz=" << a.nnz() << "\n";

  // Right-hand side with a known solution of all-ones.
  std::vector<value_t> x_true(static_cast<std::size_t>(a.n_cols()), 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(a.n_rows()));
  a.spmv(x_true, b);

  // Factorise: reordering (MC64 + nested dissection), symbolic
  // factorisation, 2D blocking, numeric factorisation. Default options run
  // a single simulated rank with adaptive kernel selection.
  solver::Solver solver;
  solver.factorize(a, {}).check();

  const auto& st = solver.stats();
  std::cout << "factorised: nnz(L+U)=" << st.nnz_lu << " block size="
            << st.block_size << " (" << st.nb << "x" << st.nb
            << " blocks), " << st.n_tasks << " kernel tasks\n";
  std::cout << "phase times: reorder=" << st.reorder_seconds
            << "s symbolic=" << st.symbolic_seconds
            << "s preprocess=" << st.preprocess_seconds
            << "s numeric(wall)=" << st.numeric_wall_seconds << "s\n";

  // Solve and verify.
  std::vector<value_t> x(static_cast<std::size_t>(a.n_cols()));
  solver.solve(b, x).check();
  std::cout << "relative residual: " << relative_residual(a, x, b) << "\n";
  std::cout << "x[0]=" << x[0] << " (expect 1.0)\n";
  return 0;
}
