// Structural analysis scenario — an audikw_1-class 3D finite-element system
// with 3 degrees of freedom per node. This is the matrix class supernodal
// solvers handle best (large regular supernodes), so it is the stress test
// for PanguLU's claim that regular 2D sparse blocking stays competitive.
// The example factorises on a simulated 8-GPU cluster, reports the kernel
// mix the decision trees chose, and verifies the solution.
#include <iostream>
#include <map>
#include <vector>

#include "baseline/supernodal.hpp"
#include "matgen/generators.hpp"
#include "solver/solver.hpp"
#include "sparse/ops.hpp"

int main() {
  using namespace pangulu;

  // 7x7x7 nodes x 3 dofs = 1029 unknowns, 27-point stencil.
  Csc k = matgen::fem3d(7, 7, 7, /*dofs=*/3, /*seed=*/1);
  std::cout << "FEM stiffness matrix: n=" << k.n_cols() << " nnz=" << k.nnz()
            << " (density " << 100.0 * k.density() << "%)\n";

  solver::Options opts;
  opts.n_ranks = 8;
  solver::Solver solver;
  solver.factorize(k, opts).check();
  const auto& st = solver.stats();

  std::cout << "factorised on 8 simulated GPUs:\n"
            << "  nnz(L+U)      = " << st.nnz_lu << "\n"
            << "  FLOPs         = " << st.flops << "\n"
            << "  modeled time  = " << st.sim.makespan << " s ("
            << st.sim.gflops() << " GFLOPS)\n"
            << "  avg sync time = " << st.sim.avg_sync << " s\n"
            << "  messages sent = " << st.sim.messages << " ("
            << st.sim.bytes / 1024.0 / 1024.0 << " MiB)\n"
            << "  kernel mix    : GETRF "
            << st.sim.kind_count[static_cast<int>(block::TaskKind::kGetrf)]
            << ", GESSM "
            << st.sim.kind_count[static_cast<int>(block::TaskKind::kGessm)]
            << ", TSTRF "
            << st.sim.kind_count[static_cast<int>(block::TaskKind::kTstrf)]
            << ", SSSSM "
            << st.sim.kind_count[static_cast<int>(block::TaskKind::kSsssm)]
            << "\n"
            << "  load balance  : max rank weight " << st.balance.max_weight_before
            << " -> " << st.balance.max_weight_after << " ("
            << st.balance.swaps << " slice swaps)\n";

  // Static load: unit nodal force, displacement solve.
  std::vector<value_t> f(static_cast<std::size_t>(k.n_rows()), 1.0);
  std::vector<value_t> u(static_cast<std::size_t>(k.n_cols()));
  solver.solve(f, u).check();
  std::cout << "displacement solve residual: " << relative_residual(k, u, f)
            << "\n\n";

  // Baseline comparison: on this regular matrix the gap should be small —
  // the paper reports only 1.10x on audikw_1.
  baseline::SupernodalOptions bopts;
  bopts.n_ranks = 8;
  bopts.execute_numerics = false;
  baseline::SupernodalSolver base;
  base.factorize(k, bopts).check();
  std::cout << "modeled numeric time: baseline " << base.stats().sim.makespan
            << " s vs PanguLU " << st.sim.makespan << " s (ratio "
            << base.stats().sim.makespan / st.sim.makespan << "x; paper sees "
            << "~1.1x on this matrix class)\n";
  return 0;
}
