// Export Chrome-tracing timelines of the numeric factorisation under both
// scheduling strategies — the visual counterpart of the paper's §4.4: the
// level-set schedule shows its barrier gaps, the sync-free schedule packs
// the same tasks tightly. Open the output in chrome://tracing or Perfetto.
//
// Usage: schedule_trace [matrix-name] [ranks] [out-prefix]
#include <fstream>
#include <iostream>
#include <string>

#include "block/mapping.hpp"
#include "matgen/generators.hpp"
#include "ordering/reorder.hpp"
#include "runtime/sim.hpp"
#include "symbolic/fill.hpp"

int main(int argc, char** argv) {
  using namespace pangulu;
  const std::string name = argc > 1 ? argv[1] : "ASIC_680k";
  const rank_t ranks = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::string prefix = argc > 3 ? argv[3] : "trace";

  Csc a = matgen::paper_matrix(name, 0.35);
  ordering::ReorderResult reorder;
  ordering::reorder(a, {}, &reorder).check();
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(reorder.permuted, &sym).check();
  block::BlockMatrix blocks = block::BlockMatrix::from_filled(
      sym.filled, block::choose_block_size(a.n_cols(), sym.nnz_lu));
  auto tasks = block::enumerate_tasks(blocks);
  auto grid = block::ProcessGrid::make(ranks);
  auto mapping = block::cyclic_mapping(blocks, grid);

  for (auto [mode, label] :
       {std::pair{runtime::ScheduleMode::kSyncFree, "syncfree"},
        std::pair{runtime::ScheduleMode::kLevelSet, "levelset"}}) {
    block::BlockMatrix bm = blocks;
    runtime::TraceRecorder trace;
    runtime::SimOptions opts;
    opts.n_ranks = ranks;
    opts.schedule = mode;
    opts.execute_numerics = false;
    opts.trace = &trace;
    runtime::SimResult res;
    runtime::simulate_factorization(bm, tasks, mapping, opts, &res).check();

    const std::string path = prefix + "_" + label + ".json";
    std::ofstream out(path);
    trace.write_chrome_trace(out);
    std::cout << label << ": makespan " << res.makespan << " s, avg sync "
              << res.avg_sync << " s, " << trace.events().size()
              << " tasks -> " << path << "\n";
  }
  std::cout << "Open the JSON files in chrome://tracing to compare the "
               "schedules.\n";
  return 0;
}
