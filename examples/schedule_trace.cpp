// Export Chrome-tracing timelines of the numeric factorisation under both
// scheduling strategies — the visual counterpart of the paper's §4.4: the
// level-set schedule shows its barrier gaps, the sync-free schedule packs
// the same tasks tightly. Open the output in chrome://tracing or Perfetto.
//
// With "faults" as the fourth argument the run also injects a 2x straggler
// on rank 1 and crashes the last rank halfway through: the trace then carries
// instant markers (cat "fault") for the stall, crash and recovery points, and
// the timeline shows the survivors absorbing the dead rank's blocks.
//
// Usage: schedule_trace [matrix-name] [ranks] [out-prefix] [faults]
#include <fstream>
#include <iostream>
#include <string>

#include "block/mapping.hpp"
#include "matgen/generators.hpp"
#include "ordering/reorder.hpp"
#include "runtime/fault.hpp"
#include "runtime/sim.hpp"
#include "symbolic/fill.hpp"

int main(int argc, char** argv) {
  using namespace pangulu;
  const std::string name = argc > 1 ? argv[1] : "ASIC_680k";
  const rank_t ranks = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::string prefix = argc > 3 ? argv[3] : "trace";
  const bool with_faults = argc > 4 && std::string(argv[4]) == "faults";

  Csc a = matgen::paper_matrix(name, 0.35);
  ordering::ReorderResult reorder;
  ordering::reorder(a, {}, &reorder).check();
  symbolic::SymbolicResult sym;
  symbolic::symbolic_symmetric(reorder.permuted, &sym).check();
  block::BlockMatrix blocks = block::BlockMatrix::from_filled(
      sym.filled, block::choose_block_size(a.n_cols(), sym.nnz_lu));
  auto tasks = block::enumerate_tasks(blocks);
  auto grid = block::ProcessGrid::make(ranks);
  auto mapping = block::cyclic_mapping(blocks, grid);

  runtime::FaultPlan plan;
  if (with_faults) {
    // A fault-free dry run fixes the crash time at half the clean makespan.
    block::BlockMatrix bm = blocks;
    runtime::SimOptions opts;
    opts.n_ranks = ranks;
    opts.execute_numerics = false;
    runtime::SimResult clean;
    runtime::simulate_factorization(bm, tasks, mapping, opts, &clean).check();
    plan.slowdowns.push_back({1, 0.0, 2.0});
    plan.crashes.push_back({static_cast<rank_t>(ranks - 1),
                            clean.makespan * 0.5});
  }

  for (auto [mode, label] :
       {std::pair{runtime::ScheduleMode::kSyncFree, "syncfree"},
        std::pair{runtime::ScheduleMode::kLevelSet, "levelset"}}) {
    block::BlockMatrix bm = blocks;
    runtime::TraceRecorder trace;
    runtime::SimOptions opts;
    opts.n_ranks = ranks;
    opts.schedule = mode;
    opts.execute_numerics = false;
    opts.trace = &trace;
    opts.faults = plan;
    runtime::SimResult res;
    runtime::simulate_factorization(bm, tasks, mapping, opts, &res).check();

    const std::string path = prefix + "_" + label + ".json";
    std::ofstream out(path);
    trace.write_chrome_trace(out);
    std::cout << label << ": makespan " << res.makespan << " s, avg sync "
              << res.avg_sync << " s, " << trace.events().size()
              << " tasks -> " << path << "\n";
    if (with_faults) {
      std::cout << "  faults: " << res.rank_crashes << " crash, "
                << res.remapped_blocks << " blocks remapped, "
                << res.recovered_tasks << " tasks recovered, recovery "
                << res.recovery_time << " s, " << trace.instants().size()
                << " fault markers\n";
    }
  }
  std::cout << "Open the JSON files in chrome://tracing to compare the "
               "schedules.\n";
  return 0;
}
