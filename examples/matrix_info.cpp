// Inspect a matrix before solving: structural profile, fill prediction via
// Gilbert-Ng-Peyton column counts (no symbolic factorisation needed), and
// the block size / process-grid the solver would pick — the "what am I
// about to pay?" tool.
//
// Usage: matrix_info [matrix.mtx | paper-matrix-name] [scale]
#include <iostream>
#include <string>

#include "block/layout.hpp"
#include "io/matrix_market.hpp"
#include "matgen/generators.hpp"
#include "sparse/analysis.hpp"
#include "symbolic/col_counts.hpp"
#include "ordering/reorder.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pangulu;
  const std::string arg = argc > 1 ? argv[1] : "ASIC_680k";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  Csc a;
  if (arg.size() > 4 && arg.substr(arg.size() - 4) == ".mtx") {
    Status s = io::read_matrix_market_file(arg, &a);
    if (!s.is_ok()) {
      std::cerr << "cannot read " << arg << ": " << s.message() << "\n";
      return 1;
    }
  } else {
    a = matgen::paper_matrix(arg, scale);
    std::cout << "(synthetic stand-in for " << arg << ", domain: "
              << matgen::paper_matrix_info(arg).domain << ")\n";
  }

  std::cout << to_string(analyze(a)) << "\n\n";

  // Predict fill under the default ordering without running the full
  // symbolic phase.
  Timer t;
  ordering::ReorderResult reorder;
  ordering::reorder(a, {}, &reorder).check();
  const nnz_t fill = symbolic::estimate_fill(reorder.permuted);
  std::cout << "predicted nnz(L+U) under MC64+ND ordering: " << fill << " ("
            << static_cast<double>(fill) / a.nnz() << "x fill ratio), "
            << "computed in " << t.seconds() << " s\n";
  const index_t bs = block::choose_block_size(a.n_cols(), fill);
  std::cout << "solver would pick block size " << bs << " ("
            << (a.n_cols() + bs - 1) / bs << "^2 block grid)\n";
  std::cout << "estimated factor memory: "
            << static_cast<double>(fill) * (sizeof(value_t) + sizeof(index_t)) /
                   1048576.0
            << " MiB\n";
  return 0;
}
