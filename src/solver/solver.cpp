#include "solver/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "io/snapshot.hpp"
#include "kernels/calibrate.hpp"
#include "kernels/gessm.hpp"
#include "kernels/tstrf.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/trsv_sim.hpp"
#include "sparse/ops.hpp"
#include "util/timer.hpp"

namespace pangulu::solver {

namespace {

/// y_segment -= Block * x_segment (sparse block SpMV accumulate).
template <class V>
void block_spmv_sub(const CscT<V>& blk, const V* x, V* y) {
  for (index_t j = 0; j < blk.n_cols(); ++j) {
    const V xj = x[j];
    if (xj == V(0)) continue;
    for (nnz_t p = blk.col_begin(j); p < blk.col_end(j); ++p) {
      y[blk.row_idx()[static_cast<std::size_t>(p)]] -=
          blk.values()[static_cast<std::size_t>(p)] * xj;
    }
  }
}

/// In-block forward solve with the unit-lower part of a factorised diagonal
/// block (strictly-lower entries are L; diagonal is implicit 1).
template <class V>
void diag_lower_solve(const CscT<V>& d, V* x) {
  for (index_t j = 0; j < d.n_cols(); ++j) {
    const V xj = x[j];
    if (xj == V(0)) continue;
    for (nnz_t p = d.col_begin(j); p < d.col_end(j); ++p) {
      const index_t r = d.row_idx()[static_cast<std::size_t>(p)];
      if (r > j) x[r] -= d.values()[static_cast<std::size_t>(p)] * xj;
    }
  }
}

/// In-block backward solve with the upper part (diagonal included).
template <class V>
void diag_upper_solve(const CscT<V>& d, V* x) {
  for (index_t j = d.n_cols() - 1; j >= 0; --j) {
    // Find the diagonal; entries above it are the U column.
    V djj = V(0);
    nnz_t diag_pos = -1;
    for (nnz_t p = d.col_begin(j); p < d.col_end(j); ++p) {
      if (d.row_idx()[static_cast<std::size_t>(p)] == j) {
        djj = d.values()[static_cast<std::size_t>(p)];
        diag_pos = p;
        break;
      }
    }
    PANGULU_CHECK(diag_pos >= 0 && djj != V(0),
                  "upper solve: missing/zero diagonal");
    x[j] /= djj;
    const V xj = x[j];
    if (xj == V(0)) continue;
    for (nnz_t p = d.col_begin(j); p < diag_pos; ++p) {
      x[d.row_idx()[static_cast<std::size_t>(p)]] -=
          d.values()[static_cast<std::size_t>(p)] * xj;
    }
  }
}

}  // namespace

template <class V>
void block_lower_solve(const block::BlockMatrixT<V>& f,
                       std::type_identity_t<std::span<V>> x) {
  const auto& grid = f.grid();
  for (index_t bk = 0; bk < f.nb(); ++bk) {
    V* seg = x.data() + grid.block_start(bk);
    // Subtract contributions of already-solved block columns to the left.
    for (nnz_t rp = f.row_begin(bk); rp < f.row_end(bk); ++rp) {
      const index_t bj = f.row_block_col(rp);
      if (bj >= bk) continue;
      block_spmv_sub(f.block(f.row_block_pos(rp)),
                     x.data() + grid.block_start(bj), seg);
    }
    const nnz_t diag = f.find_block(bk, bk);
    PANGULU_CHECK(diag >= 0, "missing diagonal block");
    diag_lower_solve(f.block(diag), seg);
  }
}

template <class V>
void block_upper_solve(const block::BlockMatrixT<V>& f,
                       std::type_identity_t<std::span<V>> x) {
  const auto& grid = f.grid();
  for (index_t bk = f.nb() - 1; bk >= 0; --bk) {
    V* seg = x.data() + grid.block_start(bk);
    for (nnz_t rp = f.row_begin(bk); rp < f.row_end(bk); ++rp) {
      const index_t bj = f.row_block_col(rp);
      if (bj <= bk) continue;
      block_spmv_sub(f.block(f.row_block_pos(rp)),
                     x.data() + grid.block_start(bj), seg);
    }
    const nnz_t diag = f.find_block(bk, bk);
    PANGULU_CHECK(diag >= 0, "missing diagonal block");
    diag_upper_solve(f.block(diag), seg);
  }
}

namespace {

/// y_segment -= Block^T * x_segment: for each column j of the block, the
/// dot product of the column with x lands in y[j].
template <class V>
void block_spmv_t_sub(const CscT<V>& blk, const V* x, V* y) {
  for (index_t j = 0; j < blk.n_cols(); ++j) {
    V acc = 0;
    for (nnz_t p = blk.col_begin(j); p < blk.col_end(j); ++p) {
      acc += blk.values()[static_cast<std::size_t>(p)] *
             x[blk.row_idx()[static_cast<std::size_t>(p)]];
    }
    y[j] -= acc;
  }
}

/// In-block solve of U^T y = z (U^T is lower-triangular): ascending j,
/// x[j] = (z[j] - U(:<j, j) . x) / U(j,j) — one CSC column dot per unknown.
template <class V>
void diag_upper_transpose_solve(const CscT<V>& d, V* x) {
  for (index_t j = 0; j < d.n_cols(); ++j) {
    V acc = 0;
    V djj = 0;
    for (nnz_t p = d.col_begin(j); p < d.col_end(j); ++p) {
      const index_t r = d.row_idx()[static_cast<std::size_t>(p)];
      if (r < j)
        acc += d.values()[static_cast<std::size_t>(p)] * x[r];
      else if (r == j)
        djj = d.values()[static_cast<std::size_t>(p)];
    }
    PANGULU_CHECK(djj != V(0), "transpose solve: zero diagonal");
    x[j] = (x[j] - acc) / djj;
  }
}

/// In-block solve of L^T w = y (L^T upper, unit diagonal): descending j,
/// x[j] -= L(>j, j) . x.
template <class V>
void diag_lower_transpose_solve(const CscT<V>& d, V* x) {
  for (index_t j = d.n_cols() - 1; j >= 0; --j) {
    V acc = 0;
    for (nnz_t p = d.col_begin(j); p < d.col_end(j); ++p) {
      const index_t r = d.row_idx()[static_cast<std::size_t>(p)];
      if (r > j) acc += d.values()[static_cast<std::size_t>(p)] * x[r];
    }
    x[j] -= acc;
  }
}

}  // namespace

template <class V>
void block_upper_transpose_solve(const block::BlockMatrixT<V>& f,
                                 std::type_identity_t<std::span<V>> x) {
  const auto& grid = f.grid();
  // U^T is lower triangular: forward sweep. The blocks of U^T's block-row
  // bk are the transposes of U's block-column bk (block rows bj < bk).
  for (index_t bk = 0; bk < f.nb(); ++bk) {
    V* seg = x.data() + grid.block_start(bk);
    for (nnz_t p = f.col_begin(bk); p < f.col_end(bk); ++p) {
      const index_t bj = f.block_row(p);
      if (bj >= bk) continue;
      block_spmv_t_sub(f.block(p), x.data() + grid.block_start(bj), seg);
    }
    const nnz_t diag = f.find_block(bk, bk);
    PANGULU_CHECK(diag >= 0, "missing diagonal block");
    diag_upper_transpose_solve(f.block(diag), seg);
  }
}

template <class V>
void block_lower_transpose_solve(const block::BlockMatrixT<V>& f,
                                 std::type_identity_t<std::span<V>> x) {
  const auto& grid = f.grid();
  // L^T is upper triangular: backward sweep over block-columns of L.
  for (index_t bk = f.nb() - 1; bk >= 0; --bk) {
    V* seg = x.data() + grid.block_start(bk);
    for (nnz_t p = f.col_begin(bk); p < f.col_end(bk); ++p) {
      const index_t bi = f.block_row(p);
      if (bi <= bk) continue;
      block_spmv_t_sub(f.block(p), x.data() + grid.block_start(bi), seg);
    }
    const nnz_t diag = f.find_block(bk, bk);
    PANGULU_CHECK(diag >= 0, "missing diagonal block");
    diag_lower_transpose_solve(f.block(diag), seg);
  }
}

template <class BM>
SolvePlan SolvePlan::build(const BM& f) {
  SolvePlan plan;
  const index_t nb = f.nb();
  plan.diag_pos.resize(static_cast<std::size_t>(nb));
  plan.low_ptr.assign(static_cast<std::size_t>(nb) + 1, 0);
  plan.up_ptr.assign(static_cast<std::size_t>(nb) + 1, 0);
  plan.tup_ptr.assign(static_cast<std::size_t>(nb) + 1, 0);
  plan.tlow_ptr.assign(static_cast<std::size_t>(nb) + 1, 0);
  for (index_t bk = 0; bk < nb; ++bk) {
    const nnz_t diag = f.find_block(bk, bk);
    PANGULU_CHECK(diag >= 0, "solve plan: missing diagonal block");
    plan.diag_pos[static_cast<std::size_t>(bk)] = diag;
    // Row-wise lists in the row order the direct sweeps walk.
    for (nnz_t rp = f.row_begin(bk); rp < f.row_end(bk); ++rp) {
      const index_t bj = f.row_block_col(rp);
      if (bj < bk) {
        plan.low_pos.push_back(f.row_block_pos(rp));
        plan.low_src.push_back(bj);
      } else if (bj > bk) {
        plan.up_pos.push_back(f.row_block_pos(rp));
        plan.up_src.push_back(bj);
      }
    }
    plan.low_ptr[static_cast<std::size_t>(bk) + 1] =
        static_cast<nnz_t>(plan.low_pos.size());
    plan.up_ptr[static_cast<std::size_t>(bk) + 1] =
        static_cast<nnz_t>(plan.up_pos.size());
    // Column-wise lists for the transposed sweeps.
    for (nnz_t p = f.col_begin(bk); p < f.col_end(bk); ++p) {
      const index_t bi = f.block_row(p);
      if (bi < bk) {
        plan.tup_pos.push_back(p);
        plan.tup_src.push_back(bi);
      } else if (bi > bk) {
        plan.tlow_pos.push_back(p);
        plan.tlow_src.push_back(bi);
      }
    }
    plan.tup_ptr[static_cast<std::size_t>(bk) + 1] =
        static_cast<nnz_t>(plan.tup_pos.size());
    plan.tlow_ptr[static_cast<std::size_t>(bk) + 1] =
        static_cast<nnz_t>(plan.tlow_pos.size());
  }
  return plan;
}

// Sweep-level cancellation poll shared by the plan-based sweeps: one poll
// per block row/column, the solve phase's safe-point granularity.
inline Status sweep_poll(const CancelToken* cancel, const char* sweep,
                         index_t bk) {
  if (!cancel) return Status::ok();
  return cancel->check(
      (std::string(sweep) + " sweep level " + std::to_string(bk)).c_str());
}

template <class V>
Status block_lower_solve(const block::BlockMatrixT<V>& f, const SolvePlan& plan,
                         std::type_identity_t<std::span<V>> x,
                         const CancelToken* cancel) {
  const auto& grid = f.grid();
  for (index_t bk = 0; bk < f.nb(); ++bk) {
    Status cs = sweep_poll(cancel, "lower", bk);
    if (!cs.is_ok()) return cs;
    V* seg = x.data() + grid.block_start(bk);
    for (nnz_t q = plan.low_ptr[static_cast<std::size_t>(bk)];
         q < plan.low_ptr[static_cast<std::size_t>(bk) + 1]; ++q) {
      block_spmv_sub(
          f.block(plan.low_pos[static_cast<std::size_t>(q)]),
          x.data() + grid.block_start(plan.low_src[static_cast<std::size_t>(q)]),
          seg);
    }
    diag_lower_solve(f.block(plan.diag_pos[static_cast<std::size_t>(bk)]), seg);
  }
  return Status::ok();
}

template <class V>
Status block_upper_solve(const block::BlockMatrixT<V>& f, const SolvePlan& plan,
                         std::type_identity_t<std::span<V>> x,
                         const CancelToken* cancel) {
  const auto& grid = f.grid();
  for (index_t bk = f.nb() - 1; bk >= 0; --bk) {
    Status cs = sweep_poll(cancel, "upper", bk);
    if (!cs.is_ok()) return cs;
    V* seg = x.data() + grid.block_start(bk);
    for (nnz_t q = plan.up_ptr[static_cast<std::size_t>(bk)];
         q < plan.up_ptr[static_cast<std::size_t>(bk) + 1]; ++q) {
      block_spmv_sub(
          f.block(plan.up_pos[static_cast<std::size_t>(q)]),
          x.data() + grid.block_start(plan.up_src[static_cast<std::size_t>(q)]),
          seg);
    }
    diag_upper_solve(f.block(plan.diag_pos[static_cast<std::size_t>(bk)]), seg);
  }
  return Status::ok();
}

template <class V>
Status block_upper_transpose_solve(const block::BlockMatrixT<V>& f,
                                   const SolvePlan& plan,
                                   std::type_identity_t<std::span<V>> x,
                                   const CancelToken* cancel) {
  const auto& grid = f.grid();
  for (index_t bk = 0; bk < f.nb(); ++bk) {
    Status cs = sweep_poll(cancel, "upper-transpose", bk);
    if (!cs.is_ok()) return cs;
    V* seg = x.data() + grid.block_start(bk);
    for (nnz_t q = plan.tup_ptr[static_cast<std::size_t>(bk)];
         q < plan.tup_ptr[static_cast<std::size_t>(bk) + 1]; ++q) {
      block_spmv_t_sub(
          f.block(plan.tup_pos[static_cast<std::size_t>(q)]),
          x.data() + grid.block_start(plan.tup_src[static_cast<std::size_t>(q)]),
          seg);
    }
    diag_upper_transpose_solve(
        f.block(plan.diag_pos[static_cast<std::size_t>(bk)]), seg);
  }
  return Status::ok();
}

template <class V>
Status block_lower_transpose_solve(const block::BlockMatrixT<V>& f,
                                   const SolvePlan& plan,
                                   std::type_identity_t<std::span<V>> x,
                                   const CancelToken* cancel) {
  const auto& grid = f.grid();
  for (index_t bk = f.nb() - 1; bk >= 0; --bk) {
    Status cs = sweep_poll(cancel, "lower-transpose", bk);
    if (!cs.is_ok()) return cs;
    V* seg = x.data() + grid.block_start(bk);
    for (nnz_t q = plan.tlow_ptr[static_cast<std::size_t>(bk)];
         q < plan.tlow_ptr[static_cast<std::size_t>(bk) + 1]; ++q) {
      block_spmv_t_sub(
          f.block(plan.tlow_pos[static_cast<std::size_t>(q)]),
          x.data() + grid.block_start(plan.tlow_src[static_cast<std::size_t>(q)]),
          seg);
    }
    diag_lower_transpose_solve(
        f.block(plan.diag_pos[static_cast<std::size_t>(bk)]), seg);
  }
  return Status::ok();
}

template <class V>
Status block_lower_solve_multi(const block::BlockMatrixT<V>& f,
                               const SolvePlan& plan, V* x, index_t stride,
                               index_t k, const CancelToken* cancel) {
  const auto& grid = f.grid();
  for (index_t bk = 0; bk < f.nb(); ++bk) {
    Status cs = sweep_poll(cancel, "lower-panel", bk);
    if (!cs.is_ok()) return cs;
    V* seg =
        x + static_cast<std::size_t>(grid.block_start(bk)) * stride;
    for (nnz_t q = plan.low_ptr[static_cast<std::size_t>(bk)];
         q < plan.low_ptr[static_cast<std::size_t>(bk) + 1]; ++q) {
      kernels::spmm_sub_panel(
          f.block(plan.low_pos[static_cast<std::size_t>(q)]),
          x + static_cast<std::size_t>(grid.block_start(
                  plan.low_src[static_cast<std::size_t>(q)])) *
                  stride,
          stride, seg, stride, k);
    }
    kernels::gessm_dense_panel(
        f.block(plan.diag_pos[static_cast<std::size_t>(bk)]), seg, stride, k);
  }
  return Status::ok();
}

template <class V>
Status block_upper_solve_multi(const block::BlockMatrixT<V>& f,
                               const SolvePlan& plan, V* x, index_t stride,
                               index_t k, const CancelToken* cancel) {
  const auto& grid = f.grid();
  for (index_t bk = f.nb() - 1; bk >= 0; --bk) {
    Status cs = sweep_poll(cancel, "upper-panel", bk);
    if (!cs.is_ok()) return cs;
    V* seg =
        x + static_cast<std::size_t>(grid.block_start(bk)) * stride;
    for (nnz_t q = plan.up_ptr[static_cast<std::size_t>(bk)];
         q < plan.up_ptr[static_cast<std::size_t>(bk) + 1]; ++q) {
      kernels::spmm_sub_panel(
          f.block(plan.up_pos[static_cast<std::size_t>(q)]),
          x + static_cast<std::size_t>(grid.block_start(
                  plan.up_src[static_cast<std::size_t>(q)])) *
                  stride,
          stride, seg, stride, k);
    }
    kernels::tstrf_dense_panel(
        f.block(plan.diag_pos[static_cast<std::size_t>(bk)]), seg, stride, k);
  }
  return Status::ok();
}

template <class V>
Status block_upper_transpose_solve_multi(const block::BlockMatrixT<V>& f,
                                         const SolvePlan& plan, V* x,
                                         index_t stride, index_t k,
                                         const CancelToken* cancel) {
  const auto& grid = f.grid();
  std::vector<V> acc(static_cast<std::size_t>(k));
  for (index_t bk = 0; bk < f.nb(); ++bk) {
    Status cs = sweep_poll(cancel, "upper-transpose-panel", bk);
    if (!cs.is_ok()) return cs;
    V* seg =
        x + static_cast<std::size_t>(grid.block_start(bk)) * stride;
    for (nnz_t q = plan.tup_ptr[static_cast<std::size_t>(bk)];
         q < plan.tup_ptr[static_cast<std::size_t>(bk) + 1]; ++q) {
      kernels::spmm_t_sub_panel(
          f.block(plan.tup_pos[static_cast<std::size_t>(q)]),
          x + static_cast<std::size_t>(grid.block_start(
                  plan.tup_src[static_cast<std::size_t>(q)])) *
                  stride,
          stride, seg, stride, k, acc.data());
    }
    kernels::tstrf_dense_panel_transpose(
        f.block(plan.diag_pos[static_cast<std::size_t>(bk)]), seg, stride, k,
        acc.data());
  }
  return Status::ok();
}

template <class V>
Status block_lower_transpose_solve_multi(const block::BlockMatrixT<V>& f,
                                         const SolvePlan& plan, V* x,
                                         index_t stride, index_t k,
                                         const CancelToken* cancel) {
  const auto& grid = f.grid();
  std::vector<V> acc(static_cast<std::size_t>(k));
  for (index_t bk = f.nb() - 1; bk >= 0; --bk) {
    Status cs = sweep_poll(cancel, "lower-transpose-panel", bk);
    if (!cs.is_ok()) return cs;
    V* seg =
        x + static_cast<std::size_t>(grid.block_start(bk)) * stride;
    for (nnz_t q = plan.tlow_ptr[static_cast<std::size_t>(bk)];
         q < plan.tlow_ptr[static_cast<std::size_t>(bk) + 1]; ++q) {
      kernels::spmm_t_sub_panel(
          f.block(plan.tlow_pos[static_cast<std::size_t>(q)]),
          x + static_cast<std::size_t>(grid.block_start(
                  plan.tlow_src[static_cast<std::size_t>(q)])) *
                  stride,
          stride, seg, stride, k, acc.data());
    }
    kernels::gessm_dense_panel_transpose(
        f.block(plan.diag_pos[static_cast<std::size_t>(bk)]), seg, stride, k,
        acc.data());
  }
  return Status::ok();
}

// Explicit instantiations over both precision twins: the FP64 set serves
// the historical API, the FP32 set backs the kSingle/kMixedIR solve paths.
template SolvePlan SolvePlan::build(const block::BlockMatrixT<float>&);
template SolvePlan SolvePlan::build(const block::BlockMatrixT<double>&);
template void block_lower_solve(const block::BlockMatrixT<float>&,
                                std::span<float>);
template void block_lower_solve(const block::BlockMatrixT<double>&,
                                std::span<double>);
template void block_upper_solve(const block::BlockMatrixT<float>&,
                                std::span<float>);
template void block_upper_solve(const block::BlockMatrixT<double>&,
                                std::span<double>);
template void block_upper_transpose_solve(const block::BlockMatrixT<float>&,
                                          std::span<float>);
template void block_upper_transpose_solve(const block::BlockMatrixT<double>&,
                                          std::span<double>);
template void block_lower_transpose_solve(const block::BlockMatrixT<float>&,
                                          std::span<float>);
template void block_lower_transpose_solve(const block::BlockMatrixT<double>&,
                                          std::span<double>);
template Status block_lower_solve(const block::BlockMatrixT<float>&,
                                  const SolvePlan&, std::span<float>,
                                  const CancelToken*);
template Status block_lower_solve(const block::BlockMatrixT<double>&,
                                  const SolvePlan&, std::span<double>,
                                  const CancelToken*);
template Status block_upper_solve(const block::BlockMatrixT<float>&,
                                  const SolvePlan&, std::span<float>,
                                  const CancelToken*);
template Status block_upper_solve(const block::BlockMatrixT<double>&,
                                  const SolvePlan&, std::span<double>,
                                  const CancelToken*);
template Status block_upper_transpose_solve(const block::BlockMatrixT<float>&,
                                            const SolvePlan&, std::span<float>,
                                            const CancelToken*);
template Status block_upper_transpose_solve(const block::BlockMatrixT<double>&,
                                            const SolvePlan&,
                                            std::span<double>,
                                            const CancelToken*);
template Status block_lower_transpose_solve(const block::BlockMatrixT<float>&,
                                            const SolvePlan&, std::span<float>,
                                            const CancelToken*);
template Status block_lower_transpose_solve(const block::BlockMatrixT<double>&,
                                            const SolvePlan&,
                                            std::span<double>,
                                            const CancelToken*);
template Status block_lower_solve_multi(const block::BlockMatrixT<float>&,
                                        const SolvePlan&, float*, index_t,
                                        index_t, const CancelToken*);
template Status block_lower_solve_multi(const block::BlockMatrixT<double>&,
                                        const SolvePlan&, double*, index_t,
                                        index_t, const CancelToken*);
template Status block_upper_solve_multi(const block::BlockMatrixT<float>&,
                                        const SolvePlan&, float*, index_t,
                                        index_t, const CancelToken*);
template Status block_upper_solve_multi(const block::BlockMatrixT<double>&,
                                        const SolvePlan&, double*, index_t,
                                        index_t, const CancelToken*);
template Status block_upper_transpose_solve_multi(
    const block::BlockMatrixT<float>&, const SolvePlan&, float*, index_t,
    index_t, const CancelToken*);
template Status block_upper_transpose_solve_multi(
    const block::BlockMatrixT<double>&, const SolvePlan&, double*, index_t,
    index_t, const CancelToken*);
template Status block_lower_transpose_solve_multi(
    const block::BlockMatrixT<float>&, const SolvePlan&, float*, index_t,
    index_t, const CancelToken*);
template Status block_lower_transpose_solve_multi(
    const block::BlockMatrixT<double>&, const SolvePlan&, double*, index_t,
    index_t, const CancelToken*);

namespace {

/// Live sync-free counter array once canonical tasks [0, done) have
/// committed: the initial per-block counts minus one decrement per committed
/// update landing on the block (GETRF consumes its counter reaching zero but
/// never decrements).
std::vector<index_t> live_counters(const block::BlockMatrix& bm,
                                   const std::vector<block::Task>& tasks,
                                   index_t done) {
  std::vector<index_t> c = block::sync_free_array(bm, tasks);
  for (index_t t = 0; t < done; ++t) {
    const block::Task& task = tasks[static_cast<std::size_t>(t)];
    if (task.kind != block::TaskKind::kGetrf)
      --c[static_cast<std::size_t>(task.target)];
  }
  return c;
}

std::unique_ptr<ThreadPool> make_preprocess_pool(int threads) {
  if (threads <= 0) return nullptr;
  return std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
}

}  // namespace

Status Solver::prepare_structure(ThreadPool* pool) {
  Timer timer;
  // (1) Reordering: MC64 stability + fill-reducing symmetric permutation.
  Status s = ordering::reorder(original_, opts_.reorder, &reorder_, pool);
  if (!s.is_ok()) return s;
  stats_.reorder_seconds = timer.seconds();

  // (2) Symbolic factorisation with symmetric pruning.
  timer.reset();
  s = symbolic::symbolic_symmetric(reorder_.permuted, &symbolic_, pool);
  if (!s.is_ok()) return s;
  stats_.symbolic_seconds = timer.seconds();
  stats_.nnz_lu = symbolic_.nnz_lu;
  stats_.flops = symbolic::factorization_flops(symbolic_.filled);

  // (3) Preprocessing: regular 2D blocking, cyclic mapping, balancing.
  timer.reset();
  const index_t bs = opts_.block_size > 0
                         ? opts_.block_size
                         : block::choose_block_size(stats_.n, stats_.nnz_lu);
  stats_.block_size = bs;
  s = block::check_blocking_bounds(stats_.n, bs, stats_.nnz_lu);
  if (!s.is_ok()) return s;
  factors_ = block::BlockMatrix::from_filled(symbolic_.filled, bs, pool);
  stats_.nb = factors_.nb();
  tasks_ = block::enumerate_tasks(factors_);
  if (tasks_.size() >
      static_cast<std::size_t>(std::numeric_limits<index_t>::max()))
    return Status::out_of_range(
        "factorize: task count overflows the 32-bit task index");
  stats_.n_tasks = tasks_.size();
  stats_.blocking_seconds = timer.seconds();
  Timer map_timer;
  const auto grid = block::ProcessGrid::make(opts_.n_ranks);
  mapping_ = block::cyclic_mapping(factors_, grid, pool);
  if (opts_.balance)
    mapping_ = block::balanced_mapping(factors_, tasks_, grid, mapping_,
                                       &stats_.balance, pool);
  stats_.mapping_seconds = map_timer.seconds();
  stats_.preprocess_seconds = timer.seconds();

  // (3b) Static verification: prove the task graph, counters and mapping
  // consistent *before* spending any numeric work (and fail with a
  // diagnosis instead of deadlocking or double-firing kernels).
  if (opts_.verify_level != analysis::VerifyLevel::kOff) {
    analysis::VerifyReport vr;
    s = analysis::verify_task_graph(factors_, tasks_, mapping_,
                                    block::sync_free_array(factors_, tasks_),
                                    opts_.verify_level, {}, &vr);
    if (!s.is_ok()) return s;
    stats_.verify_seconds = vr.seconds;
  }
  return Status::ok();
}

Status Solver::factorize(const Csc& a, const Options& opts) {
  if (a.n_rows() != a.n_cols())
    return Status::invalid_argument("factorize: square matrices only");
  opts_ = opts;
  if (!opts_.thresholds_file.empty()) {
    Status ts =
        kernels::load_thresholds(opts_.thresholds_file, &opts_.thresholds);
    if (!ts.is_ok()) return ts;
  }
  original_ = a;
  factorized_ = false;
  permuted_to_filled_.clear();
  block_src_.clear();
  stats_ = FactorStats{};
  stats_.n = a.n_cols();
  stats_.nnz_a = a.nnz();

  // The preprocessing front-end threads through one pool: the process-global
  // one by default, a dedicated pool when the caller pinned a thread count.
  std::unique_ptr<ThreadPool> local_pool =
      make_preprocess_pool(opts_.preprocess_threads);
  Status s = prepare_structure(local_pool.get());
  if (!s.is_ok()) return s;

  // (4) Numeric factorisation on the simulated cluster (real numerics).
  s = run_numeric_phase(0);
  if (!s.is_ok()) return s;

  // (5) Cache the solve-phase schedules so solve()/solve_transpose() and the
  // triangular-solve model only run numerics from here on.
  s = build_solve_plans();
  if (!s.is_ok()) return s;
  factorized_ = true;
  return Status::ok();
}

Status Solver::flush_checkpoint_writer() {
  if (!checkpoint_writer_.valid()) return Status::ok();
  return checkpoint_writer_.get();
}

Status Solver::write_checkpoint(index_t tasks_done) {
  auto owned = std::make_shared<io::Snapshot>();
  io::Snapshot& snap = *owned;
  io::SnapshotMeta& m = snap.meta;
  m.n = stats_.n;
  m.nnz_a = stats_.nnz_a;
  m.block_size = stats_.block_size;
  m.n_ranks = opts_.n_ranks;
  m.balance = opts_.balance ? 1 : 0;
  m.policy = static_cast<std::int32_t>(opts_.policy);
  m.schedule = static_cast<std::int32_t>(opts_.schedule);
  m.verify_level = static_cast<std::int32_t>(opts_.verify_level);
  m.abft_level = static_cast<std::int32_t>(opts_.abft_level);
  m.use_mc64 = opts_.reorder.use_mc64 ? 1 : 0;
  m.apply_scaling = opts_.reorder.apply_scaling ? 1 : 0;
  m.fill_reducing = static_cast<std::int32_t>(opts_.reorder.fill_reducing);
  m.nd_leaf_size = opts_.reorder.nd_leaf_size;
  m.preprocess_threads = opts_.preprocess_threads;
  m.refine_iters = opts_.refine_iters;
  m.precision = static_cast<std::int32_t>(opts_.precision);
  m.pivot_tol = opts_.pivot_tol;
  m.checkpoint_interval = opts_.checkpoint_interval_tasks;
  m.n_tasks = static_cast<std::int64_t>(tasks_.size());
  m.tasks_done = tasks_done;
  m.incremental = opts_.incremental_snapshots ? 1 : 0;
  snap.a_col_ptr.assign(original_.col_ptr().begin(), original_.col_ptr().end());
  snap.a_row_idx.assign(original_.row_idx().begin(), original_.row_idx().end());
  snap.a_values.assign(original_.values().begin(), original_.values().end());
  snap.counters = live_counters(factors_, tasks_, tasks_done);
  const auto nblocks = static_cast<std::size_t>(factors_.n_blocks());
  snap.block_nnz.reserve(nblocks);
  for (nnz_t pos = 0; pos < static_cast<nnz_t>(nblocks); ++pos)
    snap.block_nnz.push_back(factors_.block(pos).nnz());
  // Snapshot values always travel as FP64. Under FP32 storage the live
  // numeric state is factors32_ (factors_ is stale mid-run), widened exactly
  // on encode so resume's narrowing round-trips bit for bit.
  const bool ckpt_fp32 = kernels::stores_fp32(opts_.precision);
  auto append_block_values = [&](nnz_t pos) {
    if (ckpt_fp32) {
      const auto v = factors32_.block(pos).values();
      for (float fv : v)
        snap.block_values.push_back(static_cast<value_t>(fv));
    } else {
      const auto v = factors_.block(pos).values();
      snap.block_values.insert(snap.block_values.end(), v.begin(), v.end());
    }
  };
  if (opts_.incremental_snapshots) {
    // Advance the dirty marks over the newly committed tasks; every task
    // kind mutates exactly its target block, so the dirty set of the prefix
    // [0, tasks_done) is the union of those targets. Only dirty blocks'
    // values travel — every clean block still holds the initial pre-numeric
    // values, which resume recomputes deterministically from A.
    for (index_t t = ckpt_marked_upto_; t < tasks_done; ++t)
      ckpt_dirty_[static_cast<std::size_t>(
          tasks_[static_cast<std::size_t>(t)].target)] = 1;
    ckpt_marked_upto_ = std::max(ckpt_marked_upto_, tasks_done);
    for (nnz_t pos = 0; pos < static_cast<nnz_t>(nblocks); ++pos) {
      if (!ckpt_dirty_[static_cast<std::size_t>(pos)]) continue;
      snap.dirty_pos.push_back(pos);
      append_block_values(pos);
    }
  } else {
    snap.block_values.reserve(static_cast<std::size_t>(factors_.total_nnz()));
    for (nnz_t pos = 0; pos < static_cast<nnz_t>(nblocks); ++pos)
      append_block_values(pos);
  }
  // The safe point has paid only for the state copy above; CRC, encoding and
  // file I/O overlap the factorisation on the writer thread. One write in
  // flight at a time, so a failure surfaces at the next safe point (or at
  // the flush before run_numeric_phase returns) and tmp+rename atomicity
  // holds.
  Status prev = flush_checkpoint_writer();
  if (!prev.is_ok()) return prev;
  checkpoint_writer_ =
      std::async(std::launch::async, [path = opts_.checkpoint_path, owned] {
        return io::write_snapshot_file(path, *owned);
      });
  return Status::ok();
}

Status Solver::resume_from(const std::string& path, const Options& base) {
  io::Snapshot snap;
  Status s = io::read_snapshot_file(path, &snap);
  if (!s.is_ok()) return s;
  const io::SnapshotMeta& m = snap.meta;

  // Rebuild the options that determine the computed bits from the snapshot;
  // `base` contributes only the fields a snapshot does not carry.
  opts_ = base;
  opts_.block_size = m.block_size;
  opts_.n_ranks = m.n_ranks;
  opts_.balance = m.balance != 0;
  opts_.policy = static_cast<runtime::KernelPolicy>(m.policy);
  opts_.schedule = static_cast<runtime::ScheduleMode>(m.schedule);
  opts_.pivot_tol = m.pivot_tol;
  opts_.refine_iters = m.refine_iters;
  opts_.precision = static_cast<kernels::Precision>(m.precision);
  opts_.preprocess_threads = m.preprocess_threads;
  opts_.abft_level = static_cast<runtime::AbftLevel>(m.abft_level);
  opts_.reorder.use_mc64 = m.use_mc64 != 0;
  opts_.reorder.apply_scaling = m.apply_scaling != 0;
  opts_.reorder.fill_reducing =
      static_cast<ordering::FillReducing>(m.fill_reducing);
  opts_.reorder.nd_leaf_size = m.nd_leaf_size;
  // Re-prove the task graph on every resumed state, at least at kCheap.
  opts_.verify_level =
      std::max(static_cast<analysis::VerifyLevel>(m.verify_level),
               analysis::VerifyLevel::kCheap);
  if (opts_.checkpoint_interval_tasks <= 0)
    opts_.checkpoint_interval_tasks =
        static_cast<index_t>(m.checkpoint_interval);
  if (!opts_.thresholds_file.empty()) {
    s = kernels::load_thresholds(opts_.thresholds_file, &opts_.thresholds);
    if (!s.is_ok()) return s;
  }

  // The snapshot's matrix arrays were CRC-checked; validate CSC structure
  // before handing them to the pipeline.
  {
    Csc a = Csc::from_parts_unchecked(m.n, m.n, std::move(snap.a_col_ptr),
                                      std::move(snap.a_row_idx),
                                      std::move(snap.a_values));
    Status v = a.validate();
    if (!v.is_ok())
      return Status::io_error("snapshot: matrix section is not a valid CSC (" +
                              v.message() + ")");
    original_ = std::move(a);
  }
  factorized_ = false;
  permuted_to_filled_.clear();
  block_src_.clear();
  stats_ = FactorStats{};
  stats_.n = m.n;
  stats_.nnz_a = m.nnz_a;

  // Deterministic preprocessing re-derives the structure the snapshot's
  // numeric state was captured against...
  std::unique_ptr<ThreadPool> local_pool =
      make_preprocess_pool(opts_.preprocess_threads);
  s = prepare_structure(local_pool.get());
  if (!s.is_ok()) return s;

  // ...and the snapshot must agree with it exactly before any value lands:
  // task count, block table shape, per-block nnz, and the live counter
  // array recomputed from the committed prefix.
  const auto done = static_cast<index_t>(m.tasks_done);
  if (static_cast<std::int64_t>(tasks_.size()) != m.n_tasks)
    return Status::failed_precondition(
        "resume: snapshot task count " + std::to_string(m.n_tasks) +
        " does not match the recomputed task graph (" +
        std::to_string(tasks_.size()) + ") — wrong matrix or options");
  if (snap.block_nnz.size() != static_cast<std::size_t>(factors_.n_blocks()))
    return Status::failed_precondition(
        "resume: snapshot block table does not match the recomputed blocking");
  for (std::size_t b = 0; b < snap.block_nnz.size(); ++b) {
    if (snap.block_nnz[b] != factors_.block(static_cast<nnz_t>(b)).nnz())
      return Status::failed_precondition(
          "resume: block " + std::to_string(b) +
          " nnz differs from the recomputed blocking");
  }
  const std::vector<index_t> expect = live_counters(factors_, tasks_, done);
  if (snap.counters != expect)
    return Status::failed_precondition(
        "resume: snapshot sync-free counters are inconsistent with its "
        "committed-task prefix");

  // Land the checkpointed block values: the numeric state at task `done`.
  // Incremental snapshots carry only the dirty blocks (targets of the
  // committed prefix); prepare_structure left every block holding its
  // initial pre-numeric values, which is exactly the state of a clean
  // block, so nothing else needs touching. The stored dirty list must
  // match the one recomputed from the task prefix bit for bit — a mismatch
  // means the snapshot and the recomputed task graph disagree.
  if (m.incremental != 0) {
    std::vector<char> expect_dirty(
        static_cast<std::size_t>(factors_.n_blocks()), 0);
    for (index_t t = 0; t < done; ++t)
      expect_dirty[static_cast<std::size_t>(
          tasks_[static_cast<std::size_t>(t)].target)] = 1;
    std::vector<nnz_t> expect_pos;
    for (nnz_t pos = 0; pos < factors_.n_blocks(); ++pos)
      if (expect_dirty[static_cast<std::size_t>(pos)])
        expect_pos.push_back(pos);
    if (snap.dirty_pos != expect_pos)
      return Status::failed_precondition(
          "resume: snapshot dirty-block list (" +
          std::to_string(snap.dirty_pos.size()) +
          " blocks) does not match the targets of its committed-task "
          "prefix (" +
          std::to_string(expect_pos.size()) + " blocks)");
    std::size_t off = 0;
    for (nnz_t pos : snap.dirty_pos) {
      auto vals = factors_.block(pos).values_mut();
      std::copy(snap.block_values.begin() + static_cast<std::ptrdiff_t>(off),
                snap.block_values.begin() +
                    static_cast<std::ptrdiff_t>(off + vals.size()),
                vals.begin());
      off += vals.size();
    }
  } else {
    std::size_t off = 0;
    for (nnz_t pos = 0; pos < static_cast<nnz_t>(snap.block_nnz.size());
         ++pos) {
      auto vals = factors_.block(pos).values_mut();
      std::copy(snap.block_values.begin() + static_cast<std::ptrdiff_t>(off),
                snap.block_values.begin() +
                    static_cast<std::ptrdiff_t>(off + vals.size()),
                vals.begin());
      off += vals.size();
    }
  }
  stats_.resumed_from_task = done;

  // Continue the canonical execution from the cut.
  s = run_numeric_phase(done);
  if (!s.is_ok()) return s;
  s = build_solve_plans();
  if (!s.is_ok()) return s;
  factorized_ = true;
  return Status::ok();
}

Status Solver::build_solve_plans() {
  Timer timer;
  solve_plan_ = SolvePlan::build(factors_);
  runtime::TrsvOptions topts;
  topts.device = opts_.device;
  topts.n_ranks = opts_.n_ranks;
  topts.execute_numerics = false;
  Status s;
  if (kernels::stores_fp32(opts_.precision)) {
    // Build against the FP32 twin so the plans' segment byte sizes model the
    // FP32 message payloads (the structure arrays are identical either way).
    s = runtime::build_trsv_plan(factors32_, mapping_, /*lower=*/true, topts,
                                 &trsv_fwd_);
    if (!s.is_ok()) return s;
    s = runtime::build_trsv_plan(factors32_, mapping_, /*lower=*/false, topts,
                                 &trsv_bwd_);
  } else {
    s = runtime::build_trsv_plan(factors_, mapping_, /*lower=*/true, topts,
                                 &trsv_fwd_);
    if (!s.is_ok()) return s;
    s = runtime::build_trsv_plan(factors_, mapping_, /*lower=*/false, topts,
                                 &trsv_bwd_);
  }
  if (!s.is_ok()) return s;
  stats_.plan_seconds = timer.seconds();
  return Status::ok();
}

Status Solver::run_numeric_phase(index_t resume_from_task) {
  Timer timer;
  runtime::SimOptions so;
  so.device = opts_.device;
  so.n_ranks = opts_.n_ranks;
  so.policy = opts_.policy;
  so.schedule = opts_.schedule;
  so.execute_numerics = true;
  so.thresholds = opts_.thresholds;
  so.pivot_tol = opts_.pivot_tol;
  so.faults = opts_.fault_plan;
  so.elastic = opts_.elastic_plan;
  so.mtbf_seconds = opts_.mtbf_seconds;
  so.verify_level = opts_.verify_level;
  so.abft = opts_.abft_level;
  so.cancel = opts_.cancel;
  so.resume_from_task = resume_from_task;
  if (!opts_.checkpoint_path.empty()) {
    // Cadence precedence: an explicit interval is obeyed exactly; with an
    // MTBF set, interval 0 reaches the simulator, which derives the
    // Young/Daly optimum from the modelled snapshot cost (no worthiness
    // floor — the optimum already balances overhead against lost work);
    // otherwise the fixed default puts snapshots at ~25/50/75% of the run
    // (never a wasted one just before completion), with a worthiness floor:
    // when less than ~100ms of work would be lost, re-running it beats
    // writing (and later restoring) a snapshot, so the safe point is
    // skipped.
    if (opts_.checkpoint_interval_tasks > 0) {
      so.checkpoint_interval_tasks = opts_.checkpoint_interval_tasks;
    } else if (opts_.mtbf_seconds > 0) {
      so.checkpoint_interval_tasks = 0;
    } else {
      so.checkpoint_interval_tasks =
          std::max<index_t>(1, static_cast<index_t>((tasks_.size() + 3) / 4));
      so.checkpoint_min_elapsed_seconds = 0.1;
    }
    so.checkpoint_sink = [this](index_t done) { return write_checkpoint(done); };
    // Fresh dirty tracking per numeric run: the marks are a pure function
    // of the committed prefix, so a resume's [0, resume_from_task) prefix
    // is re-marked by the first checkpoint after the cut.
    ckpt_dirty_.assign(static_cast<std::size_t>(factors_.n_blocks()), 0);
    ckpt_marked_upto_ = 0;
  }
  Status s;
  if (kernels::stores_fp32(opts_.precision)) {
    // FP32 numeric phase (DESIGN.md §14): narrow the assembled FP64 state
    // through the structure-sharing conversion (a pattern-only scatter — the
    // twins are positionally identical), run the identical canonical
    // execution in FP32, then widen the finished factors back so every FP64
    // consumer (determinant, condest, snapshots) keeps working. The widening
    // is exact, so factors_ is a faithful view of the FP32 bits, not a
    // reround.
    factors32_ = block::BlockMatrixT<float>::converted_from(factors_);
    s = runtime::simulate_factorization(factors32_, tasks_, mapping_, so,
                                        &stats_.sim);
    if (s.is_ok()) {
      for (nnz_t pos = 0; pos < static_cast<nnz_t>(factors_.n_blocks());
           ++pos) {
        auto dst = factors_.block(pos).values_mut();
        const auto src = factors32_.block(pos).values();
        for (std::size_t i = 0; i < dst.size(); ++i)
          dst[i] = static_cast<value_t>(src[i]);
      }
    }
  } else {
    s = runtime::simulate_factorization(factors_, tasks_, mapping_, so,
                                        &stats_.sim);
  }
  // A snapshot write may still be in flight on the writer thread; it must
  // land before we return so the file is complete even when the run was
  // killed mid-task-graph.
  Status flushed = flush_checkpoint_writer();
  if (s.is_ok() && !flushed.is_ok()) s = flushed;
  stats_.numeric_wall_seconds = timer.seconds();
  return s;
}

namespace {

/// True for the two cooperative-stop codes: the operation was shed on
/// purpose and the pre-call state is still meaningful to roll back to.
bool is_cancel_code(const Status& s) {
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

Status Solver::refactorize(const Csc& a) {
  if (!factorized_)
    return Status::failed_precondition("refactorize: factorize() first");
  if (a.n_rows() != stats_.n || a.n_cols() != stats_.n)
    return Status::invalid_argument("refactorize: shape mismatch");
  // The pattern must match the analysed one exactly (same col_ptr/row_idx).
  if (!std::equal(a.col_ptr().begin(), a.col_ptr().end(),
                  original_.col_ptr().begin(), original_.col_ptr().end()) ||
      !std::equal(a.row_idx().begin(), a.row_idx().end(),
                  original_.row_idx().begin(), original_.row_idx().end())) {
    return Status::failed_precondition(
        "refactorize: sparsity pattern differs from the analysed matrix");
  }
  std::vector<value_t> prev_values;
  if (opts_.cancel) {
    const auto ov = original_.values();
    prev_values.assign(ov.begin(), ov.end());
  }
  original_ = a;
  Status s = refactorize_reuse();
  if (!s.is_ok() && opts_.cancel && is_cancel_code(s)) {
    // Pair with refactorize_reuse's rollback: the analysed matrix must
    // match the reinstated factors, or refinement would mix the two.
    std::copy(prev_values.begin(), prev_values.end(),
              original_.values_mut().begin());
  }
  return s;
}

Status Solver::refactorize_values(std::span<const value_t> values) {
  if (!factorized_)
    return Status::failed_precondition("refactorize: factorize() first");
  if (values.size() != static_cast<std::size_t>(original_.nnz()))
    return Status::failed_precondition(
        "refactorize: " + std::to_string(values.size()) +
        " values do not match the analysed matrix's nnz (" +
        std::to_string(original_.nnz()) + ")");
  std::vector<value_t> prev_values;
  if (opts_.cancel) {
    const auto ov = original_.values();
    prev_values.assign(ov.begin(), ov.end());
  }
  std::copy(values.begin(), values.end(), original_.values_mut().begin());
  Status s = refactorize_reuse();
  if (!s.is_ok() && opts_.cancel && is_cancel_code(s)) {
    std::copy(prev_values.begin(), prev_values.end(),
              original_.values_mut().begin());
  }
  return s;
}

void Solver::build_reuse_maps() {
  const Csc& ap = reorder_.permuted;
  const Csc& filled = symbolic_.filled;
  permuted_to_filled_.resize(static_cast<std::size_t>(ap.nnz()));
  for (index_t j = 0; j < ap.n_cols(); ++j) {
    for (nnz_t p = ap.col_begin(j); p < ap.col_end(j); ++p) {
      const nnz_t q = filled.find(ap.row_idx()[static_cast<std::size_t>(p)], j);
      PANGULU_CHECK(q >= 0, "refactorize: entry outside filled pattern");
      permuted_to_filled_[static_cast<std::size_t>(p)] = q;
    }
  }
  block_src_.clear();
  block_src_.reserve(static_cast<std::size_t>(factors_.total_nnz()));
  const auto& grid = factors_.grid();
  for (nnz_t pos = 0; pos < static_cast<nnz_t>(factors_.n_blocks()); ++pos) {
    const Csc& blk = factors_.block(pos);
    const index_t r0 = grid.block_start(factors_.block_row_of(pos));
    const index_t c0 = grid.block_start(factors_.block_col_of(pos));
    for (index_t lj = 0; lj < blk.n_cols(); ++lj) {
      for (nnz_t p = blk.col_begin(lj); p < blk.col_end(lj); ++p) {
        const nnz_t q = filled.find(
            r0 + blk.row_idx()[static_cast<std::size_t>(p)], c0 + lj);
        PANGULU_CHECK(q >= 0, "refactorize: block slot outside filled pattern");
        block_src_.push_back(q);
      }
    }
  }
}

Status Solver::refactorize_reuse() {
  // With a cancel token armed, a refactorisation can stop at any commit
  // safe point. The contract is that a cancelled refactorize never
  // publishes a partial factor AND keeps the previous one solvable, so
  // snapshot every value array the re-scatter and numeric phase overwrite
  // (patterns never change here) and reinstate them on a cancel-typed
  // failure. Other failures keep the historical behaviour: the solver
  // drops to un-factorised.
  const bool snapshot = opts_.cancel != nullptr;
  std::vector<value_t> prev_permuted;
  std::vector<value_t> prev_filled;
  std::vector<value_t> prev_factors;
  std::vector<float> prev_factors32;
  if (snapshot) {
    const auto pv = reorder_.permuted.values();
    prev_permuted.assign(pv.begin(), pv.end());
    const auto sfv = symbolic_.filled.values();
    prev_filled.assign(sfv.begin(), sfv.end());
    prev_factors.reserve(static_cast<std::size_t>(factors_.total_nnz()));
    for (nnz_t pos = 0; pos < static_cast<nnz_t>(factors_.n_blocks()); ++pos) {
      const auto bv = factors_.block(pos).values();
      prev_factors.insert(prev_factors.end(), bv.begin(), bv.end());
    }
    if (kernels::stores_fp32(opts_.precision)) {
      prev_factors32.reserve(static_cast<std::size_t>(factors32_.total_nnz()));
      for (nnz_t pos = 0; pos < static_cast<nnz_t>(factors32_.n_blocks());
           ++pos) {
        const auto bv = factors32_.block(pos).values();
        prev_factors32.insert(prev_factors32.end(), bv.begin(), bv.end());
      }
    }
  }
  // Re-apply the frozen scaling + permutations to the new values.
  Csc work = original_;
  work.scale(reorder_.row_scale, reorder_.col_scale);
  reorder_.permuted = work.permuted(reorder_.row_perm, reorder_.col_perm);
  // The scatter maps depend only on the (unchanged) pattern; build them on
  // the first refactorisation, then reuse forever.
  if (permuted_to_filled_.empty()) build_reuse_maps();
  // Scatter into the filled pattern: zero the fill-ins, land the new values.
  // Bitwise the state a fresh symbolic assembly of these values produces.
  auto fv = symbolic_.filled.values_mut();
  std::fill(fv.begin(), fv.end(), value_t(0));
  const auto apv = reorder_.permuted.values();
  for (std::size_t p = 0; p < apv.size(); ++p)
    fv[static_cast<std::size_t>(permuted_to_filled_[p])] = apv[p];
  // Rewrite the factor blocks' values in place — the slots line up with
  // from_filled's extraction order, so no structure is rebuilt.
  std::size_t cur = 0;
  for (nnz_t pos = 0; pos < static_cast<nnz_t>(factors_.n_blocks()); ++pos) {
    auto bv = factors_.block(pos).values_mut();
    for (value_t& v : bv)
      v = fv[static_cast<std::size_t>(block_src_[cur++])];
  }
  // Every structure phase is skipped outright: ordering, symbolic, blocking,
  // mapping, planning and verification all carry over from the analysis.
  stats_.reorder_seconds = 0;
  stats_.symbolic_seconds = 0;
  stats_.preprocess_seconds = 0;
  stats_.blocking_seconds = 0;
  stats_.mapping_seconds = 0;
  stats_.plan_seconds = 0;
  stats_.verify_seconds = 0;
  stats_.resumed_from_task = 0;
  Status s = run_numeric_phase(0);
  if (!s.is_ok()) {
    if (snapshot && is_cancel_code(s)) {
      // Reinstate the previous factorisation value-for-value; the solver
      // stays solvable with the pre-refactorize factors.
      std::copy(prev_permuted.begin(), prev_permuted.end(),
                reorder_.permuted.values_mut().begin());
      std::copy(prev_filled.begin(), prev_filled.end(),
                symbolic_.filled.values_mut().begin());
      std::size_t at = 0;
      for (nnz_t pos = 0; pos < static_cast<nnz_t>(factors_.n_blocks());
           ++pos) {
        auto bv = factors_.block(pos).values_mut();
        for (value_t& v : bv) v = prev_factors[at++];
      }
      if (kernels::stores_fp32(opts_.precision)) {
        std::size_t at32 = 0;
        for (nnz_t pos = 0; pos < static_cast<nnz_t>(factors32_.n_blocks());
             ++pos) {
          auto bv = factors32_.block(pos).values_mut();
          for (float& v : bv) v = prev_factors32[at32++];
        }
      }
      return s;
    }
    factorized_ = false;
    return s;
  }
  // Pattern, mapping and device model are unchanged, and the solve plans
  // read only those: solve_plan_/trsv_fwd_/trsv_bwd_ stay valid as built.
  return Status::ok();
}

Status Solver::solve(std::span<const value_t> b, std::span<value_t> x,
                     SolveStats* solve_stats) const {
  return solve(b, x, solve_stats, opts_.cancel);
}

Status Solver::solve(std::span<const value_t> b, std::span<value_t> x,
                     SolveStats* solve_stats, const CancelToken* cancel) const {
  if (!factorized_) return Status::failed_precondition("factorize() first");
  const index_t n = stats_.n;
  if (static_cast<index_t>(b.size()) != n || static_cast<index_t>(x.size()) != n)
    return Status::invalid_argument("solve: size mismatch");
  if (kernels::stores_fp32(opts_.precision))
    return solve_fp32(b, x, solve_stats, cancel);

  // One direct solve pass: permute/scale rhs, two triangular solves,
  // unpermute/scale solution.
  std::vector<value_t> z(static_cast<std::size_t>(n));
  auto direct_pass = [&](std::span<const value_t> rhs,
                         std::span<value_t> sol) -> Status {
    // bp(row_perm[r]) = row_scale[r] * rhs(r)
    for (index_t r = 0; r < n; ++r) {
      z[static_cast<std::size_t>(reorder_.row_perm[static_cast<std::size_t>(r)])] =
          reorder_.row_scale[static_cast<std::size_t>(r)] *
          rhs[static_cast<std::size_t>(r)];
    }
    // Cancellation between sweep levels leaves only the internal work
    // vector partial; `sol` is written after both sweeps complete.
    Status ss = block_lower_solve(factors_, solve_plan_, z, cancel);
    if (!ss.is_ok()) return ss;
    ss = block_upper_solve(factors_, solve_plan_, z, cancel);
    if (!ss.is_ok()) return ss;
    // x(c) = col_scale[c] * z(col_perm[c])
    for (index_t c = 0; c < n; ++c) {
      sol[static_cast<std::size_t>(c)] =
          reorder_.col_scale[static_cast<std::size_t>(c)] *
          z[static_cast<std::size_t>(reorder_.col_perm[static_cast<std::size_t>(c)])];
    }
    return Status::ok();
  };

  // The whole pass works on an internal iterate; the caller's x is written
  // only on success, so a cancel-typed return leaves it bitwise untouched.
  std::vector<value_t> xi(static_cast<std::size_t>(n));
  Status ds = direct_pass(b, xi);
  if (!ds.is_ok()) return ds;

  // Iterative refinement against the original matrix recovers the digits a
  // perturbed pivot may have cost (the GESP recipe).
  std::vector<value_t> r(static_cast<std::size_t>(n));
  std::vector<value_t> ax(static_cast<std::size_t>(n));
  std::vector<value_t> dx(static_cast<std::size_t>(n));
  int iterations = 0;
  value_t last_residual = 0;
  for (int it = 0; it <= opts_.refine_iters; ++it) {
    if (cancel) {
      Status cs = cancel->check(
          ("refinement iteration " + std::to_string(it)).c_str());
      if (!cs.is_ok()) return cs;
    }
    original_.spmv(xi, ax);
    for (index_t i = 0; i < n; ++i)
      r[static_cast<std::size_t>(i)] =
          b[static_cast<std::size_t>(i)] - ax[static_cast<std::size_t>(i)];
    const value_t rn = norm_inf(r);
    const value_t scale =
        std::max<value_t>(norm1(original_) * norm_inf(xi) + norm_inf(b), 1);
    last_residual = rn / scale;
    if (it == opts_.refine_iters || last_residual <= 1e-16) break;
    ds = direct_pass(r, dx);
    if (!ds.is_ok()) return ds;
    for (index_t i = 0; i < n; ++i)
      xi[static_cast<std::size_t>(i)] += dx[static_cast<std::size_t>(i)];
    ++iterations;
  }
  std::copy(xi.begin(), xi.end(), x.begin());
  if (solve_stats) {
    solve_stats->refine_iterations = iterations;
    solve_stats->final_residual = last_residual;
  }
  return Status::ok();
}

Status Solver::solve_fp32(std::span<const value_t> b, std::span<value_t> x,
                          SolveStats* solve_stats,
                          const CancelToken* cancel) const {
  const index_t n = stats_.n;
  const bool mixed = opts_.precision == kernels::Precision::kMixedIR;

  // FP32 direct pass: permute/scale in FP64, round once into the FP32 work
  // vector, run the FP32 sweeps on the FP32 factors, widen on the way out.
  std::vector<float> z(static_cast<std::size_t>(n));
  auto direct_pass = [&](std::span<const value_t> rhs,
                         std::span<value_t> sol) -> Status {
    for (index_t r = 0; r < n; ++r) {
      z[static_cast<std::size_t>(
          reorder_.row_perm[static_cast<std::size_t>(r)])] =
          static_cast<float>(
              reorder_.row_scale[static_cast<std::size_t>(r)] *
              rhs[static_cast<std::size_t>(r)]);
    }
    Status ss = block_lower_solve(factors32_, solve_plan_, z, cancel);
    if (!ss.is_ok()) return ss;
    ss = block_upper_solve(factors32_, solve_plan_, z, cancel);
    if (!ss.is_ok()) return ss;
    for (index_t c = 0; c < n; ++c) {
      sol[static_cast<std::size_t>(c)] =
          reorder_.col_scale[static_cast<std::size_t>(c)] *
          static_cast<value_t>(z[static_cast<std::size_t>(
              reorder_.col_perm[static_cast<std::size_t>(c)])]);
    }
    return Status::ok();
  };

  // As in the FP64 path, refine an internal iterate and publish only on a
  // non-cancelled return; a numeric breakdown still surfaces its best
  // iterate, a cancel leaves the caller's x bitwise untouched.
  std::vector<value_t> xi(static_cast<std::size_t>(n));
  Status ds = direct_pass(b, xi);
  if (!ds.is_ok()) return ds;

  // Refinement in FP64 against the original matrix. kSingle runs the same
  // fixed-budget loop as the FP64 path (accuracy bounded by FP32, never an
  // error); kMixedIR iterates until Options::ir_tolerance and reports a
  // stall or an exhausted sweep budget as kNumericBreakdown.
  std::vector<value_t> r(static_cast<std::size_t>(n));
  std::vector<value_t> ax(static_cast<std::size_t>(n));
  std::vector<value_t> dx(static_cast<std::size_t>(n));
  const int max_iters = mixed ? opts_.ir_max_iters : opts_.refine_iters;
  int iterations = 0;
  value_t last_residual = 0;
  value_t prev_residual = std::numeric_limits<value_t>::infinity();
  Status result = Status::ok();
  for (int it = 0;; ++it) {
    if (cancel) {
      Status cs = cancel->check(
          ("refinement iteration " + std::to_string(it)).c_str());
      if (!cs.is_ok()) return cs;
    }
    original_.spmv(xi, ax);
    for (index_t i = 0; i < n; ++i)
      r[static_cast<std::size_t>(i)] =
          b[static_cast<std::size_t>(i)] - ax[static_cast<std::size_t>(i)];
    const value_t rn = norm_inf(r);
    const value_t scale =
        std::max<value_t>(norm1(original_) * norm_inf(xi) + norm_inf(b), 1);
    last_residual = rn / scale;
    if (mixed) {
      if (last_residual <= opts_.ir_tolerance) break;
      // A sweep that no longer shrinks the residual will not start shrinking
      // it later: the FP32 factorisation has hit its preconditioning limit.
      // std::to_string would print these as fixed-point zeros.
      auto sci = [](value_t v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3e", static_cast<double>(v));
        return std::string(buf);
      };
      if (last_residual >= prev_residual * value_t(0.9)) {
        result = Status::numeric_breakdown(
            "mixed-precision refinement stalled at relative residual " +
            sci(last_residual) + " (target " + sci(opts_.ir_tolerance) +
            ") after " + std::to_string(iterations) +
            " sweeps — retry at Precision::kDouble");
        break;
      }
      if (it >= max_iters) {
        result = Status::numeric_breakdown(
            "mixed-precision refinement did not reach relative residual " +
            sci(opts_.ir_tolerance) + " within " + std::to_string(max_iters) +
            " sweeps — retry at Precision::kDouble");
        break;
      }
    } else {
      if (it == max_iters || last_residual <= 1e-16) break;
    }
    ds = direct_pass(r, dx);
    if (!ds.is_ok()) return ds;
    for (index_t i = 0; i < n; ++i)
      xi[static_cast<std::size_t>(i)] += dx[static_cast<std::size_t>(i)];
    prev_residual = last_residual;
    ++iterations;
  }
  std::copy(xi.begin(), xi.end(), x.begin());
  if (solve_stats) {
    solve_stats->refine_iterations = iterations;
    solve_stats->final_residual = last_residual;
  }
  return result;
}

Status Solver::solve_multi(const Dense& b, Dense* x, SolveStats* worst) const {
  if (!factorized_) return Status::failed_precondition("factorize() first");
  if (b.n_rows() != stats_.n)
    return Status::invalid_argument("solve_multi: row count mismatch");
  if (kernels::stores_fp32(opts_.precision))
    return solve_multi_fp32(b, x, worst);
  const index_t n = stats_.n;
  const index_t k = b.n_cols();
  *x = Dense(n, k);
  if (worst) *worst = SolveStats{};
  if (k == 0) return Status::ok();

  // One panel direct pass for `kk` packed columns: the permute/scale step
  // packs the column-major rhs into the row-interleaved work panel the
  // sweeps consume, and the unpermute/scale step unpacks it back. Column for
  // column this performs exactly solve()'s direct_pass operations.
  std::vector<value_t> z(static_cast<std::size_t>(n) *
                         static_cast<std::size_t>(k));
  auto panel_direct = [&](const value_t* rhs, value_t* sol,
                          index_t kk) -> Status {
    for (index_t c = 0; c < kk; ++c) {
      const value_t* rc = rhs + static_cast<std::size_t>(c) * n;
      for (index_t r = 0; r < n; ++r) {
        z[static_cast<std::size_t>(
              reorder_.row_perm[static_cast<std::size_t>(r)]) *
              static_cast<std::size_t>(kk) +
          static_cast<std::size_t>(c)] =
            reorder_.row_scale[static_cast<std::size_t>(r)] *
            rc[static_cast<std::size_t>(r)];
      }
    }
    Status ss = block_lower_solve_multi(factors_, solve_plan_, z.data(), kk,
                                        kk, opts_.cancel);
    if (!ss.is_ok()) return ss;
    ss = block_upper_solve_multi(factors_, solve_plan_, z.data(), kk, kk,
                                 opts_.cancel);
    if (!ss.is_ok()) return ss;
    for (index_t c = 0; c < kk; ++c) {
      value_t* sc = sol + static_cast<std::size_t>(c) * n;
      for (index_t cc = 0; cc < n; ++cc) {
        sc[static_cast<std::size_t>(cc)] =
            reorder_.col_scale[static_cast<std::size_t>(cc)] *
            z[static_cast<std::size_t>(
                  reorder_.col_perm[static_cast<std::size_t>(cc)]) *
                  static_cast<std::size_t>(kk) +
              static_cast<std::size_t>(c)];
      }
    }
    return Status::ok();
  };

  // Dense stores columns contiguously, so b/x panels enter and leave
  // panel_direct column-major; only the internal work panel is interleaved.
  Status ds = panel_direct(b.col(0), x->col(0), k);
  if (!ds.is_ok()) return ds;

  // Iterative refinement on the shrinking active set: a column leaves the
  // panel the moment solve() would have stopped refining it, and the panel
  // kernels are per-column independent, so each column sees exactly the
  // operations of its own single-RHS refinement loop.
  std::vector<value_t> r(static_cast<std::size_t>(n));
  std::vector<value_t> ax(static_cast<std::size_t>(n));
  std::vector<value_t> rp(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(k));
  std::vector<value_t> dx(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(k));
  std::vector<int> iters(static_cast<std::size_t>(k), 0);
  std::vector<value_t> resid(static_cast<std::size_t>(k), 0);
  std::vector<index_t> active(static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j) active[static_cast<std::size_t>(j)] = j;
  for (int it = 0; it <= opts_.refine_iters && !active.empty(); ++it) {
    if (opts_.cancel) {
      Status cs = opts_.cancel->check(
          ("refinement iteration " + std::to_string(it)).c_str());
      if (!cs.is_ok()) return cs;
    }
    std::vector<index_t> next;
    for (index_t col : active) {
      value_t* xc = x->col(col);
      original_.spmv({xc, static_cast<std::size_t>(n)}, ax);
      for (index_t i = 0; i < n; ++i)
        r[static_cast<std::size_t>(i)] =
            b(i, col) - ax[static_cast<std::size_t>(i)];
      const value_t rn = norm_inf(r);
      const value_t scale = std::max<value_t>(
          norm1(original_) *
                  norm_inf({xc, static_cast<std::size_t>(n)}) +
              norm_inf({b.col(col), static_cast<std::size_t>(n)}),
          1);
      resid[static_cast<std::size_t>(col)] = rn / scale;
      if (it == opts_.refine_iters ||
          resid[static_cast<std::size_t>(col)] <= 1e-16)
        continue;  // this column is done refining
      std::copy(r.begin(), r.end(),
                rp.begin() + static_cast<std::ptrdiff_t>(next.size()) * n);
      next.push_back(col);
    }
    if (next.empty()) break;
    ds = panel_direct(rp.data(), dx.data(), static_cast<index_t>(next.size()));
    if (!ds.is_ok()) return ds;
    for (std::size_t i = 0; i < next.size(); ++i) {
      const index_t col = next[i];
      value_t* xc = x->col(col);
      const value_t* dc = dx.data() + i * static_cast<std::size_t>(n);
      for (index_t row = 0; row < n; ++row)
        xc[static_cast<std::size_t>(row)] += dc[static_cast<std::size_t>(row)];
      ++iters[static_cast<std::size_t>(col)];
    }
    active = std::move(next);
  }
  if (worst) {
    for (index_t j = 0; j < k; ++j) {
      worst->refine_iterations =
          std::max(worst->refine_iterations, iters[static_cast<std::size_t>(j)]);
      worst->final_residual =
          std::max(worst->final_residual, resid[static_cast<std::size_t>(j)]);
    }
  }
  return Status::ok();
}

Status Solver::solve_multi_fp32(const Dense& b, Dense* x,
                                SolveStats* worst) const {
  const index_t n = stats_.n;
  const index_t k = b.n_cols();
  *x = Dense(n, k);
  if (worst) *worst = SolveStats{};
  if (k == 0) return Status::ok();
  const bool mixed = opts_.precision == kernels::Precision::kMixedIR;

  // FP32 panel direct pass: as solve_multi's, but the row-interleaved work
  // panel is FP32 and the sweeps run on the FP32 factors. Column for column
  // this performs exactly solve_fp32()'s direct-pass operations.
  std::vector<float> z(static_cast<std::size_t>(n) *
                       static_cast<std::size_t>(k));
  auto panel_direct = [&](const value_t* rhs, value_t* sol,
                          index_t kk) -> Status {
    for (index_t c = 0; c < kk; ++c) {
      const value_t* rc = rhs + static_cast<std::size_t>(c) * n;
      for (index_t row = 0; row < n; ++row) {
        z[static_cast<std::size_t>(
              reorder_.row_perm[static_cast<std::size_t>(row)]) *
              static_cast<std::size_t>(kk) +
          static_cast<std::size_t>(c)] =
            static_cast<float>(
                reorder_.row_scale[static_cast<std::size_t>(row)] *
                rc[static_cast<std::size_t>(row)]);
      }
    }
    Status ss = block_lower_solve_multi(factors32_, solve_plan_, z.data(), kk,
                                        kk, opts_.cancel);
    if (!ss.is_ok()) return ss;
    ss = block_upper_solve_multi(factors32_, solve_plan_, z.data(), kk, kk,
                                 opts_.cancel);
    if (!ss.is_ok()) return ss;
    for (index_t c = 0; c < kk; ++c) {
      value_t* sc = sol + static_cast<std::size_t>(c) * n;
      for (index_t cc = 0; cc < n; ++cc) {
        sc[static_cast<std::size_t>(cc)] =
            reorder_.col_scale[static_cast<std::size_t>(cc)] *
            static_cast<value_t>(
                z[static_cast<std::size_t>(
                      reorder_.col_perm[static_cast<std::size_t>(cc)]) *
                      static_cast<std::size_t>(kk) +
                  static_cast<std::size_t>(c)]);
      }
    }
    return Status::ok();
  };

  Status ds = panel_direct(b.col(0), x->col(0), k);
  if (!ds.is_ok()) return ds;

  // FP64 refinement on the shrinking active set, column-for-column identical
  // to solve_fp32's loop: a column leaves when it converges, stalls, or
  // exhausts the sweep budget; under kMixedIR the latter two mark it failed.
  std::vector<value_t> r(static_cast<std::size_t>(n));
  std::vector<value_t> ax(static_cast<std::size_t>(n));
  std::vector<value_t> rp(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(k));
  std::vector<value_t> dx(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(k));
  std::vector<int> iters(static_cast<std::size_t>(k), 0);
  std::vector<value_t> resid(static_cast<std::size_t>(k), 0);
  std::vector<value_t> prev(static_cast<std::size_t>(k),
                            std::numeric_limits<value_t>::infinity());
  std::vector<char> failed(static_cast<std::size_t>(k), 0);
  const int max_iters = mixed ? opts_.ir_max_iters : opts_.refine_iters;
  std::vector<index_t> active(static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j) active[static_cast<std::size_t>(j)] = j;
  for (int it = 0; !active.empty(); ++it) {
    if (opts_.cancel) {
      Status cs = opts_.cancel->check(
          ("refinement iteration " + std::to_string(it)).c_str());
      if (!cs.is_ok()) return cs;
    }
    std::vector<index_t> next;
    for (index_t col : active) {
      value_t* xc = x->col(col);
      original_.spmv({xc, static_cast<std::size_t>(n)}, ax);
      for (index_t i = 0; i < n; ++i)
        r[static_cast<std::size_t>(i)] =
            b(i, col) - ax[static_cast<std::size_t>(i)];
      const value_t rn = norm_inf(r);
      const value_t scale = std::max<value_t>(
          norm1(original_) * norm_inf({xc, static_cast<std::size_t>(n)}) +
              norm_inf({b.col(col), static_cast<std::size_t>(n)}),
          1);
      resid[static_cast<std::size_t>(col)] = rn / scale;
      if (mixed) {
        if (resid[static_cast<std::size_t>(col)] <= opts_.ir_tolerance)
          continue;  // converged
        if (resid[static_cast<std::size_t>(col)] >=
                prev[static_cast<std::size_t>(col)] * value_t(0.9) ||
            it >= max_iters) {
          failed[static_cast<std::size_t>(col)] = 1;
          continue;
        }
      } else {
        if (it == max_iters ||
            resid[static_cast<std::size_t>(col)] <= 1e-16)
          continue;
      }
      std::copy(r.begin(), r.end(),
                rp.begin() + static_cast<std::ptrdiff_t>(next.size()) * n);
      prev[static_cast<std::size_t>(col)] =
          resid[static_cast<std::size_t>(col)];
      next.push_back(col);
    }
    if (next.empty()) break;
    ds = panel_direct(rp.data(), dx.data(), static_cast<index_t>(next.size()));
    if (!ds.is_ok()) return ds;
    for (std::size_t i = 0; i < next.size(); ++i) {
      const index_t col = next[i];
      value_t* xc = x->col(col);
      const value_t* dc = dx.data() + i * static_cast<std::size_t>(n);
      for (index_t row = 0; row < n; ++row)
        xc[static_cast<std::size_t>(row)] += dc[static_cast<std::size_t>(row)];
      ++iters[static_cast<std::size_t>(col)];
    }
    active = std::move(next);
  }
  if (worst) {
    for (index_t j = 0; j < k; ++j) {
      worst->refine_iterations = std::max(
          worst->refine_iterations, iters[static_cast<std::size_t>(j)]);
      worst->final_residual =
          std::max(worst->final_residual, resid[static_cast<std::size_t>(j)]);
    }
  }
  if (mixed) {
    index_t n_failed = 0;
    for (char fcol : failed) n_failed += fcol != 0;
    if (n_failed > 0)
      return Status::numeric_breakdown(
          "mixed-precision refinement failed to converge on " +
          std::to_string(n_failed) + " of " + std::to_string(k) +
          " right-hand sides — retry at Precision::kDouble");
  }
  return Status::ok();
}

Status Solver::solve_multi_transpose(const Dense& b, Dense* x) const {
  if (!factorized_) return Status::failed_precondition("factorize() first");
  if (b.n_rows() != stats_.n)
    return Status::invalid_argument("solve_multi_transpose: row count mismatch");
  const index_t n = stats_.n;
  const index_t k = b.n_cols();
  *x = Dense(n, k);
  if (k == 0) return Status::ok();
  if (kernels::stores_fp32(opts_.precision)) {
    // FP32 transposed panel sweeps on the FP32 factors.
    std::vector<float> z32(static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(k));
    for (index_t cidx = 0; cidx < k; ++cidx) {
      for (index_t c = 0; c < n; ++c) {
        z32[static_cast<std::size_t>(
                reorder_.col_perm[static_cast<std::size_t>(c)]) *
                static_cast<std::size_t>(k) +
            static_cast<std::size_t>(cidx)] =
            static_cast<float>(
                reorder_.col_scale[static_cast<std::size_t>(c)] * b(c, cidx));
      }
    }
    Status ss = block_upper_transpose_solve_multi(factors32_, solve_plan_,
                                                  z32.data(), k, k,
                                                  opts_.cancel);
    if (!ss.is_ok()) return ss;
    ss = block_lower_transpose_solve_multi(factors32_, solve_plan_,
                                           z32.data(), k, k, opts_.cancel);
    if (!ss.is_ok()) return ss;
    for (index_t cidx = 0; cidx < k; ++cidx) {
      for (index_t row = 0; row < n; ++row) {
        (*x)(row, cidx) =
            reorder_.row_scale[static_cast<std::size_t>(row)] *
            static_cast<value_t>(
                z32[static_cast<std::size_t>(
                        reorder_.row_perm[static_cast<std::size_t>(row)]) *
                        static_cast<std::size_t>(k) +
                    static_cast<std::size_t>(cidx)]);
      }
    }
    return Status::ok();
  }
  // Row-interleaved work panel, as in solve_multi's panel_direct.
  std::vector<value_t> z(static_cast<std::size_t>(n) *
                         static_cast<std::size_t>(k));
  for (index_t cidx = 0; cidx < k; ++cidx) {
    for (index_t c = 0; c < n; ++c) {
      z[static_cast<std::size_t>(
            reorder_.col_perm[static_cast<std::size_t>(c)]) *
            static_cast<std::size_t>(k) +
        static_cast<std::size_t>(cidx)] =
          reorder_.col_scale[static_cast<std::size_t>(c)] * b(c, cidx);
    }
  }
  Status ss = block_upper_transpose_solve_multi(factors_, solve_plan_,
                                                z.data(), k, k, opts_.cancel);
  if (!ss.is_ok()) return ss;
  ss = block_lower_transpose_solve_multi(factors_, solve_plan_, z.data(), k, k,
                                         opts_.cancel);
  if (!ss.is_ok()) return ss;
  for (index_t cidx = 0; cidx < k; ++cidx) {
    for (index_t row = 0; row < n; ++row) {
      (*x)(row, cidx) =
          reorder_.row_scale[static_cast<std::size_t>(row)] *
          z[static_cast<std::size_t>(
                reorder_.row_perm[static_cast<std::size_t>(row)]) *
                static_cast<std::size_t>(k) +
            static_cast<std::size_t>(cidx)];
    }
  }
  return Status::ok();
}

Status Solver::solve_transpose(std::span<const value_t> b,
                               std::span<value_t> x) const {
  if (!factorized_) return Status::failed_precondition("factorize() first");
  const index_t n = stats_.n;
  if (static_cast<index_t>(b.size()) != n || static_cast<index_t>(x.size()) != n)
    return Status::invalid_argument("solve_transpose: size mismatch");
  // A^T x = b with Ap = P_R (D_r A D_c) P_C^T = L U:
  //   z(col_perm[c]) = col_scale[c] * b(c);  U^T y = z;  L^T w = y;
  //   x(r) = row_scale[r] * w(row_perm[r]).
  if (kernels::stores_fp32(opts_.precision)) {
    // FP32 transposed sweeps on the FP32 factors (no refinement here, as in
    // the FP64 path).
    std::vector<float> z32(static_cast<std::size_t>(n));
    for (index_t c = 0; c < n; ++c) {
      z32[static_cast<std::size_t>(
          reorder_.col_perm[static_cast<std::size_t>(c)])] =
          static_cast<float>(
              reorder_.col_scale[static_cast<std::size_t>(c)] *
              b[static_cast<std::size_t>(c)]);
    }
    Status ss =
        block_upper_transpose_solve(factors32_, solve_plan_, z32, opts_.cancel);
    if (!ss.is_ok()) return ss;
    ss = block_lower_transpose_solve(factors32_, solve_plan_, z32,
                                     opts_.cancel);
    if (!ss.is_ok()) return ss;
    for (index_t r = 0; r < n; ++r) {
      x[static_cast<std::size_t>(r)] =
          reorder_.row_scale[static_cast<std::size_t>(r)] *
          static_cast<value_t>(z32[static_cast<std::size_t>(
              reorder_.row_perm[static_cast<std::size_t>(r)])]);
    }
    return Status::ok();
  }
  std::vector<value_t> z(static_cast<std::size_t>(n));
  for (index_t c = 0; c < n; ++c) {
    z[static_cast<std::size_t>(reorder_.col_perm[static_cast<std::size_t>(c)])] =
        reorder_.col_scale[static_cast<std::size_t>(c)] *
        b[static_cast<std::size_t>(c)];
  }
  Status ss =
      block_upper_transpose_solve(factors_, solve_plan_, z, opts_.cancel);
  if (!ss.is_ok()) return ss;
  ss = block_lower_transpose_solve(factors_, solve_plan_, z, opts_.cancel);
  if (!ss.is_ok()) return ss;
  for (index_t r = 0; r < n; ++r) {
    x[static_cast<std::size_t>(r)] =
        reorder_.row_scale[static_cast<std::size_t>(r)] *
        z[static_cast<std::size_t>(reorder_.row_perm[static_cast<std::size_t>(r)])];
  }
  return Status::ok();
}

Status Solver::model_triangular_solve(runtime::SimResult* forward,
                                      runtime::SimResult* backward) const {
  if (!factorized_) return Status::failed_precondition("factorize() first");
  runtime::TrsvOptions opts;
  opts.device = opts_.device;
  opts.n_ranks = opts_.n_ranks;
  opts.execute_numerics = false;
  // The schedules were built at factorise time; repeat calls only replay the
  // event simulation. Under FP32 storage the replay runs against the FP32
  // twin, whose plans carry the FP32 message payload sizes.
  if (kernels::stores_fp32(opts_.precision)) {
    std::vector<float> dummy(static_cast<std::size_t>(stats_.n), 0.0f);
    Status s =
        runtime::simulate_trsv(factors32_, trsv_fwd_, dummy, opts, forward);
    if (!s.is_ok()) return s;
    return runtime::simulate_trsv(factors32_, trsv_bwd_, dummy, opts,
                                  backward);
  }
  std::vector<value_t> dummy(static_cast<std::size_t>(stats_.n), value_t(0));
  Status s = runtime::simulate_trsv(factors_, trsv_fwd_, dummy, opts, forward);
  if (!s.is_ok()) return s;
  return runtime::simulate_trsv(factors_, trsv_bwd_, dummy, opts, backward);
}

Status Solver::condest(value_t* cond_1) const {
  if (!factorized_) return Status::failed_precondition("factorize() first");
  const index_t n = stats_.n;
  // Hager's estimator for ||A^-1||_1 (Higham's refinement, a few sweeps).
  std::vector<value_t> x(static_cast<std::size_t>(n),
                         value_t(1) / static_cast<value_t>(n));
  std::vector<value_t> y(static_cast<std::size_t>(n));
  std::vector<value_t> xi(static_cast<std::size_t>(n));
  std::vector<value_t> z(static_cast<std::size_t>(n));
  value_t est = 0;
  index_t last_j = -1;
  for (int iter = 0; iter < 5; ++iter) {
    Status s = solve(x, y);
    if (!s.is_ok()) return s;
    value_t y1 = 0;
    for (value_t v : y) y1 += std::abs(v);
    est = std::max(est, y1);
    for (index_t i = 0; i < n; ++i)
      xi[static_cast<std::size_t>(i)] =
          y[static_cast<std::size_t>(i)] >= 0 ? value_t(1) : value_t(-1);
    s = solve_transpose(xi, z);
    if (!s.is_ok()) return s;
    index_t j = 0;
    for (index_t i = 1; i < n; ++i) {
      if (std::abs(z[static_cast<std::size_t>(i)]) >
          std::abs(z[static_cast<std::size_t>(j)]))
        j = i;
    }
    value_t ztx = 0;
    for (index_t i = 0; i < n; ++i)
      ztx += z[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
    if (std::abs(z[static_cast<std::size_t>(j)]) <= ztx || j == last_j) break;
    std::fill(x.begin(), x.end(), value_t(0));
    x[static_cast<std::size_t>(j)] = 1;
    last_j = j;
  }
  *cond_1 = norm1(original_) * est;
  return Status::ok();
}

namespace {

/// Parity of a permutation (+1 even, -1 odd) by cycle counting.
int permutation_sign(std::span<const index_t> p) {
  std::vector<char> seen(p.size(), 0);
  int sign = 1;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (seen[i]) continue;
    std::size_t len = 0;
    std::size_t j = i;
    while (!seen[j]) {
      seen[j] = 1;
      j = static_cast<std::size_t>(p[j]);
      ++len;
    }
    if (len % 2 == 0) sign = -sign;
  }
  return sign;
}

}  // namespace

Status Solver::log_abs_determinant(value_t* log_abs, int* sign) const {
  if (!factorized_) return Status::failed_precondition("factorize() first");
  // det(Ap) = prod U(j,j); Ap = P_R (D_r A D_c) P_C^T, so
  // log|det A| = sum log|u_jj| - sum log(row_scale) - sum log(col_scale)
  // and the sign collects the diagonal signs and both permutation parities.
  value_t acc = 0;
  int s = 1;
  const auto& f = factors_;
  for (index_t bk = 0; bk < f.nb(); ++bk) {
    const Csc& d = f.block(f.find_block(bk, bk));
    for (index_t j = 0; j < d.n_cols(); ++j) {
      const value_t ujj = d.at(j, j);
      if (ujj == value_t(0))
        return Status::numerical_error("zero pivot: determinant is 0");
      acc += std::log(std::abs(ujj));
      if (ujj < 0) s = -s;
    }
  }
  for (value_t v : reorder_.row_scale) acc -= std::log(v);
  for (value_t v : reorder_.col_scale) acc -= std::log(v);
  s *= permutation_sign(reorder_.row_perm) * permutation_sign(reorder_.col_perm);
  if (log_abs) *log_abs = acc;
  if (sign) *sign = s;
  return Status::ok();
}

}  // namespace pangulu::solver
