#include "solver/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <fstream>
#include <queue>
#include <sstream>

#include "util/rng.hpp"

namespace pangulu::solver {

namespace {

Status parse_error(int line, const std::string& what) {
  return Status::invalid_argument("traffic DSL line " + std::to_string(line) +
                                  ": " + what);
}

bool parse_bool(const std::string& tok, bool* out) {
  if (tok == "on" || tok == "true" || tok == "1") {
    *out = true;
    return true;
  }
  if (tok == "off" || tok == "false" || tok == "0") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

Status parse_traffic_scenarios(const std::string& text,
                               std::vector<TrafficScenario>* out) {
  if (!out) return Status::invalid_argument("traffic DSL: null output");
  out->clear();
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  bool open = false;
  TrafficScenario cur;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line
    if (key == "scenario") {
      if (open) return parse_error(lineno, "nested scenario (missing 'end')");
      std::string name;
      if (!(ls >> name)) return parse_error(lineno, "scenario needs a name");
      cur = TrafficScenario{};
      cur.name = name;
      open = true;
      continue;
    }
    if (key == "end") {
      if (!open) return parse_error(lineno, "'end' outside a scenario");
      out->push_back(cur);
      open = false;
      continue;
    }
    if (!open)
      return parse_error(lineno, "directive '" + key +
                                     "' outside a scenario block");
    std::string val;
    if (!(ls >> val)) return parse_error(lineno, "'" + key + "' needs a value");
    bool bval = false;
    if (key == "kind") {
      cur.kind = val;
    } else if (key == "request") {
      if (val != "solve" && val != "refactorize" && val != "factorize" &&
          val != "ckpt_factorize")
        return parse_error(lineno, "unknown request kind '" + val + "'");
      cur.request = val;
    } else if (key == "requests") {
      cur.requests = std::atoi(val.c_str());
      if (cur.requests < 1) return parse_error(lineno, "requests must be >= 1");
    } else if (key == "overload") {
      cur.overload = std::atof(val.c_str());
      if (cur.overload <= 0) return parse_error(lineno, "overload must be > 0");
    } else if (key == "deadline_mult") {
      cur.deadline_mult = std::atof(val.c_str());
      if (cur.deadline_mult < 0)
        return parse_error(lineno, "deadline_mult must be >= 0");
    } else if (key == "deadline_mix") {
      if (!parse_bool(val, &bval))
        return parse_error(lineno, "deadline_mix wants on/off");
      cur.deadline_mix = bval;
    } else if (key == "queue") {
      cur.queue = std::atoi(val.c_str());
      if (cur.queue < 0) return parse_error(lineno, "queue must be >= 0");
    } else if (key == "shed") {
      if (!parse_bool(val, &bval)) return parse_error(lineno, "shed wants on/off");
      cur.shed = bval;
    } else if (key == "scale_down_at") {
      cur.scale_down_at = std::atof(val.c_str());
      if (cur.scale_down_at > 1.0)
        return parse_error(lineno, "scale_down_at is a trace fraction in [0, 1]");
    } else if (key == "jitter") {
      cur.jitter = std::atof(val.c_str());
      if (cur.jitter < 0 || cur.jitter >= 1)
        return parse_error(lineno, "jitter must be in [0, 1)");
    } else if (key == "seed") {
      cur.seed = static_cast<std::uint64_t>(std::atoll(val.c_str()));
    } else {
      return parse_error(lineno, "unknown directive '" + key + "'");
    }
  }
  if (open)
    return parse_error(lineno, "scenario '" + cur.name + "' never ends");
  if (out->empty())
    return Status::invalid_argument("traffic DSL: no scenarios found");
  return Status::ok();
}

Status load_traffic_scenarios(const std::string& path,
                              std::vector<TrafficScenario>* out) {
  std::ifstream in(path);
  if (!in)
    return Status::io_error("traffic DSL: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_traffic_scenarios(buf.str(), out);
}

Status replay_traffic(const TrafficScenario& sc, const TrafficShape& shape,
                      double mean_service_seconds, TrafficReport* report) {
  if (!report) return Status::invalid_argument("traffic replay: null report");
  if (shape.servers < 1)
    return Status::invalid_argument("traffic replay: shape needs >= 1 server");
  if (sc.requests < 1)
    return Status::invalid_argument("traffic replay: empty trace");
  if (!(mean_service_seconds > 0))
    return Status::invalid_argument(
        "traffic replay: mean service time must be > 0");
  *report = TrafficReport{};
  report->offered = sc.requests;

  Rng rng(sc.seed);
  const int n = sc.requests;
  // Arrival rate: `overload` x the shape's service capacity. overload 2.0
  // on an 8-server shape offers twice what the shape can drain.
  const double rate =
      sc.overload * static_cast<double>(shape.servers) / mean_service_seconds;
  std::vector<double> arrival(static_cast<std::size_t>(n));
  std::vector<double> service(static_cast<std::size_t>(n));
  std::vector<double> deadline(static_cast<std::size_t>(n), 0);
  double t = 0;
  for (int i = 0; i < n; ++i) {
    // Exponential inter-arrivals (Poisson process), inverse-CDF sampled so
    // the trace is a pure function of the seed.
    t += -std::log(1.0 - rng.uniform(0.0, 1.0)) / rate;
    arrival[static_cast<std::size_t>(i)] = t;
    service[static_cast<std::size_t>(i)] =
        mean_service_seconds *
        (1.0 + sc.jitter * rng.uniform(-1.0, 1.0));
    double mult = sc.deadline_mult;
    if (sc.deadline_mix && (i % 2) == 1 && mult > 0) mult /= 4.0;
    if (mult > 0)
      deadline[static_cast<std::size_t>(i)] =
          arrival[static_cast<std::size_t>(i)] + mult * mean_service_seconds;
  }
  // Planned capacity change: after this instant the shape runs on half its
  // servers (rank drain during scale-down); in-flight work finishes, the
  // freed slots just never refill past the new cap.
  const double scale_down_time =
      sc.scale_down_at >= 0
          ? arrival[static_cast<std::size_t>(n - 1)] * sc.scale_down_at
          : -1.0;

  struct Ev {
    double time;
    int seq;      // tie-break: deterministic order for equal times
    int id;       // request id; completions carry the finishing request
    bool is_completion;
    bool operator>(const Ev& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> events;
  int seq = 0;
  for (int i = 0; i < n; ++i)
    events.push({arrival[static_cast<std::size_t>(i)], seq++, i, false});

  std::deque<int> waiting;
  int busy = 0;
  std::vector<double> latency;
  std::vector<double> waits;
  latency.reserve(static_cast<std::size_t>(n));
  double makespan = 0;

  auto capacity_at = [&](double now) {
    if (scale_down_time >= 0 && now >= scale_down_time)
      return std::max(1, shape.servers / 2);
    return shape.servers;
  };
  auto predicted_wait = [&](double /*now*/) {
    // SessionPool's shed predictor: the queue ahead plus this request, each
    // taking a mean service slot, drained by the current server count.
    return (static_cast<double>(waiting.size()) + 1.0) *
           mean_service_seconds / static_cast<double>(shape.servers);
  };
  auto start = [&](double now, int id) {
    ++busy;
    const double fin = now + service[static_cast<std::size_t>(id)];
    waits.push_back(now - arrival[static_cast<std::size_t>(id)]);
    events.push({fin, seq++, id, true});
  };

  while (!events.empty()) {
    const Ev ev = events.top();
    events.pop();
    makespan = std::max(makespan, ev.time);
    if (!ev.is_completion) {
      if (busy < capacity_at(ev.time)) {
        start(ev.time, ev.id);
        continue;
      }
      const double dl = deadline[static_cast<std::size_t>(ev.id)];
      if (sc.shed && dl > 0 && ev.time + predicted_wait(ev.time) > dl) {
        ++report->shed;  // shed on arrival: deadline cannot cover the wait
        continue;
      }
      if (sc.queue > 0 && static_cast<int>(waiting.size()) >= sc.queue) {
        ++report->rejected;
        continue;
      }
      waiting.push_back(ev.id);
      report->peak_queue_depth = std::max(
          report->peak_queue_depth, static_cast<int>(waiting.size()));
      continue;
    }
    // Completion: account the finished request, then backfill from the
    // queue — skipping (shedding) waiters whose deadline already lapsed.
    --busy;
    ++report->admitted;
    latency.push_back(ev.time - arrival[static_cast<std::size_t>(ev.id)]);
    while (!waiting.empty() && busy < capacity_at(ev.time)) {
      const int next = waiting.front();
      waiting.pop_front();
      const double dl = deadline[static_cast<std::size_t>(next)];
      if (sc.shed && dl > 0 && ev.time >= dl) {
        ++report->shed;  // shed in queue: deadline lapsed before dispatch
        continue;
      }
      start(ev.time, next);
    }
  }

  report->shed_rate =
      static_cast<double>(report->shed + report->rejected) /
      static_cast<double>(report->offered);
  report->makespan_seconds = makespan;
  if (report->admitted > 0 && makespan > 0)
    report->throughput_rps =
        static_cast<double>(report->admitted) / makespan;
  if (!latency.empty()) {
    std::sort(latency.begin(), latency.end());
    auto pct = [&](double p) {
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(latency.size() - 1) + 0.5);
      return latency[std::min(idx, latency.size() - 1)];
    };
    report->p50_latency = pct(0.50);
    report->p95_latency = pct(0.95);
    report->p99_latency = pct(0.99);
  }
  if (!waits.empty()) {
    double sum = 0;
    for (double w : waits) sum += w;
    report->mean_wait = sum / static_cast<double>(waits.size());
  }
  return Status::ok();
}

}  // namespace pangulu::solver
