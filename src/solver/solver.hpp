// Public API of the PanguLU reproduction: the five-step pipeline of §4.1 —
// reordering (MC64 + nested dissection), symbolic factorisation (symmetric
// pruning), preprocessing (2D blocking + mapping + balancing), numeric
// factorisation (sync-free scheduling over the simulated cluster), and
// triangular solves — behind one Solver class.
//
// Quickstart:
//   pangulu::solver::Solver s;
//   s.factorize(A, {}).check();
//   std::vector<double> x(n);
//   s.solve(b, x).check();
#pragma once

#include <future>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "analysis/verify.hpp"
#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "kernels/precision.hpp"
#include "ordering/reorder.hpp"
#include "runtime/sim.hpp"
#include "runtime/trsv_sim.hpp"
#include "sparse/csc.hpp"
#include "sparse/dense.hpp"
#include "symbolic/fill.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace pangulu::solver {

struct Options {
  ordering::ReorderOptions reorder;
  /// 0 selects the block size from matrix order and post-symbolic density.
  index_t block_size = 0;
  rank_t n_ranks = 1;
  /// Apply the §4.2 static load-balancing pass on top of the cyclic map.
  bool balance = true;
  runtime::DeviceModel device = runtime::DeviceModel::a100_like();
  runtime::KernelPolicy policy = runtime::KernelPolicy::kAdaptive;
  runtime::ScheduleMode schedule = runtime::ScheduleMode::kSyncFree;
  kernels::SelectorThresholds thresholds;
  /// Optional path to an autotuned threshold file (kernels/calibrate.hpp).
  /// When set, the file is loaded on top of `thresholds` at factorize()
  /// time; a missing or malformed file fails factorize() with the load
  /// error rather than silently running on defaults.
  std::string thresholds_file;
  value_t pivot_tol = 1e-14;
  int refine_iters = 3;
  /// Numeric-phase storage precision (DESIGN.md §14). kDouble is the
  /// historical FP64 pipeline. kSingle factors and solves entirely in FP32
  /// storage (the FP64 `factors()` view is the exact widening). kMixedIR
  /// factors in FP32 and wraps every solve in an FP64 iterative-refinement
  /// loop against the original matrix: FP64 residual, FP32 correction solve
  /// on the cached plans, convergence on the relative residual. The FP32
  /// factors inherit the full determinism contract — bitwise identical
  /// across rank counts, schedulers and executors.
  kernels::Precision precision = kernels::Precision::kDouble;
  /// kMixedIR only: relative-residual target of the refinement loop
  /// (||b - Ax||_inf / (||A||_1 ||x||_inf + ||b||_inf)).
  kernels::tolerance_t ir_tolerance = 1e-12;
  /// kMixedIR only: refinement sweep cap. Hitting it — or stalling, i.e. a
  /// sweep that no longer shrinks the residual — fails solve() with
  /// StatusCode::kNumericBreakdown (retry at kDouble).
  int ir_max_iters = 30;
  /// Faults to inject into the simulated cluster (runtime/fault.hpp).
  /// Recoverable plans leave the factors (and hence solutions) bit-identical
  /// to a fault-free run and only change the virtual makespan/traffic;
  /// unrecoverable plans make factorize() fail with
  /// StatusCode::kUnavailable instead of crashing or hanging.
  runtime::FaultPlan fault_plan;
  /// Planned elasticity events for the simulated cluster (runtime/elastic.hpp):
  /// rank drains and additions fired at task-graph safe points. Any valid
  /// plan leaves the factors bit-identical to a static-grid run (only the
  /// virtual makespan, traffic and migration accounting change); a drain
  /// that would take the cluster below ElasticPlan::min_ranks fails
  /// factorize() with StatusCode::kResourceExhausted instead of deadlocking.
  runtime::ElasticPlan elastic_plan;
  /// Mean time between failures of the simulated cluster, in virtual
  /// seconds. When > 0 and checkpoint_interval_tasks is unset, the
  /// checkpoint cadence is derived from the Young/Daly optimum
  /// tau ~ sqrt(2 * C * MTBF) instead of the fixed 25/50/75% default
  /// (see runtime::young_daly_interval_tasks). 0 keeps the default cadence.
  double mtbf_seconds = 0;
  /// Static task-graph verification (src/analysis) before any numeric work:
  /// kCheap (default) runs the linear-time invariants, kFull adds the
  /// structural counter recomputation, deadlock-freedom and message
  /// conservation proofs. The same level re-verifies the mapping after any
  /// crash-recovery remap inside the simulated cluster. Violations fail
  /// factorize() with StatusCode::kInvariantViolation.
  analysis::VerifyLevel verify_level = analysis::VerifyLevel::kCheap;
  /// Worker threads for the preprocessing front-end (reorder adjacency,
  /// symbolic fill, 2D blocking, mapping). 0 uses the process-global pool;
  /// 1 forces the single-threaded reference path; >1 runs a dedicated pool
  /// of that size for the duration of factorize()/refactorize(). The
  /// preprocessing output is bitwise identical at every setting.
  int preprocess_threads = 0;
  /// Non-empty: during numeric factorisation, write a crash-consistent
  /// snapshot (src/io/snapshot.hpp) to this path at task-graph safe points.
  /// The safe point only copies the live state; encoding, checksumming and
  /// file I/O overlap the factorisation on a background writer thread.
  /// Writes are atomic (tmp + rename), so the file always holds the latest
  /// complete checkpoint; pass it to resume_from() after a process death.
  std::string checkpoint_path;
  /// Canonical tasks between checkpoints. 0 (with a checkpoint_path set)
  /// picks the default cadence: snapshots at ~25/50/75% of the run, but a
  /// safe point is skipped while less than ~100ms of work would be lost —
  /// re-running work that cheap beats writing and restoring a snapshot.
  /// This bounds checkpoint overhead to a few percent of the factorisation
  /// while capping lost work at about a quarter of it. An explicit interval
  /// is obeyed exactly, with no worthiness floor. When `mtbf_seconds` is
  /// set and this is 0, the Young/Daly cadence replaces the fixed default.
  index_t checkpoint_interval_tasks = 0;
  /// Write incremental snapshots: only the blocks mutated by the committed
  /// task prefix carry values in the checkpoint file; every other block's
  /// initial pre-numeric values are recomputed deterministically on resume.
  /// Early checkpoints shrink dramatically (the dirty set grows with the
  /// run); resumed factors stay bitwise identical either way. false writes
  /// full snapshots (every stored block's values).
  bool incremental_snapshots = true;
  /// Silent-corruption audits over the numeric phase (runtime/abft.hpp),
  /// mirroring verify_level's off/cheap/full ladder: kCheap audits every
  /// kernel's source blocks, kFull adds targets and a final sweep. Detected
  /// corruption is recomputed from live inputs when possible; otherwise
  /// factorize() fails with StatusCode::kDataCorruption.
  runtime::AbftLevel abft_level = runtime::AbftLevel::kOff;
  /// Optional cooperative cancellation (util/cancel.hpp). Not owned; must
  /// outlive every call made with these options. factorize()/refactorize()
  /// poll it at each canonical commit safe point, solve() between sweep
  /// levels and refinement iterations. Expiry fails typed (kCancelled /
  /// kDeadlineExceeded) and never publishes a partial factor: a cancelled
  /// factorize() leaves the solver un-factorised, a cancelled refactorize()
  /// rolls back to the previous factors (the solver stays solvable), and a
  /// cancelled solve() never publishes a partially-swept vector — the output
  /// is untouched, or (when refinement had already begun) holds the last
  /// fully-refined iterate, itself a complete solution.
  const CancelToken* cancel = nullptr;
};

struct FactorStats {
  // Wall-clock phase times on this host.
  double reorder_seconds = 0;
  double symbolic_seconds = 0;
  double preprocess_seconds = 0;  // blocking + mapping + balancing
  double blocking_seconds = 0;    //   of which: 2D blocking + task list
  double mapping_seconds = 0;     //   of which: cyclic map + balancing
  double plan_seconds = 0;        // solve-phase schedule construction
  double verify_seconds = 0;      // static task-graph verification
  double numeric_wall_seconds = 0;

  // Structure metrics (Table 3).
  index_t n = 0;
  nnz_t nnz_a = 0;
  nnz_t nnz_lu = 0;
  double flops = 0;
  index_t block_size = 0;
  index_t nb = 0;
  std::size_t n_tasks = 0;
  /// Canonical task index this factorisation resumed from (0: fresh run).
  index_t resumed_from_task = 0;

  // Virtual-cluster result of the numeric phase.
  runtime::SimResult sim;
  block::BalanceStats balance;
};

struct SolveStats {
  /// Refinement passes actually taken. Under kMixedIR these are the FP32
  /// correction solves the FP64 loop needed to reach Options::ir_tolerance.
  int refine_iterations = 0;
  value_t final_residual = 0;    // ||b - Ax||_inf / (||A||_1||x||_inf+||b||_inf)
};

/// Cached host-side solve schedule: flat per-block-row / per-block-column
/// block lists for the four triangular sweeps, plus the diagonal block
/// positions. Built once per factorisation so repeat solves skip the
/// find_block() probes and the branchy row/column filtering; each list
/// preserves the traversal order of the original sweep, so plan-based solves
/// are bitwise identical to the direct ones.
struct SolvePlan {
  std::vector<nnz_t> diag_pos;  // [nb] position of each diagonal block

  // Forward sweep (L y = z): for block-row bk, blocks left of the diagonal
  // in row-wise order. low_src is the source segment (block column).
  std::vector<nnz_t> low_ptr;  // [nb + 1]
  std::vector<nnz_t> low_pos;
  std::vector<index_t> low_src;
  // Backward sweep (U x = y): blocks right of the diagonal per block-row.
  std::vector<nnz_t> up_ptr;
  std::vector<nnz_t> up_pos;
  std::vector<index_t> up_src;
  // U^T forward sweep: blocks above the diagonal per block-column.
  std::vector<nnz_t> tup_ptr;
  std::vector<nnz_t> tup_pos;
  std::vector<index_t> tup_src;
  // L^T backward sweep: blocks below the diagonal per block-column.
  std::vector<nnz_t> tlow_ptr;
  std::vector<nnz_t> tlow_pos;
  std::vector<index_t> tlow_src;

  bool valid() const { return !diag_pos.empty(); }

  /// Build from a factorised block matrix (requires all diagonal blocks).
  /// The plan is pure structure, so the one built against either precision
  /// twin drives both the FP64 and FP32 sweeps unchanged.
  template <class BM>
  static SolvePlan build(const BM& f);
};

class Solver {
 public:
  /// Full pipeline on a square matrix. On success the factors are held
  /// internally; call solve() any number of times.
  Status factorize(const Csc& a, const Options& opts);

  /// Restart a factorisation from a checkpoint written by a previous run
  /// (Options::checkpoint_path). The snapshot carries the original matrix
  /// and every option that influences the computed bits (reordering,
  /// blocking, ranks, schedule, kernel policy, pivot tolerance, ...), so the
  /// deterministic preprocessing pipeline is *re-run* rather than stored,
  /// cross-checked structurally against the snapshot (task count, block
  /// table, live sync-free counters), and the task-graph verifier is
  /// re-proved on the resumed state before any numeric work. The remaining
  /// canonical tasks then execute, yielding factors bitwise identical to an
  /// uninterrupted run. `base` supplies the fields a snapshot does not
  /// carry (device model, selector thresholds, fault plan, checkpoint
  /// continuation): a run that used non-default thresholds must pass the
  /// same ones here or variant selection — and hence bit patterns — may
  /// differ.
  Status resume_from(const std::string& path, const Options& base = Options{});

  /// Numeric-only re-factorisation: `a` must have exactly the pattern of the
  /// previously factorised matrix (the Newton-iteration workflow of circuit
  /// simulation — same topology, new conductances). Reuses the ordering,
  /// scaling, symbolic pattern, blocking, mapping, task graph AND the cached
  /// solve plans; only the numeric phase runs — every structure phase is
  /// skipped outright (their stats() timings read 0 after this call). The
  /// factors are bitwise identical to a from-scratch factorize() on the same
  /// pattern and options. Note the safe-reuse contract: value-derived MC64
  /// scaling/permutation is frozen at factorize() time, so with use_mc64 on
  /// and *different* values, a from-scratch run would pick a different
  /// scaling — refactorize() deliberately keeps the analysed one.
  Status refactorize(const Csc& a);

  /// As refactorize(), but from a bare value array in the analysed matrix's
  /// CSC entry order. Fails with kFailedPrecondition when `values` does not
  /// have exactly matrix().nnz() entries.
  Status refactorize_values(std::span<const value_t> values);

  /// Solve A x = b using the stored factors + iterative refinement against
  /// the original matrix. `solve_stats` (optional) reports the refinement
  /// iterations taken and the final backward error.
  Status solve(std::span<const value_t> b, std::span<value_t> x,
               SolveStats* solve_stats = nullptr) const;

  /// solve() under a per-call CancelToken that overrides Options::cancel —
  /// the hook Session::solve_deadline uses to arm one token per request
  /// without mutating the shared Options. Pass nullptr for no cancellation.
  Status solve(std::span<const value_t> b, std::span<value_t> x,
               SolveStats* solve_stats, const CancelToken* cancel) const;

  /// Solve A X = B for an n x k right-hand-side panel. Each block of the
  /// factors is visited once per triangular sweep and applied to all k
  /// columns (the panel kernels of kernels/gessm.hpp, tstrf.hpp); iterative
  /// refinement runs on the shrinking set of not-yet-converged columns.
  /// Column j of the result is bitwise identical to solve(b.col(j)).
  Status solve_multi(const Dense& b, Dense* x,
                     SolveStats* worst = nullptr) const;

  /// Solve A^T X = B for an n x k panel; column j is bitwise identical to
  /// solve_transpose(b.col(j)).
  Status solve_multi_transpose(const Dense& b, Dense* x) const;

  /// log|det(A)| and sign(det(A)) from the factorisation: the product of
  /// U's diagonal corrected by the parities of the row/column permutations.
  /// Meaningful only when no pivot was perturbed
  /// (stats().sim.perturbed_pivots == 0).
  Status log_abs_determinant(value_t* log_abs, int* sign) const;

  /// Solve A^T x = b with the same factors: (LU)^T w = z via a U^T forward
  /// sweep and an L^T backward sweep.
  Status solve_transpose(std::span<const value_t> b, std::span<value_t> x) const;

  /// Hager-Higham 1-norm condition estimate: cond_1(A) ~ ||A||_1 ||A^-1||_1,
  /// the ||A^-1||_1 part estimated with a few solve/solve_transpose pairs.
  /// A lower bound that is almost always within a small factor of the truth.
  Status condest(value_t* cond_1) const;

  /// Model the distributed triangular-solve phase (step 5 of §4.1) on the
  /// same simulated cluster the factorisation ran on: one forward and one
  /// backward sweep over the stored factors, timing only (the vector is not
  /// modified). Reports both sweeps' SimResults.
  Status model_triangular_solve(runtime::SimResult* forward,
                                runtime::SimResult* backward) const;

  const FactorStats& stats() const { return stats_; }
  const Options& options() const { return opts_; }
  const block::BlockMatrix& factors() const { return factors_; }
  /// FP32 factor twin, valid after a kSingle/kMixedIR factorisation: the
  /// matrix the numeric phase actually ran on (factors() is its exact
  /// widening). Structure-identical to factors() by construction.
  const block::BlockMatrixT<float>& factors32() const { return factors32_; }
  const block::Mapping& mapping() const { return mapping_; }
  const symbolic::SymbolicResult& symbolic() const { return symbolic_; }
  /// The original (unpermuted, unscaled) matrix held by the solver — after
  /// resume_from(), the matrix recovered from the snapshot.
  const Csc& matrix() const { return original_; }

 private:
  /// Steps 1–3b of the pipeline (reorder, symbolic, blocking + mapping,
  /// static verification) from original_/opts_ — shared by factorize() and
  /// resume_from(), whose outputs are bitwise-deterministic by PR 4's
  /// contract.
  Status prepare_structure(ThreadPool* pool);
  Status run_numeric_phase(index_t resume_from_task);
  /// Checkpoint sink: copy the current numeric state (canonical tasks
  /// [0, tasks_done) committed) and hand it to the background writer, which
  /// lands it at opts_.checkpoint_path atomically.
  Status write_checkpoint(index_t tasks_done);
  /// Wait for any in-flight snapshot write and surface its status. Called
  /// between writes (one in flight at a time) and before run_numeric_phase
  /// returns, so the checkpoint file is complete even after a kill.
  Status flush_checkpoint_writer();
  /// (Re)build the cached solve-phase schedules from factors_/mapping_.
  /// Called at the end of factorize(); any failure leaves the solver
  /// un-factorised, so a valid solver always has valid plans.
  Status build_solve_plans();
  /// Shared tail of refactorize()/refactorize_values(): original_ already
  /// holds the new values on the analysed pattern; re-scatter them through
  /// the cached reuse maps and run the numeric phase only.
  Status refactorize_reuse();
  /// Build the pattern-only scatter maps refactorize_reuse() consumes
  /// (lazily, on the first refactorisation after an analysis).
  void build_reuse_maps();
  /// FP32-storage solve paths (kSingle and kMixedIR): the direct pass runs
  /// the FP32 sweeps on factors32_; kMixedIR then refines in FP64 until
  /// Options::ir_tolerance or fails with kNumericBreakdown on a stall.
  Status solve_fp32(std::span<const value_t> b, std::span<value_t> x,
                    SolveStats* solve_stats, const CancelToken* cancel) const;
  Status solve_multi_fp32(const Dense& b, Dense* x, SolveStats* worst) const;

  Options opts_;
  Csc original_;
  ordering::ReorderResult reorder_;
  symbolic::SymbolicResult symbolic_;
  block::BlockMatrix factors_;
  // FP32 twin of factors_ under kSingle/kMixedIR (empty at kDouble): shares
  // the first-layer structure via BlockMatrixT::converted_from, holds the
  // FP32 numeric state, and backs the FP32 solve sweeps.
  block::BlockMatrixT<float> factors32_;
  std::vector<block::Task> tasks_;
  block::Mapping mapping_;
  FactorStats stats_;
  // Solve-phase schedules, owned by the solver and rebuilt with the factors
  // (factorize/refactorize); solve()/solve_transpose()/condest() and
  // model_triangular_solve() run pure numerics against them.
  SolvePlan solve_plan_;
  runtime::TrsvPlan trsv_fwd_;
  runtime::TrsvPlan trsv_bwd_;
  // Pattern-derived scatter maps for numeric-only refactorisation, built
  // lazily on the first refactorize() after an analysis and invalidated by
  // factorize()/resume_from(): permuted-A entry -> filled-pattern position,
  // and flattened per-block slot -> filled-pattern position (blocks in
  // position order, slots in CSC order).
  std::vector<nnz_t> permuted_to_filled_;
  std::vector<nnz_t> block_src_;
  // In-flight background snapshot write (at most one at a time).
  std::future<Status> checkpoint_writer_;
  // Incremental-checkpoint dirty tracking: ckpt_dirty_[pos] is set once any
  // canonical task targeting block `pos` has committed; ckpt_marked_upto_ is
  // the task index the marks cover, advanced lazily at each checkpoint (the
  // canonical order makes the dirty set a pure function of the task prefix).
  std::vector<char> ckpt_dirty_;
  index_t ckpt_marked_upto_ = 0;
  bool factorized_ = false;
};

/// Block-level forward/backward substitution on a factorised BlockMatrixT
/// (exposed for the distributed triangular-solve benchmarks and tests).
/// Every sweep is templated on the value type: the FP32 instantiation runs
/// the identical traversal in FP32 arithmetic, which is what the mixed-IR
/// correction solves execute (DESIGN.md §14).
template <class V>
void block_lower_solve(const block::BlockMatrixT<V>& f,
                       std::type_identity_t<std::span<V>> x);
template <class V>
void block_upper_solve(const block::BlockMatrixT<V>& f,
                       std::type_identity_t<std::span<V>> x);

/// Transposed sweeps: U^T y = z (forward) and L^T w = y (backward), used by
/// solve_transpose and the condition estimator.
template <class V>
void block_upper_transpose_solve(const block::BlockMatrixT<V>& f,
                                 std::type_identity_t<std::span<V>> x);
template <class V>
void block_lower_transpose_solve(const block::BlockMatrixT<V>& f,
                                 std::type_identity_t<std::span<V>> x);

/// Plan-based variants of the four sweeps: same traversal, same bits, no
/// per-call schedule discovery. Each polls the optional CancelToken at every
/// sweep level (one block row/column) and stops typed on expiry — the
/// caller's working vector is then partial and must be discarded, which
/// Solver::solve does by never copying it into the output.
template <class V>
Status block_lower_solve(const block::BlockMatrixT<V>& f, const SolvePlan& plan,
                         std::type_identity_t<std::span<V>> x,
                         const CancelToken* cancel = nullptr);
template <class V>
Status block_upper_solve(const block::BlockMatrixT<V>& f, const SolvePlan& plan,
                         std::type_identity_t<std::span<V>> x,
                         const CancelToken* cancel = nullptr);
template <class V>
Status block_upper_transpose_solve(const block::BlockMatrixT<V>& f,
                                   const SolvePlan& plan,
                                   std::type_identity_t<std::span<V>> x,
                                   const CancelToken* cancel = nullptr);
template <class V>
Status block_lower_transpose_solve(const block::BlockMatrixT<V>& f,
                                   const SolvePlan& plan,
                                   std::type_identity_t<std::span<V>> x,
                                   const CancelToken* cancel = nullptr);

/// Multi-RHS (panel) variants of the plan-based sweeps: `x` is an n x k
/// row-interleaved panel — column c of row r at x[r * stride + c], so the
/// k-wide inner loops run over contiguous memory and each factor entry is
/// decoded once for all columns (stride 1 with k == 1 is the plain vector
/// layout). Each block of the sweep is visited once and applied to all k
/// columns; per column the floating-point operation sequence is exactly the
/// single-vector sweep's, so column c of the panel result is bitwise
/// identical to running the single-vector sweep on that column alone.
/// Like the plan-based single-vector sweeps, each polls the optional
/// CancelToken at every sweep level.
template <class V>
Status block_lower_solve_multi(const block::BlockMatrixT<V>& f,
                               const SolvePlan& plan, V* x, index_t stride,
                               index_t k, const CancelToken* cancel = nullptr);
template <class V>
Status block_upper_solve_multi(const block::BlockMatrixT<V>& f,
                               const SolvePlan& plan, V* x, index_t stride,
                               index_t k, const CancelToken* cancel = nullptr);
template <class V>
Status block_upper_transpose_solve_multi(const block::BlockMatrixT<V>& f,
                                         const SolvePlan& plan, V* x,
                                         index_t stride, index_t k,
                                         const CancelToken* cancel = nullptr);
template <class V>
Status block_lower_transpose_solve_multi(const block::BlockMatrixT<V>& f,
                                         const SolvePlan& plan, V* x,
                                         index_t stride, index_t k,
                                         const CancelToken* cancel = nullptr);

}  // namespace pangulu::solver
