// Solver sessions: everything derivable from a sparsity pattern — ordering,
// symbolic fill, blocking, mapping, task graph, solve plans — computed once
// at setup() and reused across an arbitrary interleaving of numeric
// refactorisations (new values, same pattern) and single-/multi-RHS solves.
// This is the Newton-iteration workflow of circuit and device simulation:
// the topology is fixed for thousands of steps while the conductances and
// right-hand sides change every step.
//
// Concurrency contract: a Session is internally synchronised. solve(),
// solve_multi() and their transpose variants take a shared lock and may run
// concurrently with each other from any number of threads; setup() and
// refactorize() take the lock exclusively and linearise against everything
// else. SessionPool adds admission control on top: a bounded number of
// in-flight requests under a byte budget, for servers multiplexing many
// sessions over one memory pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "solver/solver.hpp"

namespace pangulu::solver {

/// FNV-1a fingerprint of a CSC sparsity pattern (order + col_ptr + row_idx,
/// values excluded). Two matrices interchangeable under refactorize() hash
/// equal; a hash mismatch is proof of a pattern change.
std::uint64_t pattern_fingerprint(const Csc& a);

class Session {
 public:
  Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Full pipeline on `a` (Solver::factorize); records the pattern
  /// fingerprint every later refactorize() is checked against.
  Status setup(const Csc& a, const Options& opts);

  /// Restart from a checkpoint (Solver::resume_from); on success the session
  /// is ready and fingerprinted against the snapshot's matrix.
  Status resume_from(const std::string& path, const Options& base = Options{});

  /// Numeric-only refactorisation from a bare value array in the analysed
  /// matrix's CSC entry order. kFailedPrecondition when the count does not
  /// match the analysed nnz. Factors come out bitwise identical to a
  /// from-scratch setup() on the same pattern and options.
  Status refactorize(std::span<const value_t> values);

  /// As above from a full CSC matrix; kFailedPrecondition when its pattern
  /// fingerprint differs from the analysed one.
  Status refactorize(const Csc& a);

  Status solve(std::span<const value_t> b, std::span<value_t> x,
               SolveStats* solve_stats = nullptr) const;
  Status solve_multi(const Dense& b, Dense* x,
                     SolveStats* worst = nullptr) const;
  Status solve_transpose(std::span<const value_t> b,
                         std::span<value_t> x) const;
  Status solve_multi_transpose(const Dense& b, Dense* x) const;

  bool ready() const;
  std::uint64_t pattern_hash() const;
  FactorStats stats() const;

  /// Rough resident-set estimate of the pattern-derived state (factors,
  /// filled pattern, original matrix, task graph) for SessionPool budgeting.
  std::size_t footprint_bytes() const;

  /// The wrapped solver, for introspection beyond stats() (determinant,
  /// condition estimate, triangular-solve model). NOT synchronised: callers
  /// must not interleave direct solver access with concurrent session calls.
  const Solver& solver() const { return solver_; }
  Solver& solver_mut() { return solver_; }

 private:
  mutable std::shared_mutex mu_;
  Solver solver_;
  std::uint64_t pattern_hash_ = 0;
  nnz_t pattern_nnz_ = 0;
  bool ready_ = false;
};

struct SessionPoolOptions {
  /// Requests allowed in flight at once; 0 = unlimited.
  int max_concurrent = 0;
  /// Bytes the in-flight requests may pin together; 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
};

/// Admission controller for concurrent session traffic. admit() blocks until
/// the request fits under both caps and returns an RAII Ticket whose
/// destruction releases the slot and bytes. A request whose byte demand
/// alone exceeds the budget can never be admitted and fails immediately
/// with kResourceExhausted instead of deadlocking.
class SessionPool {
 public:
  explicit SessionPool(const SessionPoolOptions& opts = {}) : opts_(opts) {}
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : pool_(o.pool_), bytes_(o.bytes_) {
      o.pool_ = nullptr;
      o.bytes_ = 0;
    }
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        bytes_ = o.bytes_;
        o.pool_ = nullptr;
        o.bytes_ = 0;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { release(); }

    bool admitted() const { return pool_ != nullptr; }
    void release();

   private:
    friend class SessionPool;
    SessionPool* pool_ = nullptr;
    std::size_t bytes_ = 0;
  };

  Status admit(std::size_t bytes, Ticket* ticket);

  int in_flight() const;
  std::size_t bytes_in_flight() const;
  /// Largest concurrent request count / byte pin observed (stress metrics).
  int peak_in_flight() const;
  std::size_t peak_bytes() const;

 private:
  void release_slot(std::size_t bytes);

  SessionPoolOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_ = 0;
  std::size_t active_bytes_ = 0;
  int peak_active_ = 0;
  std::size_t peak_bytes_ = 0;
};

}  // namespace pangulu::solver
