// Solver sessions: everything derivable from a sparsity pattern — ordering,
// symbolic fill, blocking, mapping, task graph, solve plans — computed once
// at setup() and reused across an arbitrary interleaving of numeric
// refactorisations (new values, same pattern) and single-/multi-RHS solves.
// This is the Newton-iteration workflow of circuit and device simulation:
// the topology is fixed for thousands of steps while the conductances and
// right-hand sides change every step.
//
// Concurrency contract: a Session is internally synchronised. solve(),
// solve_multi() and their transpose variants take a shared lock and may run
// concurrently with each other from any number of threads; setup() and
// refactorize() take the lock exclusively and linearise against everything
// else. SessionPool adds admission control on top: a bounded number of
// in-flight requests under a byte budget, for servers multiplexing many
// sessions over one memory pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "solver/solver.hpp"
#include "util/rng.hpp"

namespace pangulu::solver {

/// FNV-1a fingerprint of a CSC sparsity pattern (order + col_ptr + row_idx,
/// values excluded). Two matrices interchangeable under refactorize() hash
/// equal; a hash mismatch is proof of a pattern change.
std::uint64_t pattern_fingerprint(const Csc& a);

class Session {
 public:
  Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Full pipeline on `a` (Solver::factorize); records the pattern
  /// fingerprint every later refactorize() is checked against.
  Status setup(const Csc& a, const Options& opts);

  /// Restart from a checkpoint (Solver::resume_from); on success the session
  /// is ready and fingerprinted against the snapshot's matrix.
  Status resume_from(const std::string& path, const Options& base = Options{});

  /// Numeric-only refactorisation from a bare value array in the analysed
  /// matrix's CSC entry order. kFailedPrecondition when the count does not
  /// match the analysed nnz. Factors come out bitwise identical to a
  /// from-scratch setup() on the same pattern and options.
  Status refactorize(std::span<const value_t> values);

  /// As above from a full CSC matrix; kFailedPrecondition when its pattern
  /// fingerprint differs from the analysed one.
  Status refactorize(const Csc& a);

  Status solve(std::span<const value_t> b, std::span<value_t> x,
               SolveStats* solve_stats = nullptr) const;

  /// solve() under a per-request wall-clock deadline: arms a CancelToken
  /// with `deadline_seconds` from now and sheds the solve typed
  /// (kDeadlineExceeded) at the next sweep level or refinement iteration
  /// once it expires. The session stays ready — a missed deadline is a shed
  /// request, not a broken factorisation — so the caller can retry with a
  /// larger budget (see jittered_backoff_seconds). deadline_seconds <= 0
  /// sheds immediately without touching the output.
  Status solve_deadline(std::span<const value_t> b, std::span<value_t> x,
                        double deadline_seconds,
                        SolveStats* solve_stats = nullptr) const;
  Status solve_multi(const Dense& b, Dense* x,
                     SolveStats* worst = nullptr) const;
  Status solve_transpose(std::span<const value_t> b,
                         std::span<value_t> x) const;
  Status solve_multi_transpose(const Dense& b, Dense* x) const;

  bool ready() const;
  std::uint64_t pattern_hash() const;
  FactorStats stats() const;

  /// Rough resident-set estimate of the pattern-derived state (factors,
  /// filled pattern, original matrix, task graph) for SessionPool budgeting.
  std::size_t footprint_bytes() const;

  /// The wrapped solver, for introspection beyond stats() (determinant,
  /// condition estimate, triangular-solve model). NOT synchronised: callers
  /// must not interleave direct solver access with concurrent session calls.
  const Solver& solver() const { return solver_; }
  Solver& solver_mut() { return solver_; }

 private:
  mutable std::shared_mutex mu_;
  Solver solver_;
  std::uint64_t pattern_hash_ = 0;
  nnz_t pattern_nnz_ = 0;
  bool ready_ = false;
};

struct SessionPoolOptions {
  /// Requests allowed in flight at once; 0 = unlimited.
  int max_concurrent = 0;
  /// Bytes the in-flight requests may pin together; 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  /// Requests allowed to queue for admission when the pool is full;
  /// 0 = unbounded. A full queue rejects further admits immediately with
  /// kResourceExhausted (the caller should back off and retry).
  int max_queue_depth = 0;
  /// Longest a deadline-less admit() may block, in seconds, before failing
  /// with kDeadlineExceeded; <= 0 = wait forever (the historical, hang-prone
  /// behaviour — servers should always set this or pass a CancelToken).
  double default_admit_timeout_seconds = 0;
};

/// Admission + shed counters for capacity planning (bench_traffic_replay).
/// Wait-time percentiles come from a bounded reservoir of the most recent
/// admission waits, so long-running servers report recent — not lifetime —
/// latency.
struct SessionPoolStats {
  int queue_depth = 0;       // waiters parked in admit() right now
  int peak_queue_depth = 0;  // deepest the queue has ever been
  long long admitted = 0;    // requests that got a ticket
  long long shed = 0;        // deadline-shed: immediately or after waiting
  long long rejected_queue_full = 0;  // bounced off max_queue_depth
  double mean_wait_seconds = 0;       // over the reservoir
  double p95_wait_seconds = 0;        // over the reservoir
};

/// Suggested sleep before retrying a shed or rejected request: exponential
/// backoff (base * 2^attempt, capped) with a multiplicative jitter drawn
/// uniformly from [0.5, 1.0) so a herd of shed clients decorrelates instead
/// of re-colliding on the next tick. Deterministic given the caller's Rng.
double jittered_backoff_seconds(int attempt, double base_seconds,
                                double cap_seconds, Rng& rng);

/// Admission controller for concurrent session traffic. admit() blocks until
/// the request fits under both caps and returns an RAII Ticket whose
/// destruction releases the slot and bytes. A request whose byte demand
/// alone exceeds the budget can never be admitted and fails immediately
/// with kResourceExhausted instead of deadlocking. Admission is
/// deadline-aware: a request carrying a CancelToken is shed immediately
/// (kDeadlineExceeded) when its remaining budget cannot plausibly cover the
/// admission wait — already expired, or below the running mean of recent
/// waits while the pool is full — and otherwise waits no longer than its
/// deadline. Cancellation (CancelToken::cancel()) unparks the waiter at the
/// next wake-up and fails the admit with kCancelled.
class SessionPool {
 public:
  explicit SessionPool(const SessionPoolOptions& opts = {}) : opts_(opts) {}
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : pool_(o.pool_), bytes_(o.bytes_) {
      o.pool_ = nullptr;
      o.bytes_ = 0;
    }
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        bytes_ = o.bytes_;
        o.pool_ = nullptr;
        o.bytes_ = 0;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { release(); }

    bool admitted() const { return pool_ != nullptr; }
    void release();

   private:
    friend class SessionPool;
    SessionPool* pool_ = nullptr;
    std::size_t bytes_ = 0;
  };

  Status admit(std::size_t bytes, Ticket* ticket);

  /// Deadline-aware admission: obeys `cancel`'s wall deadline and manual
  /// cancellation while queued (nullptr behaves like the overload above).
  /// On success the remaining deadline is still the caller's to spend on
  /// the actual request — admission never consumes more than the wait.
  Status admit(std::size_t bytes, Ticket* ticket, const CancelToken* cancel);

  int in_flight() const;
  std::size_t bytes_in_flight() const;
  /// Largest concurrent request count / byte pin observed (stress metrics).
  int peak_in_flight() const;
  std::size_t peak_bytes() const;
  /// Queue-depth / shed / wait-percentile counters (overload metrics).
  SessionPoolStats stats() const;

 private:
  void release_slot(std::size_t bytes);
  void record_wait(double seconds);

  SessionPoolOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_ = 0;
  std::size_t active_bytes_ = 0;
  int peak_active_ = 0;
  std::size_t peak_bytes_ = 0;
  int waiters_ = 0;
  int peak_waiters_ = 0;
  long long admitted_ = 0;
  long long shed_ = 0;
  long long rejected_queue_full_ = 0;
  // Running mean of recent admission waits — the immediate-shed predictor —
  // plus a fixed reservoir of the most recent samples for percentiles.
  double mean_wait_seconds_ = 0;
  std::vector<double> wait_samples_;
  std::size_t wait_cursor_ = 0;
  long long wait_count_ = 0;
};

}  // namespace pangulu::solver
