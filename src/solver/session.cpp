#include "solver/session.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace pangulu::solver {

namespace {

/// The two cooperative-stop codes: the request was shed, not broken, so
/// session state rolls back instead of degrading to not-ready.
bool is_shed_code(const Status& s) {
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

std::uint64_t pattern_fingerprint(const Csc& a) {
  // FNV-1a over the order and the pattern arrays, byte for byte. Values are
  // deliberately excluded: the fingerprint answers "may refactorize() accept
  // this matrix", which is a pure pattern question.
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= kPrime;
    }
  };
  mix(static_cast<std::uint64_t>(a.n_rows()));
  mix(static_cast<std::uint64_t>(a.n_cols()));
  for (nnz_t p : a.col_ptr()) mix(static_cast<std::uint64_t>(p));
  for (index_t r : a.row_idx()) mix(static_cast<std::uint64_t>(r));
  return h;
}

Status Session::setup(const Csc& a, const Options& opts) {
  std::unique_lock lk(mu_);
  ready_ = false;
  Status s = solver_.factorize(a, opts);
  if (!s.is_ok()) return s;
  pattern_hash_ = pattern_fingerprint(a);
  pattern_nnz_ = a.nnz();
  ready_ = true;
  return Status::ok();
}

Status Session::resume_from(const std::string& path, const Options& base) {
  std::unique_lock lk(mu_);
  ready_ = false;
  Status s = solver_.resume_from(path, base);
  if (!s.is_ok()) return s;
  pattern_hash_ = pattern_fingerprint(solver_.matrix());
  pattern_nnz_ = solver_.matrix().nnz();
  ready_ = true;
  return Status::ok();
}

Status Session::refactorize(std::span<const value_t> values) {
  std::unique_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  if (values.size() != static_cast<std::size_t>(pattern_nnz_))
    return Status::failed_precondition(
        "session: " + std::to_string(values.size()) +
        " values do not match the analysed pattern's nnz (" +
        std::to_string(pattern_nnz_) + ")");
  Status s = solver_.refactorize_values(values);
  // A cancelled/deadline-shed refactorize rolled back to the previous
  // factors inside the solver; the session stays serviceable with them.
  if (!s.is_ok() && !is_shed_code(s)) ready_ = false;
  return s;
}

Status Session::refactorize(const Csc& a) {
  std::unique_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  if (pattern_fingerprint(a) != pattern_hash_)
    return Status::failed_precondition(
        "session: sparsity-pattern fingerprint mismatch — refactorize() "
        "requires the analysed pattern; run setup() for a new one");
  Status s = solver_.refactorize(a);
  if (!s.is_ok() && !is_shed_code(s)) ready_ = false;
  return s;
}

Status Session::solve(std::span<const value_t> b, std::span<value_t> x,
                      SolveStats* solve_stats) const {
  std::shared_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  return solver_.solve(b, x, solve_stats);
}

Status Session::solve_deadline(std::span<const value_t> b,
                               std::span<value_t> x, double deadline_seconds,
                               SolveStats* solve_stats) const {
  CancelToken token;
  token.set_wall_deadline_after(deadline_seconds);
  std::shared_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  return solver_.solve(b, x, solve_stats, &token);
}

Status Session::solve_multi(const Dense& b, Dense* x,
                            SolveStats* worst) const {
  std::shared_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  return solver_.solve_multi(b, x, worst);
}

Status Session::solve_transpose(std::span<const value_t> b,
                                std::span<value_t> x) const {
  std::shared_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  return solver_.solve_transpose(b, x);
}

Status Session::solve_multi_transpose(const Dense& b, Dense* x) const {
  std::shared_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  return solver_.solve_multi_transpose(b, x);
}

bool Session::ready() const {
  std::shared_lock lk(mu_);
  return ready_;
}

std::uint64_t Session::pattern_hash() const {
  std::shared_lock lk(mu_);
  return pattern_hash_;
}

FactorStats Session::stats() const {
  std::shared_lock lk(mu_);
  return solver_.stats();
}

std::size_t Session::footprint_bytes() const {
  std::shared_lock lk(mu_);
  if (!ready_) return 0;
  const FactorStats& st = solver_.stats();
  const auto nnz_lu = static_cast<std::size_t>(st.nnz_lu);
  const auto nnz_a = static_cast<std::size_t>(st.nnz_a);
  const auto n = static_cast<std::size_t>(st.n);
  std::size_t bytes = 0;
  // Factor blocks + the filled pattern each hold nnz_lu (value, row) pairs;
  // the refactorisation scatter maps hold one position per filled entry.
  bytes += 2 * nnz_lu * (sizeof(value_t) + sizeof(index_t));
  bytes += 2 * nnz_lu * sizeof(nnz_t);
  // FP32 storage keeps the FP32 twin's values alongside the widened FP64
  // view (the twin shares the structure arrays, so only values count).
  if (kernels::stores_fp32(solver_.options().precision))
    bytes += nnz_lu * sizeof(float);
  // Original + permuted copies of A.
  bytes += 2 * nnz_a * (sizeof(value_t) + sizeof(index_t));
  // Task graph, permutations/scalings, solve-plan arrays (order-ish each).
  bytes += st.n_tasks * sizeof(block::Task);
  bytes += 8 * n * sizeof(value_t);
  return bytes;
}

void SessionPool::Ticket::release() {
  if (pool_) {
    pool_->release_slot(bytes_);
    pool_ = nullptr;
    bytes_ = 0;
  }
}

double jittered_backoff_seconds(int attempt, double base_seconds,
                                double cap_seconds, Rng& rng) {
  const double exp =
      base_seconds * std::ldexp(1.0, std::clamp(attempt, 0, 60));
  return std::min(exp, cap_seconds) * rng.uniform(0.5, 1.0);
}

Status SessionPool::admit(std::size_t bytes, Ticket* ticket) {
  return admit(bytes, ticket, nullptr);
}

Status SessionPool::admit(std::size_t bytes, Ticket* ticket,
                          const CancelToken* cancel) {
  if (!ticket) return Status::invalid_argument("session pool: null ticket");
  if (opts_.memory_budget_bytes > 0 && bytes > opts_.memory_budget_bytes)
    return Status::resource_exhausted(
        "session pool: request of " + std::to_string(bytes) +
        " bytes exceeds the pool budget (" +
        std::to_string(opts_.memory_budget_bytes) + ") and can never run");
  // Drop any slot the ticket still holds before blocking — re-admitting a
  // live ticket must not deadlock against its own reservation.
  ticket->release();

  using clock = std::chrono::steady_clock;
  const clock::time_point start = clock::now();
  std::unique_lock lk(mu_);
  auto fits = [&] {
    if (opts_.max_concurrent > 0 && active_ >= opts_.max_concurrent)
      return false;
    if (opts_.memory_budget_bytes > 0 &&
        active_bytes_ + bytes > opts_.memory_budget_bytes)
      return false;
    return true;
  };
  auto grant = [&] {
    ++active_;
    active_bytes_ += bytes;
    peak_active_ = std::max(peak_active_, active_);
    peak_bytes_ = std::max(peak_bytes_, active_bytes_);
    ++admitted_;
    record_wait(std::chrono::duration<double>(clock::now() - start).count());
    ticket->pool_ = this;
    ticket->bytes_ = bytes;
    return Status::ok();
  };
  if (fits()) return grant();

  // The pool is full: shed before queuing when the deadline cannot cover
  // the wait. "Cannot cover" = already expired / cancelled, or the
  // remaining budget is below the running mean of recent admission waits
  // (requests doomed to time out in the queue would only deepen it).
  if (cancel) {
    Status cs = cancel->check("session pool admission");
    if (!cs.is_ok()) {
      ++shed_;
      return cs;
    }
    const double remaining = cancel->wall_seconds_remaining();
    if (remaining < mean_wait_seconds_) {
      ++shed_;
      return Status::deadline_exceeded(
          "session pool: remaining deadline cannot cover the expected "
          "admission wait — shed on arrival");
    }
  }
  if (opts_.max_queue_depth > 0 && waiters_ >= opts_.max_queue_depth) {
    ++rejected_queue_full_;
    return Status::resource_exhausted(
        "session pool: admission queue full (" + std::to_string(waiters_) +
        " waiters) — back off and retry");
  }

  // Park. With a deadline (token or pool default) the wait is bounded and
  // expiry surfaces typed; without one this is the historical wait-forever.
  const bool wall_bounded = cancel && cancel->has_wall_deadline();
  const bool timeout_bounded = opts_.default_admit_timeout_seconds > 0;
  ++waiters_;
  peak_waiters_ = std::max(peak_waiters_, waiters_);
  Status verdict = Status::ok();
  for (;;) {
    if (fits()) break;
    clock::time_point wake;
    bool bounded = false;
    if (wall_bounded) {
      wake = clock::now() + std::chrono::duration_cast<clock::duration>(
                                std::chrono::duration<double>(
                                    cancel->wall_seconds_remaining()));
      bounded = true;
    }
    if (timeout_bounded) {
      const clock::time_point cap =
          start + std::chrono::duration_cast<clock::duration>(
                      std::chrono::duration<double>(
                          opts_.default_admit_timeout_seconds));
      wake = bounded ? std::min(wake, cap) : cap;
      bounded = true;
    }
    if (cancel && !bounded) {
      // Manual-cancel-only token: poll so cancel() is honoured promptly
      // even though no deadline bounds the wait.
      wake = clock::now() + std::chrono::milliseconds(50);
      bounded = true;
    }
    if (bounded) {
      cv_.wait_until(lk, wake);
    } else {
      cv_.wait(lk);
    }
    if (fits()) break;
    if (cancel) {
      Status cs = cancel->check("session pool admission");
      if (!cs.is_ok()) {
        verdict = std::move(cs);
        break;
      }
    }
    if (timeout_bounded &&
        std::chrono::duration<double>(clock::now() - start).count() >=
            opts_.default_admit_timeout_seconds) {
      verdict = Status::deadline_exceeded(
          "session pool: admission wait exceeded the pool timeout (" +
          std::to_string(opts_.default_admit_timeout_seconds) + " s)");
      break;
    }
  }
  --waiters_;
  if (!verdict.is_ok()) {
    ++shed_;
    record_wait(std::chrono::duration<double>(clock::now() - start).count());
    return verdict;
  }
  return grant();
}

void SessionPool::release_slot(std::size_t bytes) {
  {
    std::lock_guard lk(mu_);
    --active_;
    active_bytes_ -= bytes;
  }
  cv_.notify_all();
}

int SessionPool::in_flight() const {
  std::lock_guard lk(mu_);
  return active_;
}

std::size_t SessionPool::bytes_in_flight() const {
  std::lock_guard lk(mu_);
  return active_bytes_;
}

int SessionPool::peak_in_flight() const {
  std::lock_guard lk(mu_);
  return peak_active_;
}

std::size_t SessionPool::peak_bytes() const {
  std::lock_guard lk(mu_);
  return peak_bytes_;
}

void SessionPool::record_wait(double seconds) {
  // Called with mu_ held. EWMA for the shed predictor; fixed 512-sample
  // ring for the percentile report.
  constexpr std::size_t kReservoir = 512;
  constexpr double kAlpha = 0.2;
  mean_wait_seconds_ = wait_count_ == 0
                           ? seconds
                           : (1 - kAlpha) * mean_wait_seconds_ +
                                 kAlpha * seconds;
  ++wait_count_;
  if (wait_samples_.size() < kReservoir) {
    wait_samples_.push_back(seconds);
  } else {
    wait_samples_[wait_cursor_] = seconds;
    wait_cursor_ = (wait_cursor_ + 1) % kReservoir;
  }
}

SessionPoolStats SessionPool::stats() const {
  std::lock_guard lk(mu_);
  SessionPoolStats st;
  st.queue_depth = waiters_;
  st.peak_queue_depth = peak_waiters_;
  st.admitted = admitted_;
  st.shed = shed_;
  st.rejected_queue_full = rejected_queue_full_;
  if (!wait_samples_.empty()) {
    std::vector<double> s(wait_samples_);
    std::sort(s.begin(), s.end());
    double sum = 0;
    for (double v : s) sum += v;
    st.mean_wait_seconds = sum / static_cast<double>(s.size());
    const auto idx = static_cast<std::size_t>(
        0.95 * static_cast<double>(s.size() - 1) + 0.5);
    st.p95_wait_seconds = s[std::min(idx, s.size() - 1)];
  }
  return st;
}

}  // namespace pangulu::solver
