#include "solver/session.hpp"

#include <algorithm>

namespace pangulu::solver {

std::uint64_t pattern_fingerprint(const Csc& a) {
  // FNV-1a over the order and the pattern arrays, byte for byte. Values are
  // deliberately excluded: the fingerprint answers "may refactorize() accept
  // this matrix", which is a pure pattern question.
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= kPrime;
    }
  };
  mix(static_cast<std::uint64_t>(a.n_rows()));
  mix(static_cast<std::uint64_t>(a.n_cols()));
  for (nnz_t p : a.col_ptr()) mix(static_cast<std::uint64_t>(p));
  for (index_t r : a.row_idx()) mix(static_cast<std::uint64_t>(r));
  return h;
}

Status Session::setup(const Csc& a, const Options& opts) {
  std::unique_lock lk(mu_);
  ready_ = false;
  Status s = solver_.factorize(a, opts);
  if (!s.is_ok()) return s;
  pattern_hash_ = pattern_fingerprint(a);
  pattern_nnz_ = a.nnz();
  ready_ = true;
  return Status::ok();
}

Status Session::resume_from(const std::string& path, const Options& base) {
  std::unique_lock lk(mu_);
  ready_ = false;
  Status s = solver_.resume_from(path, base);
  if (!s.is_ok()) return s;
  pattern_hash_ = pattern_fingerprint(solver_.matrix());
  pattern_nnz_ = solver_.matrix().nnz();
  ready_ = true;
  return Status::ok();
}

Status Session::refactorize(std::span<const value_t> values) {
  std::unique_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  if (values.size() != static_cast<std::size_t>(pattern_nnz_))
    return Status::failed_precondition(
        "session: " + std::to_string(values.size()) +
        " values do not match the analysed pattern's nnz (" +
        std::to_string(pattern_nnz_) + ")");
  Status s = solver_.refactorize_values(values);
  if (!s.is_ok()) ready_ = false;
  return s;
}

Status Session::refactorize(const Csc& a) {
  std::unique_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  if (pattern_fingerprint(a) != pattern_hash_)
    return Status::failed_precondition(
        "session: sparsity-pattern fingerprint mismatch — refactorize() "
        "requires the analysed pattern; run setup() for a new one");
  Status s = solver_.refactorize(a);
  if (!s.is_ok()) ready_ = false;
  return s;
}

Status Session::solve(std::span<const value_t> b, std::span<value_t> x,
                      SolveStats* solve_stats) const {
  std::shared_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  return solver_.solve(b, x, solve_stats);
}

Status Session::solve_multi(const Dense& b, Dense* x,
                            SolveStats* worst) const {
  std::shared_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  return solver_.solve_multi(b, x, worst);
}

Status Session::solve_transpose(std::span<const value_t> b,
                                std::span<value_t> x) const {
  std::shared_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  return solver_.solve_transpose(b, x);
}

Status Session::solve_multi_transpose(const Dense& b, Dense* x) const {
  std::shared_lock lk(mu_);
  if (!ready_) return Status::failed_precondition("session: setup() first");
  return solver_.solve_multi_transpose(b, x);
}

bool Session::ready() const {
  std::shared_lock lk(mu_);
  return ready_;
}

std::uint64_t Session::pattern_hash() const {
  std::shared_lock lk(mu_);
  return pattern_hash_;
}

FactorStats Session::stats() const {
  std::shared_lock lk(mu_);
  return solver_.stats();
}

std::size_t Session::footprint_bytes() const {
  std::shared_lock lk(mu_);
  if (!ready_) return 0;
  const FactorStats& st = solver_.stats();
  const auto nnz_lu = static_cast<std::size_t>(st.nnz_lu);
  const auto nnz_a = static_cast<std::size_t>(st.nnz_a);
  const auto n = static_cast<std::size_t>(st.n);
  std::size_t bytes = 0;
  // Factor blocks + the filled pattern each hold nnz_lu (value, row) pairs;
  // the refactorisation scatter maps hold one position per filled entry.
  bytes += 2 * nnz_lu * (sizeof(value_t) + sizeof(index_t));
  bytes += 2 * nnz_lu * sizeof(nnz_t);
  // FP32 storage keeps the FP32 twin's values alongside the widened FP64
  // view (the twin shares the structure arrays, so only values count).
  if (kernels::stores_fp32(solver_.options().precision))
    bytes += nnz_lu * sizeof(float);
  // Original + permuted copies of A.
  bytes += 2 * nnz_a * (sizeof(value_t) + sizeof(index_t));
  // Task graph, permutations/scalings, solve-plan arrays (order-ish each).
  bytes += st.n_tasks * sizeof(block::Task);
  bytes += 8 * n * sizeof(value_t);
  return bytes;
}

void SessionPool::Ticket::release() {
  if (pool_) {
    pool_->release_slot(bytes_);
    pool_ = nullptr;
    bytes_ = 0;
  }
}

Status SessionPool::admit(std::size_t bytes, Ticket* ticket) {
  if (!ticket) return Status::invalid_argument("session pool: null ticket");
  if (opts_.memory_budget_bytes > 0 && bytes > opts_.memory_budget_bytes)
    return Status::resource_exhausted(
        "session pool: request of " + std::to_string(bytes) +
        " bytes exceeds the pool budget (" +
        std::to_string(opts_.memory_budget_bytes) + ") and can never run");
  // Drop any slot the ticket still holds before blocking — re-admitting a
  // live ticket must not deadlock against its own reservation.
  ticket->release();
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] {
    if (opts_.max_concurrent > 0 && active_ >= opts_.max_concurrent)
      return false;
    if (opts_.memory_budget_bytes > 0 &&
        active_bytes_ + bytes > opts_.memory_budget_bytes)
      return false;
    return true;
  });
  ++active_;
  active_bytes_ += bytes;
  peak_active_ = std::max(peak_active_, active_);
  peak_bytes_ = std::max(peak_bytes_, active_bytes_);
  ticket->pool_ = this;
  ticket->bytes_ = bytes;
  return Status::ok();
}

void SessionPool::release_slot(std::size_t bytes) {
  {
    std::lock_guard lk(mu_);
    --active_;
    active_bytes_ -= bytes;
  }
  cv_.notify_all();
}

int SessionPool::in_flight() const {
  std::lock_guard lk(mu_);
  return active_;
}

std::size_t SessionPool::bytes_in_flight() const {
  std::lock_guard lk(mu_);
  return active_bytes_;
}

int SessionPool::peak_in_flight() const {
  std::lock_guard lk(mu_);
  return peak_active_;
}

std::size_t SessionPool::peak_bytes() const {
  std::lock_guard lk(mu_);
  return peak_bytes_;
}

}  // namespace pangulu::solver
