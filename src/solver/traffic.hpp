// Traffic-replay capacity harness: a tiny line-oriented scenario DSL plus a
// deterministic virtual-time replay of the described load against a resource
// shape, mirroring SessionPool's admission semantics (bounded queue,
// deadline-aware shedding). The replay is a closed-form DES — no threads, no
// wall clock — so capacity questions ("does this shape hold its p95 under a
// 2x solve storm?") get byte-stable answers in CI, calibrated by one real
// measured service time per request kind (bench_traffic_replay does the
// measuring; tests feed synthetic service times).
//
// DSL (tools/traffic/*.trace): one directive per line, '#' comments,
// scenarios open with `scenario <name>` and close with `end`:
//
//   scenario solve_storm_2x
//     kind solve_storm        # free-form label, reported verbatim
//     request solve           # solve | refactorize | factorize | ckpt_factorize
//     requests 96             # trace length
//     overload 2.0            # arrival rate as a multiple of shape capacity
//     deadline_mult 3.0       # deadline = mult x mean service; 0 = none
//     deadline_mix on         # alternate tight (mult/4) and loose deadlines
//     queue 16                # admission queue bound; 0 = unbounded
//     shed on                 # deadline-aware shedding (off = wait forever)
//     scale_down_at 0.5       # capacity halves this far into the trace
//     jitter 0.1              # +-10% per-request service-time jitter
//     seed 7                  # Rng seed; the replay is a pure function
//   end
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace pangulu::solver {

struct TrafficScenario {
  std::string name;
  std::string kind = "solve_storm";
  std::string request = "solve";
  int requests = 32;
  double overload = 1.0;
  double deadline_mult = 0.0;
  bool deadline_mix = false;
  int queue = 0;
  bool shed = true;
  double scale_down_at = -1.0;  // < 0 = capacity never changes
  double jitter = 0.1;
  std::uint64_t seed = 1;
};

/// A resource shape the trace replays against: `servers` concurrent
/// in-flight requests (SessionPoolOptions::max_concurrent).
struct TrafficShape {
  std::string name;
  int servers = 1;
};

/// Per-(scenario, shape) replay outcome. Latency percentiles cover admitted
/// AND completed requests only — shed requests fail fast by design and are
/// reported through shed_rate instead of polluting the latency story.
struct TrafficReport {
  int offered = 0;    // requests in the trace
  int admitted = 0;   // ran to completion
  int shed = 0;       // deadline-shed: on arrival or while queued
  int rejected = 0;   // bounced off the queue bound
  double shed_rate = 0;          // (shed + rejected) / offered
  double makespan_seconds = 0;   // virtual time to drain the trace
  double throughput_rps = 0;     // admitted / makespan
  double p50_latency = 0;        // arrival -> completion, virtual seconds
  double p95_latency = 0;
  double p99_latency = 0;
  double mean_wait = 0;          // queueing delay of admitted requests
  int peak_queue_depth = 0;
};

/// Parse scenarios out of DSL text. Unknown directives, out-of-range values
/// and unterminated scenarios fail typed with the offending line number.
Status parse_traffic_scenarios(const std::string& text,
                               std::vector<TrafficScenario>* out);

/// Parse a .trace file from disk (kIoError when unreadable).
Status load_traffic_scenarios(const std::string& path,
                              std::vector<TrafficScenario>* out);

/// Replay `sc` against `shape` with the given calibrated mean service time.
/// Deterministic: same inputs, same report, byte for byte. Mirrors
/// SessionPool admission: a full pool parks arrivals in a FIFO queue bounded
/// by sc.queue; with shedding on, a request whose deadline cannot cover its
/// predicted wait ((queued + 1) x mean service / servers) is shed on
/// arrival, and a queued request whose deadline lapses before dispatch is
/// shed at dispatch time. kInvalidArgument on nonsensical inputs
/// (servers < 1, requests < 1, mean_service <= 0).
Status replay_traffic(const TrafficScenario& sc, const TrafficShape& shape,
                      double mean_service_seconds, TrafficReport* report);

}  // namespace pangulu::solver
