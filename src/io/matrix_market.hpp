// Matrix Market (*.mtx) reader/writer. The original PanguLU artifact only
// accepts Matrix Market input; we keep that interface so downstream users can
// feed real SuiteSparse matrices when they have them.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csc.hpp"
#include "util/status.hpp"

namespace pangulu::io {

/// Parse a Matrix Market stream. Supports `matrix coordinate
/// real|integer|pattern general|symmetric|skew-symmetric`. Pattern entries
/// get value 1. Symmetric storage is expanded to both triangles.
Status read_matrix_market(std::istream& in, Csc* out);

/// Read from a file path.
Status read_matrix_market_file(const std::string& path, Csc* out);

/// Write `a` as `matrix coordinate real general`.
Status write_matrix_market(std::ostream& out, const Csc& a);
Status write_matrix_market_file(const std::string& path, const Csc& a);

}  // namespace pangulu::io
