#include "io/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

namespace pangulu::io {

// Field registry. One marker per tagged field, in wire order; tools/lint.sh
// counts these markers against kSnapshotFieldCount and refuses format edits
// that do not bump kSnapshotFormatVersion (see tools/snapshot_format.lock).
#define SNAPSHOT_FIELD(name, tag) \
  constexpr std::uint32_t kField_##name = (tag);
SNAPSHOT_FIELD(meta, 1)
SNAPSHOT_FIELD(a_col_ptr, 2)
SNAPSHOT_FIELD(a_row_idx, 3)
SNAPSHOT_FIELD(a_values, 4)
SNAPSHOT_FIELD(counters, 5)
SNAPSHOT_FIELD(block_nnz, 6)
SNAPSHOT_FIELD(block_values, 7)
SNAPSHOT_FIELD(dirty_pos, 8)
#undef SNAPSHOT_FIELD

namespace {

/// CRC-32C lookup tables (Castagnoli polynomial 0x82F63B78, reflected) for
/// the slicing-by-8 fallback kernel: table[0] is the classic byte table,
/// table[k] folds a byte k positions deeper, so eight bytes advance with
/// eight loads and no per-byte dependency chain. The Castagnoli polynomial
/// (not IEEE) is the format's checksum because SSE4.2 hosts evaluate it in
/// hardware — snapshots checksum every block value on every checkpoint, and
/// on a busy node the checksum competes with the factorisation for cycles.
struct CrcTable {
  std::uint32_t t[8][256];
  CrcTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

/// The meta section travels as a fixed array of 64-bit slots (doubles are
/// bit-cast) so the encoding is independent of struct padding and field
/// widths on the writing host.
constexpr std::size_t kMetaSlots = 21;

void pack_meta(const SnapshotMeta& m, std::int64_t* s) {
  s[0] = m.n;
  s[1] = m.nnz_a;
  s[2] = m.block_size;
  s[3] = m.n_ranks;
  s[4] = m.balance;
  s[5] = m.policy;
  s[6] = m.schedule;
  s[7] = m.verify_level;
  s[8] = m.abft_level;
  s[9] = m.use_mc64;
  s[10] = m.apply_scaling;
  s[11] = m.fill_reducing;
  s[12] = m.nd_leaf_size;
  s[13] = m.preprocess_threads;
  s[14] = m.refine_iters;
  std::memcpy(&s[15], &m.pivot_tol, sizeof(double));
  s[16] = m.checkpoint_interval;
  s[17] = m.n_tasks;
  s[18] = m.tasks_done;
  s[19] = m.incremental;
  s[20] = m.precision;
}

void unpack_meta(const std::int64_t* s, SnapshotMeta* m) {
  m->n = static_cast<index_t>(s[0]);
  m->nnz_a = s[1];
  m->block_size = static_cast<index_t>(s[2]);
  m->n_ranks = static_cast<rank_t>(s[3]);
  m->balance = static_cast<std::int32_t>(s[4]);
  m->policy = static_cast<std::int32_t>(s[5]);
  m->schedule = static_cast<std::int32_t>(s[6]);
  m->verify_level = static_cast<std::int32_t>(s[7]);
  m->abft_level = static_cast<std::int32_t>(s[8]);
  m->use_mc64 = static_cast<std::int32_t>(s[9]);
  m->apply_scaling = static_cast<std::int32_t>(s[10]);
  m->fill_reducing = static_cast<std::int32_t>(s[11]);
  m->nd_leaf_size = static_cast<std::int32_t>(s[12]);
  m->preprocess_threads = static_cast<std::int32_t>(s[13]);
  m->refine_iters = static_cast<std::int32_t>(s[14]);
  std::memcpy(&m->pivot_tol, &s[15], sizeof(double));
  m->checkpoint_interval = s[16];
  m->n_tasks = s[17];
  m->tasks_done = s[18];
  m->incremental = s[19];
  m->precision = static_cast<std::int32_t>(s[20]);
}

Status put_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
  if (!out) return Status::io_error("snapshot: write failed");
  return Status::ok();
}

Status put_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
  if (!out) return Status::io_error("snapshot: write failed");
  return Status::ok();
}

Status get_u32(std::istream& in, std::uint32_t* v, const char* what) {
  in.read(reinterpret_cast<char*>(v), sizeof *v);
  if (!in)
    return Status::io_error(std::string("snapshot: truncated ") + what);
  return Status::ok();
}

Status get_u64(std::istream& in, std::uint64_t* v, const char* what) {
  in.read(reinterpret_cast<char*>(v), sizeof *v);
  if (!in)
    return Status::io_error(std::string("snapshot: truncated ") + what);
  return Status::ok();
}

Status write_field(std::ostream& out, std::uint32_t tag, const void* data,
                   std::size_t bytes) {
  Status s = put_u32(out, tag);
  if (!s.is_ok()) return s;
  s = put_u64(out, static_cast<std::uint64_t>(bytes));
  if (!s.is_ok()) return s;
  if (bytes > 0) {
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
    if (!out) return Status::io_error("snapshot: write failed");
  }
  return put_u32(out, crc32(data, bytes));
}

template <typename T>
Status write_array_field(std::ostream& out, std::uint32_t tag,
                         const std::vector<T>& v) {
  return write_field(out, tag, v.data(), v.size() * sizeof(T));
}

/// Read one field: verify the tag is the expected next one, the payload an
/// exact multiple of the element size, and the CRC intact.
template <typename T>
Status read_array_field(std::istream& in, std::uint32_t expect_tag,
                        const char* name, std::vector<T>* out) {
  std::uint32_t tag = 0;
  Status s = get_u32(in, &tag, "field tag");
  if (!s.is_ok()) return s;
  if (tag != expect_tag)
    return Status::io_error("snapshot: unexpected field tag " +
                            std::to_string(tag) + " (expected " +
                            std::to_string(expect_tag) + ", field " + name +
                            ")");
  std::uint64_t bytes = 0;
  s = get_u64(in, &bytes, "field length");
  if (!s.is_ok()) return s;
  if (bytes % sizeof(T) != 0)
    return Status::io_error(std::string("snapshot: field ") + name +
                            " length is not a multiple of its element size");
  // Grow the buffer in bounded chunks while the stream still delivers: a
  // corrupted length prefix must surface as a truncation error, not as an
  // attempt to allocate whatever 8 flipped bytes happen to encode.
  constexpr std::uint64_t kChunkBytes = 1u << 20;
  out->clear();
  for (std::uint64_t got = 0; got < bytes;) {
    const std::uint64_t step = std::min<std::uint64_t>(kChunkBytes, bytes - got);
    const std::size_t old = out->size();
    out->resize(old + static_cast<std::size_t>(step / sizeof(T)));
    in.read(reinterpret_cast<char*>(out->data() + old),
            static_cast<std::streamsize>(step));
    if (!in)
      return Status::io_error(std::string("snapshot: truncated field ") +
                              name);
    got += step;
  }
  std::uint32_t stored_crc = 0;
  s = get_u32(in, &stored_crc, "field crc");
  if (!s.is_ok()) return s;
  const std::uint32_t actual = crc32(out->data(), bytes);
  if (actual != stored_crc)
    return Status::data_corruption(std::string("snapshot: CRC mismatch in "
                                               "field ") +
                                   name);
  return Status::ok();
}

}  // namespace

namespace {

std::uint32_t crc32_sw(const void* data, std::size_t len) {
  static const CrcTable table;
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  while (len >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = table.t[7][lo & 0xFFu] ^ table.t[6][(lo >> 8) & 0xFFu] ^
        table.t[5][(lo >> 16) & 0xFFu] ^ table.t[4][lo >> 24] ^
        table.t[3][hi & 0xFFu] ^ table.t[2][(hi >> 8) & 0xFFu] ^
        table.t[1][(hi >> 16) & 0xFFu] ^ table.t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (std::size_t i = 0; i < len; ++i)
    c = table.t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PANGULU_SNAPSHOT_HW_CRC 1
/// SSE4.2 crc32 instruction path: bit-identical to crc32_sw (same
/// polynomial), roughly an order of magnitude faster. Compiled with a
/// per-function target so the translation unit itself needs no -msse4.2;
/// selected at runtime only when the host supports it.
__attribute__((target("sse4.2"))) std::uint32_t crc32_hw(const void* data,
                                                         std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t c = 0xFFFFFFFFu;
  while (len >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    len -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  for (std::size_t i = 0; i < len; ++i)
    c32 = __builtin_ia32_crc32qi(c32, p[i]);
  return c32 ^ 0xFFFFFFFFu;
}
#endif

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
#ifdef PANGULU_SNAPSHOT_HW_CRC
  static const bool have_hw = __builtin_cpu_supports("sse4.2");
  if (have_hw) return crc32_hw(data, len);
#endif
  return crc32_sw(data, len);
}

Status write_snapshot(std::ostream& out, const Snapshot& snap) {
  Status s = put_u32(out, kSnapshotMagic);
  if (!s.is_ok()) return s;
  s = put_u32(out, kSnapshotFormatVersion);
  if (!s.is_ok()) return s;
  s = put_u32(out, kSnapshotEndianTag);
  if (!s.is_ok()) return s;
  s = put_u32(out, static_cast<std::uint32_t>(kSnapshotFieldCount));
  if (!s.is_ok()) return s;

  std::int64_t slots[kMetaSlots];
  pack_meta(snap.meta, slots);
  s = write_field(out, kField_meta, slots, sizeof slots);
  if (!s.is_ok()) return s;
  s = write_array_field(out, kField_a_col_ptr, snap.a_col_ptr);
  if (!s.is_ok()) return s;
  s = write_array_field(out, kField_a_row_idx, snap.a_row_idx);
  if (!s.is_ok()) return s;
  s = write_array_field(out, kField_a_values, snap.a_values);
  if (!s.is_ok()) return s;
  s = write_array_field(out, kField_counters, snap.counters);
  if (!s.is_ok()) return s;
  s = write_array_field(out, kField_block_nnz, snap.block_nnz);
  if (!s.is_ok()) return s;
  s = write_array_field(out, kField_block_values, snap.block_values);
  if (!s.is_ok()) return s;
  s = write_array_field(out, kField_dirty_pos, snap.dirty_pos);
  if (!s.is_ok()) return s;
  out.flush();
  if (!out) return Status::io_error("snapshot: flush failed");
  return Status::ok();
}

Status read_snapshot(std::istream& in, Snapshot* out) {
  *out = Snapshot{};
  std::uint32_t magic = 0, version = 0, endian = 0, fields = 0;
  Status s = get_u32(in, &magic, "header");
  if (!s.is_ok()) return s;
  if (magic != kSnapshotMagic)
    return Status::io_error("snapshot: bad magic (not a PanguLU snapshot)");
  s = get_u32(in, &version, "header");
  if (!s.is_ok()) return s;
  if (version != kSnapshotFormatVersion)
    return Status::io_error("snapshot: format version " +
                            std::to_string(version) +
                            " is not the supported version " +
                            std::to_string(kSnapshotFormatVersion));
  s = get_u32(in, &endian, "header");
  if (!s.is_ok()) return s;
  if (endian != kSnapshotEndianTag)
    return Status::io_error(
        "snapshot: endianness mismatch (written on a foreign-endian host)");
  s = get_u32(in, &fields, "header");
  if (!s.is_ok()) return s;
  if (fields != static_cast<std::uint32_t>(kSnapshotFieldCount))
    return Status::io_error("snapshot: field count " + std::to_string(fields) +
                            " does not match format version " +
                            std::to_string(kSnapshotFormatVersion));

  std::vector<std::int64_t> slots;
  s = read_array_field(in, kField_meta, "meta", &slots);
  if (!s.is_ok()) return s;
  if (slots.size() != kMetaSlots)
    return Status::io_error("snapshot: meta section has wrong slot count");
  unpack_meta(slots.data(), &out->meta);
  s = read_array_field(in, kField_a_col_ptr, "a_col_ptr", &out->a_col_ptr);
  if (!s.is_ok()) return s;
  s = read_array_field(in, kField_a_row_idx, "a_row_idx", &out->a_row_idx);
  if (!s.is_ok()) return s;
  s = read_array_field(in, kField_a_values, "a_values", &out->a_values);
  if (!s.is_ok()) return s;
  s = read_array_field(in, kField_counters, "counters", &out->counters);
  if (!s.is_ok()) return s;
  s = read_array_field(in, kField_block_nnz, "block_nnz", &out->block_nnz);
  if (!s.is_ok()) return s;
  s = read_array_field(in, kField_block_values, "block_values",
                       &out->block_values);
  if (!s.is_ok()) return s;
  s = read_array_field(in, kField_dirty_pos, "dirty_pos", &out->dirty_pos);
  if (!s.is_ok()) return s;

  // Cheap internal consistency of the scalar section; the deep structural
  // cross-check against the recomputed blocking happens in resume_from.
  const SnapshotMeta& m = out->meta;
  if (m.n < 0 || m.nnz_a < 0 || m.block_size <= 0 || m.n_ranks < 1 ||
      m.n_tasks < 0 || m.tasks_done < 0 || m.tasks_done > m.n_tasks ||
      (m.incremental != 0 && m.incremental != 1) || m.precision < 0 ||
      m.precision > 2)
    return Status::io_error("snapshot: meta scalars out of range");
  if (out->a_col_ptr.size() != static_cast<std::size_t>(m.n) + 1 ||
      out->a_row_idx.size() != static_cast<std::size_t>(m.nnz_a) ||
      out->a_values.size() != static_cast<std::size_t>(m.nnz_a))
    return Status::io_error("snapshot: matrix array sizes disagree with meta");
  if (out->counters.size() != out->block_nnz.size())
    return Status::io_error(
        "snapshot: counter array and block table sizes disagree");
  for (nnz_t b : out->block_nnz) {
    if (b < 0) return Status::io_error("snapshot: negative block nnz");
  }
  if (m.incremental) {
    // Incremental: dirty_pos must be ascending, duplicate-free, in range,
    // and the value payload must cover exactly the dirty blocks.
    nnz_t prev = -1;
    std::uint64_t dirty_total = 0;
    for (nnz_t pos : out->dirty_pos) {
      if (pos <= prev)
        return Status::io_error(
            "snapshot: dirty block list is not strictly ascending");
      if (pos < 0 || pos >= static_cast<nnz_t>(out->block_nnz.size()))
        return Status::io_error("snapshot: dirty block position " +
                                std::to_string(pos) + " outside the " +
                                std::to_string(out->block_nnz.size()) +
                                "-block table");
      dirty_total += static_cast<std::uint64_t>(
          out->block_nnz[static_cast<std::size_t>(pos)]);
      prev = pos;
    }
    if (dirty_total != out->block_values.size())
      return Status::io_error(
          "snapshot: dirty block value payload disagrees with the block nnz "
          "table");
  } else {
    if (!out->dirty_pos.empty())
      return Status::io_error(
          "snapshot: full snapshot carries a dirty block list");
    std::uint64_t total = 0;
    for (nnz_t b : out->block_nnz) total += static_cast<std::uint64_t>(b);
    if (total != out->block_values.size())
      return Status::io_error(
          "snapshot: block value payload disagrees with the block nnz table");
  }
  return Status::ok();
}

Status write_snapshot_file(const std::string& path, const Snapshot& snap) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return Status::io_error("snapshot: cannot open " + tmp);
    Status s = write_snapshot(f, snap);
    if (!s.is_ok()) {
      f.close();
      std::remove(tmp.c_str());
      return s;
    }
    f.close();
    if (!f) {
      std::remove(tmp.c_str());
      return Status::io_error("snapshot: close failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::io_error("snapshot: rename to " + path + " failed");
  }
  return Status::ok();
}

Status read_snapshot_file(const std::string& path, Snapshot* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::io_error("snapshot: cannot open " + path);
  return read_snapshot(f, out);
}

}  // namespace pangulu::io
