// Versioned, CRC-checksummed binary snapshots of an in-flight numeric
// factorisation (the checkpoint half of the checkpoint/restart subsystem).
//
// The sync-free scheduling discipline of §4.4 makes mid-flight state cheap
// to capture: because numerics execute in canonical enumeration order, the
// full progress of a factorisation is described by (a) how many canonical
// tasks have committed, (b) the live sync-free counter array, and (c) the
// current values of every stored block. A snapshot serialises exactly that,
// plus the original matrix A and the option scalars needed to rebuild the
// identical structure (reordering, symbolic pattern, blocking, mapping and
// task graph are bitwise-deterministic, so they are *recomputed* on resume
// rather than stored — see Solver::resume_from).
//
// Wire format (all integers little-endian):
//   header:  u32 magic | u32 version | u32 endian-tag | u32 field-count
//   field*:  u32 tag | u64 payload-bytes | payload | u32 crc32(payload)
// Every field payload is independently CRC-protected, so corruption is
// reported with the section that went bad. Readers reject unknown magic,
// versions and field tags outright: the format is versioned, not skippable.
//
// FORMAT DISCIPLINE (enforced by tools/lint.sh): every field is declared by
// a SNAPSHOT_FIELD(...) marker in snapshot.cpp; the marker count must equal
// kSnapshotFieldCount, and any change to the field list requires bumping
// kSnapshotFormatVersion together with tools/snapshot_format.lock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/types.hpp"

namespace pangulu::io {

/// "PGLU" in ASCII (big-endian byte order within the word).
inline constexpr std::uint32_t kSnapshotMagic = 0x50474C55u;
/// Bump whenever the field list or any payload encoding changes.
/// v2 (PR 6): incremental dirty-block snapshots — a `dirty_pos` field lists
/// the block positions whose values are encoded; `meta.incremental` flags
/// the mode. v1 files are rejected (old readers reject v2 symmetrically).
/// v3: mixed-precision factorisation — `meta.precision` records the numeric
/// storage precision (kernels::Precision) the snapshot's block values were
/// computed at. FP32-state values travel widened to FP64 (exact), so resume
/// narrows them back bit for bit. v2 files are rejected.
inline constexpr std::uint32_t kSnapshotFormatVersion = 3;
/// Written as 0x01020304; a reader seeing 0x04030201 is on a foreign-endian
/// host and rejects the file instead of mis-reading it.
inline constexpr std::uint32_t kSnapshotEndianTag = 0x01020304;
/// Number of tagged fields in a snapshot (see SNAPSHOT_FIELD in snapshot.cpp).
inline constexpr int kSnapshotFieldCount = 8;

/// Fixed-size scalar section: everything needed to re-run the deterministic
/// preprocessing pipeline and validate that the result matches the stored
/// numeric state. Enum-typed options travel as plain integers.
struct SnapshotMeta {
  index_t n = 0;
  nnz_t nnz_a = 0;
  index_t block_size = 0;
  rank_t n_ranks = 1;
  std::int32_t balance = 1;
  std::int32_t policy = 0;        // runtime::KernelPolicy
  std::int32_t schedule = 0;      // runtime::ScheduleMode
  std::int32_t verify_level = 0;  // analysis::VerifyLevel
  std::int32_t abft_level = 0;    // runtime::AbftLevel
  std::int32_t use_mc64 = 1;
  std::int32_t apply_scaling = 1;
  std::int32_t fill_reducing = 0;  // ordering::FillReducing
  std::int32_t nd_leaf_size = 0;
  std::int32_t preprocess_threads = 0;
  std::int32_t refine_iters = 3;
  value_t pivot_tol = 1e-14;
  std::int64_t checkpoint_interval = 0;
  std::int64_t n_tasks = 0;
  /// Canonical tasks committed when the snapshot was taken; resume replays
  /// tasks [tasks_done, n_tasks).
  std::int64_t tasks_done = 0;
  /// Numeric storage precision of the block values (kernels::Precision as
  /// an integer: 0 double, 1 single, 2 mixed-IR). Under FP32 storage the
  /// encoded values are exact widenings of the FP32 state.
  std::int32_t precision = 0;
  /// 0: `block_values` covers every stored block (full snapshot). 1:
  /// incremental — `block_values` holds only the blocks listed in
  /// `dirty_pos` (those mutated by tasks [0, tasks_done)); every other
  /// block still carries its initial pre-numeric values, which resume
  /// recomputes deterministically from A.
  std::int64_t incremental = 0;
};

/// In-memory image of one snapshot. The io layer deals in flat arrays only
/// (it links against sparse, not block); the solver does the (de)blocking.
struct Snapshot {
  SnapshotMeta meta;
  // The original matrix A in CSC parts (resume re-runs preprocessing on it).
  std::vector<nnz_t> a_col_ptr;
  std::vector<index_t> a_row_idx;
  std::vector<value_t> a_values;
  /// Live sync-free counter array at `meta.tasks_done` (per stored block).
  std::vector<index_t> counters;
  /// Per stored block (block-position order): its nnz, for structural
  /// cross-checking against the recomputed blocking before values land.
  /// Always covers every block, incremental or not.
  std::vector<nnz_t> block_nnz;
  /// Full mode: all block values concatenated in block-position order.
  /// Incremental mode: only the dirty blocks' values, in `dirty_pos` order.
  std::vector<value_t> block_values;
  /// Incremental mode only: ascending, duplicate-free block positions whose
  /// values are present in `block_values`. Empty in full mode.
  std::vector<nnz_t> dirty_pos;
};

/// CRC-32C (Castagnoli, reflected) of `len` bytes — hardware-accelerated on
/// SSE4.2 hosts, bit-identical table fallback elsewhere. Exposed for tests
/// and for the C API's integrity surface.
std::uint32_t crc32(const void* data, std::size_t len);

/// Serialise / parse one snapshot. Readers return StatusCode::kIoError for
/// malformed headers or truncation and StatusCode::kDataCorruption when a
/// section's CRC does not match its payload.
Status write_snapshot(std::ostream& out, const Snapshot& snap);
Status read_snapshot(std::istream& in, Snapshot* out);

/// File variants. Writing is atomic: the snapshot lands in `path + ".tmp"`
/// and is renamed over `path` only after a successful flush, so a crash
/// mid-write can never destroy the previous good checkpoint.
Status write_snapshot_file(const std::string& path, const Snapshot& snap);
Status read_snapshot_file(const std::string& path, Snapshot* out);

}  // namespace pangulu::io
