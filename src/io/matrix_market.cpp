#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace pangulu::io {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Status read_matrix_market(std::istream& in, Csc* out) {
  std::string line;
  if (!std::getline(in, line))
    return Status::io_error("empty Matrix Market stream");
  std::istringstream hdr(line);
  std::string banner, object, format, field, symmetry;
  hdr >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    return Status::io_error("missing %%MatrixMarket banner");
  object = to_lower(object);
  format = to_lower(format);
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  if (object != "matrix" || format != "coordinate")
    return Status::io_error("only 'matrix coordinate' is supported");
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern)
    return Status::io_error("unsupported field: " + field);
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && !skew && symmetry != "general")
    return Status::io_error("unsupported symmetry: " + symmetry);

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long rows = 0, cols = 0, entries = 0;
  dims >> rows >> cols >> entries;
  if (rows <= 0 || cols <= 0 || entries < 0)
    return Status::io_error("bad dimension line");

  Coo coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
  coo.entries.reserve(static_cast<std::size_t>(entries) * (symmetric ? 2 : 1));
  for (long k = 0; k < entries; ++k) {
    long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) return Status::io_error("truncated entry list");
    if (!pattern && !(in >> v)) return Status::io_error("missing value");
    if (r < 1 || r > rows || c < 1 || c > cols)
      return Status::io_error("entry index out of range");
    coo.add(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if ((symmetric || skew) && r != c) {
      coo.add(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1),
              skew ? -v : v);
    }
  }
  *out = Csc::from_coo(coo);
  return Status::ok();
}

Status read_matrix_market_file(const std::string& path, Csc* out) {
  std::ifstream f(path);
  if (!f) return Status::io_error("cannot open " + path);
  return read_matrix_market(f, out);
}

Status write_matrix_market(std::ostream& out, const Csc& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.n_rows() << ' ' << a.n_cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t j = 0; j < a.n_cols(); ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      out << (a.row_idx()[static_cast<std::size_t>(p)] + 1) << ' ' << (j + 1)
          << ' ' << a.values()[static_cast<std::size_t>(p)] << '\n';
    }
  }
  if (!out) return Status::io_error("write failed");
  return Status::ok();
}

Status write_matrix_market_file(const std::string& path, const Csc& a) {
  std::ofstream f(path);
  if (!f) return Status::io_error("cannot open " + path);
  return write_matrix_market(f, a);
}

}  // namespace pangulu::io
