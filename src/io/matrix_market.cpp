#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

namespace pangulu::io {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Status read_matrix_market(std::istream& in, Csc* out) {
  std::string line;
  if (!std::getline(in, line))
    return Status::io_error("empty Matrix Market stream");
  std::istringstream hdr(line);
  std::string banner, object, format, field, symmetry;
  hdr >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    return Status::io_error("missing %%MatrixMarket banner");
  object = to_lower(object);
  format = to_lower(format);
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  if (object != "matrix" || format != "coordinate")
    return Status::io_error("only 'matrix coordinate' is supported");
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern)
    return Status::io_error("unsupported field: " + field);
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && !skew && symmetry != "general")
    return Status::io_error("unsupported symmetry: " + symmetry);

  // Skip comments.
  bool have_dims = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') {
      have_dims = true;
      break;
    }
  }
  if (!have_dims)
    return Status::io_error("truncated stream: no dimension line after header");
  std::istringstream dims(line);
  long rows = 0, cols = 0, entries = 0;
  if (!(dims >> rows >> cols >> entries))
    return Status::io_error("malformed dimension line: '" + line + "'");
  if (rows <= 0 || cols <= 0 || entries < 0)
    return Status::io_error("bad dimension line");
  // Dimensions must fit the 32-bit index type the solver works in (the file
  // format itself allows 64-bit sizes).
  constexpr long kMaxDim = std::numeric_limits<index_t>::max();
  if (rows > kMaxDim || cols > kMaxDim)
    return Status::out_of_range(
        "matrix dimensions exceed the 32-bit index range");
  if ((symmetric || skew) && rows != cols)
    return Status::io_error(
        "header declares " + symmetry + " but the matrix is not square");

  Coo coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
  coo.entries.reserve(static_cast<std::size_t>(entries) * (symmetric ? 2 : 1));
  for (long k = 0; k < entries; ++k) {
    long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c))
      return Status::io_error("truncated entry list: header promised " +
                              std::to_string(entries) + " entries, got " +
                              std::to_string(k));
    if (!pattern && !(in >> v))
      return Status::io_error("missing or unparsable value at entry " +
                              std::to_string(k + 1));
    if (r < 1 || r > rows || c < 1 || c > cols)
      return Status::out_of_range(
          "entry " + std::to_string(k + 1) + " index (" + std::to_string(r) +
          ", " + std::to_string(c) + ") outside the declared " +
          std::to_string(rows) + "x" + std::to_string(cols) + " shape");
    if (!std::isfinite(v))
      return Status::io_error("non-finite value (NaN/Inf) at entry " +
                              std::to_string(k + 1));
    if (skew && r == c)
      return Status::io_error("skew-symmetric matrix stores diagonal entry " +
                              std::to_string(r));
    coo.add(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if ((symmetric || skew) && r != c) {
      coo.add(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1),
              skew ? -v : v);
    }
  }
  // Anything left beyond whitespace means the header lied about the entry
  // count (or two files were concatenated) — refuse rather than truncate.
  char trailing = 0;
  if (in >> trailing)
    return Status::io_error(
        "trailing data after the declared entry list (header promised " +
        std::to_string(entries) + " entries)");
  const std::size_t stored = coo.entries.size();
  *out = Csc::from_coo(coo);
  // from_coo sums duplicates silently; a well-formed Matrix Market file
  // lists each coordinate once, so a shrinking nnz exposes duplicates.
  if (static_cast<std::size_t>(out->nnz()) != stored)
    return Status::io_error("duplicate coordinate entries in the file");
  return Status::ok();
}

Status read_matrix_market_file(const std::string& path, Csc* out) {
  std::ifstream f(path);
  if (!f) return Status::io_error("cannot open " + path);
  return read_matrix_market(f, out);
}

Status write_matrix_market(std::ostream& out, const Csc& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.n_rows() << ' ' << a.n_cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t j = 0; j < a.n_cols(); ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      out << (a.row_idx()[static_cast<std::size_t>(p)] + 1) << ' ' << (j + 1)
          << ' ' << a.values()[static_cast<std::size_t>(p)] << '\n';
    }
  }
  if (!out) return Status::io_error("write failed");
  return Status::ok();
}

Status write_matrix_market_file(const std::string& path, const Csc& a) {
  std::ofstream f(path);
  if (!f) return Status::io_error("cannot open " + path);
  return write_matrix_market(f, a);
}

}  // namespace pangulu::io
