#include "capi/pangulu_c.h"

#include <algorithm>
#include <string>
#include <vector>

#include "io/matrix_market.hpp"
#include "solver/session.hpp"
#include "solver/solver.hpp"

using pangulu::Csc;
using pangulu::Dense;
using pangulu::Status;
using pangulu::StatusCode;

/* Both handle kinds run on a solver::Session, so the classic
 * factorize/solve entry points and the session API share one code path. */
struct pangulu_handle {
  Csc matrix;
  pangulu::solver::Session session;
  bool factorized = false;
  std::string last_error;
};

struct pangulu_session {
  Csc matrix;
  pangulu::solver::Session session;
  pangulu_precision precision = PANGULU_PRECISION_DOUBLE;
  /* Refinement stats of the most recent successful solve; iterations < 0
   * until one completes. */
  pangulu::solver::SolveStats last_solve;
  bool solved = false;
  std::string last_error;
};

namespace {

template <typename H>
int set_status(H* h, const Status& s) {
  if (s.is_ok()) {
    if (h) h->last_error.clear();
    return PANGULU_OK;
  }
  if (h) h->last_error = s.message();
  switch (s.code()) {
    case StatusCode::kInvalidArgument: return PANGULU_INVALID_ARGUMENT;
    case StatusCode::kOutOfRange: return PANGULU_OUT_OF_RANGE;
    case StatusCode::kFailedPrecondition: return PANGULU_FAILED_PRECONDITION;
    case StatusCode::kNumericalError: return PANGULU_NUMERICAL_ERROR;
    case StatusCode::kIoError: return PANGULU_IO_ERROR;
    case StatusCode::kUnavailable: return PANGULU_UNAVAILABLE;
    case StatusCode::kInvariantViolation: return PANGULU_INVARIANT_VIOLATION;
    case StatusCode::kDataCorruption: return PANGULU_DATA_CORRUPTION;
    case StatusCode::kResourceExhausted: return PANGULU_RESOURCE_EXHAUSTED;
    case StatusCode::kNumericBreakdown: return PANGULU_NUMERIC_BREAKDOWN;
    case StatusCode::kDeadlineExceeded: return PANGULU_DEADLINE_EXCEEDED;
    case StatusCode::kCancelled: return PANGULU_CANCELLED;
    case StatusCode::kInternal: return PANGULU_INTERNAL;
    default: return PANGULU_INTERNAL;
  }
}

/* Guard: the C boundary must not leak C++ exceptions. */
template <typename H, typename F>
int guarded(H* h, F&& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    if (h) h->last_error = e.what();
    return PANGULU_INTERNAL;
  } catch (...) {
    if (h) h->last_error = "unknown exception";
    return PANGULU_INTERNAL;
  }
}

Csc csc_from_c_parts(int32_t n, const int64_t* col_ptr, const int32_t* row_idx,
                     const double* values) {
  const auto nnz = static_cast<std::size_t>(col_ptr[n]);
  return Csc::from_parts(
      n, n, std::vector<pangulu::nnz_t>(col_ptr, col_ptr + n + 1),
      std::vector<pangulu::index_t>(row_idx, row_idx + nnz),
      std::vector<pangulu::value_t>(values, values + nnz));
}

}  // namespace

extern "C" {

int pangulu_create(int32_t n, const int64_t* col_ptr, const int32_t* row_idx,
                   const double* values, pangulu_handle** out) {
  if (!out || !col_ptr || n < 0 || (n > 0 && (!row_idx || !values)))
    return PANGULU_INVALID_ARGUMENT;
  *out = nullptr;
  auto* h = new pangulu_handle();
  const int rc = guarded(h, [&]() -> int {
    h->matrix = csc_from_c_parts(n, col_ptr, row_idx, values);
    return PANGULU_OK;
  });
  if (rc != PANGULU_OK) {
    delete h;
    return rc;
  }
  *out = h;
  return PANGULU_OK;
}

int pangulu_create_from_file(const char* path, pangulu_handle** out) {
  if (!out || !path) return PANGULU_INVALID_ARGUMENT;
  *out = nullptr;
  auto* h = new pangulu_handle();
  const int rc = guarded(h, [&]() -> int {
    Csc m;
    Status s = pangulu::io::read_matrix_market_file(path, &m);
    if (!s.is_ok()) return set_status(h, s);
    if (m.n_rows() != m.n_cols())
      return set_status(h, Status::invalid_argument("matrix must be square"));
    h->matrix = std::move(m);
    return PANGULU_OK;
  });
  if (rc != PANGULU_OK) {
    delete h;
    return rc;
  }
  *out = h;
  return PANGULU_OK;
}

int pangulu_factorize(pangulu_handle* h, int32_t n_ranks, int32_t block_size) {
  if (!h) return PANGULU_INVALID_ARGUMENT;
  return guarded(h, [&]() -> int {
    pangulu::solver::Options opts;
    opts.n_ranks = n_ranks > 0 ? n_ranks : 1;
    opts.block_size = block_size;
    Status s = h->session.setup(h->matrix, opts);
    if (s.is_ok()) h->factorized = true;
    return set_status(h, s);
  });
}

int pangulu_factorize_checkpointed(pangulu_handle* h, int32_t n_ranks,
                                   int32_t block_size,
                                   const char* checkpoint_path,
                                   int64_t interval_tasks) {
  if (!h || !checkpoint_path || !checkpoint_path[0] || interval_tasks < 0)
    return PANGULU_INVALID_ARGUMENT;
  return guarded(h, [&]() -> int {
    pangulu::solver::Options opts;
    opts.n_ranks = n_ranks > 0 ? n_ranks : 1;
    opts.block_size = block_size;
    opts.checkpoint_path = checkpoint_path;
    opts.checkpoint_interval_tasks =
        static_cast<pangulu::index_t>(interval_tasks);
    /* Checkpointing without corruption detection saves corrupted state;
     * arm the cheap audit level alongside. */
    opts.abft_level = pangulu::runtime::AbftLevel::kCheap;
    Status s = h->session.setup(h->matrix, opts);
    if (s.is_ok()) h->factorized = true;
    return set_status(h, s);
  });
}

int pangulu_resume_from_checkpoint(const char* checkpoint_path,
                                   pangulu_handle** out) {
  if (!out || !checkpoint_path) return PANGULU_INVALID_ARGUMENT;
  *out = nullptr;
  auto* h = new pangulu_handle();
  const int rc = guarded(h, [&]() -> int {
    /* Keep checkpointing to the same file while the resumed run finishes —
     * a second interruption stays recoverable. */
    pangulu::solver::Options base;
    base.checkpoint_path = checkpoint_path;
    Status s = h->session.resume_from(checkpoint_path, base);
    if (!s.is_ok()) return set_status(h, s);
    h->matrix = h->session.solver().matrix();
    h->factorized = true;
    return PANGULU_OK;
  });
  if (rc != PANGULU_OK) {
    delete h;
    return rc;
  }
  *out = h;
  return PANGULU_OK;
}

int pangulu_solve(pangulu_handle* h, double* b_x) {
  if (!h || !b_x) return PANGULU_INVALID_ARGUMENT;
  return guarded(h, [&]() -> int {
    const auto n = static_cast<std::size_t>(h->matrix.n_cols());
    std::vector<double> x(n);
    Status s = h->session.solve({b_x, n}, x);
    if (s.is_ok()) std::copy(x.begin(), x.end(), b_x);
    return set_status(h, s);
  });
}

int pangulu_solve_transpose(pangulu_handle* h, double* b_x) {
  if (!h || !b_x) return PANGULU_INVALID_ARGUMENT;
  return guarded(h, [&]() -> int {
    const auto n = static_cast<std::size_t>(h->matrix.n_cols());
    std::vector<double> x(n);
    Status s = h->session.solve_transpose({b_x, n}, x);
    if (s.is_ok()) std::copy(x.begin(), x.end(), b_x);
    return set_status(h, s);
  });
}

int64_t pangulu_nnz_lu(const pangulu_handle* h) {
  return h && h->factorized ? h->session.solver().stats().nnz_lu : -1;
}

double pangulu_factor_flops(const pangulu_handle* h) {
  return h && h->factorized ? h->session.solver().stats().flops : -1.0;
}

double pangulu_modeled_numeric_seconds(const pangulu_handle* h) {
  return h && h->factorized ? h->session.solver().stats().sim.makespan : -1.0;
}

int32_t pangulu_matrix_order(const pangulu_handle* h) {
  return h ? h->matrix.n_cols() : -1;
}

const char* pangulu_last_error(const pangulu_handle* h) {
  return h ? h->last_error.c_str() : "null handle";
}

void pangulu_destroy(pangulu_handle* h) { delete h; }

int pangulu_session_create(int32_t n, const int64_t* col_ptr,
                           const int32_t* row_idx, const double* values,
                           int32_t n_ranks, int32_t block_size,
                           pangulu_session** out) {
  return pangulu_session_create_ex(n, col_ptr, row_idx, values, n_ranks,
                                   block_size, PANGULU_PRECISION_DOUBLE, 0,
                                   0, out);
}

int pangulu_session_create_ex(int32_t n, const int64_t* col_ptr,
                              const int32_t* row_idx, const double* values,
                              int32_t n_ranks, int32_t block_size,
                              pangulu_precision precision,
                              double ir_tolerance, int32_t ir_max_iters,
                              pangulu_session** out) {
  if (!out || !col_ptr || n <= 0 || !row_idx || !values ||
      precision < PANGULU_PRECISION_DOUBLE ||
      precision > PANGULU_PRECISION_MIXED_IR || ir_tolerance < 0 ||
      ir_max_iters < 0)
    return PANGULU_INVALID_ARGUMENT;
  *out = nullptr;
  auto* s = new pangulu_session();
  const int rc = guarded(s, [&]() -> int {
    s->matrix = csc_from_c_parts(n, col_ptr, row_idx, values);
    s->precision = precision;
    pangulu::solver::Options opts;
    opts.n_ranks = n_ranks > 0 ? n_ranks : 1;
    opts.block_size = block_size;
    opts.precision = static_cast<pangulu::kernels::Precision>(precision);
    if (ir_tolerance > 0) opts.ir_tolerance = ir_tolerance;
    if (ir_max_iters > 0) opts.ir_max_iters = ir_max_iters;
    return set_status(s, s->session.setup(s->matrix, opts));
  });
  if (rc != PANGULU_OK) {
    delete s;
    return rc;
  }
  *out = s;
  return PANGULU_OK;
}

int pangulu_session_refactorize(pangulu_session* s, const double* values,
                                int64_t nnz) {
  if (!s || !values || nnz < 0) return PANGULU_INVALID_ARGUMENT;
  return guarded(s, [&]() -> int {
    return set_status(
        s, s->session.refactorize({values, static_cast<std::size_t>(nnz)}));
  });
}

int pangulu_session_refactorize_csc(pangulu_session* s, const int64_t* col_ptr,
                                    const int32_t* row_idx,
                                    const double* values) {
  if (!s || !col_ptr || !row_idx || !values) return PANGULU_INVALID_ARGUMENT;
  return guarded(s, [&]() -> int {
    const int32_t n = s->matrix.n_cols();
    Csc a = csc_from_c_parts(n, col_ptr, row_idx, values);
    return set_status(s, s->session.refactorize(a));
  });
}

int pangulu_session_solve(pangulu_session* s, double* b_x) {
  if (!s || !b_x) return PANGULU_INVALID_ARGUMENT;
  return guarded(s, [&]() -> int {
    const auto n = static_cast<std::size_t>(s->matrix.n_cols());
    std::vector<double> x(n);
    pangulu::solver::SolveStats stats;
    Status st = s->session.solve({b_x, n}, x, &stats);
    if (st.is_ok()) {
      std::copy(x.begin(), x.end(), b_x);
      s->last_solve = stats;
      s->solved = true;
    }
    return set_status(s, st);
  });
}

int pangulu_session_solve_deadline(pangulu_session* s, double* b_x,
                                   double deadline_seconds) {
  if (!s || !b_x) return PANGULU_INVALID_ARGUMENT;
  return guarded(s, [&]() -> int {
    const auto n = static_cast<std::size_t>(s->matrix.n_cols());
    std::vector<double> x(n);
    pangulu::solver::SolveStats stats;
    Status st = s->session.solve_deadline({b_x, n}, x, deadline_seconds,
                                          &stats);
    if (st.is_ok()) {
      std::copy(x.begin(), x.end(), b_x);
      s->last_solve = stats;
      s->solved = true;
    }
    return set_status(s, st);
  });
}

int pangulu_session_solve_multi(pangulu_session* s, double* b_x, int32_t k) {
  if (!s || !b_x || k < 0) return PANGULU_INVALID_ARGUMENT;
  return guarded(s, [&]() -> int {
    const pangulu::index_t n = s->matrix.n_cols();
    Dense b(n, k);
    for (int32_t j = 0; j < k; ++j)
      std::copy(b_x + static_cast<std::size_t>(j) * n,
                b_x + static_cast<std::size_t>(j + 1) * n, b.col(j));
    Dense x;
    pangulu::solver::SolveStats worst;
    Status st = s->session.solve_multi(b, &x, &worst);
    if (st.is_ok()) {
      for (int32_t j = 0; j < k; ++j)
        std::copy(x.col(j), x.col(j) + n,
                  b_x + static_cast<std::size_t>(j) * n);
      s->last_solve = worst;
      s->solved = true;
    }
    return set_status(s, st);
  });
}

int32_t pangulu_session_matrix_order(const pangulu_session* s) {
  return s ? s->matrix.n_cols() : -1;
}

pangulu_precision pangulu_session_precision(const pangulu_session* s) {
  return s ? s->precision : PANGULU_PRECISION_DOUBLE;
}

int32_t pangulu_session_refine_iterations(const pangulu_session* s) {
  return s && s->solved ? s->last_solve.refine_iterations : -1;
}

double pangulu_session_final_residual(const pangulu_session* s) {
  return s && s->solved ? s->last_solve.final_residual : -1.0;
}

uint64_t pangulu_session_pattern_hash(const pangulu_session* s) {
  return s ? s->session.pattern_hash() : 0;
}

const char* pangulu_session_last_error(const pangulu_session* s) {
  return s ? s->last_error.c_str() : "null session";
}

void pangulu_session_destroy(pangulu_session* s) { delete s; }

}  // extern "C"
