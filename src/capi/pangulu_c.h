/* C API of the PanguLU reproduction.
 *
 * The original PanguLU artifact is a C library driven as
 *   mpirun -np N test/numeric_file -F matrix.mtx
 * This header exposes the same capability to C callers: hand over a CSC
 * matrix, factorise on a simulated N-rank cluster, solve right-hand sides.
 *
 * All functions return 0 on success and a nonzero pangulu_status code on
 * failure; pangulu_last_error() returns a message for the last failure on
 * the handle.
 */
#ifndef PANGULU_C_H_
#define PANGULU_C_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct pangulu_handle pangulu_handle;

typedef enum pangulu_status {
  PANGULU_OK = 0,
  PANGULU_INVALID_ARGUMENT = 1,
  PANGULU_OUT_OF_RANGE = 2,
  PANGULU_FAILED_PRECONDITION = 3,
  PANGULU_NUMERICAL_ERROR = 4,
  PANGULU_IO_ERROR = 5,
  PANGULU_INTERNAL = 6,
  /* A required resource is gone (e.g. unrecoverable simulated rank loss). */
  PANGULU_UNAVAILABLE = 7,
  /* The static task-graph verifier found a broken scheduling invariant;
   * pangulu_last_error() names it. */
  PANGULU_INVARIANT_VIOLATION = 8,
  /* Silent data corruption: an ABFT checksum audit failed during the
   * factorisation, or a checkpoint file failed its CRC on load. */
  PANGULU_DATA_CORRUPTION = 9,
  /* A request exceeds a configured resource budget and can never run
   * (e.g. a session admission larger than the whole pool). */
  PANGULU_RESOURCE_EXHAUSTED = 10,
  /* Mixed-precision iterative refinement stalled or ran out of sweeps
   * before reaching the requested tolerance: the FP32 factorisation is too
   * weak a preconditioner for this matrix. The factorisation itself
   * completed; retry the session at PANGULU_PRECISION_DOUBLE. */
  PANGULU_NUMERIC_BREAKDOWN = 11,
  /* A request's deadline expired before the work finished. The operation
   * stopped cooperatively at the next safe point without publishing a
   * partial factor; the handle/session stays usable and retrying with a
   * larger budget is safe. */
  PANGULU_DEADLINE_EXCEEDED = 12,
  /* The caller revoked the request (cooperative cancellation). Same
   * no-partial-state guarantees as PANGULU_DEADLINE_EXCEEDED. */
  PANGULU_CANCELLED = 13
} pangulu_status;

/* Numeric-phase storage precision of a session (DESIGN.md §14).
 * DOUBLE is the historical FP64 pipeline. SINGLE factors and solves in FP32
 * storage. MIXED_IR factors in FP32 and wraps every solve in an FP64
 * iterative-refinement loop against the original matrix, restoring FP64
 * accuracy at FP32 factorisation cost. */
typedef enum pangulu_precision {
  PANGULU_PRECISION_DOUBLE = 0,
  PANGULU_PRECISION_SINGLE = 1,
  PANGULU_PRECISION_MIXED_IR = 2
} pangulu_precision;

/* Create a solver handle holding a copy of the n x n CSC matrix:
 * col_ptr[n+1], row_idx[nnz] (0-based, sorted per column), values[nnz]. */
int pangulu_create(int32_t n, const int64_t* col_ptr, const int32_t* row_idx,
                   const double* values, pangulu_handle** out);

/* Load a Matrix Market file instead. */
int pangulu_create_from_file(const char* path, pangulu_handle** out);

/* Full pipeline (reorder, symbolic, blocking, numeric) on a simulated
 * cluster of n_ranks processes. block_size 0 selects the heuristic. */
int pangulu_factorize(pangulu_handle* h, int32_t n_ranks, int32_t block_size);

/* As pangulu_factorize, but with checkpoint/restart armed: a versioned,
 * CRC-checksummed snapshot of the factorisation state is written atomically
 * to `checkpoint_path` every `interval_tasks` completed block tasks
 * (0 selects the default cadence of ~1/4 of the task count). ABFT checksum
 * audits run at the cheap level while checkpointing is armed, so silent
 * corruption is detected (PANGULU_DATA_CORRUPTION) instead of landing in
 * the factors. */
int pangulu_factorize_checkpointed(pangulu_handle* h, int32_t n_ranks,
                                   int32_t block_size,
                                   const char* checkpoint_path,
                                   int64_t interval_tasks);

/* Resume an interrupted factorisation from a snapshot written by
 * pangulu_factorize_checkpointed. Creates a NEW handle (the matrix and all
 * options that determine the computed bits are restored from the snapshot)
 * and continues to completion; the resulting factors are bitwise identical
 * to an uninterrupted run. Returns PANGULU_DATA_CORRUPTION when the
 * snapshot fails its CRC, PANGULU_FAILED_PRECONDITION when it is
 * inconsistent with the matrix it claims to checkpoint. */
int pangulu_resume_from_checkpoint(const char* checkpoint_path,
                                   pangulu_handle** out);

/* Solve A x = b. b_x holds b on entry and x on return (length n). */
int pangulu_solve(pangulu_handle* h, double* b_x);

/* Solve A^T x = b, same in/out convention. */
int pangulu_solve_transpose(pangulu_handle* h, double* b_x);

/* Introspection (valid after a successful factorise). */
int64_t pangulu_nnz_lu(const pangulu_handle* h);
double pangulu_factor_flops(const pangulu_handle* h);
double pangulu_modeled_numeric_seconds(const pangulu_handle* h);
int32_t pangulu_matrix_order(const pangulu_handle* h);

/* Message of the most recent failure on this handle ("" when none). The
 * pointer stays valid until the next call on the handle. */
const char* pangulu_last_error(const pangulu_handle* h);

void pangulu_destroy(pangulu_handle* h);

/* ------------------------------------------------------------------------
 * Solver sessions: analyse a sparsity pattern once, then interleave
 * numeric-only refactorisations (new values, same pattern) with single- and
 * multi-RHS solves. Refactorisation skips ordering, symbolic analysis,
 * blocking, mapping and planning outright and produces factors bitwise
 * identical to a from-scratch factorisation of the same pattern. A session
 * is internally synchronised: solves may run concurrently from many
 * threads; refactorisations linearise against them.
 * (The classic pangulu_factorize/pangulu_solve entry points above run on an
 * internal session of their own, so both APIs share one code path.)
 */
typedef struct pangulu_session pangulu_session;

/* Analyse + factorise the n x n CSC matrix on a simulated cluster of
 * n_ranks processes (block_size 0 selects the heuristic). */
int pangulu_session_create(int32_t n, const int64_t* col_ptr,
                           const int32_t* row_idx, const double* values,
                           int32_t n_ranks, int32_t block_size,
                           pangulu_session** out);

/* As pangulu_session_create with an explicit numeric precision.
 * ir_tolerance and ir_max_iters configure the MIXED_IR refinement loop
 * (pass 0 for the defaults, 1e-12 and 30); both are ignored by the other
 * precisions. Under MIXED_IR a solve whose refinement stalls or exhausts
 * ir_max_iters fails with PANGULU_NUMERIC_BREAKDOWN. */
int pangulu_session_create_ex(int32_t n, const int64_t* col_ptr,
                              const int32_t* row_idx, const double* values,
                              int32_t n_ranks, int32_t block_size,
                              pangulu_precision precision,
                              double ir_tolerance, int32_t ir_max_iters,
                              pangulu_session** out);

/* Numeric-only refactorisation from the new values of the analysed matrix
 * in its original CSC entry order. Returns PANGULU_FAILED_PRECONDITION when
 * nnz does not match the analysed pattern. */
int pangulu_session_refactorize(pangulu_session* s, const double* values,
                                int64_t nnz);

/* As above from a full CSC matrix; PANGULU_FAILED_PRECONDITION when its
 * pattern fingerprint differs from the analysed one. */
int pangulu_session_refactorize_csc(pangulu_session* s, const int64_t* col_ptr,
                                    const int32_t* row_idx,
                                    const double* values);

/* Solve A x = b; b_x holds b on entry and x on return (length n). */
int pangulu_session_solve(pangulu_session* s, double* b_x);

/* As pangulu_session_solve under a wall-clock deadline of deadline_seconds
 * from the call. A solve that cannot finish in time stops cooperatively at
 * the next sweep level or refinement iteration and fails with
 * PANGULU_DEADLINE_EXCEEDED, leaving b_x untouched and the session fully
 * usable — a later solve with a larger (or no) budget succeeds.
 * deadline_seconds <= 0 sheds immediately. */
int pangulu_session_solve_deadline(pangulu_session* s, double* b_x,
                                   double deadline_seconds);

/* Solve A X = B for k right-hand sides: b_x is column-major n x k, holding
 * B on entry and X on return. Each factor block is visited once per sweep
 * and applied to all k columns; column j is bitwise identical to a
 * pangulu_session_solve of that column alone. */
int pangulu_session_solve_multi(pangulu_session* s, double* b_x, int32_t k);

int32_t pangulu_session_matrix_order(const pangulu_session* s);

/* Precision the session was created with (DOUBLE when s is NULL). */
pangulu_precision pangulu_session_precision(const pangulu_session* s);

/* Refinement statistics of the most recent successful solve on this
 * session. Under MIXED_IR, iterations is the number of FP32 correction
 * solves the FP64 loop needed and residual the final relative residual
 * ||b - Ax||_inf / (||A||_1 ||x||_inf + ||b||_inf); for multi-RHS solves
 * they describe the worst column. -1 / -1.0 before the first solve or when
 * s is NULL. */
int32_t pangulu_session_refine_iterations(const pangulu_session* s);
double pangulu_session_final_residual(const pangulu_session* s);

/* FNV-1a fingerprint of the analysed sparsity pattern (0 before setup). */
uint64_t pangulu_session_pattern_hash(const pangulu_session* s);

const char* pangulu_session_last_error(const pangulu_session* s);

void pangulu_session_destroy(pangulu_session* s);

#ifdef __cplusplus
}
#endif

#endif /* PANGULU_C_H_ */
