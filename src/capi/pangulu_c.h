/* C API of the PanguLU reproduction.
 *
 * The original PanguLU artifact is a C library driven as
 *   mpirun -np N test/numeric_file -F matrix.mtx
 * This header exposes the same capability to C callers: hand over a CSC
 * matrix, factorise on a simulated N-rank cluster, solve right-hand sides.
 *
 * All functions return 0 on success and a nonzero pangulu_status code on
 * failure; pangulu_last_error() returns a message for the last failure on
 * the handle.
 */
#ifndef PANGULU_C_H_
#define PANGULU_C_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct pangulu_handle pangulu_handle;

typedef enum pangulu_status {
  PANGULU_OK = 0,
  PANGULU_INVALID_ARGUMENT = 1,
  PANGULU_OUT_OF_RANGE = 2,
  PANGULU_FAILED_PRECONDITION = 3,
  PANGULU_NUMERICAL_ERROR = 4,
  PANGULU_IO_ERROR = 5,
  PANGULU_INTERNAL = 6,
  /* A required resource is gone (e.g. unrecoverable simulated rank loss). */
  PANGULU_UNAVAILABLE = 7,
  /* The static task-graph verifier found a broken scheduling invariant;
   * pangulu_last_error() names it. */
  PANGULU_INVARIANT_VIOLATION = 8,
  /* Silent data corruption: an ABFT checksum audit failed during the
   * factorisation, or a checkpoint file failed its CRC on load. */
  PANGULU_DATA_CORRUPTION = 9
} pangulu_status;

/* Create a solver handle holding a copy of the n x n CSC matrix:
 * col_ptr[n+1], row_idx[nnz] (0-based, sorted per column), values[nnz]. */
int pangulu_create(int32_t n, const int64_t* col_ptr, const int32_t* row_idx,
                   const double* values, pangulu_handle** out);

/* Load a Matrix Market file instead. */
int pangulu_create_from_file(const char* path, pangulu_handle** out);

/* Full pipeline (reorder, symbolic, blocking, numeric) on a simulated
 * cluster of n_ranks processes. block_size 0 selects the heuristic. */
int pangulu_factorize(pangulu_handle* h, int32_t n_ranks, int32_t block_size);

/* As pangulu_factorize, but with checkpoint/restart armed: a versioned,
 * CRC-checksummed snapshot of the factorisation state is written atomically
 * to `checkpoint_path` every `interval_tasks` completed block tasks
 * (0 selects the default cadence of ~1/4 of the task count). ABFT checksum
 * audits run at the cheap level while checkpointing is armed, so silent
 * corruption is detected (PANGULU_DATA_CORRUPTION) instead of landing in
 * the factors. */
int pangulu_factorize_checkpointed(pangulu_handle* h, int32_t n_ranks,
                                   int32_t block_size,
                                   const char* checkpoint_path,
                                   int64_t interval_tasks);

/* Resume an interrupted factorisation from a snapshot written by
 * pangulu_factorize_checkpointed. Creates a NEW handle (the matrix and all
 * options that determine the computed bits are restored from the snapshot)
 * and continues to completion; the resulting factors are bitwise identical
 * to an uninterrupted run. Returns PANGULU_DATA_CORRUPTION when the
 * snapshot fails its CRC, PANGULU_FAILED_PRECONDITION when it is
 * inconsistent with the matrix it claims to checkpoint. */
int pangulu_resume_from_checkpoint(const char* checkpoint_path,
                                   pangulu_handle** out);

/* Solve A x = b. b_x holds b on entry and x on return (length n). */
int pangulu_solve(pangulu_handle* h, double* b_x);

/* Solve A^T x = b, same in/out convention. */
int pangulu_solve_transpose(pangulu_handle* h, double* b_x);

/* Introspection (valid after a successful factorise). */
int64_t pangulu_nnz_lu(const pangulu_handle* h);
double pangulu_factor_flops(const pangulu_handle* h);
double pangulu_modeled_numeric_seconds(const pangulu_handle* h);
int32_t pangulu_matrix_order(const pangulu_handle* h);

/* Message of the most recent failure on this handle ("" when none). The
 * pointer stays valid until the next call on the handle. */
const char* pangulu_last_error(const pangulu_handle* h);

void pangulu_destroy(pangulu_handle* h);

#ifdef __cplusplus
}
#endif

#endif /* PANGULU_C_H_ */
