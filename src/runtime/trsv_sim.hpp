// Distributed block sparse triangular solve (step 5 of the pipeline, §4.1)
// on the simulated cluster. Like the factorisation DES, the numerics execute
// for real on the host while ranks accrue virtual time; scheduling is
// synchronisation-free in the style of Liu et al. [58]: a per-segment
// counter of outstanding updates releases the diagonal solve the moment the
// last update lands, with no level barriers.
#pragma once

#include <span>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "runtime/sim.hpp"
#include "util/status.hpp"

namespace pangulu::runtime {

struct TrsvOptions {
  DeviceModel device = DeviceModel::a100_like();
  rank_t n_ranks = 1;
  bool execute_numerics = true;
};

/// Solve L y = x (forward, `lower`=true, unit diagonal from the factorised
/// diagonal blocks) or U x = y (backward) in place on `x`, where `f` holds
/// the LU factors in block form. `mapping` assigns block owners; vector
/// segments live with their diagonal block's owner.
Status simulate_trsv(const block::BlockMatrix& f, const block::Mapping& mapping,
                     bool lower, std::span<value_t> x, const TrsvOptions& opts,
                     SimResult* result);

}  // namespace pangulu::runtime
