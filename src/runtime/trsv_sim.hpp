// Distributed block sparse triangular solve (step 5 of the pipeline, §4.1)
// on the simulated cluster. Like the factorisation DES, the numerics execute
// for real on the host in *canonical sweep order* (segment by segment, each
// diagonal solve followed by the updates it releases), decoupled from the
// event replay that accrues virtual time — so the solution is bitwise
// identical for every rank count, schedule and elastic plan, and only
// makespan/sync/communication vary. Scheduling in the replay is
// synchronisation-free in the style of Liu et al. [58]: a per-segment
// counter of outstanding updates releases the diagonal solve the moment the
// last update lands, with no level barriers.
//
// The schedule itself — update lists, dependency counters, task owners,
// per-task kernel costs and priorities — depends only on the factor pattern,
// the mapping and the device model, none of which change between solves. It
// is therefore built once into a TrsvPlan and reused: repeat solves copy the
// initial dependency counters and run pure numerics + event simulation.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "runtime/sim.hpp"
#include "util/status.hpp"

namespace pangulu::runtime {

struct TrsvOptions {
  DeviceModel device = DeviceModel::a100_like();
  rank_t n_ranks = 1;
  bool execute_numerics = true;
  /// Planned capacity changes during the solve phase (runtime/elastic.hpp).
  /// The solve phase's commit clock is the count of committed diagonal
  /// solves: a drain/add with at_commit = c fires at the first level
  /// boundary where c segments have committed (drain quiesce ->
  /// Mapping::rebalance -> I6 re-proof -> continue). Requires `mapping`.
  /// Because the numerics run canonically, the solution is bitwise
  /// identical to the static run; only the replay's timing/traffic move.
  ElasticPlan elastic;
  /// The mapping the plan was built against — required (not owned) whenever
  /// `elastic` is non-empty, so capacity changes rebalance a working copy.
  const block::Mapping* mapping = nullptr;
  /// Re-proof level for each solve-phase rebalance. kFull clamps to kCheap
  /// here: the I5 message-conservation proof wants the factorisation task
  /// list, which does not exist during the solve phase.
  analysis::VerifyLevel verify_level = analysis::VerifyLevel::kCheap;
  /// Optional cooperative cancellation (util/cancel.hpp). Not owned. Polled
  /// between sweep levels (manual cancel / wall deadline) and at every
  /// event pop against the DES virtual clock (virtual deadline). The
  /// timing replay runs before the canonical numerics, so a
  /// virtual-deadline miss sheds the solve with `x` untouched.
  const CancelToken* cancel = nullptr;
};

/// Cached triangular-solve schedule. Task ids: [0, nb) are diagonal solves
/// (one per vector segment); [nb, n_tasks) are off-diagonal updates. All
/// arrays are flat (TaskAdjacency style) so a solve touches no per-task heap
/// allocations. Owned by the Solver; invalidated whenever the factors or the
/// mapping change (re-factorisation).
struct TrsvPlan {
  bool lower = false;
  rank_t n_ranks = 1;
  index_t nb = 0;
  index_t n_tasks = 0;  // nb + number of updates

  std::vector<nnz_t> diag_pos;   // [nb] block position of each diagonal block
  std::vector<nnz_t> upd_pos;    // [n_updates] block position of each update
  std::vector<index_t> upd_src;  // [n_updates] segment the update consumes
  std::vector<index_t> upd_dst;  // [n_updates] segment it accumulates into

  // diag solve k releases update ids from_adj[from_ptr[k] .. from_ptr[k+1]).
  std::vector<index_t> from_ptr;  // [nb + 1]
  std::vector<index_t> from_adj;  // [n_updates]

  std::vector<index_t> init_dep;  // [n_tasks] initial dependency counters
  std::vector<rank_t> owner;      // [n_tasks]
  std::vector<double> cost;       // [n_tasks] device kernel time
  // Packed ready-queue key (crit << 33 | kind << 32 | id); smaller pops first.
  std::vector<std::uint64_t> prio;      // [n_tasks]
  std::vector<std::size_t> seg_bytes;   // [nb] message payload per segment

  bool valid() const { return nb > 0; }
};

/// Build the solve schedule for L (lower=true) or U against `f`/`mapping`.
/// Costs are evaluated against `opts.device`, so the plan must be rebuilt if
/// the device model changes. Templated on the factor value type: the plan is
/// pure structure except `seg_bytes`, which bakes in sizeof(V) so an FP32
/// plan models FP32 message traffic (DESIGN.md §14).
template <class V>
Status build_trsv_plan(const block::BlockMatrixT<V>& f,
                       const block::Mapping& mapping, bool lower,
                       const TrsvOptions& opts, TrsvPlan* plan);

/// Run one solve over a prebuilt plan, in place on `x`. Bitwise identical —
/// numerics, makespan and message counts — to the legacy one-shot overload.
template <class V>
Status simulate_trsv(const block::BlockMatrixT<V>& f, const TrsvPlan& plan,
                     std::type_identity_t<std::span<V>> x, const TrsvOptions& opts,
                     SimResult* result);

/// Panel (multi-RHS) run over a prebuilt plan: `x` is an n x k
/// row-interleaved panel — column c of row r at x[r * stride + c], so each
/// task's k-wide sweep runs over contiguous memory (stride 1 with k == 1 is
/// the plain vector layout). The schedule is the single-vector one — each
/// task visits its block once and sweeps all k columns, with its kernel cost
/// and message payload scaled by k. Per column the numerics are bitwise
/// identical to a single-vector run, and with k == 1 the makespan, message
/// and byte counts also match exactly (the single-vector overload delegates
/// here).
template <class V>
Status simulate_trsv_panel(const block::BlockMatrixT<V>& f,
                           const TrsvPlan& plan, V* x, index_t stride,
                           index_t k, const TrsvOptions& opts,
                           SimResult* result);

/// One-shot convenience: build_trsv_plan + the plan-based run above.
template <class V>
Status simulate_trsv(const block::BlockMatrixT<V>& f,
                     const block::Mapping& mapping, bool lower, std::type_identity_t<std::span<V>> x,
                     const TrsvOptions& opts, SimResult* result);

}  // namespace pangulu::runtime
