#include "runtime/abft.hpp"

#include <string>
#include <utility>

namespace pangulu::runtime {

namespace {

using block::Task;
using block::TaskKind;

/// Replay recursion bound: a legitimate repair chain is at most
/// source-of-source deep (SSSSM sources are finalised panels whose own
/// sources are diagonal blocks), so a small constant suffices.
constexpr int kMaxRepairDepth = 4;

}  // namespace

template <class V>
std::uint64_t block_checksum(const CscT<V>& blk) {
  const auto vals = blk.values();
  const auto* bytes = reinterpret_cast<const unsigned char*>(vals.data());
  const std::size_t n = vals.size() * sizeof(V);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

template <class V>
AbftGuardT<V>::AbftGuardT(block::BlockMatrixT<V>& bm,
                          const std::vector<Task>& tasks, AbftLevel level,
                          index_t first_task, TaskRunner runner)
    : bm_(bm),
      tasks_(tasks),
      level_(level),
      first_task_(first_task),
      cursor_(first_task),
      runner_(std::move(runner)) {
  const auto nblocks = static_cast<std::size_t>(bm_.n_blocks());
  sum_.resize(nblocks);
  base_.resize(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const CscT<V>& blk = bm_.block(static_cast<nnz_t>(b));
    sum_[b] = block_checksum(blk);
    base_[b].assign(blk.values().begin(), blk.values().end());
  }
  // CSR of tasks per target block, canonical order preserved per block.
  by_block_ptr_.assign(nblocks + 1, 0);
  for (const Task& t : tasks_)
    ++by_block_ptr_[static_cast<std::size_t>(t.target) + 1];
  for (std::size_t b = 0; b < nblocks; ++b)
    by_block_ptr_[b + 1] += by_block_ptr_[b];
  by_block_task_.resize(tasks_.size());
  std::vector<nnz_t> cursor(by_block_ptr_.begin(), by_block_ptr_.end() - 1);
  for (index_t t = 0; t < static_cast<index_t>(tasks_.size()); ++t) {
    const auto b = static_cast<std::size_t>(tasks_[static_cast<std::size_t>(t)].target);
    by_block_task_[static_cast<std::size_t>(cursor[b]++)] = t;
  }
}

template <class V>
Status AbftGuardT<V>::ensure_clean(nnz_t pos, int depth) {
  ++stats_.audits;
  const auto b = static_cast<std::size_t>(pos);
  if (block_checksum(bm_.block(pos)) == sum_[b]) return Status::ok();
  ++stats_.detected;
  if (depth >= kMaxRepairDepth)
    return Status::data_corruption(
        "abft: repair recursion exceeded depth bound at block position " +
        std::to_string(pos));

  // Restore the armed-time values, then replay this block's committed tasks
  // in canonical order. Sources of replayed tasks are audited first so a
  // corrupt input can never be baked into the "repaired" block.
  CscT<V>& blk = bm_.block(pos);
  auto vals = blk.values_mut();
  PANGULU_CHECK(vals.size() == base_[b].size(),
                "abft: block nnz changed under the guard");
  std::copy(base_[b].begin(), base_[b].end(), vals.begin());
  for (nnz_t q = by_block_ptr_[b]; q < by_block_ptr_[b + 1]; ++q) {
    const index_t t = by_block_task_[static_cast<std::size_t>(q)];
    if (t < first_task_ || t >= cursor_) continue;
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    if (task.src_a >= 0 && task.src_a != pos) {
      Status s = ensure_clean(task.src_a, depth + 1);
      if (!s.is_ok()) return s;
    }
    if (task.src_b >= 0 && task.src_b != pos) {
      Status s = ensure_clean(task.src_b, depth + 1);
      if (!s.is_ok()) return s;
    }
    Status s = runner_(t);
    if (!s.is_ok()) return s;
  }
  if (block_checksum(bm_.block(pos)) != sum_[b])
    return Status::data_corruption(
        "abft: block position " + std::to_string(pos) +
        " failed its checksum and replay could not reproduce it (corrupt "
        "baseline or inputs)");
  ++stats_.recomputed;
  return Status::ok();
}

template <class V>
Status AbftGuardT<V>::before_task(index_t t) {
  if (level_ == AbftLevel::kOff) return Status::ok();
  const Task& task = tasks_[static_cast<std::size_t>(t)];
  if (task.src_a >= 0) {
    Status s = ensure_clean(task.src_a, 0);
    if (!s.is_ok()) return s;
  }
  if (task.src_b >= 0 && task.src_b != task.src_a) {
    Status s = ensure_clean(task.src_b, 0);
    if (!s.is_ok()) return s;
  }
  if (level_ == AbftLevel::kFull) {
    Status s = ensure_clean(task.target, 0);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

template <class V>
void AbftGuardT<V>::after_task(index_t t) {
  const Task& task = tasks_[static_cast<std::size_t>(t)];
  if (level_ != AbftLevel::kOff)
    sum_[static_cast<std::size_t>(task.target)] =
        block_checksum(bm_.block(task.target));
  cursor_ = t + 1;
}

template <class V>
Status AbftGuardT<V>::final_sweep() {
  if (level_ != AbftLevel::kFull) return Status::ok();
  for (nnz_t pos = 0; pos < static_cast<nnz_t>(sum_.size()); ++pos) {
    Status s = ensure_clean(pos, 0);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

template std::uint64_t block_checksum<float>(const CscT<float>&);
template std::uint64_t block_checksum<double>(const CscT<double>&);
template class AbftGuardT<float>;
template class AbftGuardT<double>;

}  // namespace pangulu::runtime
