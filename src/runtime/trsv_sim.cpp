#include "runtime/trsv_sim.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <string>
#include <tuple>
#include <vector>

#include "kernels/gessm.hpp"
#include "kernels/tstrf.hpp"

namespace pangulu::runtime {

namespace {

// The scalar diagonal-solve and SpMV-subtract sweeps live on as the k = 1
// case of the panel kernels (kernels/gessm.hpp, tstrf.hpp,
// kernel_common.hpp), which this file now uses for every run.

struct Event {
  double time;
  index_t seq;
  index_t task;  // >=0: task ready; -1: rank wake
  rank_t rank;
  bool operator>(const Event& o) const {
    return std::tie(time, seq) > std::tie(o.time, o.seq);
  }
};

// Elastic events in firing order on the solve phase's commit clock (the
// diagonal-solve count): by at_commit, adds before drains on ties, matching
// ElasticPlan::validate and the factorisation DES.
struct SolveElasticStep {
  index_t at_commit;
  rank_t rank;
  bool is_add;
};

std::vector<SolveElasticStep> solve_elastic_steps(const ElasticPlan& plan) {
  std::vector<SolveElasticStep> steps;
  steps.reserve(plan.adds.size() + plan.drains.size());
  for (const auto& e : plan.adds) steps.push_back({e.at_commit, e.rank, true});
  for (const auto& e : plan.drains)
    steps.push_back({e.at_commit, e.rank, false});
  std::stable_sort(steps.begin(), steps.end(),
                   [](const SolveElasticStep& a, const SolveElasticStep& b) {
                     if (a.at_commit != b.at_commit)
                       return a.at_commit < b.at_commit;
                     return a.is_add && !b.is_add;
                   });
  return steps;
}

// The I5 message-conservation re-proof needs the factorisation task list,
// which the solve phase does not have: clamp kFull to the structural I6
// proof (totality, bounded movement, count conservation).
analysis::VerifyLevel solve_verify_level(analysis::VerifyLevel level) {
  return level == analysis::VerifyLevel::kOff ? level
                                              : analysis::VerifyLevel::kCheap;
}

}  // namespace

template <class V>
Status build_trsv_plan(const block::BlockMatrixT<V>& f,
                       const block::Mapping& mapping, bool lower,
                       const TrsvOptions& opts, TrsvPlan* plan) {
  *plan = TrsvPlan{};
  const index_t nb = f.nb();
  if (mapping.n_ranks != opts.n_ranks)
    return Status::invalid_argument("trsv: mapping rank count mismatch");
  plan->lower = lower;
  plan->n_ranks = opts.n_ranks;
  plan->nb = nb;

  // Task list: one diag solve per segment, one update per off-diagonal block
  // on the relevant triangle. Updates are discovered per block column, so the
  // release list of diag solve bj is the flat CSR row [from_ptr[bj],
  // from_ptr[bj+1]).
  std::vector<index_t> pending(static_cast<std::size_t>(nb), 0);
  plan->from_ptr.assign(static_cast<std::size_t>(nb) + 1, 0);
  for (index_t bj = 0; bj < nb; ++bj) {
    for (nnz_t p = f.col_begin(bj); p < f.col_end(bj); ++p) {
      const index_t bi = f.block_row(p);
      if (lower ? bi > bj : bi < bj) {
        // lower: block L(bi,bj) maps y_bj into segment bi.
        // upper: block U(bi,bj) maps x_bj into segment bi.
        plan->from_adj.push_back(static_cast<index_t>(plan->upd_pos.size()));
        plan->upd_pos.push_back(p);
        plan->upd_src.push_back(bj);
        plan->upd_dst.push_back(bi);
        pending[static_cast<std::size_t>(bi)]++;
      }
    }
    plan->from_ptr[static_cast<std::size_t>(bj) + 1] =
        static_cast<index_t>(plan->from_adj.size());
  }
  const auto n_updates = static_cast<index_t>(plan->upd_pos.size());
  const index_t n_tasks = nb + n_updates;
  plan->n_tasks = n_tasks;

  // Owners: diag solve runs with the diagonal block; an update runs with its
  // block's owner.
  plan->owner.resize(static_cast<std::size_t>(n_tasks));
  plan->diag_pos.resize(static_cast<std::size_t>(nb));
  for (index_t k = 0; k < nb; ++k) {
    const nnz_t dp = f.find_block(k, k);
    PANGULU_CHECK(dp >= 0, "trsv: missing diagonal block");
    plan->diag_pos[static_cast<std::size_t>(k)] = dp;
    plan->owner[static_cast<std::size_t>(k)] =
        mapping.owner[static_cast<std::size_t>(dp)];
  }
  for (index_t u = 0; u < n_updates; ++u) {
    plan->owner[static_cast<std::size_t>(nb + u)] = mapping.owner[
        static_cast<std::size_t>(plan->upd_pos[static_cast<std::size_t>(u)])];
  }

  // dep counts: diag solve waits for its pending updates; an update waits
  // for its source segment's diag solve.
  plan->init_dep.resize(static_cast<std::size_t>(n_tasks));
  for (index_t k = 0; k < nb; ++k)
    plan->init_dep[static_cast<std::size_t>(k)] =
        pending[static_cast<std::size_t>(k)];
  for (index_t u = 0; u < n_updates; ++u)
    plan->init_dep[static_cast<std::size_t>(nb + u)] = 1;

  // Kernel cost and ready-queue priority per task. The priority packs the
  // tuple (critical segment, kind, id) into one int64 — diag solves first
  // (they unlock the most), updates in segment order: ascending for the
  // lower solve, descending for the upper (later segments more critical).
  const auto& grid = f.grid();
  plan->cost.resize(static_cast<std::size_t>(n_tasks));
  plan->prio.resize(static_cast<std::size_t>(n_tasks));
  for (index_t t = 0; t < n_tasks; ++t) {
    index_t seg;
    if (t < nb) {
      const CscT<V>& d = f.block(plan->diag_pos[static_cast<std::size_t>(t)]);
      plan->cost[static_cast<std::size_t>(t)] = opts.device.sparse_kernel_time(
          /*gpu=*/true, /*direct=*/false, 2.0 * static_cast<double>(d.nnz()),
          static_cast<double>(d.nnz()), grid.block_dim(t));
      seg = t;
    } else {
      const auto u = static_cast<std::size_t>(t - nb);
      const CscT<V>& blk = f.block(plan->upd_pos[u]);
      plan->cost[static_cast<std::size_t>(t)] = opts.device.sparse_kernel_time(
          true, false, 2.0 * static_cast<double>(blk.nnz()),
          static_cast<double>(blk.nnz()), grid.block_dim(plan->upd_dst[u]));
      seg = plan->upd_dst[u];
    }
    const index_t crit = lower ? seg : nb - 1 - seg;
    plan->prio[static_cast<std::size_t>(t)] =
        (static_cast<std::uint64_t>(crit) << 33) |
        (static_cast<std::uint64_t>(t < nb ? 0 : 1) << 32) |
        static_cast<std::uint64_t>(t);
  }

  plan->seg_bytes.resize(static_cast<std::size_t>(nb));
  for (index_t k = 0; k < nb; ++k)
    plan->seg_bytes[static_cast<std::size_t>(k)] =
        static_cast<std::size_t>(grid.block_dim(k)) * sizeof(V);
  return Status::ok();
}

template <class V>
Status simulate_trsv(const block::BlockMatrixT<V>& f, const TrsvPlan& plan,
                     std::type_identity_t<std::span<V>> x, const TrsvOptions& opts,
                     SimResult* result) {
  if (static_cast<index_t>(x.size()) != f.grid().n) {
    *result = SimResult{};
    return Status::invalid_argument("trsv: vector size mismatch");
  }
  // The k = 1 panel is the single-vector solve: same numerics (the panel
  // kernels reduce to the scalar sweeps column for column), same cost
  // (x1.0) and message payload (x1), hence the same makespan and traffic.
  return simulate_trsv_panel(f, plan, x.data(), 1, 1, opts, result);
}

namespace {

// Event-driven timing replay of one (possibly elastic) solve over a prebuilt
// plan. Pure scheduling — no numerics — so it can run *before* the canonical
// sweep: a virtual-deadline miss or a mid-replay load shed returns with the
// caller's vector untouched. Elastic drains/adds fire at diagonal-solve
// commit boundaries, mirroring the factorisation DES protocol: quiesce the
// rank, Mapping::rebalance a working copy, re-prove it with the I6 verifier,
// charge migration time, re-route queued work.
template <class V>
Status trsv_replay(const block::BlockMatrixT<V>& f, const TrsvPlan& plan,
                   index_t k, const TrsvOptions& opts, SimResult* result) {
  const index_t nb = plan.nb;
  const index_t n_tasks = plan.n_tasks;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  static const std::vector<block::Task> kNoTasks;

  std::vector<index_t> dep(plan.init_dep);
  result->ranks.assign(static_cast<std::size_t>(opts.n_ranks), RankStats{});
  std::vector<double> busy_until(static_cast<std::size_t>(opts.n_ranks), 0.0);
  std::vector<double> ready_time(static_cast<std::size_t>(n_tasks), 0.0);
  std::vector<char> done(static_cast<std::size_t>(n_tasks), 0);
  // Owners are read fresh at event-pop time, so a rebalance re-routes every
  // not-yet-run task by rewriting this copy.
  std::vector<rank_t> owner(plan.owner);

  const bool elastic_run = !opts.elastic.empty();
  block::Mapping mapping;
  std::vector<char> alive;
  std::vector<SolveElasticStep> esteps;
  std::size_t next_step = 0;
  const analysis::VerifyLevel vlevel = solve_verify_level(opts.verify_level);

  auto refresh_owners = [&] {
    for (index_t t = 0; t < n_tasks; ++t) {
      if (done[static_cast<std::size_t>(t)]) continue;
      const nnz_t pos =
          t < nb ? plan.diag_pos[static_cast<std::size_t>(t)]
                 : plan.upd_pos[static_cast<std::size_t>(t - nb)];
      owner[static_cast<std::size_t>(t)] =
          mapping.owner[static_cast<std::size_t>(pos)];
    }
  };

  if (elastic_run) {
    mapping = *opts.mapping;
    alive = opts.elastic.initially_active(opts.n_ranks);
    // Provisioning, not migration: a rank whose first event is an add starts
    // idle, so its blocks re-home at zero cost before any task runs.
    for (rank_t r = 0; r < opts.n_ranks; ++r) {
      if (alive[static_cast<std::size_t>(r)]) continue;
      block::Mapping before = mapping;
      if (mapping.rebalance(r, -1, alive) < 0)
        return Status::resource_exhausted(
            "trsv: elastic plan leaves no rank live before the first solve "
            "task");
      Status vs = analysis::verify_rebalance(f, kNoTasks, before, mapping, r,
                                             -1, alive, vlevel);
      if (!vs.is_ok()) return vs;
    }
    refresh_owners();
    esteps = solve_elastic_steps(opts.elastic);
  }

  auto priority_less = [&](index_t a, index_t b) {
    return plan.prio[static_cast<std::size_t>(a)] >
           plan.prio[static_cast<std::size_t>(b)];
  };
  std::vector<std::priority_queue<index_t, std::vector<index_t>,
                                  decltype(priority_less)>>
      ready;
  for (rank_t r = 0; r < opts.n_ranks; ++r) ready.emplace_back(priority_less);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  index_t seq = 0;
  for (index_t t = 0; t < n_tasks; ++t) {
    if (dep[static_cast<std::size_t>(t)] == 0) events.push({0.0, seq++, t, 0});
  }

  double makespan = 0;
  index_t completed = 0;
  index_t diag_done = 0;  // the solve phase's commit clock

  // Mirror of the factorisation DES handle_elastic, on the diagonal-solve
  // commit clock. Drains quiesce the rank's in-flight task, migrate its
  // factor blocks (each travelling once over the wire) and park it at +inf;
  // adds steal from the most-loaded donors and wake the newcomer once the
  // migrated state lands.
  auto handle_elastic = [&](double now, bool fire_all) -> Status {
    for (; next_step < esteps.size() &&
           (fire_all || esteps[next_step].at_commit <= diag_done);
         ++next_step) {
      const SolveElasticStep& st = esteps[next_step];
      const auto ri = static_cast<std::size_t>(st.rank);
      block::Mapping before = mapping;
      std::vector<nnz_t> moved_pos;
      nnz_t moved = 0;
      double quiesce = now;
      if (st.is_add) {
        if (alive[ri]) continue;  // validate() rejects this; stay defensive
        alive[ri] = 1;
        moved = mapping.rebalance(st.rank, +1, alive, &moved_pos);
        if (moved < 0)
          return Status::resource_exhausted(
              "add of rank " + std::to_string(st.rank) +
              " found no donor blocks");
      } else {
        if (!alive[ri] || busy_until[ri] == kInf) continue;
        rank_t live = 0;
        for (char a : alive) live += a ? 1 : 0;
        if (live - 1 < opts.elastic.min_ranks)
          return Status::resource_exhausted(
              "drain of rank " + std::to_string(st.rank) + " at solve commit " +
              std::to_string(diag_done) + " would leave " +
              std::to_string(live - 1) + " live ranks, below min_ranks " +
              std::to_string(opts.elastic.min_ranks) + "; load shed");
        quiesce = std::max(now, busy_until[ri]);
        alive[ri] = 0;
        moved = mapping.rebalance(st.rank, -1, alive, &moved_pos);
        if (moved < 0)
          return Status::resource_exhausted(
              "drain of rank " + std::to_string(st.rank) +
              " found no live rank to adopt its blocks");
      }
      refresh_owners();
      Status vs =
          analysis::verify_rebalance(f, kNoTasks, before, mapping, st.rank,
                                     st.is_add ? +1 : -1, alive, vlevel);
      if (!vs.is_ok()) return vs;
      double tmig = 0;
      for (nnz_t pos : moved_pos) {
        const CscT<V>& blk = f.block(pos);
        tmig += opts.device.message_time(block_message_bytes(
                    blk.nnz(), blk.n_cols(), sizeof(V))) +
                opts.device.remap_per_block_s;
      }
      const double ready_at = quiesce + tmig;
      if (st.is_add) {
        busy_until[ri] = ready_at;
        events.push({ready_at, seq++, -1, st.rank});
        result->ranks_added++;
      } else {
        busy_until[ri] = kInf;  // the drained rank takes no more work
        result->ranks_drained++;
      }
      // Re-route queued work through the event queue: owner is read fresh at
      // pop time, so tasks whose block migrated land on the new owner and
      // become runnable once the migrated state has arrived.
      for (rank_t q = 0; q < opts.n_ranks; ++q) {
        auto& rq = ready[static_cast<std::size_t>(q)];
        while (!rq.empty()) {
          const index_t t = rq.top();
          rq.pop();
          const auto pos = static_cast<std::size_t>(
              t < nb ? plan.diag_pos[static_cast<std::size_t>(t)]
                     : plan.upd_pos[static_cast<std::size_t>(t - nb)]);
          const bool migrated = before.owner[pos] != mapping.owner[pos];
          events.push({std::max(migrated ? ready_at : now,
                                ready_time[static_cast<std::size_t>(t)]),
                       seq++, t, 0});
        }
      }
      result->migrated_blocks += moved;
      result->migration_time += (quiesce - now) + tmig;
      makespan = std::max(makespan, ready_at);
    }
    return Status::ok();
  };

  Status es = Status::ok();
  auto start_one = [&](rank_t r, double now) {
    auto& q = ready[static_cast<std::size_t>(r)];
    if (q.empty()) return;
    const index_t t = q.top();
    q.pop();

    // Each task sweeps its block once for all k columns; the modelled kernel
    // time scales linearly with the panel width.
    const double cost =
        plan.cost[static_cast<std::size_t>(t)] * static_cast<double>(k);
    const double fin = now + cost;
    busy_until[static_cast<std::size_t>(r)] = fin;
    makespan = std::max(makespan, fin);
    auto& rs = result->ranks[static_cast<std::size_t>(r)];
    rs.busy += cost;
    ++completed;
    done[static_cast<std::size_t>(t)] = 1;

    // Release dependents.
    auto release = [&](index_t d_task, std::size_t msg_bytes) {
      const rank_t dr = owner[static_cast<std::size_t>(d_task)];
      double arrive = fin;
      if (dr != r) {
        arrive += opts.device.message_time(msg_bytes);
        rs.messages_sent++;
        rs.bytes_sent += msg_bytes;
      }
      auto& rd = ready_time[static_cast<std::size_t>(d_task)];
      rd = std::max(rd, arrive);
      if (--dep[static_cast<std::size_t>(d_task)] == 0)
        events.push({rd, seq++, d_task, 0});
    };
    // A cross-rank message carries the segment for all k columns.
    if (t < nb) {
      for (index_t p = plan.from_ptr[static_cast<std::size_t>(t)];
           p < plan.from_ptr[static_cast<std::size_t>(t) + 1]; ++p) {
        release(nb + plan.from_adj[static_cast<std::size_t>(p)],
                plan.seg_bytes[static_cast<std::size_t>(t)] *
                    static_cast<std::size_t>(k));
      }
    } else {
      const auto u = static_cast<std::size_t>(t - nb);
      release(plan.upd_dst[u],
              plan.seg_bytes[static_cast<std::size_t>(plan.upd_dst[u])] *
                  static_cast<std::size_t>(k));
    }
    events.push({fin, seq++, -1, r});
    // A committed diagonal solve advances the commit clock; elastic events
    // due at this boundary fire at its completion time.
    if (t < nb) {
      ++diag_done;
      if (elastic_run) es = handle_elastic(fin, false);
    }
  };

  // Commit 0 is itself a safe point (events scheduled before any task).
  if (elastic_run) {
    Status s0 = handle_elastic(0.0, false);
    if (!s0.is_ok()) return s0;
  }

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    // Virtual-deadline poll: the DES clock has provably reached ev.time, so
    // a deadline behind it can never be met and the solve sheds here.
    if (opts.cancel) {
      Status cs = opts.cancel->check_virtual(ev.time, "trsv event loop");
      if (!cs.is_ok()) return cs;
    }
    rank_t r;
    if (ev.task >= 0) {
      r = owner[static_cast<std::size_t>(ev.task)];
      ready[static_cast<std::size_t>(r)].push(ev.task);
    } else {
      r = ev.rank;
    }
    if (busy_until[static_cast<std::size_t>(r)] > ev.time + 1e-30) continue;
    start_one(r, ev.time);
    if (!es.is_ok()) return es;
  }
  PANGULU_CHECK(completed == n_tasks, "trsv DES deadlocked");
  // Elastic events scheduled past the final commit still fire (the cluster
  // reshapes after the solve drains), at the end of the schedule.
  if (elastic_run) {
    Status sf = handle_elastic(makespan, true);
    if (!sf.is_ok()) return sf;
  }

  result->makespan = makespan;
  result->total_flops = 0;  // not meaningful for trsv; callers use makespan
  for (rank_t r = 0; r < opts.n_ranks; ++r) {
    auto& rs = result->ranks[static_cast<std::size_t>(r)];
    rs.idle = makespan - rs.busy;
    result->avg_sync += rs.idle;
    result->max_sync = std::max(result->max_sync, rs.idle);
    result->messages += rs.messages_sent;
    result->bytes += rs.bytes_sent;
  }
  result->avg_sync /= std::max<rank_t>(1, opts.n_ranks);
  return Status::ok();
}

}  // namespace

template <class V>
Status simulate_trsv_panel(const block::BlockMatrixT<V>& f,
                           const TrsvPlan& plan, V* x, index_t stride,
                           index_t k, const TrsvOptions& opts,
                           SimResult* result) {
  *result = SimResult{};
  const index_t nb = plan.nb;
  if (k <= 0) return Status::invalid_argument("trsv: panel width must be >= 1");
  if (stride < k)
    return Status::invalid_argument("trsv: panel row stride too small");
  if (plan.n_ranks != opts.n_ranks)
    return Status::invalid_argument("trsv: plan rank count mismatch");
  if (nb != f.nb())
    return Status::invalid_argument("trsv: plan built for a different grid");
  if (!opts.elastic.empty()) {
    if (!opts.mapping)
      return Status::invalid_argument(
          "trsv: an elastic plan requires TrsvOptions::mapping (the mapping "
          "the solve plan was built against)");
    if (opts.mapping->n_ranks != opts.n_ranks)
      return Status::invalid_argument("trsv: mapping rank count mismatch");
    Status es = opts.elastic.validate(opts.n_ranks);
    if (!es.is_ok()) return es;
  }

  // Phase 1: the event-driven timing replay, including elastic events and
  // virtual-deadline polls. Failing here leaves `x` untouched.
  Status rs = trsv_replay(f, plan, k, opts, result);
  if (!rs.is_ok()) {
    *result = SimResult{};
    return rs;
  }

  // Phase 2: canonical numerics, decoupled from the schedule — segment by
  // segment in sweep order, each diagonal solve followed by the updates it
  // releases (ascending block row within the column). Any valid schedule,
  // mapping or elastic plan replays to this same order, so the solution is
  // bitwise identical across all of them.
  if (opts.execute_numerics) {
    const auto& grid = f.grid();
    const bool lower = plan.lower;
    for (index_t level = 0; level < nb; ++level) {
      const index_t bj = lower ? level : nb - 1 - level;
      // Sweep-level boundary = solve safe point: segment bj and everything
      // it feeds are not yet committed when the poll sheds the solve.
      if (opts.cancel) {
        Status cs = opts.cancel->check(
            ("trsv sweep level " + std::to_string(level)).c_str());
        if (!cs.is_ok()) return cs;
      }
      V* seg = x + static_cast<std::size_t>(grid.block_start(bj)) * stride;
      const CscT<V>& d = f.block(plan.diag_pos[static_cast<std::size_t>(bj)]);
      if (lower)
        kernels::gessm_dense_panel(d, seg, stride, k);
      else
        kernels::tstrf_dense_panel(d, seg, stride, k);
      for (index_t p = plan.from_ptr[static_cast<std::size_t>(bj)];
           p < plan.from_ptr[static_cast<std::size_t>(bj) + 1]; ++p) {
        const auto u =
            static_cast<std::size_t>(plan.from_adj[static_cast<std::size_t>(p)]);
        kernels::spmm_sub_panel(
            f.block(plan.upd_pos[u]),
            x + static_cast<std::size_t>(grid.block_start(plan.upd_src[u])) *
                    stride,
            stride,
            x + static_cast<std::size_t>(grid.block_start(plan.upd_dst[u])) *
                    stride,
            stride, k);
      }
    }
  }
  return Status::ok();
}

template <class V>
Status simulate_trsv(const block::BlockMatrixT<V>& f,
                     const block::Mapping& mapping, bool lower, std::type_identity_t<std::span<V>> x,
                     const TrsvOptions& opts, SimResult* result) {
  TrsvPlan plan;
  Status s = build_trsv_plan(f, mapping, lower, opts, &plan);
  if (!s.is_ok()) {
    *result = SimResult{};
    return s;
  }
  return simulate_trsv(f, plan, x, opts, result);
}

template Status build_trsv_plan(const block::BlockMatrixT<float>&,
                                const block::Mapping&, bool,
                                const TrsvOptions&, TrsvPlan*);
template Status build_trsv_plan(const block::BlockMatrixT<double>&,
                                const block::Mapping&, bool,
                                const TrsvOptions&, TrsvPlan*);
template Status simulate_trsv(const block::BlockMatrixT<float>&,
                              const TrsvPlan&, std::span<float>,
                              const TrsvOptions&, SimResult*);
template Status simulate_trsv(const block::BlockMatrixT<double>&,
                              const TrsvPlan&, std::span<double>,
                              const TrsvOptions&, SimResult*);
template Status simulate_trsv_panel(const block::BlockMatrixT<float>&,
                                    const TrsvPlan&, float*, index_t, index_t,
                                    const TrsvOptions&, SimResult*);
template Status simulate_trsv_panel(const block::BlockMatrixT<double>&,
                                    const TrsvPlan&, double*, index_t, index_t,
                                    const TrsvOptions&, SimResult*);
template Status simulate_trsv(const block::BlockMatrixT<float>&,
                              const block::Mapping&, bool, std::span<float>,
                              const TrsvOptions&, SimResult*);
template Status simulate_trsv(const block::BlockMatrixT<double>&,
                              const block::Mapping&, bool, std::span<double>,
                              const TrsvOptions&, SimResult*);

}  // namespace pangulu::runtime
