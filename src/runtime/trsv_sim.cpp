#include "runtime/trsv_sim.hpp"

#include <algorithm>
#include <queue>
#include <tuple>
#include <vector>

namespace pangulu::runtime {

namespace {

using block::BlockMatrix;

/// seg_y -= Block * seg_x.
void spmv_sub(const Csc& blk, const value_t* x, value_t* y) {
  for (index_t j = 0; j < blk.n_cols(); ++j) {
    const value_t xj = x[j];
    if (xj == value_t(0)) continue;
    for (nnz_t p = blk.col_begin(j); p < blk.col_end(j); ++p)
      y[blk.row_idx()[static_cast<std::size_t>(p)]] -=
          blk.values()[static_cast<std::size_t>(p)] * xj;
  }
}

void diag_solve(const Csc& d, bool lower, value_t* x) {
  if (lower) {
    for (index_t j = 0; j < d.n_cols(); ++j) {
      const value_t xj = x[j];  // unit diagonal
      if (xj == value_t(0)) continue;
      for (nnz_t p = d.col_begin(j); p < d.col_end(j); ++p) {
        const index_t r = d.row_idx()[static_cast<std::size_t>(p)];
        if (r > j) x[r] -= d.values()[static_cast<std::size_t>(p)] * xj;
      }
    }
  } else {
    for (index_t j = d.n_cols() - 1; j >= 0; --j) {
      value_t djj = 0;
      nnz_t dp = -1;
      for (nnz_t p = d.col_begin(j); p < d.col_end(j); ++p) {
        if (d.row_idx()[static_cast<std::size_t>(p)] == j) {
          djj = d.values()[static_cast<std::size_t>(p)];
          dp = p;
          break;
        }
      }
      PANGULU_CHECK(dp >= 0 && djj != value_t(0), "trsv: bad diagonal");
      x[j] /= djj;
      const value_t xj = x[j];
      if (xj == value_t(0)) continue;
      for (nnz_t p = d.col_begin(j); p < dp; ++p)
        x[d.row_idx()[static_cast<std::size_t>(p)]] -=
            d.values()[static_cast<std::size_t>(p)] * xj;
    }
  }
}

struct Event {
  double time;
  index_t seq;
  index_t task;  // >=0: task ready; -1: rank wake
  rank_t rank;
  bool operator>(const Event& o) const {
    return std::tie(time, seq) > std::tie(o.time, o.seq);
  }
};

}  // namespace

Status simulate_trsv(const BlockMatrix& f, const block::Mapping& mapping,
                     bool lower, std::span<value_t> x, const TrsvOptions& opts,
                     SimResult* result) {
  *result = SimResult{};
  const index_t nb = f.nb();
  if (static_cast<index_t>(x.size()) != f.grid().n)
    return Status::invalid_argument("trsv: vector size mismatch");
  if (mapping.n_ranks != opts.n_ranks)
    return Status::invalid_argument("trsv: mapping rank count mismatch");

  // Task list: one diag solve per segment, one update per off-diagonal block
  // on the relevant triangle. Task ids: [0, nb) diag solves; then updates.
  struct Update {
    nnz_t block_pos;
    index_t src_seg;  // segment whose solved values the update consumes
    index_t dst_seg;  // segment it accumulates into
  };
  std::vector<Update> updates;
  std::vector<index_t> pending(static_cast<std::size_t>(nb), 0);
  std::vector<std::vector<index_t>> updates_from(
      static_cast<std::size_t>(nb));  // diag solve -> update task ids
  for (index_t bj = 0; bj < nb; ++bj) {
    for (nnz_t p = f.col_begin(bj); p < f.col_end(bj); ++p) {
      const index_t bi = f.block_row(p);
      if (lower ? bi > bj : bi < bj) {
        // lower: block L(bi,bj) maps y_bj into segment bi.
        // upper: block U(bi,bj) maps x_bj into segment bi.
        const auto id = static_cast<index_t>(updates.size());
        updates.push_back({p, bj, bi});
        pending[static_cast<std::size_t>(bi)]++;
        updates_from[static_cast<std::size_t>(bj)].push_back(id);
      }
    }
  }
  const auto n_updates = static_cast<index_t>(updates.size());
  const index_t n_tasks = nb + n_updates;

  // Owners: diag solve runs with the diagonal block; an update runs with its
  // block's owner.
  std::vector<rank_t> owner(static_cast<std::size_t>(n_tasks));
  std::vector<nnz_t> diag_pos(static_cast<std::size_t>(nb));
  for (index_t k = 0; k < nb; ++k) {
    const nnz_t dp = f.find_block(k, k);
    PANGULU_CHECK(dp >= 0, "trsv: missing diagonal block");
    diag_pos[static_cast<std::size_t>(k)] = dp;
    owner[static_cast<std::size_t>(k)] =
        mapping.owner[static_cast<std::size_t>(dp)];
  }
  for (index_t u = 0; u < n_updates; ++u) {
    owner[static_cast<std::size_t>(nb + u)] = mapping.owner[
        static_cast<std::size_t>(updates[static_cast<std::size_t>(u)].block_pos)];
  }

  // dep counts: diag solve waits for its pending updates; an update waits
  // for its source segment's diag solve.
  std::vector<index_t> dep(static_cast<std::size_t>(n_tasks));
  for (index_t k = 0; k < nb; ++k)
    dep[static_cast<std::size_t>(k)] = pending[static_cast<std::size_t>(k)];
  for (index_t u = 0; u < n_updates; ++u)
    dep[static_cast<std::size_t>(nb + u)] = 1;

  result->ranks.assign(static_cast<std::size_t>(opts.n_ranks), RankStats{});
  std::vector<double> busy_until(static_cast<std::size_t>(opts.n_ranks), 0.0);
  std::vector<double> ready_time(static_cast<std::size_t>(n_tasks), 0.0);

  // Per-rank ready queues: diag solves first (they unlock the most), then
  // updates in segment order — for the lower solve that is ascending; for
  // the upper solve descending segments are more critical.
  auto priority_less = [&](index_t a, index_t b) {
    auto key = [&](index_t t) {
      index_t seg = t < nb ? t : updates[static_cast<std::size_t>(t - nb)].dst_seg;
      index_t crit = lower ? seg : nb - 1 - seg;
      return std::tuple<index_t, index_t, index_t>(crit, t < nb ? 0 : 1, t);
    };
    return key(a) > key(b);
  };
  std::vector<std::priority_queue<index_t, std::vector<index_t>,
                                  decltype(priority_less)>>
      ready;
  for (rank_t r = 0; r < opts.n_ranks; ++r) ready.emplace_back(priority_less);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  index_t seq = 0;
  for (index_t t = 0; t < n_tasks; ++t) {
    if (dep[static_cast<std::size_t>(t)] == 0) events.push({0.0, seq++, t, 0});
  }

  const auto& grid = f.grid();
  double makespan = 0;
  index_t completed = 0;

  auto seg_bytes = [&](index_t seg) {
    return static_cast<std::size_t>(grid.block_dim(seg)) * sizeof(value_t);
  };

  auto start_one = [&](rank_t r, double now) {
    auto& q = ready[static_cast<std::size_t>(r)];
    if (q.empty()) return;
    const index_t t = q.top();
    q.pop();

    double cost = 0;
    if (t < nb) {
      // Diagonal solve of segment t.
      const Csc& d = f.block(diag_pos[static_cast<std::size_t>(t)]);
      cost = opts.device.sparse_kernel_time(
          /*gpu=*/true, /*direct=*/false, 2.0 * static_cast<double>(d.nnz()),
          static_cast<double>(d.nnz()), grid.block_dim(t));
      if (opts.execute_numerics)
        diag_solve(d, lower, x.data() + grid.block_start(t));
    } else {
      const Update& u = updates[static_cast<std::size_t>(t - nb)];
      const Csc& blk = f.block(u.block_pos);
      cost = opts.device.sparse_kernel_time(
          true, false, 2.0 * static_cast<double>(blk.nnz()),
          static_cast<double>(blk.nnz()), grid.block_dim(u.dst_seg));
      if (opts.execute_numerics) {
        spmv_sub(blk, x.data() + grid.block_start(u.src_seg),
                 x.data() + grid.block_start(u.dst_seg));
      }
    }
    const double fin = now + cost;
    busy_until[static_cast<std::size_t>(r)] = fin;
    makespan = std::max(makespan, fin);
    auto& rs = result->ranks[static_cast<std::size_t>(r)];
    rs.busy += cost;
    result->total_flops += cost;  // placeholder: flops tracked via cost inputs
    ++completed;

    // Release dependents.
    auto release = [&](index_t d_task, std::size_t msg_bytes) {
      const rank_t dr = owner[static_cast<std::size_t>(d_task)];
      double arrive = fin;
      if (dr != r) {
        arrive += opts.device.message_time(msg_bytes);
        rs.messages_sent++;
        rs.bytes_sent += msg_bytes;
      }
      auto& rd = ready_time[static_cast<std::size_t>(d_task)];
      rd = std::max(rd, arrive);
      if (--dep[static_cast<std::size_t>(d_task)] == 0)
        events.push({rd, seq++, d_task, 0});
    };
    if (t < nb) {
      for (index_t u : updates_from[static_cast<std::size_t>(t)])
        release(nb + u, seg_bytes(t));
    } else {
      const Update& u = updates[static_cast<std::size_t>(t - nb)];
      release(u.dst_seg, seg_bytes(u.dst_seg));
    }
    events.push({fin, seq++, -1, r});
  };

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    rank_t r;
    if (ev.task >= 0) {
      r = owner[static_cast<std::size_t>(ev.task)];
      ready[static_cast<std::size_t>(r)].push(ev.task);
    } else {
      r = ev.rank;
    }
    if (busy_until[static_cast<std::size_t>(r)] > ev.time + 1e-30) continue;
    start_one(r, ev.time);
  }
  PANGULU_CHECK(completed == n_tasks, "trsv DES deadlocked");

  result->makespan = makespan;
  result->total_flops = 0;  // not meaningful for trsv; callers use makespan
  for (rank_t r = 0; r < opts.n_ranks; ++r) {
    auto& rs = result->ranks[static_cast<std::size_t>(r)];
    rs.idle = makespan - rs.busy;
    result->avg_sync += rs.idle;
    result->max_sync = std::max(result->max_sync, rs.idle);
    result->messages += rs.messages_sent;
    result->bytes += rs.bytes_sent;
  }
  result->avg_sync /= std::max<rank_t>(1, opts.n_ranks);
  return Status::ok();
}

}  // namespace pangulu::runtime
