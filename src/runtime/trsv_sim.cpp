#include "runtime/trsv_sim.hpp"

#include <algorithm>
#include <queue>
#include <tuple>
#include <vector>

#include "kernels/gessm.hpp"
#include "kernels/tstrf.hpp"

namespace pangulu::runtime {

namespace {

// The scalar diagonal-solve and SpMV-subtract sweeps live on as the k = 1
// case of the panel kernels (kernels/gessm.hpp, tstrf.hpp,
// kernel_common.hpp), which this file now uses for every run.

struct Event {
  double time;
  index_t seq;
  index_t task;  // >=0: task ready; -1: rank wake
  rank_t rank;
  bool operator>(const Event& o) const {
    return std::tie(time, seq) > std::tie(o.time, o.seq);
  }
};

}  // namespace

template <class V>
Status build_trsv_plan(const block::BlockMatrixT<V>& f,
                       const block::Mapping& mapping, bool lower,
                       const TrsvOptions& opts, TrsvPlan* plan) {
  *plan = TrsvPlan{};
  const index_t nb = f.nb();
  if (mapping.n_ranks != opts.n_ranks)
    return Status::invalid_argument("trsv: mapping rank count mismatch");
  plan->lower = lower;
  plan->n_ranks = opts.n_ranks;
  plan->nb = nb;

  // Task list: one diag solve per segment, one update per off-diagonal block
  // on the relevant triangle. Updates are discovered per block column, so the
  // release list of diag solve bj is the flat CSR row [from_ptr[bj],
  // from_ptr[bj+1]).
  std::vector<index_t> pending(static_cast<std::size_t>(nb), 0);
  plan->from_ptr.assign(static_cast<std::size_t>(nb) + 1, 0);
  for (index_t bj = 0; bj < nb; ++bj) {
    for (nnz_t p = f.col_begin(bj); p < f.col_end(bj); ++p) {
      const index_t bi = f.block_row(p);
      if (lower ? bi > bj : bi < bj) {
        // lower: block L(bi,bj) maps y_bj into segment bi.
        // upper: block U(bi,bj) maps x_bj into segment bi.
        plan->from_adj.push_back(static_cast<index_t>(plan->upd_pos.size()));
        plan->upd_pos.push_back(p);
        plan->upd_src.push_back(bj);
        plan->upd_dst.push_back(bi);
        pending[static_cast<std::size_t>(bi)]++;
      }
    }
    plan->from_ptr[static_cast<std::size_t>(bj) + 1] =
        static_cast<index_t>(plan->from_adj.size());
  }
  const auto n_updates = static_cast<index_t>(plan->upd_pos.size());
  const index_t n_tasks = nb + n_updates;
  plan->n_tasks = n_tasks;

  // Owners: diag solve runs with the diagonal block; an update runs with its
  // block's owner.
  plan->owner.resize(static_cast<std::size_t>(n_tasks));
  plan->diag_pos.resize(static_cast<std::size_t>(nb));
  for (index_t k = 0; k < nb; ++k) {
    const nnz_t dp = f.find_block(k, k);
    PANGULU_CHECK(dp >= 0, "trsv: missing diagonal block");
    plan->diag_pos[static_cast<std::size_t>(k)] = dp;
    plan->owner[static_cast<std::size_t>(k)] =
        mapping.owner[static_cast<std::size_t>(dp)];
  }
  for (index_t u = 0; u < n_updates; ++u) {
    plan->owner[static_cast<std::size_t>(nb + u)] = mapping.owner[
        static_cast<std::size_t>(plan->upd_pos[static_cast<std::size_t>(u)])];
  }

  // dep counts: diag solve waits for its pending updates; an update waits
  // for its source segment's diag solve.
  plan->init_dep.resize(static_cast<std::size_t>(n_tasks));
  for (index_t k = 0; k < nb; ++k)
    plan->init_dep[static_cast<std::size_t>(k)] =
        pending[static_cast<std::size_t>(k)];
  for (index_t u = 0; u < n_updates; ++u)
    plan->init_dep[static_cast<std::size_t>(nb + u)] = 1;

  // Kernel cost and ready-queue priority per task. The priority packs the
  // tuple (critical segment, kind, id) into one int64 — diag solves first
  // (they unlock the most), updates in segment order: ascending for the
  // lower solve, descending for the upper (later segments more critical).
  const auto& grid = f.grid();
  plan->cost.resize(static_cast<std::size_t>(n_tasks));
  plan->prio.resize(static_cast<std::size_t>(n_tasks));
  for (index_t t = 0; t < n_tasks; ++t) {
    index_t seg;
    if (t < nb) {
      const CscT<V>& d = f.block(plan->diag_pos[static_cast<std::size_t>(t)]);
      plan->cost[static_cast<std::size_t>(t)] = opts.device.sparse_kernel_time(
          /*gpu=*/true, /*direct=*/false, 2.0 * static_cast<double>(d.nnz()),
          static_cast<double>(d.nnz()), grid.block_dim(t));
      seg = t;
    } else {
      const auto u = static_cast<std::size_t>(t - nb);
      const CscT<V>& blk = f.block(plan->upd_pos[u]);
      plan->cost[static_cast<std::size_t>(t)] = opts.device.sparse_kernel_time(
          true, false, 2.0 * static_cast<double>(blk.nnz()),
          static_cast<double>(blk.nnz()), grid.block_dim(plan->upd_dst[u]));
      seg = plan->upd_dst[u];
    }
    const index_t crit = lower ? seg : nb - 1 - seg;
    plan->prio[static_cast<std::size_t>(t)] =
        (static_cast<std::uint64_t>(crit) << 33) |
        (static_cast<std::uint64_t>(t < nb ? 0 : 1) << 32) |
        static_cast<std::uint64_t>(t);
  }

  plan->seg_bytes.resize(static_cast<std::size_t>(nb));
  for (index_t k = 0; k < nb; ++k)
    plan->seg_bytes[static_cast<std::size_t>(k)] =
        static_cast<std::size_t>(grid.block_dim(k)) * sizeof(V);
  return Status::ok();
}

template <class V>
Status simulate_trsv(const block::BlockMatrixT<V>& f, const TrsvPlan& plan,
                     std::type_identity_t<std::span<V>> x, const TrsvOptions& opts,
                     SimResult* result) {
  if (static_cast<index_t>(x.size()) != f.grid().n) {
    *result = SimResult{};
    return Status::invalid_argument("trsv: vector size mismatch");
  }
  // The k = 1 panel is the single-vector solve: same numerics (the panel
  // kernels reduce to the scalar sweeps column for column), same cost
  // (x1.0) and message payload (x1), hence the same makespan and traffic.
  return simulate_trsv_panel(f, plan, x.data(), 1, 1, opts, result);
}

template <class V>
Status simulate_trsv_panel(const block::BlockMatrixT<V>& f,
                           const TrsvPlan& plan, V* x, index_t stride,
                           index_t k, const TrsvOptions& opts,
                           SimResult* result) {
  *result = SimResult{};
  const index_t nb = plan.nb;
  if (k <= 0) return Status::invalid_argument("trsv: panel width must be >= 1");
  if (stride < k)
    return Status::invalid_argument("trsv: panel row stride too small");
  if (plan.n_ranks != opts.n_ranks)
    return Status::invalid_argument("trsv: plan rank count mismatch");
  if (nb != f.nb())
    return Status::invalid_argument("trsv: plan built for a different grid");
  const bool lower = plan.lower;
  const index_t n_tasks = plan.n_tasks;

  std::vector<index_t> dep(plan.init_dep);
  result->ranks.assign(static_cast<std::size_t>(opts.n_ranks), RankStats{});
  std::vector<double> busy_until(static_cast<std::size_t>(opts.n_ranks), 0.0);
  std::vector<double> ready_time(static_cast<std::size_t>(n_tasks), 0.0);

  // Per-rank ready queues ordered by the precomputed packed key: packing
  // preserves the (crit, kind, id) tuple order, so pops match the legacy
  // tuple comparator exactly.
  auto priority_less = [&](index_t a, index_t b) {
    return plan.prio[static_cast<std::size_t>(a)] >
           plan.prio[static_cast<std::size_t>(b)];
  };
  std::vector<std::priority_queue<index_t, std::vector<index_t>,
                                  decltype(priority_less)>>
      ready;
  for (rank_t r = 0; r < opts.n_ranks; ++r) ready.emplace_back(priority_less);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  index_t seq = 0;
  for (index_t t = 0; t < n_tasks; ++t) {
    if (dep[static_cast<std::size_t>(t)] == 0) events.push({0.0, seq++, t, 0});
  }

  const auto& grid = f.grid();
  double makespan = 0;
  index_t completed = 0;

  auto start_one = [&](rank_t r, double now) {
    auto& q = ready[static_cast<std::size_t>(r)];
    if (q.empty()) return;
    const index_t t = q.top();
    q.pop();

    // Each task sweeps its block once for all k columns; the modelled kernel
    // time scales linearly with the panel width.
    const double cost =
        plan.cost[static_cast<std::size_t>(t)] * static_cast<double>(k);
    if (opts.execute_numerics) {
      if (t < nb) {
        V* seg = x + static_cast<std::size_t>(grid.block_start(t)) * stride;
        const CscT<V>& d = f.block(plan.diag_pos[static_cast<std::size_t>(t)]);
        if (lower)
          kernels::gessm_dense_panel(d, seg, stride, k);
        else
          kernels::tstrf_dense_panel(d, seg, stride, k);
      } else {
        const auto u = static_cast<std::size_t>(t - nb);
        kernels::spmm_sub_panel(
            f.block(plan.upd_pos[u]),
            x + static_cast<std::size_t>(grid.block_start(plan.upd_src[u])) *
                    stride,
            stride,
            x + static_cast<std::size_t>(grid.block_start(plan.upd_dst[u])) *
                    stride,
            stride, k);
      }
    }
    const double fin = now + cost;
    busy_until[static_cast<std::size_t>(r)] = fin;
    makespan = std::max(makespan, fin);
    auto& rs = result->ranks[static_cast<std::size_t>(r)];
    rs.busy += cost;
    result->total_flops += cost;  // placeholder: flops tracked via cost inputs
    ++completed;

    // Release dependents.
    auto release = [&](index_t d_task, std::size_t msg_bytes) {
      const rank_t dr = plan.owner[static_cast<std::size_t>(d_task)];
      double arrive = fin;
      if (dr != r) {
        arrive += opts.device.message_time(msg_bytes);
        rs.messages_sent++;
        rs.bytes_sent += msg_bytes;
      }
      auto& rd = ready_time[static_cast<std::size_t>(d_task)];
      rd = std::max(rd, arrive);
      if (--dep[static_cast<std::size_t>(d_task)] == 0)
        events.push({rd, seq++, d_task, 0});
    };
    // A cross-rank message now carries the segment for all k columns.
    if (t < nb) {
      for (index_t p = plan.from_ptr[static_cast<std::size_t>(t)];
           p < plan.from_ptr[static_cast<std::size_t>(t) + 1]; ++p) {
        release(nb + plan.from_adj[static_cast<std::size_t>(p)],
                plan.seg_bytes[static_cast<std::size_t>(t)] *
                    static_cast<std::size_t>(k));
      }
    } else {
      const auto u = static_cast<std::size_t>(t - nb);
      release(plan.upd_dst[u],
              plan.seg_bytes[static_cast<std::size_t>(plan.upd_dst[u])] *
                  static_cast<std::size_t>(k));
    }
    events.push({fin, seq++, -1, r});
  };

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    rank_t r;
    if (ev.task >= 0) {
      r = plan.owner[static_cast<std::size_t>(ev.task)];
      ready[static_cast<std::size_t>(r)].push(ev.task);
    } else {
      r = ev.rank;
    }
    if (busy_until[static_cast<std::size_t>(r)] > ev.time + 1e-30) continue;
    start_one(r, ev.time);
  }
  PANGULU_CHECK(completed == n_tasks, "trsv DES deadlocked");

  result->makespan = makespan;
  result->total_flops = 0;  // not meaningful for trsv; callers use makespan
  for (rank_t r = 0; r < opts.n_ranks; ++r) {
    auto& rs = result->ranks[static_cast<std::size_t>(r)];
    rs.idle = makespan - rs.busy;
    result->avg_sync += rs.idle;
    result->max_sync = std::max(result->max_sync, rs.idle);
    result->messages += rs.messages_sent;
    result->bytes += rs.bytes_sent;
  }
  result->avg_sync /= std::max<rank_t>(1, opts.n_ranks);
  return Status::ok();
}

template <class V>
Status simulate_trsv(const block::BlockMatrixT<V>& f,
                     const block::Mapping& mapping, bool lower, std::type_identity_t<std::span<V>> x,
                     const TrsvOptions& opts, SimResult* result) {
  TrsvPlan plan;
  Status s = build_trsv_plan(f, mapping, lower, opts, &plan);
  if (!s.is_ok()) {
    *result = SimResult{};
    return s;
  }
  return simulate_trsv(f, plan, x, opts, result);
}

template Status build_trsv_plan(const block::BlockMatrixT<float>&,
                                const block::Mapping&, bool,
                                const TrsvOptions&, TrsvPlan*);
template Status build_trsv_plan(const block::BlockMatrixT<double>&,
                                const block::Mapping&, bool,
                                const TrsvOptions&, TrsvPlan*);
template Status simulate_trsv(const block::BlockMatrixT<float>&,
                              const TrsvPlan&, std::span<float>,
                              const TrsvOptions&, SimResult*);
template Status simulate_trsv(const block::BlockMatrixT<double>&,
                              const TrsvPlan&, std::span<double>,
                              const TrsvOptions&, SimResult*);
template Status simulate_trsv_panel(const block::BlockMatrixT<float>&,
                                    const TrsvPlan&, float*, index_t, index_t,
                                    const TrsvOptions&, SimResult*);
template Status simulate_trsv_panel(const block::BlockMatrixT<double>&,
                                    const TrsvPlan&, double*, index_t, index_t,
                                    const TrsvOptions&, SimResult*);
template Status simulate_trsv(const block::BlockMatrixT<float>&,
                              const block::Mapping&, bool, std::span<float>,
                              const TrsvOptions&, SimResult*);
template Status simulate_trsv(const block::BlockMatrixT<double>&,
                              const block::Mapping&, bool, std::span<double>,
                              const TrsvOptions&, SimResult*);

}  // namespace pangulu::runtime
