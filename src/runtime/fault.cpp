#include "runtime/fault.hpp"

#include <string>

#include "util/rng.hpp"

namespace pangulu::runtime {

namespace {

Status bad(const std::string& what) { return Status::invalid_argument(what); }

}  // namespace

Status FaultPlan::validate(rank_t n_ranks) const {
  auto prob_ok = [](double p) { return p >= 0 && p <= 1; };
  if (!prob_ok(drop_prob) || !prob_ok(dup_prob) || !prob_ok(reorder_prob))
    return bad("fault plan: probabilities must lie in [0, 1]");
  if (max_attempts < 1) return bad("fault plan: max_attempts must be >= 1");
  if (reorder_max_delay_s < 0 || window_begin_s < 0 ||
      window_end_s < window_begin_s)
    return bad("fault plan: malformed message-fault window");
  auto rank_ok = [&](rank_t r) { return r >= 0 && r < n_ranks; };
  for (const Slowdown& s : slowdowns) {
    if (!rank_ok(s.rank)) return bad("fault plan: slowdown rank out of range");
    if (s.factor < 1 || s.from_s < 0)
      return bad("fault plan: slowdown needs factor >= 1 and from_s >= 0");
  }
  for (const Stall& s : stalls) {
    if (!rank_ok(s.rank)) return bad("fault plan: stall rank out of range");
    if (s.duration_s < 0 || s.at_s < 0)
      return bad("fault plan: stall needs non-negative time and duration");
  }
  std::vector<char> crashed(static_cast<std::size_t>(n_ranks), 0);
  rank_t n_crashed = 0;
  for (const Crash& c : crashes) {
    if (!rank_ok(c.rank)) return bad("fault plan: crash rank out of range");
    if (c.at_s < 0) return bad("fault plan: crash time must be >= 0");
    if (!crashed[static_cast<std::size_t>(c.rank)]) {
      crashed[static_cast<std::size_t>(c.rank)] = 1;
      ++n_crashed;
    }
  }
  if (n_crashed >= n_ranks)
    return Status::unavailable(
        "fault plan crashes every rank: no survivor can recover");
  for (const BitFlip& f : bitflips) {
    if (f.after_task < 0 || f.block_pos < 0 || f.value_index < 0)
      return bad("fault plan: bit flip indices must be non-negative");
    if (f.bit < 0 || f.bit >= 64)
      return bad("fault plan: bit flip bit must lie in [0, 64)");
  }
  if (kill_after_task < -1)
    return bad("fault plan: kill_after_task must be -1 (off) or >= 0");
  return Status::ok();
}

FaultPlan FaultPlan::random(std::uint64_t seed, rank_t n_ranks,
                            double horizon_s, double intensity,
                            bool with_crash) {
  FaultPlan p;
  p.seed = seed;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  p.drop_prob = intensity * rng.uniform(0.2, 1.0);
  p.dup_prob = intensity * rng.uniform(0.1, 0.6);
  p.reorder_prob = intensity * rng.uniform(0.1, 0.6);
  p.reorder_max_delay_s = horizon_s * rng.uniform(0.001, 0.01);

  const auto pick_rank = [&] {
    return static_cast<rank_t>(rng.uniform_i64(0, n_ranks - 1));
  };
  p.slowdowns.push_back(
      {pick_rank(), horizon_s * rng.uniform(0.0, 0.3), rng.uniform(1.5, 4.0)});
  p.stalls.push_back({pick_rank(), horizon_s * rng.uniform(0.1, 0.6),
                      horizon_s * rng.uniform(0.02, 0.15)});
  if (with_crash && n_ranks > 1) {
    // Never crash rank 0 so a survivor always exists even if a caller
    // layers extra crashes on top of a random plan.
    const rank_t victim = static_cast<rank_t>(rng.uniform_i64(1, n_ranks - 1));
    p.crashes.push_back({victim, horizon_s * rng.uniform(0.2, 0.7)});
  }
  return p;
}

}  // namespace pangulu::runtime
