#include "runtime/trace.hpp"

#include <ostream>

namespace pangulu::runtime {

std::string to_string(block::TaskKind kind) {
  switch (kind) {
    case block::TaskKind::kGetrf: return "GETRF";
    case block::TaskKind::kGessm: return "GESSM";
    case block::TaskKind::kTstrf: return "TSTRF";
    case block::TaskKind::kSsssm: return "SSSSM";
  }
  return "?";
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const auto& ev : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"" << to_string(ev.kind) << " k=" << ev.k << " ("
       << ev.bi << "," << ev.bj << ")\", \"cat\": \"" << to_string(ev.kind)
       << "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " << ev.rank
       << ", \"ts\": " << ev.start * 1e6
       << ", \"dur\": " << (ev.end - ev.start) * 1e6 << "}";
  }
  for (const auto& in : instants_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"" << in.name << "\", \"cat\": \"fault\", "
       << "\"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": " << in.rank
       << ", \"ts\": " << in.time * 1e6 << "}";
  }
  os << "\n]\n";
}

}  // namespace pangulu::runtime
