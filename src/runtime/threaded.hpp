// Real-concurrency backend of the synchronisation-free scheduler: every
// simulated rank is an actual thread with its own mailbox/ready-queue, and
// dependency release happens through the shared sync-free counters — the
// same discipline the DES models, demonstrably running in parallel. Used by
// tests to show the sync-free algorithm is correct under true concurrency
// (the DES covers timing; this covers interleaving).
#pragma once

#include <cstdint>
#include <vector>

#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "kernels/precision.hpp"
#include "runtime/abft.hpp"
#include "runtime/fault.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace pangulu::runtime {

struct ThreadedOptions {
  rank_t n_ranks = 2;
  kernels::tolerance_t pivot_tol = 1e-14;
  // Bounded work stealing: an idle rank-thread raids another rank's ready
  // queue instead of sleeping. Block safety is kept by per-block busy flags
  // (a task mutates exactly its target block), so stealing never lets two
  // tasks write the same block concurrently.
  bool work_stealing = true;
  // When non-null, receives the number of successful steals (diagnostics).
  std::uint64_t* steal_count = nullptr;
  // ABFT under true concurrency (kCheap and kFull behave identically): a
  // block's checksum is published (release) when its finaliser completes
  // and audited (acquire) by every task that reads it. A mismatch triggers
  // replay repair — the detecting thread quiesces every other rank-thread
  // at its next task boundary (stop-the-world, so no reader can observe the
  // rewrite), restores the corrupted block's initial pre-numeric values and
  // replays its committed tasks in canonical order with the same kernel
  // variants, reproducing the published checksum bit for bit. Sources the
  // replay reads are audited (and repaired) recursively, to a bounded
  // depth. Only when replay cannot reproduce the published checksum, or
  // the corruption storm exceeds the depth bound, does factorisation fail
  // with StatusCode::kDataCorruption — resume from a checkpoint then.
  AbftLevel abft = AbftLevel::kOff;
  // When non-null, receives the ABFT audit/detection/repair counts.
  AbftStats* abft_stats = nullptr;
  // Silent corruption to inject: each flip fires right after the task with
  // the matching index completes (whatever thread ran it), exercising the
  // detection path above. Kill/message faults are DES-only.
  std::vector<FaultPlan::BitFlip> bitflips;
  // Optional cooperative cancellation (util/cancel.hpp). Not owned. Every
  // rank-thread polls the token at its task boundaries against the wall
  // clock (steady_clock); the first expiry is recorded like any other
  // failure and quiesces the whole crew. Nothing partial is published: the
  // caller's factorized flag never flips on a cancelled run.
  const CancelToken* cancel = nullptr;
};

/// Factorise `bm` in place using `n_ranks` concurrent rank-threads.
/// Templated on the block value type: the scheduler state (counters, busy
/// flags, queues) is value-free, so the FP32 instantiation runs the same
/// interleavings and commits the same canonical factors as the DES
/// (DESIGN.md §14 relies on this for cross-executor bitwise identity).
template <class V>
Status threaded_factorize(block::BlockMatrixT<V>& bm,
                          const std::vector<block::Task>& tasks,
                          const block::Mapping& mapping,
                          const ThreadedOptions& opts);

}  // namespace pangulu::runtime
