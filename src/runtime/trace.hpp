// Execution tracing for the simulated cluster. When a TraceRecorder is
// attached to SimOptions, every task's (rank, virtual start, virtual end)
// is recorded; the trace can be dumped in the Chrome tracing JSON format
// (chrome://tracing, Perfetto) to inspect schedules visually — the tool we
// used to validate the sync-free scheduler against the level-set one.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "block/tasks.hpp"
#include "util/types.hpp"

namespace pangulu::runtime {

struct TraceEvent {
  index_t task_index;       // position in the task vector
  block::TaskKind kind;
  index_t k;                // elimination step
  index_t bi, bj;           // target block coordinates
  rank_t rank;
  double start;             // virtual seconds
  double end;
};

/// Point-in-time marker on a rank's timeline — how fault handling shows up
/// in exported traces: retransmits, stalls, crashes, and recovery re-mapping
/// are tagged as Chrome "instant" events alongside the task slices.
struct TraceInstant {
  rank_t rank;
  double time;       // virtual seconds
  std::string name;  // e.g. "retransmit", "crash", "recovery"
};

class TraceRecorder {
 public:
  void clear() {
    events_.clear();
    instants_.clear();
  }
  void record(TraceEvent ev) { events_.push_back(ev); }
  void record_instant(rank_t rank, double time, std::string name) {
    instants_.push_back({rank, time, std::move(name)});
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<TraceInstant>& instants() const { return instants_; }

  /// Write the trace as a Chrome tracing "traceEvents" JSON array. Times are
  /// emitted in microseconds (the format's unit); instants become "ph":"i"
  /// thread-scoped markers.
  void write_chrome_trace(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<TraceInstant> instants_;
};

std::string to_string(block::TaskKind kind);

}  // namespace pangulu::runtime
