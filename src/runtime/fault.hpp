// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan describes everything that goes wrong during one DES run:
// message-level faults (drops, duplicates, reorder delays) drawn from a
// seeded RNG inside a virtual-time window, and rank-level faults (permanent
// slowdowns/stragglers, transient stalls, permanent crashes) pinned to
// chosen virtual times. The same plan always produces the same schedule,
// so fault experiments are as reproducible as fault-free ones.
//
// The recovery protocol that reacts to these faults lives in sim.cpp:
// per-message ack/timeout/retransmit with exponential backoff, duplicate
// suppression on the receiver, and crash detection followed by re-mapping
// the dead rank's blocks onto the survivors (Mapping::remap_failed_rank).
// Numerics are unaffected by construction — the DES executes them in
// canonical task order — so any recoverable plan yields bitwise-identical
// LU factors to the fault-free run; only makespan and traffic change.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/status.hpp"
#include "util/types.hpp"

namespace pangulu::runtime {

struct FaultPlan {
  /// Seed of the per-message RNG (drops/duplicates/reorder draws).
  std::uint64_t seed = 0;

  // --- Message-level faults -------------------------------------------
  // Applied independently to every inter-rank block transfer posted in
  // [window_begin_s, window_end_s) of virtual time.
  double drop_prob = 0;     // attempt silently lost (sender times out)
  double dup_prob = 0;      // delivered twice (receiver suppresses one)
  double reorder_prob = 0;  // delivery delayed past later messages
  double reorder_max_delay_s = 1e-4;
  double window_begin_s = 0;
  double window_end_s = std::numeric_limits<double>::infinity();
  /// Give up (StatusCode::kUnavailable) after this many sends of one
  /// message; with exponential backoff this bounds the retry storm.
  int max_attempts = 8;

  // --- Rank-level faults ----------------------------------------------
  struct Slowdown {
    rank_t rank = 0;
    double from_s = 0;   // active from this virtual time onwards
    double factor = 1;   // >1: every kernel on the rank takes factor x longer
  };
  struct Stall {
    rank_t rank = 0;
    double at_s = 0;
    double duration_s = 0;  // rank frozen in [at_s, at_s + duration_s)
  };
  struct Crash {
    rank_t rank = 0;
    double at_s = 0;  // rank dead from this virtual time; work in flight lost
  };
  std::vector<Slowdown> slowdowns;
  std::vector<Stall> stalls;
  std::vector<Crash> crashes;

  // --- Data/process faults (canonical-execution clock) -----------------
  // These are pinned to canonical task indices, not virtual time: they model
  // what happens to the *numeric state* (a silent bit flip in stored values,
  // a whole-process death mid-factorisation), which lives on the canonical
  // execution path shared by every schedule.
  struct BitFlip {
    index_t after_task = 0;  // injected right after this task commits
    nnz_t block_pos = 0;     // stored-block position in the BlockMatrix
    nnz_t value_index = 0;   // which value within the block
    int bit = 0;             // which bit of the double's 64-bit pattern
  };
  std::vector<BitFlip> bitflips;
  /// >= 0: the process "dies" (StatusCode::kUnavailable) once this many
  /// canonical tasks have committed — checkpoints written up to that point
  /// stay on disk for Solver::resume_from. -1: never.
  index_t kill_after_task = -1;

  bool empty() const {
    return drop_prob == 0 && dup_prob == 0 && reorder_prob == 0 &&
           slowdowns.empty() && stalls.empty() && crashes.empty() &&
           bitflips.empty() && kill_after_task < 0;
  }
  bool has_message_faults() const {
    return drop_prob > 0 || dup_prob > 0 || reorder_prob > 0;
  }

  /// Structural sanity against a cluster size: rank ids in range,
  /// probabilities in [0, 1], non-negative times, at least one rank left
  /// alive (a plan that crashes everyone is rejected up front rather than
  /// discovered mid-simulation).
  Status validate(rank_t n_ranks) const;

  /// Deterministic pseudo-random *recoverable* plan: a mix of message
  /// faults, one straggler, one stall, and (when `n_ranks` > 1 and
  /// `with_crash`) one crash, all derived from `seed`. `intensity` in
  /// (0, 1] scales the fault probabilities; crash/stall times are drawn
  /// inside `horizon_s` so they land within a typical run.
  static FaultPlan random(std::uint64_t seed, rank_t n_ranks,
                          double horizon_s, double intensity = 0.2,
                          bool with_crash = true);
};

}  // namespace pangulu::runtime
