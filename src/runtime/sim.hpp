// Discrete-event simulation of the distributed numeric factorisation.
//
// Ranks are simulated processes with virtual clocks; kernels cost time from
// the DeviceModel; inter-rank block transfers cost latency + bytes/bandwidth.
// The numerics really execute on the host (in virtual-time order, which
// respects every dependency), so the factorisation a simulation produces is
// the real one — the same blocks a physical cluster would compute — while
// makespan/sync/communication come out deterministic for any rank count.
//
// Two schedulers:
//  * kSyncFree  — the paper's §4.4 strategy: the sync-free array releases a
//    kernel the moment its dependencies break; ranks never barrier.
//  * kLevelSet  — bulk-synchronous elimination: every time slice runs
//    GETRF -> panels -> Schur phases with a barrier after each, the
//    scheduling discipline of supernodal solvers (and of PanguLU's ablation
//    baseline in Figure 14).
#pragma once

#include <vector>

#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "kernels/selector.hpp"
#include "runtime/device_model.hpp"
#include "runtime/trace.hpp"
#include "util/status.hpp"

namespace pangulu::runtime {

enum class KernelPolicy {
  kFixedCpu,   // always the first CPU variant (ablation "Baseline")
  kFixedGpu,   // always the first GPU variant
  kAdaptive,   // Figure 8 decision trees ("Kernel selection")
};

enum class ScheduleMode { kSyncFree, kLevelSet };

struct SimOptions {
  DeviceModel device = DeviceModel::a100_like();
  rank_t n_ranks = 1;
  KernelPolicy policy = KernelPolicy::kAdaptive;
  ScheduleMode schedule = ScheduleMode::kSyncFree;
  bool execute_numerics = true;
  kernels::SelectorThresholds thresholds;
  value_t pivot_tol = 1e-14;
  /// Optional: record every task's (rank, start, end) for inspection /
  /// chrome-trace export. Not owned.
  TraceRecorder* trace = nullptr;
};

struct RankStats {
  double busy = 0;
  double idle = 0;       // makespan - busy: waiting on deps/barriers
  std::int64_t messages_sent = 0;
  std::size_t bytes_sent = 0;
};

struct SimResult {
  double makespan = 0;
  double total_flops = 0;
  double panel_busy = 0;  // GETRF + GESSM + TSTRF virtual compute time
  double schur_busy = 0;  // SSSSM virtual compute time
  /// Per-kernel-family compute time (indexed by block::TaskKind): the
  /// finer-grained version of the panel/Schur split Table 4 reports.
  double kind_busy[4] = {0, 0, 0, 0};
  /// Tasks executed per kernel family.
  std::int64_t kind_count[4] = {0, 0, 0, 0};
  double avg_sync = 0;    // mean rank idle time
  double max_sync = 0;
  std::int64_t messages = 0;
  std::size_t bytes = 0;
  index_t perturbed_pivots = 0;
  std::vector<RankStats> ranks;

  double gflops() const {
    return makespan > 0 ? total_flops / makespan / 1e9 : 0;
  }
};

/// Run the factorisation. When `opts.execute_numerics`, `bm`'s blocks are
/// overwritten with the LU factors (diagonal blocks hold L\U, off-diagonal
/// blocks the panel-solve results).
Status simulate_factorization(block::BlockMatrix& bm,
                              const std::vector<block::Task>& tasks,
                              const block::Mapping& mapping,
                              const SimOptions& opts, SimResult* result);

}  // namespace pangulu::runtime
