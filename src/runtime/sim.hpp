// Discrete-event simulation of the distributed numeric factorisation.
//
// Ranks are simulated processes with virtual clocks; kernels cost time from
// the DeviceModel; inter-rank block transfers cost latency + bytes/bandwidth.
// The numerics really execute on the host, in *canonical task order* (a
// fixed topological order of the dependency DAG), so the factorisation a
// simulation produces is the real one — the same blocks a physical cluster
// would compute — and is bit-identical for every rank count, schedule, and
// fault plan; only makespan/sync/communication vary.
//
// Fault tolerance: SimOptions::faults injects message drops/duplicates/
// reordering, stragglers, stalls, and rank crashes (runtime/fault.hpp).
// Block transfers ride an ack/timeout/retransmit protocol with exponential
// backoff; duplicates are suppressed at the receiver so the sync-free
// counters never double-fire; crashed ranks are detected by heartbeat
// timeout and their blocks re-mapped onto survivors, whose makespan then
// carries the recovery cost.
//
// Two schedulers:
//  * kSyncFree  — the paper's §4.4 strategy: the sync-free array releases a
//    kernel the moment its dependencies break; ranks never barrier.
//  * kLevelSet  — bulk-synchronous elimination: every time slice runs
//    GETRF -> panels -> Schur phases with a barrier after each, the
//    scheduling discipline of supernodal solvers (and of PanguLU's ablation
//    baseline in Figure 14).
#pragma once

#include <functional>
#include <vector>

#include "analysis/model_check.hpp"
#include "analysis/verify.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "kernels/selector.hpp"
#include "runtime/abft.hpp"
#include "runtime/device_model.hpp"
#include "runtime/elastic.hpp"
#include "runtime/fault.hpp"
#include "runtime/trace.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace pangulu::runtime {

enum class KernelPolicy {
  kFixedCpu,   // always the first CPU variant (ablation "Baseline")
  kFixedGpu,   // always the first GPU variant
  kAdaptive,   // Figure 8 decision trees ("Kernel selection")
};

enum class ScheduleMode { kSyncFree, kLevelSet };

struct SimOptions {
  DeviceModel device = DeviceModel::a100_like();
  rank_t n_ranks = 1;
  KernelPolicy policy = KernelPolicy::kAdaptive;
  ScheduleMode schedule = ScheduleMode::kSyncFree;
  bool execute_numerics = true;
  kernels::SelectorThresholds thresholds;
  kernels::tolerance_t pivot_tol = 1e-14;
  /// Optional: record every task's (rank, start, end) for inspection /
  /// chrome-trace export. Not owned.
  TraceRecorder* trace = nullptr;
  /// Faults to inject (see runtime/fault.hpp). Empty plan = perfect cluster.
  /// Recoverable plans change only makespan/traffic, never the factors;
  /// unrecoverable ones fail with StatusCode::kUnavailable.
  FaultPlan faults;
  /// Planned capacity changes (see runtime/elastic.hpp). Drains/adds fire at
  /// canonical commit safe points: the rank is quiesced, its blocks migrate
  /// via Mapping::rebalance (bounded movement), the verifier re-proves the
  /// new mapping, and the run continues to bitwise-identical factors. A
  /// drain that would go below `elastic.min_ranks` fails with
  /// StatusCode::kResourceExhausted (graceful load shedding, no deadlock).
  ElasticPlan elastic;
  /// Re-verify scheduling invariants after every crash-recovery remap:
  /// kCheap (default) proves mapping totality over the survivor set, kFull
  /// additionally proves message conservation under the new ownership. A
  /// violated invariant aborts the run with StatusCode::kInvariantViolation
  /// instead of letting the scheduler hang on an orphaned block.
  analysis::VerifyLevel verify_level = analysis::VerifyLevel::kCheap;
  /// Silent-corruption audits on the canonical execution (runtime/abft.hpp):
  /// kCheap audits a task's source blocks before each kernel, kFull adds the
  /// target and a final sweep. Detected corruption is recomputed from live
  /// inputs when possible; otherwise the run fails with
  /// StatusCode::kDataCorruption.
  AbftLevel abft = AbftLevel::kOff;
  /// Canonical tasks [0, resume_from_task) are assumed already committed
  /// into `bm` (restored from a snapshot); numerics start from this index.
  /// The DES replay still models the whole schedule.
  index_t resume_from_task = 0;
  /// > 0 with a sink set: after every `checkpoint_interval_tasks` canonical
  /// commits (a task-graph safe point), call `checkpoint_sink(tasks_done)`.
  /// A failing sink aborts the run with its status.
  index_t checkpoint_interval_tasks = 0;
  std::function<Status(index_t)> checkpoint_sink;
  /// > 0: worthiness floor for the default cadence — a safe point is skipped
  /// (no sink call, nothing counted) unless at least this much wall-clock
  /// work has elapsed since the previous snapshot (or the start of the
  /// numeric phase). Losing work that re-runs faster than a snapshot writes
  /// is cheaper than checkpointing it. Explicit user intervals leave this 0
  /// and fire exactly on schedule.
  double checkpoint_min_elapsed_seconds = 0;
  /// > 0 with a sink set and `checkpoint_interval_tasks` unset: derive the
  /// checkpoint cadence from this mean-time-between-failures via the
  /// Young/Daly optimum tau = sqrt(2 * C * MTBF), where C is the snapshot
  /// cost at DeviceModel::checkpoint_write_bps, converted to a task count
  /// through the mean virtual task cost. 0: keep the caller's cadence.
  double mtbf_seconds = 0;
  /// Non-empty: replay this explicit protocol-event schedule (typically a
  /// model-checker counterexample, analysis/model_check.hpp) instead of
  /// running a virtual-time scheduler. The replay is deterministic: each
  /// event fires in order against the protocol interpreter; an inadmissible
  /// event fails with kInvalidArgument, a violated protocol property with
  /// kInvariantViolation naming the property (before any numerics run), and
  /// an incomplete schedule (tasks left uncommitted) with kInvalidArgument.
  /// On success the numerics execute canonically as usual and SimResult's
  /// protocol counters come from the replay; makespan is the serial sum of
  /// task costs (the replay has no virtual clock).
  std::vector<analysis::ProtoEvent> forced_schedule;
  /// Test-only seeded protocol bugs, honoured by the forced-schedule replay
  /// so checker counterexamples found under a mutation reproduce the same
  /// violation here. Never enable outside tests.
  analysis::ProtocolMutations protocol_mutations;
  /// Optional cooperative cancellation (util/cancel.hpp). Not owned. Polled
  /// at every canonical commit safe point (manual cancel / wall deadline)
  /// and at every scheduler event pop against the DES virtual clock
  /// (virtual deadline). Expiry fails typed with kCancelled /
  /// kDeadlineExceeded; the factorisation publishes nothing partial.
  const CancelToken* cancel = nullptr;
};

struct RankStats {
  double busy = 0;
  double idle = 0;       // makespan - busy: waiting on deps/barriers
  std::int64_t messages_sent = 0;
  std::size_t bytes_sent = 0;
  // Fault-protocol counters (all zero on a fault-free run).
  std::int64_t retransmits = 0;            // extra sends after an ack timeout
  std::int64_t timeouts = 0;               // ack timers that fired
  std::int64_t duplicates_suppressed = 0;  // received twice, applied once
  double stall_s = 0;                      // time lost to transient stalls
  bool crashed = false;
};

struct SimResult {
  double makespan = 0;
  double total_flops = 0;
  double panel_busy = 0;  // GETRF + GESSM + TSTRF virtual compute time
  double schur_busy = 0;  // SSSSM virtual compute time
  /// Per-kernel-family compute time (indexed by block::TaskKind): the
  /// finer-grained version of the panel/Schur split Table 4 reports.
  double kind_busy[4] = {0, 0, 0, 0};
  /// Tasks executed per kernel family.
  std::int64_t kind_count[4] = {0, 0, 0, 0};
  double avg_sync = 0;    // mean rank idle time
  double max_sync = 0;
  std::int64_t messages = 0;
  std::size_t bytes = 0;
  index_t perturbed_pivots = 0;
  std::vector<RankStats> ranks;

  // Fault-recovery totals (aggregated over ranks where per-rank counters
  // exist; all zero when SimOptions::faults is empty).
  std::int64_t retransmits = 0;
  std::int64_t timeouts = 0;
  std::int64_t duplicates_suppressed = 0;
  std::int64_t rank_crashes = 0;     // permanent failures detected
  std::int64_t recovered_tasks = 0;  // tasks re-dispatched off dead ranks
  nnz_t remapped_blocks = 0;         // blocks adopted by survivors
  /// Virtual time attributable to fault handling: retransmit backoff waits,
  /// crash-detection windows, re-mapping work, and stall freezes.
  double recovery_time = 0;

  // ABFT / checkpoint counters (zero when both features are off).
  std::int64_t abft_audits = 0;       // blocks checksummed in audits
  std::int64_t abft_detected = 0;     // checksum mismatches found
  std::int64_t abft_recomputed = 0;   // corrupted blocks rebuilt by replay
  std::int64_t checkpoints_written = 0;

  // Elastic-runtime totals (zero when SimOptions::elastic is empty).
  std::int64_t ranks_drained = 0;  // planned drains executed
  std::int64_t ranks_added = 0;    // planned adds executed
  nnz_t migrated_blocks = 0;       // blocks moved by Mapping::rebalance
  /// Virtual time spent quiescing drained ranks and migrating their blocks.
  double migration_time = 0;

  double gflops() const {
    return makespan > 0 ? total_flops / makespan / 1e9 : 0;
  }
};

/// Flatten an ElasticPlan into the model checker's layer-free event list,
/// in DES firing order (at_commit ascending, adds before drains on ties).
/// The entry indices are the plan ids ProtoEvent::edge refers to for
/// kDrain/kAdd events, so schedules exchanged between `model_check` and
/// `SimOptions::forced_schedule` must both use this flattening.
std::vector<analysis::ModelOptions::ElasticEvent> flatten_elastic(
    const ElasticPlan& plan);

/// Young/Daly optimal checkpoint interval in canonical tasks:
/// round(sqrt(2 * C * MTBF) / seconds_per_task), clamped to [1, n_tasks].
/// Returns 0 on degenerate inputs (no MTBF, free checkpoints, zero-cost
/// tasks, or an empty task list) — the caller falls back to its default
/// cadence.
index_t young_daly_interval_tasks(double mtbf_seconds,
                                  double checkpoint_cost_seconds,
                                  double seconds_per_task, index_t n_tasks);

/// Run the factorisation. When `opts.execute_numerics`, `bm`'s blocks are
/// overwritten with the LU factors (diagonal blocks hold L\U, off-diagonal
/// blocks the panel-solve results). Templated on the block value type
/// (DESIGN.md §14): the DES schedulers read only block structure, and the
/// numerics execute once in canonical order, so the FP32 instantiation
/// inherits the same schedule-independence guarantee as FP64 — identical
/// factors bit for bit across rank counts, scheduling modes and fault plans.
template <class V>
Status simulate_factorization(block::BlockMatrixT<V>& bm,
                              const std::vector<block::Task>& tasks,
                              const block::Mapping& mapping,
                              const SimOptions& opts, SimResult* result);

}  // namespace pangulu::runtime
