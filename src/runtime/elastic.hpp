// Planned capacity changes for the simulated cluster.
//
// An ElasticPlan describes rank shrink/grow events pinned to canonical
// commit counts — the DES analogue of an operator draining a node for
// maintenance or attaching a fresh one mid-run. Unlike FaultPlan crashes
// (unplanned, detected by timeout, state lost), elastic events are
// cooperative: the runtime quiesces the affected rank at the next task-graph
// safe point, migrates the minimal set of blocks with
// Mapping::rebalance (bounded movement, not a full remap), replays each
// migrated block's state to its new owner, and re-proves the mapping with
// analysis::verify_rebalance before continuing. Numerics run on the
// canonical execution path, so any valid plan yields bitwise-identical LU
// factors to the static-grid run; only makespan, traffic, and the final
// owner map change.
//
// Graceful degradation is part of the contract: a drain that would leave
// fewer than min_ranks live ranks is rejected with
// StatusCode::kResourceExhausted (load shedding) instead of deadlocking.
#pragma once

#include <vector>

#include "util/status.hpp"
#include "util/types.hpp"

namespace pangulu::runtime {

struct ElasticPlan {
  /// One capacity-change event, fired at the first safe point at or after
  /// `at_commit` canonical task commits (0 = before any task runs).
  struct Event {
    rank_t rank = 0;
    index_t at_commit = 0;
  };

  /// Ranks leaving the cluster (drained: quiesced, blocks migrated away).
  std::vector<Event> drains;
  /// Ranks joining the cluster. A rank whose *first* event is an add starts
  /// the run inactive (a provisioned-but-idle slot); a drained rank may be
  /// re-added later. Adds steal blocks from the most-loaded live ranks.
  std::vector<Event> adds;
  /// Floor on the live rank count. A drain (planned, not a crash) that
  /// would go below this is rejected with kResourceExhausted.
  rank_t min_ranks = 1;

  bool empty() const { return drains.empty() && adds.empty(); }

  /// Structural sanity against a cluster size: rank ids in range, commit
  /// indices non-negative, 1 <= min_ranks <= n_ranks, and a chronological
  /// walk of the active set never drains an inactive rank, adds an active
  /// one, or (kResourceExhausted) dips below min_ranks.
  Status validate(rank_t n_ranks) const;

  /// Which ranks are live before the first task commits: everyone except
  /// ranks whose first scheduled event is an add.
  std::vector<char> initially_active(rank_t n_ranks) const;
};

}  // namespace pangulu::runtime
