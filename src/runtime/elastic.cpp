#include "runtime/elastic.hpp"

#include <algorithm>
#include <string>

namespace pangulu::runtime {
namespace {

/// Flattened event stream in firing order: by at_commit, adds before drains
/// at the same commit (so a same-instant swap never dips the live count).
struct Step {
  index_t at_commit;
  rank_t rank;
  bool is_add;
};

std::vector<Step> chronological(const ElasticPlan& plan) {
  std::vector<Step> steps;
  steps.reserve(plan.adds.size() + plan.drains.size());
  for (const auto& e : plan.adds) steps.push_back({e.at_commit, e.rank, true});
  for (const auto& e : plan.drains)
    steps.push_back({e.at_commit, e.rank, false});
  std::stable_sort(steps.begin(), steps.end(),
                   [](const Step& a, const Step& b) {
                     if (a.at_commit != b.at_commit)
                       return a.at_commit < b.at_commit;
                     return a.is_add && !b.is_add;
                   });
  return steps;
}

}  // namespace

Status ElasticPlan::validate(rank_t n_ranks) const {
  if (n_ranks <= 0)
    return Status::invalid_argument("elastic plan: n_ranks must be positive");
  if (min_ranks < 1 || min_ranks > n_ranks)
    return Status::invalid_argument(
        "elastic plan: min_ranks " + std::to_string(min_ranks) +
        " outside [1, " + std::to_string(n_ranks) + "]");
  auto rank_ok = [n_ranks](rank_t r) { return r >= 0 && r < n_ranks; };
  for (const auto& e : drains) {
    if (!rank_ok(e.rank))
      return Status::invalid_argument("elastic plan: drain rank " +
                                      std::to_string(e.rank) + " out of range");
    if (e.at_commit < 0)
      return Status::invalid_argument(
          "elastic plan: drain at_commit must be >= 0");
  }
  for (const auto& e : adds) {
    if (!rank_ok(e.rank))
      return Status::invalid_argument("elastic plan: add rank " +
                                      std::to_string(e.rank) + " out of range");
    if (e.at_commit < 0)
      return Status::invalid_argument(
          "elastic plan: add at_commit must be >= 0");
  }

  // Replay the plan against the provisional active set and check every
  // transition. Starting state: initially_active (first-event-is-add ranks
  // begin idle).
  std::vector<char> active = initially_active(n_ranks);
  rank_t live = 0;
  for (char a : active) live += a ? 1 : 0;
  for (const Step& s : chronological(*this)) {
    const std::size_t r = static_cast<std::size_t>(s.rank);
    if (s.is_add) {
      if (active[r])
        return Status::invalid_argument(
            "elastic plan: add of already-active rank " +
            std::to_string(s.rank) + " at commit " +
            std::to_string(s.at_commit));
      active[r] = 1;
      ++live;
    } else {
      if (!active[r])
        return Status::invalid_argument(
            "elastic plan: drain of inactive rank " + std::to_string(s.rank) +
            " at commit " + std::to_string(s.at_commit));
      if (live - 1 < min_ranks)
        return Status::resource_exhausted(
            "elastic plan: drain of rank " + std::to_string(s.rank) +
            " at commit " + std::to_string(s.at_commit) + " would leave " +
            std::to_string(live - 1) + " live ranks, below min_ranks " +
            std::to_string(min_ranks) + "; load shed");
      active[r] = 0;
      --live;
    }
  }
  return Status::ok();
}

std::vector<char> ElasticPlan::initially_active(rank_t n_ranks) const {
  std::vector<char> active(static_cast<std::size_t>(n_ranks), 1);
  // A rank starts inactive iff its earliest event is an add (adds beat
  // drains on ties, matching the firing order).
  for (rank_t r = 0; r < n_ranks; ++r) {
    index_t first_add = -1, first_drain = -1;
    for (const auto& e : adds)
      if (e.rank == r && (first_add < 0 || e.at_commit < first_add))
        first_add = e.at_commit;
    for (const auto& e : drains)
      if (e.rank == r && (first_drain < 0 || e.at_commit < first_drain))
        first_drain = e.at_commit;
    if (first_add >= 0 && (first_drain < 0 || first_add <= first_drain))
      active[static_cast<std::size_t>(r)] = 0;
  }
  return active;
}

}  // namespace pangulu::runtime
