#include "runtime/device_model.hpp"

#include <cmath>

namespace pangulu::runtime {

DeviceModel DeviceModel::a100_like() {
  DeviceModel d;
  d.name = "A100-like";
  // CPU kernels: no launch cost, one fast host core. Rates chosen so the
  // CPU/GPU crossover sits near the Figure 8 thresholds (nnz ~ 1e3.8-1e4.3,
  // FLOPs ~ 1e4.8), matching the calibration the paper's trees encode.
  d.cpu_merge = {2e-7, 2.5e10, 1.1e-9, 0};
  d.cpu_binsearch = {2e-7, 2.2e10, 1.6e-9, 0};
  d.cpu_direct = {2e-7, 3.0e10, 1.0e-9, 5e-9};
  // GPU kernels: launch overhead, high throughput once saturated. Bin-search
  // pays more per nonzero (divergent lookups); merge streams both lists
  // (cheap per entry, lower peak rate); direct pays per-row scratch.
  d.gpu_merge = {1.0e-5, 3.5e10, 3.5e-10, 0};
  d.gpu_binsearch = {1.0e-5, 3.0e10, 4e-10, 0};
  d.gpu_direct = {1.2e-5, 6.0e10, 1.5e-10, 2e-8};
  // Dense pipeline of the supernodal baseline. Table 4 of the paper implies
  // very low effective rates (0.8-15 GFLOPS on an A100) because its Schur
  // updates are small GEMMs wrapped in irregular gather/scatter; the scatter
  // bandwidth below (random-access pattern) reproduces that regime.
  d.dense_gemm_rate = 1.5e11;
  d.gather_scatter_bw = 4.0e9;
  d.dense_launch_s = 1.0e-5;
  d.net_latency_s = 8e-6;
  d.net_bandwidth = 1.2e10;
  return d;
}

DeviceModel DeviceModel::mi50_like() {
  DeviceModel d;
  d.name = "MI50-like";
  d.cpu_merge = {2e-7, 1.5e10, 1.3e-9, 0};
  d.cpu_binsearch = {2e-7, 1.3e10, 1.9e-9, 0};
  d.cpu_direct = {2e-7, 1.8e10, 1.2e-9, 6e-9};
  d.gpu_merge = {1.6e-5, 1.9e10, 6e-10, 0};
  d.gpu_binsearch = {1.6e-5, 1.6e10, 7e-10, 0};
  d.gpu_direct = {2.0e-5, 3.2e10, 2.5e-10, 3e-8};
  d.dense_gemm_rate = 0.8e11;
  d.gather_scatter_bw = 2.2e9;
  d.dense_launch_s = 1.6e-5;
  d.net_latency_s = 8e-6;
  d.net_bandwidth = 1.2e10;
  return d;
}

double DeviceModel::sparse_kernel_time(bool gpu, kernels::Addressing addr,
                                       double flops, double nnz,
                                       double dim) const {
  const KernelCost* c = nullptr;
  switch (addr) {
    case kernels::Addressing::kDirect:
      c = gpu ? &gpu_direct : &cpu_direct;
      break;
    case kernels::Addressing::kBinSearch:
      c = gpu ? &gpu_binsearch : &cpu_binsearch;
      break;
    case kernels::Addressing::kMerge:
      c = gpu ? &gpu_merge : &cpu_merge;
      break;
  }
  return c->time(flops, nnz, dim);
}

double DeviceModel::sparse_kernel_time(bool gpu, bool direct_addressing,
                                       double flops, double nnz,
                                       double dim) const {
  const kernels::Addressing addr =
      direct_addressing
          ? kernels::Addressing::kDirect
          : (gpu ? kernels::Addressing::kBinSearch
                 : kernels::Addressing::kMerge);
  return sparse_kernel_time(gpu, addr, flops, nnz, dim);
}

double DeviceModel::dense_update_time(double flops, double moved_bytes) const {
  if (flops < dense_cpu_threshold) {
    return 1e-6 + flops / dense_cpu_rate + moved_bytes / host_copy_bw;
  }
  return dense_launch_s + flops / dense_gemm_rate +
         moved_bytes / gather_scatter_bw;
}

double DeviceModel::barrier_time(rank_t ranks) const {
  if (ranks <= 1) return 0.0;
  return barrier_base_s + barrier_per_rank_s * std::log2(static_cast<double>(ranks)) * 8.0;
}

std::size_t block_message_bytes(nnz_t nnz, index_t cols,
                                std::size_t value_bytes) {
  return static_cast<std::size_t>(nnz) * (value_bytes + sizeof(index_t)) +
         static_cast<std::size_t>(cols + 1) * sizeof(nnz_t);
}

}  // namespace pangulu::runtime
