// Calibrated device/network time model for the simulated cluster.
//
// The paper's evaluation runs on 32-node clusters of NVIDIA A100s and AMD
// MI50s; this machine has neither, so the DES runtime executes the real
// numerics on the host while *charging* virtual time from this model
// (DESIGN.md, substitution table). Costs are affine in work:
//     t = overhead + flops/rate + traversal_cost * nnz (+ bytes/bandwidth)
// with per-variant parameters, so that
//   * CPU kernels win at small sizes (no launch overhead),
//   * bin-search GPU kernels win mid-range,
//   * dense-mapping GPU kernels win at large sizes,
// reproducing the crossovers the Figure 8 decision trees encode.
#pragma once

#include <cstddef>
#include <string>

#include "kernels/kernel_common.hpp"
#include "util/types.hpp"

namespace pangulu::runtime {

struct KernelCost {
  double overhead_s = 0;      // fixed launch/dispatch cost
  double flop_rate = 1e9;     // sustained FLOP/s
  double per_nnz_s = 0;       // pattern-traversal cost per stored nonzero
  double per_dim_s = 0;       // dense-mapping scratch cost per block row

  double time(double flops, double nnz, double dim) const {
    return overhead_s + flops / flop_rate + per_nnz_s * nnz + per_dim_s * dim;
  }
};

struct DeviceModel {
  std::string name;

  KernelCost cpu_merge;      // C_V1-style serial merge kernels
  KernelCost cpu_binsearch;  // bin-search CPU kernels (C_V2-style)
  KernelCost cpu_direct;     // dense-mapped / stamped CPU kernels
  KernelCost gpu_merge;      // merge GPU kernels (G_V4 / SSSSM G_V3)
  KernelCost gpu_binsearch;  // G_V1/G_V2-style bin-search GPU kernels
  KernelCost gpu_direct;     // dense-mapping GPU kernels

  // Dense BLAS path (the supernodal baseline's GEMM) plus the gather/scatter
  // memory traffic it pays around every update. Small updates fall back to
  // the host CPU (as CPU-GPU supernodal solvers do) and skip the launch cost.
  double dense_gemm_rate = 1e12;       // FLOP/s on dense panels (GPU)
  double dense_cpu_rate = 2e10;        // FLOP/s for the small-update fallback
  double dense_cpu_threshold = 2e5;    // below this many flops: stay on CPU
  double gather_scatter_bw = 1e11;     // bytes/s for pack/unpack
  double host_copy_bw = 1e10;          // bytes/s for the CPU fallback's copies
  double dense_launch_s = 1e-5;

  // Network between ranks.
  double net_latency_s = 1.5e-6;
  double net_bandwidth = 1.2e10;  // bytes/s (~100 Gb/s links in the paper)

  // Per-level barrier cost of bulk-synchronous scheduling (log-tree allreduce).
  double barrier_base_s = 4e-6;
  double barrier_per_rank_s = 1.0e-6;

  // Fault-recovery protocol timing (see runtime/fault.hpp). The retransmit
  // timer starts at ack_timeout(bytes) — one round trip plus slack — and
  // doubles on every retry (exponential backoff). A silent rank is declared
  // dead after crash_detect_s without heartbeats; adopting one orphaned
  // block during re-mapping costs remap_per_block_s on the survivors.
  double ack_timeout_slack_s = 2e-5;
  double crash_detect_s = 1e-3;
  double remap_per_block_s = 2e-7;

  /// Sustained checkpoint-write throughput (bytes/s) to the snapshot sink —
  /// the C term of the Young/Daly cadence (sim.cpp derives the optimal
  /// checkpoint interval from MTBF and the snapshot cost at this rate).
  double checkpoint_write_bps = 2e9;

  static DeviceModel a100_like();
  static DeviceModel mi50_like();

  /// Time of a sparse block kernel of the given addressing class.
  double sparse_kernel_time(bool gpu, kernels::Addressing addr, double flops,
                            double nnz, double dim) const;

  /// Legacy two-class overload (direct vs. not); the non-direct class maps
  /// to bin-search on GPU and merge on CPU, matching the pre-merge-family
  /// variant split. Kept for callers that predate Addressing.
  double sparse_kernel_time(bool gpu, bool direct_addressing, double flops,
                            double nnz, double dim) const;

  /// Time of one dense GEMM update of the supernodal baseline, including
  /// gather/scatter of `moved_bytes`.
  double dense_update_time(double flops, double moved_bytes) const;

  double message_time(std::size_t bytes) const {
    return net_latency_s + static_cast<double>(bytes) / net_bandwidth;
  }

  /// Base retransmit timeout for a message of the given size: data + ack
  /// round trip plus scheduling slack. Doubles per retry in the protocol.
  double ack_timeout(std::size_t bytes) const {
    return message_time(bytes) + net_latency_s + ack_timeout_slack_s;
  }

  double barrier_time(rank_t ranks) const;
};

/// Bytes on the wire for a sparse block with `nnz` stored entries (values +
/// row indices + a column-pointer array of `cols+1` entries). `value_bytes`
/// is the stored value width — FP32 pipelines ship half the value payload,
/// which is exactly the bandwidth saving DESIGN.md §14 banks on.
std::size_t block_message_bytes(nnz_t nnz, index_t cols,
                                std::size_t value_bytes = sizeof(value_t));

}  // namespace pangulu::runtime
