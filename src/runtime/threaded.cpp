#include "runtime/threaded.hpp"

#include <atomic>
#include <condition_variable>
#include <queue>
#include <thread>
#include <vector>

#include "kernels/getrf.hpp"
#include "kernels/gessm.hpp"
#include "kernels/selector.hpp"
#include "kernels/ssssm.hpp"
#include "kernels/tstrf.hpp"
#include "parallel/annotations.hpp"

namespace pangulu::runtime {

namespace {

using block::BlockMatrix;
using block::Task;
using block::TaskKind;

struct RankQueue {
  Mutex mu;
  std::condition_variable_any cv;
  // Priority: smallest elimination step first.
  std::priority_queue<std::pair<index_t, index_t>,
                      std::vector<std::pair<index_t, index_t>>,
                      std::greater<>>
      q PANGULU_GUARDED_BY(mu);  // (k, task index)
};

}  // namespace

Status threaded_factorize(BlockMatrix& bm, const std::vector<Task>& tasks,
                          const block::Mapping& mapping,
                          const ThreadedOptions& opts) {
  const auto nt = static_cast<index_t>(tasks.size());
  const rank_t nr = opts.n_ranks;
  if (mapping.n_ranks != nr)
    return Status::invalid_argument("mapping rank count mismatch");

  // Dependency graph (same construction as the DES, but with atomics).
  std::vector<index_t> finalizer(static_cast<std::size_t>(bm.n_blocks()), -1);
  for (index_t t = 0; t < nt; ++t) {
    if (tasks[static_cast<std::size_t>(t)].kind != TaskKind::kSsssm)
      finalizer[static_cast<std::size_t>(
          tasks[static_cast<std::size_t>(t)].target)] = t;
  }
  std::vector<std::vector<index_t>> out(static_cast<std::size_t>(nt));
  std::vector<std::atomic<index_t>> dep(static_cast<std::size_t>(nt));
  for (auto& d : dep) d.store(0, std::memory_order_relaxed);
  for (index_t t = 0; t < nt; ++t) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    switch (task.kind) {
      case TaskKind::kGetrf:
        break;
      case TaskKind::kGessm:
      case TaskKind::kTstrf: {
        index_t f = finalizer[static_cast<std::size_t>(task.src_a)];
        out[static_cast<std::size_t>(f)].push_back(t);
        dep[static_cast<std::size_t>(t)].fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case TaskKind::kSsssm: {
        index_t fa = finalizer[static_cast<std::size_t>(task.src_a)];
        index_t fb = finalizer[static_cast<std::size_t>(task.src_b)];
        out[static_cast<std::size_t>(fa)].push_back(t);
        out[static_cast<std::size_t>(fb)].push_back(t);
        dep[static_cast<std::size_t>(t)].fetch_add(2, std::memory_order_relaxed);
        index_t fin = finalizer[static_cast<std::size_t>(task.target)];
        out[static_cast<std::size_t>(t)].push_back(fin);
        dep[static_cast<std::size_t>(fin)].fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }

  std::vector<RankQueue> queues(static_cast<std::size_t>(nr));
  std::atomic<index_t> remaining{nt};
  std::atomic<bool> failed{false};

  auto owner_of = [&](index_t t) {
    return mapping.owner[static_cast<std::size_t>(
        tasks[static_cast<std::size_t>(t)].target)];
  };
  auto enqueue = [&](index_t t) {
    const rank_t r = owner_of(t);
    RankQueue& rq = queues[static_cast<std::size_t>(r)];
    {
      MutexLock lk(rq.mu);
      rq.q.push({tasks[static_cast<std::size_t>(t)].k, t});
    }
    rq.cv.notify_one();
  };
  for (index_t t = 0; t < nt; ++t) {
    if (dep[static_cast<std::size_t>(t)].load(std::memory_order_relaxed) == 0)
      enqueue(t);
  }

  auto rank_main = [&](rank_t r) {
    kernels::Workspace ws;
    kernels::PivotStats pivots;
    RankQueue& rq = queues[static_cast<std::size_t>(r)];
    for (;;) {
      index_t t = -1;
      {
        MutexLock lk(rq.mu);
        rq.cv.wait(lk, [&] {
          rq.mu.assert_held();
          return !rq.q.empty() ||
                 remaining.load(std::memory_order_acquire) == 0 ||
                 failed.load(std::memory_order_acquire);
        });
        if (rq.q.empty()) return;  // done or failed
        t = rq.q.top().second;
        rq.q.pop();
      }
      const Task& task = tasks[static_cast<std::size_t>(t)];
      Status s = Status::ok();
      switch (task.kind) {
        case TaskKind::kGetrf: {
          kernels::GetrfOptions go;
          go.pivot_tol = opts.pivot_tol;
          s = kernels::getrf(kernels::select_getrf(bm.block(task.target).nnz()),
                             bm.block(task.target), ws, &pivots, go, nullptr);
          break;
        }
        case TaskKind::kGessm:
          s = kernels::gessm(
              kernels::select_gessm(bm.block(task.target).nnz(),
                                    bm.block(task.src_a).nnz()),
              bm.block(task.src_a), bm.block(task.target), ws, nullptr);
          break;
        case TaskKind::kTstrf:
          s = kernels::tstrf(
              kernels::select_tstrf(bm.block(task.target).nnz(),
                                    bm.block(task.src_a).nnz()),
              bm.block(task.src_a), bm.block(task.target), ws, nullptr);
          break;
        case TaskKind::kSsssm:
          s = kernels::ssssm(kernels::select_ssssm(task.weight),
                             bm.block(task.src_a), bm.block(task.src_b),
                             bm.block(task.target), ws, nullptr);
          break;
      }
      if (!s.is_ok()) {
        failed.store(true, std::memory_order_release);
        for (auto& q : queues) q.cv.notify_all();
        return;
      }
      // Release dependents (this is the "send the sub-matrix block and
      // update the sync-free array" step — in shared memory the block is
      // already visible; the release fence of fetch_sub publishes it).
      for (index_t d : out[static_cast<std::size_t>(t)]) {
        if (dep[static_cast<std::size_t>(d)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          enqueue(d);
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        for (auto& q : queues) q.cv.notify_all();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nr));
  for (rank_t r = 0; r < nr; ++r) threads.emplace_back(rank_main, r);
  for (auto& th : threads) th.join();

  if (failed.load()) return Status::numerical_error("threaded factorise failed");
  if (remaining.load() != 0) return Status::internal("threaded executor stalled");
  return Status::ok();
}

}  // namespace pangulu::runtime
