#include "runtime/threaded.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "kernels/getrf.hpp"
#include "kernels/gessm.hpp"
#include "kernels/selector.hpp"
#include "kernels/ssssm.hpp"
#include "kernels/tstrf.hpp"
#include "parallel/annotations.hpp"
#include "runtime/abft.hpp"

namespace pangulu::runtime {

namespace {

using block::Task;
using block::TaskAdjacency;
using block::TaskKind;

struct RankQueue {
  Mutex mu;
  std::condition_variable_any cv;
  // Priority: smallest elimination step first.
  std::priority_queue<std::pair<index_t, index_t>,
                      std::vector<std::pair<index_t, index_t>>,
                      std::greater<>>
      q PANGULU_GUARDED_BY(mu);  // (k, task index)
};

// Stop-the-world control for ABFT replay repair. Rank-threads bracket every
// task execution (block reads + kernel + publish) with the executing count;
// a thread that detects corruption steps out of the bracket, takes the
// single repair token (`pausing`), and waits for `executing` to drain to
// zero before rewriting any block. The mutex hand-offs give the repair
// writes a happens-before edge against every earlier reader and every later
// one, so the rewrite is race-free (and TSan-clean) by construction.
struct PauseCtl {
  Mutex mu;
  std::condition_variable_any cv;
  bool pausing PANGULU_GUARDED_BY(mu) = false;
  int executing PANGULU_GUARDED_BY(mu) = 0;
};

}  // namespace

template <class V>
Status threaded_factorize(block::BlockMatrixT<V>& bm,
                          const std::vector<Task>& tasks,
                          const block::Mapping& mapping,
                          const ThreadedOptions& opts) {
  const auto nt = static_cast<index_t>(tasks.size());
  const rank_t nr = opts.n_ranks;
  if (mapping.n_ranks != nr)
    return Status::invalid_argument("mapping rank count mismatch");

  // Flattened dependency graph — the same CSR build the DES uses. The
  // prerequisite counters are mirrored into atomics because rank-threads
  // decrement them concurrently.
  const TaskAdjacency adj = TaskAdjacency::build(bm, tasks);
  std::vector<std::atomic<index_t>> dep(static_cast<std::size_t>(nt));
  for (index_t t = 0; t < nt; ++t)
    dep[static_cast<std::size_t>(t)].store(adj.dep[static_cast<std::size_t>(t)],
                                           std::memory_order_relaxed);

  std::vector<RankQueue> queues(static_cast<std::size_t>(nr));
  std::atomic<index_t> remaining{nt};
  std::atomic<bool> failed{false};
  std::atomic<std::uint64_t> steals{0};
  // First failure wins; the typed status (not just a bool) reaches the
  // caller so kDataCorruption is distinguishable from a numerical error.
  Mutex err_mu;
  Status first_error PANGULU_GUARDED_BY(err_mu);
  PauseCtl pause;
  auto record_failure = [&](Status s) {
    {
      MutexLock lk(err_mu);
      if (first_error.is_ok()) first_error = std::move(s);
    }
    failed.store(true, std::memory_order_release);
    for (auto& q : queues) q.cv.notify_all();
    pause.cv.notify_all();
  };

  // ABFT: a finalised block's checksum is published with release order by
  // the thread that ran its finaliser and audited with acquire order by
  // every reader — the same edge that publishes the block values
  // themselves, so the audit is race-free by construction. A failed audit
  // is repaired by canonical replay under stop-the-world (see PauseCtl):
  // the baseline is the block's initial pre-numeric values, and the replay
  // list is every canonical task targeting the block (a block is only ever
  // audited once finalised, so the whole list has committed).
  const bool audit = opts.abft != AbftLevel::kOff;
  std::vector<std::atomic<std::uint64_t>> published(
      audit ? static_cast<std::size_t>(bm.n_blocks()) : 0);
  std::vector<std::vector<V>> base(
      audit ? static_cast<std::size_t>(bm.n_blocks()) : 0);
  std::vector<std::vector<index_t>> by_block(
      audit ? static_cast<std::size_t>(bm.n_blocks()) : 0);
  if (audit) {
    for (nnz_t pos = 0; pos < bm.n_blocks(); ++pos) {
      const auto vals = bm.block(pos).values();
      base[static_cast<std::size_t>(pos)].assign(vals.begin(), vals.end());
    }
    for (index_t t = 0; t < nt; ++t)
      by_block[static_cast<std::size_t>(
          tasks[static_cast<std::size_t>(t)].target)].push_back(t);
  }
  std::atomic<std::int64_t> abft_audits{0};
  std::atomic<std::int64_t> abft_detected{0};
  std::atomic<std::int64_t> abft_recomputed{0};

  // One task's numerics, shared verbatim between the first run and replay
  // repair — same selector, same kernel variant, same bits.
  auto run_task = [&](const Task& task, kernels::Workspace& ws,
                      kernels::PivotStats& pivots) -> Status {
    switch (task.kind) {
      case TaskKind::kGetrf: {
        kernels::GetrfOptions go;
        go.pivot_tol = opts.pivot_tol;
        return kernels::getrf(
            kernels::select_getrf(bm.block(task.target).nnz()),
            bm.block(task.target), ws, &pivots, go, nullptr);
      }
      case TaskKind::kGessm:
        return kernels::gessm(
            kernels::select_gessm(bm.block(task.target).nnz(),
                                  bm.block(task.src_a).nnz()),
            bm.block(task.src_a), bm.block(task.target), ws, nullptr);
      case TaskKind::kTstrf:
        return kernels::tstrf(
            kernels::select_tstrf(bm.block(task.target).nnz(),
                                  bm.block(task.src_a).nnz()),
            bm.block(task.src_a), bm.block(task.target), ws, nullptr);
      case TaskKind::kSsssm:
        return kernels::ssssm(kernels::select_ssssm(task.weight),
                              bm.block(task.src_a), bm.block(task.src_b),
                              bm.block(task.target), ws, nullptr);
    }
    return Status::internal("unknown task kind");
  };

  // Replay repair of one corrupted finalised block, recursing into corrupt
  // source blocks first. Pre-condition: the world is stopped (the caller
  // holds the repair token and `executing` drained to zero), so this thread
  // is the only one touching block values.
  auto repair_block = [&](nnz_t top, kernels::Workspace& ws,
                          kernels::PivotStats& pivots) -> Status {
    auto rec = [&](auto&& self, nnz_t pos, int depth) -> Status {
      abft_detected.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t want =
          published[static_cast<std::size_t>(pos)].load(
              std::memory_order_acquire);
      if (depth >= 4)
        return Status::data_corruption(
            "abft: corruption storm deeper than 4 blocks at position " +
            std::to_string(pos) + "; restart from a checkpoint");
      // The replay reads each committed task's sources; make them clean
      // first (they are finalised — their published checksums are live).
      for (index_t t : by_block[static_cast<std::size_t>(pos)]) {
        const Task& tk = tasks[static_cast<std::size_t>(t)];
        nnz_t srcs[2] = {tk.src_a, tk.src_b};
        if (srcs[1] == srcs[0]) srcs[1] = -1;
        for (nnz_t src : srcs) {
          if (src < 0) continue;
          abft_audits.fetch_add(1, std::memory_order_relaxed);
          if (block_checksum(bm.block(src)) !=
              published[static_cast<std::size_t>(src)].load(
                  std::memory_order_acquire)) {
            Status rs = self(self, src, depth + 1);
            if (!rs.is_ok()) return rs;
          }
        }
      }
      // Restore the pre-numeric baseline and replay the committed tasks in
      // canonical order; determinism reproduces the published bits exactly.
      auto vals = bm.block(pos).values_mut();
      std::copy(base[static_cast<std::size_t>(pos)].begin(),
                base[static_cast<std::size_t>(pos)].end(), vals.begin());
      for (index_t t : by_block[static_cast<std::size_t>(pos)]) {
        Status s = run_task(tasks[static_cast<std::size_t>(t)], ws, pivots);
        if (!s.is_ok()) return s;
      }
      if (block_checksum(bm.block(pos)) != want)
        return Status::data_corruption(
            "abft: replay could not reproduce the published checksum of "
            "block position " +
            std::to_string(pos) + "; restart from a checkpoint");
      abft_recomputed.fetch_add(1, std::memory_order_relaxed);
      return Status::ok();
    };
    return rec(rec, top, 0);
  };

  // Executing-bracket helpers (used only when auditing): every task's block
  // accesses happen between enter and exit, so a repairer that has seen
  // `executing == 0` under the mutex owns every block exclusively.
  auto enter_exec = [&] {
    MutexLock lk(pause.mu);
    const auto clear = [&] {
      pause.mu.assert_held();
      return !pause.pausing || failed.load(std::memory_order_acquire);
    };
    pause.cv.wait(lk, clear);
    ++pause.executing;
  };
  auto exit_exec = [&] {
    {
      MutexLock lk(pause.mu);
      --pause.executing;
    }
    pause.cv.notify_all();
  };

  // Audit one source block from inside the executing bracket. On mismatch:
  // step out of the bracket, take the repair token, wait for the world to
  // stop, repair by replay, then rejoin. Always returns with the bracket
  // re-held, so the caller's exit_exec stays unconditional.
  auto audit_repair = [&](nnz_t pos, kernels::Workspace& ws,
                          kernels::PivotStats& pivots) -> Status {
    if (!audit || pos < 0) return Status::ok();
    abft_audits.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t want =
        published[static_cast<std::size_t>(pos)].load(
            std::memory_order_acquire);
    if (block_checksum(bm.block(pos)) == want) return Status::ok();
    bool token = false;
    {
      MutexLock lk(pause.mu);
      --pause.executing;
      pause.cv.notify_all();
      const auto idle = [&] {
        pause.mu.assert_held();
        return !pause.pausing || failed.load(std::memory_order_acquire);
      };
      pause.cv.wait(lk, idle);
      if (!failed.load(std::memory_order_acquire)) {
        pause.pausing = true;
        token = true;
        const auto stopped = [&] {
          pause.mu.assert_held();
          return pause.executing == 0 ||
                 failed.load(std::memory_order_acquire);
        };
        pause.cv.wait(lk, stopped);
      }
    }
    Status rs = Status::ok();
    if (failed.load(std::memory_order_acquire)) {
      // Some other thread already failed the run; any error will do — the
      // first recorded error is the one the caller surfaces.
      rs = Status::internal("threaded executor aborted during abft repair");
    } else if (block_checksum(bm.block(pos)) != want) {
      // Re-checked under stop-the-world: a concurrent repairer may have
      // already rebuilt this block while we waited for the token.
      rs = repair_block(pos, ws, pivots);
    }
    {
      MutexLock lk(pause.mu);
      if (token) pause.pausing = false;
      ++pause.executing;  // rejoin; we hold the token, nobody else pauses
    }
    pause.cv.notify_all();
    return rs;
  };

  // One busy flag per block position. A task mutates exactly its target
  // block, so two tasks may run concurrently iff their targets differ; the
  // owner discipline used to guarantee that per rank, stealing breaks it,
  // and the flag restores it (exchange-acquire claims the block and sees the
  // previous claimant's writes; store-release publishes ours to the next).
  std::vector<std::atomic<char>> block_busy(
      static_cast<std::size_t>(bm.n_blocks()));
  for (auto& b : block_busy) b.store(0, std::memory_order_relaxed);

  auto owner_of = [&](index_t t) {
    return mapping.owner[static_cast<std::size_t>(
        tasks[static_cast<std::size_t>(t)].target)];
  };
  auto enqueue = [&](index_t t) {
    const rank_t r = owner_of(t);
    RankQueue& rq = queues[static_cast<std::size_t>(r)];
    {
      MutexLock lk(rq.mu);
      rq.q.push({tasks[static_cast<std::size_t>(t)].k, t});
    }
    rq.cv.notify_one();
  };
  for (index_t t = 0; t < nt; ++t) {
    if (dep[static_cast<std::size_t>(t)].load(std::memory_order_relaxed) == 0)
      enqueue(t);
  }

  // Raid the other ranks' queues round-robin, one mutex at a time, taking
  // the victim's most critical queued task (all a priority queue exposes).
  auto steal_one = [&](rank_t thief) -> index_t {
    for (rank_t i = 1; i < nr; ++i) {
      const rank_t v = static_cast<rank_t>((thief + i) % nr);
      RankQueue& vq = queues[static_cast<std::size_t>(v)];
      MutexLock lk(vq.mu);
      if (vq.q.empty()) continue;
      const index_t t = vq.q.top().second;
      vq.q.pop();
      steals.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
    return -1;
  };

  auto rank_main = [&](rank_t r) {
    kernels::Workspace ws;
    kernels::PivotStats pivots;
    RankQueue& rq = queues[static_cast<std::size_t>(r)];
    for (;;) {
      index_t t = -1;
      {
        MutexLock lk(rq.mu);
        const auto wake = [&] {
          rq.mu.assert_held();
          return !rq.q.empty() ||
                 remaining.load(std::memory_order_acquire) == 0 ||
                 failed.load(std::memory_order_acquire);
        };
        if (opts.work_stealing) {
          // Bounded nap: wake on a notify or every 200us to scan for steals.
          rq.cv.wait_for(lk, std::chrono::microseconds(200), wake);
        } else {
          rq.cv.wait(lk, wake);
        }
        if (remaining.load(std::memory_order_acquire) == 0 ||
            failed.load(std::memory_order_acquire))
          return;
        if (!rq.q.empty()) {
          t = rq.q.top().second;
          rq.q.pop();
        }
      }
      if (t < 0) {
        if (!opts.work_stealing) continue;
        t = steal_one(r);
        if (t < 0) continue;
      }
      // Task boundary = safe point: the claimed task has not started, its
      // dependency counter already fired, and handing the failure to
      // record_failure wakes every other rank-thread out of its wait.
      if (opts.cancel) {
        Status cs = opts.cancel->check("threaded task boundary");
        if (!cs.is_ok()) {
          record_failure(std::move(cs));
          return;
        }
      }
      const Task& task = tasks[static_cast<std::size_t>(t)];
      if (audit) enter_exec();
      auto& busy = block_busy[static_cast<std::size_t>(task.target)];
      if (busy.exchange(1, std::memory_order_acquire) != 0) {
        // Another thread is inside this block (stolen sibling update).
        // Hand the task back to its owner and move on.
        if (audit) exit_exec();
        enqueue(t);
        std::this_thread::yield();
        continue;
      }
      Status s = audit_repair(task.src_a, ws, pivots);
      if (s.is_ok() && task.src_b >= 0 && task.src_b != task.src_a)
        s = audit_repair(task.src_b, ws, pivots);
      if (!s.is_ok()) {
        busy.store(0, std::memory_order_release);
        if (audit) exit_exec();
        record_failure(std::move(s));
        return;
      }
      s = run_task(task, ws, pivots);
      if (s.is_ok()) {
        // Publish the finalised block's checksum, then inject any scheduled
        // bit flips *into this task's target* while no reader can be running
        // (dependents are only released below). Flips naming other blocks
        // have no race-free injection window under true concurrency and are
        // ignored here; the DES covers them.
        if (audit &&
            adj.finalizer_of_block[static_cast<std::size_t>(task.target)] == t)
          published[static_cast<std::size_t>(task.target)].store(
              block_checksum(bm.block(task.target)),
              std::memory_order_release);
        for (const FaultPlan::BitFlip& f : opts.bitflips) {
          if (f.after_task != t || f.block_pos != task.target) continue;
          auto vals = bm.block(task.target).values_mut();
          if (f.value_index < 0 ||
              f.value_index >= static_cast<nnz_t>(vals.size()))
            continue;
          // Native-width flip (bit indices wrap at FP32, matching the DES).
          if constexpr (sizeof(V) == 4) {
            std::uint32_t bits;
            std::memcpy(&bits, &vals[static_cast<std::size_t>(f.value_index)],
                        sizeof bits);
            bits ^= std::uint32_t(1) << (f.bit % 32);
            std::memcpy(&vals[static_cast<std::size_t>(f.value_index)], &bits,
                        sizeof bits);
          } else {
            std::uint64_t bits;
            std::memcpy(&bits, &vals[static_cast<std::size_t>(f.value_index)],
                        sizeof bits);
            bits ^= std::uint64_t(1) << f.bit;
            std::memcpy(&vals[static_cast<std::size_t>(f.value_index)], &bits,
                        sizeof bits);
          }
        }
      }
      busy.store(0, std::memory_order_release);
      if (audit) exit_exec();
      if (!s.is_ok()) {
        record_failure(std::move(s));
        return;
      }
      // Release dependents (this is the "send the sub-matrix block and
      // update the sync-free array" step — in shared memory the block is
      // already visible; the release fence of fetch_sub publishes it).
      for (nnz_t e = adj.out_ptr[static_cast<std::size_t>(t)];
           e < adj.out_ptr[static_cast<std::size_t>(t) + 1]; ++e) {
        const index_t d = adj.out_adj[static_cast<std::size_t>(e)];
        if (dep[static_cast<std::size_t>(d)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          enqueue(d);
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        for (auto& q : queues) q.cv.notify_all();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nr));
  for (rank_t r = 0; r < nr; ++r) threads.emplace_back(rank_main, r);
  for (auto& th : threads) th.join();

  if (opts.steal_count) *opts.steal_count = steals.load();
  if (opts.abft_stats) {
    opts.abft_stats->audits = abft_audits.load();
    opts.abft_stats->detected = abft_detected.load();
    opts.abft_stats->recomputed = abft_recomputed.load();
  }
  if (failed.load()) {
    MutexLock lk(err_mu);
    return first_error.is_ok()
               ? Status::numerical_error("threaded factorise failed")
               : first_error;
  }
  if (remaining.load() != 0) return Status::internal("threaded executor stalled");
  return Status::ok();
}

template Status threaded_factorize(block::BlockMatrixT<float>&,
                                   const std::vector<Task>&,
                                   const block::Mapping&,
                                   const ThreadedOptions&);
template Status threaded_factorize(block::BlockMatrixT<double>&,
                                   const std::vector<Task>&,
                                   const block::Mapping&,
                                   const ThreadedOptions&);

}  // namespace pangulu::runtime
