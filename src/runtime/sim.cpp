#include "runtime/sim.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "kernels/getrf.hpp"
#include "kernels/gessm.hpp"
#include "kernels/ssssm.hpp"
#include "kernels/tstrf.hpp"

namespace pangulu::runtime {

namespace {

using block::BlockMatrix;
using block::Mapping;
using block::Task;
using block::TaskKind;

/// Resolved execution plan of one task: which variant runs and what it costs.
struct TaskPlan {
  bool gpu = false;
  bool direct = false;
  int variant = 0;  // index within its family's enum
  double cost = 0;
};

TaskPlan plan_task(const Task& t, const BlockMatrix& bm, const SimOptions& o) {
  TaskPlan p;
  const Csc& target = bm.block(t.target);
  const double nnz_target = static_cast<double>(target.nnz());
  const double dim = static_cast<double>(target.n_rows());

  switch (t.kind) {
    case TaskKind::kGetrf: {
      kernels::GetrfVariant v;
      if (o.policy == KernelPolicy::kFixedCpu)
        v = kernels::GetrfVariant::kCV1;
      else if (o.policy == KernelPolicy::kFixedGpu)
        v = kernels::GetrfVariant::kGV1;
      else
        v = kernels::select_getrf(target.nnz(), o.thresholds);
      p.variant = static_cast<int>(v);
      p.gpu = kernels::is_gpu_variant(v);
      p.direct = (v != kernels::GetrfVariant::kGV1);  // C_V1 & G_V2 dense-map
      p.cost = o.device.sparse_kernel_time(p.gpu, p.direct, t.weight,
                                           nnz_target, dim);
      break;
    }
    case TaskKind::kGessm:
    case TaskKind::kTstrf: {
      const Csc& diag = bm.block(t.src_a);
      kernels::PanelVariant v;
      if (o.policy == KernelPolicy::kFixedCpu)
        v = kernels::PanelVariant::kCV1;
      else if (o.policy == KernelPolicy::kFixedGpu)
        v = kernels::PanelVariant::kGV1;
      else
        v = t.kind == TaskKind::kGessm
                ? kernels::select_gessm(target.nnz(), diag.nnz(), o.thresholds)
                : kernels::select_tstrf(target.nnz(), diag.nnz(), o.thresholds);
      p.variant = static_cast<int>(v);
      p.gpu = kernels::is_gpu_variant(v);
      p.direct = (v == kernels::PanelVariant::kCV2 ||
                  v == kernels::PanelVariant::kGV3);
      p.cost = o.device.sparse_kernel_time(
          p.gpu, p.direct, t.weight,
          nnz_target + static_cast<double>(diag.nnz()), dim);
      break;
    }
    case TaskKind::kSsssm: {
      kernels::SsssmVariant v;
      if (o.policy == KernelPolicy::kFixedCpu)
        v = kernels::SsssmVariant::kCV2;
      else if (o.policy == KernelPolicy::kFixedGpu)
        v = kernels::SsssmVariant::kGV1;
      else
        v = kernels::select_ssssm(t.weight, o.thresholds);
      p.variant = static_cast<int>(v);
      p.gpu = kernels::is_gpu_variant(v);
      p.direct = (v == kernels::SsssmVariant::kCV1 ||
                  v == kernels::SsssmVariant::kGV2);
      const double nnz_all = nnz_target +
                             static_cast<double>(bm.block(t.src_a).nnz()) +
                             static_cast<double>(bm.block(t.src_b).nnz());
      p.cost = o.device.sparse_kernel_time(p.gpu, p.direct, t.weight, nnz_all,
                                           dim);
      break;
    }
  }
  return p;
}

/// Execute the task's numerics on the host.
Status run_numerics(const Task& t, const TaskPlan& p, BlockMatrix& bm,
                    kernels::Workspace& ws, kernels::PivotStats* pivots,
                    value_t pivot_tol) {
  switch (t.kind) {
    case TaskKind::kGetrf: {
      kernels::GetrfOptions go;
      go.pivot_tol = pivot_tol;
      return kernels::getrf(static_cast<kernels::GetrfVariant>(p.variant),
                            bm.block(t.target), ws, pivots, go, nullptr);
    }
    case TaskKind::kGessm:
      return kernels::gessm(static_cast<kernels::PanelVariant>(p.variant),
                            bm.block(t.src_a), bm.block(t.target), ws, nullptr);
    case TaskKind::kTstrf:
      return kernels::tstrf(static_cast<kernels::PanelVariant>(p.variant),
                            bm.block(t.src_a), bm.block(t.target), ws, nullptr);
    case TaskKind::kSsssm:
      return kernels::ssssm(static_cast<kernels::SsssmVariant>(p.variant),
                            bm.block(t.src_a), bm.block(t.src_b),
                            bm.block(t.target), ws, nullptr);
  }
  return Status::internal("unreachable");
}

/// Dependency structure shared by both schedulers.
struct TaskGraph {
  // dep[t]: remaining prerequisite completions before task t is ready.
  std::vector<index_t> dep;
  // Dependents released by each task's completion.
  std::vector<std::vector<index_t>> out;
  // Finalising task of each block position (-1 if none).
  std::vector<index_t> finalizer_of_block;

  static TaskGraph build(const BlockMatrix& bm, const std::vector<Task>& tasks) {
    TaskGraph g;
    const auto nt = static_cast<index_t>(tasks.size());
    g.dep.assign(static_cast<std::size_t>(nt), 0);
    g.out.assign(static_cast<std::size_t>(nt), {});
    g.finalizer_of_block.assign(static_cast<std::size_t>(bm.n_blocks()), -1);

    for (index_t t = 0; t < nt; ++t) {
      const Task& task = tasks[static_cast<std::size_t>(t)];
      if (task.kind != TaskKind::kSsssm)
        g.finalizer_of_block[static_cast<std::size_t>(task.target)] = t;
    }
    for (index_t t = 0; t < nt; ++t) {
      const Task& task = tasks[static_cast<std::size_t>(t)];
      switch (task.kind) {
        case TaskKind::kGetrf:
          break;  // depends only on incoming SSSSM updates (added below)
        case TaskKind::kGessm:
        case TaskKind::kTstrf: {
          // Needs the factorised diagonal block.
          index_t diag_fin =
              g.finalizer_of_block[static_cast<std::size_t>(task.src_a)];
          g.out[static_cast<std::size_t>(diag_fin)].push_back(t);
          g.dep[static_cast<std::size_t>(t)]++;
          break;
        }
        case TaskKind::kSsssm: {
          index_t fa = g.finalizer_of_block[static_cast<std::size_t>(task.src_a)];
          index_t fb = g.finalizer_of_block[static_cast<std::size_t>(task.src_b)];
          g.out[static_cast<std::size_t>(fa)].push_back(t);
          g.out[static_cast<std::size_t>(fb)].push_back(t);
          g.dep[static_cast<std::size_t>(t)] += 2;
          // The target's finaliser waits for this update — the
          // synchronisation-free array counter in DES form.
          index_t fin = g.finalizer_of_block[static_cast<std::size_t>(task.target)];
          PANGULU_CHECK(fin >= 0, "every block has a finalising task");
          g.out[static_cast<std::size_t>(t)].push_back(fin);
          g.dep[static_cast<std::size_t>(fin)]++;
          break;
        }
      }
    }
    return g;
  }
};

struct PendingEvent {
  double time;
  index_t seq;   // tie-break for determinism
  index_t task;  // ready task, or -1 for a rank wake-up
  rank_t rank;   // rank to wake (wake events only)
  bool operator>(const PendingEvent& o) const {
    return std::tie(time, seq) > std::tie(o.time, o.seq);
  }
};

Status run_sync_free(BlockMatrix& bm, const std::vector<Task>& tasks,
                     const Mapping& mapping, const SimOptions& o,
                     SimResult* res) {
  const auto nt = static_cast<index_t>(tasks.size());
  TaskGraph g = TaskGraph::build(bm, tasks);

  std::vector<TaskPlan> plans(static_cast<std::size_t>(nt));
  std::vector<rank_t> owner(static_cast<std::size_t>(nt));
  for (index_t t = 0; t < nt; ++t)
    owner[static_cast<std::size_t>(t)] =
        mapping.owner[static_cast<std::size_t>(
            tasks[static_cast<std::size_t>(t)].target)];

  // Priority inside a rank: lowest elimination step first ("the most
  // critical of the tasks", §4.4), then enumeration order.
  auto priority_less = [&](index_t a, index_t b) {
    const Task& ta = tasks[static_cast<std::size_t>(a)];
    const Task& tb = tasks[static_cast<std::size_t>(b)];
    if (ta.k != tb.k) return ta.k > tb.k;  // min-heap via greater
    return a > b;
  };
  std::vector<std::priority_queue<index_t, std::vector<index_t>,
                                  decltype(priority_less)>>
      ready;
  ready.reserve(static_cast<std::size_t>(o.n_ranks));
  for (rank_t r = 0; r < o.n_ranks; ++r) ready.emplace_back(priority_less);

  std::vector<double> busy_until(static_cast<std::size_t>(o.n_ranks), 0.0);
  std::vector<double> ready_time(static_cast<std::size_t>(nt), 0.0);

  res->ranks.assign(static_cast<std::size_t>(o.n_ranks), RankStats{});
  kernels::Workspace ws;
  kernels::PivotStats pivots;

  std::priority_queue<PendingEvent, std::vector<PendingEvent>,
                      std::greater<PendingEvent>>
      events;
  index_t seq = 0;
  for (index_t t = 0; t < nt; ++t) {
    if (g.dep[static_cast<std::size_t>(t)] == 0)
      events.push({0.0, seq++, t, 0});
  }

  double makespan = 0;
  index_t completed = 0;

  // Start the highest-priority queued task of rank r at time `now` (the rank
  // is known to be free). Completion bookkeeping is eager: the dependents'
  // ready times (including message arrival) are computed immediately, and a
  // wake event lets the rank pick its next task when this one finishes.
  auto start_one = [&](rank_t r, double now) -> Status {
    auto& q = ready[static_cast<std::size_t>(r)];
    if (q.empty()) return Status::ok();
    index_t t = q.top();
    q.pop();
    const Task& task = tasks[static_cast<std::size_t>(t)];
    TaskPlan p = plan_task(task, bm, o);
    plans[static_cast<std::size_t>(t)] = p;
    if (o.execute_numerics) {
      Status s = run_numerics(task, p, bm, ws, &pivots, o.pivot_tol);
      if (!s.is_ok()) return s;
    }
    // Release dependents; remote ones pay one message per destination rank.
    // Posting a send also occupies the sender briefly (pack + NIC doorbell),
    // which is what throttles very fine-grained block traffic at high rank
    // counts — the communication-bound regime §5.3 reports at 128 GPUs.
    const Csc& produced = bm.block(task.target);
    const std::size_t msg_bytes =
        block_message_bytes(produced.nnz(), produced.n_cols());
    std::vector<rank_t> sent_to;
    for (index_t d : g.out[static_cast<std::size_t>(t)]) {
      const rank_t dr = owner[static_cast<std::size_t>(d)];
      if (dr != r &&
          std::find(sent_to.begin(), sent_to.end(), dr) == sent_to.end())
        sent_to.push_back(dr);
    }
    const double send_overhead =
        static_cast<double>(sent_to.size()) * 0.5 * o.device.net_latency_s;

    const double fin = now + p.cost + send_overhead;
    busy_until[static_cast<std::size_t>(r)] = fin;
    makespan = std::max(makespan, fin);
    if (o.trace)
      o.trace->record({t, task.kind, task.k, task.bi, task.bj, r, now, fin});
    auto& rs = res->ranks[static_cast<std::size_t>(r)];
    rs.busy += p.cost + send_overhead;
    rs.messages_sent += static_cast<std::int64_t>(sent_to.size());
    rs.bytes_sent += sent_to.size() * msg_bytes;
    if (task.kind == TaskKind::kSsssm)
      res->schur_busy += p.cost;
    else
      res->panel_busy += p.cost;
    res->kind_busy[static_cast<int>(task.kind)] += p.cost;
    res->kind_count[static_cast<int>(task.kind)]++;
    res->total_flops += task.weight;
    ++completed;

    for (index_t d : g.out[static_cast<std::size_t>(t)]) {
      const rank_t dr = owner[static_cast<std::size_t>(d)];
      double arrive = fin;
      if (dr != r) arrive += o.device.message_time(msg_bytes);
      auto& rd = ready_time[static_cast<std::size_t>(d)];
      rd = std::max(rd, arrive);
      if (--g.dep[static_cast<std::size_t>(d)] == 0)
        events.push({rd, seq++, d, 0});
    }
    events.push({fin, seq++, -1, r});  // wake: pick the next queued task
    return Status::ok();
  };

  while (!events.empty()) {
    PendingEvent ev = events.top();
    events.pop();
    rank_t r;
    if (ev.task >= 0) {
      r = owner[static_cast<std::size_t>(ev.task)];
      ready[static_cast<std::size_t>(r)].push(ev.task);
    } else {
      r = ev.rank;
    }
    if (busy_until[static_cast<std::size_t>(r)] > ev.time + 1e-30)
      continue;  // rank busy; its completion wake will drain the queue
    Status s = start_one(r, ev.time);
    if (!s.is_ok()) return s;
  }
  PANGULU_CHECK(completed == nt, "sync-free DES deadlocked");

  res->makespan = makespan;
  res->perturbed_pivots = pivots.perturbed;
  for (rank_t r = 0; r < o.n_ranks; ++r) {
    auto& rs = res->ranks[static_cast<std::size_t>(r)];
    rs.idle = makespan - rs.busy;
    res->avg_sync += rs.idle;
    res->max_sync = std::max(res->max_sync, rs.idle);
    res->messages += rs.messages_sent;
    res->bytes += rs.bytes_sent;
  }
  res->avg_sync /= std::max<rank_t>(1, o.n_ranks);
  return Status::ok();
}

Status run_level_set(BlockMatrix& bm, const std::vector<Task>& tasks,
                     const Mapping& mapping, const SimOptions& o,
                     SimResult* res) {
  res->ranks.assign(static_cast<std::size_t>(o.n_ranks), RankStats{});
  kernels::Workspace ws;
  kernels::PivotStats pivots;

  // Tasks arrive ordered by k; within a slice, phases are
  // GETRF -> {GESSM,TSTRF} -> SSSSM with a barrier after each phase.
  double now = 0;
  std::vector<double> phase_busy(static_cast<std::size_t>(o.n_ranks));
  std::size_t ti = 0;
  const index_t nb = bm.nb();
  for (index_t k = 0; k < nb && ti < tasks.size(); ++k) {
    for (int phase = 0; phase < 3; ++phase) {
      std::fill(phase_busy.begin(), phase_busy.end(), 0.0);
      std::size_t begin = ti;
      while (ti < tasks.size() && tasks[ti].k == k) {
        const TaskKind kind = tasks[ti].kind;
        const int task_phase = kind == TaskKind::kGetrf ? 0
                               : kind == TaskKind::kSsssm ? 2
                                                          : 1;
        if (task_phase != phase) break;
        const Task& task = tasks[ti];
        const rank_t r =
            mapping.owner[static_cast<std::size_t>(task.target)];
        TaskPlan p = plan_task(task, bm, o);
        if (o.execute_numerics) {
          Status s = run_numerics(task, p, bm, ws, &pivots, o.pivot_tol);
          if (!s.is_ok()) return s;
        }
        // Remote sources must be fetched at phase start: one message per
        // distinct remote source block (panel: diag; SSSSM: both solves).
        double comm = 0;
        auto charge_fetch = [&](nnz_t src) {
          if (src < 0) return;
          const rank_t sr = mapping.owner[static_cast<std::size_t>(src)];
          if (sr == r) return;
          const Csc& blk = bm.block(src);
          const std::size_t bytes = block_message_bytes(blk.nnz(), blk.n_cols());
          comm += o.device.message_time(bytes);
          auto& ss = res->ranks[static_cast<std::size_t>(sr)];
          ss.messages_sent++;
          ss.bytes_sent += bytes;
        };
        charge_fetch(task.src_a);
        if (task.kind == TaskKind::kSsssm) charge_fetch(task.src_b);

        if (o.trace) {
          const double start =
              now + phase_busy[static_cast<std::size_t>(r)] + comm;
          o.trace->record({static_cast<index_t>(ti), task.kind, task.k,
                           task.bi, task.bj, r, start, start + p.cost});
        }
        phase_busy[static_cast<std::size_t>(r)] += p.cost + comm;
        auto& rs = res->ranks[static_cast<std::size_t>(r)];
        rs.busy += p.cost;
        if (task.kind == TaskKind::kSsssm)
          res->schur_busy += p.cost;
        else
          res->panel_busy += p.cost;
        res->kind_busy[static_cast<int>(task.kind)] += p.cost;
        res->kind_count[static_cast<int>(task.kind)]++;
        res->total_flops += task.weight;
        ++ti;
      }
      if (ti == begin && phase != 0) continue;  // empty phase: no barrier
      double phase_max = 0;
      for (double b : phase_busy) phase_max = std::max(phase_max, b);
      // Barrier: everyone waits for the slowest rank.
      for (rank_t r = 0; r < o.n_ranks; ++r) {
        res->ranks[static_cast<std::size_t>(r)].idle +=
            phase_max - phase_busy[static_cast<std::size_t>(r)];
      }
      now += phase_max + o.device.barrier_time(o.n_ranks);
    }
  }
  PANGULU_CHECK(ti == tasks.size(), "level-set missed tasks");

  res->makespan = now;
  res->perturbed_pivots = pivots.perturbed;
  for (rank_t r = 0; r < o.n_ranks; ++r) {
    auto& rs = res->ranks[static_cast<std::size_t>(r)];
    // Include barrier overhead in idle accounting.
    res->avg_sync += rs.idle;
    res->max_sync = std::max(res->max_sync, rs.idle);
    res->messages += rs.messages_sent;
    res->bytes += rs.bytes_sent;
  }
  res->avg_sync /= std::max<rank_t>(1, o.n_ranks);
  return Status::ok();
}

}  // namespace

Status simulate_factorization(BlockMatrix& bm, const std::vector<Task>& tasks,
                              const Mapping& mapping, const SimOptions& opts,
                              SimResult* result) {
  *result = SimResult{};
  if (opts.n_ranks < 1)
    return Status::invalid_argument("n_ranks must be >= 1");
  if (mapping.n_ranks != opts.n_ranks)
    return Status::invalid_argument("mapping rank count mismatch");
  if (opts.schedule == ScheduleMode::kSyncFree)
    return run_sync_free(bm, tasks, mapping, opts, result);
  return run_level_set(bm, tasks, mapping, opts, result);
}

}  // namespace pangulu::runtime
