#include "runtime/sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <queue>
#include <string>
#include <tuple>

#include "analysis/verify.hpp"
#include "kernels/getrf.hpp"
#include "kernels/gessm.hpp"
#include "kernels/ssssm.hpp"
#include "kernels/tstrf.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pangulu::runtime {

namespace {

using block::Mapping;
using block::Task;
using block::TaskAdjacency;
using block::TaskKind;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Resolved execution plan of one task: which variant runs and what it costs.
struct TaskPlan {
  bool gpu = false;
  kernels::Addressing addr = kernels::Addressing::kDirect;
  int variant = 0;  // index within its family's enum
  double cost = 0;
};

template <class V>
TaskPlan plan_task(const Task& t, const block::BlockMatrixT<V>& bm,
                   const SimOptions& o) {
  TaskPlan p;
  const CscT<V>& target = bm.block(t.target);
  const double nnz_target = static_cast<double>(target.nnz());
  const double dim = static_cast<double>(target.n_rows());

  switch (t.kind) {
    case TaskKind::kGetrf: {
      kernels::GetrfVariant v;
      if (o.policy == KernelPolicy::kFixedCpu)
        v = kernels::GetrfVariant::kCV1;
      else if (o.policy == KernelPolicy::kFixedGpu)
        v = kernels::GetrfVariant::kGV1;
      else
        v = kernels::select_getrf(target.nnz(), o.thresholds);
      p.variant = static_cast<int>(v);
      p.gpu = kernels::is_gpu_variant(v);
      p.addr = kernels::addressing_of(v);
      p.cost = o.device.sparse_kernel_time(p.gpu, p.addr, t.weight,
                                           nnz_target, dim);
      break;
    }
    case TaskKind::kGessm:
    case TaskKind::kTstrf: {
      const CscT<V>& diag = bm.block(t.src_a);
      kernels::PanelVariant v;
      if (o.policy == KernelPolicy::kFixedCpu)
        v = kernels::PanelVariant::kCV1;
      else if (o.policy == KernelPolicy::kFixedGpu)
        v = kernels::PanelVariant::kGV1;
      else
        v = t.kind == TaskKind::kGessm
                ? kernels::select_gessm(target.nnz(), diag.nnz(), o.thresholds)
                : kernels::select_tstrf(target.nnz(), diag.nnz(), o.thresholds);
      p.variant = static_cast<int>(v);
      p.gpu = kernels::is_gpu_variant(v);
      p.addr = kernels::addressing_of(v);
      p.cost = o.device.sparse_kernel_time(
          p.gpu, p.addr, t.weight,
          nnz_target + static_cast<double>(diag.nnz()), dim);
      break;
    }
    case TaskKind::kSsssm: {
      kernels::SsssmVariant v;
      if (o.policy == KernelPolicy::kFixedCpu)
        v = kernels::SsssmVariant::kCV2;
      else if (o.policy == KernelPolicy::kFixedGpu)
        v = kernels::SsssmVariant::kGV1;
      else
        v = kernels::select_ssssm(t.weight, o.thresholds);
      p.variant = static_cast<int>(v);
      p.gpu = kernels::is_gpu_variant(v);
      p.addr = kernels::addressing_of(v);
      const double nnz_all = nnz_target +
                             static_cast<double>(bm.block(t.src_a).nnz()) +
                             static_cast<double>(bm.block(t.src_b).nnz());
      p.cost = o.device.sparse_kernel_time(p.gpu, p.addr, t.weight, nnz_all,
                                           dim);
      break;
    }
  }
  return p;
}

/// Execute the task's numerics on the host.
template <class V>
Status run_numerics(const Task& t, const TaskPlan& p,
                    block::BlockMatrixT<V>& bm, kernels::Workspace& ws,
                    kernels::PivotStats* pivots, kernels::tolerance_t pivot_tol) {
  switch (t.kind) {
    case TaskKind::kGetrf: {
      kernels::GetrfOptions go;
      go.pivot_tol = pivot_tol;
      return kernels::getrf(static_cast<kernels::GetrfVariant>(p.variant),
                            bm.block(t.target), ws, pivots, go, nullptr);
    }
    case TaskKind::kGessm:
      return kernels::gessm(static_cast<kernels::PanelVariant>(p.variant),
                            bm.block(t.src_a), bm.block(t.target), ws, nullptr);
    case TaskKind::kTstrf:
      return kernels::tstrf(static_cast<kernels::PanelVariant>(p.variant),
                            bm.block(t.src_a), bm.block(t.target), ws, nullptr);
    case TaskKind::kSsssm:
      return kernels::ssssm(static_cast<kernels::SsssmVariant>(p.variant),
                            bm.block(t.src_a), bm.block(t.src_b),
                            bm.block(t.target), ws, nullptr);
  }
  return Status::internal("run_numerics: unhandled TaskKind " +
                          to_string(t.kind));
}

/// Runtime fault state shared by both schedulers: per-rank crash clocks plus
/// the seeded per-message RNG of the drop/duplicate/reorder draws. Draws are
/// consumed in DES event order, which is itself deterministic for a given
/// plan, so every run of the same plan sees the same faults.
struct FaultCtx {
  const FaultPlan& plan;
  const DeviceModel& dev;
  std::vector<double> crash_at;  // +inf: never crashes
  Rng rng;

  FaultCtx(const FaultPlan& p, const DeviceModel& d, rank_t n_ranks)
      : plan(p), dev(d),
        crash_at(static_cast<std::size_t>(n_ranks), kInf),
        rng(p.seed ^ 0xfa017c0de5eedULL) {
    for (const FaultPlan::Crash& c : p.crashes) {
      auto& t = crash_at[static_cast<std::size_t>(c.rank)];
      t = std::min(t, c.at_s);
    }
  }

  /// Compound straggler factor of rank r at virtual time t.
  double speed_factor(rank_t r, double t) const {
    double f = 1;
    for (const FaultPlan::Slowdown& s : plan.slowdowns)
      if (s.rank == r && t >= s.from_s) f *= s.factor;
    return f;
  }

  /// Earliest time >= t at which rank r is not frozen by a transient stall.
  double stall_release(rank_t r, double t) const {
    bool moved = true;
    while (moved) {
      moved = false;
      for (const FaultPlan::Stall& s : plan.stalls) {
        if (s.rank == r && t >= s.at_s && t < s.at_s + s.duration_s) {
          t = s.at_s + s.duration_s;
          moved = true;
        }
      }
    }
    return t;
  }

  /// One reliable block transfer under the ack/timeout/retransmit protocol.
  struct Transfer {
    double deliver = 0;  // when the first successful copy lands
    double penalty = 0;  // deliver minus the fault-free delivery time
    int sends = 1;       // physical sends (retransmits = sends - 1)
    int timeouts = 0;    // ack timers that fired
    int duplicates = 0;  // extra copies the receiver must suppress
    bool ok = true;      // false: max_attempts exhausted, link unusable
  };

  Transfer transfer(double send_time, std::size_t bytes) {
    Transfer tr;
    const double base = dev.message_time(bytes);
    tr.deliver = send_time + base;
    if (!plan.has_message_faults() || send_time < plan.window_begin_s ||
        send_time >= plan.window_end_s)
      return tr;
    double t = send_time;
    double timeout = dev.ack_timeout(bytes);
    tr.sends = 0;
    for (int attempt = 0; attempt < plan.max_attempts; ++attempt) {
      tr.sends++;
      if (!rng.bernoulli(plan.drop_prob)) {
        double delay = base;
        if (plan.reorder_prob > 0 && rng.bernoulli(plan.reorder_prob))
          delay += rng.uniform(0.0, plan.reorder_max_delay_s);
        if (plan.dup_prob > 0 && rng.bernoulli(plan.dup_prob))
          tr.duplicates++;
        tr.deliver = t + delay;
        tr.penalty = tr.deliver - (send_time + base);
        return tr;
      }
      // Attempt lost: the ack timer fires and the sender retransmits with
      // exponential backoff.
      tr.timeouts++;
      t += timeout;
      timeout *= 2;
    }
    tr.ok = false;
    return tr;
  }
};

struct PendingEvent {
  double time;
  index_t seq;   // tie-break for determinism
  index_t task;  // ready task, or a marker id (kWakeEvent & co) below
  rank_t rank;   // rank to wake / rank being recovered
  bool operator>(const PendingEvent& o) const {
    return std::tie(time, seq) > std::tie(o.time, o.seq);
  }
};

/// Marker task ids for non-task events.
constexpr index_t kWakeEvent = -1;
constexpr index_t kRecoveryEvent = -2;
constexpr index_t kElasticEvent = -3;

/// Flattened elastic plan in firing order: at_commit ascending, adds before
/// drains on ties (a same-instant swap never dips the live count). Mirrors
/// the ordering ElasticPlan::validate proves against.
struct ElasticStep {
  index_t at_commit;
  rank_t rank;
  bool is_add;
};

std::vector<ElasticStep> elastic_steps(const ElasticPlan& plan) {
  std::vector<ElasticStep> steps;
  steps.reserve(plan.adds.size() + plan.drains.size());
  for (const auto& e : plan.adds) steps.push_back({e.at_commit, e.rank, true});
  for (const auto& e : plan.drains)
    steps.push_back({e.at_commit, e.rank, false});
  std::stable_sort(steps.begin(), steps.end(),
                   [](const ElasticStep& a, const ElasticStep& b) {
                     if (a.at_commit != b.at_commit)
                       return a.at_commit < b.at_commit;
                     return a.is_add && !b.is_add;
                   });
  return steps;
}

}  // namespace

std::vector<analysis::ModelOptions::ElasticEvent> flatten_elastic(
    const ElasticPlan& plan) {
  std::vector<analysis::ModelOptions::ElasticEvent> out;
  for (const ElasticStep& s : elastic_steps(plan))
    out.push_back({s.rank, s.at_commit, s.is_add});
  return out;
}

namespace {

/// Post-remap invariant re-check (both schedulers): the remapped state must
/// still be total over the survivors, and at kFull every expected message
/// must still have a live route. PR 1's remapping widened the state space
/// the scheduler can be in; this is the guard that a bad remap is diagnosed
/// instead of discovered as a hang.
template <class V>
Status verify_after_remap(const block::BlockMatrixT<V>& bm,
                          const std::vector<Task>& tasks,
                          const Mapping& mapping,
                          const std::vector<char>& alive,
                          const SimOptions& o) {
  if (o.verify_level == analysis::VerifyLevel::kOff) return Status::ok();
  Status s = analysis::verify_mapping(bm, mapping, alive);
  if (s.is_ok() && o.verify_level == analysis::VerifyLevel::kFull)
    s = analysis::verify_messages(bm, tasks, mapping, alive);
  return s;
}

template <class V>
Status run_sync_free(const block::BlockMatrixT<V>& bm,
                     const std::vector<Task>& tasks,
                     const Mapping& mapping_in, const SimOptions& o,
                     const std::vector<TaskPlan>& plans, SimResult* res) {
  const auto nt = static_cast<index_t>(tasks.size());
  TaskAdjacency g = TaskAdjacency::build(bm, tasks);
  FaultCtx faults(o.faults, o.device, o.n_ranks);

  // Recovery and elastic rebalancing rewrite ownership, so the scheduler
  // works on its own copy.
  Mapping mapping = mapping_in;
  std::vector<char> alive = o.elastic.initially_active(o.n_ranks);
  // Provisioning, not migration: a rank whose first elastic event is an add
  // starts idle, so its blocks are re-homed at zero cost before any work is
  // scheduled (nothing is in flight yet).
  for (rank_t r = 0; r < o.n_ranks; ++r) {
    if (alive[static_cast<std::size_t>(r)]) continue;
    Mapping before = mapping;
    if (mapping.rebalance(r, -1, alive) < 0)
      return Status::resource_exhausted(
          "elastic plan leaves no rank live before the first task");
    Status vs = analysis::verify_rebalance(bm, tasks, before, mapping, r, -1,
                                           alive, o.verify_level);
    if (!vs.is_ok()) return vs;
  }
  std::vector<rank_t> owner(static_cast<std::size_t>(nt));
  for (index_t t = 0; t < nt; ++t)
    owner[static_cast<std::size_t>(t)] =
        mapping.owner[static_cast<std::size_t>(
            tasks[static_cast<std::size_t>(t)].target)];

  // Priority inside a rank: lowest elimination step first ("the most
  // critical of the tasks", §4.4), then enumeration order.
  auto priority_less = [&](index_t a, index_t b) {
    const Task& ta = tasks[static_cast<std::size_t>(a)];
    const Task& tb = tasks[static_cast<std::size_t>(b)];
    if (ta.k != tb.k) return ta.k > tb.k;  // min-heap via greater
    return a > b;
  };
  std::vector<std::priority_queue<index_t, std::vector<index_t>,
                                  decltype(priority_less)>>
      ready;
  ready.reserve(static_cast<std::size_t>(o.n_ranks));
  for (rank_t r = 0; r < o.n_ranks; ++r) ready.emplace_back(priority_less);

  std::vector<double> busy_until(static_cast<std::size_t>(o.n_ranks), 0.0);
  std::vector<double> ready_time(static_cast<std::size_t>(nt), 0.0);
  std::vector<char> done(static_cast<std::size_t>(nt), 0);
  const std::vector<ElasticStep> esteps = elastic_steps(o.elastic);
  std::size_t next_step = 0;

  res->ranks.assign(static_cast<std::size_t>(o.n_ranks), RankStats{});

  std::priority_queue<PendingEvent, std::vector<PendingEvent>,
                      std::greater<PendingEvent>>
      events;
  index_t seq = 0;
  for (index_t t = 0; t < nt; ++t) {
    if (g.dep[static_cast<std::size_t>(t)] == 0)
      events.push({0.0, seq++, t, 0});
  }
  // A dead rank is noticed when its heartbeats stop: schedule the recovery
  // sweep one detection window after each planned crash.
  for (const FaultPlan::Crash& c : o.faults.crashes)
    events.push({c.at_s + o.device.crash_detect_s, seq++, kRecoveryEvent,
                 c.rank});

  double makespan = 0;
  index_t completed = 0;

  // Start the highest-priority queued task of rank r at time `now` (the rank
  // is known to be free). Completion bookkeeping is eager: the dependents'
  // ready times (including message arrival) are computed immediately, and a
  // wake event lets the rank pick its next task when this one finishes.
  auto start_one = [&](rank_t r, double now) -> Status {
    auto& q = ready[static_cast<std::size_t>(r)];
    if (q.empty()) return Status::ok();
    auto& rs = res->ranks[static_cast<std::size_t>(r)];

    // Transient stall: the rank is frozen; try again when it thaws.
    const double thaw = faults.stall_release(r, now);
    if (thaw > now) {
      rs.stall_s += thaw - now;
      res->recovery_time += thaw - now;
      busy_until[static_cast<std::size_t>(r)] = thaw;
      events.push({thaw, seq++, kWakeEvent, r});
      if (o.trace) o.trace->record_instant(r, now, "stall");
      return Status::ok();
    }

    index_t t = q.top();
    const Task& task = tasks[static_cast<std::size_t>(t)];
    const TaskPlan& p = plans[static_cast<std::size_t>(t)];
    const double cost = p.cost * faults.speed_factor(r, now);

    // Release dependents; remote ones pay one message per destination rank.
    // Posting a send also occupies the sender briefly (pack + NIC doorbell),
    // which is what throttles very fine-grained block traffic at high rank
    // counts — the communication-bound regime §5.3 reports at 128 GPUs.
    const CscT<V>& produced = bm.block(task.target);
    const std::size_t msg_bytes =
        block_message_bytes(produced.nnz(), produced.n_cols(), sizeof(V));
    std::vector<rank_t> sent_to;
    for (nnz_t e = g.out_ptr[static_cast<std::size_t>(t)];
         e < g.out_ptr[static_cast<std::size_t>(t) + 1]; ++e) {
      const index_t d = g.out_adj[static_cast<std::size_t>(e)];
      const rank_t dr = owner[static_cast<std::size_t>(d)];
      if (dr != r &&
          std::find(sent_to.begin(), sent_to.end(), dr) == sent_to.end())
        sent_to.push_back(dr);
    }
    const double send_overhead =
        static_cast<double>(sent_to.size()) * 0.5 * o.device.net_latency_s;

    const double fin = now + cost + send_overhead;
    const double crash_at = faults.crash_at[static_cast<std::size_t>(r)];
    if (fin > crash_at) {
      // The rank dies mid-task: the work is lost, the task stays queued for
      // the recovery sweep to re-dispatch, and the rank takes no more work.
      busy_until[static_cast<std::size_t>(r)] = kInf;
      return Status::ok();
    }
    q.pop();
    busy_until[static_cast<std::size_t>(r)] = fin;
    makespan = std::max(makespan, fin);
    if (o.trace)
      o.trace->record({t, task.kind, task.k, task.bi, task.bj, r, now, fin});
    rs.busy += cost + send_overhead;
    if (task.kind == TaskKind::kSsssm)
      res->schur_busy += cost;
    else
      res->panel_busy += cost;
    res->kind_busy[static_cast<int>(task.kind)] += cost;
    res->kind_count[static_cast<int>(task.kind)]++;
    res->total_flops += task.weight;
    done[static_cast<std::size_t>(t)] = 1;
    ++completed;
    // This commit is a task-graph safe point: fire due elastic events when
    // the task finishes (the marker carries the virtual time of the commit).
    if (next_step < esteps.size() &&
        esteps[next_step].at_commit <= completed)
      events.push({fin, seq++, kElasticEvent, r});

    // One physical transfer per destination rank; every dependent on that
    // rank shares the delivered block. Retransmits bill the sender, the
    // receiver absorbs (and suppresses) duplicates so its sync-free counter
    // still decrements exactly once per logical message.
    std::vector<double> deliver_at(sent_to.size());
    for (std::size_t i = 0; i < sent_to.size(); ++i) {
      const rank_t dr = sent_to[i];
      FaultCtx::Transfer tr = faults.transfer(fin, msg_bytes);
      if (!tr.ok) {
        return Status::unavailable(
            "block transfer to rank " + std::to_string(dr) + " lost " +
            std::to_string(o.faults.max_attempts) +
            " consecutive times; giving up");
      }
      deliver_at[i] = tr.deliver;
      rs.messages_sent += tr.sends;
      rs.bytes_sent += static_cast<std::size_t>(tr.sends) * msg_bytes;
      rs.retransmits += tr.sends - 1;
      rs.timeouts += tr.timeouts;
      res->ranks[static_cast<std::size_t>(dr)].duplicates_suppressed +=
          tr.duplicates;
      res->recovery_time += tr.penalty;
      if (o.trace && tr.sends > 1)
        o.trace->record_instant(r, fin, "retransmit x" +
                                            std::to_string(tr.sends - 1));
    }

    for (nnz_t e = g.out_ptr[static_cast<std::size_t>(t)];
         e < g.out_ptr[static_cast<std::size_t>(t) + 1]; ++e) {
      const index_t d = g.out_adj[static_cast<std::size_t>(e)];
      const rank_t dr = owner[static_cast<std::size_t>(d)];
      double arrive = fin;
      if (dr != r) {
        const auto it = std::find(sent_to.begin(), sent_to.end(), dr);
        arrive = deliver_at[static_cast<std::size_t>(
            std::distance(sent_to.begin(), it))];
      }
      auto& rd = ready_time[static_cast<std::size_t>(d)];
      rd = std::max(rd, arrive);
      if (--g.dep[static_cast<std::size_t>(d)] == 0)
        events.push({rd, seq++, d, 0});
    }
    events.push({fin, seq++, kWakeEvent, r});  // wake: pick the next task
    return Status::ok();
  };

  // Crash recovery: declare the rank dead, hand its blocks to the survivors
  // (round-robin, deterministic), re-point every unfinished task at its new
  // owner, and re-dispatch whatever was stranded in the dead rank's queue.
  auto recover = [&](rank_t dead, double now) -> Status {
    if (!alive[static_cast<std::size_t>(dead)]) return Status::ok();
    alive[static_cast<std::size_t>(dead)] = 0;
    if (completed == nt) return Status::ok();  // died after the work finished
    auto& rs = res->ranks[static_cast<std::size_t>(dead)];
    rs.crashed = true;
    res->rank_crashes++;
    const nnz_t moved = mapping.remap_failed_rank(dead, alive);
    if (moved < 0)
      return Status::unavailable(
          "rank " + std::to_string(dead) +
          " crashed and no survivor remains: recovery impossible");
    res->remapped_blocks += moved;
    for (index_t t = 0; t < nt; ++t) {
      if (!done[static_cast<std::size_t>(t)])
        owner[static_cast<std::size_t>(t)] =
            mapping.owner[static_cast<std::size_t>(
                tasks[static_cast<std::size_t>(t)].target)];
    }
    Status vs = verify_after_remap(bm, tasks, mapping, alive, o);
    if (!vs.is_ok()) return vs;
    // Survivors must adopt the orphaned blocks before touching them.
    const double ready_at =
        now + static_cast<double>(moved) * o.device.remap_per_block_s;
    res->recovery_time +=
        ready_at - faults.crash_at[static_cast<std::size_t>(dead)];
    auto& q = ready[static_cast<std::size_t>(dead)];
    while (!q.empty()) {
      const index_t t = q.top();
      q.pop();
      events.push({std::max(ready_at,
                            ready_time[static_cast<std::size_t>(t)]),
                   seq++, t, 0});
      res->recovered_tasks++;
    }
    if (o.trace) {
      o.trace->record_instant(
          dead, faults.crash_at[static_cast<std::size_t>(dead)], "crash");
      o.trace->record_instant(dead, now, "recovery: remap " +
                                             std::to_string(moved) +
                                             " blocks");
    }
    return Status::ok();
  };

  // Planned capacity changes at commit safe points. A drain quiesces the
  // rank (waits out its in-flight task), migrates its blocks to the
  // least-loaded survivors via Mapping::rebalance, re-proves the mapping
  // with the I6 verifier, and re-routes any queued work; an add does the
  // symmetric steal from the most-loaded donors. Crash interleavings are
  // no-ops for the second event: draining a crashed rank has nothing to
  // quiesce (the recovery sweep owns its blocks), and crashing a drained
  // rank finds it already empty.
  auto handle_elastic = [&](double now, bool fire_all) -> Status {
    for (; next_step < esteps.size() &&
           (fire_all || esteps[next_step].at_commit <= completed);
         ++next_step) {
      const ElasticStep& st = esteps[next_step];
      const auto ri = static_cast<std::size_t>(st.rank);
      Mapping before = mapping;
      std::vector<nnz_t> moved_pos;
      nnz_t moved = 0;
      double quiesce = now;
      if (st.is_add) {
        if (alive[ri] || now >= faults.crash_at[ri]) {
          // Already active, or the slot crashed before it could join.
          if (o.trace) o.trace->record_instant(st.rank, now, "add: no-op");
          continue;
        }
        alive[ri] = 1;
        moved = mapping.rebalance(st.rank, +1, alive, &moved_pos);
      } else {
        if (!alive[ri] || now >= faults.crash_at[ri] ||
            busy_until[ri] == kInf) {
          // Drain of a crashed (or crashing) rank: the recovery sweep is
          // responsible for its blocks; the drain itself is a no-op.
          if (o.trace) o.trace->record_instant(st.rank, now, "drain: no-op");
          continue;
        }
        rank_t live = 0;
        for (char a : alive) live += a ? 1 : 0;
        if (live - 1 < o.elastic.min_ranks)
          return Status::resource_exhausted(
              "drain of rank " + std::to_string(st.rank) +
              " at commit " + std::to_string(completed) + " would leave " +
              std::to_string(live - 1) + " live ranks, below min_ranks " +
              std::to_string(o.elastic.min_ranks) + "; load shed");
        // Quiesce: the rank finishes (and ships) its in-flight task before
        // its state migrates; nothing is interrupted mid-kernel.
        quiesce = std::max(now, busy_until[ri]);
        alive[ri] = 0;
        moved = mapping.rebalance(st.rank, -1, alive, &moved_pos);
        if (moved < 0)
          return Status::resource_exhausted(
              "drain of rank " + std::to_string(st.rank) +
              " found no live rank to adopt its blocks");
      }
      for (index_t t = 0; t < nt; ++t) {
        if (!done[static_cast<std::size_t>(t)])
          owner[static_cast<std::size_t>(t)] =
              mapping.owner[static_cast<std::size_t>(
                  tasks[static_cast<std::size_t>(t)].target)];
      }
      Status vs =
          analysis::verify_rebalance(bm, tasks, before, mapping, st.rank,
                                     st.is_add ? +1 : -1, alive,
                                     o.verify_level);
      if (!vs.is_ok()) return vs;
      // Each migrated block travels once over the wire and pays the adopt
      // bookkeeping; with ABFT on, the landed state is audited against its
      // checksum (the replay-integrity check of the migration protocol).
      double tmig = 0;
      for (nnz_t pos : moved_pos) {
        const CscT<V>& blk = bm.block(pos);
        tmig += o.device.message_time(
                    block_message_bytes(blk.nnz(), blk.n_cols(), sizeof(V))) +
                o.device.remap_per_block_s;
        if (o.abft != AbftLevel::kOff) {
          (void)block_checksum(blk);
          res->abft_audits++;
        }
      }
      const double ready_at = quiesce + tmig;
      if (st.is_add) {
        busy_until[ri] = ready_at;
        events.push({ready_at, seq++, kWakeEvent, st.rank});
        res->ranks_added++;
      } else {
        busy_until[ri] = kInf;  // the drained rank takes no more work
        res->ranks_drained++;
      }
      // Re-route queued work through the event queue: owner is read fresh
      // at pop time, so tasks whose target migrated land on the new owner;
      // they become runnable once the migrated state has arrived.
      for (rank_t q = 0; q < o.n_ranks; ++q) {
        auto& rq = ready[static_cast<std::size_t>(q)];
        while (!rq.empty()) {
          const index_t t = rq.top();
          rq.pop();
          const auto tgt = static_cast<std::size_t>(
              tasks[static_cast<std::size_t>(t)].target);
          const bool migrated = before.owner[tgt] != mapping.owner[tgt];
          events.push({std::max(migrated ? ready_at : now,
                                ready_time[static_cast<std::size_t>(t)]),
                       seq++, t, 0});
        }
      }
      res->migrated_blocks += moved;
      res->migration_time += (quiesce - now) + tmig;
      makespan = std::max(makespan, ready_at);
      if (o.trace) {
        o.trace->record_instant(st.rank, now, st.is_add ? "add" : "drain");
        o.trace->record_instant(st.rank, ready_at,
                                "migrate " + std::to_string(moved) +
                                    " blocks");
      }
    }
    return Status::ok();
  };

  // Commit 0 is itself a safe point (events scheduled before any task).
  Status es = handle_elastic(0.0, false);
  if (!es.is_ok()) return es;

  while (!events.empty()) {
    PendingEvent ev = events.top();
    events.pop();
    // Virtual-deadline poll: the DES clock has provably reached ev.time, so
    // a deadline behind it can never be met and the run sheds here.
    if (o.cancel) {
      Status s = o.cancel->check_virtual(ev.time, "sync-free event loop");
      if (!s.is_ok()) return s;
    }
    if (ev.task == kRecoveryEvent) {
      Status s = recover(ev.rank, ev.time);
      if (!s.is_ok()) return s;
      continue;
    }
    if (ev.task == kElasticEvent) {
      Status s = handle_elastic(ev.time, false);
      if (!s.is_ok()) return s;
      continue;
    }
    rank_t r;
    if (ev.task >= 0) {
      r = owner[static_cast<std::size_t>(ev.task)];
      ready[static_cast<std::size_t>(r)].push(ev.task);
    } else {
      r = ev.rank;
    }
    // Events landing on a dead (or dying) rank park in its queue until the
    // recovery sweep drains them to the survivors.
    if (ev.time >= faults.crash_at[static_cast<std::size_t>(r)]) continue;
    if (busy_until[static_cast<std::size_t>(r)] > ev.time + 1e-30)
      continue;  // rank busy; its completion wake will drain the queue
    Status s = start_one(r, ev.time);
    if (!s.is_ok()) return s;
  }
  if (completed != nt) {
    if (!o.faults.empty())
      return Status::unavailable(
          "fault plan left " + std::to_string(nt - completed) +
          " tasks unrunnable");
    PANGULU_CHECK(completed == nt, "sync-free DES deadlocked");
  }
  // Elastic events scheduled past the final commit still fire (the cluster
  // reshapes after the factorisation drains), at the end of the schedule.
  Status esf = handle_elastic(makespan, true);
  if (!esf.is_ok()) return esf;

  res->makespan = makespan;
  for (rank_t r = 0; r < o.n_ranks; ++r) {
    auto& rs = res->ranks[static_cast<std::size_t>(r)];
    rs.idle = makespan - rs.busy;
    res->avg_sync += rs.idle;
    res->max_sync = std::max(res->max_sync, rs.idle);
    res->messages += rs.messages_sent;
    res->bytes += rs.bytes_sent;
  }
  res->avg_sync /= std::max<rank_t>(1, o.n_ranks);
  return Status::ok();
}

template <class V>
Status run_level_set(const block::BlockMatrixT<V>& bm,
                     const std::vector<Task>& tasks,
                     const Mapping& mapping_in, const SimOptions& o,
                     const std::vector<TaskPlan>& plans, SimResult* res) {
  res->ranks.assign(static_cast<std::size_t>(o.n_ranks), RankStats{});
  FaultCtx faults(o.faults, o.device, o.n_ranks);
  Mapping mapping = mapping_in;
  std::vector<char> alive = o.elastic.initially_active(o.n_ranks);
  // Provisioning: ranks that join later start idle; re-home their blocks at
  // zero cost before the first slice.
  for (rank_t r = 0; r < o.n_ranks; ++r) {
    if (alive[static_cast<std::size_t>(r)]) continue;
    Mapping before = mapping;
    if (mapping.rebalance(r, -1, alive) < 0)
      return Status::resource_exhausted(
          "elastic plan leaves no rank live before the first task");
    Status vs = analysis::verify_rebalance(bm, tasks, before, mapping, r, -1,
                                           alive, o.verify_level);
    if (!vs.is_ok()) return vs;
  }
  std::vector<char> crash_handled(o.faults.crashes.size(), 0);
  std::vector<char> stall_applied(o.faults.stalls.size(), 0);

  // Tasks arrive ordered by k; within a slice, phases are
  // GETRF -> {GESSM,TSTRF} -> SSSSM with a barrier after each phase.
  double now = 0;
  std::vector<double> phase_busy(static_cast<std::size_t>(o.n_ranks));
  std::size_t ti = 0;
  const index_t nb = bm.nb();

  // Bulk-synchronous recovery: a crash is noticed at the barrier following
  // it — the survivors pay the detection window plus the re-mapping work,
  // then the (static) owner lookup routes the dead rank's remaining tasks
  // to their adopters.
  auto handle_crashes = [&]() -> Status {
    for (std::size_t c = 0; c < o.faults.crashes.size(); ++c) {
      const FaultPlan::Crash& cr = o.faults.crashes[c];
      if (crash_handled[c] || cr.at_s > now) continue;
      crash_handled[c] = 1;
      if (!alive[static_cast<std::size_t>(cr.rank)]) continue;
      alive[static_cast<std::size_t>(cr.rank)] = 0;
      res->ranks[static_cast<std::size_t>(cr.rank)].crashed = true;
      res->rank_crashes++;
      const nnz_t moved = mapping.remap_failed_rank(cr.rank, alive);
      if (moved < 0)
        return Status::unavailable(
            "rank " + std::to_string(cr.rank) +
            " crashed and no survivor remains: recovery impossible");
      res->remapped_blocks += moved;
      Status vs = verify_after_remap(bm, tasks, mapping, alive, o);
      if (!vs.is_ok()) return vs;
      const double pause = o.device.crash_detect_s +
                           static_cast<double>(moved) * o.device.remap_per_block_s;
      now += pause;
      res->recovery_time += pause;
      if (o.trace) {
        o.trace->record_instant(cr.rank, cr.at_s, "crash");
        o.trace->record_instant(cr.rank, now, "recovery: remap " +
                                                  std::to_string(moved) +
                                                  " blocks");
      }
    }
    return Status::ok();
  };

  // Planned capacity changes. Under bulk-synchronous scheduling every slice
  // boundary is a safe point — all ranks are quiesced at the barrier — so a
  // drain/add due at commit c fires at the first boundary where ti >= c.
  // The static per-task owner lookup then routes work automatically.
  const std::vector<ElasticStep> esteps = elastic_steps(o.elastic);
  std::size_t next_step = 0;
  auto handle_elastic = [&](bool fire_all) -> Status {
    const auto committed = static_cast<index_t>(ti);
    for (; next_step < esteps.size() &&
           (fire_all || esteps[next_step].at_commit <= committed);
         ++next_step) {
      const ElasticStep& st = esteps[next_step];
      const auto ri = static_cast<std::size_t>(st.rank);
      Mapping before = mapping;
      std::vector<nnz_t> moved_pos;
      nnz_t moved = 0;
      if (st.is_add) {
        if (alive[ri] || now >= faults.crash_at[ri]) {
          if (o.trace) o.trace->record_instant(st.rank, now, "add: no-op");
          continue;
        }
        alive[ri] = 1;
        moved = mapping.rebalance(st.rank, +1, alive, &moved_pos);
        res->ranks_added++;
      } else {
        if (!alive[ri] || now >= faults.crash_at[ri]) {
          if (o.trace) o.trace->record_instant(st.rank, now, "drain: no-op");
          continue;
        }
        rank_t live = 0;
        for (char a : alive) live += a ? 1 : 0;
        if (live - 1 < o.elastic.min_ranks)
          return Status::resource_exhausted(
              "drain of rank " + std::to_string(st.rank) + " at commit " +
              std::to_string(committed) + " would leave " +
              std::to_string(live - 1) + " live ranks, below min_ranks " +
              std::to_string(o.elastic.min_ranks) + "; load shed");
        alive[ri] = 0;
        moved = mapping.rebalance(st.rank, -1, alive, &moved_pos);
        if (moved < 0)
          return Status::resource_exhausted(
              "drain of rank " + std::to_string(st.rank) +
              " found no live rank to adopt its blocks");
        res->ranks_drained++;
      }
      Status vs =
          analysis::verify_rebalance(bm, tasks, before, mapping, st.rank,
                                     st.is_add ? +1 : -1, alive,
                                     o.verify_level);
      if (!vs.is_ok()) return vs;
      double tmig = 0;
      for (nnz_t pos : moved_pos) {
        const CscT<V>& blk = bm.block(pos);
        tmig += o.device.message_time(
                    block_message_bytes(blk.nnz(), blk.n_cols(), sizeof(V))) +
                o.device.remap_per_block_s;
        if (o.abft != AbftLevel::kOff) {
          (void)block_checksum(blk);
          res->abft_audits++;
        }
      }
      now += tmig;
      res->migrated_blocks += moved;
      res->migration_time += tmig;
      if (o.trace) {
        o.trace->record_instant(st.rank, now, st.is_add ? "add" : "drain");
        o.trace->record_instant(st.rank, now,
                                "migrate " + std::to_string(moved) +
                                    " blocks");
      }
    }
    return Status::ok();
  };

  for (index_t k = 0; k < nb && ti < tasks.size(); ++k) {
    // Virtual-deadline poll at the slice barrier: every rank is quiesced
    // here, so shedding leaves no phase half-scheduled.
    if (o.cancel) {
      Status cps = o.cancel->check_virtual(
          now, ("level-set slice " + std::to_string(k)).c_str());
      if (!cps.is_ok()) return cps;
    }
    Status cs = handle_crashes();
    if (!cs.is_ok()) return cs;
    cs = handle_elastic(false);
    if (!cs.is_ok()) return cs;
    for (int phase = 0; phase < 3; ++phase) {
      std::fill(phase_busy.begin(), phase_busy.end(), 0.0);
      // A transient stall freezes its rank for the phase in which it fires;
      // under bulk-synchronous barriers everyone then waits it out.
      for (std::size_t si = 0; si < o.faults.stalls.size(); ++si) {
        const FaultPlan::Stall& st = o.faults.stalls[si];
        if (stall_applied[si] || st.at_s > now ||
            !alive[static_cast<std::size_t>(st.rank)])
          continue;
        stall_applied[si] = 1;
        phase_busy[static_cast<std::size_t>(st.rank)] += st.duration_s;
        res->ranks[static_cast<std::size_t>(st.rank)].stall_s += st.duration_s;
        res->recovery_time += st.duration_s;
        if (o.trace) o.trace->record_instant(st.rank, now, "stall");
      }
      std::size_t begin = ti;
      while (ti < tasks.size() && tasks[ti].k == k) {
        const TaskKind kind = tasks[ti].kind;
        const int task_phase = kind == TaskKind::kGetrf ? 0
                               : kind == TaskKind::kSsssm ? 2
                                                          : 1;
        if (task_phase != phase) break;
        const Task& task = tasks[ti];
        const rank_t r =
            mapping.owner[static_cast<std::size_t>(task.target)];
        const double cost =
            plans[ti].cost * faults.speed_factor(r, now);
        // Remote sources must be fetched at phase start: one message per
        // distinct remote source block (panel: diag; SSSSM: both solves),
        // each riding the ack/retransmit protocol.
        double comm = 0;
        Status ferr = Status::ok();
        auto charge_fetch = [&](nnz_t src) {
          if (src < 0 || !ferr.is_ok()) return;
          const rank_t sr = mapping.owner[static_cast<std::size_t>(src)];
          if (sr == r) return;
          const CscT<V>& blk = bm.block(src);
          const std::size_t bytes =
              block_message_bytes(blk.nnz(), blk.n_cols(), sizeof(V));
          FaultCtx::Transfer tr = faults.transfer(now, bytes);
          if (!tr.ok) {
            ferr = Status::unavailable(
                "block fetch from rank " + std::to_string(sr) + " lost " +
                std::to_string(o.faults.max_attempts) +
                " consecutive times; giving up");
            return;
          }
          comm += o.device.message_time(bytes) + tr.penalty;
          auto& ss = res->ranks[static_cast<std::size_t>(sr)];
          ss.messages_sent += tr.sends;
          ss.bytes_sent += static_cast<std::size_t>(tr.sends) * bytes;
          ss.retransmits += tr.sends - 1;
          ss.timeouts += tr.timeouts;
          res->ranks[static_cast<std::size_t>(r)].duplicates_suppressed +=
              tr.duplicates;
          res->recovery_time += tr.penalty;
          if (o.trace && tr.sends > 1)
            o.trace->record_instant(sr, now, "retransmit x" +
                                                 std::to_string(tr.sends - 1));
        };
        charge_fetch(task.src_a);
        if (task.kind == TaskKind::kSsssm) charge_fetch(task.src_b);
        if (!ferr.is_ok()) return ferr;

        if (o.trace) {
          const double start =
              now + phase_busy[static_cast<std::size_t>(r)] + comm;
          o.trace->record({static_cast<index_t>(ti), task.kind, task.k,
                           task.bi, task.bj, r, start, start + cost});
        }
        phase_busy[static_cast<std::size_t>(r)] += cost + comm;
        auto& rs = res->ranks[static_cast<std::size_t>(r)];
        rs.busy += cost;
        if (task.kind == TaskKind::kSsssm)
          res->schur_busy += cost;
        else
          res->panel_busy += cost;
        res->kind_busy[static_cast<int>(task.kind)] += cost;
        res->kind_count[static_cast<int>(task.kind)]++;
        res->total_flops += task.weight;
        ++ti;
      }
      if (ti == begin && phase != 0) continue;  // empty phase: no barrier
      double phase_max = 0;
      for (double b : phase_busy) phase_max = std::max(phase_max, b);
      // Barrier: everyone waits for the slowest rank.
      for (rank_t r = 0; r < o.n_ranks; ++r) {
        res->ranks[static_cast<std::size_t>(r)].idle +=
            phase_max - phase_busy[static_cast<std::size_t>(r)];
      }
      now += phase_max + o.device.barrier_time(o.n_ranks);
    }
  }
  PANGULU_CHECK(ti == tasks.size(), "level-set missed tasks");
  // A crash that raced the final slices is still detected and re-mapped
  // (the survivors restore the block distribution after the last barrier),
  // and elastic events scheduled past the final commit still fire.
  Status cs = handle_crashes();
  if (!cs.is_ok()) return cs;
  cs = handle_elastic(true);
  if (!cs.is_ok()) return cs;

  res->makespan = now;
  for (rank_t r = 0; r < o.n_ranks; ++r) {
    auto& rs = res->ranks[static_cast<std::size_t>(r)];
    // Include barrier overhead in idle accounting.
    res->avg_sync += rs.idle;
    res->max_sync = std::max(res->max_sync, rs.idle);
    res->messages += rs.messages_sent;
    res->bytes += rs.bytes_sent;
  }
  res->avg_sync /= std::max<rank_t>(1, o.n_ranks);
  return Status::ok();
}

}  // namespace

index_t young_daly_interval_tasks(double mtbf_seconds,
                                  double checkpoint_cost_seconds,
                                  double seconds_per_task, index_t n_tasks) {
  if (mtbf_seconds <= 0 || checkpoint_cost_seconds <= 0 ||
      seconds_per_task <= 0 || n_tasks <= 0)
    return 0;
  // Young/Daly first-order optimum: checkpoint every sqrt(2 * C * MTBF)
  // seconds of useful work, expressed here in canonical tasks.
  const double tau =
      std::sqrt(2.0 * checkpoint_cost_seconds * mtbf_seconds);
  const double tasks = std::round(tau / seconds_per_task);
  if (tasks <= 1) return 1;
  if (tasks >= static_cast<double>(n_tasks)) return n_tasks;
  return static_cast<index_t>(tasks);
}

template <class V>
Status simulate_factorization(block::BlockMatrixT<V>& bm,
                              const std::vector<Task>& tasks,
                              const Mapping& mapping, const SimOptions& opts,
                              SimResult* result) {
  *result = SimResult{};
  if (opts.n_ranks < 1)
    return Status::invalid_argument("n_ranks must be >= 1");
  if (mapping.n_ranks != opts.n_ranks)
    return Status::invalid_argument("mapping rank count mismatch");
  Status fv = opts.faults.validate(opts.n_ranks);
  if (!fv.is_ok()) return fv;
  // Static load-shed check: an over-draining plan is rejected with
  // kResourceExhausted here, before any work runs (crash interactions are
  // re-checked dynamically at each drain's safe point). Forced-schedule
  // replays skip it: the protocol interpreter enforces every elastic guard
  // dynamically, including the (test-only) mutated variants whose whole
  // point is an over-draining schedule.
  if (opts.forced_schedule.empty()) {
    Status ev = opts.elastic.validate(opts.n_ranks);
    if (!ev.is_ok()) return ev;
  }
  if (opts.mtbf_seconds < 0)
    return Status::invalid_argument("mtbf_seconds must be >= 0");

  const auto nt = static_cast<index_t>(tasks.size());
  std::vector<TaskPlan> plans(static_cast<std::size_t>(nt));
  for (index_t t = 0; t < nt; ++t)
    plans[static_cast<std::size_t>(t)] =
        plan_task(tasks[static_cast<std::size_t>(t)], bm, opts);

  // Forced-schedule replay (model-checker counterexamples): drive the
  // protocol interpreter through the explicit event list *before* any
  // numerics run, so a violating schedule fails fast with the violated
  // property and never touches the factors.
  std::optional<analysis::ReplayResult> forced;
  if (!opts.forced_schedule.empty()) {
    analysis::ModelOptions mo;
    mo.elastic = flatten_elastic(opts.elastic);
    mo.min_ranks = opts.elastic.min_ranks;
    mo.initially_alive = opts.elastic.initially_active(opts.n_ranks);
    mo.mutations = opts.protocol_mutations;
    analysis::ReplayResult rr =
        analysis::replay_schedule(bm, tasks, mapping, mo,
                                  opts.forced_schedule);
    if (!rr.feasible)
      return Status::invalid_argument("forced schedule is infeasible: " +
                                      rr.infeasible_reason);
    if (rr.property != analysis::ProtoProperty::kNone)
      return Status::invariant_violation(
          std::string("protocol violation [") +
          analysis::to_string(rr.property) + "]: " + rr.detail);
    if (!rr.all_committed)
      return Status::invalid_argument(
          "forced schedule is incomplete: only " +
          std::to_string(rr.commits) + " of " + std::to_string(nt) +
          " tasks committed");
    forced = rr;
  }

  // Numerics run once, in canonical (enumeration) order — a fixed
  // topological order of the dependency DAG — before the virtual-time
  // replay. The factors therefore never depend on the simulated schedule:
  // rank count, scheduling mode, stragglers, retransmissions, and crash
  // recovery change only the clock, so any recoverable fault plan is
  // guaranteed to reproduce the fault-free factors bit for bit. The same
  // canonical clock carries the robustness machinery: every commit boundary
  // is a task-graph safe point, so checkpoints, ABFT audits, injected bit
  // flips and simulated process kills all key off the task index.
  if (opts.execute_numerics) {
    PANGULU_CHECK(block::is_topological_order(bm, tasks),
                  "task enumeration order must be topological");
    if (opts.resume_from_task < 0 || opts.resume_from_task > nt)
      return Status::invalid_argument("resume_from_task out of range");
    if (opts.checkpoint_interval_tasks < 0)
      return Status::invalid_argument("checkpoint interval must be >= 0");
    // Young/Daly cadence: with an MTBF configured but no explicit interval,
    // derive the optimum from the snapshot cost (bytes at the device's
    // checkpoint-write rate) and the mean virtual task cost.
    index_t ckpt_interval = opts.checkpoint_interval_tasks;
    if (ckpt_interval == 0 && opts.checkpoint_sink &&
        opts.mtbf_seconds > 0 && nt > 0) {
      double total_cost = 0;
      for (const TaskPlan& p : plans) total_cost += p.cost;
      double snapshot_bytes = 0;
      for (nnz_t pos = 0; pos < static_cast<nnz_t>(bm.n_blocks()); ++pos)
        snapshot_bytes +=
            static_cast<double>(bm.block(pos).nnz()) * sizeof(V);
      snapshot_bytes += static_cast<double>(bm.n_blocks()) *
                        (sizeof(index_t) + sizeof(nnz_t));
      const double ckpt_cost =
          snapshot_bytes / opts.device.checkpoint_write_bps;
      ckpt_interval = young_daly_interval_tasks(
          opts.mtbf_seconds, ckpt_cost,
          total_cost / static_cast<double>(nt), nt);
    }
    kernels::Workspace ws;
    kernels::PivotStats pivots;

    // The ABFT repair path replays tasks with the *same* resolved plan as
    // the original execution (and a scratch workspace/pivot counter, so a
    // repair never perturbs the primary run's state or statistics) — the
    // recomputed block is bitwise identical to the uncorrupted one.
    kernels::Workspace replay_ws;
    std::optional<AbftGuardT<V>> guard;
    if (opts.abft != AbftLevel::kOff) {
      guard.emplace(bm, tasks, opts.abft, opts.resume_from_task,
                    [&](index_t u) -> Status {
                      kernels::PivotStats scratch;
                      return run_numerics(tasks[static_cast<std::size_t>(u)],
                                          plans[static_cast<std::size_t>(u)],
                                          bm, replay_ws, &scratch,
                                          opts.pivot_tol);
                    });
    }
    auto finish_abft = [&] {
      if (!guard) return;
      result->abft_audits = guard->stats().audits;
      result->abft_detected = guard->stats().detected;
      result->abft_recomputed = guard->stats().recomputed;
    };

    // Bit flips keyed to commit indices, in injection order. Flips at
    // indices before the resume point already happened in the killed run.
    std::vector<FaultPlan::BitFlip> flips = opts.faults.bitflips;
    std::stable_sort(flips.begin(), flips.end(),
                     [](const FaultPlan::BitFlip& a,
                        const FaultPlan::BitFlip& b) {
                       return a.after_task < b.after_task;
                     });
    std::size_t fi = 0;
    while (fi < flips.size() &&
           flips[fi].after_task < opts.resume_from_task)
      ++fi;

    // Worthiness floor for the default cadence: wall-clock work since the
    // last snapshot (or the phase start). Only read at safe points.
    Timer ckpt_elapsed;

    for (index_t t = opts.resume_from_task; t < nt; ++t) {
      // Cooperative cancellation at the commit safe point: nothing from
      // task t onward has been committed, the factor arrays are simply
      // abandoned with the run (the caller never flips its published flag).
      if (opts.cancel) {
        Status s = opts.cancel->check(
            ("factorization commit safe point " + std::to_string(t)).c_str());
        if (!s.is_ok()) {
          finish_abft();
          return s;
        }
      }
      if (guard) {
        Status s = guard->before_task(t);
        if (!s.is_ok()) {
          finish_abft();
          return s;
        }
      }
      Status s = run_numerics(tasks[static_cast<std::size_t>(t)],
                              plans[static_cast<std::size_t>(t)], bm, ws,
                              &pivots, opts.pivot_tol);
      if (!s.is_ok()) {
        finish_abft();
        return s;
      }
      if (guard) guard->after_task(t);
      // Inject silent corruption *after* the commit's checksum is recorded:
      // the flip lands between a legitimate write and the next read, which
      // is exactly the window real bit flips occupy.
      for (; fi < flips.size() && flips[fi].after_task == t; ++fi) {
        const FaultPlan::BitFlip& f = flips[fi];
        if (f.block_pos >= static_cast<nnz_t>(bm.n_blocks())) continue;
        auto vals = bm.block(f.block_pos).values_mut();
        if (f.value_index >= static_cast<nnz_t>(vals.size())) continue;
        // Flip one bit of the stored value at its native width; bit indices
        // past the FP32 word wrap so FP64-era fault plans stay usable.
        if constexpr (sizeof(V) == 4) {
          std::uint32_t bits;
          std::memcpy(&bits, &vals[static_cast<std::size_t>(f.value_index)],
                      sizeof bits);
          bits ^= std::uint32_t(1) << (f.bit % 32);
          std::memcpy(&vals[static_cast<std::size_t>(f.value_index)], &bits,
                      sizeof bits);
        } else {
          std::uint64_t bits;
          std::memcpy(&bits, &vals[static_cast<std::size_t>(f.value_index)],
                      sizeof bits);
          bits ^= std::uint64_t(1) << f.bit;
          std::memcpy(&vals[static_cast<std::size_t>(f.value_index)], &bits,
                      sizeof bits);
        }
      }
      const index_t done = t + 1;
      if (ckpt_interval > 0 && opts.checkpoint_sink &&
          done % ckpt_interval == 0 && done < nt &&
          (opts.checkpoint_min_elapsed_seconds <= 0 ||
           ckpt_elapsed.seconds() >= opts.checkpoint_min_elapsed_seconds)) {
        Status cs = opts.checkpoint_sink(done);
        if (!cs.is_ok()) {
          finish_abft();
          return cs;
        }
        ++result->checkpoints_written;
        ckpt_elapsed.reset();
      }
      if (opts.faults.kill_after_task >= 0 &&
          done == opts.faults.kill_after_task) {
        finish_abft();
        return Status::unavailable(
            "simulated process kill after canonical task " +
            std::to_string(done) + " of " + std::to_string(nt));
      }
    }
    if (guard) {
      Status s = guard->final_sweep();
      finish_abft();
      if (!s.is_ok()) return s;
    }
    result->perturbed_pivots = pivots.perturbed;
  }

  if (forced) {
    // Protocol-level replay: no virtual clock, so makespan is the serial
    // sum of canonical task costs; protocol counters come from the replay.
    result->ranks.assign(static_cast<std::size_t>(opts.n_ranks),
                         RankStats{});
    double mk = 0;
    for (index_t t = 0; t < nt; ++t) {
      const Task& task = tasks[static_cast<std::size_t>(t)];
      const double cost = plans[static_cast<std::size_t>(t)].cost;
      mk += cost;
      if (task.kind == TaskKind::kSsssm)
        result->schur_busy += cost;
      else
        result->panel_busy += cost;
      result->kind_busy[static_cast<int>(task.kind)] += cost;
      result->kind_count[static_cast<int>(task.kind)]++;
      result->total_flops += task.weight;
    }
    result->makespan = mk;
    result->messages = forced->messages;
    result->retransmits = forced->retransmits;
    result->duplicates_suppressed = forced->duplicates_suppressed;
    result->rank_crashes = forced->rank_crashes;
    result->remapped_blocks = forced->remapped_blocks;
    result->ranks_drained = forced->ranks_drained;
    result->ranks_added = forced->ranks_added;
    result->migrated_blocks = forced->migrated_blocks;
    if (result->checkpoints_written == 0)
      result->checkpoints_written = forced->checkpoints;
    return Status::ok();
  }

  Status s = opts.schedule == ScheduleMode::kSyncFree
                 ? run_sync_free(bm, tasks, mapping, opts, plans, result)
                 : run_level_set(bm, tasks, mapping, opts, plans, result);
  if (!s.is_ok()) return s;
  for (const RankStats& rs : result->ranks) {
    result->retransmits += rs.retransmits;
    result->timeouts += rs.timeouts;
    result->duplicates_suppressed += rs.duplicates_suppressed;
  }
  return Status::ok();
}

template Status simulate_factorization(block::BlockMatrixT<float>&,
                                       const std::vector<Task>&,
                                       const Mapping&, const SimOptions&,
                                       SimResult*);
template Status simulate_factorization(block::BlockMatrixT<double>&,
                                       const std::vector<Task>&,
                                       const Mapping&, const SimOptions&,
                                       SimResult*);

}  // namespace pangulu::runtime
