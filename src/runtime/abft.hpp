// Algorithm-based fault tolerance for the numeric phase: per-block value
// checksums, audited at task-completion boundaries.
//
// The canonical execution order (runtime/sim.cpp) makes silent-corruption
// recovery tractable: every block's current value state is a deterministic
// function of (its state when the guard was armed) and (the canonical tasks
// targeting it that have committed since). The guard records a checksum for
// every block when armed and re-records a block's checksum each time a task
// commits into it. An audit that finds a mismatched block — a bit flipped
// under us between the commit and the read — restores the block's armed-time
// values and replays its committed tasks through the caller-supplied runner
// (which reuses the exact kernel variants of the original run, so the
// recomputed block is bitwise identical to the uncorrupted one). Only when
// replay cannot reproduce the recorded checksum, or a source block is itself
// unrecoverable, does the audit fail with StatusCode::kDataCorruption.
//
// Audit levels mirror analysis::VerifyLevel:
//   kOff   — no checksums, no audits (zero overhead).
//   kCheap — before each task, audit the blocks the task *reads* (its
//            sources); corruption is caught before it can propagate.
//   kFull  — kCheap plus an audit of the task's target before it commits,
//            and a final sweep over every block after the last task (so
//            corruption in blocks nothing reads any more is still caught).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "block/layout.hpp"
#include "block/tasks.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace pangulu::runtime {

enum class AbftLevel { kOff = 0, kCheap = 1, kFull = 2 };

/// FNV-1a 64 over the block's raw value bytes: exact (any single bit flip
/// changes the sum), cheap (one pass, no multiplies per bit), and
/// deterministic across hosts of the same endianness.
template <class V>
std::uint64_t block_checksum(const CscT<V>& blk);

struct AbftStats {
  std::int64_t audits = 0;       // blocks checksummed during audits
  std::int64_t detected = 0;     // audits that found a mismatch
  std::int64_t recomputed = 0;   // blocks successfully rebuilt by replay
};

/// Arms checksums over `bm` and audits/repairs it as canonical tasks commit.
/// `first_task` is the canonical index the run starts from (0 for a fresh
/// factorisation, `tasks_done` for a resumed one): the armed-time block
/// values are the replay baseline, so recovery only ever replays tasks in
/// [first_task, last committed].
template <class V>
class AbftGuardT {
 public:
  /// `runner(t)` must re-execute canonical task `t`'s numerics with the same
  /// kernel variant as the original run (bitwise reproducibility is the
  /// whole point); it must not touch blocks other than t's target.
  using TaskRunner = std::function<Status(index_t)>;

  AbftGuardT(block::BlockMatrixT<V>& bm, const std::vector<block::Task>& tasks,
             AbftLevel level, index_t first_task, TaskRunner runner);

  /// Audit the blocks task `t` is about to read (and, at kFull, its target).
  Status before_task(index_t t);

  /// Task `t` has committed: re-record its target's checksum and advance the
  /// replay cursor.
  void after_task(index_t t);

  /// kFull only: audit every stored block (catches flips in blocks no
  /// remaining task reads). A no-op at kCheap.
  Status final_sweep();

  const AbftStats& stats() const { return stats_; }

 private:
  /// Verify block `pos` against its recorded checksum; on mismatch, restore
  /// the armed-time values and replay its committed tasks (recursively
  /// ensuring their source blocks are clean first). `depth` bounds the
  /// recursion against pathological corruption storms.
  Status ensure_clean(nnz_t pos, int depth);

  block::BlockMatrixT<V>& bm_;
  const std::vector<block::Task>& tasks_;
  AbftLevel level_;
  index_t first_task_;
  index_t cursor_;  // tasks [first_task_, cursor_) have committed
  TaskRunner runner_;
  std::vector<std::uint64_t> sum_;            // recorded checksum per block
  std::vector<std::vector<V>> base_;          // armed-time values per block
  // CSR: tasks targeting each block, in canonical order.
  std::vector<nnz_t> by_block_ptr_;
  std::vector<index_t> by_block_task_;
  AbftStats stats_;
};

using AbftGuard = AbftGuardT<value_t>;

}  // namespace pangulu::runtime
