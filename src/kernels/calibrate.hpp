// Decision-tree threshold calibration. The paper builds its Figure 8 trees
// "according to a large amount of performance data"; this module is that
// measurement step: `autotune_thresholds` microbenchmarks every kernel
// variant on synthetic blocks across an nnz/density grid, fits the
// pairwise crossover points with `fit_crossover`, and writes them into a
// `SelectorThresholds` that can be persisted with `save_thresholds` and
// loaded into a solver run via `SolverOptions::thresholds_file`.
//
// Calibration is precision-aware (DESIGN.md §14): FP32 kernels shift every
// crossover (half the bytes per entry moves the bandwidth/latency balance),
// so `AutotuneOptions::precision` selects the value type the microbench
// runs at and the threshold file records which precision produced it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/selector.hpp"
#include "parallel/thread_pool.hpp"
#include "util/status.hpp"

namespace pangulu::kernels {

/// One measurement: the selection metric of a block (nnz or FLOPs) and the
/// observed execution time of the two candidate kernels on it.
struct PairedSample {
  metric_t metric;
  seconds_t time_low;   // kernel preferred below the threshold
  seconds_t time_high;  // kernel preferred above the threshold
};

/// Fit the threshold minimising total execution time when every block with
/// metric < threshold runs the "low" kernel and the rest run the "high"
/// kernel. Returns the optimal cut (midpoint between adjacent metrics, or
/// +/-inf-like extremes when one kernel dominates everywhere).
metric_t fit_crossover(std::vector<PairedSample> samples);

/// Total time of a sample set under a given threshold (exposed for tests
/// and for reporting the improvement a refit achieves).
seconds_t policy_cost(const std::vector<PairedSample>& samples,
                      metric_t threshold);

/// Microbenchmark grid for autotune_thresholds. The defaults finish in a
/// few hundred milliseconds; benches widen them for better fits.
struct AutotuneOptions {
  std::vector<index_t> sizes = {48, 96, 160};    // block dimension n
  std::vector<metric_t> densities = {0.02, 0.08, 0.2};
  int repeats = 3;            // min-of-repeats wall clock per variant
  std::uint64_t seed = 1234;  // synthetic block generator seed
  /// Value type the microbenchmarks execute at. kMixedIR calibrates the
  /// FP32 kernels (its numeric phase runs entirely in FP32).
  Precision precision = Precision::kDouble;
};

/// One fitted decision boundary, for reporting/tests.
struct AutotuneEntry {
  std::string family;    // "getrf" | "gessm" | "tstrf" | "ssssm"
  std::string boundary;  // e.g. "C_V1|G_V1"
  metric_t threshold;    // fitted metric cut
  int samples;           // paired measurements behind the fit
};

struct AutotuneReport {
  std::vector<AutotuneEntry> entries;
};

/// Time every kernel variant over the grid and refit all selector
/// thresholds. Thresholds are clamped to >= 1 and made monotone along each
/// family's decision chain so the resulting tree is always well-formed;
/// every variant the tuned selector can return exists and is equivalence-
/// tested. `pool` backs the G_ variants (global pool when null).
Status autotune_thresholds(const AutotuneOptions& opts,
                           SelectorThresholds* out,
                           AutotuneReport* report = nullptr,
                           ThreadPool* pool = nullptr);

/// Persist thresholds as "key value" lines ('#' comments allowed). Values
/// round-trip exactly (17 significant digits). A `precision` line records
/// which value type the thresholds were calibrated for.
Status save_thresholds(const std::string& path, const SelectorThresholds& t,
                       Precision precision = Precision::kDouble);

/// Load thresholds written by save_thresholds. Unknown keys are an error;
/// keys absent from the file keep their current value in `out`. Files
/// written before the precision field default to FP64: `*file_precision`
/// (when requested) is kDouble unless the file carries a `precision` line.
Status load_thresholds(const std::string& path, SelectorThresholds* out,
                       Precision* file_precision = nullptr);

}  // namespace pangulu::kernels
