// Decision-tree threshold calibration. The paper builds its Figure 8 trees
// "according to a large amount of performance data"; this module provides
// the refitting step so a deployment can re-derive the cut-points from
// measurements on its own hardware (see bench_fig07_kernels, which refits
// the CPU/GPU crossovers from wall-clock samples).
#pragma once

#include <vector>

#include "kernels/selector.hpp"

namespace pangulu::kernels {

/// One measurement: the selection metric of a block (nnz or FLOPs) and the
/// observed execution time of the two candidate kernels on it.
struct PairedSample {
  double metric;
  double time_low;   // kernel preferred below the threshold
  double time_high;  // kernel preferred above the threshold
};

/// Fit the threshold minimising total execution time when every block with
/// metric < threshold runs the "low" kernel and the rest run the "high"
/// kernel. Returns the optimal cut (midpoint between adjacent metrics, or
/// +/-inf-like extremes when one kernel dominates everywhere).
double fit_crossover(std::vector<PairedSample> samples);

/// Total time of a sample set under a given threshold (exposed for tests
/// and for reporting the improvement a refit achieves).
double policy_cost(const std::vector<PairedSample>& samples, double threshold);

}  // namespace pangulu::kernels
