#include "kernels/selector.hpp"

namespace pangulu::kernels {

GetrfVariant select_getrf(nnz_t nnz_a, const SelectorThresholds& t) {
  const auto nz = static_cast<metric_t>(nnz_a);
  if (nz < t.getrf_cpu_nnz) return GetrfVariant::kCV1;
  if (nz < t.getrf_gv1_nnz) return GetrfVariant::kGV1;
  return GetrfVariant::kGV2;
}

PanelVariant select_gessm(nnz_t nnz_b, nnz_t nnz_diag,
                          const SelectorThresholds& t) {
  const auto nz = static_cast<metric_t>(nnz_b);
  // A very large diagonal block would not fit GPU memory alongside the
  // panel: stay on the CPU kernels (the "nnz_A < 5e6" guard of Figure 8).
  if (static_cast<metric_t>(nnz_diag) >= t.panel_huge_diag_nnz)
    return nz < t.gessm_cv1_nnz ? PanelVariant::kCV1 : PanelVariant::kCV2;
  if (nz < t.gessm_cv1_nnz) return PanelVariant::kCV1;
  if (nz < t.gessm_cv2_nnz) return PanelVariant::kCV2;
  if (nz < t.gessm_gv1_nnz) return PanelVariant::kGV1;
  if (nz < t.gessm_gv4_nnz) return PanelVariant::kGV4;
  if (nz < t.gessm_gv2_nnz) return PanelVariant::kGV2;
  return PanelVariant::kGV3;
}

PanelVariant select_tstrf(nnz_t nnz_b, nnz_t nnz_diag,
                          const SelectorThresholds& t) {
  const auto nz = static_cast<metric_t>(nnz_b);
  if (static_cast<metric_t>(nnz_diag) >= t.panel_huge_diag_nnz)
    return nz < t.tstrf_cv1_nnz ? PanelVariant::kCV1 : PanelVariant::kCV2;
  if (nz < t.tstrf_cv1_nnz) return PanelVariant::kCV1;
  if (nz < t.tstrf_cv2_nnz) return PanelVariant::kCV2;
  if (nz < t.tstrf_gv1_nnz) return PanelVariant::kGV1;
  if (nz < t.tstrf_gv4_nnz) return PanelVariant::kGV4;
  if (nz < t.tstrf_gv2_nnz) return PanelVariant::kGV2;
  return PanelVariant::kGV3;
}

SsssmVariant select_ssssm(metric_t flops, const SelectorThresholds& t) {
  if (flops < t.ssssm_cv2_flops) return SsssmVariant::kCV2;
  if (flops < t.ssssm_cv3_flops) return SsssmVariant::kCV3;
  if (flops < t.ssssm_cv1_flops) return SsssmVariant::kCV1;
  if (flops < t.ssssm_gv1_flops) return SsssmVariant::kGV1;
  return SsssmVariant::kGV2;
}

}  // namespace pangulu::kernels
