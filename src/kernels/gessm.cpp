#include "kernels/gessm.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "parallel/parallel_for.hpp"
#include "sparse/dense.hpp"

namespace pangulu::kernels {

namespace {

/// Dense-column fast path shared by every addressing strategy: when B's
/// column holds every row of the block, a row IS its value position (jb + r)
/// — no slot map, search or merge needed — and a fully dense strictly-lower
/// tail of L's pivot column turns the update into a contiguous axpy, the
/// vectorizable bandwidth-bound loop where the FP32 instantiation moves half
/// the bytes of FP64 (DESIGN.md §14). The floating-point operation sequence
/// is identical to the addressing variants', so results stay bitwise equal.
/// Returns false when B(:,j) is not dense.
template <class V>
bool solve_column_dense(const CscT<V>& l, CscT<V>& b, index_t j) {
  const nnz_t jb = b.col_begin(j), je = b.col_end(j);
  const index_t n = b.n_rows();
  if (je - jb != static_cast<nnz_t>(n)) return false;
  V* PANGULU_RESTRICT bv = b.values_mut().data() + static_cast<std::size_t>(jb);
  auto lrows = l.row_idx();
  const V* lvals = l.values().data();
  for (index_t k = 0; k < n; ++k) {
    const V xk = bv[static_cast<std::size_t>(k)];  // final: unit diag
    if (xk == V(0)) continue;
    nnz_t lq = l.col_begin(k);
    const nnz_t lend = l.col_end(k);
    while (lq < lend && lrows[static_cast<std::size_t>(lq)] <= k) ++lq;
    if (lend - lq == static_cast<nnz_t>(n - k - 1)) {
      const V* PANGULU_RESTRICT lc = lvals + static_cast<std::size_t>(lq);
      V* PANGULU_RESTRICT bt = bv + static_cast<std::size_t>(k) + 1;
      const index_t m = n - k - 1;
      for (index_t i = 0; i < m; ++i)
        bt[static_cast<std::size_t>(i)] -= lc[static_cast<std::size_t>(i)] * xk;
    } else {
      for (; lq < lend; ++lq)
        bv[static_cast<std::size_t>(lrows[static_cast<std::size_t>(lq)])] -=
            lvals[static_cast<std::size_t>(lq)] * xk;
    }
  }
  return true;
}

/// Solve one column of B with Merge addressing: for each pivot row k of the
/// column (ascending), merge L(:,k)'s strictly-lower rows against the tail
/// of B's column pattern with two pointers.
template <class V>
void solve_column_merge(const CscT<V>& l, CscT<V>& b, index_t j) {
  if (solve_column_dense(l, b, j)) return;
  auto brows = b.row_idx();
  auto bvals = b.values_mut();
  auto lrows = l.row_idx();
  auto lvals = l.values();
  const nnz_t jb = b.col_begin(j), je = b.col_end(j);
  for (nnz_t p = jb; p < je; ++p) {
    const index_t k = brows[static_cast<std::size_t>(p)];
    const V xk = bvals[static_cast<std::size_t>(p)];  // final: unit diag
    if (xk == V(0)) continue;
    // Merge L(:,k) strict-lower with B(:,j) rows after position p.
    nnz_t lq = l.col_begin(k);
    const nnz_t lend = l.col_end(k);
    while (lq < lend && lrows[static_cast<std::size_t>(lq)] <= k) ++lq;
    nnz_t bq = p + 1;
    while (lq < lend && bq < je) {
      const index_t lr = lrows[static_cast<std::size_t>(lq)];
      const index_t br = brows[static_cast<std::size_t>(bq)];
      if (lr == br) {
        bvals[static_cast<std::size_t>(bq)] -=
            lvals[static_cast<std::size_t>(lq)] * xk;
        ++lq;
        ++bq;
      } else if (lr < br) {
        ++lq;
      } else {
        ++bq;
      }
    }
  }
}

/// Solve one column with Bin-search addressing: each L entry locates its
/// target row in B's column by binary search.
template <class V>
void solve_column_binsearch(const CscT<V>& l, CscT<V>& b, index_t j) {
  if (solve_column_dense(l, b, j)) return;
  auto brows = b.row_idx();
  auto bvals = b.values_mut();
  auto lrows = l.row_idx();
  auto lvals = l.values();
  const nnz_t jb = b.col_begin(j), je = b.col_end(j);
  for (nnz_t p = jb; p < je; ++p) {
    const index_t k = brows[static_cast<std::size_t>(p)];
    const V xk = bvals[static_cast<std::size_t>(p)];
    if (xk == V(0)) continue;
    for (nnz_t lq = l.col_begin(k); lq < l.col_end(k); ++lq) {
      const index_t r = lrows[static_cast<std::size_t>(lq)];
      if (r <= k) continue;
      auto first = brows.begin() + (p + 1);
      auto last = brows.begin() + je;
      auto it = std::lower_bound(first, last, r);
      if (it != last && *it == r) {
        bvals[static_cast<std::size_t>(it - brows.begin())] -=
            lvals[static_cast<std::size_t>(lq)] * xk;
      }
      // A missing target is legal here: L's row r may be absent from B's
      // column pattern, in which case the contribution is structurally zero
      // in the global factorisation (handled by the enclosing block "fill
      // closure" at the block level, not entry level).
    }
  }
}

/// Solve one column with Direct addressing via the stamped accumulator: the
/// column's rows are registered under a fresh generation and every update
/// lands in its CSC slot; updates whose row carries a stale stamp fall
/// outside the column pattern and are skipped. The solve runs entirely in
/// place — no scatter, gather or dense reset.
template <class V>
void solve_column_direct(const CscT<V>& l, CscT<V>& b, index_t j,
                         Workspace& ws) {
  if (solve_column_dense(l, b, j)) return;
  auto brows = b.row_idx();
  auto bvals = b.values_mut();
  auto lrows = l.row_idx();
  auto lvals = l.values();
  const nnz_t jb = b.col_begin(j), je = b.col_end(j);
  const index_t gen = ws.open_column();
  for (nnz_t p = jb; p < je; ++p) {
    const auto r = static_cast<std::size_t>(brows[static_cast<std::size_t>(p)]);
    ws.slot[r] = p;
    ws.stamp[r] = gen;
  }
  for (nnz_t p = jb; p < je; ++p) {
    const index_t k = brows[static_cast<std::size_t>(p)];
    const V xk = bvals[static_cast<std::size_t>(p)];  // final: unit diag
    if (xk == V(0)) continue;
    for (nnz_t lq = l.col_begin(k); lq < l.col_end(k); ++lq) {
      const auto r = static_cast<std::size_t>(lrows[static_cast<std::size_t>(lq)]);
      if (static_cast<index_t>(r) <= k) continue;
      if (ws.stamp[r] != gen) continue;
      bvals[static_cast<std::size_t>(ws.slot[r])] -=
          lvals[static_cast<std::size_t>(lq)] * xk;
    }
  }
}

}  // namespace

template <class V>
Status gessm(PanelVariant variant, const CscT<V>& diag, CscT<V>& b,
             Workspace& ws, ThreadPool* pool) {
  if (diag.n_rows() != diag.n_cols())
    return Status::invalid_argument("gessm: square diagonal block expected");
  if (diag.n_cols() != b.n_rows())
    return Status::invalid_argument("gessm: dimension mismatch");
  const index_t n = diag.n_rows();
  const index_t ncols = b.n_cols();
  SubnormalGuard<V> ftz;

  switch (variant) {
    case PanelVariant::kCV1:
      for (index_t j = 0; j < ncols; ++j) solve_column_merge(diag, b, j);
      return Status::ok();
    case PanelVariant::kCV2: {
      ws.ensure(n);
      for (index_t j = 0; j < ncols; ++j) solve_column_direct(diag, b, j, ws);
      return Status::ok();
    }
    case PanelVariant::kGV1: {
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      parallel_for(tp, 0, ncols, [&](index_t j) {
        SubnormalGuard<V> worker_ftz;
        solve_column_binsearch(diag, b, j);
      });
      return Status::ok();
    }
    case PanelVariant::kGV2: {
      // Un-sync warp-level row: columns are striped over workers without a
      // barrier, and inside a column the row sweep uses bin-search updates.
      // Work is handed out via a single atomic cursor (no level sets, no
      // join points besides kernel completion) — the un-sync discipline at
      // warp granularity.
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      std::atomic<index_t> cursor{0};
      auto work = [&]() {
        SubnormalGuard<V> worker_ftz;
        for (;;) {
          index_t j = cursor.fetch_add(1, std::memory_order_relaxed);
          if (j >= ncols) return;
          solve_column_binsearch(diag, b, j);
        }
      };
      const auto nthreads = static_cast<int>(tp.size());
      if (nthreads <= 1 || ncols < 2) {
        work();
      } else {
        std::atomic<int> fin{0};
        for (int t = 0; t < nthreads - 1; ++t)
          tp.submit([&work, &fin] {
            work();
            fin.fetch_add(1, std::memory_order_release);
          });
        work();
        while (fin.load(std::memory_order_acquire) < nthreads - 1)
          std::this_thread::yield();
      }
      return Status::ok();
    }
    case PanelVariant::kGV3: {
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      // Per-chunk pooled scratch: each contiguous chunk leases a child
      // workspace, so memory stays bounded by the active thread count.
      parallel_for_chunks(tp, 0, ncols, [&](index_t lo, index_t hi) {
        SubnormalGuard<V> worker_ftz;
        Workspace::Lease lw(ws);
        lw->ensure(n);
        for (index_t j = lo; j < hi; ++j) solve_column_direct(diag, b, j, *lw);
      });
      return Status::ok();
    }
    case PanelVariant::kGV4: {
      // Parallel Merge addressing: columns are independent and the merge
      // needs no scratch, matching the GPU merge kernels of Table 1.
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      parallel_for(tp, 0, ncols, [&](index_t j) {
        SubnormalGuard<V> worker_ftz;
        solve_column_merge(diag, b, j);
      });
      return Status::ok();
    }
  }
  return Status::internal("unreachable");
}

template <class V>
void gessm_dense_panel(const CscT<V>& diag, V* x, index_t stride, index_t k) {
  for (index_t j = 0; j < diag.n_cols(); ++j) {
    // x[c][j] is final once the sweep reaches column j (only rows > j are
    // written below), so reading it per entry matches the single-vector
    // sweep that hoists it out of the entry loop.
    const V* xj = x + static_cast<std::size_t>(j) * stride;
    for (nnz_t p = diag.col_begin(j); p < diag.col_end(j); ++p) {
      const index_t r = diag.row_idx()[static_cast<std::size_t>(p)];
      if (r <= j) continue;  // unit diagonal; only the strictly-lower part
      const V v = diag.values()[static_cast<std::size_t>(p)];
      V* xr = x + static_cast<std::size_t>(r) * stride;
      for (index_t c = 0; c < k; ++c) {
        const V xcj = xj[c];
        if (xcj == V(0)) continue;
        xr[c] -= v * xcj;
      }
    }
  }
}

template <class V>
void gessm_dense_panel_transpose(const CscT<V>& diag, V* x, index_t stride,
                                 index_t k, V* acc) {
  for (index_t j = diag.n_cols() - 1; j >= 0; --j) {
    for (index_t c = 0; c < k; ++c) acc[c] = V(0);
    for (nnz_t p = diag.col_begin(j); p < diag.col_end(j); ++p) {
      const index_t r = diag.row_idx()[static_cast<std::size_t>(p)];
      if (r <= j) continue;
      const V v = diag.values()[static_cast<std::size_t>(p)];
      const V* xr = x + static_cast<std::size_t>(r) * stride;
      for (index_t c = 0; c < k; ++c) acc[c] += v * xr[c];
    }
    V* xj = x + static_cast<std::size_t>(j) * stride;
    for (index_t c = 0; c < k; ++c) xj[c] -= acc[c];
  }
}

template <class V>
Status gessm_reference(const CscT<V>& diag, CscT<V>& b) {
  const index_t n = diag.n_rows();
  DenseT<V> l = DenseT<V>::from_csc(diag);
  DenseT<V> d = DenseT<V>::from_csc(b);
  for (index_t j = 0; j < b.n_cols(); ++j) {
    for (index_t k = 0; k < n; ++k) {
      const V xk = d(k, j);  // unit diagonal: already final
      if (xk == V(0)) continue;
      for (index_t i = k + 1; i < n; ++i) d(i, j) -= l(i, k) * xk;
    }
  }
  for (index_t j = 0; j < b.n_cols(); ++j) {
    for (nnz_t p = b.col_begin(j); p < b.col_end(j); ++p)
      b.values_mut()[static_cast<std::size_t>(p)] =
          d(b.row_idx()[static_cast<std::size_t>(p)], j);
  }
  return Status::ok();
}

template Status gessm<float>(PanelVariant, const CscT<float>&, CscT<float>&,
                             Workspace&, ThreadPool*);
template Status gessm<double>(PanelVariant, const CscT<double>&, CscT<double>&,
                              Workspace&, ThreadPool*);
template void gessm_dense_panel<float>(const CscT<float>&, float*, index_t,
                                       index_t);
template void gessm_dense_panel<double>(const CscT<double>&, double*, index_t,
                                        index_t);
template void gessm_dense_panel_transpose<float>(const CscT<float>&, float*,
                                                 index_t, index_t, float*);
template void gessm_dense_panel_transpose<double>(const CscT<double>&, double*,
                                                  index_t, index_t, double*);
template Status gessm_reference<float>(const CscT<float>&, CscT<float>&);
template Status gessm_reference<double>(const CscT<double>&, CscT<double>&);

}  // namespace pangulu::kernels
