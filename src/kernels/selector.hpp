// Decision-tree kernel selection (§4.3, Figure 8 of the paper). GETRF,
// GESSM and TSTRF select on the nonzero count of their input block; SSSSM
// selects on the FLOPs of the update. Thresholds default to the paper's
// (log10 cut-points read off Figure 8) and are configurable so that a
// calibration run on the actual host can refit them.
#pragma once

#include <cmath>

#include "kernels/kernel_common.hpp"

namespace pangulu::kernels {

struct SelectorThresholds {
  // GETRF (Figure 8a): nnz(A) cuts.
  metric_t getrf_cpu_nnz = 6310;        // 1e3.8 : below -> C_V1
  metric_t getrf_gv1_nnz = 1e4;         // below -> G_V1, else G_V2
  // GESSM (Figure 8b): nnz(B) cuts, plus the large-diagonal CPU guard.
  metric_t panel_huge_diag_nnz = 5e6;   // nnz(diag) above this -> CPU kernels
  metric_t gessm_cv1_nnz = 3981;        // 1e3.6 : below -> C_V1
  metric_t gessm_cv2_nnz = 7943;        // 1e3.9 : below -> C_V2
  metric_t gessm_gv1_nnz = 12589;       // 1e4.1 : below -> G_V1
  metric_t gessm_gv4_nnz = 12589;       // below -> G_V4 (merge); == gv1 cut by
                                      // default, i.e. an empty band until a
                                      // calibration run widens it
  metric_t gessm_gv2_nnz = 19953;       // 1e4.3 : below -> G_V2, else G_V3
  // TSTRF (Figure 8c): nnz(B) cuts.
  metric_t tstrf_cv1_nnz = 3981;        // 1e3.6
  metric_t tstrf_cv2_nnz = 6310;        // 1e3.8
  metric_t tstrf_gv1_nnz = 1e4;         // 1e4.0
  metric_t tstrf_gv4_nnz = 1e4;         // merge band, empty by default (== gv1)
  metric_t tstrf_gv2_nnz = 19953;       // 1e4.3
  // SSSSM (Figure 8d): FLOP cuts.
  metric_t ssssm_cv2_flops = 63096;     // 1e4.8 : below -> C_V2
  metric_t ssssm_cv3_flops = 251189;    // 1e5.4 : below -> C_V3 (merge)
  metric_t ssssm_cv1_flops = 1e7;       // below -> C_V1
  metric_t ssssm_gv1_flops = 3.98e9;    // 1e9.6 : below -> G_V1, else G_V2
};

GetrfVariant select_getrf(nnz_t nnz_a, const SelectorThresholds& t = {});
PanelVariant select_gessm(nnz_t nnz_b, nnz_t nnz_diag,
                          const SelectorThresholds& t = {});
PanelVariant select_tstrf(nnz_t nnz_b, nnz_t nnz_diag,
                          const SelectorThresholds& t = {});
SsssmVariant select_ssssm(metric_t flops, const SelectorThresholds& t = {});

}  // namespace pangulu::kernels
