#include "kernels/getrf.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <thread>

#include "sparse/dense.hpp"

namespace pangulu::kernels {

namespace {

template <class V>
V perturb_pivot(V pivot, V threshold, PivotStats* stats) {
  if (std::abs(pivot) >= threshold) return pivot;
  if (stats) stats->perturbed++;
  return pivot >= 0 ? threshold : -threshold;
}

/// Dense-column fast path shared by both addressing strategies: when column
/// j holds every row of the block, a row IS its value position (jb + r) and
/// every earlier column k < j is present in the upper pattern, so the
/// left-looking sweep needs no slot map or search — and a dense strictly-
/// lower source tail turns each update into a contiguous axpy, the
/// vectorizable bandwidth-bound loop where FP32 moves half the bytes of
/// FP64 (DESIGN.md §14). Identical floating-point operation sequence to the
/// addressing variants. Returns false when the column is not dense.
template <class V>
bool factor_column_dense(CscT<V>& a, index_t j, V threshold,
                         PivotStats* stats) {
  auto rows = a.row_idx();
  auto vals = a.values_mut();
  const nnz_t jb = a.col_begin(j), je = a.col_end(j);
  const index_t n = a.n_rows();
  if (je - jb != static_cast<nnz_t>(n)) return false;
  V* PANGULU_RESTRICT cv = vals.data() + static_cast<std::size_t>(jb);
  for (index_t k = 0; k < j; ++k) {
    const V xk = cv[static_cast<std::size_t>(k)];  // evolving in place
    if (xk == V(0)) continue;
    nnz_t q = a.col_begin(k);
    const nnz_t qe = a.col_end(k);
    while (q < qe && rows[static_cast<std::size_t>(q)] <= k) ++q;
    if (qe - q == static_cast<nnz_t>(n - k - 1)) {
      const V* PANGULU_RESTRICT lc = vals.data() + static_cast<std::size_t>(q);
      V* PANGULU_RESTRICT bt = cv + static_cast<std::size_t>(k) + 1;
      const index_t m = n - k - 1;
      for (index_t i = 0; i < m; ++i)
        bt[static_cast<std::size_t>(i)] -= lc[static_cast<std::size_t>(i)] * xk;
    } else {
      for (; q < qe; ++q)
        cv[static_cast<std::size_t>(rows[static_cast<std::size_t>(q)])] -=
            vals[static_cast<std::size_t>(q)] * xk;
    }
  }
  const V pivot =
      perturb_pivot(cv[static_cast<std::size_t>(j)], threshold, stats);
  cv[static_cast<std::size_t>(j)] = pivot;
  for (index_t i = j + 1; i < n; ++i) cv[static_cast<std::size_t>(i)] /= pivot;
  return true;
}

/// Left-looking update of one column, Direct addressing via the stamped
/// accumulator: column j's rows are registered under a fresh generation,
/// every earlier column in the column's upper pattern applies in ascending
/// order straight into the CSC slots, then the pivot is normalised in place.
/// Updates whose row carries a stale stamp fall outside the column pattern
/// (contributions that are structurally zero at this block position) and
/// are skipped — no scatter, gather or O(n_rows) reset.
template <class V>
void factor_column_direct(CscT<V>& a, index_t j, V threshold,
                          PivotStats* stats, Workspace& ws) {
  if (factor_column_dense(a, j, threshold, stats)) return;
  auto rows = a.row_idx();
  auto vals = a.values_mut();
  const nnz_t jb = a.col_begin(j), je = a.col_end(j);
  const index_t gen = ws.open_column();
  for (nnz_t p = jb; p < je; ++p) {
    const auto r = static_cast<std::size_t>(rows[static_cast<std::size_t>(p)]);
    ws.slot[r] = p;
    ws.stamp[r] = gen;
  }
  nnz_t diag_pos = -1;
  for (nnz_t p = jb; p < je; ++p) {
    const index_t k = rows[static_cast<std::size_t>(p)];
    if (k >= j) {
      diag_pos = p;
      break;
    }
    const V xk = vals[static_cast<std::size_t>(p)];  // evolving in place
    if (xk == V(0)) continue;
    for (nnz_t q = a.col_begin(k); q < a.col_end(k); ++q) {
      const auto r = static_cast<std::size_t>(rows[static_cast<std::size_t>(q)]);
      if (static_cast<index_t>(r) <= k) continue;
      if (ws.stamp[r] != gen) continue;
      vals[static_cast<std::size_t>(ws.slot[r])] -=
          vals[static_cast<std::size_t>(q)] * xk;
    }
  }
  PANGULU_CHECK(diag_pos >= 0 && rows[static_cast<std::size_t>(diag_pos)] == j,
                "GETRF: diagonal entry missing from block pattern");
  const V pivot =
      perturb_pivot(vals[static_cast<std::size_t>(diag_pos)], threshold, stats);
  vals[static_cast<std::size_t>(diag_pos)] = pivot;
  for (nnz_t p = diag_pos + 1; p < je; ++p)
    vals[static_cast<std::size_t>(p)] /= pivot;
}

/// Left-looking update of one column with binary-search addressing: the
/// evolving column stays in its sparse slots; every read/write locates its
/// entry with a binary search over the column's (sorted) row list.
template <class V>
void factor_column_binsearch(CscT<V>& a, index_t j, V threshold,
                             PivotStats* stats) {
  if (factor_column_dense(a, j, threshold, stats)) return;
  auto rows = a.row_idx();
  auto vals = a.values_mut();
  const nnz_t jb = a.col_begin(j), je = a.col_end(j);
  auto find_in_j = [&](index_t r) -> nnz_t {
    auto first = rows.begin() + jb;
    auto last = rows.begin() + je;
    auto it = std::lower_bound(first, last, r);
    if (it == last || *it != r) return -1;
    return jb + (it - first);
  };
  nnz_t diag_pos = -1;
  for (nnz_t p = jb; p < je; ++p) {
    const index_t k = rows[static_cast<std::size_t>(p)];
    if (k >= j) {
      diag_pos = p;
      break;
    }
    const V xk = vals[static_cast<std::size_t>(p)];
    if (xk == V(0)) continue;
    for (nnz_t q = a.col_begin(k); q < a.col_end(k); ++q) {
      const index_t r = rows[static_cast<std::size_t>(q)];
      if (r <= k) continue;
      const V lrk = vals[static_cast<std::size_t>(q)];
      if (lrk == V(0)) continue;
      nnz_t t = find_in_j(r);
      PANGULU_CHECK(t >= 0, "GETRF: update target outside block pattern");
      vals[static_cast<std::size_t>(t)] -= lrk * xk;
    }
  }
  PANGULU_CHECK(diag_pos >= 0 && rows[static_cast<std::size_t>(diag_pos)] == j,
                "GETRF: diagonal entry missing from block pattern");
  const V pivot =
      perturb_pivot(vals[static_cast<std::size_t>(diag_pos)], threshold, stats);
  vals[static_cast<std::size_t>(diag_pos)] = pivot;
  for (nnz_t p = diag_pos + 1; p < je; ++p)
    vals[static_cast<std::size_t>(p)] /= pivot;
}

/// C_V1: serial left-looking sweep with stamped Direct addressing.
template <class V>
Status getrf_c_v1(CscT<V>& a, Workspace& ws, PivotStats* stats,
                  const GetrfOptions& opts) {
  const index_t n = a.n_cols();
  ws.ensure(n);
  V amax = a.max_abs();
  if (amax == V(0)) amax = V(1);
  const V threshold = static_cast<V>(opts.pivot_tol) * amax;
  for (index_t j = 0; j < n; ++j)
    factor_column_direct(a, j, threshold, stats, ws);
  return Status::ok();
}

/// G_V1/G_V2: synchronisation-free left-looking factorisation in the SFLU
/// style (Zhao et al., DAC'21). Column j carries a counter of unfinished
/// source columns (its strictly-upper pattern); workers grab ready columns
/// from a lock-free ring, factor them, and release their dependents. Each
/// column is written by exactly one worker, so no per-entry locking exists
/// anywhere — hence "un-sync".
template <class V>
Status getrf_sflu(CscT<V>& a, Workspace& ws, PivotStats* stats,
                  const GetrfOptions& opts, ThreadPool* pool,
                  bool dense_mapping) {
  const index_t n = a.n_cols();
  V amax = a.max_abs();
  if (amax == V(0)) amax = V(1);
  const V threshold = static_cast<V>(opts.pivot_tol) * amax;

  const RowView rv = RowView::build(a);
  auto rows = a.row_idx();

  std::vector<std::atomic<index_t>> dep(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    index_t cnt = 0;
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      if (rows[static_cast<std::size_t>(p)] >= j) break;
      ++cnt;
    }
    dep[static_cast<std::size_t>(j)].store(cnt, std::memory_order_relaxed);
  }

  std::vector<std::atomic<index_t>> queue(static_cast<std::size_t>(n));
  for (auto& q : queue) q.store(-1, std::memory_order_relaxed);
  std::atomic<index_t> push_cursor{0}, pop_cursor{0}, done_count{0};
  auto push_ready = [&](index_t j) {
    index_t slot = push_cursor.fetch_add(1, std::memory_order_relaxed);
    queue[static_cast<std::size_t>(slot)].store(j, std::memory_order_release);
  };
  for (index_t j = 0; j < n; ++j) {
    if (dep[static_cast<std::size_t>(j)].load(std::memory_order_relaxed) == 0)
      push_ready(j);
  }

  // PivotStats is bumped from several threads; merge per-worker counts.
  std::atomic<index_t> perturbed{0};

  auto worker = [&]() {
    SubnormalGuard<V> worker_ftz;
    // Pooled per-worker stamped accumulator (bounded by the worker count,
    // reused across calls) instead of thread_local scratch.
    std::optional<Workspace::Lease> lease;
    Workspace* local = nullptr;
    if (dense_mapping) {
      lease.emplace(ws);
      local = &**lease;
      local->ensure(n);
    }
    PivotStats local_stats;
    for (;;) {
      if (done_count.load(std::memory_order_acquire) >= n) break;
      index_t slot = pop_cursor.load(std::memory_order_relaxed);
      if (slot >= n ||
          slot >= push_cursor.load(std::memory_order_acquire)) {
        std::this_thread::yield();
        continue;
      }
      if (!pop_cursor.compare_exchange_weak(slot, slot + 1,
                                            std::memory_order_acq_rel))
        continue;
      index_t j;
      while ((j = queue[static_cast<std::size_t>(slot)].load(
                  std::memory_order_acquire)) < 0) {
        std::this_thread::yield();
      }
      if (dense_mapping)
        factor_column_direct(a, j, threshold, &local_stats, *local);
      else
        factor_column_binsearch(a, j, threshold, &local_stats);
      // Release dependents: every column m > j with U(j,m) stored.
      for (nnz_t rp = rv.ptr[static_cast<std::size_t>(j)];
           rp < rv.ptr[static_cast<std::size_t>(j) + 1]; ++rp) {
        const index_t m = rv.col[static_cast<std::size_t>(rp)];
        if (m <= j) continue;
        if (dep[static_cast<std::size_t>(m)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          push_ready(m);
        }
      }
      done_count.fetch_add(1, std::memory_order_release);
    }
    perturbed.fetch_add(local_stats.perturbed, std::memory_order_relaxed);
  };

  const std::size_t nthreads = pool ? pool->size() : 1;
  if (nthreads <= 1 || n < 64) {
    worker();
  } else {
    std::atomic<int> finished{0};
    const int extra = static_cast<int>(nthreads) - 1;
    for (int t = 0; t < extra; ++t) {
      pool->submit([&worker, &finished] {
        worker();
        finished.fetch_add(1, std::memory_order_release);
      });
    }
    worker();
    while (finished.load(std::memory_order_acquire) < extra)
      std::this_thread::yield();
  }
  if (stats) stats->perturbed += perturbed.load();
  return Status::ok();
}

}  // namespace

template <class V>
Status getrf(GetrfVariant variant, CscT<V>& a, Workspace& ws,
             PivotStats* stats, const GetrfOptions& opts, ThreadPool* pool) {
  if (a.n_rows() != a.n_cols())
    return Status::invalid_argument("getrf: square block expected");
  SubnormalGuard<V> ftz;
  switch (variant) {
    case GetrfVariant::kCV1:
      return getrf_c_v1(a, ws, stats, opts);
    case GetrfVariant::kGV1:
      return getrf_sflu(a, ws, stats, opts, pool, /*dense_mapping=*/false);
    case GetrfVariant::kGV2:
      return getrf_sflu(a, ws, stats, opts, pool, /*dense_mapping=*/true);
  }
  return Status::internal("unreachable");
}

template <class V>
Status getrf_reference(CscT<V>& a, const GetrfOptions& opts) {
  const index_t n = a.n_cols();
  DenseT<V> d = DenseT<V>::from_csc(a);
  V amax = a.max_abs();
  if (amax == V(0)) amax = V(1);
  const V threshold = static_cast<V>(opts.pivot_tol) * amax;
  for (index_t k = 0; k < n; ++k) {
    V pivot = d(k, k);
    if (std::abs(pivot) < threshold)
      pivot = pivot >= 0 ? threshold : -threshold;
    d(k, k) = pivot;
    for (index_t i = k + 1; i < n; ++i) d(i, k) /= pivot;
    for (index_t j = k + 1; j < n; ++j) {
      const V ukj = d(k, j);
      if (ukj == V(0)) continue;
      for (index_t i = k + 1; i < n; ++i) d(i, j) -= d(i, k) * ukj;
    }
  }
  for (index_t j = 0; j < n; ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p)
      a.values_mut()[static_cast<std::size_t>(p)] =
          d(a.row_idx()[static_cast<std::size_t>(p)], j);
  }
  return Status::ok();
}

template Status getrf<float>(GetrfVariant, CscT<float>&, Workspace&,
                             PivotStats*, const GetrfOptions&, ThreadPool*);
template Status getrf<double>(GetrfVariant, CscT<double>&, Workspace&,
                              PivotStats*, const GetrfOptions&, ThreadPool*);
template Status getrf_reference<float>(CscT<float>&, const GetrfOptions&);
template Status getrf_reference<double>(CscT<double>&, const GetrfOptions&);

}  // namespace pangulu::kernels
