// GESSM: B <- L^-1 B where L is the unit-lower factor stored in a factorised
// diagonal block (GETRF output). Updates the blocks to the right of the
// diagonal in block LU. Columns of B are independent; rows carry the
// triangular dependency. Six variants (Table 1):
//   C_V1 — Merge addressing, serial column sweep (two-pointer merges between
//          L columns and B's column pattern).
//   C_V2 — Direct addressing, serial column sweep through the stamped
//          sparse accumulator (kernel_common.hpp) — O(nnz) per column.
//   G_V1 — Bin-search, warp-level column: one "warp" (pool chunk) per column.
//   G_V2 — Bin-search, un-sync warp-level row: per-column row pipeline with
//          dependency counters (no barriers), rows released as their source
//          entries finalise.
//   G_V3 — Direct, warp-level column: stamped slots from a pooled workspace
//          lease per chunk.
//   G_V4 — Merge, warp-level column: parallel C_V1.
#pragma once

#include "kernels/kernel_common.hpp"
#include "parallel/thread_pool.hpp"
#include "util/status.hpp"

namespace pangulu::kernels {

/// `diag` must hold a GETRF-factorised block; only its unit-lower part is
/// read. `b` is updated in place within its fixed pattern.
template <class V>
Status gessm(PanelVariant variant, const CscT<V>& diag, CscT<V>& b,
             Workspace& ws, ThreadPool* pool = nullptr);

/// Dense reference (tests): forward-substitution on a dense copy.
template <class V>
Status gessm_reference(const CscT<V>& diag, CscT<V>& b);

/// Dense-RHS panel variant for the triangular-solve phase: X <- L^-1 X where
/// X is an n x k row-interleaved panel — column c of row r at
/// x[r * stride + c] (stride 1 with k == 1 is the plain vector layout). The
/// block's pattern is decoded once per entry for all k columns and the
/// k-wide inner loop runs over contiguous memory; per column the operation
/// sequence (including the zero-skip) is exactly the single-vector sweep's,
/// so column c of the panel is bitwise identical to solving column c alone.
template <class V>
void gessm_dense_panel(const CscT<V>& diag, V* x, index_t stride, index_t k);

/// Transposed panel variant: X <- L^-T X (backward sweep, unit diagonal).
/// `acc` is caller-provided scratch of at least k values.
template <class V>
void gessm_dense_panel_transpose(const CscT<V>& diag, V* x, index_t stride,
                                 index_t k, V* acc);

}  // namespace pangulu::kernels
