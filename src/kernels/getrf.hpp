// GETRF: in-place sparse LU factorisation of a diagonal block.
// Three variants (Table 1):
//   C_V1 — Direct addressing, row/column-sweep serial CPU kernel.
//   G_V1 — Bin-search addressing, synchronisation-free SFLU scheduling
//          (Zhao et al., DAC'21) executed on the thread pool.
//   G_V2 — Direct (dense-mapping) addressing with the same un-sync SFLU
//          scheduling.
// After the call, `a` holds L (strictly lower, unit diagonal implicit) and
// U (upper including diagonal) in the original pattern.
#pragma once

#include "kernels/kernel_common.hpp"
#include "parallel/thread_pool.hpp"
#include "util/status.hpp"

namespace pangulu::kernels {

struct GetrfOptions {
  /// A pivot with |u_kk| < pivot_tol * max|A| is perturbed to that threshold
  /// (sign preserved) — the static-pivoting fallback. Control data: held at
  /// FP64 regardless of the block value type (the threshold is cast into the
  /// block's precision at use).
  tolerance_t pivot_tol = 1e-14;
};

template <class V>
Status getrf(GetrfVariant variant, CscT<V>& a, Workspace& ws,
             PivotStats* stats, const GetrfOptions& opts = {},
             ThreadPool* pool = nullptr);

/// Dense reference implementation (tests/benches): factorises via a dense
/// copy and scatters back; fails when a pivot is exactly zero.
template <class V>
Status getrf_reference(CscT<V>& a, const GetrfOptions& opts = {});

}  // namespace pangulu::kernels
