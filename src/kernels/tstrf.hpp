// TSTRF: B <- B U^-1 where U is the upper factor of a factorised diagonal
// block. Updates the blocks below the diagonal in block LU. Columns of B
// carry the triangular dependency (through U's pattern); rows of B are
// independent. Six variants (Table 1):
//   C_V1 — Merge addressing, serial column sweep.
//   C_V2 — Direct addressing, serial column sweep through the stamped
//          sparse accumulator (kernel_common.hpp) — O(nnz) per column.
//   G_V1 — Bin-search, warp-level column: dependency-counter column
//          scheduling on the pool (independent columns run concurrently).
//   G_V2 — Bin-search, un-sync warp-level row: each row of B solves its own
//          x U = b system, all rows in parallel, no synchronisation at all.
//   G_V3 — Direct, warp-level column: as G_V1 with stamped-slot columns
//          from a pooled workspace lease.
//   G_V4 — Merge, warp-level column: parallel C_V1.
#pragma once

#include "kernels/kernel_common.hpp"
#include "parallel/thread_pool.hpp"
#include "util/status.hpp"

namespace pangulu::kernels {

/// `diag` must hold a GETRF-factorised block; only its upper part (with
/// diagonal) is read. `b` is updated in place within its fixed pattern.
template <class V>
Status tstrf(PanelVariant variant, const CscT<V>& diag, CscT<V>& b,
             Workspace& ws, ThreadPool* pool = nullptr);

/// Dense reference (tests).
template <class V>
Status tstrf_reference(const CscT<V>& diag, CscT<V>& b);

/// Dense-RHS panel variant for the triangular-solve phase: X <- U^-1 X where
/// X is an n x k row-interleaved panel (column c of row r at
/// x[r * stride + c]; see gessm_dense_panel) and U is the upper part
/// (diagonal included) of a factorised diagonal block. One sweep of the
/// factor block serves all k columns over a contiguous inner loop; per
/// column the operation sequence matches the single-vector upper solve bit
/// for bit.
template <class V>
void tstrf_dense_panel(const CscT<V>& diag, V* x, index_t stride, index_t k);

/// Transposed panel variant: X <- U^-T X (forward sweep). `acc` is
/// caller-provided scratch of at least k values.
template <class V>
void tstrf_dense_panel_transpose(const CscT<V>& diag, V* x, index_t stride,
                                 index_t k, V* acc);

}  // namespace pangulu::kernels
