#include "kernels/calibrate.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "kernels/gessm.hpp"
#include "kernels/getrf.hpp"
#include "kernels/ssssm.hpp"
#include "kernels/tstrf.hpp"
#include "sparse/coo.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pangulu::kernels {

seconds_t policy_cost(const std::vector<PairedSample>& samples,
                      metric_t threshold) {
  seconds_t cost = 0;
  for (const auto& s : samples)
    cost += s.metric < threshold ? s.time_low : s.time_high;
  return cost;
}

metric_t fit_crossover(std::vector<PairedSample> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end(),
            [](const PairedSample& a, const PairedSample& b) {
              return a.metric < b.metric;
            });
  // Suffix sums of time_high; prefix sums of time_low. Candidate thresholds
  // sit between adjacent metrics (plus the two extremes).
  const std::size_t n = samples.size();
  std::vector<seconds_t> suffix_high(n + 1, 0.0);
  for (std::size_t i = n; i > 0; --i)
    suffix_high[i - 1] = suffix_high[i] + samples[i - 1].time_high;

  seconds_t best_cost = suffix_high[0];       // threshold below everything
  metric_t best_threshold = samples.front().metric * 0.5;
  seconds_t prefix_low = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    prefix_low += samples[i].time_low;
    const seconds_t cost = prefix_low + suffix_high[i + 1];
    if (cost < best_cost) {
      best_cost = cost;
      best_threshold = i + 1 < n
                           ? 0.5 * (samples[i].metric + samples[i + 1].metric)
                           : samples[i].metric * 2.0;
    }
  }
  return best_threshold;
}

namespace {

// Field table shared by save/load; one line per threshold.
struct ThresholdField {
  const char* key;
  metric_t SelectorThresholds::*ptr;
};

constexpr ThresholdField kThresholdFields[] = {
    {"getrf_cpu_nnz", &SelectorThresholds::getrf_cpu_nnz},
    {"getrf_gv1_nnz", &SelectorThresholds::getrf_gv1_nnz},
    {"panel_huge_diag_nnz", &SelectorThresholds::panel_huge_diag_nnz},
    {"gessm_cv1_nnz", &SelectorThresholds::gessm_cv1_nnz},
    {"gessm_cv2_nnz", &SelectorThresholds::gessm_cv2_nnz},
    {"gessm_gv1_nnz", &SelectorThresholds::gessm_gv1_nnz},
    {"gessm_gv4_nnz", &SelectorThresholds::gessm_gv4_nnz},
    {"gessm_gv2_nnz", &SelectorThresholds::gessm_gv2_nnz},
    {"tstrf_cv1_nnz", &SelectorThresholds::tstrf_cv1_nnz},
    {"tstrf_cv2_nnz", &SelectorThresholds::tstrf_cv2_nnz},
    {"tstrf_gv1_nnz", &SelectorThresholds::tstrf_gv1_nnz},
    {"tstrf_gv4_nnz", &SelectorThresholds::tstrf_gv4_nnz},
    {"tstrf_gv2_nnz", &SelectorThresholds::tstrf_gv2_nnz},
    {"ssssm_cv2_flops", &SelectorThresholds::ssssm_cv2_flops},
    {"ssssm_cv3_flops", &SelectorThresholds::ssssm_cv3_flops},
    {"ssssm_cv1_flops", &SelectorThresholds::ssssm_cv1_flops},
    {"ssssm_gv1_flops", &SelectorThresholds::ssssm_gv1_flops},
};

/// Full-band diagonally dominant square block of half-bandwidth matched to
/// the requested density. Band patterns are closed under LU elimination, so
/// the block needs no symbolic fill pass before GETRF — every update target
/// exists. Dominance keeps pivots healthy (no perturbation noise in timing).
template <class V>
CscT<V> band_block(index_t n, metric_t density, Rng& rng) {
  auto w = static_cast<index_t>(density * static_cast<metric_t>(n) / 2.0);
  if (w < 1) w = 1;
  if (w >= n) w = n - 1;
  CooT<V> coo(n, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t lo = std::max<index_t>(0, j - w);
    const index_t hi = std::min<index_t>(n - 1, j + w);
    for (index_t i = lo; i <= hi; ++i) {
      const V v = i == j ? static_cast<V>(n)
                         : static_cast<V>(rng.uniform(-1.0, 1.0));
      coo.add(i, j, v);
    }
  }
  return CscT<V>::from_coo(coo);
}

/// Random rectangular block with ~density fill; every column keeps at least
/// one entry so panel solves and updates have work everywhere.
template <class V>
CscT<V> random_block(index_t rows, index_t cols, metric_t density, Rng& rng) {
  CooT<V> coo(rows, cols);
  for (index_t j = 0; j < cols; ++j) {
    bool any = false;
    for (index_t i = 0; i < rows; ++i) {
      if (rng.uniform() < density) {
        coo.add(i, j, static_cast<V>(rng.normal()));
        any = true;
      }
    }
    if (!any)
      coo.add(rng.uniform_index(0, rows - 1), j,
              static_cast<V>(rng.normal()));
  }
  CscT<V> m = CscT<V>::from_coo(coo);
  return m;
}

/// min-of-repeats wall time of `body` (the operand copy stays outside the
/// measured region).
template <typename Body>
seconds_t time_min(int repeats, Body body) {
  seconds_t best = std::numeric_limits<seconds_t>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const seconds_t s = body();
    if (s < best) best = s;
  }
  return best;
}

/// Per-(size, density) grid cell: the synthetic operands every family
/// benchmarks against, built once and reused by all variants.
template <class V>
struct GridCell {
  CscT<V> diag_raw;       // band block, unfactored (GETRF operand)
  CscT<V> diag_factored;  // GETRF(kCV1) of diag_raw (GESSM/TSTRF operand)
  CscT<V> panel;          // rectangular RHS/update block
  CscT<V> ssssm_a, ssssm_b, ssssm_c;
};

struct VariantTimes {
  std::vector<metric_t> metric;  // one per grid cell
  // times[variant index in the family chain][cell]
  std::vector<std::vector<seconds_t>> times;
};

/// Fit every adjacent pair of a family's preference chain and store the
/// clamped, monotone thresholds through the given member pointers.
void fit_chain(const VariantTimes& vt,
               const std::vector<metric_t SelectorThresholds::*>& cuts,
               const char* family, const std::vector<std::string>& names,
               SelectorThresholds* out, AutotuneReport* report) {
  metric_t floor = 1.0;
  for (std::size_t b = 0; b < cuts.size(); ++b) {
    std::vector<PairedSample> samples;
    samples.reserve(vt.metric.size());
    for (std::size_t c = 0; c < vt.metric.size(); ++c)
      samples.push_back(
          {vt.metric[c], vt.times[b][c], vt.times[b + 1][c]});
    metric_t threshold = fit_crossover(samples);
    // A malformed tree (descending cuts) would shadow variants; clamp to a
    // monotone non-decreasing chain with a positive floor.
    threshold = std::max(threshold, floor);
    floor = threshold;
    out->*cuts[b] = threshold;
    if (report)
      report->entries.push_back({family, names[b] + "|" + names[b + 1],
                                 threshold,
                                 static_cast<int>(samples.size())});
  }
}

template <class V>
Status autotune_thresholds_impl(const AutotuneOptions& opts,
                                SelectorThresholds* out,
                                AutotuneReport* report, ThreadPool* pool) {
  Rng rng(opts.seed);
  std::vector<GridCell<V>> cells;
  for (index_t n : opts.sizes) {
    for (metric_t d : opts.densities) {
      GridCell<V> cell;
      cell.diag_raw = band_block<V>(n, d, rng);
      cell.diag_factored = cell.diag_raw;
      Workspace ws;
      PivotStats stats;
      Status st = getrf(GetrfVariant::kCV1, cell.diag_factored, ws, &stats);
      if (!st.is_ok()) return st;
      cell.panel = random_block<V>(n, n, d, rng);
      cell.ssssm_a = random_block<V>(n, n, d, rng);
      cell.ssssm_b = random_block<V>(n, n, d, rng);
      cell.ssssm_c = random_block<V>(n, n, std::min<metric_t>(1.0, 3.0 * d), rng);
      cells.push_back(std::move(cell));
    }
  }

  Workspace ws;
  const GetrfOptions gopts;

  // GETRF chain: C_V1 -> G_V1 -> G_V2 over nnz(A).
  {
    const std::vector<GetrfVariant> chain = {
        GetrfVariant::kCV1, GetrfVariant::kGV1, GetrfVariant::kGV2};
    VariantTimes vt;
    vt.times.assign(chain.size(), {});
    for (const GridCell<V>& cell : cells) {
      vt.metric.push_back(static_cast<metric_t>(cell.diag_raw.nnz()));
      for (std::size_t v = 0; v < chain.size(); ++v) {
        const seconds_t t = time_min(opts.repeats, [&] {
          CscT<V> a = cell.diag_raw;
          PivotStats stats;
          Timer timer;
          getrf(chain[v], a, ws, &stats, gopts, pool).check();
          return timer.seconds();
        });
        vt.times[v].push_back(t);
      }
    }
    fit_chain(vt,
              {&SelectorThresholds::getrf_cpu_nnz,
               &SelectorThresholds::getrf_gv1_nnz},
              "getrf", {"C_V1", "G_V1", "G_V2"}, out, report);
  }

  // GESSM / TSTRF chains over nnz(B), in selector preference order.
  const std::vector<PanelVariant> panel_chain = {
      PanelVariant::kCV1, PanelVariant::kCV2, PanelVariant::kGV1,
      PanelVariant::kGV4, PanelVariant::kGV2, PanelVariant::kGV3};
  const std::vector<std::string> panel_names = {"C_V1", "C_V2", "G_V1",
                                                "G_V4", "G_V2", "G_V3"};
  {
    VariantTimes vt;
    vt.times.assign(panel_chain.size(), {});
    for (const GridCell<V>& cell : cells) {
      vt.metric.push_back(static_cast<metric_t>(cell.panel.nnz()));
      for (std::size_t v = 0; v < panel_chain.size(); ++v) {
        const seconds_t t = time_min(opts.repeats, [&] {
          CscT<V> b = cell.panel;
          Timer timer;
          gessm(panel_chain[v], cell.diag_factored, b, ws, pool).check();
          return timer.seconds();
        });
        vt.times[v].push_back(t);
      }
    }
    fit_chain(vt,
              {&SelectorThresholds::gessm_cv1_nnz,
               &SelectorThresholds::gessm_cv2_nnz,
               &SelectorThresholds::gessm_gv1_nnz,
               &SelectorThresholds::gessm_gv4_nnz,
               &SelectorThresholds::gessm_gv2_nnz},
              "gessm", panel_names, out, report);
  }
  {
    VariantTimes vt;
    vt.times.assign(panel_chain.size(), {});
    for (const GridCell<V>& cell : cells) {
      vt.metric.push_back(static_cast<metric_t>(cell.panel.nnz()));
      for (std::size_t v = 0; v < panel_chain.size(); ++v) {
        const seconds_t t = time_min(opts.repeats, [&] {
          CscT<V> b = cell.panel;
          Timer timer;
          tstrf(panel_chain[v], cell.diag_factored, b, ws, pool).check();
          return timer.seconds();
        });
        vt.times[v].push_back(t);
      }
    }
    fit_chain(vt,
              {&SelectorThresholds::tstrf_cv1_nnz,
               &SelectorThresholds::tstrf_cv2_nnz,
               &SelectorThresholds::tstrf_gv1_nnz,
               &SelectorThresholds::tstrf_gv4_nnz,
               &SelectorThresholds::tstrf_gv2_nnz},
              "tstrf", panel_names, out, report);
  }

  // SSSSM chain over update FLOPs, in selector preference order.
  {
    const std::vector<SsssmVariant> chain = {
        SsssmVariant::kCV2, SsssmVariant::kCV3, SsssmVariant::kCV1,
        SsssmVariant::kGV1, SsssmVariant::kGV2};
    VariantTimes vt;
    vt.times.assign(chain.size(), {});
    for (const GridCell<V>& cell : cells) {
      vt.metric.push_back(ssssm_flops(cell.ssssm_a, cell.ssssm_b));
      for (std::size_t v = 0; v < chain.size(); ++v) {
        const seconds_t t = time_min(opts.repeats, [&] {
          CscT<V> c = cell.ssssm_c;
          Timer timer;
          ssssm(chain[v], cell.ssssm_a, cell.ssssm_b, c, ws, pool).check();
          return timer.seconds();
        });
        vt.times[v].push_back(t);
      }
    }
    fit_chain(vt,
              {&SelectorThresholds::ssssm_cv2_flops,
               &SelectorThresholds::ssssm_cv3_flops,
               &SelectorThresholds::ssssm_cv1_flops,
               &SelectorThresholds::ssssm_gv1_flops},
              "ssssm", {"C_V2", "C_V3", "C_V1", "G_V1", "G_V2"}, out, report);
  }
  return Status::ok();
}

}  // namespace

Status autotune_thresholds(const AutotuneOptions& opts,
                           SelectorThresholds* out, AutotuneReport* report,
                           ThreadPool* pool) {
  if (out == nullptr)
    return Status::invalid_argument("autotune_thresholds: null output");
  if (opts.sizes.empty() || opts.densities.empty() || opts.repeats < 1)
    return Status::invalid_argument("autotune_thresholds: empty grid");
  for (index_t n : opts.sizes)
    if (n < 4)
      return Status::invalid_argument("autotune_thresholds: block size < 4");

  // kSingle and kMixedIR both execute their numeric phase on FP32 blocks,
  // so both calibrate the float kernel instantiations.
  if (stores_fp32(opts.precision))
    return autotune_thresholds_impl<
        PrecisionTraits<Precision::kSingle>::value_type>(opts, out, report,
                                                         pool);
  return autotune_thresholds_impl<
      PrecisionTraits<Precision::kDouble>::value_type>(opts, out, report,
                                                       pool);
}

Status save_thresholds(const std::string& path, const SelectorThresholds& t,
                       Precision precision) {
  std::ofstream out(path);
  if (!out)
    return Status::io_error("save_thresholds: cannot open " + path);
  out << "# PanguLU kernel selector thresholds (see kernels/calibrate.hpp)\n";
  out << "precision " << precision_name(precision) << '\n';
  out << std::setprecision(17);
  for (const auto& f : kThresholdFields) out << f.key << ' ' << t.*f.ptr << '\n';
  out.flush();
  if (!out) return Status::io_error("save_thresholds: write failed: " + path);
  return Status::ok();
}

Status load_thresholds(const std::string& path, SelectorThresholds* out,
                       Precision* file_precision) {
  if (out == nullptr)
    return Status::invalid_argument("load_thresholds: null output");
  // Pre-precision files carry no marker and were always FP64-calibrated.
  if (file_precision) *file_precision = Precision::kDouble;
  std::ifstream in(path);
  if (!in)
    return Status::io_error("load_thresholds: cannot open " + path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key))
      return Status::io_error("load_thresholds: malformed line: " + line);
    if (key == "precision") {
      std::string name;
      if (!(ls >> name))
        return Status::io_error("load_thresholds: malformed line: " + line);
      Precision p;
      if (name == precision_name(Precision::kDouble)) {
        p = Precision::kDouble;
      } else if (name == precision_name(Precision::kSingle)) {
        p = Precision::kSingle;
      } else if (name == precision_name(Precision::kMixedIR)) {
        p = Precision::kMixedIR;
      } else {
        return Status::io_error("load_thresholds: unknown precision: " + name);
      }
      if (file_precision) *file_precision = p;
      continue;
    }
    metric_t value = 0;
    if (!(ls >> value))
      return Status::io_error("load_thresholds: malformed line: " + line);
    bool known = false;
    for (const auto& f : kThresholdFields) {
      if (key == f.key) {
        out->*f.ptr = value;
        known = true;
        break;
      }
    }
    if (!known)
      return Status::io_error("load_thresholds: unknown key: " + key);
  }
  return Status::ok();
}

}  // namespace pangulu::kernels
