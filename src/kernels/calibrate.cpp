#include "kernels/calibrate.hpp"

#include <algorithm>
#include <limits>

namespace pangulu::kernels {

double policy_cost(const std::vector<PairedSample>& samples, double threshold) {
  double cost = 0;
  for (const auto& s : samples)
    cost += s.metric < threshold ? s.time_low : s.time_high;
  return cost;
}

double fit_crossover(std::vector<PairedSample> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end(),
            [](const PairedSample& a, const PairedSample& b) {
              return a.metric < b.metric;
            });
  // Suffix sums of time_high; prefix sums of time_low. Candidate thresholds
  // sit between adjacent metrics (plus the two extremes).
  const std::size_t n = samples.size();
  std::vector<double> suffix_high(n + 1, 0.0);
  for (std::size_t i = n; i > 0; --i)
    suffix_high[i - 1] = suffix_high[i] + samples[i - 1].time_high;

  double best_cost = suffix_high[0];          // threshold below everything
  double best_threshold = samples.front().metric * 0.5;
  double prefix_low = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    prefix_low += samples[i].time_low;
    const double cost = prefix_low + suffix_high[i + 1];
    if (cost < best_cost) {
      best_cost = cost;
      best_threshold = i + 1 < n
                           ? 0.5 * (samples[i].metric + samples[i + 1].metric)
                           : samples[i].metric * 2.0;
    }
  }
  return best_threshold;
}

}  // namespace pangulu::kernels
