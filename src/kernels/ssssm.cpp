#include "kernels/ssssm.hpp"

#include <algorithm>
#include <numeric>

#include "parallel/parallel_for.hpp"
#include "sparse/dense.hpp"

namespace pangulu::kernels {

namespace {

/// Column j of C -= A * B(:,j), Direct addressing: scatter C(:,j) into the
/// dense scratch, accumulate every A-column weighted by B's entries, gather.
void column_direct(const Csc& a, const Csc& b, Csc& c, index_t j, value_t* x) {
  auto crows = c.row_idx();
  auto cvals = c.values_mut();
  const nnz_t cb = c.col_begin(j), ce = c.col_end(j);
  for (nnz_t p = cb; p < ce; ++p)
    x[crows[static_cast<std::size_t>(p)]] = cvals[static_cast<std::size_t>(p)];
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    const value_t bkj = b.values()[static_cast<std::size_t>(q)];
    if (bkj == value_t(0)) continue;
    for (nnz_t p = a.col_begin(k); p < a.col_end(k); ++p) {
      x[a.row_idx()[static_cast<std::size_t>(p)]] -=
          a.values()[static_cast<std::size_t>(p)] * bkj;
    }
  }
  for (nnz_t p = cb; p < ce; ++p)
    cvals[static_cast<std::size_t>(p)] = x[crows[static_cast<std::size_t>(p)]];
  // Product entries can land on rows outside C's pattern (structurally zero
  // in the global factorisation); clear the whole scratch for the next use.
  std::fill(x, x + c.n_rows(), value_t(0));
}

/// Column j of C -= A * B(:,j), Bin-search addressing: each product entry
/// locates its slot in C's column by binary search.
void column_binsearch(const Csc& a, const Csc& b, Csc& c, index_t j) {
  auto crows = c.row_idx();
  auto cvals = c.values_mut();
  const nnz_t cb = c.col_begin(j), ce = c.col_end(j);
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    const value_t bkj = b.values()[static_cast<std::size_t>(q)];
    if (bkj == value_t(0)) continue;
    for (nnz_t p = a.col_begin(k); p < a.col_end(k); ++p) {
      const value_t aik = a.values()[static_cast<std::size_t>(p)];
      if (aik == value_t(0)) continue;
      const index_t r = a.row_idx()[static_cast<std::size_t>(p)];
      auto first = crows.begin() + cb;
      auto last = crows.begin() + ce;
      auto it = std::lower_bound(first, last, r);
      if (it != last && *it == r)
        cvals[static_cast<std::size_t>(it - crows.begin())] -= aik * bkj;
    }
  }
}

/// FLOPs of one target column: 2 * sum over B(:,j) entries of |A(:,k)|.
double column_flops(const Csc& a, const Csc& b, index_t j) {
  double f = 0;
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    f += 2.0 * static_cast<double>(a.col_end(k) - a.col_begin(k));
  }
  return f;
}

}  // namespace

Status ssssm(SsssmVariant variant, const Csc& a, const Csc& b, Csc& c,
             Workspace& ws, ThreadPool* pool) {
  if (a.n_cols() != b.n_rows() || c.n_rows() != a.n_rows() ||
      c.n_cols() != b.n_cols())
    return Status::invalid_argument("ssssm: shape mismatch");
  const index_t ncols = b.n_cols();
  const index_t nrows = a.n_rows();

  switch (variant) {
    case SsssmVariant::kCV1: {
      // Approximate equal-load partition of the column range, then a serial
      // sweep chunk by chunk (on one CPU thread, as in Table 1's C row) with
      // dense-mapped target columns.
      ws.ensure(nrows);
      std::vector<double> flops(static_cast<std::size_t>(ncols));
      for (index_t j = 0; j < ncols; ++j) flops[static_cast<std::size_t>(j)] =
          column_flops(a, b, j);
      const double total = std::accumulate(flops.begin(), flops.end(), 0.0);
      const int chunks = 8;
      const double per_chunk = total / chunks;
      // The chunk boundaries only affect traversal order/locality here, but
      // they are exactly the split a multicore C_V1 would hand its threads.
      double acc = 0;
      for (index_t j = 0; j < ncols; ++j) {
        column_direct(a, b, c, j, ws.dense_col.data());
        acc += flops[static_cast<std::size_t>(j)];
        if (acc >= per_chunk) acc = 0;  // chunk boundary (bookkeeping only)
      }
      return Status::ok();
    }
    case SsssmVariant::kCV2: {
      // Adaptive split-bin: order columns into work bins (heavy -> light) so
      // cache-resident A columns are reused while the work is still large.
      std::vector<index_t> order(static_cast<std::size_t>(ncols));
      std::iota(order.begin(), order.end(), index_t(0));
      std::vector<double> flops(static_cast<std::size_t>(ncols));
      for (index_t j = 0; j < ncols; ++j)
        flops[static_cast<std::size_t>(j)] = column_flops(a, b, j);
      std::stable_sort(order.begin(), order.end(), [&](index_t x, index_t y) {
        return flops[static_cast<std::size_t>(x)] > flops[static_cast<std::size_t>(y)];
      });
      for (index_t j : order) column_binsearch(a, b, c, j);
      return Status::ok();
    }
    case SsssmVariant::kGV1: {
      // Adaptive multi-level: per-column strategy choice. Heavy columns map
      // into dense scratch (O(1) addressing), light ones use bin-search
      // (no scatter/gather cost).
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      const double dense_threshold = 4.0 * static_cast<double>(nrows);
      parallel_for(tp, 0, ncols, [&](index_t j) {
        if (column_flops(a, b, j) >= dense_threshold) {
          thread_local std::vector<value_t> x;
          if (static_cast<index_t>(x.size()) < nrows)
            x.assign(static_cast<std::size_t>(nrows), value_t(0));
          column_direct(a, b, c, j, x.data());
        } else {
          column_binsearch(a, b, c, j);
        }
      });
      return Status::ok();
    }
    case SsssmVariant::kGV2: {
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      parallel_for(tp, 0, ncols, [&](index_t j) {
        thread_local std::vector<value_t> x;
        if (static_cast<index_t>(x.size()) < nrows)
          x.assign(static_cast<std::size_t>(nrows), value_t(0));
        column_direct(a, b, c, j, x.data());
      });
      return Status::ok();
    }
  }
  return Status::internal("unreachable");
}

Status ssssm_reference(const Csc& a, const Csc& b, Csc& c) {
  Dense da = Dense::from_csc(a);
  Dense db = Dense::from_csc(b);
  Dense dc = Dense::from_csc(c);
  Dense::gemm_sub(da, db, dc);
  for (index_t j = 0; j < c.n_cols(); ++j) {
    for (nnz_t p = c.col_begin(j); p < c.col_end(j); ++p)
      c.values_mut()[static_cast<std::size_t>(p)] =
          dc(c.row_idx()[static_cast<std::size_t>(p)], j);
  }
  return Status::ok();
}

}  // namespace pangulu::kernels
