#include "kernels/ssssm.hpp"

#include <algorithm>
#include <numeric>

#include "parallel/parallel_for.hpp"
#include "sparse/dense.hpp"

namespace pangulu::kernels {

namespace {

/// Column j of C -= A * B(:,j), Direct addressing via the stamped sparse
/// accumulator: C(:,j)'s rows are registered in the workspace slot map under
/// a fresh generation, then every product entry addresses its CSC slot in
/// O(1). Entries whose row carries a stale stamp are outside C's pattern
/// (structurally zero in the global factorisation) and are skipped — no
/// scatter, gather or O(n_rows) reset ever happens.
/// Column j of C -= A * B(:,j) when C(:,j) is fully dense (every row of the
/// block present). A dense target column needs no slot map at all: row r
/// lives at cb + r, so sparse A columns scatter by row index directly, and
/// fully dense A columns reduce to a contiguous axpy — the vectorizable,
/// bandwidth-bound loop where the FP32 instantiation pays half the memory
/// traffic of FP64 (DESIGN.md §14). Returns false when C(:,j) is not dense.
template <class V>
bool column_dense(const CscT<V>& a, const CscT<V>& b, CscT<V>& c, index_t j) {
  const nnz_t cb = c.col_begin(j), ce = c.col_end(j);
  const index_t nrows = a.n_rows();
  if (ce - cb != static_cast<nnz_t>(nrows)) return false;
  V* PANGULU_RESTRICT cv = c.values_mut().data() + static_cast<std::size_t>(cb);
  const auto arows = a.row_idx();
  const V* av = a.values().data();
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    const V bkj = b.values()[static_cast<std::size_t>(q)];
    if (bkj == V(0)) continue;
    const nnz_t ab = a.col_begin(k), ae = a.col_end(k);
    if (ae - ab == static_cast<nnz_t>(nrows)) {
      const V* PANGULU_RESTRICT ac = av + static_cast<std::size_t>(ab);
      for (index_t i = 0; i < nrows; ++i)
        cv[static_cast<std::size_t>(i)] -= ac[static_cast<std::size_t>(i)] * bkj;
    } else {
      for (nnz_t p = ab; p < ae; ++p)
        cv[static_cast<std::size_t>(arows[static_cast<std::size_t>(p)])] -=
            av[static_cast<std::size_t>(p)] * bkj;
    }
  }
  return true;
}

template <class V>
void column_direct(const CscT<V>& a, const CscT<V>& b, CscT<V>& c, index_t j,
                   Workspace& ws) {
  if (column_dense(a, b, c, j)) return;
  auto crows = c.row_idx();
  auto cvals = c.values_mut();
  const nnz_t cb = c.col_begin(j), ce = c.col_end(j);
  const index_t gen = ws.open_column();
  for (nnz_t p = cb; p < ce; ++p) {
    const auto r = static_cast<std::size_t>(crows[static_cast<std::size_t>(p)]);
    ws.slot[r] = p;
    ws.stamp[r] = gen;
  }
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    const V bkj = b.values()[static_cast<std::size_t>(q)];
    if (bkj == V(0)) continue;
    for (nnz_t p = a.col_begin(k); p < a.col_end(k); ++p) {
      const auto r = static_cast<std::size_t>(a.row_idx()[static_cast<std::size_t>(p)]);
      if (ws.stamp[r] != gen) continue;
      cvals[static_cast<std::size_t>(ws.slot[r])] -=
          a.values()[static_cast<std::size_t>(p)] * bkj;
    }
  }
}

/// Column j of C -= A * B(:,j), Bin-search addressing: each product entry
/// locates its slot in C's column by binary search.
template <class V>
void column_binsearch(const CscT<V>& a, const CscT<V>& b, CscT<V>& c,
                      index_t j) {
  if (column_dense(a, b, c, j)) return;
  auto crows = c.row_idx();
  auto cvals = c.values_mut();
  const nnz_t cb = c.col_begin(j), ce = c.col_end(j);
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    const V bkj = b.values()[static_cast<std::size_t>(q)];
    if (bkj == V(0)) continue;
    for (nnz_t p = a.col_begin(k); p < a.col_end(k); ++p) {
      const V aik = a.values()[static_cast<std::size_t>(p)];
      if (aik == V(0)) continue;
      const index_t r = a.row_idx()[static_cast<std::size_t>(p)];
      auto first = crows.begin() + cb;
      auto last = crows.begin() + ce;
      auto it = std::lower_bound(first, last, r);
      if (it != last && *it == r)
        cvals[static_cast<std::size_t>(it - crows.begin())] -= aik * bkj;
    }
  }
}

/// Column j of C -= A * B(:,j), Merge addressing (the paper's third
/// strategy): both A's column and C's column keep ascending row order, so
/// one two-pointer sweep pairs every product entry with its target slot.
template <class V>
void column_merge(const CscT<V>& a, const CscT<V>& b, CscT<V>& c, index_t j) {
  if (column_dense(a, b, c, j)) return;
  auto crows = c.row_idx();
  auto cvals = c.values_mut();
  const nnz_t cb = c.col_begin(j), ce = c.col_end(j);
  auto arows = a.row_idx();
  auto avals = a.values();
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    const V bkj = b.values()[static_cast<std::size_t>(q)];
    if (bkj == V(0)) continue;
    nnz_t ap = a.col_begin(k);
    const nnz_t ae = a.col_end(k);
    nnz_t cp = cb;
    while (ap < ae && cp < ce) {
      const index_t ar = arows[static_cast<std::size_t>(ap)];
      const index_t cr = crows[static_cast<std::size_t>(cp)];
      if (ar == cr) {
        cvals[static_cast<std::size_t>(cp)] -=
            avals[static_cast<std::size_t>(ap)] * bkj;
        ++ap;
        ++cp;
      } else if (ar < cr) {
        ++ap;
      } else {
        ++cp;
      }
    }
  }
}

/// FLOPs of one target column: 2 * sum over B(:,j) entries of |A(:,k)|.
template <class V>
flops_t column_flops(const CscT<V>& a, const CscT<V>& b, index_t j) {
  flops_t f = 0;
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    f += 2.0 * static_cast<flops_t>(a.col_end(k) - a.col_begin(k));
  }
  return f;
}

/// Fill the workspace per-column FLOP cache once per kernel invocation; all
/// variants that weigh columns read from here instead of recomputing.
template <class V>
void fill_col_flops(const CscT<V>& a, const CscT<V>& b, Workspace& ws) {
  const index_t ncols = b.n_cols();
  ws.col_flops.resize(static_cast<std::size_t>(ncols));
  for (index_t j = 0; j < ncols; ++j)
    ws.col_flops[static_cast<std::size_t>(j)] = column_flops(a, b, j);
}

}  // namespace

template <class V>
Status ssssm(SsssmVariant variant, const CscT<V>& a, const CscT<V>& b,
             CscT<V>& c, Workspace& ws, ThreadPool* pool) {
  if (a.n_cols() != b.n_rows() || c.n_rows() != a.n_rows() ||
      c.n_cols() != b.n_cols())
    return Status::invalid_argument("ssssm: shape mismatch");
  const index_t ncols = b.n_cols();
  const index_t nrows = a.n_rows();
  SubnormalGuard<V> ftz;

  switch (variant) {
    case SsssmVariant::kCV1: {
      // Approximate equal-load partition of the column range, then a serial
      // sweep chunk by chunk (on one CPU thread, as in Table 1's C row) with
      // stamp-mapped target columns.
      ws.ensure(nrows);
      fill_col_flops(a, b, ws);
      const flops_t total =
          std::accumulate(ws.col_flops.begin(), ws.col_flops.end(), flops_t(0));
      const int chunks = 8;
      const flops_t per_chunk = total / chunks;
      // The chunk boundaries only affect traversal order/locality here, but
      // they are exactly the split a multicore C_V1 would hand its threads.
      flops_t acc = 0;
      for (index_t j = 0; j < ncols; ++j) {
        column_direct(a, b, c, j, ws);
        acc += ws.col_flops[static_cast<std::size_t>(j)];
        if (acc >= per_chunk) acc = 0;  // chunk boundary (bookkeeping only)
      }
      return Status::ok();
    }
    case SsssmVariant::kCV2: {
      // Adaptive split-bin: order columns into work bins (heavy -> light) so
      // cache-resident A columns are reused while the work is still large.
      fill_col_flops(a, b, ws);
      std::vector<index_t> order(static_cast<std::size_t>(ncols));
      std::iota(order.begin(), order.end(), index_t(0));
      std::stable_sort(order.begin(), order.end(), [&](index_t x, index_t y) {
        return ws.col_flops[static_cast<std::size_t>(x)] >
               ws.col_flops[static_cast<std::size_t>(y)];
      });
      for (index_t j : order) column_binsearch(a, b, c, j);
      return Status::ok();
    }
    case SsssmVariant::kCV3: {
      // Serial Merge addressing: cheapest per-entry work when A's columns
      // and C's column have comparable lengths (mid-density band).
      for (index_t j = 0; j < ncols; ++j) column_merge(a, b, c, j);
      return Status::ok();
    }
    case SsssmVariant::kGV1: {
      // Adaptive multi-level: per-column strategy choice. Heavy columns use
      // the stamped slot map (O(1) addressing), light ones use bin-search
      // (no slot registration cost). Column weights come from the cache.
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      fill_col_flops(a, b, ws);
      const flops_t dense_threshold = 4.0 * static_cast<flops_t>(nrows);
      parallel_for_chunks(tp, 0, ncols, [&](index_t lo, index_t hi) {
        SubnormalGuard<V> worker_ftz;
        Workspace::Lease lw(ws);
        lw->ensure(nrows);
        for (index_t j = lo; j < hi; ++j) {
          if (ws.col_flops[static_cast<std::size_t>(j)] >= dense_threshold)
            column_direct(a, b, c, j, *lw);
          else
            column_binsearch(a, b, c, j);
        }
      });
      return Status::ok();
    }
    case SsssmVariant::kGV2: {
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      parallel_for_chunks(tp, 0, ncols, [&](index_t lo, index_t hi) {
        SubnormalGuard<V> worker_ftz;
        Workspace::Lease lw(ws);
        lw->ensure(nrows);
        for (index_t j = lo; j < hi; ++j) column_direct(a, b, c, j, *lw);
      });
      return Status::ok();
    }
    case SsssmVariant::kGV3: {
      // Parallel Merge addressing: columns are independent and the merge
      // needs no scratch at all, so this is the simplest parallel variant.
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      parallel_for(tp, 0, ncols, [&](index_t j) {
        SubnormalGuard<V> worker_ftz;
        column_merge(a, b, c, j);
      });
      return Status::ok();
    }
  }
  return Status::internal("unreachable");
}

template <class V>
Status ssssm_reference(const CscT<V>& a, const CscT<V>& b, CscT<V>& c) {
  DenseT<V> da = DenseT<V>::from_csc(a);
  DenseT<V> db = DenseT<V>::from_csc(b);
  DenseT<V> dc = DenseT<V>::from_csc(c);
  DenseT<V>::gemm_sub(da, db, dc);
  for (index_t j = 0; j < c.n_cols(); ++j) {
    for (nnz_t p = c.col_begin(j); p < c.col_end(j); ++p)
      c.values_mut()[static_cast<std::size_t>(p)] =
          dc(c.row_idx()[static_cast<std::size_t>(p)], j);
  }
  return Status::ok();
}

template Status ssssm<float>(SsssmVariant, const CscT<float>&,
                             const CscT<float>&, CscT<float>&, Workspace&,
                             ThreadPool*);
template Status ssssm<double>(SsssmVariant, const CscT<double>&,
                              const CscT<double>&, CscT<double>&, Workspace&,
                              ThreadPool*);
template Status ssssm_reference<float>(const CscT<float>&, const CscT<float>&,
                                       CscT<float>&);
template Status ssssm_reference<double>(const CscT<double>&,
                                        const CscT<double>&, CscT<double>&);

}  // namespace pangulu::kernels
