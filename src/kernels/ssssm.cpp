#include "kernels/ssssm.hpp"

#include <algorithm>
#include <numeric>

#include "parallel/parallel_for.hpp"
#include "sparse/dense.hpp"

namespace pangulu::kernels {

namespace {

/// Column j of C -= A * B(:,j), Direct addressing via the stamped sparse
/// accumulator: C(:,j)'s rows are registered in the workspace slot map under
/// a fresh generation, then every product entry addresses its CSC slot in
/// O(1). Entries whose row carries a stale stamp are outside C's pattern
/// (structurally zero in the global factorisation) and are skipped — no
/// scatter, gather or O(n_rows) reset ever happens.
void column_direct(const Csc& a, const Csc& b, Csc& c, index_t j,
                   Workspace& ws) {
  auto crows = c.row_idx();
  auto cvals = c.values_mut();
  const nnz_t cb = c.col_begin(j), ce = c.col_end(j);
  const index_t gen = ws.open_column();
  for (nnz_t p = cb; p < ce; ++p) {
    const auto r = static_cast<std::size_t>(crows[static_cast<std::size_t>(p)]);
    ws.slot[r] = p;
    ws.stamp[r] = gen;
  }
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    const value_t bkj = b.values()[static_cast<std::size_t>(q)];
    if (bkj == value_t(0)) continue;
    for (nnz_t p = a.col_begin(k); p < a.col_end(k); ++p) {
      const auto r = static_cast<std::size_t>(a.row_idx()[static_cast<std::size_t>(p)]);
      if (ws.stamp[r] != gen) continue;
      cvals[static_cast<std::size_t>(ws.slot[r])] -=
          a.values()[static_cast<std::size_t>(p)] * bkj;
    }
  }
}

/// Column j of C -= A * B(:,j), Bin-search addressing: each product entry
/// locates its slot in C's column by binary search.
void column_binsearch(const Csc& a, const Csc& b, Csc& c, index_t j) {
  auto crows = c.row_idx();
  auto cvals = c.values_mut();
  const nnz_t cb = c.col_begin(j), ce = c.col_end(j);
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    const value_t bkj = b.values()[static_cast<std::size_t>(q)];
    if (bkj == value_t(0)) continue;
    for (nnz_t p = a.col_begin(k); p < a.col_end(k); ++p) {
      const value_t aik = a.values()[static_cast<std::size_t>(p)];
      if (aik == value_t(0)) continue;
      const index_t r = a.row_idx()[static_cast<std::size_t>(p)];
      auto first = crows.begin() + cb;
      auto last = crows.begin() + ce;
      auto it = std::lower_bound(first, last, r);
      if (it != last && *it == r)
        cvals[static_cast<std::size_t>(it - crows.begin())] -= aik * bkj;
    }
  }
}

/// Column j of C -= A * B(:,j), Merge addressing (the paper's third
/// strategy): both A's column and C's column keep ascending row order, so
/// one two-pointer sweep pairs every product entry with its target slot.
void column_merge(const Csc& a, const Csc& b, Csc& c, index_t j) {
  auto crows = c.row_idx();
  auto cvals = c.values_mut();
  const nnz_t cb = c.col_begin(j), ce = c.col_end(j);
  auto arows = a.row_idx();
  auto avals = a.values();
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    const value_t bkj = b.values()[static_cast<std::size_t>(q)];
    if (bkj == value_t(0)) continue;
    nnz_t ap = a.col_begin(k);
    const nnz_t ae = a.col_end(k);
    nnz_t cp = cb;
    while (ap < ae && cp < ce) {
      const index_t ar = arows[static_cast<std::size_t>(ap)];
      const index_t cr = crows[static_cast<std::size_t>(cp)];
      if (ar == cr) {
        cvals[static_cast<std::size_t>(cp)] -=
            avals[static_cast<std::size_t>(ap)] * bkj;
        ++ap;
        ++cp;
      } else if (ar < cr) {
        ++ap;
      } else {
        ++cp;
      }
    }
  }
}

/// FLOPs of one target column: 2 * sum over B(:,j) entries of |A(:,k)|.
double column_flops(const Csc& a, const Csc& b, index_t j) {
  double f = 0;
  for (nnz_t q = b.col_begin(j); q < b.col_end(j); ++q) {
    const index_t k = b.row_idx()[static_cast<std::size_t>(q)];
    f += 2.0 * static_cast<double>(a.col_end(k) - a.col_begin(k));
  }
  return f;
}

/// Fill the workspace per-column FLOP cache once per kernel invocation; all
/// variants that weigh columns read from here instead of recomputing.
void fill_col_flops(const Csc& a, const Csc& b, Workspace& ws) {
  const index_t ncols = b.n_cols();
  ws.col_flops.resize(static_cast<std::size_t>(ncols));
  for (index_t j = 0; j < ncols; ++j)
    ws.col_flops[static_cast<std::size_t>(j)] = column_flops(a, b, j);
}

}  // namespace

Status ssssm(SsssmVariant variant, const Csc& a, const Csc& b, Csc& c,
             Workspace& ws, ThreadPool* pool) {
  if (a.n_cols() != b.n_rows() || c.n_rows() != a.n_rows() ||
      c.n_cols() != b.n_cols())
    return Status::invalid_argument("ssssm: shape mismatch");
  const index_t ncols = b.n_cols();
  const index_t nrows = a.n_rows();

  switch (variant) {
    case SsssmVariant::kCV1: {
      // Approximate equal-load partition of the column range, then a serial
      // sweep chunk by chunk (on one CPU thread, as in Table 1's C row) with
      // stamp-mapped target columns.
      ws.ensure(nrows);
      fill_col_flops(a, b, ws);
      const double total =
          std::accumulate(ws.col_flops.begin(), ws.col_flops.end(), 0.0);
      const int chunks = 8;
      const double per_chunk = total / chunks;
      // The chunk boundaries only affect traversal order/locality here, but
      // they are exactly the split a multicore C_V1 would hand its threads.
      double acc = 0;
      for (index_t j = 0; j < ncols; ++j) {
        column_direct(a, b, c, j, ws);
        acc += ws.col_flops[static_cast<std::size_t>(j)];
        if (acc >= per_chunk) acc = 0;  // chunk boundary (bookkeeping only)
      }
      return Status::ok();
    }
    case SsssmVariant::kCV2: {
      // Adaptive split-bin: order columns into work bins (heavy -> light) so
      // cache-resident A columns are reused while the work is still large.
      fill_col_flops(a, b, ws);
      std::vector<index_t> order(static_cast<std::size_t>(ncols));
      std::iota(order.begin(), order.end(), index_t(0));
      std::stable_sort(order.begin(), order.end(), [&](index_t x, index_t y) {
        return ws.col_flops[static_cast<std::size_t>(x)] >
               ws.col_flops[static_cast<std::size_t>(y)];
      });
      for (index_t j : order) column_binsearch(a, b, c, j);
      return Status::ok();
    }
    case SsssmVariant::kCV3: {
      // Serial Merge addressing: cheapest per-entry work when A's columns
      // and C's column have comparable lengths (mid-density band).
      for (index_t j = 0; j < ncols; ++j) column_merge(a, b, c, j);
      return Status::ok();
    }
    case SsssmVariant::kGV1: {
      // Adaptive multi-level: per-column strategy choice. Heavy columns use
      // the stamped slot map (O(1) addressing), light ones use bin-search
      // (no slot registration cost). Column weights come from the cache.
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      fill_col_flops(a, b, ws);
      const double dense_threshold = 4.0 * static_cast<double>(nrows);
      parallel_for_chunks(tp, 0, ncols, [&](index_t lo, index_t hi) {
        Workspace::Lease lw(ws);
        lw->ensure(nrows);
        for (index_t j = lo; j < hi; ++j) {
          if (ws.col_flops[static_cast<std::size_t>(j)] >= dense_threshold)
            column_direct(a, b, c, j, *lw);
          else
            column_binsearch(a, b, c, j);
        }
      });
      return Status::ok();
    }
    case SsssmVariant::kGV2: {
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      parallel_for_chunks(tp, 0, ncols, [&](index_t lo, index_t hi) {
        Workspace::Lease lw(ws);
        lw->ensure(nrows);
        for (index_t j = lo; j < hi; ++j) column_direct(a, b, c, j, *lw);
      });
      return Status::ok();
    }
    case SsssmVariant::kGV3: {
      // Parallel Merge addressing: columns are independent and the merge
      // needs no scratch at all, so this is the simplest parallel variant.
      ThreadPool& tp = pool ? *pool : ThreadPool::global();
      parallel_for(tp, 0, ncols, [&](index_t j) { column_merge(a, b, c, j); });
      return Status::ok();
    }
  }
  return Status::internal("unreachable");
}

Status ssssm_reference(const Csc& a, const Csc& b, Csc& c) {
  Dense da = Dense::from_csc(a);
  Dense db = Dense::from_csc(b);
  Dense dc = Dense::from_csc(c);
  Dense::gemm_sub(da, db, dc);
  for (index_t j = 0; j < c.n_cols(); ++j) {
    for (nnz_t p = c.col_begin(j); p < c.col_end(j); ++p)
      c.values_mut()[static_cast<std::size_t>(p)] =
          dc(c.row_idx()[static_cast<std::size_t>(p)], j);
  }
  return Status::ok();
}

}  // namespace pangulu::kernels
