// Precision model of the numeric stack (DESIGN.md §14).
//
// Every kernel, block value store and solve sweep is templated on its value
// type V ∈ {float, double}; this header is the single place where the
// numeric stack is allowed to spell a concrete floating-point type. All
// other code in src/kernels/ must use the aliases below — tools/lint.sh
// rejects a raw `double` anywhere else under src/kernels/, so a new kernel
// cannot silently re-hardwire FP64.
//
// The aliases separate the two very different roles "double" used to play:
//   * storage values  — now the template parameter V (FP32 halves the
//     memory traffic of the bandwidth-bound numeric hot path);
//   * work/cost/time scalars (FLOP counts, selector metrics, wall-clock
//     seconds, pivot tolerances) — always FP64, because they are control
//     data, not matrix data, and their precision never touches the factors.
#pragma once

#include <cstdint>

#if defined(__SSE2__)
#include <xmmintrin.h>
#endif

namespace pangulu::kernels {

/// Value-precision mode of a factorisation/solve pipeline.
///   kDouble  — FP64 everywhere (the historical behaviour).
///   kSingle  — FP32 factors and FP32 solves; accuracy is FP32's.
///   kMixedIR — FP32 factors + FP32 correction solves wrapped in an FP64
///              iterative-refinement loop against the original matrix;
///              accuracy is restored to FP64 (DESIGN.md §14).
enum class Precision : std::int32_t {
  kDouble = 0,
  kSingle = 1,
  kMixedIR = 2,
};

/// FLOP counts and other work estimates. Control data: always FP64.
using flops_t = double;
/// Wall-clock / modeled time in seconds. Control data: always FP64.
using seconds_t = double;
/// Kernel-selector decision metrics and thresholds (nnz or FLOPs as a
/// continuous quantity). Control data: always FP64.
using metric_t = double;
/// Pivot/convergence tolerances. Control data: always FP64.
using tolerance_t = double;

/// True for the modes whose numeric phase stores FP32 factors.
inline constexpr bool stores_fp32(Precision p) {
  return p != Precision::kDouble;
}

/// Stable lower_snake_case name (thresholds files, benches, diagnostics).
inline const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kDouble:
      return "double";
    case Precision::kSingle:
      return "single";
    case Precision::kMixedIR:
      return "mixed_ir";
  }
  return "unknown";
}

/// Scoped flush-to-zero of FP32 subnormals (x86 MXCSR FTZ+DAZ bits; a no-op
/// elsewhere). Exponentially decaying Schur-complement updates drive FP32
/// intermediates below FLT_MIN long before the FP64 run would notice, and
/// each subnormal operand costs a microcode assist — on the fem3d/grid3d
/// families that turns the "faster" FP32 numeric phase 5x *slower* than
/// FP64. Flushing them to zero restores hardware-speed arithmetic and
/// perturbs the factors by less than the FP32 rounding the mixed-precision
/// IR loop already absorbs (DESIGN.md §14).
///
/// MXCSR is per-thread state, so kernels instantiate the guard both in the
/// dispatching function (serial variants, calling-thread chunks) and inside
/// every pool-worker lambda — every thread that touches FP32 values flushes,
/// keeping results bitwise identical across schedulers and thread counts.
class ScopedSubnormalFlush {
 public:
  ScopedSubnormalFlush() {
#if defined(__SSE2__)
    saved_ = _mm_getcsr();
    _mm_setcsr(saved_ | 0x8040u);  // FTZ (bit 15) | DAZ (bit 6)
#endif
  }
  ~ScopedSubnormalFlush() {
#if defined(__SSE2__)
    _mm_setcsr(saved_);
#endif
  }
  ScopedSubnormalFlush(const ScopedSubnormalFlush&) = delete;
  ScopedSubnormalFlush& operator=(const ScopedSubnormalFlush&) = delete;

 private:
#if defined(__SSE2__)
  unsigned saved_ = 0;
#endif
};

/// Per-value-type guard: flushes subnormals for FP32 kernels, a no-op for
/// FP64 (whose subnormal range the factorisations here never reach, and
/// whose semantics must stay exactly IEEE for the reference results).
template <class V>
struct SubnormalGuard {};
template <>
struct SubnormalGuard<float> : ScopedSubnormalFlush {};

/// Storage value type per precision: both FP32-storing modes factor in
/// float; only kDouble stores FP64 factors.
template <Precision P>
struct PrecisionTraits {
  using value_type = float;
};
template <>
struct PrecisionTraits<Precision::kDouble> {
  using value_type = double;
};

}  // namespace pangulu::kernels
