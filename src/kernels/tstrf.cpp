#include "kernels/tstrf.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "parallel/parallel_for.hpp"
#include "sparse/dense.hpp"

namespace pangulu::kernels {

namespace {

/// Dense-target fast path shared by Merge and Bin-search addressing: when
/// B's target column holds every row, a source row IS its value position, so
/// the update scatters directly — and a dense source column makes it a
/// contiguous axpy, the vectorizable loop where FP32 halves the traffic
/// (DESIGN.md §14). Same subtraction order as the addressing variants, so
/// results stay bitwise equal. Returns false when B(:,j) is not dense.
template <class V>
bool axpy_dense(CscT<V>& b, index_t k, index_t j, V ukj) {
  const nnz_t tb = b.col_begin(j), te = b.col_end(j);
  const auto n = static_cast<nnz_t>(b.n_rows());
  if (te - tb != n) return false;
  const nnz_t sb = b.col_begin(k), se = b.col_end(k);
  V* PANGULU_RESTRICT tv = b.values_mut().data() + static_cast<std::size_t>(tb);
  const V* sv = b.values().data();
  if (se - sb == n) {
    const V* PANGULU_RESTRICT sc = sv + static_cast<std::size_t>(sb);
    for (nnz_t i = 0; i < n; ++i)
      tv[static_cast<std::size_t>(i)] -= sc[static_cast<std::size_t>(i)] * ukj;
  } else {
    auto brows = b.row_idx();
    for (nnz_t q = sb; q < se; ++q)
      tv[static_cast<std::size_t>(brows[static_cast<std::size_t>(q)])] -=
          sv[static_cast<std::size_t>(q)] * ukj;
  }
  return true;
}

/// Apply column k's contribution to column j with Merge addressing.
/// Source X(:,k) lives in B.
template <class V>
void axpy_merge(CscT<V>& b, index_t k, index_t j, V ukj) {
  if (axpy_dense(b, k, j, ukj)) return;
  auto brows = b.row_idx();
  auto bvals = b.values_mut();
  nnz_t sq = b.col_begin(k);
  const nnz_t send = b.col_end(k);
  nnz_t tq = b.col_begin(j);
  const nnz_t tend = b.col_end(j);
  while (sq < send && tq < tend) {
    const index_t sr = brows[static_cast<std::size_t>(sq)];
    const index_t tr = brows[static_cast<std::size_t>(tq)];
    if (sr == tr) {
      bvals[static_cast<std::size_t>(tq)] -=
          bvals[static_cast<std::size_t>(sq)] * ukj;
      ++sq;
      ++tq;
    } else if (sr < tr) {
      ++sq;
    } else {
      ++tq;
    }
  }
}

template <class V>
void axpy_binsearch(CscT<V>& b, index_t k, index_t j, V ukj) {
  if (axpy_dense(b, k, j, ukj)) return;
  auto brows = b.row_idx();
  auto bvals = b.values_mut();
  const nnz_t tb = b.col_begin(j), te = b.col_end(j);
  for (nnz_t sq = b.col_begin(k); sq < b.col_end(k); ++sq) {
    const V v = bvals[static_cast<std::size_t>(sq)];
    if (v == V(0)) continue;
    const index_t r = brows[static_cast<std::size_t>(sq)];
    auto first = brows.begin() + tb;
    auto last = brows.begin() + te;
    auto it = std::lower_bound(first, last, r);
    if (it != last && *it == r)
      bvals[static_cast<std::size_t>(it - brows.begin())] -= v * ukj;
  }
}

template <class V>
void scale_column(CscT<V>& b, index_t j, V ujj) {
  auto bvals = b.values_mut();
  for (nnz_t p = b.col_begin(j); p < b.col_end(j); ++p)
    bvals[static_cast<std::size_t>(p)] /= ujj;
}

/// Process column j fully (all incoming axpys then the divide) with Merge or
/// Bin-search addressing.
template <class V>
void solve_column_axpy(const CscT<V>& u, CscT<V>& b, index_t j,
                       Addressing addr) {
  auto urows = u.row_idx();
  auto uvals = u.values();
  V ujj = V(0);
  for (nnz_t q = u.col_begin(j); q < u.col_end(j); ++q) {
    const index_t k = urows[static_cast<std::size_t>(q)];
    if (k > j) break;
    if (k == j) {
      ujj = uvals[static_cast<std::size_t>(q)];
      continue;
    }
    const V ukj = uvals[static_cast<std::size_t>(q)];
    if (ukj == V(0)) continue;
    if (addr == Addressing::kMerge)
      axpy_merge(b, k, j, ukj);
    else
      axpy_binsearch(b, k, j, ukj);
  }
  PANGULU_CHECK(ujj != V(0), "TSTRF: zero diagonal in U");
  scale_column(b, j, ujj);
}

/// Process column j with Direct addressing via the stamped accumulator: the
/// target column's rows are registered under a fresh generation; source
/// entries whose row carries a stale stamp lie outside the column pattern
/// and are skipped. Fully in place — no scatter/gather/reset.
template <class V>
void solve_column_direct(const CscT<V>& u, CscT<V>& b, index_t j,
                         Workspace& ws) {
  // Dense target: the axpy path needs no slot registration at all.
  if (b.col_end(j) - b.col_begin(j) == static_cast<nnz_t>(b.n_rows())) {
    solve_column_axpy(u, b, j, Addressing::kBinSearch);
    return;
  }
  auto urows = u.row_idx();
  auto uvals = u.values();
  auto brows = b.row_idx();
  auto bvals = b.values_mut();
  const nnz_t jb = b.col_begin(j), je = b.col_end(j);
  const index_t gen = ws.open_column();
  for (nnz_t p = jb; p < je; ++p) {
    const auto r = static_cast<std::size_t>(brows[static_cast<std::size_t>(p)]);
    ws.slot[r] = p;
    ws.stamp[r] = gen;
  }
  V ujj = V(0);
  for (nnz_t q = u.col_begin(j); q < u.col_end(j); ++q) {
    const index_t k = urows[static_cast<std::size_t>(q)];
    if (k > j) break;
    if (k == j) {
      ujj = uvals[static_cast<std::size_t>(q)];
      continue;
    }
    const V ukj = uvals[static_cast<std::size_t>(q)];
    if (ukj == V(0)) continue;
    for (nnz_t sq = b.col_begin(k); sq < b.col_end(k); ++sq) {
      const auto r = static_cast<std::size_t>(brows[static_cast<std::size_t>(sq)]);
      if (ws.stamp[r] != gen) continue;
      bvals[static_cast<std::size_t>(ws.slot[r])] -=
          bvals[static_cast<std::size_t>(sq)] * ukj;
    }
  }
  PANGULU_CHECK(ujj != V(0), "TSTRF: zero diagonal in U");
  for (nnz_t p = jb; p < je; ++p) bvals[static_cast<std::size_t>(p)] /= ujj;
}

/// Column-parallel scheduling for G_V1/G_V3/G_V4: dep[j] counts
/// strictly-upper entries of U's column j; a finished column releases its
/// dependents through U's row structure — dependency counters instead of
/// barriers. Direct addressing leases a pooled child workspace per worker.
template <class V>
Status solve_columns_parallel(const CscT<V>& u, CscT<V>& b, ThreadPool* pool,
                              Addressing addr, Workspace* ws) {
  const index_t n = u.n_cols();
  auto urows = u.row_idx();
  const RowView rv = RowView::build(u);

  std::vector<std::atomic<index_t>> dep(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    index_t cnt = 0;
    for (nnz_t p = u.col_begin(j); p < u.col_end(j); ++p) {
      if (urows[static_cast<std::size_t>(p)] >= j) break;
      ++cnt;
    }
    dep[static_cast<std::size_t>(j)].store(cnt, std::memory_order_relaxed);
  }
  std::vector<std::atomic<index_t>> queue(static_cast<std::size_t>(n));
  for (auto& q : queue) q.store(-1, std::memory_order_relaxed);
  std::atomic<index_t> push_cursor{0}, pop_cursor{0}, done_count{0};
  auto push_ready = [&](index_t j) {
    index_t slot = push_cursor.fetch_add(1, std::memory_order_relaxed);
    queue[static_cast<std::size_t>(slot)].store(j, std::memory_order_release);
  };
  for (index_t j = 0; j < n; ++j) {
    if (dep[static_cast<std::size_t>(j)].load(std::memory_order_relaxed) == 0)
      push_ready(j);
  }

  auto process = [&](index_t j, Workspace* local) {
    if (addr == Addressing::kDirect)
      solve_column_direct(u, b, j, *local);
    else
      solve_column_axpy(u, b, j, addr);
    for (nnz_t rp = rv.ptr[static_cast<std::size_t>(j)];
         rp < rv.ptr[static_cast<std::size_t>(j) + 1]; ++rp) {
      const index_t m = rv.col[static_cast<std::size_t>(rp)];
      if (m <= j) continue;
      if (dep[static_cast<std::size_t>(m)].fetch_sub(
              1, std::memory_order_acq_rel) == 1)
        push_ready(m);
    }
    done_count.fetch_add(1, std::memory_order_release);
  };

  auto worker = [&]() {
    SubnormalGuard<V> worker_ftz;
    Workspace* local = nullptr;
    std::optional<Workspace::Lease> lease;
    if (addr == Addressing::kDirect) {
      lease.emplace(*ws);
      local = &**lease;
      local->ensure(b.n_rows());
    }
    for (;;) {
      if (done_count.load(std::memory_order_acquire) >= n) return;
      index_t slot = pop_cursor.load(std::memory_order_relaxed);
      if (slot >= n || slot >= push_cursor.load(std::memory_order_acquire)) {
        std::this_thread::yield();
        continue;
      }
      if (!pop_cursor.compare_exchange_weak(slot, slot + 1,
                                            std::memory_order_acq_rel))
        continue;
      index_t j;
      while ((j = queue[static_cast<std::size_t>(slot)].load(
                  std::memory_order_acquire)) < 0)
        std::this_thread::yield();
      process(j, local);
    }
  };

  const std::size_t nthreads = pool ? pool->size() : 1;
  if (nthreads <= 1 || n < 64) {
    worker();
  } else {
    std::atomic<int> finished{0};
    const int extra = static_cast<int>(nthreads) - 1;
    for (int t = 0; t < extra; ++t)
      pool->submit([&worker, &finished] {
        worker();
        finished.fetch_add(1, std::memory_order_release);
      });
    worker();
    while (finished.load(std::memory_order_acquire) < extra)
      std::this_thread::yield();
  }
  return Status::ok();
}

/// Row-parallel un-sync variant (G_V2): each row of B solves x U = b
/// independently using a row-major view; no inter-row communication.
template <class V>
Status solve_rows_parallel(const CscT<V>& u, CscT<V>& b, ThreadPool* pool) {
  const RowView rb = RowView::build(b);
  auto bvals = b.values_mut();
  auto urows = u.row_idx();
  auto uvals = u.values();

  ThreadPool& tp = pool ? *pool : ThreadPool::global();
  parallel_for(tp, 0, b.n_rows(), [&](index_t i) {
    SubnormalGuard<V> worker_ftz;
    const nnz_t ib = rb.ptr[static_cast<std::size_t>(i)];
    const nnz_t ie = rb.ptr[static_cast<std::size_t>(i) + 1];
    // Row entries are in ascending column order (RowView::build scans
    // columns ascending). Process pivots left to right.
    for (nnz_t p = ib; p < ie; ++p) {
      const index_t k = rb.col[static_cast<std::size_t>(p)];
      const nnz_t kpos = rb.val_pos[static_cast<std::size_t>(p)];
      // Divide by U(k,k) first: x_ik becomes final.
      V ukk = V(0);
      for (nnz_t q = u.col_begin(k); q < u.col_end(k); ++q) {
        if (urows[static_cast<std::size_t>(q)] == k) {
          ukk = uvals[static_cast<std::size_t>(q)];
          break;
        }
      }
      PANGULU_CHECK(ukk != V(0), "TSTRF: zero diagonal in U");
      const V xik = bvals[static_cast<std::size_t>(kpos)] / ukk;
      bvals[static_cast<std::size_t>(kpos)] = xik;
      if (xik == V(0)) continue;
      // Propagate to the later entries of this row: for each target column m
      // the coefficient U(k,m) is located by binary search in U's column m.
      for (nnz_t t = p + 1; t < ie; ++t) {
        const index_t m = rb.col[static_cast<std::size_t>(t)];
        const nnz_t upos = u.find(k, m);
        if (upos < 0) continue;
        const V ukm = u.values()[static_cast<std::size_t>(upos)];
        if (ukm == V(0)) continue;
        bvals[static_cast<std::size_t>(rb.val_pos[static_cast<std::size_t>(t)])] -=
            xik * ukm;
      }
    }
  });
  return Status::ok();
}

}  // namespace

template <class V>
Status tstrf(PanelVariant variant, const CscT<V>& diag, CscT<V>& b,
             Workspace& ws, ThreadPool* pool) {
  if (diag.n_rows() != diag.n_cols())
    return Status::invalid_argument("tstrf: square diagonal block expected");
  if (diag.n_cols() != b.n_cols())
    return Status::invalid_argument("tstrf: dimension mismatch");
  const index_t n = diag.n_cols();
  SubnormalGuard<V> ftz;

  switch (variant) {
    case PanelVariant::kCV1:
      for (index_t j = 0; j < n; ++j)
        solve_column_axpy(diag, b, j, Addressing::kMerge);
      return Status::ok();
    case PanelVariant::kCV2:
      ws.ensure(b.n_rows());
      for (index_t j = 0; j < n; ++j) solve_column_direct(diag, b, j, ws);
      return Status::ok();
    case PanelVariant::kGV1:
      return solve_columns_parallel(diag, b, pool, Addressing::kBinSearch,
                                    nullptr);
    case PanelVariant::kGV2:
      return solve_rows_parallel(diag, b, pool);
    case PanelVariant::kGV3:
      return solve_columns_parallel(diag, b, pool, Addressing::kDirect, &ws);
    case PanelVariant::kGV4:
      return solve_columns_parallel(diag, b, pool, Addressing::kMerge,
                                    nullptr);
  }
  return Status::internal("unreachable");
}

template <class V>
void tstrf_dense_panel(const CscT<V>& diag, V* x, index_t stride, index_t k) {
  for (index_t j = diag.n_cols() - 1; j >= 0; --j) {
    V djj = V(0);
    nnz_t dp = -1;
    for (nnz_t p = diag.col_begin(j); p < diag.col_end(j); ++p) {
      if (diag.row_idx()[static_cast<std::size_t>(p)] == j) {
        djj = diag.values()[static_cast<std::size_t>(p)];
        dp = p;
        break;
      }
    }
    PANGULU_CHECK(dp >= 0 && djj != V(0),
                  "panel upper solve: missing/zero diagonal");
    V* xj = x + static_cast<std::size_t>(j) * stride;
    for (index_t c = 0; c < k; ++c) xj[c] /= djj;
    // Entries above the diagonal propagate x[j] upward; x[c][j] is final here.
    for (nnz_t p = diag.col_begin(j); p < dp; ++p) {
      const index_t r = diag.row_idx()[static_cast<std::size_t>(p)];
      const V v = diag.values()[static_cast<std::size_t>(p)];
      V* xr = x + static_cast<std::size_t>(r) * stride;
      for (index_t c = 0; c < k; ++c) {
        const V xcj = xj[c];
        if (xcj == V(0)) continue;
        xr[c] -= v * xcj;
      }
    }
  }
}

template <class V>
void tstrf_dense_panel_transpose(const CscT<V>& diag, V* x, index_t stride,
                                 index_t k, V* acc) {
  for (index_t j = 0; j < diag.n_cols(); ++j) {
    for (index_t c = 0; c < k; ++c) acc[c] = V(0);
    V djj = V(0);
    for (nnz_t p = diag.col_begin(j); p < diag.col_end(j); ++p) {
      const index_t r = diag.row_idx()[static_cast<std::size_t>(p)];
      if (r < j) {
        const V v = diag.values()[static_cast<std::size_t>(p)];
        const V* xr = x + static_cast<std::size_t>(r) * stride;
        for (index_t c = 0; c < k; ++c) acc[c] += v * xr[c];
      } else if (r == j) {
        djj = diag.values()[static_cast<std::size_t>(p)];
      }
    }
    PANGULU_CHECK(djj != V(0), "panel transpose solve: zero diagonal");
    V* xj = x + static_cast<std::size_t>(j) * stride;
    for (index_t c = 0; c < k; ++c) xj[c] = (xj[c] - acc[c]) / djj;
  }
}

template <class V>
Status tstrf_reference(const CscT<V>& diag, CscT<V>& b) {
  const index_t n = diag.n_cols();
  DenseT<V> u = DenseT<V>::from_csc(diag);
  DenseT<V> d = DenseT<V>::from_csc(b);
  for (index_t j = 0; j < n; ++j) {
    for (index_t k = 0; k < j; ++k) {
      const V ukj = u(k, j);
      if (ukj == V(0)) continue;
      for (index_t i = 0; i < d.n_rows(); ++i) d(i, j) -= d(i, k) * ukj;
    }
    const V ujj = u(j, j);
    PANGULU_CHECK(ujj != V(0), "TSTRF reference: zero diagonal");
    for (index_t i = 0; i < d.n_rows(); ++i) d(i, j) /= ujj;
  }
  for (index_t j = 0; j < b.n_cols(); ++j) {
    for (nnz_t p = b.col_begin(j); p < b.col_end(j); ++p)
      b.values_mut()[static_cast<std::size_t>(p)] =
          d(b.row_idx()[static_cast<std::size_t>(p)], j);
  }
  return Status::ok();
}

template Status tstrf<float>(PanelVariant, const CscT<float>&, CscT<float>&,
                             Workspace&, ThreadPool*);
template Status tstrf<double>(PanelVariant, const CscT<double>&, CscT<double>&,
                              Workspace&, ThreadPool*);
template void tstrf_dense_panel<float>(const CscT<float>&, float*, index_t,
                                       index_t);
template void tstrf_dense_panel<double>(const CscT<double>&, double*, index_t,
                                        index_t);
template void tstrf_dense_panel_transpose<float>(const CscT<float>&, float*,
                                                 index_t, index_t, float*);
template void tstrf_dense_panel_transpose<double>(const CscT<double>&, double*,
                                                  index_t, index_t, double*);
template Status tstrf_reference<float>(const CscT<float>&, CscT<float>&);
template Status tstrf_reference<double>(const CscT<double>&, CscT<double>&);

}  // namespace pangulu::kernels
