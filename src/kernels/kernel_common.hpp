// Shared vocabulary of the block-kernel layer (§4.3, Table 1 of the paper).
//
// Numeric factorisation operates on square sparse blocks whose pattern was
// fixed by symbolic factorisation; the four kernel families are
//   GETRF  — in-place sparse LU of a diagonal block (L unit-lower + U in one
//            CSC, like LAPACK's getrf layout),
//   GESSM  — B <- L^-1 B        (lower solve; updates a block right of the
//            diagonal block, columns independent),
//   TSTRF  — B <- B U^-1        (upper solve; updates a block below the
//            diagonal block, rows independent),
//   SSSSM  — C <- C - A*B       (sparse x sparse Schur complement update).
//
// The filled pattern is closed under elimination, so every kernel writes only
// into already-present entries — no allocation on the numeric path.
#pragma once

#include <string>
#include <vector>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace pangulu {
class ThreadPool;
}

namespace pangulu::kernels {

enum class GetrfVariant { kCV1, kGV1, kGV2 };
enum class PanelVariant { kCV1, kCV2, kGV1, kGV2, kGV3 };  // GESSM and TSTRF
enum class SsssmVariant { kCV1, kCV2, kGV1, kGV2 };

std::string to_string(GetrfVariant v);
std::string to_string(PanelVariant v);
std::string to_string(SsssmVariant v);

/// True for the variants that model GPU kernels ("G_" rows of Table 1);
/// the runtime's DeviceModel prices these differently from CPU variants.
bool is_gpu_variant(GetrfVariant v);
bool is_gpu_variant(PanelVariant v);
bool is_gpu_variant(SsssmVariant v);

/// Row-major view of a CSC block: for each row, the (col, value-position)
/// pairs. Built once per kernel invocation that needs row access.
struct RowView {
  std::vector<nnz_t> ptr;        // size n_rows+1
  std::vector<index_t> col;      // column index of each entry
  std::vector<nnz_t> val_pos;    // position into the CSC values array

  static RowView build(const Csc& a);
};

/// Reusable scratch buffers; kernels never allocate when handed a workspace
/// that has seen a block of at least this size before.
struct Workspace {
  std::vector<value_t> dense_col;   // one dense column (Direct addressing)
  std::vector<index_t> marker;      // row -> position map or visit stamps
  std::vector<index_t> ready;       // worklists for un-sync variants

  void ensure(index_t n) {
    if (static_cast<index_t>(dense_col.size()) < n) {
      dense_col.assign(static_cast<std::size_t>(n), value_t(0));
      marker.assign(static_cast<std::size_t>(n), -1);
    }
  }
};

/// FLOP estimators (2*mul-add counted as 2 flops, divisions as 1) used for
/// task weights (§4.2), decision trees (§4.3) and the device time model.
double getrf_flops(const Csc& a);
double panel_solve_flops(const Csc& diag, const Csc& b, bool lower);
double ssssm_flops(const Csc& a, const Csc& b);

/// Statistics of perturbed pivots (static pivoting fallback, like
/// SuperLU_DIST's GESP): a pivot smaller than tol*max|A| is replaced.
struct PivotStats {
  index_t perturbed = 0;
};

}  // namespace pangulu::kernels
