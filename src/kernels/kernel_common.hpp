// Shared vocabulary of the block-kernel layer (§4.3, Table 1 of the paper).
//
// Numeric factorisation operates on square sparse blocks whose pattern was
// fixed by symbolic factorisation; the four kernel families are
//   GETRF  — in-place sparse LU of a diagonal block (L unit-lower + U in one
//            CSC, like LAPACK's getrf layout),
//   GESSM  — B <- L^-1 B        (lower solve; updates a block right of the
//            diagonal block, columns independent),
//   TSTRF  — B <- B U^-1        (upper solve; updates a block below the
//            diagonal block, rows independent),
//   SSSSM  — C <- C - A*B       (sparse x sparse Schur complement update).
//
// Each family offers the paper's three addressing strategies: Direct (a
// row→slot position map), Bin-search (binary search per product entry) and
// Merge (two-pointer sweep of sorted row lists).
//
// The filled pattern is closed under elimination, so every kernel writes only
// into already-present entries — no allocation on the numeric path.
#pragma once

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "kernels/precision.hpp"
#include "parallel/annotations.hpp"
#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace pangulu {
class ThreadPool;
}

/// No-alias hint for the contiguous dense fast paths: the compiler can only
/// vectorise the axpy loops when it knows source and target values do not
/// overlap (they never do — kernels write C, read A/B).
#if defined(__GNUC__) || defined(__clang__)
#define PANGULU_RESTRICT __restrict__
#else
#define PANGULU_RESTRICT
#endif

namespace pangulu::kernels {

enum class GetrfVariant { kCV1, kGV1, kGV2 };
// GESSM and TSTRF. kGV4 (parallel merge) appended so that integer casts of
// the pre-existing members stay stable.
enum class PanelVariant { kCV1, kCV2, kGV1, kGV2, kGV3, kGV4 };
// kCV3 (serial merge) and kGV3 (parallel merge) appended, same reason.
enum class SsssmVariant { kCV1, kCV2, kGV1, kGV2, kCV3, kGV3 };

/// The three addressing strategies of §4.3: how a product/update entry finds
/// its slot in the target column.
enum class Addressing { kDirect, kBinSearch, kMerge };

std::string to_string(GetrfVariant v);
std::string to_string(PanelVariant v);
std::string to_string(SsssmVariant v);
std::string to_string(Addressing a);

/// True for the variants that model GPU kernels ("G_" rows of Table 1);
/// the runtime's DeviceModel prices these differently from CPU variants.
bool is_gpu_variant(GetrfVariant v);
bool is_gpu_variant(PanelVariant v);
bool is_gpu_variant(SsssmVariant v);

/// Addressing strategy each variant uses (drives DeviceModel pricing).
Addressing addressing_of(GetrfVariant v);
Addressing addressing_of(PanelVariant v);
Addressing addressing_of(SsssmVariant v);

/// Row-major view of a CSC block: for each row, the (col, value-position)
/// pairs. Built once per kernel invocation that needs row access.
struct RowView {
  std::vector<nnz_t> ptr;        // size n_rows+1
  std::vector<index_t> col;      // column index of each entry
  std::vector<nnz_t> val_pos;    // position into the CSC values array

  /// Pattern-only construction — one instantiation per value type even
  /// though the view itself is value-free.
  template <class V>
  static RowView build(const CscT<V>& a);
};

/// Reusable scratch of the kernel layer; kernels never allocate on the
/// numeric path once a workspace has seen a block of the current size.
///
/// The core is the *stamped sparse accumulator* backing every Direct-
/// addressing variant: `slot[row]` maps a row to its value position in the
/// currently open target column and `stamp[row]` records which column
/// generation wrote the slot. A kernel opens a column with open_column()
/// (O(1): just a generation bump), registers the column's rows, and then
/// addresses entries in place — product entries whose row carries a stale
/// stamp are outside the column's pattern (structurally zero in the global
/// factorisation) and are skipped. Nothing is ever scattered, gathered or
/// reset, which removes the old O(n_rows)-per-column dense `std::fill`.
///
/// Parallel variants draw per-thread children from the workspace's pool
/// (Lease below) instead of unbounded `thread_local` scratch: memory is
/// bounded by the peak thread count, reused across calls, and owned by an
/// object sanitizers and the TSA discipline can see.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // Stamped accumulator state (see class comment).
  std::vector<nnz_t> slot;     // row -> value position in the open column
  std::vector<index_t> stamp;  // row -> generation that wrote the slot
  // Per-column FLOP cache of the current SSSSM call, filled once per kernel
  // invocation and shared by every variant that weighs columns.
  std::vector<flops_t> col_flops;

  void ensure(index_t n) {
    if (static_cast<index_t>(slot.size()) < n) {
      slot.assign(static_cast<std::size_t>(n), -1);
      stamp.assign(static_cast<std::size_t>(n), 0);
    }
  }

  /// Open a new target column: returns the generation that marks this
  /// column's rows as live. Wraparound resets every stamp (amortised O(1)).
  index_t open_column() {
    if (generation_ == std::numeric_limits<index_t>::max()) {
      std::fill(stamp.begin(), stamp.end(), index_t(0));
      generation_ = 0;
    }
    return ++generation_;
  }

  /// RAII lease of a pooled per-thread child workspace. Chunked parallel
  /// variants take one lease per work chunk, so the pool never grows past
  /// the number of concurrently active threads.
  class Lease {
   public:
    explicit Lease(Workspace& parent)
        : parent_(&parent), child_(parent.acquire_child()) {}
    ~Lease() { parent_->release_child(child_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Workspace& operator*() const { return *child_; }
    Workspace* operator->() const { return child_; }

   private:
    Workspace* parent_;
    Workspace* child_;
  };

 private:
  Workspace* acquire_child() {
    MutexLock lk(pool_mu_);
    if (free_.empty()) {
      children_.push_back(std::make_unique<Workspace>());
      free_.push_back(children_.back().get());
    }
    Workspace* w = free_.back();
    free_.pop_back();
    return w;
  }
  void release_child(Workspace* w) {
    MutexLock lk(pool_mu_);
    free_.push_back(w);
  }

  index_t generation_ = 0;
  Mutex pool_mu_;
  std::vector<std::unique_ptr<Workspace>> children_ PANGULU_GUARDED_BY(pool_mu_);
  std::vector<Workspace*> free_ PANGULU_GUARDED_BY(pool_mu_);
};

/// Panel SpMM accumulate for the multi-RHS triangular-solve sweeps:
/// Y[:, c] -= Block * X[:, c] for c in [0, k). X/Y are row-interleaved
/// panels — column c of row r lives at x[r * xstride + c] — so the k-wide
/// inner loop runs over contiguous memory and the block's indices are
/// decoded once per entry for all k columns (the amortisation the panel
/// sweep buys; a stride of 1 with k == 1 is the plain vector layout). Per
/// column the floating-point operation sequence — including the zero-skip —
/// is exactly the single-vector SpMV-subtract's, so results are bitwise
/// identical column-for-column.
template <class V>
void spmm_sub_panel(const CscT<V>& blk, const V* x, index_t xstride, V* y,
                    index_t ystride, index_t k);

/// Transposed panel accumulate: Y[:, c] -= Block^T * X[:, c]. `acc` is
/// caller-provided scratch of at least k values (one dot accumulator per
/// column).
template <class V>
void spmm_t_sub_panel(const CscT<V>& blk, const V* x, index_t xstride, V* y,
                      index_t ystride, index_t k, V* acc);

/// FLOP estimators (2*mul-add counted as 2 flops, divisions as 1) used for
/// task weights (§4.2), decision trees (§4.3) and the device time model.
/// Pattern-only, so the count is identical at both precisions.
template <class V>
flops_t getrf_flops(const CscT<V>& a);
template <class V>
flops_t panel_solve_flops(const CscT<V>& diag, const CscT<V>& b, bool lower);
template <class V>
flops_t ssssm_flops(const CscT<V>& a, const CscT<V>& b);

/// Statistics of perturbed pivots (static pivoting fallback, like
/// SuperLU_DIST's GESP): a pivot smaller than tol*max|A| is replaced.
struct PivotStats {
  index_t perturbed = 0;
};

}  // namespace pangulu::kernels
