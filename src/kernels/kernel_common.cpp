#include "kernels/kernel_common.hpp"

namespace pangulu::kernels {

std::string to_string(GetrfVariant v) {
  switch (v) {
    case GetrfVariant::kCV1: return "GETRF_C_V1";
    case GetrfVariant::kGV1: return "GETRF_G_V1";
    case GetrfVariant::kGV2: return "GETRF_G_V2";
  }
  return "?";
}

std::string to_string(PanelVariant v) {
  switch (v) {
    case PanelVariant::kCV1: return "C_V1";
    case PanelVariant::kCV2: return "C_V2";
    case PanelVariant::kGV1: return "G_V1";
    case PanelVariant::kGV2: return "G_V2";
    case PanelVariant::kGV3: return "G_V3";
    case PanelVariant::kGV4: return "G_V4";
  }
  return "?";
}

std::string to_string(SsssmVariant v) {
  switch (v) {
    case SsssmVariant::kCV1: return "SSSSM_C_V1";
    case SsssmVariant::kCV2: return "SSSSM_C_V2";
    case SsssmVariant::kCV3: return "SSSSM_C_V3";
    case SsssmVariant::kGV1: return "SSSSM_G_V1";
    case SsssmVariant::kGV2: return "SSSSM_G_V2";
    case SsssmVariant::kGV3: return "SSSSM_G_V3";
  }
  return "?";
}

std::string to_string(Addressing a) {
  switch (a) {
    case Addressing::kDirect: return "direct";
    case Addressing::kBinSearch: return "binsearch";
    case Addressing::kMerge: return "merge";
  }
  return "?";
}

bool is_gpu_variant(GetrfVariant v) { return v != GetrfVariant::kCV1; }
bool is_gpu_variant(PanelVariant v) {
  return v == PanelVariant::kGV1 || v == PanelVariant::kGV2 ||
         v == PanelVariant::kGV3 || v == PanelVariant::kGV4;
}
bool is_gpu_variant(SsssmVariant v) {
  return v == SsssmVariant::kGV1 || v == SsssmVariant::kGV2 ||
         v == SsssmVariant::kGV3;
}

Addressing addressing_of(GetrfVariant v) {
  switch (v) {
    case GetrfVariant::kCV1: return Addressing::kDirect;
    case GetrfVariant::kGV1: return Addressing::kBinSearch;
    case GetrfVariant::kGV2: return Addressing::kDirect;
  }
  return Addressing::kDirect;
}

Addressing addressing_of(PanelVariant v) {
  switch (v) {
    case PanelVariant::kCV1: return Addressing::kMerge;
    case PanelVariant::kCV2: return Addressing::kDirect;
    case PanelVariant::kGV1: return Addressing::kBinSearch;
    case PanelVariant::kGV2: return Addressing::kBinSearch;
    case PanelVariant::kGV3: return Addressing::kDirect;
    case PanelVariant::kGV4: return Addressing::kMerge;
  }
  return Addressing::kDirect;
}

Addressing addressing_of(SsssmVariant v) {
  switch (v) {
    case SsssmVariant::kCV1: return Addressing::kDirect;
    case SsssmVariant::kCV2: return Addressing::kBinSearch;
    case SsssmVariant::kCV3: return Addressing::kMerge;
    case SsssmVariant::kGV1: return Addressing::kBinSearch;
    case SsssmVariant::kGV2: return Addressing::kDirect;
    case SsssmVariant::kGV3: return Addressing::kMerge;
  }
  return Addressing::kDirect;
}

template <class V>
RowView RowView::build(const CscT<V>& a) {
  RowView rv;
  rv.ptr.assign(static_cast<std::size_t>(a.n_rows()) + 1, 0);
  rv.col.resize(static_cast<std::size_t>(a.nnz()));
  rv.val_pos.resize(static_cast<std::size_t>(a.nnz()));
  for (index_t r : a.row_idx()) rv.ptr[static_cast<std::size_t>(r) + 1]++;
  for (index_t i = 0; i < a.n_rows(); ++i)
    rv.ptr[static_cast<std::size_t>(i) + 1] += rv.ptr[static_cast<std::size_t>(i)];
  std::vector<nnz_t> next(rv.ptr.begin(), rv.ptr.end() - 1);
  for (index_t j = 0; j < a.n_cols(); ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      index_t r = a.row_idx()[static_cast<std::size_t>(p)];
      nnz_t q = next[static_cast<std::size_t>(r)]++;
      rv.col[static_cast<std::size_t>(q)] = j;
      rv.val_pos[static_cast<std::size_t>(q)] = p;
    }
  }
  return rv;
}

template <class V>
flops_t getrf_flops(const CscT<V>& a) {
  // Exact right-looking count on the block's own pattern: column k
  // contributes |L_k| divisions + 2|L_k||U_k| update flops, where U_k is the
  // strictly-upper part of row k.
  const index_t n = a.n_cols();
  std::vector<nnz_t> upper_row(static_cast<std::size_t>(n), 0);
  std::vector<nnz_t> lower_col(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      index_t r = a.row_idx()[static_cast<std::size_t>(p)];
      if (r > j)
        lower_col[static_cast<std::size_t>(j)]++;
      else if (r < j)
        upper_row[static_cast<std::size_t>(r)]++;
    }
  }
  flops_t f = 0;
  for (index_t k = 0; k < n; ++k) {
    flops_t lk = static_cast<flops_t>(lower_col[static_cast<std::size_t>(k)]);
    flops_t uk = static_cast<flops_t>(upper_row[static_cast<std::size_t>(k)]);
    f += lk + 2.0 * lk * uk;
  }
  return f;
}

template <class V>
void spmm_sub_panel(const CscT<V>& blk, const V* x, index_t xstride, V* y,
                    index_t ystride, index_t k) {
  for (index_t j = 0; j < blk.n_cols(); ++j) {
    const V* xj = x + static_cast<std::size_t>(j) * xstride;
    for (nnz_t p = blk.col_begin(j); p < blk.col_end(j); ++p) {
      const index_t r = blk.row_idx()[static_cast<std::size_t>(p)];
      const V v = blk.values()[static_cast<std::size_t>(p)];
      V* yr = y + static_cast<std::size_t>(r) * ystride;
      for (index_t c = 0; c < k; ++c) {
        const V xcj = xj[c];
        if (xcj == V(0)) continue;
        yr[c] -= v * xcj;
      }
    }
  }
}

template <class V>
void spmm_t_sub_panel(const CscT<V>& blk, const V* x, index_t xstride, V* y,
                      index_t ystride, index_t k, V* acc) {
  for (index_t j = 0; j < blk.n_cols(); ++j) {
    for (index_t c = 0; c < k; ++c) acc[c] = V(0);
    for (nnz_t p = blk.col_begin(j); p < blk.col_end(j); ++p) {
      const index_t r = blk.row_idx()[static_cast<std::size_t>(p)];
      const V v = blk.values()[static_cast<std::size_t>(p)];
      const V* xr = x + static_cast<std::size_t>(r) * xstride;
      for (index_t c = 0; c < k; ++c) acc[c] += v * xr[c];
    }
    V* yj = y + static_cast<std::size_t>(j) * ystride;
    for (index_t c = 0; c < k; ++c) yj[c] -= acc[c];
  }
}

template <class V>
flops_t panel_solve_flops(const CscT<V>& diag, const CscT<V>& b, bool lower) {
  // For each column/row pivot k used by an entry of B, the solve applies the
  // corresponding strictly-triangular column of the diagonal block. Estimate
  // 2 * sum over B entries of the triangular column length at that row.
  const index_t n = diag.n_cols();
  std::vector<nnz_t> tri_len(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    for (nnz_t p = diag.col_begin(j); p < diag.col_end(j); ++p) {
      index_t r = diag.row_idx()[static_cast<std::size_t>(p)];
      if (lower && r > j) tri_len[static_cast<std::size_t>(j)]++;
      if (!lower && r < j) tri_len[static_cast<std::size_t>(j)]++;
    }
  }
  flops_t f = 0;
  for (index_t j = 0; j < b.n_cols(); ++j) {
    for (nnz_t p = b.col_begin(j); p < b.col_end(j); ++p) {
      index_t r = b.row_idx()[static_cast<std::size_t>(p)];
      // lower solve consumes pivot rows r of B; upper solve pivots columns.
      index_t k = lower ? r : j;
      f += 2.0 * static_cast<flops_t>(tri_len[static_cast<std::size_t>(k)]) + 1.0;
    }
  }
  return f;
}

template <class V>
flops_t ssssm_flops(const CscT<V>& a, const CscT<V>& b) {
  // 2 * sum_k |A(:,k)| * |B(k,:)|; computed via B's row counts.
  std::vector<nnz_t> b_row(static_cast<std::size_t>(b.n_rows()), 0);
  for (index_t r : b.row_idx()) b_row[static_cast<std::size_t>(r)]++;
  flops_t f = 0;
  for (index_t k = 0; k < a.n_cols(); ++k) {
    f += 2.0 * static_cast<flops_t>(a.col_end(k) - a.col_begin(k)) *
         static_cast<flops_t>(b_row[static_cast<std::size_t>(k)]);
  }
  return f;
}

template RowView RowView::build<float>(const CscT<float>&);
template RowView RowView::build<double>(const CscT<double>&);
template void spmm_sub_panel<float>(const CscT<float>&, const float*, index_t,
                                    float*, index_t, index_t);
template void spmm_sub_panel<double>(const CscT<double>&, const double*,
                                     index_t, double*, index_t, index_t);
template void spmm_t_sub_panel<float>(const CscT<float>&, const float*,
                                      index_t, float*, index_t, index_t,
                                      float*);
template void spmm_t_sub_panel<double>(const CscT<double>&, const double*,
                                       index_t, double*, index_t, index_t,
                                       double*);
template flops_t getrf_flops<float>(const CscT<float>&);
template flops_t getrf_flops<double>(const CscT<double>&);
template flops_t panel_solve_flops<float>(const CscT<float>&,
                                          const CscT<float>&, bool);
template flops_t panel_solve_flops<double>(const CscT<double>&,
                                           const CscT<double>&, bool);
template flops_t ssssm_flops<float>(const CscT<float>&, const CscT<float>&);
template flops_t ssssm_flops<double>(const CscT<double>&, const CscT<double>&);

}  // namespace pangulu::kernels
