// SSSSM: C <- C - A*B, all three blocks sparse with fixed patterns — the
// Schur-complement kernel that dominates numeric factorisation time
// (Table 4 of the paper). Six variants (Table 1):
//   C_V1 — Direct addressing, "approximate equal load column block": B's
//          columns are partitioned into contiguous chunks of roughly equal
//          FLOPs; each chunk accumulates through the stamped slot map.
//   C_V2 — Bin-search, "adaptive split-bin type": columns are binned by
//          work and processed bin-by-bin (heavy first) with binary-search
//          scatter into C.
//   C_V3 — Merge addressing, serial: two-pointer sweeps pair A's columns
//          with C's column (both row-sorted); no scratch at all.
//   G_V1 — Bin-search, "adaptive multi-level": one worker per column, and
//          each column adaptively picks stamped-direct or bin-search by its
//          own FLOP count (the multi-level decision).
//   G_V2 — Direct, warp-level column: one worker per column, stamped slots.
//   G_V3 — Merge, warp-level column: parallel C_V3.
// Direct addressing uses the Workspace's stamped sparse accumulator (see
// kernel_common.hpp) — per-column cost is O(nnz), never O(n_rows).
#pragma once

#include "kernels/kernel_common.hpp"
#include "parallel/thread_pool.hpp"
#include "util/status.hpp"

namespace pangulu::kernels {

/// Requires a.n_cols() == b.n_rows(), c.n_rows() == a.n_rows(),
/// c.n_cols() == b.n_cols(). Product entries outside C's pattern are
/// structurally guaranteed absent in the solver pipeline (fill closure).
template <class V>
Status ssssm(SsssmVariant variant, const CscT<V>& a, const CscT<V>& b,
             CscT<V>& c, Workspace& ws, ThreadPool* pool = nullptr);

/// Dense reference (tests).
template <class V>
Status ssssm_reference(const CscT<V>& a, const CscT<V>& b, CscT<V>& c);

}  // namespace pangulu::kernels
