// Deterministic random number generation for reproducible matrix generation
// and property tests.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

#include "util/types.hpp"

namespace pangulu {

/// Thin wrapper over std::mt19937_64 with convenience draws. All generators
/// in matgen take an explicit seed so every experiment is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  index_t uniform_index(index_t lo, index_t hi) {
    std::uniform_int_distribution<index_t> d(lo, hi);
    return d(engine_);
  }

  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal draw.
  double normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Power-law (Zipf-like) degree draw in [1, max_degree]; used by the
  /// circuit-style generator to produce a heavy-tailed connectivity profile.
  index_t power_law(index_t max_degree, double alpha) {
    // Inverse-CDF sampling of p(k) ~ k^-alpha over integers [1, max].
    double u = uniform(1e-12, 1.0);
    double x = std::pow(u, -1.0 / (alpha - 1.0));
    auto k = static_cast<index_t>(x);
    if (k < 1) k = 1;
    if (k > max_degree) k = max_degree;
    return k;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pangulu
