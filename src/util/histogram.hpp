// Simple bucketed histograms used by the motivation experiments (Figures 3
// and 4 of the paper report supernode-size and block-density distributions).
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace pangulu {

/// Histogram over explicit bucket edges: bucket i covers [edges[i],
/// edges[i+1]); the last bucket is closed on the right.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
    PANGULU_CHECK(edges_.size() >= 2, "histogram needs at least one bucket");
    counts_.assign(edges_.size() - 1, 0);
  }

  /// Histogram with power-of-two bucket edges [1,2), [2,4), ... covering up
  /// to `max_value`; mirrors the bucketing of Figure 3.
  static Histogram pow2(double max_value) {
    std::vector<double> edges{1.0};
    double e = 2.0;
    while (e <= max_value) {
      edges.push_back(e);
      e *= 2.0;
    }
    edges.push_back(e);
    return Histogram(std::move(edges));
  }

  /// Ten equal-width percentage buckets [0,10), ... [90,100]; Figure 4.
  static Histogram percent10() {
    std::vector<double> edges;
    for (int i = 0; i <= 10; ++i) edges.push_back(10.0 * i);
    return Histogram(std::move(edges));
  }

  void add(double v) {
    if (v < edges_.front()) {
      ++underflow_;
      return;
    }
    if (v > edges_.back()) {
      ++overflow_;
      return;
    }
    auto it = std::upper_bound(edges_.begin(), edges_.end(), v);
    std::size_t idx = static_cast<std::size_t>(it - edges_.begin());
    if (idx >= edges_.size()) idx = edges_.size() - 1;  // v == last edge
    if (idx == 0) idx = 1;
    ++counts_[idx - 1];
  }

  std::size_t num_buckets() const { return counts_.size(); }
  std::int64_t count(std::size_t b) const { return counts_.at(b); }
  std::int64_t total() const {
    std::int64_t t = underflow_ + overflow_;
    for (auto c : counts_) t += c;
    return t;
  }
  double lower_edge(std::size_t b) const { return edges_.at(b); }
  double upper_edge(std::size_t b) const { return edges_.at(b + 1); }

  /// Bucket label like "[4,8)".
  std::string label(std::size_t b) const {
    auto fmt = [](double x) {
      if (x == static_cast<std::int64_t>(x))
        return std::to_string(static_cast<std::int64_t>(x));
      return std::to_string(x);
    };
    bool last = (b + 1 == counts_.size());
    return "[" + fmt(edges_[b]) + "," + fmt(edges_[b + 1]) + (last ? "]" : ")");
  }

 private:
  std::vector<double> edges_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
};

/// Two-dimensional histogram (Figure 3's heat-map of supernode rows×cols).
class Histogram2D {
 public:
  Histogram2D(std::vector<double> x_edges, std::vector<double> y_edges)
      : x_(std::move(x_edges)), y_(std::move(y_edges)) {
    PANGULU_CHECK(x_.size() >= 2 && y_.size() >= 2, "need buckets");
    counts_.assign((x_.size() - 1) * (y_.size() - 1), 0);
  }

  void add(double x, double y) {
    int bx = bucket(x_, x), by = bucket(y_, y);
    if (bx < 0 || by < 0) return;
    counts_[static_cast<std::size_t>(by) * (x_.size() - 1) +
            static_cast<std::size_t>(bx)]++;
  }

  std::size_t nx() const { return x_.size() - 1; }
  std::size_t ny() const { return y_.size() - 1; }
  std::int64_t count(std::size_t bx, std::size_t by) const {
    return counts_.at(by * nx() + bx);
  }

 private:
  static int bucket(const std::vector<double>& edges, double v) {
    if (v < edges.front() || v > edges.back()) return -1;
    auto it = std::upper_bound(edges.begin(), edges.end(), v);
    std::size_t idx = static_cast<std::size_t>(it - edges.begin());
    if (idx >= edges.size()) idx = edges.size() - 1;
    if (idx == 0) idx = 1;
    return static_cast<int>(idx - 1);
  }

  std::vector<double> x_, y_;
  std::vector<std::int64_t> counts_;
};

}  // namespace pangulu
