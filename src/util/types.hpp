// Fundamental scalar and index types used across the PanguLU reproduction.
#pragma once

#include <cstdint>

namespace pangulu {

/// Index type for rows/columns. Matrices in this repo fit comfortably in
/// 32 bits; nnz counters use 64 bits (see nnz_t) because fill-in can exceed
/// the nnz of A by two orders of magnitude.
using index_t = std::int32_t;

/// Nonzero counter / CSC pointer type.
using nnz_t = std::int64_t;

/// Numeric value type. The paper evaluates in double precision.
using value_t = double;

/// Identifier of a logical process (rank) in the simulated cluster.
using rank_t = std::int32_t;

}  // namespace pangulu
