// Plain-text table rendering for benchmark reports. The bench binaries print
// the same rows the paper's tables/figures report; this keeps the output
// aligned and diffable.
#pragma once

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace pangulu {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append a row; each cell is already formatted.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience cell formatters.
  static std::string fmt(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }
  static std::string fmt_sci(double v, int precision = 2) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
  }
  static std::string fmt_speedup(double v) { return fmt(v, 2) + "x"; }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto grow = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], row[i].size());
    };
    grow(header_);
    for (const auto& r : rows_) grow(r);

    auto line = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        std::string cell = i < row.size() ? row[i] : "";
        os << std::left << std::setw(static_cast<int>(width[i]) + 2) << cell;
      }
      os << '\n';
    };
    line(header_);
    std::string sep;
    for (auto w : width) sep += std::string(w, '-') + "  ";
    os << sep << '\n';
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Geometric mean of a series of positive ratios (speedups); the paper
/// reports geomean speedups in Sections 5.2-5.5.
inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace pangulu
