// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace pangulu {

/// Monotonic wall-clock stopwatch. `seconds()` reads elapsed time since the
/// last `reset()` (or construction) without stopping the clock.
class Timer {
 public:
  Timer() { reset(); }

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating timer for phase breakdowns: `tic()`/`toc()` pairs add into a
/// running total, so one object can meter a phase entered many times.
class PhaseTimer {
 public:
  void tic() { t_.reset(); running_ = true; }
  void toc() {
    if (running_) {
      total_ += t_.seconds();
      running_ = false;
    }
  }
  double total_seconds() const { return total_; }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace pangulu
