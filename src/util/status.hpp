// Lightweight status/error reporting without exceptions on hot paths.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace pangulu {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNumericalError,
  kIoError,
  kInternal,
  /// A required resource is (possibly transiently) gone — e.g. every replica
  /// of a block was lost to rank crashes and recovery is impossible.
  kUnavailable,
  /// The static task-graph verifier (src/analysis) proved a scheduling
  /// invariant broken — counter conservation, schedulability, mapping
  /// totality, or message conservation. The message names the first
  /// violated invariant and the offending block/task.
  kInvariantViolation,
  /// Stored numeric data failed an integrity audit: an ABFT block checksum
  /// no longer matches (silent bit-flip) and the block could not be
  /// recomputed from live inputs, or a snapshot section failed its CRC.
  /// The message names the block/section that went bad.
  kDataCorruption,
  /// A planned capacity change would leave the cluster unable to make
  /// progress — e.g. an ElasticPlan drain would drop the live rank count
  /// below Options/ElasticPlan::min_ranks. The runtime sheds the load with
  /// this code instead of deadlocking; the caller may retry with more
  /// capacity. Distinct from kUnavailable (unplanned loss).
  kResourceExhausted,
  /// Mixed-precision iterative refinement stalled: the FP32 correction
  /// solves stopped reducing the FP64 residual before the requested
  /// tolerance was reached (the matrix is too ill-conditioned for an FP32
  /// factorisation to precondition). Distinct from kNumericalError (a
  /// kernel-level breakdown such as a zero pivot): the factorisation itself
  /// completed, but refinement cannot converge on it. The caller should
  /// retry at Precision::kDouble.
  kNumericBreakdown,
  /// A request's deadline expired before the work finished — either the
  /// wall-clock deadline of a CancelToken (threaded executor, SessionPool
  /// admission) or its virtual deadline on the DES clock (simulated runs).
  /// The operation stopped at the next safe point without publishing a
  /// partial factor; sessions remain usable. Retrying with a larger budget
  /// is safe. Distinct from kCancelled (an explicit caller decision).
  kDeadlineExceeded,
  /// The caller revoked the request through CancelToken::cancel() and the
  /// operation stopped cooperatively at the next safe point. Like
  /// kDeadlineExceeded nothing partial is published, but this code marks a
  /// deliberate abort rather than an expired time budget.
  kCancelled,
};

/// Stable lower_snake_case name for every StatusCode. tools/lint.sh checks
/// that this switch covers each enumerator — extend both together.
inline const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kNumericalError:
      return "numerical_error";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInvariantViolation:
      return "invariant_violation";
    case StatusCode::kDataCorruption:
      return "data_corruption";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kNumericBreakdown:
      return "numeric_breakdown";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// Value-semantic status object. `Status::ok()` is the success singleton.
/// The class is [[nodiscard]]: any call site that drops a returned Status
/// is a compile-time warning (an error under PANGULU_WERROR).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_argument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status out_of_range(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status failed_precondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status numerical_error(std::string m) {
    return Status(StatusCode::kNumericalError, std::move(m));
  }
  static Status io_error(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status invariant_violation(std::string m) {
    return Status(StatusCode::kInvariantViolation, std::move(m));
  }
  static Status data_corruption(std::string m) {
    return Status(StatusCode::kDataCorruption, std::move(m));
  }
  static Status resource_exhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status numeric_breakdown(std::string m) {
    return Status(StatusCode::kNumericBreakdown, std::move(m));
  }
  static Status deadline_exceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Throws std::runtime_error when not ok. Used at API boundaries where the
  /// caller opted into exceptions.
  void check() const {
    if (!is_ok()) throw std::runtime_error(message_);
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Assertion macro for internal invariants. Enabled in all build types: the
/// solver's correctness contracts are cheap relative to factorisation work.
#define PANGULU_CHECK(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw std::logic_error(std::string("PANGULU_CHECK failed: ") + msg + \
                             " at " + __FILE__ + ":" +                     \
                             std::to_string(__LINE__));                    \
    }                                                                      \
  } while (0)

}  // namespace pangulu
