// Cooperative cancellation and deadlines (DESIGN.md §15). A CancelToken is
// shared between a caller and a running operation; the operation polls it at
// its safe points — canonical commit boundaries in the factorisation DES,
// task boundaries in the threaded executor, sweep levels in the
// SolvePlan/TrsvPlan solves — and fails typed (kCancelled /
// kDeadlineExceeded) without publishing partial results.
//
// Two clocks, one token. Simulated runs live on the DES virtual clock, so a
// deadline there is a virtual-seconds budget checked with check_virtual();
// the threaded executor and SessionPool admission live on
// std::chrono::steady_clock, checked with check(). A token may arm both; a
// wall check never consults the virtual deadline and vice versa.
//
// All state is atomic: the threaded executor polls from many rank threads
// while the caller cancels from outside. Deadlines and the check-countdown
// are mutable so every poll entry point takes `const CancelToken*` — the
// token is logically read-only to the operation that polls it.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <string>

#include "util/status.hpp"

namespace pangulu {

class CancelToken {
 public:
  /// Revoke the request: the next poll at any safe point fails kCancelled.
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  [[nodiscard]] bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Arm a wall-clock deadline `seconds` from now (steady_clock). Checked by
  /// check(); used by the threaded executor and SessionPool admission.
  void set_wall_deadline_after(double seconds) {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
        static_cast<long long>(seconds * 1e9);
    wall_deadline_ns_.store(ns, std::memory_order_release);
  }

  /// Arm a deadline on the DES virtual clock: a simulated run fails once its
  /// virtual time passes `seconds`. Checked only by check_virtual().
  void set_virtual_deadline(double seconds) {
    virtual_deadline_.store(seconds, std::memory_order_release);
  }

  /// Deterministic trigger for tests: the first `n` polls succeed, every
  /// later poll fails kCancelled. With n = 0 the very first poll fails.
  /// Counts polls through either check entry point.
  void cancel_after_checks(long long n) {
    checks_left_.store(n, std::memory_order_release);
  }

  /// Remaining wall budget in seconds: +inf when no wall deadline is armed,
  /// clamped at 0 once expired. SessionPool admission sheds on this.
  [[nodiscard]] double wall_seconds_remaining() const {
    const long long dl = wall_deadline_ns_.load(std::memory_order_acquire);
    if (dl < 0) return std::numeric_limits<double>::infinity();
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
    return dl <= now_ns ? 0.0 : static_cast<double>(dl - now_ns) * 1e-9;
  }

  [[nodiscard]] bool has_wall_deadline() const {
    return wall_deadline_ns_.load(std::memory_order_acquire) >= 0;
  }

  /// Poll at a wall-clock safe point. `where` names the safe point for the
  /// diagnostic ("threaded task boundary", "solve sweep level 12", ...).
  Status check(const char* where) const {
    if (consume_budget() || cancel_requested())
      return Status::cancelled(std::string("request cancelled at ") + where);
    if (wall_deadline_ns_.load(std::memory_order_acquire) >= 0 &&
        wall_seconds_remaining() <= 0.0)
      return Status::deadline_exceeded(
          std::string("wall deadline exceeded at ") + where);
    return Status::ok();
  }

  /// Poll at a DES safe point with the current virtual time. Applies the
  /// manual/wall checks first, then the virtual deadline: virtual time
  /// strictly past the budget fails, so a run finishing exactly at the
  /// deadline still succeeds.
  Status check_virtual(double now_virtual_seconds, const char* where) const {
    Status s = check(where);
    if (!s.is_ok()) return s;
    const double dl = virtual_deadline_.load(std::memory_order_acquire);
    if (now_virtual_seconds > dl)
      return Status::deadline_exceeded(
          std::string("virtual deadline exceeded at ") + where +
          " (t = " + std::to_string(now_virtual_seconds) + " s, deadline " +
          std::to_string(dl) + " s)");
    return Status::ok();
  }

 private:
  // Countdown shared by both check entry points; returns true when the
  // budget is spent. Disarmed at -1; the counter saturates there so an
  // armed token keeps failing after the trigger instead of wrapping.
  bool consume_budget() const {
    long long left = checks_left_.load(std::memory_order_acquire);
    while (left >= 0) {
      if (left == 0) return true;
      if (checks_left_.compare_exchange_weak(left, left - 1,
                                             std::memory_order_acq_rel))
        return false;
    }
    return false;
  }

  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<long long> wall_deadline_ns_{-1};
  mutable std::atomic<long long> checks_left_{-1};
  mutable std::atomic<double> virtual_deadline_{
      std::numeric_limits<double>::infinity()};
};

}  // namespace pangulu
