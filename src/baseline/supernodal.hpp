// Supernodal right-looking LU — the reproduction's SuperLU_DIST-style
// baseline (DESIGN.md substitution table). It exhibits the three behaviours
// the paper measures PanguLU against:
//   * relaxed supernode amalgamation stores dense panels with explicit zero
//     padding (the crosses of Figure 1(d); extra flops of §3.2),
//   * Schur updates gather operands into dense tiles, run dense GEMM and
//     scatter back (the data-movement overhead quantified in Table 4),
//   * scheduling is bulk-synchronous over elimination levels, paying a
//     barrier per phase (the synchronisation cost of §3.3 / Figure 5).
//
// Pipeline: reorder (shared with PanguLU) -> unsymmetric column-DFS symbolic
// (Gilbert-Peierls with pruning) -> supernode detection + relaxation ->
// dense tiling on the supernode partition -> level-set factorisation on the
// simulated cluster.
#pragma once

#include <span>
#include <vector>

#include "ordering/reorder.hpp"
#include "runtime/device_model.hpp"
#include "runtime/sim.hpp"
#include "sparse/csc.hpp"
#include "sparse/dense.hpp"
#include "symbolic/fill.hpp"
#include "symbolic/supernodes.hpp"
#include "util/status.hpp"

namespace pangulu::baseline {

struct SupernodalOptions {
  ordering::ReorderOptions reorder;
  index_t relax = 8;       // pattern mismatches tolerated when merging
  index_t max_panel = 64;  // maximum supernode width
  index_t min_panel = 4;   // force-amalgamate narrower supernodes (relaxed
                           // supernodes, at the price of more padding)
  rank_t n_ranks = 1;
  runtime::DeviceModel device = runtime::DeviceModel::a100_like();
  bool execute_numerics = true;
  value_t pivot_tol = 1e-14;
  bool record_gemm_density = false;  // Figure 4 instrumentation
};

struct GemmDensitySample {
  double a, b, c;  // density (%) of the three operand tiles
};

struct SupernodalStats {
  double reorder_seconds = 0;
  double symbolic_seconds = 0;
  double preprocess_seconds = 0;
  index_t n = 0;
  nnz_t nnz_a = 0;
  /// Stored entries = total area of non-empty dense tiles (what a panel
  /// store actually allocates; the Table 3 "SuperLU nnz(L+U)" analogue).
  nnz_t nnz_lu_stored = 0;
  /// Sparse fill count of the symbolic pattern (no padding).
  nnz_t nnz_lu_pattern = 0;
  double flops_dense = 0;   // flops executed on dense tiles (incl. zeros)
  double flops_sparse = 0;  // useful flops (same metric as PanguLU's)
  index_t n_supernodes = 0;
  runtime::SimResult sim;
  std::vector<GemmDensitySample> gemm_density;
  symbolic::SupernodePartition partition;  // pre-relaxation (Figure 3)
};

class SupernodalSolver {
 public:
  Status factorize(const Csc& a, const SupernodalOptions& opts);
  Status solve(std::span<const value_t> b, std::span<value_t> x) const;

  /// Re-run the level-set schedule of an already-factorised problem under a
  /// different rank count / device model, without touching the numerics —
  /// the cheap path for scaling sweeps (Figures 5, 12, 13).
  Status retime(rank_t n_ranks, const runtime::DeviceModel& device,
                runtime::SimResult* out);

  const SupernodalStats& stats() const { return stats_; }

 private:
  /// The bulk-synchronous factorisation schedule shared by factorize() and
  /// retime(). When `execute` is set the dense tile numerics run too.
  Status simulate_schedule(rank_t n_ranks, const runtime::DeviceModel& device,
                           bool execute, bool record_density,
                           value_t pivot_threshold, runtime::SimResult* sim,
                           double* flops_dense);

  SupernodalOptions opts_;
  Csc original_;
  ordering::ReorderResult reorder_;
  // Supernode partition boundaries: part_[i]..part_[i+1] are the columns of
  // supernode i (after relaxation).
  std::vector<index_t> part_;
  // Dense tiles on the partition grid, CSC-compressed at the tile level.
  std::vector<nnz_t> tile_col_ptr_;
  std::vector<index_t> tile_row_idx_;
  std::vector<Dense> tiles_;
  SupernodalStats stats_;
  bool factorized_ = false;

  nnz_t find_tile(index_t ti, index_t tj) const;
};

}  // namespace pangulu::baseline
