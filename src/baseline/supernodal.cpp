#include "baseline/supernodal.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/ops.hpp"
#include "util/timer.hpp"

namespace pangulu::baseline {

namespace {

/// Dense LU without pivoting on a square tile (static pivoting: tiny pivots
/// perturbed, as in the main solver).
void dense_getrf(Dense& d, value_t threshold, index_t* perturbed) {
  const index_t n = d.n_rows();
  for (index_t k = 0; k < n; ++k) {
    value_t pivot = d(k, k);
    if (std::abs(pivot) < threshold) {
      pivot = pivot >= 0 ? threshold : -threshold;
      d(k, k) = pivot;
      if (perturbed) ++(*perturbed);
    }
    for (index_t i = k + 1; i < n; ++i) d(i, k) /= pivot;
    for (index_t j = k + 1; j < n; ++j) {
      const value_t ukj = d(k, j);
      if (ukj == value_t(0)) continue;
      for (index_t i = k + 1; i < n; ++i) d(i, j) -= d(i, k) * ukj;
    }
  }
}

/// B <- L^-1 B with the unit-lower part of a factorised tile.
void dense_trsm_lower(const Dense& lu, Dense& b) {
  const index_t n = lu.n_rows();
  for (index_t j = 0; j < b.n_cols(); ++j) {
    for (index_t k = 0; k < n; ++k) {
      const value_t xk = b(k, j);
      if (xk == value_t(0)) continue;
      for (index_t i = k + 1; i < n; ++i) b(i, j) -= lu(i, k) * xk;
    }
  }
}

/// B <- B U^-1 with the upper part of a factorised tile.
void dense_trsm_upper(const Dense& lu, Dense& b) {
  const index_t n = lu.n_cols();
  for (index_t j = 0; j < n; ++j) {
    for (index_t k = 0; k < j; ++k) {
      const value_t ukj = lu(k, j);
      if (ukj == value_t(0)) continue;
      for (index_t i = 0; i < b.n_rows(); ++i) b(i, j) -= b(i, k) * ukj;
    }
    const value_t ujj = lu(j, j);
    for (index_t i = 0; i < b.n_rows(); ++i) b(i, j) /= ujj;
  }
}

double tile_density(const Dense& d) {
  index_t nz = 0;
  for (index_t j = 0; j < d.n_cols(); ++j)
    for (index_t i = 0; i < d.n_rows(); ++i)
      if (d(i, j) != value_t(0)) ++nz;
  return 100.0 * static_cast<double>(nz) /
         (static_cast<double>(d.n_rows()) * static_cast<double>(d.n_cols()));
}

}  // namespace

nnz_t SupernodalSolver::find_tile(index_t ti, index_t tj) const {
  const nnz_t lo = tile_col_ptr_[static_cast<std::size_t>(tj)];
  const nnz_t hi = tile_col_ptr_[static_cast<std::size_t>(tj) + 1];
  auto first = tile_row_idx_.begin() + lo;
  auto last = tile_row_idx_.begin() + hi;
  auto it = std::lower_bound(first, last, ti);
  if (it == last || *it != ti) return -1;
  return lo + (it - first);
}

Status SupernodalSolver::factorize(const Csc& a, const SupernodalOptions& opts) {
  if (a.n_rows() != a.n_cols())
    return Status::invalid_argument("square matrices only");
  opts_ = opts;
  original_ = a;
  factorized_ = false;
  stats_ = SupernodalStats{};
  stats_.n = a.n_cols();
  stats_.nnz_a = a.nnz();

  Timer timer;
  Status s = ordering::reorder(a, opts.reorder, &reorder_);
  if (!s.is_ok()) return s;
  stats_.reorder_seconds = timer.seconds();

  // Unsymmetric column-DFS symbolic factorisation (with pruning) — the
  // slower path Figure 11 compares against.
  timer.reset();
  symbolic::SymbolicResult sym;
  s = symbolic::symbolic_unsymmetric(reorder_.permuted, /*use_pruning=*/true,
                                     &sym);
  if (!s.is_ok()) return s;
  stats_.nnz_lu_pattern = sym.nnz_lu;
  stats_.flops_sparse = symbolic::factorization_flops(sym.filled);
  // Supernode detection is part of the baseline's symbolic stage.
  stats_.partition =
      symbolic::detect_supernodes(sym.filled, opts.relax, opts.max_panel);
  stats_.symbolic_seconds = timer.seconds();

  // Preprocessing: relax the partition to a minimum panel width (classic
  // relaxed supernodes), build the dense tile grid, scatter values.
  timer.reset();
  const index_t n = stats_.n;
  part_.clear();
  part_.push_back(0);
  {
    index_t width = 0;
    for (const auto& sn : stats_.partition.supernodes) {
      width += sn.n_cols;
      const index_t end = sn.first_col + sn.n_cols;
      const bool is_last = (end == n);
      if (width >= opts.min_panel || is_last) {
        // Close the current panel at `end`, splitting anything that grew
        // beyond max_panel back into max_panel-wide chunks.
        index_t start = part_.back();
        while (end - start > opts.max_panel) {
          start += opts.max_panel;
          part_.push_back(start);
        }
        if (end > part_.back()) part_.push_back(end);
        width = 0;
      }
    }
    PANGULU_CHECK(part_.back() == n, "partition must cover all columns");
  }
  const auto ns = static_cast<index_t>(part_.size()) - 1;
  stats_.n_supernodes = ns;

  // Tile occupancy from the filled pattern.
  std::vector<index_t> col_to_part(static_cast<std::size_t>(n));
  for (index_t t = 0; t < ns; ++t) {
    for (index_t c = part_[static_cast<std::size_t>(t)];
         c < part_[static_cast<std::size_t>(t) + 1]; ++c)
      col_to_part[static_cast<std::size_t>(c)] = t;
  }
  std::vector<char> occupied(static_cast<std::size_t>(ns) * ns, 0);
  for (index_t j = 0; j < n; ++j) {
    const index_t tj = col_to_part[static_cast<std::size_t>(j)];
    for (nnz_t p = sym.filled.col_begin(j); p < sym.filled.col_end(j); ++p) {
      const index_t ti = col_to_part[static_cast<std::size_t>(
          sym.filled.row_idx()[static_cast<std::size_t>(p)])];
      occupied[static_cast<std::size_t>(tj) * ns + ti] = 1;
    }
  }
  // Diagonal tiles always exist.
  for (index_t t = 0; t < ns; ++t)
    occupied[static_cast<std::size_t>(t) * ns + t] = 1;

  tile_col_ptr_.assign(static_cast<std::size_t>(ns) + 1, 0);
  for (index_t tj = 0; tj < ns; ++tj) {
    nnz_t cnt = 0;
    for (index_t ti = 0; ti < ns; ++ti)
      if (occupied[static_cast<std::size_t>(tj) * ns + ti]) ++cnt;
    tile_col_ptr_[static_cast<std::size_t>(tj) + 1] =
        tile_col_ptr_[static_cast<std::size_t>(tj)] + cnt;
  }
  const nnz_t n_tiles = tile_col_ptr_.back();
  tile_row_idx_.resize(static_cast<std::size_t>(n_tiles));
  tiles_.assign(static_cast<std::size_t>(n_tiles), Dense());
  {
    nnz_t pos = 0;
    for (index_t tj = 0; tj < ns; ++tj) {
      for (index_t ti = 0; ti < ns; ++ti) {
        if (!occupied[static_cast<std::size_t>(tj) * ns + ti]) continue;
        tile_row_idx_[static_cast<std::size_t>(pos)] = ti;
        tiles_[static_cast<std::size_t>(pos)] =
            Dense(part_[static_cast<std::size_t>(ti) + 1] -
                      part_[static_cast<std::size_t>(ti)],
                  part_[static_cast<std::size_t>(tj) + 1] -
                      part_[static_cast<std::size_t>(tj)]);
        stats_.nnz_lu_stored +=
            static_cast<nnz_t>(tiles_[static_cast<std::size_t>(pos)].n_rows()) *
            tiles_[static_cast<std::size_t>(pos)].n_cols();
        ++pos;
      }
    }
  }
  // Scatter the (reordered, scaled) matrix values into tiles.
  const Csc& ap = reorder_.permuted;
  for (index_t j = 0; j < n; ++j) {
    const index_t tj = col_to_part[static_cast<std::size_t>(j)];
    const index_t cj = j - part_[static_cast<std::size_t>(tj)];
    for (nnz_t p = ap.col_begin(j); p < ap.col_end(j); ++p) {
      const index_t r = ap.row_idx()[static_cast<std::size_t>(p)];
      const index_t ti = col_to_part[static_cast<std::size_t>(r)];
      const nnz_t tpos = find_tile(ti, tj);
      PANGULU_CHECK(tpos >= 0, "value outside tile structure");
      tiles_[static_cast<std::size_t>(tpos)](
          r - part_[static_cast<std::size_t>(ti)], cj) =
          ap.values()[static_cast<std::size_t>(p)];
    }
  }
  stats_.preprocess_seconds = timer.seconds();

  // Numeric factorisation: bulk-synchronous level-set schedule with the
  // dense tile cost model (and the real dense numerics).
  const value_t amax = ap.max_abs() == value_t(0) ? value_t(1) : ap.max_abs();
  Status sched = simulate_schedule(opts.n_ranks, opts.device,
                                   opts.execute_numerics,
                                   opts.record_gemm_density,
                                   opts.pivot_tol * amax, &stats_.sim,
                                   &stats_.flops_dense);
  if (!sched.is_ok()) return sched;

  factorized_ = true;
  return Status::ok();
}

Status SupernodalSolver::solve(std::span<const value_t> b,
                               std::span<value_t> x) const {
  if (!factorized_) return Status::failed_precondition("factorize() first");
  const index_t n = stats_.n;
  if (static_cast<index_t>(b.size()) != n || static_cast<index_t>(x.size()) != n)
    return Status::invalid_argument("size mismatch");
  const auto ns = static_cast<index_t>(part_.size()) - 1;

  std::vector<value_t> z(static_cast<std::size_t>(n));
  for (index_t r = 0; r < n; ++r) {
    z[static_cast<std::size_t>(reorder_.row_perm[static_cast<std::size_t>(r)])] =
        reorder_.row_scale[static_cast<std::size_t>(r)] *
        b[static_cast<std::size_t>(r)];
  }

  // Forward solve over tiles.
  std::vector<std::vector<std::pair<index_t, nnz_t>>> row_tiles(
      static_cast<std::size_t>(ns));
  for (index_t tj = 0; tj < ns; ++tj) {
    for (nnz_t p = tile_col_ptr_[static_cast<std::size_t>(tj)];
         p < tile_col_ptr_[static_cast<std::size_t>(tj) + 1]; ++p) {
      row_tiles[static_cast<std::size_t>(
                    tile_row_idx_[static_cast<std::size_t>(p)])]
          .emplace_back(tj, p);
    }
  }
  auto seg = [&](index_t t) { return z.data() + part_[static_cast<std::size_t>(t)]; };
  auto spmv_sub = [&](const Dense& d, const value_t* xs, value_t* ys) {
    for (index_t j = 0; j < d.n_cols(); ++j) {
      const value_t xj = xs[j];
      if (xj == value_t(0)) continue;
      for (index_t i = 0; i < d.n_rows(); ++i) ys[i] -= d(i, j) * xj;
    }
  };

  for (index_t tk = 0; tk < ns; ++tk) {
    for (auto [tj, pos] : row_tiles[static_cast<std::size_t>(tk)]) {
      if (tj >= tk) continue;
      spmv_sub(tiles_[static_cast<std::size_t>(pos)], seg(tj), seg(tk));
    }
    const Dense& d = tiles_[static_cast<std::size_t>(find_tile(tk, tk))];
    value_t* s = seg(tk);
    for (index_t j = 0; j < d.n_cols(); ++j) {
      const value_t xj = s[j];
      if (xj == value_t(0)) continue;
      for (index_t i = j + 1; i < d.n_rows(); ++i) s[i] -= d(i, j) * xj;
    }
  }
  for (index_t tk = ns - 1; tk >= 0; --tk) {
    for (auto [tj, pos] : row_tiles[static_cast<std::size_t>(tk)]) {
      if (tj <= tk) continue;
      spmv_sub(tiles_[static_cast<std::size_t>(pos)], seg(tj), seg(tk));
    }
    const Dense& d = tiles_[static_cast<std::size_t>(find_tile(tk, tk))];
    value_t* s = seg(tk);
    for (index_t j = d.n_cols() - 1; j >= 0; --j) {
      s[j] /= d(j, j);
      const value_t xj = s[j];
      if (xj == value_t(0)) continue;
      for (index_t i = 0; i < j; ++i) s[i] -= d(i, j) * xj;
    }
  }

  for (index_t c = 0; c < n; ++c) {
    x[static_cast<std::size_t>(c)] =
        reorder_.col_scale[static_cast<std::size_t>(c)] *
        z[static_cast<std::size_t>(
            reorder_.col_perm[static_cast<std::size_t>(c)])];
  }
  return Status::ok();
}


Status SupernodalSolver::simulate_schedule(rank_t n_ranks,
                                           const runtime::DeviceModel& device,
                                           bool execute, bool record_density,
                                           value_t pivot_threshold,
                                           runtime::SimResult* sim,
                                           double* flops_dense) {
  const auto ns = static_cast<index_t>(part_.size()) - 1;
  const auto grid = block::ProcessGrid::make(n_ranks);
  auto tile_owner = [&](index_t ti, index_t tj) {
    return grid.owner_cyclic(ti, tj);
  };

  *sim = runtime::SimResult{};
  sim->ranks.assign(static_cast<std::size_t>(n_ranks), runtime::RankStats{});
  index_t perturbed = 0;
  double now = 0;
  std::vector<double> phase_busy(static_cast<std::size_t>(n_ranks));

  // Row-wise tile adjacency for walking block rows.
  std::vector<std::vector<std::pair<index_t, nnz_t>>> row_tiles(
      static_cast<std::size_t>(ns));  // (tj, pos)
  for (index_t tj = 0; tj < ns; ++tj) {
    for (nnz_t p = tile_col_ptr_[static_cast<std::size_t>(tj)];
         p < tile_col_ptr_[static_cast<std::size_t>(tj) + 1]; ++p) {
      row_tiles[static_cast<std::size_t>(
                    tile_row_idx_[static_cast<std::size_t>(p)])]
          .emplace_back(tj, p);
    }
  }

  auto tile_bytes = [](const Dense& d) {
    return static_cast<double>(d.n_rows()) * d.n_cols() * sizeof(value_t);
  };
  // Within an elimination step the three phases wait on each other through
  // point-to-point dependencies (cost: the slowest rank); the explicit
  // collective synchronisation is paid once per step.
  auto phase_end = [&](double max_busy) {
    for (rank_t r = 0; r < n_ranks; ++r) {
      sim->ranks[static_cast<std::size_t>(r)].idle +=
          max_busy - phase_busy[static_cast<std::size_t>(r)];
    }
    now += max_busy;
    std::fill(phase_busy.begin(), phase_busy.end(), 0.0);
  };

  // Panels fetched from remote ranks are broadcast once per phase per
  // destination rank, not once per consuming GEMM — supernodal solvers
  // aggregate their panel communication this way. `fetched` dedupes within
  // a phase.
  std::vector<std::pair<nnz_t, rank_t>> fetched;
  auto fetch_cost = [&](nnz_t src_pos, rank_t src_rank, rank_t dst_rank,
                        const Dense& tile) -> double {
    if (src_rank == dst_rank) return 0.0;
    for (auto [p, r] : fetched) {
      if (p == src_pos && r == dst_rank) return 0.0;
    }
    fetched.emplace_back(src_pos, dst_rank);
    auto& ss = sim->ranks[static_cast<std::size_t>(src_rank)];
    ss.messages_sent++;
    ss.bytes_sent += static_cast<std::size_t>(tile_bytes(tile));
    return device.message_time(static_cast<std::size_t>(tile_bytes(tile)));
  };

  for (index_t k = 0; k < ns; ++k) {
    const nnz_t dpos = find_tile(k, k);
    Dense& dk = tiles_[static_cast<std::size_t>(dpos)];
    const double sk = static_cast<double>(dk.n_rows());

    // Phase 1: panel factorisation of the diagonal tile.
    {
      const rank_t r = tile_owner(k, k);
      const double f = 2.0 / 3.0 * sk * sk * sk;
      const double cost = device.dense_update_time(f, tile_bytes(dk));
      phase_busy[static_cast<std::size_t>(r)] += cost;
      sim->ranks[static_cast<std::size_t>(r)].busy += cost;
      sim->panel_busy += cost;
      sim->total_flops += f;
      if (flops_dense) *flops_dense += f;
      if (execute) dense_getrf(dk, pivot_threshold, &perturbed);
      phase_end(*std::max_element(phase_busy.begin(), phase_busy.end()));
    }

    // Phase 2: panel solves along block-row k and block-column k.
    fetched.clear();
    for (auto [tj, pos] : row_tiles[static_cast<std::size_t>(k)]) {
      if (tj <= k) continue;
      Dense& b = tiles_[static_cast<std::size_t>(pos)];
      const rank_t r = tile_owner(k, tj);
      const double f = sk * sk * static_cast<double>(b.n_cols());
      double cost = device.dense_update_time(f, tile_bytes(b)) +
                    fetch_cost(dpos, tile_owner(k, k), r, dk);
      phase_busy[static_cast<std::size_t>(r)] += cost;
      sim->ranks[static_cast<std::size_t>(r)].busy += cost;
      sim->panel_busy += cost;
      sim->total_flops += f;
      if (flops_dense) *flops_dense += f;
      if (execute) dense_trsm_lower(dk, b);
    }
    for (nnz_t p = tile_col_ptr_[static_cast<std::size_t>(k)];
         p < tile_col_ptr_[static_cast<std::size_t>(k) + 1]; ++p) {
      const index_t ti = tile_row_idx_[static_cast<std::size_t>(p)];
      if (ti <= k) continue;
      Dense& b = tiles_[static_cast<std::size_t>(p)];
      const rank_t r = tile_owner(ti, k);
      const double f = sk * sk * static_cast<double>(b.n_rows());
      double cost = device.dense_update_time(f, tile_bytes(b)) +
                    fetch_cost(dpos, tile_owner(k, k), r, dk);
      phase_busy[static_cast<std::size_t>(r)] += cost;
      sim->ranks[static_cast<std::size_t>(r)].busy += cost;
      sim->panel_busy += cost;
      sim->total_flops += f;
      if (flops_dense) *flops_dense += f;
      if (execute) dense_trsm_upper(dk, b);
    }
    phase_end(*std::max_element(phase_busy.begin(), phase_busy.end()));

    // Phase 3: Schur updates — gather, dense GEMM, scatter.
    fetched.clear();
    for (nnz_t p = tile_col_ptr_[static_cast<std::size_t>(k)];
         p < tile_col_ptr_[static_cast<std::size_t>(k) + 1]; ++p) {
      const index_t ti = tile_row_idx_[static_cast<std::size_t>(p)];
      if (ti <= k) continue;
      const Dense& la = tiles_[static_cast<std::size_t>(p)];
      for (auto [tj, upos] : row_tiles[static_cast<std::size_t>(k)]) {
        if (tj <= k) continue;
        const Dense& ub = tiles_[static_cast<std::size_t>(upos)];
        const nnz_t cpos = find_tile(ti, tj);
        if (cpos < 0) continue;  // structurally empty target: update skipped
        Dense& ct = tiles_[static_cast<std::size_t>(cpos)];
        const rank_t r = tile_owner(ti, tj);
        const double f = 2.0 * la.n_rows() * sk * ub.n_cols();
        const double moved = tile_bytes(la) + tile_bytes(ub) + 2 * tile_bytes(ct);
        double cost = device.dense_update_time(f, moved) +
                      fetch_cost(p, tile_owner(ti, k), r, la) +
                      fetch_cost(upos, tile_owner(k, tj), r, ub);
        phase_busy[static_cast<std::size_t>(r)] += cost;
        sim->ranks[static_cast<std::size_t>(r)].busy += cost;
        sim->schur_busy += cost;
        sim->total_flops += f;
        if (flops_dense) *flops_dense += f;
        if (record_density) {
          stats_.gemm_density.push_back(
              {tile_density(la), tile_density(ub), tile_density(ct)});
        }
        if (execute) Dense::gemm_sub(la, ub, ct);
      }
    }
    phase_end(*std::max_element(phase_busy.begin(), phase_busy.end()));
    now += device.barrier_time(n_ranks);  // one collective sync per step
  }

  sim->makespan = now;
  sim->perturbed_pivots = perturbed;
  for (rank_t r = 0; r < n_ranks; ++r) {
    auto& rs = sim->ranks[static_cast<std::size_t>(r)];
    sim->avg_sync += rs.idle;
    sim->max_sync = std::max(sim->max_sync, rs.idle);
    sim->messages += rs.messages_sent;
    sim->bytes += rs.bytes_sent;
  }
  sim->avg_sync /= std::max<rank_t>(1, n_ranks);
  return Status::ok();
}

Status SupernodalSolver::retime(rank_t n_ranks,
                                const runtime::DeviceModel& device,
                                runtime::SimResult* out) {
  if (!factorized_) return Status::failed_precondition("factorize() first");
  return simulate_schedule(n_ranks, device, /*execute=*/false,
                           /*record_density=*/false, value_t(1), out,
                           /*flops_dense=*/nullptr);
}

}  // namespace pangulu::baseline

