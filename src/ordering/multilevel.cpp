#include "ordering/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/rng.hpp"

namespace pangulu::ordering {

namespace {

/// Weighted graph used on the coarse levels.
struct WGraph {
  index_t n = 0;
  std::vector<nnz_t> ptr;
  std::vector<index_t> adj;
  std::vector<std::int64_t> eweight;  // per adjacency entry
  std::vector<std::int64_t> vweight;  // per vertex

  static WGraph from_graph(const Graph& g) {
    WGraph w;
    w.n = g.n;
    w.ptr = g.ptr;
    w.adj = g.adj;
    w.eweight.assign(g.adj.size(), 1);
    w.vweight.assign(static_cast<std::size_t>(g.n), 1);
    return w;
  }
};

/// Heavy-edge matching in random visit order; match[v] = partner or v.
std::vector<index_t> heavy_edge_matching(const WGraph& g, Rng& rng) {
  std::vector<index_t> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), index_t(0));
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<index_t> match(static_cast<std::size_t>(g.n), -1);
  for (index_t v : order) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    index_t best = -1;
    std::int64_t best_w = -1;
    for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
         p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      const index_t u = g.adj[static_cast<std::size_t>(p)];
      if (u == v || match[static_cast<std::size_t>(u)] != -1) continue;
      if (g.eweight[static_cast<std::size_t>(p)] > best_w) {
        best_w = g.eweight[static_cast<std::size_t>(p)];
        best = u;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;
    }
  }
  return match;
}

/// Contract matched pairs; fills coarse->fine mapping (two slots per coarse
/// vertex, second = -1 for singletons) and fine->coarse labels.
WGraph contract(const WGraph& g, const std::vector<index_t>& match,
                std::vector<index_t>* fine_to_coarse) {
  fine_to_coarse->assign(static_cast<std::size_t>(g.n), -1);
  index_t nc = 0;
  for (index_t v = 0; v < g.n; ++v) {
    if ((*fine_to_coarse)[static_cast<std::size_t>(v)] != -1) continue;
    const index_t u = match[static_cast<std::size_t>(v)];
    (*fine_to_coarse)[static_cast<std::size_t>(v)] = nc;
    (*fine_to_coarse)[static_cast<std::size_t>(u)] = nc;
    ++nc;
  }
  WGraph c;
  c.n = nc;
  c.vweight.assign(static_cast<std::size_t>(nc), 0);
  for (index_t v = 0; v < g.n; ++v)
    c.vweight[static_cast<std::size_t>(
        (*fine_to_coarse)[static_cast<std::size_t>(v)])] +=
        g.vweight[static_cast<std::size_t>(v)];

  // Aggregate edges with a marker-based merge per coarse vertex.
  std::vector<index_t> marker(static_cast<std::size_t>(nc), -1);
  std::vector<nnz_t> slot(static_cast<std::size_t>(nc), 0);
  c.ptr.assign(static_cast<std::size_t>(nc) + 1, 0);
  std::vector<std::vector<std::pair<index_t, std::int64_t>>> rows(
      static_cast<std::size_t>(nc));
  for (index_t v = 0; v < g.n; ++v) {
    const index_t cv = (*fine_to_coarse)[static_cast<std::size_t>(v)];
    auto& row = rows[static_cast<std::size_t>(cv)];
    for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
         p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      const index_t cu =
          (*fine_to_coarse)[static_cast<std::size_t>(
              g.adj[static_cast<std::size_t>(p)])];
      if (cu == cv) continue;  // contracted edge disappears
      if (marker[static_cast<std::size_t>(cu)] == cv) {
        row[static_cast<std::size_t>(slot[static_cast<std::size_t>(cu)])]
            .second += g.eweight[static_cast<std::size_t>(p)];
      } else {
        marker[static_cast<std::size_t>(cu)] = cv;
        slot[static_cast<std::size_t>(cu)] = static_cast<nnz_t>(row.size());
        row.push_back({cu, g.eweight[static_cast<std::size_t>(p)]});
      }
    }
  }
  for (index_t cv = 0; cv < nc; ++cv)
    c.ptr[static_cast<std::size_t>(cv) + 1] =
        c.ptr[static_cast<std::size_t>(cv)] +
        static_cast<nnz_t>(rows[static_cast<std::size_t>(cv)].size());
  c.adj.resize(static_cast<std::size_t>(c.ptr.back()));
  c.eweight.resize(static_cast<std::size_t>(c.ptr.back()));
  for (index_t cv = 0; cv < nc; ++cv) {
    nnz_t q = c.ptr[static_cast<std::size_t>(cv)];
    for (auto [cu, w] : rows[static_cast<std::size_t>(cv)]) {
      c.adj[static_cast<std::size_t>(q)] = cu;
      c.eweight[static_cast<std::size_t>(q)] = w;
      ++q;
    }
  }
  return c;
}

std::int64_t total_weight(const WGraph& g) {
  std::int64_t t = 0;
  for (auto w : g.vweight) t += w;
  return t;
}

/// Initial partition: weighted BFS region growing from a pseudo-peripheral
/// vertex until side 0 holds ~half the total weight.
std::vector<char> grow_partition(const WGraph& g, Rng& rng) {
  std::vector<char> side(static_cast<std::size_t>(g.n), 1);
  if (g.n == 0) return side;
  const std::int64_t target = total_weight(g) / 2;
  const index_t start = rng.uniform_index(0, g.n - 1);
  std::vector<char> visited(static_cast<std::size_t>(g.n), 0);
  std::queue<index_t> q;
  q.push(start);
  visited[static_cast<std::size_t>(start)] = 1;
  std::int64_t grown = 0;
  while (!q.empty() && grown < target) {
    const index_t v = q.front();
    q.pop();
    side[static_cast<std::size_t>(v)] = 0;
    grown += g.vweight[static_cast<std::size_t>(v)];
    for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
         p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      const index_t u = g.adj[static_cast<std::size_t>(p)];
      if (!visited[static_cast<std::size_t>(u)]) {
        visited[static_cast<std::size_t>(u)] = 1;
        q.push(u);
      }
    }
  }
  // Disconnected remainder: if side 0 starved, move arbitrary vertices.
  for (index_t v = 0; v < g.n && grown < target; ++v) {
    if (side[static_cast<std::size_t>(v)] == 1 &&
        !visited[static_cast<std::size_t>(v)]) {
      side[static_cast<std::size_t>(v)] = 0;
      grown += g.vweight[static_cast<std::size_t>(v)];
    }
  }
  return side;
}

/// One FM-style boundary refinement sweep: move the best-gain boundary
/// vertices while the balance constraint allows; keep the best prefix.
void fm_refine(const WGraph& g, std::vector<char>& side, double balance,
               int passes) {
  const std::int64_t total = total_weight(g);
  const auto max_side =
      static_cast<std::int64_t>(balance * static_cast<double>(total) / 2.0);

  for (int pass = 0; pass < passes; ++pass) {
    // Gains: moving v to the other side changes the cut by (internal -
    // external) edge weight.
    std::int64_t w0 = 0;
    for (index_t v = 0; v < g.n; ++v)
      if (side[static_cast<std::size_t>(v)] == 0)
        w0 += g.vweight[static_cast<std::size_t>(v)];

    bool improved = false;
    for (index_t v = 0; v < g.n; ++v) {
      const char sv = side[static_cast<std::size_t>(v)];
      std::int64_t internal = 0, external = 0;
      for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
           p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
        const index_t u = g.adj[static_cast<std::size_t>(p)];
        if (side[static_cast<std::size_t>(u)] == sv)
          internal += g.eweight[static_cast<std::size_t>(p)];
        else
          external += g.eweight[static_cast<std::size_t>(p)];
      }
      const std::int64_t gain = external - internal;
      if (gain <= 0) continue;
      // Balance check for the destination side.
      const std::int64_t vw = g.vweight[static_cast<std::size_t>(v)];
      const std::int64_t new_w0 = sv == 0 ? w0 - vw : w0 + vw;
      const std::int64_t new_w1 = total - new_w0;
      if (new_w0 <= 0 || new_w1 <= 0) continue;
      if (std::max(new_w0, new_w1) > max_side) continue;
      side[static_cast<std::size_t>(v)] = static_cast<char>(1 - sv);
      w0 = new_w0;
      improved = true;
    }
    if (!improved) break;
  }
}

std::int64_t cut_of(const WGraph& g, const std::vector<char>& side) {
  std::int64_t cut = 0;
  for (index_t v = 0; v < g.n; ++v) {
    for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
         p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      const index_t u = g.adj[static_cast<std::size_t>(p)];
      if (u > v && side[static_cast<std::size_t>(u)] !=
                       side[static_cast<std::size_t>(v)])
        cut += g.eweight[static_cast<std::size_t>(p)];
    }
  }
  return cut;
}

}  // namespace

Bisection multilevel_bisect(const Graph& g, const MultilevelOptions& opts) {
  Bisection out;
  out.side.assign(static_cast<std::size_t>(g.n), 0);
  if (g.n <= 1) return out;
  Rng rng(opts.seed);

  // Coarsening phase.
  std::vector<WGraph> levels;
  std::vector<std::vector<index_t>> maps;  // fine -> coarse per level
  levels.push_back(WGraph::from_graph(g));
  while (levels.back().n > opts.coarsen_to) {
    const WGraph& cur = levels.back();
    auto match = heavy_edge_matching(cur, rng);
    std::vector<index_t> f2c;
    WGraph coarse = contract(cur, match, &f2c);
    if (coarse.n >= cur.n) break;  // matching stalled (e.g. star graphs)
    maps.push_back(std::move(f2c));
    levels.push_back(std::move(coarse));
  }

  // Initial partition on the coarsest graph, refined there first.
  std::vector<char> side = grow_partition(levels.back(), rng);
  fm_refine(levels.back(), side, opts.balance, opts.refine_passes);

  // Uncoarsen with refinement at each level.
  for (std::size_t lvl = maps.size(); lvl-- > 0;) {
    const auto& f2c = maps[lvl];
    std::vector<char> fine_side(f2c.size());
    for (std::size_t v = 0; v < f2c.size(); ++v)
      fine_side[v] = side[static_cast<std::size_t>(f2c[v])];
    side = std::move(fine_side);
    fm_refine(levels[lvl], side, opts.balance, opts.refine_passes);
  }

  // Guarantee both sides non-empty.
  bool has0 = false, has1 = false;
  for (char s : side) (s ? has1 : has0) = true;
  if (!has0) side[0] = 0;
  if (!has1) side[0] = 1;

  out.side = std::move(side);
  out.edge_cut = cut_of(levels.front(), out.side);
  for (index_t v = 0; v < g.n; ++v) {
    if (out.side[static_cast<std::size_t>(v)] == 0)
      ++out.weight0;
    else
      ++out.weight1;
  }
  return out;
}

std::vector<index_t> separator_from_cut(const Graph& g, const Bisection& b) {
  // Greedy vertex cover of the cut edges, highest uncovered-degree first.
  std::vector<index_t> cut_degree(static_cast<std::size_t>(g.n), 0);
  for (index_t v = 0; v < g.n; ++v) {
    for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
         p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      const index_t u = g.adj[static_cast<std::size_t>(p)];
      if (b.side[static_cast<std::size_t>(u)] !=
          b.side[static_cast<std::size_t>(v)])
        cut_degree[static_cast<std::size_t>(v)]++;
    }
  }
  std::vector<index_t> order;
  for (index_t v = 0; v < g.n; ++v)
    if (cut_degree[static_cast<std::size_t>(v)] > 0) order.push_back(v);
  std::sort(order.begin(), order.end(), [&](index_t a, index_t c) {
    return cut_degree[static_cast<std::size_t>(a)] >
           cut_degree[static_cast<std::size_t>(c)];
  });

  std::vector<char> in_sep(static_cast<std::size_t>(g.n), 0);
  std::vector<index_t> sep;
  for (index_t v : order) {
    // Still covering an uncovered cut edge?
    bool needed = false;
    for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
         p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      const index_t u = g.adj[static_cast<std::size_t>(p)];
      if (b.side[static_cast<std::size_t>(u)] !=
              b.side[static_cast<std::size_t>(v)] &&
          !in_sep[static_cast<std::size_t>(u)] &&
          !in_sep[static_cast<std::size_t>(v)]) {
        needed = true;
        break;
      }
    }
    if (needed) {
      in_sep[static_cast<std::size_t>(v)] = 1;
      sep.push_back(v);
    }
  }
  return sep;
}

}  // namespace pangulu::ordering
