// Minimum-degree ordering on a quotient graph with element absorption —
// the classic fill-reducing heuristic (Amestoy/Davis/Duff family). Used both
// standalone and as the leaf ordering of nested dissection.
#pragma once

#include <vector>

#include "ordering/graph.hpp"
#include "util/types.hpp"

namespace pangulu::ordering {

/// Returns perm with perm[old] = new (elimination position).
std::vector<index_t> min_degree(const Graph& g);

}  // namespace pangulu::ordering
