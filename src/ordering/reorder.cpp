#include "ordering/reorder.hpp"

#include "ordering/graph.hpp"
#include "ordering/amd.hpp"
#include "ordering/min_degree.hpp"
#include "ordering/nested_dissection.hpp"
#include "ordering/rcm.hpp"
#include "sparse/ops.hpp"

namespace pangulu::ordering {

Status reorder(const Csc& a, const ReorderOptions& opts, ReorderResult* out,
               ThreadPool* pool) {
  if (a.n_rows() != a.n_cols())
    return Status::invalid_argument("reorder: square matrices only");
  const index_t n = a.n_cols();

  Csc work = a;
  std::vector<index_t> mc64_row = identity_permutation(n);
  out->row_scale.assign(static_cast<std::size_t>(n), value_t(1));
  out->col_scale.assign(static_cast<std::size_t>(n), value_t(1));

  if (opts.use_mc64) {
    Mc64Result m;
    Status s = mc64(a, &m);
    if (!s.is_ok()) return s;
    mc64_row = m.row_perm;
    if (opts.apply_scaling) {
      work.scale(m.row_scale, m.col_scale);
      out->row_scale = m.row_scale;
      out->col_scale = m.col_scale;
    }
    work = work.permuted(mc64_row, identity_permutation(n));
  }

  // Symmetric fill-reducing permutation on the pattern of work + work'.
  std::vector<index_t> sym;
  switch (opts.fill_reducing) {
    case FillReducing::kNatural:
      sym = identity_permutation(n);
      break;
    case FillReducing::kRcm:
      sym = rcm(Graph::from_matrix(work, pool));
      break;
    case FillReducing::kMinDegree:
      sym = min_degree(Graph::from_matrix(work, pool));
      break;
    case FillReducing::kAmd:
      sym = amd(Graph::from_matrix(work, pool));
      break;
    case FillReducing::kNestedDissection: {
      NdOptions nd;
      nd.leaf_size = opts.nd_leaf_size;
      sym = nested_dissection(Graph::from_matrix(work, pool), nd);
      break;
    }
  }

  out->permuted = work.permuted(sym, sym);
  out->row_perm = compose(sym, mc64_row);
  out->col_perm = sym;
  return Status::ok();
}

}  // namespace pangulu::ordering
