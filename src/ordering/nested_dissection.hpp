// Nested dissection ordering — the METIS substitute of this reproduction.
// Recursive graph bisection with BFS level-set separators and minimum-degree
// leaf ordering; separators are numbered last, which is what bounds fill.
#pragma once

#include <vector>

#include "ordering/graph.hpp"
#include "util/types.hpp"

namespace pangulu::ordering {

struct NdOptions {
  index_t leaf_size = 64;   // subgraphs at or below this use minimum degree
  int max_depth = 32;       // recursion guard
  /// Multilevel bisection (heavy-edge matching + FM refinement, the METIS
  /// recipe) instead of plain BFS level-set splitting. Better separators,
  /// slightly more preprocessing time.
  bool use_multilevel = true;
};

/// Returns perm with perm[old] = new.
std::vector<index_t> nested_dissection(const Graph& g, const NdOptions& opts = {});

}  // namespace pangulu::ordering
