#include "ordering/graph.hpp"

#include <algorithm>

namespace pangulu::ordering {

Graph Graph::from_matrix(const Csc& a) {
  PANGULU_CHECK(a.n_rows() == a.n_cols(), "graph needs a square matrix");
  const index_t n = a.n_cols();
  // Collect both directions, dedupe per vertex.
  std::vector<std::vector<index_t>> nbrs(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      index_t i = a.row_idx()[static_cast<std::size_t>(p)];
      if (i == j) continue;
      nbrs[static_cast<std::size_t>(i)].push_back(j);
      nbrs[static_cast<std::size_t>(j)].push_back(i);
    }
  }
  Graph g;
  g.n = n;
  g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t v = 0; v < n; ++v) {
    auto& list = nbrs[static_cast<std::size_t>(v)];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    g.ptr[static_cast<std::size_t>(v) + 1] =
        g.ptr[static_cast<std::size_t>(v)] + static_cast<nnz_t>(list.size());
  }
  g.adj.resize(static_cast<std::size_t>(g.ptr.back()));
  for (index_t v = 0; v < n; ++v) {
    std::copy(nbrs[static_cast<std::size_t>(v)].begin(),
              nbrs[static_cast<std::size_t>(v)].end(),
              g.adj.begin() + g.ptr[static_cast<std::size_t>(v)]);
  }
  return g;
}

Graph Graph::induced(const std::vector<index_t>& vertices,
                     std::vector<index_t>* local_to_global) const {
  std::vector<index_t> global_to_local(static_cast<std::size_t>(n), -1);
  for (std::size_t k = 0; k < vertices.size(); ++k)
    global_to_local[static_cast<std::size_t>(vertices[k])] = static_cast<index_t>(k);

  Graph s;
  s.n = static_cast<index_t>(vertices.size());
  s.ptr.assign(static_cast<std::size_t>(s.n) + 1, 0);
  for (std::size_t k = 0; k < vertices.size(); ++k) {
    index_t v = vertices[k];
    nnz_t cnt = 0;
    for (nnz_t p = ptr[static_cast<std::size_t>(v)];
         p < ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      if (global_to_local[static_cast<std::size_t>(adj[static_cast<std::size_t>(p)])] >= 0)
        ++cnt;
    }
    s.ptr[k + 1] = s.ptr[k] + cnt;
  }
  s.adj.resize(static_cast<std::size_t>(s.ptr.back()));
  for (std::size_t k = 0; k < vertices.size(); ++k) {
    index_t v = vertices[k];
    nnz_t q = s.ptr[k];
    for (nnz_t p = ptr[static_cast<std::size_t>(v)];
         p < ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      index_t w = global_to_local[static_cast<std::size_t>(adj[static_cast<std::size_t>(p)])];
      if (w >= 0) s.adj[static_cast<std::size_t>(q++)] = w;
    }
    std::sort(s.adj.begin() + s.ptr[k], s.adj.begin() + s.ptr[k + 1]);
  }
  if (local_to_global) *local_to_global = vertices;
  return s;
}

}  // namespace pangulu::ordering
