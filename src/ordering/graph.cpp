#include "ordering/graph.hpp"

#include <algorithm>

#include "parallel/partition.hpp"
#include "sparse/ops.hpp"

namespace pangulu::ordering {

namespace {

Graph from_matrix_serial(const Csc& a) {
  const index_t n = a.n_cols();
  // Collect both directions, dedupe per vertex.
  std::vector<std::vector<index_t>> nbrs(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      index_t i = a.row_idx()[static_cast<std::size_t>(p)];
      if (i == j) continue;
      nbrs[static_cast<std::size_t>(i)].push_back(j);
      nbrs[static_cast<std::size_t>(j)].push_back(i);
    }
  }
  Graph g;
  g.n = n;
  g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t v = 0; v < n; ++v) {
    auto& list = nbrs[static_cast<std::size_t>(v)];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    g.ptr[static_cast<std::size_t>(v) + 1] =
        g.ptr[static_cast<std::size_t>(v)] + static_cast<nnz_t>(list.size());
  }
  g.adj.resize(static_cast<std::size_t>(g.ptr.back()));
  for (index_t v = 0; v < n; ++v) {
    std::copy(nbrs[static_cast<std::size_t>(v)].begin(),
              nbrs[static_cast<std::size_t>(v)].end(),
              g.adj.begin() + g.ptr[static_cast<std::size_t>(v)]);
  }
  return g;
}

}  // namespace

Graph Graph::from_matrix(const Csc& a, ThreadPool* pool) {
  PANGULU_CHECK(a.n_rows() == a.n_cols(), "graph needs a square matrix");
  ThreadPool& tp = effective_pool(pool);
  if (tp.size() <= 1) return from_matrix_serial(a);
  const index_t n = a.n_cols();
  // Vertex v's neighbours are the sorted union of column v of A and column v
  // of A^T, diagonal dropped — each vertex independent, so a parallel
  // transpose plus a per-vertex two-pointer merge reproduces the serial
  // sort/unique lists exactly.
  const Csc at = transposed(a, &tp);
  const index_t kEnd = n;
  auto merge_vertex = [&](index_t v, auto&& emit) {
    nnz_t pa = a.col_begin(v);
    const nnz_t ea = a.col_end(v);
    nnz_t pt = at.col_begin(v);
    const nnz_t et = at.col_end(v);
    while (pa < ea || pt < et) {
      const index_t ra = pa < ea ? a.row_idx()[static_cast<std::size_t>(pa)] : kEnd;
      const index_t rt =
          pt < et ? at.row_idx()[static_cast<std::size_t>(pt)] : kEnd;
      const index_t r = std::min(ra, rt);
      if (ra == r) ++pa;
      if (rt == r) ++pt;
      if (r != v) emit(r);
    }
  };
  Graph g;
  g.n = n;
  g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<nnz_t> deg(static_cast<std::size_t>(n));
  parallel_for_chunks(tp, 0, n, [&](index_t lo, index_t hi) {
    for (index_t v = lo; v < hi; ++v) {
      nnz_t d = 0;
      merge_vertex(v, [&](index_t) { ++d; });
      deg[static_cast<std::size_t>(v)] = d;
    }
  });
  exclusive_prefix_sum(tp, deg, g.ptr);
  g.adj.resize(static_cast<std::size_t>(g.ptr.back()));
  parallel_for_chunks(tp, 0, n, [&](index_t lo, index_t hi) {
    for (index_t v = lo; v < hi; ++v) {
      nnz_t q = g.ptr[static_cast<std::size_t>(v)];
      merge_vertex(v, [&](index_t r) {
        g.adj[static_cast<std::size_t>(q++)] = r;
      });
    }
  });
  return g;
}

Graph Graph::induced(const std::vector<index_t>& vertices,
                     std::vector<index_t>* local_to_global) const {
  std::vector<index_t> global_to_local(static_cast<std::size_t>(n), -1);
  for (std::size_t k = 0; k < vertices.size(); ++k)
    global_to_local[static_cast<std::size_t>(vertices[k])] = static_cast<index_t>(k);

  Graph s;
  s.n = static_cast<index_t>(vertices.size());
  s.ptr.assign(static_cast<std::size_t>(s.n) + 1, 0);
  for (std::size_t k = 0; k < vertices.size(); ++k) {
    index_t v = vertices[k];
    nnz_t cnt = 0;
    for (nnz_t p = ptr[static_cast<std::size_t>(v)];
         p < ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      if (global_to_local[static_cast<std::size_t>(adj[static_cast<std::size_t>(p)])] >= 0)
        ++cnt;
    }
    s.ptr[k + 1] = s.ptr[k] + cnt;
  }
  s.adj.resize(static_cast<std::size_t>(s.ptr.back()));
  for (std::size_t k = 0; k < vertices.size(); ++k) {
    index_t v = vertices[k];
    nnz_t q = s.ptr[k];
    for (nnz_t p = ptr[static_cast<std::size_t>(v)];
         p < ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      index_t w = global_to_local[static_cast<std::size_t>(adj[static_cast<std::size_t>(p)])];
      if (w >= 0) s.adj[static_cast<std::size_t>(q++)] = w;
    }
    std::sort(s.adj.begin() + s.ptr[k], s.adj.begin() + s.ptr[k + 1]);
  }
  if (local_to_global) *local_to_global = vertices;
  return s;
}

}  // namespace pangulu::ordering
