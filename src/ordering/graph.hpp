// Undirected adjacency structure of A + A^T (diagonal dropped): the input of
// every symmetric fill-reducing ordering in this module.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace pangulu {
class ThreadPool;
}

namespace pangulu::ordering {

struct Graph {
  index_t n = 0;
  std::vector<nnz_t> ptr;      // size n+1
  std::vector<index_t> adj;    // neighbour lists, sorted

  index_t degree(index_t v) const {
    return static_cast<index_t>(ptr[static_cast<std::size_t>(v) + 1] -
                                ptr[static_cast<std::size_t>(v)]);
  }

  /// Build from the pattern of A + A^T with the diagonal removed. With a
  /// multi-worker pool (nullptr: the global pool) the adjacency is built by
  /// a parallel transpose + per-vertex sorted merge, bitwise identical to
  /// the serial sort/unique construction.
  static Graph from_matrix(const Csc& a, ThreadPool* pool = nullptr);

  /// Induced subgraph on `vertices` (which must be unique). Returns the
  /// subgraph plus the local->global vertex map (= `vertices` itself).
  Graph induced(const std::vector<index_t>& vertices,
                std::vector<index_t>* local_to_global) const;
};

}  // namespace pangulu::ordering
