#include "ordering/mc64.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace pangulu::ordering {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

// Sparse shortest-augmenting-path assignment (Jonker-Volgenant style) on the
// cost matrix c(i,j) = log(max_j) - log|a(i,j)| >= 0, which converts the
// maximum-product objective into a minimum-cost perfect matching. Dual
// variables u (rows) and v (cols) satisfy u_i + v_j <= c_ij with equality on
// matched entries; they directly yield the MC64 scaling vectors.
Status mc64(const Csc& a, Mc64Result* out) {
  const index_t n = a.n_cols();
  if (a.n_rows() != n) return Status::invalid_argument("mc64: square only");

  // Column-wise costs. Entries with value 0 are structural only: cost +inf.
  std::vector<double> col_max(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      col_max[static_cast<std::size_t>(j)] =
          std::max(col_max[static_cast<std::size_t>(j)],
                   std::abs(a.values()[static_cast<std::size_t>(p)]));
    }
    if (col_max[static_cast<std::size_t>(j)] == 0.0)
      return Status::numerical_error("mc64: empty or all-zero column " +
                                     std::to_string(j));
  }
  auto cost = [&](nnz_t p, index_t j) -> double {
    double av = std::abs(a.values()[static_cast<std::size_t>(p)]);
    if (av == 0.0) return kInf;
    return std::log(col_max[static_cast<std::size_t>(j)]) - std::log(av);
  };

  std::vector<index_t> row_of_col(static_cast<std::size_t>(n), -1);
  std::vector<index_t> col_of_row(static_cast<std::size_t>(n), -1);
  std::vector<double> u(static_cast<std::size_t>(n), 0.0);  // row duals
  std::vector<double> v(static_cast<std::size_t>(n), 0.0);  // col duals

  // Cheap initial matching: v_j = min_i c_ij keeps reduced costs >= 0; match
  // a column to a still-free row along one of its tight arcs.
  for (index_t j = 0; j < n; ++j) {
    double cmin = kInf;
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p)
      cmin = std::min(cmin, cost(p, j));
    v[static_cast<std::size_t>(j)] = cmin;
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      index_t i = a.row_idx()[static_cast<std::size_t>(p)];
      if (col_of_row[static_cast<std::size_t>(i)] < 0 &&
          cost(p, j) - cmin <= 0.0) {
        col_of_row[static_cast<std::size_t>(i)] = j;
        row_of_col[static_cast<std::size_t>(j)] = i;
        break;
      }
    }
  }

  // Dijkstra-based augmentation for every unmatched column.
  std::vector<double> dist(static_cast<std::size_t>(n));
  std::vector<index_t> pred_col(static_cast<std::size_t>(n));  // row <- col reached from
  std::vector<char> visited(static_cast<std::size_t>(n));
  std::vector<index_t> scanned_cols;   // columns added to the alternating tree
  std::vector<double> d_col(static_cast<std::size_t>(n));  // tree distance of a column
  using Item = std::pair<double, index_t>;  // (dist, row)

  for (index_t j0 = 0; j0 < n; ++j0) {
    if (row_of_col[static_cast<std::size_t>(j0)] >= 0) continue;
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(visited.begin(), visited.end(), 0);
    scanned_cols.clear();
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;

    auto relax_from_col = [&](index_t j, double dj) {
      for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
        index_t i = a.row_idx()[static_cast<std::size_t>(p)];
        if (visited[static_cast<std::size_t>(i)]) continue;
        double c = cost(p, j);
        if (c == kInf) continue;
        double rc = c - v[static_cast<std::size_t>(j)] - u[static_cast<std::size_t>(i)];
        double nd = dj + rc;
        if (nd < dist[static_cast<std::size_t>(i)]) {
          dist[static_cast<std::size_t>(i)] = nd;
          pred_col[static_cast<std::size_t>(i)] = j;
          pq.push({nd, i});
        }
      }
    };

    d_col[static_cast<std::size_t>(j0)] = 0.0;
    scanned_cols.push_back(j0);
    relax_from_col(j0, 0.0);

    index_t final_row = -1;
    double mu = kInf;
    while (!pq.empty()) {
      auto [d, i] = pq.top();
      pq.pop();
      if (visited[static_cast<std::size_t>(i)]) continue;
      visited[static_cast<std::size_t>(i)] = 1;
      if (col_of_row[static_cast<std::size_t>(i)] < 0) {
        final_row = i;
        mu = d;
        break;
      }
      // Enter the matched column of row i (matched arc has reduced cost 0).
      index_t jm = col_of_row[static_cast<std::size_t>(i)];
      d_col[static_cast<std::size_t>(jm)] = d;
      scanned_cols.push_back(jm);
      relax_from_col(jm, d);
    }

    if (final_row < 0)
      return Status::numerical_error("mc64: structurally singular matrix");

    // Jonker-Volgenant dual update: shrink the potential of every tree
    // column by its slack to the shortest augmenting distance ...
    for (index_t j : scanned_cols)
      v[static_cast<std::size_t>(j)] += d_col[static_cast<std::size_t>(j)] - mu;

    // ... then augment along the predecessor chain ...
    index_t i = final_row;
    while (true) {
      index_t jc = pred_col[static_cast<std::size_t>(i)];
      index_t inext = row_of_col[static_cast<std::size_t>(jc)];
      row_of_col[static_cast<std::size_t>(jc)] = i;
      col_of_row[static_cast<std::size_t>(i)] = jc;
      if (jc == j0) break;
      i = inext;
    }

    // ... and restore tightness of every (possibly re-)matched tree column.
    for (index_t j : scanned_cols) {
      index_t im = row_of_col[static_cast<std::size_t>(j)];
      u[static_cast<std::size_t>(im)] =
          cost(a.find(im, j), j) - v[static_cast<std::size_t>(j)];
    }
  }

  out->row_of_col = row_of_col;
  out->row_perm.assign(static_cast<std::size_t>(n), -1);
  for (index_t j = 0; j < n; ++j)
    out->row_perm[static_cast<std::size_t>(row_of_col[static_cast<std::size_t>(j)])] = j;

  // Scalings from duals: r_i = exp(u_i), c_j = exp(v_j)/col_max_j gives
  // |r_i a_ij c_j| = exp(-(c_ij - u_i - v_j)) <= 1, with equality on the
  // matching where the reduced cost is 0.
  out->row_scale.resize(static_cast<std::size_t>(n));
  out->col_scale.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    out->row_scale[static_cast<std::size_t>(i)] = std::exp(u[static_cast<std::size_t>(i)]);
  for (index_t j = 0; j < n; ++j)
    out->col_scale[static_cast<std::size_t>(j)] =
        std::exp(v[static_cast<std::size_t>(j)]) / col_max[static_cast<std::size_t>(j)];
  return Status::ok();
}

}  // namespace pangulu::ordering
