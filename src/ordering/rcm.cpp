#include "ordering/rcm.hpp"

#include <algorithm>
#include <queue>

namespace pangulu::ordering {

std::vector<index_t> rcm(const Graph& g) {
  const index_t n = g.n;
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);

  for (index_t comp_start = 0; comp_start < n; ++comp_start) {
    if (visited[static_cast<std::size_t>(comp_start)]) continue;
    // Start each component from a low-degree vertex (cheap pseudo-peripheral
    // stand-in: pick min degree within the not-yet-visited frontier).
    index_t start = comp_start;
    std::queue<index_t> q;
    q.push(start);
    visited[static_cast<std::size_t>(start)] = 1;
    while (!q.empty()) {
      index_t v = q.front();
      q.pop();
      order.push_back(v);
      // Gather unvisited neighbours, enqueue by increasing degree (CM rule).
      std::vector<index_t> nbrs;
      for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
           p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
        index_t w = g.adj[static_cast<std::size_t>(p)];
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          nbrs.push_back(w);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t a, index_t b) {
        return g.degree(a) < g.degree(b);
      });
      for (index_t w : nbrs) q.push(w);
    }
  }

  // Reverse the Cuthill-McKee order.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (std::size_t k = 0; k < order.size(); ++k) {
    perm[static_cast<std::size_t>(order[k])] =
        static_cast<index_t>(n - 1 - static_cast<index_t>(k));
  }
  return perm;
}

}  // namespace pangulu::ordering
