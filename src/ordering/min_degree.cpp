#include "ordering/min_degree.hpp"

#include <algorithm>
#include <limits>

namespace pangulu::ordering {

// Quotient-graph minimum degree. Each still-active variable v keeps
//   var_adj[v]  : adjacent variables (original edges not yet absorbed)
//   elem_adj[v] : adjacent elements (cliques created by eliminations)
// Each element e keeps elem_vars[e]: its member variables. Eliminating the
// minimum-degree variable p forms a new element whose members are p's
// quotient-graph neighbourhood; p's adjacent elements are absorbed into it
// (their members merged), which keeps total storage bounded by the original
// edge count plus n.
std::vector<index_t> min_degree(const Graph& g) {
  const index_t n = g.n;
  std::vector<std::vector<index_t>> var_adj(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elem_adj(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elem_vars;  // elements created so far
  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  std::vector<char> elem_alive;
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  std::vector<index_t> marker(static_cast<std::size_t>(n), -1);

  for (index_t v = 0; v < n; ++v) {
    var_adj[static_cast<std::size_t>(v)].assign(
        g.adj.begin() + g.ptr[static_cast<std::size_t>(v)],
        g.adj.begin() + g.ptr[static_cast<std::size_t>(v) + 1]);
    degree[static_cast<std::size_t>(v)] = g.degree(v);
  }

  // Simple bucketed degree lists for O(1) min extraction with lazy degree
  // refresh (degrees are recomputed exactly when a vertex is touched).
  std::vector<std::vector<index_t>> bucket(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> bucket_pos_degree(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    bucket[static_cast<std::size_t>(degree[static_cast<std::size_t>(v)])].push_back(v);
    bucket_pos_degree[static_cast<std::size_t>(v)] = degree[static_cast<std::size_t>(v)];
  }
  index_t min_bucket = 0;

  // Computes the exact quotient-graph neighbourhood of v into `out`
  // (deduplicated via marker stamped with `stamp`).
  auto neighbourhood = [&](index_t v, index_t stamp, std::vector<index_t>& out) {
    out.clear();
    marker[static_cast<std::size_t>(v)] = stamp;
    for (index_t w : var_adj[static_cast<std::size_t>(v)]) {
      if (alive[static_cast<std::size_t>(w)] &&
          marker[static_cast<std::size_t>(w)] != stamp) {
        marker[static_cast<std::size_t>(w)] = stamp;
        out.push_back(w);
      }
    }
    for (index_t e : elem_adj[static_cast<std::size_t>(v)]) {
      if (!elem_alive[static_cast<std::size_t>(e)]) continue;
      for (index_t w : elem_vars[static_cast<std::size_t>(e)]) {
        if (alive[static_cast<std::size_t>(w)] && w != v &&
            marker[static_cast<std::size_t>(w)] != stamp) {
          marker[static_cast<std::size_t>(w)] = stamp;
          out.push_back(w);
        }
      }
    }
  };

  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::vector<index_t> nbrs;
  index_t stamp = 0;

  for (index_t step = 0; step < n; ++step) {
    // Pop the (lazily maintained) minimum-degree vertex.
    index_t p = -1;
    while (p < 0) {
      while (min_bucket <= n && bucket[static_cast<std::size_t>(min_bucket)].empty())
        ++min_bucket;
      PANGULU_CHECK(min_bucket <= n, "min_degree: empty buckets");
      index_t cand = bucket[static_cast<std::size_t>(min_bucket)].back();
      bucket[static_cast<std::size_t>(min_bucket)].pop_back();
      if (!alive[static_cast<std::size_t>(cand)]) continue;
      if (bucket_pos_degree[static_cast<std::size_t>(cand)] != min_bucket)
        continue;  // stale bucket entry; the fresh one lives elsewhere
      p = cand;
    }

    perm[static_cast<std::size_t>(p)] = step;
    alive[static_cast<std::size_t>(p)] = 0;

    // Form the new element from p's neighbourhood.
    neighbourhood(p, ++stamp, nbrs);
    const auto e_new = static_cast<index_t>(elem_vars.size());
    elem_vars.push_back(nbrs);
    elem_alive.push_back(1);

    // Absorb p's old elements.
    for (index_t e : elem_adj[static_cast<std::size_t>(p)]) {
      if (e != e_new && elem_alive[static_cast<std::size_t>(e)])
        elem_alive[static_cast<std::size_t>(e)] = 0;
    }

    // Update every member: drop p and absorbed-element references, attach
    // e_new, and refresh the exact degree.
    for (index_t w : nbrs) {
      auto& va = var_adj[static_cast<std::size_t>(w)];
      va.erase(std::remove_if(va.begin(), va.end(),
                              [&](index_t x) {
                                return x == p || !alive[static_cast<std::size_t>(x)];
                              }),
               va.end());
      auto& ea = elem_adj[static_cast<std::size_t>(w)];
      ea.erase(std::remove_if(ea.begin(), ea.end(),
                              [&](index_t e) {
                                return !elem_alive[static_cast<std::size_t>(e)];
                              }),
               ea.end());
      ea.push_back(e_new);

      std::vector<index_t> wn;
      neighbourhood(w, ++stamp, wn);
      auto d = static_cast<index_t>(wn.size());
      degree[static_cast<std::size_t>(w)] = d;
      bucket_pos_degree[static_cast<std::size_t>(w)] = d;
      bucket[static_cast<std::size_t>(d)].push_back(w);
      if (d < min_bucket) min_bucket = d;
    }
  }
  return perm;
}

}  // namespace pangulu::ordering
