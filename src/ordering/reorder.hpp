// Facade for the reordering phase (step 1 of the PanguLU pipeline, §4.1):
// MC64 row permutation + scaling for stability, then a symmetric
// fill-reducing permutation of the MC64-permuted matrix.
#pragma once

#include <vector>

#include "ordering/mc64.hpp"
#include "sparse/csc.hpp"
#include "util/status.hpp"

namespace pangulu {
class ThreadPool;
}

namespace pangulu::ordering {

enum class FillReducing {
  kNestedDissection,  // the paper's choice (METIS role)
  kMinDegree,         // exact minimum degree (quotient graph)
  kAmd,               // approximate minimum degree with supervariables
  kRcm,
  kNatural,
};

struct ReorderResult {
  /// Combined row permutation old->new (MC64 then symmetric perm).
  std::vector<index_t> row_perm;
  /// Column permutation old->new (symmetric perm only).
  std::vector<index_t> col_perm;
  /// MC64 scalings (identity when scaling disabled).
  std::vector<value_t> row_scale;
  std::vector<value_t> col_scale;
  /// The fully permuted + scaled matrix, ready for symbolic factorisation.
  Csc permuted;
};

struct ReorderOptions {
  bool use_mc64 = true;
  bool apply_scaling = true;
  FillReducing fill_reducing = FillReducing::kNestedDissection;
  index_t nd_leaf_size = 64;
};

/// Run the reordering phase on a square matrix. `pool` feeds the parallel
/// adjacency construction (Graph::from_matrix); the orderings themselves are
/// sequential, and the result is identical at any thread count.
Status reorder(const Csc& a, const ReorderOptions& opts, ReorderResult* out,
               ThreadPool* pool = nullptr);

}  // namespace pangulu::ordering
