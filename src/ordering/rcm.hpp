// Reverse Cuthill-McKee bandwidth-reducing ordering. Not used by the main
// PanguLU pipeline (which prefers nested dissection) but provided as an
// alternative `Ordering::kRcm` option and exercised by tests.
#pragma once

#include <vector>

#include "ordering/graph.hpp"
#include "util/types.hpp"

namespace pangulu::ordering {

/// Returns perm with perm[old] = new.
std::vector<index_t> rcm(const Graph& g);

}  // namespace pangulu::ordering
