#include "ordering/amd.hpp"

#include <algorithm>
#include <limits>

namespace pangulu::ordering {

// Quotient-graph AMD. Each still-active supervariable v keeps
//   var_adj[v]  : adjacent supervariables (original edges not yet absorbed)
//   elem_adj[v] : adjacent elements
//   nv[v]       : number of original vertices it represents
// Eliminating the minimum-approximate-degree supervariable p forms a new
// element from its neighbourhood, absorbs p's old elements, updates the
// members' approximate degrees, and coalesces members with identical
// quotient adjacency (detected by hash, confirmed exactly).
std::vector<index_t> amd(const Graph& g) {
  const index_t n = g.n;
  std::vector<std::vector<index_t>> var_adj(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elem_adj(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elem_vars;
  std::vector<char> elem_alive;
  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  std::vector<index_t> nv(static_cast<std::size_t>(n), 1);  // supervariable size
  std::vector<index_t> parent_sv(static_cast<std::size_t>(n), -1);  // merged into
  std::vector<double> adegree(static_cast<std::size_t>(n));
  std::vector<index_t> marker(static_cast<std::size_t>(n), -1);
  index_t stamp = 0;

  for (index_t v = 0; v < n; ++v) {
    var_adj[static_cast<std::size_t>(v)].assign(
        g.adj.begin() + g.ptr[static_cast<std::size_t>(v)],
        g.adj.begin() + g.ptr[static_cast<std::size_t>(v) + 1]);
    adegree[static_cast<std::size_t>(v)] = static_cast<double>(g.degree(v));
  }

  // Approximate degree of w: sum of alive variable-neighbour sizes plus sum
  // of adjacent element sizes (upper bound on the true external degree).
  auto approx_degree = [&](index_t w) {
    double d = 0;
    auto& va = var_adj[static_cast<std::size_t>(w)];
    va.erase(std::remove_if(va.begin(), va.end(),
                            [&](index_t x) {
                              return !alive[static_cast<std::size_t>(x)] || x == w;
                            }),
             va.end());
    for (index_t x : va) d += nv[static_cast<std::size_t>(x)];
    auto& ea = elem_adj[static_cast<std::size_t>(w)];
    ea.erase(std::remove_if(ea.begin(), ea.end(),
                            [&](index_t e) {
                              return !elem_alive[static_cast<std::size_t>(e)];
                            }),
             ea.end());
    for (index_t e : ea) {
      for (index_t x : elem_vars[static_cast<std::size_t>(e)]) {
        if (alive[static_cast<std::size_t>(x)] && x != w)
          d += nv[static_cast<std::size_t>(x)];
      }
      // Upper bound: overlapping element members are double-counted — that
      // is the "approximate" in AMD; exactness is not required.
    }
    return d;
  };

  // Exact quotient-graph neighbourhood (for element formation).
  std::vector<index_t> nbrs;
  auto neighbourhood = [&](index_t v) {
    nbrs.clear();
    ++stamp;
    marker[static_cast<std::size_t>(v)] = stamp;
    for (index_t w : var_adj[static_cast<std::size_t>(v)]) {
      if (alive[static_cast<std::size_t>(w)] &&
          marker[static_cast<std::size_t>(w)] != stamp) {
        marker[static_cast<std::size_t>(w)] = stamp;
        nbrs.push_back(w);
      }
    }
    for (index_t e : elem_adj[static_cast<std::size_t>(v)]) {
      if (!elem_alive[static_cast<std::size_t>(e)]) continue;
      for (index_t w : elem_vars[static_cast<std::size_t>(e)]) {
        if (alive[static_cast<std::size_t>(w)] && w != v &&
            marker[static_cast<std::size_t>(w)] != stamp) {
          marker[static_cast<std::size_t>(w)] = stamp;
          nbrs.push_back(w);
        }
      }
    }
  };

  std::vector<index_t> elim_order;  // supervariable representatives, in order
  elim_order.reserve(static_cast<std::size_t>(n));
  index_t remaining = n;

  while (remaining > 0) {
    // Pick the minimum approximate degree among alive supervariables.
    index_t p = -1;
    double best = std::numeric_limits<double>::infinity();
    for (index_t v = 0; v < n; ++v) {
      if (!alive[static_cast<std::size_t>(v)]) continue;
      if (adegree[static_cast<std::size_t>(v)] < best) {
        best = adegree[static_cast<std::size_t>(v)];
        p = v;
      }
    }
    PANGULU_CHECK(p >= 0, "amd: no alive vertex");

    // Eliminate p: form the new element from its neighbourhood.
    neighbourhood(p);
    alive[static_cast<std::size_t>(p)] = 0;
    remaining -= nv[static_cast<std::size_t>(p)];
    elim_order.push_back(p);

    const auto e_new = static_cast<index_t>(elem_vars.size());
    elem_vars.push_back(nbrs);
    elem_alive.push_back(1);
    for (index_t e : elem_adj[static_cast<std::size_t>(p)]) {
      if (e != e_new && elem_alive[static_cast<std::size_t>(e)])
        elem_alive[static_cast<std::size_t>(e)] = 0;  // absorption
    }

    // Update members: attach e_new, refresh approximate degree, and hash
    // for supervariable detection.
    std::vector<std::pair<std::uint64_t, index_t>> hashes;
    hashes.reserve(nbrs.size());
    const std::vector<index_t> members = nbrs;  // neighbourhood() reuses nbrs
    for (index_t w : members) {
      auto& ea = elem_adj[static_cast<std::size_t>(w)];
      ea.push_back(e_new);
      adegree[static_cast<std::size_t>(w)] = approx_degree(w);
      // Hash of the quotient adjacency (after approx_degree pruned it).
      std::uint64_t h = 1469598103934665603ull;
      for (index_t x : var_adj[static_cast<std::size_t>(w)])
        h = (h ^ static_cast<std::uint64_t>(x + 1)) * 1099511628211ull;
      std::uint64_t he = 0;
      for (index_t e : elem_adj[static_cast<std::size_t>(w)])
        he += static_cast<std::uint64_t>(e + 1) * 2654435761ull;
      hashes.push_back({h ^ he, w});
    }

    // Coalesce indistinguishable members: equal hash, then exact comparison
    // of sorted quotient adjacencies.
    std::sort(hashes.begin(), hashes.end());
    for (std::size_t i = 0; i < hashes.size(); ++i) {
      const index_t w = hashes[i].second;
      if (!alive[static_cast<std::size_t>(w)]) continue;
      for (std::size_t k = i + 1;
           k < hashes.size() && hashes[k].first == hashes[i].first; ++k) {
        const index_t u = hashes[k].second;
        if (!alive[static_cast<std::size_t>(u)]) continue;
        auto sorted = [](std::vector<index_t> v2) {
          std::sort(v2.begin(), v2.end());
          return v2;
        };
        auto va_w = sorted(var_adj[static_cast<std::size_t>(w)]);
        auto va_u = sorted(var_adj[static_cast<std::size_t>(u)]);
        // Adjacency must match modulo the pair itself.
        std::erase(va_w, u);
        std::erase(va_u, w);
        auto ea_w = sorted(elem_adj[static_cast<std::size_t>(w)]);
        auto ea_u = sorted(elem_adj[static_cast<std::size_t>(u)]);
        if (va_w == va_u && ea_w == ea_u) {
          // u joins supervariable w.
          alive[static_cast<std::size_t>(u)] = 0;
          parent_sv[static_cast<std::size_t>(u)] = w;
          nv[static_cast<std::size_t>(w)] += nv[static_cast<std::size_t>(u)];
          remaining -= 0;  // u's vertices leave with w when w is eliminated
        }
      }
    }
  }

  // Expand the supervariable elimination order into vertex positions:
  // a representative carries all vertices merged into it (recursively).
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    if (parent_sv[static_cast<std::size_t>(v)] >= 0)
      children[static_cast<std::size_t>(parent_sv[static_cast<std::size_t>(v)])]
          .push_back(v);
  }
  std::vector<index_t> perm(static_cast<std::size_t>(n), -1);
  index_t next = 0;
  std::vector<index_t> stack;
  for (index_t rep : elim_order) {
    stack.push_back(rep);
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      perm[static_cast<std::size_t>(v)] = next++;
      for (index_t c : children[static_cast<std::size_t>(v)])
        stack.push_back(c);
    }
  }
  PANGULU_CHECK(next == n, "amd: not all vertices ordered");
  return perm;
}

}  // namespace pangulu::ordering
