// MC64-style maximum-product transversal with scaling (Duff & Koster 1999,
// 2001 — the algorithm PanguLU uses for numerical stability). Finds a column
// permutation placing the largest products on the diagonal, plus row/column
// scalings that make every matched entry 1 and every other entry <= 1 in
// magnitude.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/status.hpp"

namespace pangulu::ordering {

struct Mc64Result {
  /// row_of_col[j] = matched row of column j: permuting rows with
  /// perm[row_of_col[j]] = j puts the matching on the diagonal.
  std::vector<index_t> row_of_col;
  /// Row permutation (old row -> new row) that moves matched entries to the
  /// diagonal: new_row(row_of_col[j]) = j.
  std::vector<index_t> row_perm;
  /// Multiplicative scalings: scaled(i,j) = row_scale[i]*a(i,j)*col_scale[j],
  /// giving |scaled| <= 1 with equality on matched entries.
  std::vector<value_t> row_scale;
  std::vector<value_t> col_scale;
};

/// Compute the maximum-product matching and scalings. Fails with
/// kNumericalError when the matrix is structurally singular (no perfect
/// matching exists).
Status mc64(const Csc& a, Mc64Result* out);

}  // namespace pangulu::ordering
