#include "ordering/nested_dissection.hpp"

#include <algorithm>
#include <queue>

#include "ordering/min_degree.hpp"
#include "ordering/multilevel.hpp"

namespace pangulu::ordering {

namespace {

/// BFS level structure from `start`, restricted to the whole (sub)graph.
/// Returns levels per vertex and the visit order.
void bfs_levels(const Graph& g, index_t start, std::vector<index_t>* level,
                std::vector<index_t>* order) {
  level->assign(static_cast<std::size_t>(g.n), -1);
  order->clear();
  std::queue<index_t> q;
  q.push(start);
  (*level)[static_cast<std::size_t>(start)] = 0;
  while (!q.empty()) {
    index_t v = q.front();
    q.pop();
    order->push_back(v);
    for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
         p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      index_t w = g.adj[static_cast<std::size_t>(p)];
      if ((*level)[static_cast<std::size_t>(w)] < 0) {
        (*level)[static_cast<std::size_t>(w)] = (*level)[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
}

/// Pseudo-peripheral vertex: start anywhere, repeatedly jump to the deepest
/// BFS level's minimum-degree vertex until eccentricity stops growing.
index_t pseudo_peripheral(const Graph& g, index_t start) {
  std::vector<index_t> level, order;
  index_t v = start;
  index_t ecc = -1;
  for (int iter = 0; iter < 8; ++iter) {
    bfs_levels(g, v, &level, &order);
    index_t max_level = 0;
    for (index_t w : order)
      max_level = std::max(max_level, level[static_cast<std::size_t>(w)]);
    if (max_level <= ecc) break;
    ecc = max_level;
    // deepest-level vertex with minimum degree
    index_t best = -1;
    for (index_t w : order) {
      if (level[static_cast<std::size_t>(w)] == max_level &&
          (best < 0 || g.degree(w) < g.degree(best)))
        best = w;
    }
    v = best;
  }
  return v;
}

/// Order the vertices of `g` (local ids), writing global elimination
/// positions into perm via local_to_global, starting at *next and advancing
/// it. Separator-last recursion.
void nd_recurse(const Graph& g, const std::vector<index_t>& local_to_global,
                const NdOptions& opts, int depth, std::vector<index_t>* perm,
                index_t* next) {
  if (g.n == 0) return;
  if (g.n <= opts.leaf_size || depth >= opts.max_depth) {
    std::vector<index_t> local = min_degree(g);
    // local[v] = position within leaf; map to global positions.
    std::vector<index_t> by_pos(static_cast<std::size_t>(g.n));
    for (index_t v = 0; v < g.n; ++v)
      by_pos[static_cast<std::size_t>(local[static_cast<std::size_t>(v)])] = v;
    for (index_t k = 0; k < g.n; ++k) {
      (*perm)[static_cast<std::size_t>(
          local_to_global[static_cast<std::size_t>(by_pos[static_cast<std::size_t>(k)])])] =
          (*next)++;
    }
    return;
  }

  // Multilevel candidate: METIS-style bisection, vertex separator from the
  // cut. Compared below against the BFS level-set candidate; the split with
  // the smaller separator wins (on meshes the BFS "straight line" is often
  // unbeatable, on irregular graphs the multilevel cut usually is).
  std::vector<index_t> ml_a, ml_b, ml_sep;
  bool have_ml = false;
  if (opts.use_multilevel) {
    MultilevelOptions mlo;
    mlo.seed = static_cast<std::uint64_t>(depth) * 7919 + 17;
    Bisection bis = multilevel_bisect(g, mlo);
    ml_sep = separator_from_cut(g, bis);
    std::vector<char> in_sep(static_cast<std::size_t>(g.n), 0);
    for (index_t v : ml_sep) in_sep[static_cast<std::size_t>(v)] = 1;
    for (index_t v = 0; v < g.n; ++v) {
      if (in_sep[static_cast<std::size_t>(v)]) continue;
      (bis.side[static_cast<std::size_t>(v)] == 0 ? ml_a : ml_b).push_back(v);
    }
    have_ml = !ml_a.empty() && !ml_b.empty();
  }

  // Handle disconnected pieces: bisect the component of a pseudo-peripheral
  // vertex; unreached vertices join side B.
  index_t src = pseudo_peripheral(g, 0);
  std::vector<index_t> level, order;
  bfs_levels(g, src, &level, &order);

  index_t max_level = 0;
  for (index_t w : order)
    max_level = std::max(max_level, level[static_cast<std::size_t>(w)]);

  if (max_level == 0 && static_cast<index_t>(order.size()) < g.n) {
    // src is isolated in a bigger graph: fall back on component split.
  }

  // Choose the split level so that ~half the visited vertices are below it.
  std::vector<index_t> level_count(static_cast<std::size_t>(max_level) + 1, 0);
  for (index_t w : order) level_count[static_cast<std::size_t>(level[static_cast<std::size_t>(w)])]++;
  index_t half = static_cast<index_t>(order.size()) / 2;
  index_t split = 0, acc = 0;
  for (index_t l = 0; l <= max_level; ++l) {
    acc += level_count[static_cast<std::size_t>(l)];
    split = l;
    if (acc >= half) break;
  }

  // side A: level < split; separator: level == split; side B: level > split
  // plus any unvisited vertices (other components).
  std::vector<index_t> a_verts, b_verts, s_verts;
  for (index_t v = 0; v < g.n; ++v) {
    index_t l = level[static_cast<std::size_t>(v)];
    if (l < 0 || l > split)
      b_verts.push_back(v);
    else if (l < split)
      a_verts.push_back(v);
    else
      s_verts.push_back(v);
  }

  // Thin the separator: a level-set separator can contain vertices with no
  // neighbour in A; those can safely move to B (still no A-B edge).
  std::vector<char> in_a(static_cast<std::size_t>(g.n), 0);
  for (index_t v : a_verts) in_a[static_cast<std::size_t>(v)] = 1;
  std::vector<index_t> s_final;
  for (index_t v : s_verts) {
    bool touches_a = false;
    for (nnz_t p = g.ptr[static_cast<std::size_t>(v)];
         p < g.ptr[static_cast<std::size_t>(v) + 1]; ++p) {
      if (in_a[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(p)])]) {
        touches_a = true;
        break;
      }
    }
    if (touches_a)
      s_final.push_back(v);
    else
      b_verts.push_back(v);
  }

  if ((a_verts.empty() || b_verts.empty()) && have_ml) {
    // BFS failed to split but the multilevel candidate can.
    a_verts = std::move(ml_a);
    b_verts = std::move(ml_b);
    s_final = std::move(ml_sep);
    have_ml = false;
  }
  if (a_verts.empty() || b_verts.empty()) {
    // Degenerate cut (e.g. a clique): stop recursing, order with min degree.
    std::vector<index_t> local = min_degree(g);
    std::vector<index_t> by_pos(static_cast<std::size_t>(g.n));
    for (index_t v = 0; v < g.n; ++v)
      by_pos[static_cast<std::size_t>(local[static_cast<std::size_t>(v)])] = v;
    for (index_t k = 0; k < g.n; ++k) {
      (*perm)[static_cast<std::size_t>(
          local_to_global[static_cast<std::size_t>(by_pos[static_cast<std::size_t>(k)])])] =
          (*next)++;
    }
    return;
  }

  // Pick the candidate with the smaller separator (ties: better balance).
  if (have_ml) {
    const auto bfs_sep = s_final.size();
    const auto ml_sep_sz = ml_sep.size();
    const auto bfs_imbalance =
        std::max(a_verts.size(), b_verts.size());
    const auto ml_imbalance = std::max(ml_a.size(), ml_b.size());
    if (ml_sep_sz < bfs_sep ||
        (ml_sep_sz == bfs_sep && ml_imbalance < bfs_imbalance)) {
      a_verts = std::move(ml_a);
      b_verts = std::move(ml_b);
      s_final = std::move(ml_sep);
    }
  }

  auto to_global = [&](const std::vector<index_t>& locals) {
    std::vector<index_t> g_ids;
    g_ids.reserve(locals.size());
    for (index_t v : locals)
      g_ids.push_back(local_to_global[static_cast<std::size_t>(v)]);
    return g_ids;
  };

  std::vector<index_t> a_map, b_map;
  Graph ga = g.induced(a_verts, nullptr);
  Graph gb = g.induced(b_verts, nullptr);
  a_map = to_global(a_verts);
  b_map = to_global(b_verts);

  nd_recurse(ga, a_map, opts, depth + 1, perm, next);
  nd_recurse(gb, b_map, opts, depth + 1, perm, next);
  // Separator last.
  for (index_t v : s_final) {
    (*perm)[static_cast<std::size_t>(local_to_global[static_cast<std::size_t>(v)])] =
        (*next)++;
  }
}

}  // namespace

std::vector<index_t> nested_dissection(const Graph& g, const NdOptions& opts) {
  std::vector<index_t> perm(static_cast<std::size_t>(g.n), -1);
  index_t next = 0;
  std::vector<index_t> all(static_cast<std::size_t>(g.n));
  for (index_t v = 0; v < g.n; ++v) all[static_cast<std::size_t>(v)] = v;
  nd_recurse(g, all, opts, 0, &perm, &next);
  PANGULU_CHECK(next == g.n, "nested dissection did not order all vertices");
  return perm;
}

}  // namespace pangulu::ordering
