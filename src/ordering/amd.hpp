// Approximate Minimum Degree ordering (Amestoy, Davis & Duff 1996). Differs
// from the exact quotient-graph minimum degree in `min_degree.cpp` in the
// two tricks that make AMD fast in practice:
//   * degrees are *approximated* by |A_w| + sum of adjacent element sizes
//     (an upper bound, no neighbourhood unions needed on update), and
//   * indistinguishable variables are detected by hashing and coalesced
//     into supervariables that are eliminated together.
#pragma once

#include <vector>

#include "ordering/graph.hpp"
#include "util/types.hpp"

namespace pangulu::ordering {

/// Returns perm with perm[old] = new (elimination position).
std::vector<index_t> amd(const Graph& g);

}  // namespace pangulu::ordering
