// Multilevel graph bisection — the engine that makes nested dissection
// METIS-grade (the paper orders with METIS): coarsen by heavy-edge matching,
// partition the coarsest graph by weighted BFS region growing, then project
// back up with Fiduccia-Mattheyses boundary refinement at every level.
#pragma once

#include <cstdint>
#include <vector>

#include "ordering/graph.hpp"
#include "util/types.hpp"

namespace pangulu::ordering {

struct MultilevelOptions {
  index_t coarsen_to = 64;    // stop coarsening below this many vertices
  int refine_passes = 6;      // FM passes per level
  double balance = 1.15;      // max side weight / ideal weight
  std::uint64_t seed = 1;     // matching visit order
};

struct Bisection {
  /// side[v] in {0, 1}.
  std::vector<char> side;
  std::int64_t edge_cut = 0;
  std::int64_t weight0 = 0;   // vertex weight on side 0
  std::int64_t weight1 = 0;
};

/// Bisect the (unit-weight) graph. Guarantees both sides non-empty for
/// g.n >= 2.
Bisection multilevel_bisect(const Graph& g, const MultilevelOptions& opts = {});

/// Vertex separator from an edge cut: greedily covers every cut edge with
/// the endpoint that covers the most uncovered cut edges. Returns vertex ids
/// of the separator; removing them disconnects side 0 from side 1.
std::vector<index_t> separator_from_cut(const Graph& g, const Bisection& b);

}  // namespace pangulu::ordering
