#include "block/layout.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "parallel/partition.hpp"

namespace pangulu::block {

Status check_blocking_bounds(index_t n, index_t block_size, nnz_t nnz_filled) {
  if (n < 0 || nnz_filled < 0)
    return Status::invalid_argument("blocking: negative matrix dimensions");
  if (block_size < 1)
    return Status::invalid_argument("blocking: block size must be >= 1");
  constexpr index_t kMaxIdx = std::numeric_limits<index_t>::max();
  constexpr nnz_t kMaxNnz = std::numeric_limits<nnz_t>::max();
  // BlockGrid's ceil-divide computes n + block_size - 1 in index_t.
  if (n > kMaxIdx - (block_size - 1))
    return Status::out_of_range(
        "blocking: n + block_size - 1 overflows the 32-bit index (n = " +
        std::to_string(n) + ", b = " + std::to_string(block_size) + ")");
  // The per-cell count table is nb*nb wide; mapping tables index it in nnz_t.
  const nnz_t nb = (static_cast<nnz_t>(n) + block_size - 1) / block_size;
  if (nb > 0 && nb > kMaxNnz / nb)
    return Status::out_of_range(
        "blocking: dense block grid nb*nb overflows the 64-bit index (nb = " +
        std::to_string(nb) + ")");
  // Flat per-block offset arrays carry one slot per filled nonzero plus the
  // nb*nb cell table; guard the sum too.
  if (nnz_filled > kMaxNnz - nb * nb)
    return Status::out_of_range(
        "blocking: filled nonzero count plus the block-cell table overflows "
        "the 64-bit index");
  return Status::ok();
}

index_t choose_block_size(index_t n, nnz_t nnz_filled, index_t min_blocks) {
  if (n <= 0) return 1;
  const double avg_row = static_cast<double>(nnz_filled) /
                         std::max<double>(1.0, static_cast<double>(n));
  // Denser factors amortise communication over more flops per block; the
  // sqrt keeps panel kernels in the regime the decision trees were fit for.
  auto b = static_cast<index_t>(8.0 * std::ceil(std::sqrt(std::max(1.0, avg_row))));
  b = std::clamp<index_t>(b, 16, 256);
  // Keep at least `min_blocks` block rows so the process grid has work.
  if (n / b < min_blocks) b = std::max<index_t>(1, n / min_blocks);
  if (b < 1) b = 1;
  return b;
}

template <class V>
BlockMatrixT<V> BlockMatrixT<V>::from_filled_serial(const CscT<V>& filled,
                                                    index_t block_size) {
  PANGULU_CHECK(filled.n_rows() == filled.n_cols(), "square matrix expected");
  PANGULU_CHECK(block_size >= 1, "block size >= 1");
  BlockMatrixT<V> bm;
  bm.grid_ = BlockGrid(filled.n_cols(), block_size);
  const index_t nb = bm.grid_.nb;

  // Index lookup tables replace per-entry div/mod on the hot passes.
  std::vector<index_t> blk_of(static_cast<std::size_t>(bm.grid_.n));
  std::vector<index_t> off_of(static_cast<std::size_t>(bm.grid_.n));
  for (index_t i = 0; i < bm.grid_.n; ++i) {
    blk_of[static_cast<std::size_t>(i)] = i / block_size;
    off_of[static_cast<std::size_t>(i)] = i % block_size;
  }

  // Pass 1: count nnz per (block-row, block-col) cell.
  std::vector<nnz_t> cell_nnz(static_cast<std::size_t>(nb) * nb, 0);
  for (index_t j = 0; j < filled.n_cols(); ++j) {
    const index_t bj = blk_of[static_cast<std::size_t>(j)];
    nnz_t* col_cells = cell_nnz.data() + static_cast<std::size_t>(bj) * nb;
    for (nnz_t p = filled.col_begin(j); p < filled.col_end(j); ++p) {
      col_cells[blk_of[static_cast<std::size_t>(
          filled.row_idx()[static_cast<std::size_t>(p)])]]++;
    }
  }

  // First layer: block-CSC over non-empty cells.
  bm.blk_col_ptr_.assign(static_cast<std::size_t>(nb) + 1, 0);
  for (index_t bj = 0; bj < nb; ++bj) {
    nnz_t cnt = 0;
    for (index_t bi = 0; bi < nb; ++bi) {
      if (cell_nnz[static_cast<std::size_t>(bj) * nb + bi] > 0) ++cnt;
    }
    bm.blk_col_ptr_[static_cast<std::size_t>(bj) + 1] =
        bm.blk_col_ptr_[static_cast<std::size_t>(bj)] + cnt;
  }
  const nnz_t n_blocks = bm.blk_col_ptr_.back();
  bm.blk_row_idx_.resize(static_cast<std::size_t>(n_blocks));
  bm.blk_col_of_.resize(static_cast<std::size_t>(n_blocks));
  bm.blocks_.resize(static_cast<std::size_t>(n_blocks));

  // cell -> position map for scatter.
  std::vector<nnz_t> cell_pos(static_cast<std::size_t>(nb) * nb, -1);
  {
    nnz_t pos = 0;
    for (index_t bj = 0; bj < nb; ++bj) {
      for (index_t bi = 0; bi < nb; ++bi) {
        if (cell_nnz[static_cast<std::size_t>(bj) * nb + bi] > 0) {
          cell_pos[static_cast<std::size_t>(bj) * nb + bi] = pos;
          bm.blk_row_idx_[static_cast<std::size_t>(pos)] = bi;
          bm.blk_col_of_[static_cast<std::size_t>(pos)] = bj;
          ++pos;
        }
      }
    }
  }

  // Second layer, built directly in CSC order: the global sweep visits
  // columns ascending and rows ascending within a column, which is exactly
  // each block's final (column, row) order — so every block is filled by a
  // sequential append, no per-block sort needed.
  struct Building {
    std::vector<nnz_t> col_ptr;
    std::vector<index_t> rows;
    std::vector<V> vals;
    nnz_t cursor = 0;
  };
  std::vector<Building> bld(static_cast<std::size_t>(n_blocks));
  for (nnz_t pos = 0; pos < n_blocks; ++pos) {
    const index_t bi = bm.blk_row_idx_[static_cast<std::size_t>(pos)];
    const index_t bj = bm.blk_col_of_[static_cast<std::size_t>(pos)];
    auto& b = bld[static_cast<std::size_t>(pos)];
    b.col_ptr.assign(static_cast<std::size_t>(bm.grid_.block_dim(bj)) + 1, 0);
    const auto cnt = static_cast<std::size_t>(
        cell_nnz[static_cast<std::size_t>(bj) * nb + bi]);
    b.rows.resize(cnt);
    b.vals.resize(cnt);
  }
  for (index_t j = 0; j < filled.n_cols(); ++j) {
    const index_t bj = blk_of[static_cast<std::size_t>(j)];
    const index_t cj = off_of[static_cast<std::size_t>(j)];
    const nnz_t* col_cell_pos =
        cell_pos.data() + static_cast<std::size_t>(bj) * nb;
    for (nnz_t p = filled.col_begin(j); p < filled.col_end(j); ++p) {
      const index_t r = filled.row_idx()[static_cast<std::size_t>(p)];
      const nnz_t pos = col_cell_pos[blk_of[static_cast<std::size_t>(r)]];
      auto& b = bld[static_cast<std::size_t>(pos)];
      b.rows[static_cast<std::size_t>(b.cursor)] =
          off_of[static_cast<std::size_t>(r)];
      b.vals[static_cast<std::size_t>(b.cursor)] =
          filled.values()[static_cast<std::size_t>(p)];
      b.cursor++;
      b.col_ptr[static_cast<std::size_t>(cj) + 1] = b.cursor;
    }
  }
  for (nnz_t pos = 0; pos < n_blocks; ++pos) {
    auto& b = bld[static_cast<std::size_t>(pos)];
    // Columns with no entries inherit the previous cursor value.
    for (std::size_t c = 1; c < b.col_ptr.size(); ++c)
      b.col_ptr[c] = std::max(b.col_ptr[c], b.col_ptr[c - 1]);
    const index_t bi = bm.blk_row_idx_[static_cast<std::size_t>(pos)];
    const index_t bj = bm.blk_col_of_[static_cast<std::size_t>(pos)];
    // Arrays are sorted by construction (global sweep order); skip the
    // validation pass on this hot path — block_test round-trips cover it.
    bm.blocks_[static_cast<std::size_t>(pos)] = CscT<V>::from_parts_unchecked(
        bm.grid_.block_dim(bi), bm.grid_.block_dim(bj), std::move(b.col_ptr),
        std::move(b.rows), std::move(b.vals));
  }

  // Row-wise first layer.
  bm.blk_row_ptr_.assign(static_cast<std::size_t>(nb) + 1, 0);
  for (index_t bi : bm.blk_row_idx_)
    bm.blk_row_ptr_[static_cast<std::size_t>(bi) + 1]++;
  for (index_t bi = 0; bi < nb; ++bi)
    bm.blk_row_ptr_[static_cast<std::size_t>(bi) + 1] +=
        bm.blk_row_ptr_[static_cast<std::size_t>(bi)];
  bm.blk_row_col_.resize(static_cast<std::size_t>(n_blocks));
  bm.blk_row_pos_.resize(static_cast<std::size_t>(n_blocks));
  std::vector<nnz_t> next(bm.blk_row_ptr_.begin(), bm.blk_row_ptr_.end() - 1);
  for (index_t bj = 0; bj < nb; ++bj) {
    for (nnz_t pos = bm.col_begin(bj); pos < bm.col_end(bj); ++pos) {
      const index_t bi = bm.blk_row_idx_[static_cast<std::size_t>(pos)];
      const nnz_t q = next[static_cast<std::size_t>(bi)]++;
      bm.blk_row_col_[static_cast<std::size_t>(q)] = bj;
      bm.blk_row_pos_[static_cast<std::size_t>(q)] = pos;
    }
  }
  return bm;
}

template <class V>
BlockMatrixT<V> BlockMatrixT<V>::from_filled(const CscT<V>& filled,
                                             index_t block_size,
                                             ThreadPool* pool) {
  ThreadPool& tp = effective_pool(pool);
  if (tp.size() <= 1) return from_filled_serial(filled, block_size);
  PANGULU_CHECK(filled.n_rows() == filled.n_cols(), "square matrix expected");
  PANGULU_CHECK(block_size >= 1, "block size >= 1");
  BlockMatrixT<V> bm;
  bm.grid_ = BlockGrid(filled.n_cols(), block_size);
  const index_t nb = bm.grid_.nb;
  const index_t n = bm.grid_.n;

  // Index lookup tables replace per-entry div/mod on the hot passes.
  std::vector<index_t> blk_of(static_cast<std::size_t>(n));
  std::vector<index_t> off_of(static_cast<std::size_t>(n));
  parallel_for_chunks(tp, 0, n, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      blk_of[static_cast<std::size_t>(i)] = i / block_size;
      off_of[static_cast<std::size_t>(i)] = i % block_size;
    }
  });

  // The whole splitter parallelises over block columns: cell_nnz is laid out
  // column-major by bj, the first-layer positions of bj are the contiguous
  // range [blk_col_ptr_[bj], blk_col_ptr_[bj+1]), and the source columns of
  // bj are [block_start, block_start + block_dim) — so every pass below
  // writes bj-disjoint slices and any execution order yields the same bytes.

  // Pass 1: count nnz per (block-row, block-col) cell.
  std::vector<nnz_t> cell_nnz(static_cast<std::size_t>(nb) * nb, 0);
  parallel_for(tp, 0, nb, [&](index_t bj) {
    nnz_t* col_cells = cell_nnz.data() + static_cast<std::size_t>(bj) * nb;
    const index_t j0 = bm.grid_.block_start(bj);
    const index_t j1 = j0 + bm.grid_.block_dim(bj);
    for (index_t j = j0; j < j1; ++j) {
      for (nnz_t p = filled.col_begin(j); p < filled.col_end(j); ++p) {
        col_cells[blk_of[static_cast<std::size_t>(
            filled.row_idx()[static_cast<std::size_t>(p)])]]++;
      }
    }
  });

  // First layer: block-CSC over non-empty cells.
  std::vector<nnz_t> nonempty(static_cast<std::size_t>(nb), 0);
  parallel_for(tp, 0, nb, [&](index_t bj) {
    nnz_t cnt = 0;
    for (index_t bi = 0; bi < nb; ++bi) {
      if (cell_nnz[static_cast<std::size_t>(bj) * nb + bi] > 0) ++cnt;
    }
    nonempty[static_cast<std::size_t>(bj)] = cnt;
  });
  bm.blk_col_ptr_.assign(static_cast<std::size_t>(nb) + 1, 0);
  exclusive_prefix_sum(tp, nonempty, bm.blk_col_ptr_);
  const nnz_t n_blocks = bm.blk_col_ptr_.back();
  bm.blk_row_idx_.resize(static_cast<std::size_t>(n_blocks));
  bm.blk_col_of_.resize(static_cast<std::size_t>(n_blocks));
  bm.blocks_.resize(static_cast<std::size_t>(n_blocks));

  // cell -> position map for scatter.
  std::vector<nnz_t> cell_pos(static_cast<std::size_t>(nb) * nb, -1);
  parallel_for(tp, 0, nb, [&](index_t bj) {
    nnz_t pos = bm.blk_col_ptr_[static_cast<std::size_t>(bj)];
    for (index_t bi = 0; bi < nb; ++bi) {
      if (cell_nnz[static_cast<std::size_t>(bj) * nb + bi] > 0) {
        cell_pos[static_cast<std::size_t>(bj) * nb + bi] = pos;
        bm.blk_row_idx_[static_cast<std::size_t>(pos)] = bi;
        bm.blk_col_of_[static_cast<std::size_t>(pos)] = bj;
        ++pos;
      }
    }
  });

  // Second layer: each block column allocates, fills (the per-column sweep
  // visits rows ascending, i.e. each block's final CSC order) and finalises
  // its own contiguous run of blocks.
  struct Building {
    std::vector<nnz_t> col_ptr;
    std::vector<index_t> rows;
    std::vector<V> vals;
    nnz_t cursor = 0;
  };
  parallel_for(tp, 0, nb, [&](index_t bj) {
    const nnz_t p0 = bm.blk_col_ptr_[static_cast<std::size_t>(bj)];
    const nnz_t p1 = bm.blk_col_ptr_[static_cast<std::size_t>(bj) + 1];
    std::vector<Building> bld(static_cast<std::size_t>(p1 - p0));
    for (nnz_t pos = p0; pos < p1; ++pos) {
      const index_t bi = bm.blk_row_idx_[static_cast<std::size_t>(pos)];
      auto& b = bld[static_cast<std::size_t>(pos - p0)];
      b.col_ptr.assign(static_cast<std::size_t>(bm.grid_.block_dim(bj)) + 1, 0);
      const auto cnt = static_cast<std::size_t>(
          cell_nnz[static_cast<std::size_t>(bj) * nb + bi]);
      b.rows.resize(cnt);
      b.vals.resize(cnt);
    }
    const nnz_t* col_cell_pos =
        cell_pos.data() + static_cast<std::size_t>(bj) * nb;
    const index_t j0 = bm.grid_.block_start(bj);
    const index_t j1 = j0 + bm.grid_.block_dim(bj);
    for (index_t j = j0; j < j1; ++j) {
      const index_t cj = off_of[static_cast<std::size_t>(j)];
      for (nnz_t p = filled.col_begin(j); p < filled.col_end(j); ++p) {
        const index_t r = filled.row_idx()[static_cast<std::size_t>(p)];
        const nnz_t pos = col_cell_pos[blk_of[static_cast<std::size_t>(r)]];
        auto& b = bld[static_cast<std::size_t>(pos - p0)];
        b.rows[static_cast<std::size_t>(b.cursor)] =
            off_of[static_cast<std::size_t>(r)];
        b.vals[static_cast<std::size_t>(b.cursor)] =
            filled.values()[static_cast<std::size_t>(p)];
        b.cursor++;
        b.col_ptr[static_cast<std::size_t>(cj) + 1] = b.cursor;
      }
    }
    for (nnz_t pos = p0; pos < p1; ++pos) {
      auto& b = bld[static_cast<std::size_t>(pos - p0)];
      // Columns with no entries inherit the previous cursor value.
      for (std::size_t c = 1; c < b.col_ptr.size(); ++c)
        b.col_ptr[c] = std::max(b.col_ptr[c], b.col_ptr[c - 1]);
      const index_t bi = bm.blk_row_idx_[static_cast<std::size_t>(pos)];
      bm.blocks_[static_cast<std::size_t>(pos)] = CscT<V>::from_parts_unchecked(
          bm.grid_.block_dim(bi), bm.grid_.block_dim(bj), std::move(b.col_ptr),
          std::move(b.rows), std::move(b.vals));
    }
  });

  // Row-wise first layer: chunked counting over block columns, then an
  // ordered scatter — chunks ascend in bj, so each block row's entries land
  // in ascending bj exactly like the serial cursor sweep.
  const FixedPartition part = FixedPartition::make(nb, nb);
  ChunkCounts counts(part.n_chunks, nb);
  parallel_for(
      tp, 0, part.n_chunks,
      [&](index_t c) {
        nnz_t* cnt = counts.row(c);
        for (index_t bj = part.begin(c); bj < part.end(c); ++bj) {
          for (nnz_t pos = bm.col_begin(bj); pos < bm.col_end(bj); ++pos)
            cnt[bm.blk_row_idx_[static_cast<std::size_t>(pos)]]++;
        }
      },
      /*grain=*/1);
  std::vector<nnz_t> row_cnt(static_cast<std::size_t>(nb));
  counts.totals(tp, row_cnt);
  bm.blk_row_ptr_.assign(static_cast<std::size_t>(nb) + 1, 0);
  exclusive_prefix_sum(tp, row_cnt, bm.blk_row_ptr_);
  counts.to_cursors(tp, std::span<const nnz_t>(bm.blk_row_ptr_)
                            .first(static_cast<std::size_t>(nb)));
  bm.blk_row_col_.resize(static_cast<std::size_t>(n_blocks));
  bm.blk_row_pos_.resize(static_cast<std::size_t>(n_blocks));
  parallel_for(
      tp, 0, part.n_chunks,
      [&](index_t c) {
        nnz_t* cur = counts.row(c);
        for (index_t bj = part.begin(c); bj < part.end(c); ++bj) {
          for (nnz_t pos = bm.col_begin(bj); pos < bm.col_end(bj); ++pos) {
            const index_t bi = bm.blk_row_idx_[static_cast<std::size_t>(pos)];
            const nnz_t q = cur[bi]++;
            bm.blk_row_col_[static_cast<std::size_t>(q)] = bj;
            bm.blk_row_pos_[static_cast<std::size_t>(q)] = pos;
          }
        }
      },
      /*grain=*/1);
  return bm;
}

template <class V>
nnz_t BlockMatrixT<V>::find_block(index_t bi, index_t bj) const {
  const nnz_t lo = col_begin(bj), hi = col_end(bj);
  auto first = blk_row_idx_.begin() + lo;
  auto last = blk_row_idx_.begin() + hi;
  auto it = std::lower_bound(first, last, bi);
  if (it == last || *it != bi) return -1;
  return lo + (it - first);
}

template <class V>
CscT<V> BlockMatrixT<V>::to_csc() const {
  CooT<V> coo(grid_.n, grid_.n);
  coo.entries.reserve(static_cast<std::size_t>(total_nnz()));
  for (nnz_t pos = 0; pos < n_blocks(); ++pos) {
    const CscT<V>& blk = blocks_[static_cast<std::size_t>(pos)];
    const index_t r0 = grid_.block_start(blk_row_idx_[static_cast<std::size_t>(pos)]);
    const index_t c0 = grid_.block_start(blk_col_of_[static_cast<std::size_t>(pos)]);
    for (index_t j = 0; j < blk.n_cols(); ++j) {
      for (nnz_t p = blk.col_begin(j); p < blk.col_end(j); ++p) {
        coo.add(r0 + blk.row_idx()[static_cast<std::size_t>(p)], c0 + j,
                blk.values()[static_cast<std::size_t>(p)]);
      }
    }
  }
  return CscT<V>::from_coo(coo);
}

template <class V>
nnz_t BlockMatrixT<V>::total_nnz() const {
  nnz_t t = 0;
  for (const CscT<V>& b : blocks_) t += b.nnz();
  return t;
}

template class BlockMatrixT<float>;
template class BlockMatrixT<double>;

}  // namespace pangulu::block
