// Regular two-dimensional blocking (§4.2, Figure 6 of the paper): the filled
// matrix is split into equal fixed-size square blocks; non-empty blocks are
// compressed with a first-layer block-CSC (blk_ColumnPointer / blk_RowIndex /
// blk_Value in the paper's nomenclature) and each block stores its nonzeros
// in a second-layer CSC.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace pangulu {
class ThreadPool;
}

namespace pangulu::block {

/// Geometry of the regular 2D blocking.
struct BlockGrid {
  index_t n = 0;           // matrix order
  index_t block_size = 0;  // b
  index_t nb = 0;          // number of block rows/cols: ceil(n/b)

  BlockGrid() = default;
  BlockGrid(index_t n_, index_t b_)
      : n(n_), block_size(b_), nb((n_ + b_ - 1) / b_) {}

  index_t block_of(index_t i) const { return i / block_size; }
  index_t offset_of(index_t i) const { return i % block_size; }
  index_t block_dim(index_t bi) const {
    return bi + 1 < nb ? block_size : n - bi * block_size;
  }
  index_t block_start(index_t bi) const { return bi * block_size; }
};

/// The paper computes the block size "from the matrix order and the density
/// of the matrix after symbolic factorisation to balance the computation and
/// communication". Denser factors get bigger blocks (more compute per
/// message); the result is clamped so the block grid keeps enough
/// parallelism for the process grid.
index_t choose_block_size(index_t n, nnz_t nnz_filled, index_t min_blocks = 8);

/// Guard the index arithmetic the 2D blocking performs before doing any of
/// it: `n + block_size - 1` (the ceil-divide in BlockGrid) must not overflow
/// index_t, `nb * nb` (dense block-grid bound used by the mapping tables)
/// must not overflow nnz_t, and the filled nonzero count must fit the flat
/// per-block offset arrays. Returns kOutOfRange with a diagnosis otherwise.
[[nodiscard]] Status check_blocking_bounds(index_t n, index_t block_size,
                                           nnz_t nnz_filled);

/// Two-layer sparse block storage. Templated on the block value type V
/// (float/double) so the mixed-precision pipeline can hold an FP32 twin of
/// the FP64 factors with identical structure (DESIGN.md §14); the
/// unsuffixed `BlockMatrix` alias keeps the historical FP64 spelling.
template <class V>
class BlockMatrixT {
 public:
  using value_type = V;

  BlockMatrixT() = default;

  /// Split `filled` (output of symbolic factorisation) into blocks. The
  /// two-pass bucket-count/fill parallelises over block columns on `pool`
  /// (nullptr: the global pool); block columns own disjoint slices of every
  /// array involved, so the layout is bitwise identical to the serial sweep
  /// at any thread count. Single-worker pools dispatch to the serial path.
  static BlockMatrixT from_filled(const CscT<V>& filled, index_t block_size,
                                  ThreadPool* pool = nullptr);

  /// The single-threaded reference splitter (ground truth for the
  /// determinism property tests and the preprocessing bench).
  static BlockMatrixT from_filled_serial(const CscT<V>& filled,
                                         index_t block_size);

  /// Structure-preserving precision conversion: every first-layer array is
  /// shared verbatim and each block converts via CscT::converted_from, so
  /// the result is positionally identical to the source — the pattern-only
  /// scatter maps built against one twin address the other unchanged.
  template <class U>
  static BlockMatrixT converted_from(const BlockMatrixT<U>& other) {
    BlockMatrixT bm;
    bm.grid_ = other.grid_;
    bm.blk_col_ptr_ = other.blk_col_ptr_;
    bm.blk_row_idx_ = other.blk_row_idx_;
    bm.blk_col_of_ = other.blk_col_of_;
    bm.blk_row_ptr_ = other.blk_row_ptr_;
    bm.blk_row_col_ = other.blk_row_col_;
    bm.blk_row_pos_ = other.blk_row_pos_;
    bm.blocks_.reserve(other.blocks_.size());
    for (const CscT<U>& blk : other.blocks_)
      bm.blocks_.push_back(CscT<V>::template converted_from<U>(blk));
    return bm;
  }

  const BlockGrid& grid() const { return grid_; }
  index_t nb() const { return grid_.nb; }
  index_t n_blocks() const { return static_cast<index_t>(blocks_.size()); }

  /// First-layer CSC accessors (block columns).
  nnz_t col_begin(index_t bj) const { return blk_col_ptr_[static_cast<std::size_t>(bj)]; }
  nnz_t col_end(index_t bj) const { return blk_col_ptr_[static_cast<std::size_t>(bj) + 1]; }
  index_t block_row(nnz_t pos) const { return blk_row_idx_[static_cast<std::size_t>(pos)]; }

  /// Row-wise view of the first layer (needed by the scheduler to walk block
  /// rows): for block-row bi, positions into the block list.
  nnz_t row_begin(index_t bi) const { return blk_row_ptr_[static_cast<std::size_t>(bi)]; }
  nnz_t row_end(index_t bi) const { return blk_row_ptr_[static_cast<std::size_t>(bi) + 1]; }
  index_t row_block_col(nnz_t rpos) const { return blk_row_col_[static_cast<std::size_t>(rpos)]; }
  nnz_t row_block_pos(nnz_t rpos) const { return blk_row_pos_[static_cast<std::size_t>(rpos)]; }

  /// Position of block (bi, bj) in the block list, or -1 when empty.
  nnz_t find_block(index_t bi, index_t bj) const;

  CscT<V>& block(nnz_t pos) { return blocks_[static_cast<std::size_t>(pos)]; }
  const CscT<V>& block(nnz_t pos) const { return blocks_[static_cast<std::size_t>(pos)]; }

  index_t block_row_of(nnz_t pos) const { return blk_row_idx_[static_cast<std::size_t>(pos)]; }
  index_t block_col_of(nnz_t pos) const { return blk_col_of_[static_cast<std::size_t>(pos)]; }

  /// Reassemble the full matrix (tests / triangular solve).
  CscT<V> to_csc() const;

  /// Total stored nonzeros across blocks.
  nnz_t total_nnz() const;

 private:
  template <class U>
  friend class BlockMatrixT;

  BlockGrid grid_;
  std::vector<nnz_t> blk_col_ptr_;   // first layer: per block-column
  std::vector<index_t> blk_row_idx_; // block row of each stored block
  std::vector<index_t> blk_col_of_;  // block col of each stored block
  std::vector<CscT<V>> blocks_;      // second layer
  // row-wise first layer
  std::vector<nnz_t> blk_row_ptr_;
  std::vector<index_t> blk_row_col_;
  std::vector<nnz_t> blk_row_pos_;
};

using BlockMatrix = BlockMatrixT<value_t>;

}  // namespace pangulu::block
