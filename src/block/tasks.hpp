// Task enumeration for block LU factorisation. Every kernel invocation is a
// task attached to its target block; the time slice of a task is its
// elimination step k (Figure 6(c) of the paper shows five such slices).
#pragma once

#include <vector>

#include "block/layout.hpp"
#include "util/types.hpp"

namespace pangulu::block {

enum class TaskKind { kGetrf, kGessm, kTstrf, kSsssm };

struct Task {
  TaskKind kind;
  index_t k;        // elimination step (time slice)
  index_t bi, bj;   // target block coordinates
  nnz_t target;     // position of target block in the BlockMatrix
  nnz_t src_a = -1; // SSSSM: L-side source block (bi, k); panel: diag block
  nnz_t src_b = -1; // SSSSM: U-side source block (k, bj)
  double weight = 0;  // FLOP estimate (the paper's task weight)
};

/// Enumerate every task of the factorisation in (k, kind, bi, bj) order and
/// compute its weight from the block patterns. Templated on the block-matrix
/// type (BlockMatrixT<float> or BlockMatrixT<double>): task enumeration is
/// pattern-only, and the precision twins share identical structure, so both
/// instantiations produce the same task list (DESIGN.md §14).
template <class BM>
std::vector<Task> enumerate_tasks(const BM& bm);

/// Per-block number of incoming updates — the initialisation of the
/// synchronisation-free array (§4.4): for an off-diagonal block, the number
/// of SSSSM updates plus the one GESSM/TSTRF solve; for a diagonal block,
/// the number of SSSSM updates (GETRF fires when it reaches zero).
template <class BM>
std::vector<index_t> sync_free_array(const BM& bm,
                                     const std::vector<Task>& tasks);

/// Flattened (CSR) dependency graph over a task list, shared by the DES and
/// threaded executors. `dep[t]` is the number of prerequisite completions
/// before task t is ready; the dependents released by t's completion are
/// `out_adj[out_ptr[t] .. out_ptr[t+1])`. Built in one counting pass plus a
/// prefix sum — no per-task vector allocations, and traversal is a single
/// contiguous scan.
///
/// Edge semantics (matching the sync-free array of §4.4): a panel solve
/// depends on its diagonal finaliser; an SSSSM depends on both source
/// blocks' finalisers and releases its target's finaliser.
struct TaskAdjacency {
  std::vector<index_t> dep;
  std::vector<nnz_t> out_ptr;   // size n_tasks + 1
  std::vector<index_t> out_adj;
  std::vector<index_t> finalizer_of_block;  // -1 if none

  template <class BM>
  static TaskAdjacency build(const BM& bm, const std::vector<Task>& tasks);
};

/// True when executing `tasks` front to back never consumes a block before
/// the tasks producing it have run — i.e. enumeration order is a valid
/// topological order of the dependency DAG. The DES runtime relies on this
/// to execute numerics canonically (independent of the simulated schedule,
/// so fault injection can never change the computed factors); this verifies
/// the contract in tests.
template <class BM>
bool is_topological_order(const BM& bm, const std::vector<Task>& tasks);

}  // namespace pangulu::block
