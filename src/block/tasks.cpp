#include "block/tasks.hpp"

#include <vector>

#include "kernels/kernel_common.hpp"

namespace pangulu::block {

namespace {

/// Strictly-lower / strictly-upper column lengths of a diagonal block,
/// cached per elimination step so panel weights cost O(nnz(B)) each.
struct DiagTriLengths {
  std::vector<nnz_t> lower;  // per column: entries below the diagonal
  std::vector<nnz_t> upper;  // per column: entries above the diagonal

  template <class C>
  explicit DiagTriLengths(const C& d)
      : lower(static_cast<std::size_t>(d.n_cols()), 0),
        upper(static_cast<std::size_t>(d.n_cols()), 0) {
    for (index_t j = 0; j < d.n_cols(); ++j) {
      for (nnz_t p = d.col_begin(j); p < d.col_end(j); ++p) {
        const index_t r = d.row_idx()[static_cast<std::size_t>(p)];
        if (r > j)
          lower[static_cast<std::size_t>(j)]++;
        else if (r < j)
          upper[static_cast<std::size_t>(j)]++;
      }
    }
  }
};

/// GESSM weight: forward solve of B against the unit-lower part of the
/// diagonal block — every B entry at row k applies L(:,k)'s strict column.
template <class C>
double gessm_weight(const DiagTriLengths& tri, const C& b) {
  double f = 0;
  for (index_t r : b.row_idx())
    f += 2.0 * static_cast<double>(tri.lower[static_cast<std::size_t>(r)]) + 1.0;
  return f;
}

/// TSTRF weight: each B column j applies U(:,j)'s strict column per entry.
template <class C>
double tstrf_weight(const DiagTriLengths& tri, const C& b) {
  double f = 0;
  for (index_t j = 0; j < b.n_cols(); ++j) {
    f += static_cast<double>(b.col_end(j) - b.col_begin(j)) *
         (2.0 * static_cast<double>(tri.upper[static_cast<std::size_t>(j)]) + 1.0);
  }
  return f;
}

/// Lazily cached per-row nonzero counts of a block (the U-side operand of
/// SSSSM weights).
template <class BM>
const std::vector<nnz_t>& row_counts(const BM& bm, nnz_t pos,
                                     std::vector<std::vector<nnz_t>>& cache) {
  auto& rc = cache[static_cast<std::size_t>(pos)];
  if (rc.empty()) {
    const auto& b = bm.block(pos);
    rc.assign(static_cast<std::size_t>(b.n_rows()) + 1, 0);
    rc[0] = 1;  // sentinel marking "computed" even for empty blocks
    for (index_t r : b.row_idx()) rc[static_cast<std::size_t>(r) + 1]++;
  }
  return rc;
}

}  // namespace

template <class BM>
std::vector<Task> enumerate_tasks(const BM& bm) {
  std::vector<Task> tasks;
  const index_t nb = bm.nb();
  std::vector<std::vector<nnz_t>> row_cnt_cache(
      static_cast<std::size_t>(bm.n_blocks()));

  for (index_t k = 0; k < nb; ++k) {
    const nnz_t diag = bm.find_block(k, k);
    PANGULU_CHECK(diag >= 0, "diagonal block missing (symbolic guarantees it)");
    const DiagTriLengths tri(bm.block(diag));

    Task getrf{TaskKind::kGetrf, k, k, k, diag, -1, -1, 0};
    getrf.weight = kernels::getrf_flops(bm.block(diag));
    tasks.push_back(getrf);

    // Panel solves: blocks right of the diagonal in block-row k (GESSM) and
    // below the diagonal in block-column k (TSTRF).
    for (nnz_t rp = bm.row_begin(k); rp < bm.row_end(k); ++rp) {
      const index_t bj = bm.row_block_col(rp);
      if (bj <= k) continue;
      const nnz_t pos = bm.row_block_pos(rp);
      Task t{TaskKind::kGessm, k, k, bj, pos, diag, -1,
             gessm_weight(tri, bm.block(pos))};
      tasks.push_back(t);
    }
    for (nnz_t cp = bm.col_begin(k); cp < bm.col_end(k); ++cp) {
      const index_t bi = bm.block_row(cp);
      if (bi <= k) continue;
      Task t{TaskKind::kTstrf, k, bi, k, cp, diag, -1,
             tstrf_weight(tri, bm.block(cp))};
      tasks.push_back(t);
    }

    // Schur updates: for every (bi > k, bj > k) with L-block (bi,k) and
    // U-block (k,bj) present.
    for (nnz_t cp = bm.col_begin(k); cp < bm.col_end(k); ++cp) {
      const index_t bi = bm.block_row(cp);
      if (bi <= k) continue;
      const auto& a = bm.block(cp);
      for (nnz_t rp = bm.row_begin(k); rp < bm.row_end(k); ++rp) {
        const index_t bj = bm.row_block_col(rp);
        if (bj <= k) continue;
        const nnz_t src_b = bm.row_block_pos(rp);
        const auto& brc = row_counts(bm, src_b, row_cnt_cache);
        // 2 * sum_k |A(:,k)| * |B(k,:)| without touching B's entry arrays.
        double w = 0;
        const index_t inner = a.n_cols();
        for (index_t kk = 0; kk < inner; ++kk) {
          const auto bk = static_cast<double>(brc[static_cast<std::size_t>(kk) + 1]);
          if (bk == 0) continue;
          w += 2.0 * static_cast<double>(a.col_end(kk) - a.col_begin(kk)) * bk;
        }
        // Two non-empty operand blocks can still have a structurally empty
        // product (no shared inner index); such updates are skipped — the
        // target block may legitimately be absent then.
        if (w == 0.0) continue;
        const nnz_t target = bm.find_block(bi, bj);
        PANGULU_CHECK(target >= 0, "SSSSM target block missing (closure)");
        Task t{TaskKind::kSsssm, k, bi, bj, target, cp, src_b, w};
        tasks.push_back(t);
      }
    }
  }
  return tasks;
}

template <class BM>
TaskAdjacency TaskAdjacency::build(const BM& bm,
                                   const std::vector<Task>& tasks) {
  TaskAdjacency g;
  const auto nt = static_cast<index_t>(tasks.size());
  g.dep.assign(static_cast<std::size_t>(nt), 0);
  g.out_ptr.assign(static_cast<std::size_t>(nt) + 1, 0);
  g.finalizer_of_block.assign(static_cast<std::size_t>(bm.n_blocks()), -1);

  for (index_t t = 0; t < nt; ++t) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    if (task.kind != TaskKind::kSsssm)
      g.finalizer_of_block[static_cast<std::size_t>(task.target)] = t;
  }
  // Pass 1: out-degree of every task (one counter bump per edge).
  auto count_edge = [&](index_t from) {
    g.out_ptr[static_cast<std::size_t>(from) + 1]++;
  };
  for (index_t t = 0; t < nt; ++t) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    switch (task.kind) {
      case TaskKind::kGetrf:
        break;  // depends only on incoming SSSSM updates (edges added below)
      case TaskKind::kGessm:
      case TaskKind::kTstrf: {
        count_edge(g.finalizer_of_block[static_cast<std::size_t>(task.src_a)]);
        g.dep[static_cast<std::size_t>(t)]++;
        break;
      }
      case TaskKind::kSsssm: {
        count_edge(g.finalizer_of_block[static_cast<std::size_t>(task.src_a)]);
        count_edge(g.finalizer_of_block[static_cast<std::size_t>(task.src_b)]);
        g.dep[static_cast<std::size_t>(t)] += 2;
        const index_t fin =
            g.finalizer_of_block[static_cast<std::size_t>(task.target)];
        PANGULU_CHECK(fin >= 0, "every block has a finalising task");
        count_edge(t);
        g.dep[static_cast<std::size_t>(fin)]++;
        break;
      }
    }
  }
  for (index_t t = 0; t < nt; ++t)
    g.out_ptr[static_cast<std::size_t>(t) + 1] +=
        g.out_ptr[static_cast<std::size_t>(t)];
  g.out_adj.resize(static_cast<std::size_t>(g.out_ptr.back()));
  // Pass 2: fill the adjacency with a moving cursor per source task. Edge
  // order within a source matches the per-vector build it replaces
  // (enumeration order of the dependent tasks).
  std::vector<nnz_t> next(g.out_ptr.begin(), g.out_ptr.end() - 1);
  auto add_edge = [&](index_t from, index_t to) {
    g.out_adj[static_cast<std::size_t>(next[static_cast<std::size_t>(from)]++)] =
        to;
  };
  for (index_t t = 0; t < nt; ++t) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    switch (task.kind) {
      case TaskKind::kGetrf:
        break;
      case TaskKind::kGessm:
      case TaskKind::kTstrf:
        add_edge(g.finalizer_of_block[static_cast<std::size_t>(task.src_a)], t);
        break;
      case TaskKind::kSsssm: {
        add_edge(g.finalizer_of_block[static_cast<std::size_t>(task.src_a)], t);
        add_edge(g.finalizer_of_block[static_cast<std::size_t>(task.src_b)], t);
        add_edge(t,
                 g.finalizer_of_block[static_cast<std::size_t>(task.target)]);
        break;
      }
    }
  }
  return g;
}

template <class BM>
std::vector<index_t> sync_free_array(const BM& bm,
                                     const std::vector<Task>& tasks) {
  std::vector<index_t> arr(static_cast<std::size_t>(bm.n_blocks()), 0);
  for (const Task& t : tasks) {
    if (t.kind != TaskKind::kGetrf)
      arr[static_cast<std::size_t>(t.target)]++;
  }
  return arr;
}

template <class BM>
bool is_topological_order(const BM& bm, const std::vector<Task>& tasks) {
  std::vector<index_t> pending_updates(static_cast<std::size_t>(bm.n_blocks()),
                                       0);
  std::vector<char> finalized(static_cast<std::size_t>(bm.n_blocks()), 0);
  for (const Task& t : tasks) {
    if (t.kind == TaskKind::kSsssm)
      pending_updates[static_cast<std::size_t>(t.target)]++;
  }
  for (const Task& t : tasks) {
    switch (t.kind) {
      case TaskKind::kGetrf:
        if (pending_updates[static_cast<std::size_t>(t.target)] != 0)
          return false;  // factorised before all Schur updates landed
        finalized[static_cast<std::size_t>(t.target)] = 1;
        break;
      case TaskKind::kGessm:
      case TaskKind::kTstrf:
        if (!finalized[static_cast<std::size_t>(t.src_a)] ||
            pending_updates[static_cast<std::size_t>(t.target)] != 0)
          return false;
        finalized[static_cast<std::size_t>(t.target)] = 1;
        break;
      case TaskKind::kSsssm:
        if (!finalized[static_cast<std::size_t>(t.src_a)] ||
            !finalized[static_cast<std::size_t>(t.src_b)] ||
            finalized[static_cast<std::size_t>(t.target)])
          return false;
        pending_updates[static_cast<std::size_t>(t.target)]--;
        break;
    }
  }
  return true;
}

template std::vector<Task> enumerate_tasks(const BlockMatrixT<float>&);
template std::vector<Task> enumerate_tasks(const BlockMatrixT<double>&);
template TaskAdjacency TaskAdjacency::build(const BlockMatrixT<float>&,
                                            const std::vector<Task>&);
template TaskAdjacency TaskAdjacency::build(const BlockMatrixT<double>&,
                                            const std::vector<Task>&);
template std::vector<index_t> sync_free_array(const BlockMatrixT<float>&,
                                              const std::vector<Task>&);
template std::vector<index_t> sync_free_array(const BlockMatrixT<double>&,
                                              const std::vector<Task>&);
template bool is_topological_order(const BlockMatrixT<float>&,
                                   const std::vector<Task>&);
template bool is_topological_order(const BlockMatrixT<double>&,
                                   const std::vector<Task>&);

}  // namespace pangulu::block
