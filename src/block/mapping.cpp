#include "block/mapping.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/partition.hpp"
#include "util/status.hpp"

namespace pangulu::block {

ProcessGrid ProcessGrid::make(rank_t p) {
  ProcessGrid g;
  rank_t best = 1;
  for (rank_t d = 1; d * d <= p; ++d) {
    if (p % d == 0) best = d;
  }
  g.pr = best;
  g.pc = p / best;
  return g;
}

nnz_t Mapping::remap_failed_rank(rank_t failed, const std::vector<char>& alive) {
  std::vector<rank_t> survivors;
  for (rank_t r = 0; r < n_ranks; ++r) {
    const bool ok = alive.empty() ? r != failed
                                  : r != failed &&
                                        alive[static_cast<std::size_t>(r)];
    if (ok) survivors.push_back(r);
  }
  if (survivors.empty()) return -1;
  nnz_t moved = 0;
  for (auto& o : owner) {
    if (o != failed) continue;
    o = survivors[static_cast<std::size_t>(moved) % survivors.size()];
    ++moved;
  }
  return moved;
}

nnz_t Mapping::rebalance(rank_t rank, int delta,
                         const std::vector<char>& alive,
                         std::vector<nnz_t>* moved) {
  PANGULU_CHECK(delta == -1 || delta == 1, "rebalance delta must be +-1");
  PANGULU_CHECK(alive.size() == static_cast<std::size_t>(n_ranks),
                "rebalance alive vector size mismatch");
  std::vector<nnz_t> count(static_cast<std::size_t>(n_ranks), 0);
  for (rank_t o : owner) ++count[static_cast<std::size_t>(o)];
  rank_t n_live = 0;
  for (rank_t r = 0; r < n_ranks; ++r)
    if (alive[static_cast<std::size_t>(r)]) ++n_live;

  nnz_t n_moved = 0;
  if (delta < 0) {
    // Drain: every block of `rank` goes to the currently least-loaded live
    // rank. Greedy argmin keeps the movement minimal (only the leaver's
    // blocks travel) and the result balanced.
    if (n_live == 0) return -1;
    for (std::size_t pos = 0; pos < owner.size(); ++pos) {
      if (owner[pos] != rank) continue;
      rank_t best = -1;
      for (rank_t r = 0; r < n_ranks; ++r) {
        if (!alive[static_cast<std::size_t>(r)] || r == rank) continue;
        if (best < 0 ||
            count[static_cast<std::size_t>(r)] < count[static_cast<std::size_t>(best)])
          best = r;
      }
      if (best < 0) return -1;
      owner[pos] = best;
      --count[static_cast<std::size_t>(rank)];
      ++count[static_cast<std::size_t>(best)];
      ++n_moved;
      if (moved) moved->push_back(static_cast<nnz_t>(pos));
    }
  } else {
    // Add: steal from the most-loaded live ranks (their highest block
    // position first) until the newcomer holds its fair share. Bounded
    // movement: at most ceil(total / live) blocks change owner.
    if (n_live <= 1) return 0;  // nobody to steal from
    std::vector<std::vector<nnz_t>> held(static_cast<std::size_t>(n_ranks));
    for (std::size_t pos = 0; pos < owner.size(); ++pos)
      held[static_cast<std::size_t>(owner[pos])].push_back(
          static_cast<nnz_t>(pos));
    const nnz_t target =
        static_cast<nnz_t>(owner.size()) / static_cast<nnz_t>(n_live);
    while (count[static_cast<std::size_t>(rank)] < target) {
      rank_t donor = -1;
      for (rank_t r = 0; r < n_ranks; ++r) {
        if (!alive[static_cast<std::size_t>(r)] || r == rank) continue;
        if (count[static_cast<std::size_t>(r)] == 0) continue;
        if (donor < 0 ||
            count[static_cast<std::size_t>(r)] > count[static_cast<std::size_t>(donor)])
          donor = r;
      }
      if (donor < 0 || count[static_cast<std::size_t>(donor)] <= target) break;
      const nnz_t pos = held[static_cast<std::size_t>(donor)].back();
      held[static_cast<std::size_t>(donor)].pop_back();
      owner[static_cast<std::size_t>(pos)] = rank;
      --count[static_cast<std::size_t>(donor)];
      ++count[static_cast<std::size_t>(rank)];
      ++n_moved;
      if (moved) moved->push_back(pos);
    }
    if (moved) std::sort(moved->end() - n_moved, moved->end());
  }
  return n_moved;
}

Mapping cyclic_mapping(const BlockMatrix& bm, const ProcessGrid& grid,
                       ThreadPool* pool) {
  Mapping m;
  m.n_ranks = grid.size();
  m.owner.resize(static_cast<std::size_t>(bm.n_blocks()));
  ThreadPool& tp = effective_pool(pool);
  parallel_for_chunks(tp, 0, bm.n_blocks(), [&](index_t lo, index_t hi) {
    for (index_t pos = lo; pos < hi; ++pos) {
      m.owner[static_cast<std::size_t>(pos)] =
          grid.owner_cyclic(bm.block_row_of(pos), bm.block_col_of(pos));
    }
  });
  return m;
}

std::vector<double> rank_weights(const std::vector<Task>& tasks,
                                 const Mapping& mapping) {
  std::vector<double> w(static_cast<std::size_t>(mapping.n_ranks), 0.0);
  for (const Task& t : tasks)
    w[static_cast<std::size_t>(
        mapping.owner[static_cast<std::size_t>(t.target)])] += t.weight;
  return w;
}

Mapping balanced_mapping_serial(const BlockMatrix& bm,
                                const std::vector<Task>& tasks,
                                const ProcessGrid& grid, const Mapping& initial,
                                BalanceStats* stats) {
  Mapping m = initial;
  const rank_t nr = grid.size();
  if (stats) {
    auto w0 = rank_weights(tasks, initial);
    stats->max_weight_before = *std::max_element(w0.begin(), w0.end());
    stats->max_weight_after = stats->max_weight_before;
    stats->swaps = 0;
  }
  if (nr <= 1) return m;

  // Group tasks by time slice (tasks arrive ordered by k).
  const index_t nb = bm.nb();
  std::vector<std::size_t> slice_begin(static_cast<std::size_t>(nb) + 1, 0);
  {
    std::size_t ti = 0;
    for (index_t k = 0; k < nb; ++k) {
      slice_begin[static_cast<std::size_t>(k)] = ti;
      while (ti < tasks.size() && tasks[ti].k == k) ++ti;
    }
    slice_begin[static_cast<std::size_t>(nb)] = tasks.size();
  }

  std::vector<double> total(static_cast<std::size_t>(nr), 0.0);
  std::vector<double> slice_w(static_cast<std::size_t>(nr), 0.0);
  std::vector<index_t> slice_tasks(static_cast<std::size_t>(nr), 0);

  for (index_t k = 0; k < nb; ++k) {
    const std::size_t b = slice_begin[static_cast<std::size_t>(k)];
    const std::size_t e = slice_begin[static_cast<std::size_t>(k) + 1];
    std::fill(slice_w.begin(), slice_w.end(), 0.0);
    std::fill(slice_tasks.begin(), slice_tasks.end(), 0);
    for (std::size_t t = b; t < e; ++t) {
      const rank_t r = m.owner[static_cast<std::size_t>(tasks[t].target)];
      slice_w[static_cast<std::size_t>(r)] += tasks[t].weight;
      slice_tasks[static_cast<std::size_t>(r)]++;
    }

    // Candidate trade: cumulative-heaviest process (including this slice)
    // versus the process with the fewest tasks in this slice (the paper
    // trades with "the process with the smallest number of tasks").
    rank_t heavy = 0, light = 0;
    for (rank_t r = 1; r < nr; ++r) {
      if (total[static_cast<std::size_t>(r)] + slice_w[static_cast<std::size_t>(r)] >
          total[static_cast<std::size_t>(heavy)] + slice_w[static_cast<std::size_t>(heavy)])
        heavy = r;
      if (slice_tasks[static_cast<std::size_t>(r)] <
              slice_tasks[static_cast<std::size_t>(light)] ||
          (slice_tasks[static_cast<std::size_t>(r)] ==
               slice_tasks[static_cast<std::size_t>(light)] &&
           total[static_cast<std::size_t>(r)] <
               total[static_cast<std::size_t>(light)]))
        light = r;
    }

    if (heavy != light) {
      const double h_after_swap = total[static_cast<std::size_t>(heavy)] +
                                  slice_w[static_cast<std::size_t>(light)];
      const double l_after_swap = total[static_cast<std::size_t>(light)] +
                                  slice_w[static_cast<std::size_t>(heavy)];
      const double cur_max = std::max(total[static_cast<std::size_t>(heavy)] +
                                          slice_w[static_cast<std::size_t>(heavy)],
                                      total[static_cast<std::size_t>(light)] +
                                          slice_w[static_cast<std::size_t>(light)]);
      if (std::max(h_after_swap, l_after_swap) < cur_max) {
        // Swap ownership of every block whose slice-k task belongs to one of
        // the two processes.
        for (std::size_t t = b; t < e; ++t) {
          auto& owner = m.owner[static_cast<std::size_t>(tasks[t].target)];
          if (owner == heavy)
            owner = light;
          else if (owner == light)
            owner = heavy;
        }
        std::swap(slice_w[static_cast<std::size_t>(heavy)],
                  slice_w[static_cast<std::size_t>(light)]);
        if (stats) stats->swaps++;
      }
    }
    for (rank_t r = 0; r < nr; ++r)
      total[static_cast<std::size_t>(r)] += slice_w[static_cast<std::size_t>(r)];
  }

  // A block owns tasks in several slices, so a swap committed at slice k can
  // retroactively shift weight counted in earlier slices; guard against the
  // rare case where the heuristic ends up worse than the cyclic start.
  {
    auto w_before = rank_weights(tasks, initial);
    auto w_after = rank_weights(tasks, m);
    const double max_before = *std::max_element(w_before.begin(), w_before.end());
    const double max_after = *std::max_element(w_after.begin(), w_after.end());
    if (max_after > max_before) {
      m = initial;
      if (stats) stats->swaps = 0;
    }
    if (stats)
      stats->max_weight_after = std::min(max_after, max_before);
  }
  return m;
}

Mapping balanced_mapping(const BlockMatrix& bm, const std::vector<Task>& tasks,
                         const ProcessGrid& grid, const Mapping& initial,
                         BalanceStats* stats, ThreadPool* pool) {
  ThreadPool& tp = effective_pool(pool);
  if (tp.size() <= 1)
    return balanced_mapping_serial(bm, tasks, grid, initial, stats);

  Mapping m = initial;
  const rank_t nr = grid.size();
  if (stats) {
    auto w0 = rank_weights(tasks, initial);
    stats->max_weight_before = *std::max_element(w0.begin(), w0.end());
    stats->max_weight_after = stats->max_weight_before;
    stats->swaps = 0;
  }
  if (nr <= 1) return m;

  const index_t nb = bm.nb();
  std::vector<std::size_t> slice_begin(static_cast<std::size_t>(nb) + 1, 0);
  {
    std::size_t ti = 0;
    for (index_t k = 0; k < nb; ++k) {
      slice_begin[static_cast<std::size_t>(k)] = ti;
      while (ti < tasks.size() && tasks[ti].k == k) ++ti;
    }
    slice_begin[static_cast<std::size_t>(nb)] = tasks.size();
  }

  std::vector<double> total(static_cast<std::size_t>(nr), 0.0);
  std::vector<double> slice_w(static_cast<std::size_t>(nr), 0.0);
  std::vector<index_t> slice_tasks(static_cast<std::size_t>(nr), 0);
  // Per-chunk partials for the parallel slice accumulation (sized lazily for
  // the first big slice). Task weights are flop counts — integer-valued
  // doubles — so summing per-chunk partials in ascending chunk order yields
  // exactly the bits the serial left-to-right sum produces.
  constexpr index_t kParallelSlice = 4096;
  std::vector<double> part_w;
  std::vector<index_t> part_t;

  for (index_t k = 0; k < nb; ++k) {
    const std::size_t b = slice_begin[static_cast<std::size_t>(k)];
    const std::size_t e = slice_begin[static_cast<std::size_t>(k) + 1];
    const auto len = static_cast<index_t>(e - b);
    std::fill(slice_w.begin(), slice_w.end(), 0.0);
    std::fill(slice_tasks.begin(), slice_tasks.end(), 0);
    if (len < kParallelSlice) {
      for (std::size_t t = b; t < e; ++t) {
        const rank_t r = m.owner[static_cast<std::size_t>(tasks[t].target)];
        slice_w[static_cast<std::size_t>(r)] += tasks[t].weight;
        slice_tasks[static_cast<std::size_t>(r)]++;
      }
    } else {
      const FixedPartition part = FixedPartition::make(len, nr);
      const auto cells = static_cast<std::size_t>(part.n_chunks) *
                         static_cast<std::size_t>(nr);
      part_w.assign(cells, 0.0);
      part_t.assign(cells, 0);
      parallel_for(
          tp, 0, part.n_chunks,
          [&](index_t c) {
            double* pw = part_w.data() +
                         static_cast<std::size_t>(c) * static_cast<std::size_t>(nr);
            index_t* pt = part_t.data() +
                          static_cast<std::size_t>(c) * static_cast<std::size_t>(nr);
            for (index_t i = part.begin(c); i < part.end(c); ++i) {
              const std::size_t t = b + static_cast<std::size_t>(i);
              const rank_t r = m.owner[static_cast<std::size_t>(tasks[t].target)];
              pw[static_cast<std::size_t>(r)] += tasks[t].weight;
              pt[static_cast<std::size_t>(r)]++;
            }
          },
          /*grain=*/1);
      for (index_t c = 0; c < part.n_chunks; ++c) {
        const std::size_t off =
            static_cast<std::size_t>(c) * static_cast<std::size_t>(nr);
        for (rank_t r = 0; r < nr; ++r) {
          slice_w[static_cast<std::size_t>(r)] += part_w[off + static_cast<std::size_t>(r)];
          slice_tasks[static_cast<std::size_t>(r)] += part_t[off + static_cast<std::size_t>(r)];
        }
      }
    }

    rank_t heavy = 0, light = 0;
    for (rank_t r = 1; r < nr; ++r) {
      if (total[static_cast<std::size_t>(r)] + slice_w[static_cast<std::size_t>(r)] >
          total[static_cast<std::size_t>(heavy)] + slice_w[static_cast<std::size_t>(heavy)])
        heavy = r;
      if (slice_tasks[static_cast<std::size_t>(r)] <
              slice_tasks[static_cast<std::size_t>(light)] ||
          (slice_tasks[static_cast<std::size_t>(r)] ==
               slice_tasks[static_cast<std::size_t>(light)] &&
           total[static_cast<std::size_t>(r)] <
               total[static_cast<std::size_t>(light)]))
        light = r;
    }

    if (heavy != light) {
      const double h_after_swap = total[static_cast<std::size_t>(heavy)] +
                                  slice_w[static_cast<std::size_t>(light)];
      const double l_after_swap = total[static_cast<std::size_t>(light)] +
                                  slice_w[static_cast<std::size_t>(heavy)];
      const double cur_max = std::max(total[static_cast<std::size_t>(heavy)] +
                                          slice_w[static_cast<std::size_t>(heavy)],
                                      total[static_cast<std::size_t>(light)] +
                                          slice_w[static_cast<std::size_t>(light)]);
      if (std::max(h_after_swap, l_after_swap) < cur_max) {
        // The swap pass is order-sensitive (a block targeted by several tasks
        // toggles owner per visit) — it stays sequential on purpose.
        for (std::size_t t = b; t < e; ++t) {
          auto& owner = m.owner[static_cast<std::size_t>(tasks[t].target)];
          if (owner == heavy)
            owner = light;
          else if (owner == light)
            owner = heavy;
        }
        std::swap(slice_w[static_cast<std::size_t>(heavy)],
                  slice_w[static_cast<std::size_t>(light)]);
        if (stats) stats->swaps++;
      }
    }
    for (rank_t r = 0; r < nr; ++r)
      total[static_cast<std::size_t>(r)] += slice_w[static_cast<std::size_t>(r)];
  }

  {
    auto w_before = rank_weights(tasks, initial);
    auto w_after = rank_weights(tasks, m);
    const double max_before = *std::max_element(w_before.begin(), w_before.end());
    const double max_after = *std::max_element(w_after.begin(), w_after.end());
    if (max_after > max_before) {
      m = initial;
      if (stats) stats->swaps = 0;
    }
    if (stats)
      stats->max_weight_after = std::min(max_after, max_before);
  }
  return m;
}

}  // namespace pangulu::block
