// Block -> process mapping: 2D block-cyclic baseline plus the paper's static
// load-balancing adjustment (§4.2): walking the elimination time slices, the
// busiest process swaps this slice's tasks with the least-loaded one when
// that evens out the cumulative weights.
#pragma once

#include <vector>

#include "block/tasks.hpp"
#include "util/types.hpp"

namespace pangulu {
class ThreadPool;
}

namespace pangulu::block {

/// 2D process grid (Pr x Pc ranks, block-cyclic tiling).
struct ProcessGrid {
  rank_t pr = 1;
  rank_t pc = 1;

  rank_t size() const { return pr * pc; }
  rank_t owner_cyclic(index_t bi, index_t bj) const {
    return static_cast<rank_t>((bi % pr) * pc + (bj % pc));
  }

  /// Near-square factorisation of `p` (the usual choice for LU grids).
  static ProcessGrid make(rank_t p);
};

/// owner[block position] = rank.
struct Mapping {
  std::vector<rank_t> owner;
  rank_t n_ranks = 1;

  /// Crash recovery primitive: reassign every block owned by `failed` to the
  /// surviving ranks, round-robin in block-position order so the orphaned
  /// load spreads evenly and deterministically. `alive[r]` marks eligible
  /// ranks (pass empty to mean "everyone except `failed`"); ranks already
  /// lost to earlier crashes must be marked dead so cascading failures never
  /// re-adopt blocks onto a corpse. Returns the number of blocks moved, or
  /// -1 when no survivor exists (recovery impossible). `n_ranks` is kept:
  /// rank ids stay stable, the dead rank simply owns nothing.
  nnz_t remap_failed_rank(rank_t failed, const std::vector<char>& alive = {});

  /// Elastic-runtime primitive: bounded-movement incremental rebalance after
  /// `rank` leaves (`delta` = -1) or joins (`delta` = +1) the live set
  /// recorded in `alive` (which already reflects the change). Unlike a full
  /// remap, only the minimal block set moves:
  ///   * drain: each of the rank's blocks goes, in block-position order, to
  ///     the currently least-loaded live rank (ties to the lowest id); no
  ///     block between two live ranks is touched.
  ///   * add: the newcomer steals blocks from the most-loaded live ranks
  ///     (highest block position first) until it reaches the fair share
  ///     floor(total_blocks / live_ranks); at most ceil(total / live) blocks
  ///     move.
  /// Migrated block positions are appended to `moved` (ascending for drains)
  /// when provided. Returns the number of blocks moved, or -1 when a drain
  /// finds no live rank to adopt the blocks.
  nnz_t rebalance(rank_t rank, int delta, const std::vector<char>& alive,
                  std::vector<nnz_t>* moved = nullptr);
};

/// Plain 2D block-cyclic assignment. Each block position's owner is an
/// independent function of its coordinates, so the parallel fill is trivially
/// identical to the serial sweep.
Mapping cyclic_mapping(const BlockMatrix& bm, const ProcessGrid& grid,
                       ThreadPool* pool = nullptr);

struct BalanceStats {
  double max_weight_before = 0;
  double max_weight_after = 0;
  index_t swaps = 0;
};

/// The static balancing pass of §4.2. Starts from `initial`, walks time
/// slices in order; in each slice the process with the highest cumulative
/// weight trades this slice's task set with the lowest-weight process when
/// the trade lowers the running maximum. Blocks move with their tasks (the
/// mapping stays static for the numeric phase).
/// The per-slice weight accumulation runs chunked on `pool`; task weights are
/// integer-valued doubles (flop counts), so the reassociated partial sums are
/// exact and the result is bitwise identical to `balanced_mapping_serial` at
/// any thread count. The swap pass itself stays sequential: a block targeted
/// by several tasks in one slice toggles owner on each visit, so the serial
/// visit order is part of the reference semantics.
Mapping balanced_mapping(const BlockMatrix& bm, const std::vector<Task>& tasks,
                         const ProcessGrid& grid, const Mapping& initial,
                         BalanceStats* stats = nullptr,
                         ThreadPool* pool = nullptr);

/// Single-threaded reference for the determinism tests and benches.
Mapping balanced_mapping_serial(const BlockMatrix& bm,
                                const std::vector<Task>& tasks,
                                const ProcessGrid& grid, const Mapping& initial,
                                BalanceStats* stats = nullptr);

/// Cumulative per-rank weight of a mapping (for tests and reporting).
std::vector<double> rank_weights(const std::vector<Task>& tasks,
                                 const Mapping& mapping);

}  // namespace pangulu::block
