#include "matgen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace pangulu::matgen {

namespace {

/// Make the matrix strictly diagonally dominant in place (COO assembly-side
/// trick: add row-sum of |offdiag| + margin to the diagonal). Numeric
/// factorisation in this repo uses static pivoting, so generated systems are
/// kept comfortably stable the same way SuiteSparse's circuit/FEM matrices
/// are in practice.
Coo dominate_diagonal(Coo coo, double margin) {
  std::vector<double> row_abs(static_cast<std::size_t>(coo.n_rows), 0.0);
  for (const auto& t : coo.entries) {
    if (t.row != t.col) row_abs[static_cast<std::size_t>(t.row)] += std::abs(t.value);
  }
  std::vector<bool> has_diag(static_cast<std::size_t>(coo.n_rows), false);
  for (auto& t : coo.entries) {
    if (t.row == t.col) {
      has_diag[static_cast<std::size_t>(t.row)] = true;
      double sign = t.value >= 0 ? 1.0 : -1.0;
      t.value = sign * (std::abs(t.value) + row_abs[static_cast<std::size_t>(t.row)] + margin);
    }
  }
  for (index_t i = 0; i < coo.n_rows; ++i) {
    if (!has_diag[static_cast<std::size_t>(i)])
      coo.add(i, i, row_abs[static_cast<std::size_t>(i)] + margin);
  }
  return coo;
}

index_t scaled(index_t base, double scale, index_t min_val) {
  auto v = static_cast<index_t>(std::llround(base * scale));
  return std::max(min_val, v);
}

}  // namespace

Csc grid2d_laplacian(index_t nx, index_t ny) {
  PANGULU_CHECK(nx >= 1 && ny >= 1, "grid dims");
  const index_t n = nx * ny;
  Coo coo(n, n);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      index_t c = id(x, y);
      coo.add(c, c, 4.0);
      if (x > 0) coo.add(c, id(x - 1, y), -1.0);
      if (x + 1 < nx) coo.add(c, id(x + 1, y), -1.0);
      if (y > 0) coo.add(c, id(x, y - 1), -1.0);
      if (y + 1 < ny) coo.add(c, id(x, y + 1), -1.0);
    }
  }
  return Csc::from_coo(dominate_diagonal(std::move(coo), 0.5));
}

Csc grid3d_laplacian(index_t nx, index_t ny, index_t nz) {
  PANGULU_CHECK(nx >= 1 && ny >= 1 && nz >= 1, "grid dims");
  const index_t n = nx * ny * nz;
  Coo coo(n, n);
  auto id = [nx, ny](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        index_t c = id(x, y, z);
        coo.add(c, c, 6.0);
        if (x > 0) coo.add(c, id(x - 1, y, z), -1.0);
        if (x + 1 < nx) coo.add(c, id(x + 1, y, z), -1.0);
        if (y > 0) coo.add(c, id(x, y - 1, z), -1.0);
        if (y + 1 < ny) coo.add(c, id(x, y + 1, z), -1.0);
        if (z > 0) coo.add(c, id(x, y, z - 1), -1.0);
        if (z + 1 < nz) coo.add(c, id(x, y, z + 1), -1.0);
      }
    }
  }
  return Csc::from_coo(dominate_diagonal(std::move(coo), 0.5));
}

Csc fem3d(index_t nx, index_t ny, index_t nz, int dofs, std::uint64_t seed) {
  PANGULU_CHECK(dofs >= 1, "dofs per node");
  const index_t nodes = nx * ny * nz;
  const index_t n = nodes * dofs;
  Rng rng(seed);
  Coo coo(n, n);
  auto node_id = [nx, ny](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t a = node_id(x, y, z);
        // 27-point neighbourhood (including self).
        for (index_t dz = -1; dz <= 1; ++dz) {
          for (index_t dy = -1; dy <= 1; ++dy) {
            for (index_t dx = -1; dx <= 1; ++dx) {
              index_t x2 = x + dx, y2 = y + dy, z2 = z + dz;
              if (x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny || z2 < 0 || z2 >= nz)
                continue;
              const index_t b = node_id(x2, y2, z2);
              const bool self = (a == b);
              // Dense dofs x dofs coupling block (symmetric structure,
              // random values -> supernode-friendly identical row patterns).
              for (int di = 0; di < dofs; ++di) {
                for (int dj = 0; dj < dofs; ++dj) {
                  double v = self && di == dj ? 27.0 * dofs
                                              : 0.2 * rng.normal();
                  coo.add(a * dofs + di, b * dofs + dj, v);
                }
              }
            }
          }
        }
      }
    }
  }
  return Csc::from_coo(dominate_diagonal(std::move(coo), 1.0));
}

Csc circuit(index_t n, double avg_degree, double alpha, std::uint64_t seed) {
  Rng rng(seed);
  Coo coo(n, n);
  // Local chain coupling (SPICE netlists have strong locality) ...
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 1.0);
    if (i + 1 < n) {
      coo.add(i, i + 1, -rng.uniform(0.1, 1.0));
      coo.add(i + 1, i, -rng.uniform(0.1, 1.0));
    }
  }
  // ... plus power-law hubs: a few nets (power rails, clock) touch very many
  // nodes. This is what defeats supernode detection on ASIC_680k.
  const index_t max_deg = std::max<index_t>(4, n / 8);
  auto extra = static_cast<std::int64_t>(avg_degree * n);
  while (extra > 0) {
    index_t hub = rng.uniform_index(0, n - 1);
    index_t deg = rng.power_law(max_deg, alpha);
    for (index_t k = 0; k < deg; ++k) {
      index_t other = rng.uniform_index(0, n - 1);
      if (other == hub) continue;
      // Unsymmetric: only sometimes add the mirrored entry.
      coo.add(hub, other, -rng.uniform(0.01, 0.5));
      if (rng.bernoulli(0.3)) coo.add(other, hub, -rng.uniform(0.01, 0.5));
      --extra;
      if (extra <= 0) break;
    }
  }
  return Csc::from_coo(dominate_diagonal(std::move(coo), 0.5));
}

Csc kkt(index_t nx, index_t ny, index_t nz, std::uint64_t seed) {
  Rng rng(seed);
  const index_t np = nx * ny * nz;        // primal variables on a 3D grid
  const index_t nc = std::max<index_t>(1, np / 4);  // constraints
  const index_t n = np + nc;
  Coo coo(n, n);
  // H block: 7-point grid Hessian.
  Csc h = grid3d_laplacian(nx, ny, nz);
  for (index_t j = 0; j < np; ++j) {
    for (nnz_t p = h.col_begin(j); p < h.col_end(j); ++p) {
      coo.add(h.row_idx()[static_cast<std::size_t>(p)], j,
              h.values()[static_cast<std::size_t>(p)]);
    }
  }
  // B block: each constraint couples a handful of primal variables.
  for (index_t c = 0; c < nc; ++c) {
    const index_t row = np + c;
    const int k = 3 + static_cast<int>(rng.uniform_index(0, 3));
    for (int t = 0; t < k; ++t) {
      index_t var = rng.uniform_index(0, np - 1);
      double v = rng.normal();
      coo.add(row, var, v);   // B
      coo.add(var, row, v);   // B'
    }
    coo.add(row, row, -1.0);  // -delta regularisation keeps it factorable
  }
  return Csc::from_coo(dominate_diagonal(std::move(coo), 1.0));
}

Csc banded_random(index_t n, index_t bandwidth, double band_density,
                  index_t random_per_col, std::uint64_t seed) {
  Rng rng(seed);
  Coo coo(n, n);
  for (index_t j = 0; j < n; ++j) {
    coo.add(j, j, 1.0);
    const index_t lo = std::max<index_t>(0, j - bandwidth);
    const index_t hi = std::min<index_t>(n - 1, j + bandwidth);
    for (index_t i = lo; i <= hi; ++i) {
      if (i == j) continue;
      if (rng.bernoulli(band_density)) coo.add(i, j, 0.3 * rng.normal());
    }
    for (index_t t = 0; t < random_per_col; ++t) {
      index_t i = rng.uniform_index(0, n - 1);
      if (i != j) coo.add(i, j, 0.1 * rng.normal());
    }
  }
  return Csc::from_coo(dominate_diagonal(std::move(coo), 1.0));
}

Csc cage_style(index_t n, int out_degree, std::uint64_t seed) {
  Rng rng(seed);
  Coo coo(n, n);
  // de Bruijn-like shifts: node i -> (2i + c) mod n. Directed, unsymmetric.
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 1.0);
    for (int c = 0; c < out_degree; ++c) {
      index_t jlong = static_cast<index_t>(
          (2 * static_cast<std::int64_t>(i) + c) % n);
      if (jlong != i) coo.add(jlong, i, 0.2 + 0.1 * rng.uniform());
      // Mild symmetric locality keeps fill from exploding unrealistically.
      index_t jn = (i + c + 1) % n;
      if (jn != i) coo.add(i, jn, -0.1 * rng.uniform());
    }
  }
  return Csc::from_coo(dominate_diagonal(std::move(coo), 0.5));
}

Csc shifted_illcond(index_t nx, index_t ny, double kappa) {
  PANGULU_CHECK(nx >= 2 && ny >= 2, "shifted_illcond: grid dims must be >= 2");
  PANGULU_CHECK(kappa >= 1.0, "shifted_illcond: kappa must be >= 1");
  // Eigenvalues of the Dirichlet 5-point Laplacian are known in closed form:
  // lambda_{ij} = 4 - 2cos(pi i/(nx+1)) - 2cos(pi j/(ny+1)). Shifting the
  // diagonal by (shift - lambda_min) moves the smallest eigenvalue to
  // `shift` while leaving the near-null sine mode intact, so the condition
  // number becomes ~ lambda_max / shift = kappa. Diagonal scaling cannot
  // remove this: it is spectral, not a grading artefact, which is exactly
  // what an FP32 factorisation cannot absorb (DESIGN.md §14).
  const double pi = std::acos(-1.0);
  const double cx1 = std::cos(pi / static_cast<double>(nx + 1));
  const double cy1 = std::cos(pi / static_cast<double>(ny + 1));
  const double lmin = 4.0 - 2.0 * cx1 - 2.0 * cy1;
  const double lmax = 4.0 + 2.0 * cx1 + 2.0 * cy1;
  const double shift = lmax / kappa;
  const double diag = 4.0 - lmin + shift;
  const index_t n = nx * ny;
  Coo coo(n, n);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      index_t c = id(x, y);
      coo.add(c, c, diag);
      if (x > 0) coo.add(c, id(x - 1, y), -1.0);
      if (x + 1 < nx) coo.add(c, id(x + 1, y), -1.0);
      if (y > 0) coo.add(c, id(x, y - 1), -1.0);
      if (y + 1 < ny) coo.add(c, id(x, y + 1), -1.0);
    }
  }
  return Csc::from_coo(std::move(coo));
}

Csc random_sparse(index_t n, index_t nnz_per_col, std::uint64_t seed,
                  bool diag_dominant) {
  Rng rng(seed);
  Coo coo(n, n);
  for (index_t j = 0; j < n; ++j) {
    coo.add(j, j, 1.0 + rng.uniform());
    for (index_t k = 0; k < nnz_per_col; ++k) {
      index_t i = rng.uniform_index(0, n - 1);
      if (i != j) coo.add(i, j, rng.normal());
    }
  }
  if (diag_dominant) coo = dominate_diagonal(std::move(coo), 0.5);
  return Csc::from_coo(coo);
}

Csc random_unit_lower(index_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  Coo coo(n, n);
  for (index_t j = 0; j < n; ++j) {
    coo.add(j, j, 1.0);
    for (index_t i = j + 1; i < n; ++i) {
      if (rng.bernoulli(density)) coo.add(i, j, 0.5 * rng.normal());
    }
  }
  return Csc::from_coo(coo);
}

Csc random_upper(index_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  Coo coo(n, n);
  for (index_t j = 0; j < n; ++j) {
    coo.add(j, j, 1.0 + rng.uniform());
    for (index_t i = 0; i < j; ++i) {
      if (rng.bernoulli(density)) coo.add(i, j, 0.5 * rng.normal());
    }
  }
  return Csc::from_coo(coo);
}

Csc random_rect(index_t rows, index_t cols, double density, std::uint64_t seed) {
  Rng rng(seed);
  Coo coo(rows, cols);
  for (index_t j = 0; j < cols; ++j) {
    for (index_t i = 0; i < rows; ++i) {
      if (rng.bernoulli(density)) coo.add(i, j, rng.normal());
    }
  }
  return Csc::from_coo(coo);
}

std::vector<std::string> paper_matrix_names() {
  return {"apache2",   "ASIC_680k",       "audikw_1", "cage12",
          "CoupCons3D", "dielFilterV3real", "ecology1", "G3_circuit",
          "Ga41As41H72", "Hook_1498",      "inline_1", "ldoor",
          "nlpkkt80",  "Serena",           "Si87H76",  "SiO2"};
}

PaperMatrixInfo paper_matrix_info(const std::string& name) {
  static const std::map<std::string, std::string> kDomain = {
      {"apache2", "Structural"},
      {"ASIC_680k", "Circuit Simulation"},
      {"audikw_1", "Structural"},
      {"cage12", "Directed Weighted Graph"},
      {"CoupCons3D", "Structural"},
      {"dielFilterV3real", "Electromagnetics"},
      {"ecology1", "2D/3D"},
      {"G3_circuit", "Circuit Simulation"},
      {"Ga41As41H72", "Theoretical/Quantum Chemistry"},
      {"Hook_1498", "Structural"},
      {"inline_1", "Structural"},
      {"ldoor", "Structural"},
      {"nlpkkt80", "Optimization"},
      {"Serena", "Structural"},
      {"Si87H76", "Theoretical/Quantum Chemistry"},
      {"SiO2", "Theoretical/Quantum Chemistry"}};
  auto it = kDomain.find(name);
  PANGULU_CHECK(it != kDomain.end(), "unknown paper matrix: " + name);
  return {name, it->second};
}

Csc paper_matrix(const std::string& name, double scale) {
  PANGULU_CHECK(scale > 0 && scale <= 4.0, "scale out of range");
  // Default dimensions target one-machine bench sizes (n ~ 2k-9k, fill up to
  // a few million nonzeros); `scale` shrinks/grows linearly in grid edge.
  const double s = scale;
  if (name == "apache2") return grid3d_laplacian(scaled(17, s, 4), scaled(17, s, 4), scaled(17, s, 4));
  if (name == "ASIC_680k") return circuit(scaled(6000, s, 128), 3.0, 2.1, 680);
  if (name == "audikw_1") return fem3d(scaled(9, s, 3), scaled(9, s, 3), scaled(9, s, 3), 3, 101);
  if (name == "cage12") return cage_style(scaled(4500, s, 96), 4, 12);
  if (name == "CoupCons3D") return fem3d(scaled(11, s, 3), scaled(11, s, 3), scaled(11, s, 3), 2, 33);
  if (name == "dielFilterV3real") return fem3d(scaled(15, s, 4), scaled(15, s, 4), scaled(15, s, 4), 1, 77);
  if (name == "ecology1") return grid2d_laplacian(scaled(80, s, 8), scaled(80, s, 8));
  if (name == "G3_circuit") return grid2d_laplacian(scaled(88, s, 8), scaled(88, s, 8));
  if (name == "Ga41As41H72") return banded_random(scaled(2400, s, 64), scaled(140, s, 8), 0.45, 12, 41);
  if (name == "Hook_1498") return fem3d(scaled(10, s, 3), scaled(10, s, 3), scaled(10, s, 3), 3, 1498);
  if (name == "inline_1") return fem3d(scaled(40, s, 6), scaled(6, s, 2), scaled(6, s, 2), 3, 1);
  if (name == "ldoor") return fem3d(scaled(36, s, 6), scaled(7, s, 2), scaled(7, s, 2), 3, 9);
  if (name == "nlpkkt80") return kkt(scaled(13, s, 3), scaled(13, s, 3), scaled(13, s, 3), 80);
  if (name == "Serena") return fem3d(scaled(11, s, 3), scaled(11, s, 3), scaled(11, s, 3), 3, 139);
  if (name == "Si87H76") return banded_random(scaled(2200, s, 64), scaled(160, s, 8), 0.5, 10, 87);
  if (name == "SiO2") return banded_random(scaled(1800, s, 64), scaled(120, s, 8), 0.45, 14, 2);
  PANGULU_CHECK(false, "unknown paper matrix: " + name);
  return Csc();
}

}  // namespace pangulu::matgen
