// Synthetic sparse matrix generators.
//
// The paper evaluates on 16 SuiteSparse matrices that are not bundled here;
// per DESIGN.md each one is substituted by a deterministic generator that
// reproduces its *structural class* — the property that drives the paper's
// per-matrix behaviour (supernode friendliness, Schur-block density, fill
// ratio, symmetry). `paper_matrix(name, scale)` returns the stand-in for a
// paper matrix at a size budget suitable for one machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csc.hpp"

namespace pangulu::matgen {

/// 5-point Laplacian on an nx x ny grid. Structurally symmetric, very sparse
/// factors (ecology1 / G3_circuit class).
Csc grid2d_laplacian(index_t nx, index_t ny);

/// 7-point Laplacian on an nx x ny x nz grid (apache2 class).
Csc grid3d_laplacian(index_t nx, index_t ny, index_t nz);

/// 27-point 3D finite-element stencil with `dofs` unknowns per node, dense
/// dofs x dofs couplings: the audikw_1 / Serena / Hook_1498 class that
/// supernodal solvers handle well.
Csc fem3d(index_t nx, index_t ny, index_t nz, int dofs, std::uint64_t seed);

/// Circuit-simulation style matrix: power-law row degrees (few hub nets with
/// very many connections), unsymmetric, strongly diagonally dominant
/// (ASIC_680k class: highly irregular, hostile to supernode formation).
Csc circuit(index_t n, double avg_degree, double alpha, std::uint64_t seed);

/// KKT saddle-point system [H B'; B -delta*I] where H is a 3D-grid Hessian
/// and B a sparse constraint Jacobian (nlpkkt80 class).
Csc kkt(index_t nx, index_t ny, index_t nz, std::uint64_t seed);

/// Dense-band plus random long-range couplings: the quantum-chemistry class
/// (Si87H76, SiO2, Ga41As41H72) whose factors are nearly dense.
Csc banded_random(index_t n, index_t bandwidth, double band_density,
                  index_t random_per_col, std::uint64_t seed);

/// Directed cage-graph style matrix (cage12 class): unsymmetric pattern from
/// shift-like connectivity, moderate fill but very expensive Schur updates.
Csc cage_style(index_t n, int out_degree, std::uint64_t seed);

/// Genuinely ill-conditioned SPD matrix with condition number ~ kappa: the
/// Dirichlet 5-point Laplacian on an nx x ny grid, diagonally shifted so
/// its smallest eigenvalue drops to lambda_max / kappa (the near-null
/// vector is the smooth sine mode — not a scaling artefact, so no
/// equilibration can repair it). The mixed-precision test matrix
/// (DESIGN.md §14): kappa ~ 1e5 makes FP64 iterative refinement over FP32
/// factors take several sweeps; kappa beyond ~1e8 exceeds what an FP32
/// factorisation can precondition and drives the refinement-stall path.
Csc shifted_illcond(index_t nx, index_t ny, double kappa);

/// Uniform random pattern with ~nnz_per_col entries per column; optionally
/// diagonally dominant. The fuzzing workhorse of the test suite.
Csc random_sparse(index_t n, index_t nnz_per_col, std::uint64_t seed,
                  bool diag_dominant = true);

/// Random unit lower-triangular matrix with the given strictly-lower density.
Csc random_unit_lower(index_t n, double density, std::uint64_t seed);

/// Random upper-triangular matrix with nonzero diagonal.
Csc random_upper(index_t n, double density, std::uint64_t seed);

/// Random rectangular sparse matrix (general pattern).
Csc random_rect(index_t rows, index_t cols, double density, std::uint64_t seed);

/// The 16 matrices of Table 3, by paper name.
std::vector<std::string> paper_matrix_names();

struct PaperMatrixInfo {
  std::string name;
  std::string domain;  // application domain reported by the paper
};
PaperMatrixInfo paper_matrix_info(const std::string& name);

/// Generate the stand-in for a paper matrix. `scale` in (0, 1] shrinks the
/// default dimensions (1.0 ~ bench size, use ~0.3 for unit tests).
Csc paper_matrix(const std::string& name, double scale = 1.0);

}  // namespace pangulu::matgen
