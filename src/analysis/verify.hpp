// Static task-graph verifier (new in PR 2): proves, from the symbolic
// structure alone, that a (block layout, task list, mapping, counter array)
// quadruple is safe to hand to the sync-free scheduler — *before* any
// numeric work runs. The invariants mirror §4.4 of the paper plus the
// fault-recovery remapping added in PR 1:
//
//   I1  task-structure        every task references blocks that exist, at
//                             the coordinates its kind demands, and every
//                             block has exactly one finalising task
//   I2  counter-conservation  each block's sync-free counter equals its
//                             number of SSSSM producers, plus one for the
//                             panel solve on off-diagonal blocks (i.e. one
//                             less on diagonals)
//   I3  schedulability        the dependency DAG is acyclic and every task
//                             is reachable from the initially-ready
//                             frontier — the no-deadlock guarantee
//   I4  mapping-totality      every block is owned by exactly one rank that
//                             is in range and alive (including the states
//                             Mapping::remap_failed_rank produces)
//   I5  message-conservation  every receive a consumer expects has a
//                             matching send under the current mapping, and
//                             no message touches a dead rank
//   I6  rebalance             an elastic Mapping::rebalance step moved only
//                             the blocks it had to (bounded movement), kept
//                             per-rank block counts conserved, left the
//                             mapping total over the live set, and orphaned
//                             no messages (PR 6)
//
// A violation returns StatusCode::kInvariantViolation with a diagnosis of
// the first broken invariant ("invariant violated [counter-conservation]:
// block (3,5) ..."). Levels: kOff skips everything, kCheap runs the
// linear-time checks (I1, task-derived I2, I4), kFull adds the quadratic
// structure recomputation of I2 plus I3 and I5.
#pragma once

#include <string>
#include <vector>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "util/status.hpp"

namespace pangulu::analysis {

enum class VerifyLevel { kOff = 0, kCheap = 1, kFull = 2 };

const char* to_string(VerifyLevel level);

/// What a verification pass looked at (for overhead tracking and tests).
struct VerifyReport {
  std::size_t tasks_checked = 0;
  std::size_t blocks_checked = 0;
  std::size_t edges_checked = 0;     // dependency edges walked (I3)
  std::size_t messages_checked = 0;  // cross-rank logical messages (I5)
  double seconds = 0;
};

// --- Individual invariants -------------------------------------------
// Each returns ok() or kInvariantViolation naming the first offender.
// `alive` marks eligible ranks (empty means "all alive"); pass the
// scheduler's survivor set to validate post-crash remapped states.

/// I1: indices in range, source/target coordinates consistent with the
/// task kind, one GETRF per elimination step, one finaliser per block.
template <class BM>
Status verify_task_structure(const BM& bm,
                             const std::vector<block::Task>& tasks,
                             VerifyReport* report = nullptr);

/// I2: `counters` (the sync-free array the scheduler will trust) matches
/// the update structure. kCheap recounts from the task list; kFull also
/// recomputes the SSSSM producer sets from the first-layer block structure,
/// independently of enumerate_tasks / sync_free_array.
template <class BM>
Status verify_counters(const BM& bm,
                       const std::vector<block::Task>& tasks,
                       const std::vector<index_t>& counters, VerifyLevel level,
                       VerifyReport* report = nullptr);

/// I3: Kahn's algorithm over the dependency DAG derived from the task
/// list; diagnoses cycles and tasks unreachable from the ready frontier.
template <class BM>
Status verify_schedulability(const BM& bm,
                             const std::vector<block::Task>& tasks,
                             VerifyReport* report = nullptr);

/// I4: every block owned by exactly one in-range, alive rank.
template <class BM>
Status verify_mapping(const BM& bm,
                      const block::Mapping& mapping,
                      const std::vector<char>& alive = {},
                      VerifyReport* report = nullptr);

/// I5: sender-side enumeration of cross-rank dependency edges equals the
/// receiver-side enumeration, and no endpoint is dead.
template <class BM>
Status verify_messages(const BM& bm,
                       const std::vector<block::Task>& tasks,
                       const block::Mapping& mapping,
                       const std::vector<char>& alive = {},
                       VerifyReport* report = nullptr);

/// I6: proves a Mapping::rebalance transition `before` -> `after` for
/// `rank` (delta = -1 drain, +1 add) against the post-change live set
/// `alive`. Checks mapping totality of `after` over `alive`, that every
/// block that changed owner involved `rank` (drain: left `rank` for a live
/// rank; add: arrived at `rank`), and that block counts are conserved
/// (drain: `rank` ends empty and others only gain; add: others only lose).
/// kFull additionally re-proves message conservation (I5) on `after` so no
/// in-flight logical message is orphaned by the migration.
template <class BM>
Status verify_rebalance(const BM& bm,
                        const std::vector<block::Task>& tasks,
                        const block::Mapping& before,
                        const block::Mapping& after, rank_t rank, int delta,
                        const std::vector<char>& alive, VerifyLevel level,
                        VerifyReport* report = nullptr);

/// Umbrella: runs the invariants selected by `level` in I1..I5 order and
/// returns the first violation. `counters` is the array the scheduler will
/// run on (typically block::sync_free_array(bm, tasks)).
template <class BM>
Status verify_task_graph(const BM& bm,
                         const std::vector<block::Task>& tasks,
                         const block::Mapping& mapping,
                         const std::vector<index_t>& counters,
                         VerifyLevel level, const std::vector<char>& alive = {},
                         VerifyReport* report = nullptr);

}  // namespace pangulu::analysis
