#include "analysis/verify.hpp"

#include <map>
#include <tuple>

#include "util/timer.hpp"

namespace pangulu::analysis {

namespace {

using block::BlockMatrix;
using block::Mapping;
using block::Task;
using block::TaskKind;

const char* kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::kGetrf: return "GETRF";
    case TaskKind::kGessm: return "GESSM";
    case TaskKind::kTstrf: return "TSTRF";
    case TaskKind::kSsssm: return "SSSSM";
  }
  return "?";
}

template <class BM>
std::string block_str(const BM& bm, nnz_t pos) {
  return "(" + std::to_string(bm.block_row_of(pos)) + "," +
         std::to_string(bm.block_col_of(pos)) + ")";
}

std::string task_str(const std::vector<Task>& tasks, index_t t) {
  const Task& task = tasks[static_cast<std::size_t>(t)];
  return "task #" + std::to_string(t) + " " + kind_name(task.kind) +
         " k=" + std::to_string(task.k) + " target (" +
         std::to_string(task.bi) + "," + std::to_string(task.bj) + ")";
}

Status violation(const char* invariant, const std::string& detail) {
  return Status::invariant_violation(std::string("invariant violated [") +
                                     invariant + "]: " + detail);
}

/// Block position referenced by a task is a valid index into the block list.
template <class BM>
bool pos_ok(const BM& bm, nnz_t pos) {
  return pos >= 0 && pos < static_cast<nnz_t>(bm.n_blocks());
}

/// Finalising task of every block (the single non-SSSSM task targeting it),
/// or an I1 violation. Shared by I3 and I5.
template <class BM>
Status build_finalizers(const BM& bm, const std::vector<Task>& tasks,
                        std::vector<index_t>* fin) {
  fin->assign(static_cast<std::size_t>(bm.n_blocks()), -1);
  for (index_t t = 0; t < static_cast<index_t>(tasks.size()); ++t) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    if (task.kind == TaskKind::kSsssm) continue;
    if (!pos_ok(bm, task.target))
      return violation("task-structure",
                       task_str(tasks, t) + " targets block position " +
                           std::to_string(task.target) + " outside the " +
                           std::to_string(bm.n_blocks()) + "-block list");
    auto& f = (*fin)[static_cast<std::size_t>(task.target)];
    if (f >= 0)
      return violation("task-structure",
                       "block " + block_str(bm, task.target) +
                           " has two finalising tasks (#" + std::to_string(f) +
                           " and #" + std::to_string(t) + ")");
    f = t;
  }
  return Status::ok();
}

}  // namespace

const char* to_string(VerifyLevel level) {
  switch (level) {
    case VerifyLevel::kOff: return "off";
    case VerifyLevel::kCheap: return "cheap";
    case VerifyLevel::kFull: return "full";
  }
  return "?";
}

template <class BM>
Status verify_task_structure(const BM& bm, const std::vector<Task>& tasks,
                             VerifyReport* report) {
  const index_t nb = bm.nb();
  std::vector<char> getrf_at(static_cast<std::size_t>(nb), 0);
  std::vector<index_t> finalizers(static_cast<std::size_t>(bm.n_blocks()), 0);

  for (index_t t = 0; t < static_cast<index_t>(tasks.size()); ++t) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    if (task.k < 0 || task.k >= nb || task.bi < 0 || task.bi >= nb ||
        task.bj < 0 || task.bj >= nb)
      return violation("task-structure", task_str(tasks, t) +
                                             " has coordinates outside the " +
                                             std::to_string(nb) + "x" +
                                             std::to_string(nb) + " block grid");
    if (!pos_ok(bm, task.target) ||
        bm.block_row_of(task.target) != task.bi ||
        bm.block_col_of(task.target) != task.bj)
      return violation("task-structure",
                       task_str(tasks, t) +
                           " target position does not store block (" +
                           std::to_string(task.bi) + "," +
                           std::to_string(task.bj) + ")");

    // A source must exist and sit at the coordinates the kind demands.
    auto check_src = [&](nnz_t src, index_t sbi, index_t sbj,
                         const char* role) -> Status {
      if (!pos_ok(bm, src) || bm.block_row_of(src) != sbi ||
          bm.block_col_of(src) != sbj)
        return violation("task-structure",
                         task_str(tasks, t) + " " + role +
                             " source must be block (" + std::to_string(sbi) +
                             "," + std::to_string(sbj) + ")" +
                             (pos_ok(bm, src)
                                  ? ", found " + block_str(bm, src)
                                  : std::string(", found no block at all")));
      return Status::ok();
    };

    Status s = Status::ok();
    switch (task.kind) {
      case TaskKind::kGetrf:
        if (task.bi != task.k || task.bj != task.k)
          return violation("task-structure",
                           task_str(tasks, t) + " must target the diagonal "
                           "block of its elimination step");
        if (getrf_at[static_cast<std::size_t>(task.k)])
          return violation("task-structure",
                           task_str(tasks, t) + " duplicates the GETRF of "
                           "elimination step " + std::to_string(task.k));
        getrf_at[static_cast<std::size_t>(task.k)] = 1;
        break;
      case TaskKind::kGessm:
        if (task.bi != task.k || task.bj <= task.k)
          return violation("task-structure",
                           task_str(tasks, t) +
                               " must target a block right of the diagonal "
                               "in block-row k");
        s = check_src(task.src_a, task.k, task.k, "diagonal");
        break;
      case TaskKind::kTstrf:
        if (task.bj != task.k || task.bi <= task.k)
          return violation("task-structure",
                           task_str(tasks, t) +
                               " must target a block below the diagonal "
                               "in block-column k");
        s = check_src(task.src_a, task.k, task.k, "diagonal");
        break;
      case TaskKind::kSsssm:
        if (task.bi <= task.k || task.bj <= task.k)
          return violation("task-structure",
                           task_str(tasks, t) +
                               " must target the trailing submatrix of its "
                               "elimination step");
        s = check_src(task.src_a, task.bi, task.k, "L-side");
        if (s.is_ok()) s = check_src(task.src_b, task.k, task.bj, "U-side");
        break;
    }
    if (!s.is_ok()) return s;
    if (task.kind != TaskKind::kSsssm)
      finalizers[static_cast<std::size_t>(task.target)]++;
  }

  for (index_t k = 0; k < nb; ++k) {
    if (!getrf_at[static_cast<std::size_t>(k)])
      return violation("task-structure", "elimination step " +
                                             std::to_string(k) +
                                             " has no GETRF task");
  }
  for (nnz_t pos = 0; pos < static_cast<nnz_t>(bm.n_blocks()); ++pos) {
    if (finalizers[static_cast<std::size_t>(pos)] != 1)
      return violation("task-structure",
                       "block " + block_str(bm, pos) + " has " +
                           std::to_string(finalizers[static_cast<std::size_t>(
                               pos)]) +
                           " finalising tasks (every block needs exactly one)");
  }
  if (report) {
    report->tasks_checked += tasks.size();
    report->blocks_checked += static_cast<std::size_t>(bm.n_blocks());
  }
  return Status::ok();
}

template <class BM>
Status verify_counters(const BM& bm, const std::vector<Task>& tasks,
                       const std::vector<index_t>& counters, VerifyLevel level,
                       VerifyReport* report) {
  const auto n_blocks = static_cast<std::size_t>(bm.n_blocks());
  if (counters.size() != n_blocks)
    return violation("counter-conservation",
                     "counter array has " + std::to_string(counters.size()) +
                         " entries for " + std::to_string(n_blocks) +
                         " blocks");

  // Task-derived expectation: SSSSM producers per block, +1 for the panel
  // solve on off-diagonal blocks (diagonals fire GETRF at zero).
  std::vector<index_t> ssssm_in(n_blocks, 0);
  for (const Task& t : tasks) {
    if (t.kind == TaskKind::kSsssm && pos_ok(bm, t.target))
      ssssm_in[static_cast<std::size_t>(t.target)]++;
  }
  for (std::size_t pos = 0; pos < n_blocks; ++pos) {
    const bool diagonal = bm.block_row_of(static_cast<nnz_t>(pos)) ==
                          bm.block_col_of(static_cast<nnz_t>(pos));
    const index_t expected = ssssm_in[pos] + (diagonal ? 0 : 1);
    if (counters[pos] != expected)
      return violation(
          "counter-conservation",
          "block " + block_str(bm, static_cast<nnz_t>(pos)) + " counter is " +
              std::to_string(counters[pos]) + ", expected " +
              std::to_string(expected) + " (" +
              std::to_string(ssssm_in[pos]) + " SSSSM producers" +
              (diagonal ? ", diagonal" : " + 1 panel solve") + ")");
  }

  if (level == VerifyLevel::kFull) {
    // Independent recomputation of the SSSSM producer counts from the
    // first-layer structure alone (no reliance on the task list): block
    // (bi,bj) receives one update per k < min(bi,bj) whose L-block (bi,k)
    // and U-block (k,bj) have a structurally non-empty product.
    std::vector<index_t> struct_in(n_blocks, 0);
    for (index_t k = 0; k < bm.nb(); ++k) {
      // Row-occupancy flags of each U-side block in block-row k.
      std::vector<std::pair<index_t, std::vector<char>>> uside;  // (bj, occ)
      for (nnz_t rp = bm.row_begin(k); rp < bm.row_end(k); ++rp) {
        const index_t bj = bm.row_block_col(rp);
        if (bj <= k) continue;
        const auto& b = bm.block(bm.row_block_pos(rp));
        std::vector<char> occ(static_cast<std::size_t>(b.n_rows()), 0);
        for (index_t r : b.row_idx()) occ[static_cast<std::size_t>(r)] = 1;
        uside.emplace_back(bj, std::move(occ));
      }
      for (nnz_t cp = bm.col_begin(k); cp < bm.col_end(k); ++cp) {
        const index_t bi = bm.block_row(cp);
        if (bi <= k) continue;
        const auto& a = bm.block(cp);
        for (const auto& [bj, occ] : uside) {
          bool hit = false;
          for (index_t kk = 0; kk < a.n_cols() && !hit; ++kk) {
            hit = a.col_end(kk) > a.col_begin(kk) &&
                  occ[static_cast<std::size_t>(kk)];
          }
          if (!hit) continue;
          const nnz_t target = bm.find_block(bi, bj);
          if (target < 0)
            return violation("counter-conservation",
                             "blocks (" + std::to_string(bi) + "," +
                                 std::to_string(k) + ") x (" +
                                 std::to_string(k) + "," + std::to_string(bj) +
                                 ") produce an update for block (" +
                                 std::to_string(bi) + "," +
                                 std::to_string(bj) +
                                 ") which is absent (closure violated)");
          struct_in[static_cast<std::size_t>(target)]++;
        }
      }
    }
    for (std::size_t pos = 0; pos < n_blocks; ++pos) {
      if (struct_in[pos] != ssssm_in[pos])
        return violation(
            "counter-conservation",
            "block " + block_str(bm, static_cast<nnz_t>(pos)) +
                ": the task list carries " + std::to_string(ssssm_in[pos]) +
                " SSSSM updates but the block structure implies " +
                std::to_string(struct_in[pos]));
    }
  }
  if (report) {
    report->tasks_checked += tasks.size();
    report->blocks_checked += n_blocks;
  }
  return Status::ok();
}

template <class BM>
Status verify_schedulability(const BM& bm, const std::vector<Task>& tasks,
                             VerifyReport* report) {
  const auto nt = static_cast<index_t>(tasks.size());
  std::vector<index_t> fin;
  Status s = build_finalizers(bm, tasks, &fin);
  if (!s.is_ok()) return s;

  // Dependency edges, built defensively (a corrupted task list must produce
  // a diagnosis, never a crash).
  std::vector<index_t> dep(static_cast<std::size_t>(nt), 0);
  std::vector<std::vector<index_t>> out(static_cast<std::size_t>(nt));
  std::size_t edges = 0;
  auto add_edge = [&](index_t from, index_t to) {
    out[static_cast<std::size_t>(from)].push_back(to);
    dep[static_cast<std::size_t>(to)]++;
    ++edges;
  };
  auto finalizer_of = [&](index_t t, nnz_t src, const char* role,
                          index_t* f) -> Status {
    if (!pos_ok(bm, src) || fin[static_cast<std::size_t>(src)] < 0)
      return violation("schedulability",
                       task_str(tasks, t) + " waits on a " + role +
                           " block with no finalising task: it can never run");
    *f = fin[static_cast<std::size_t>(src)];
    return Status::ok();
  };
  for (index_t t = 0; t < nt; ++t) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    index_t f = -1;
    switch (task.kind) {
      case TaskKind::kGetrf:
        break;
      case TaskKind::kGessm:
      case TaskKind::kTstrf:
        s = finalizer_of(t, task.src_a, "diagonal", &f);
        if (!s.is_ok()) return s;
        add_edge(f, t);
        break;
      case TaskKind::kSsssm: {
        s = finalizer_of(t, task.src_a, "L-side", &f);
        if (!s.is_ok()) return s;
        add_edge(f, t);
        s = finalizer_of(t, task.src_b, "U-side", &f);
        if (!s.is_ok()) return s;
        add_edge(f, t);
        if (!pos_ok(bm, task.target) ||
            fin[static_cast<std::size_t>(task.target)] < 0)
          return violation("schedulability",
                           task_str(tasks, t) +
                               " updates a block with no finalising task");
        add_edge(t, fin[static_cast<std::size_t>(task.target)]);
        break;
      }
    }
  }

  // Kahn's algorithm: everything must drain from the initially-ready
  // frontier, or the sync-free scheduler would hang exactly here.
  std::vector<index_t> frontier;
  for (index_t t = 0; t < nt; ++t) {
    if (dep[static_cast<std::size_t>(t)] == 0) frontier.push_back(t);
  }
  if (nt > 0 && frontier.empty())
    return violation("schedulability",
                     "no task is initially ready: total deadlock");
  index_t processed = 0;
  while (!frontier.empty()) {
    const index_t t = frontier.back();
    frontier.pop_back();
    ++processed;
    for (index_t d : out[static_cast<std::size_t>(t)]) {
      if (--dep[static_cast<std::size_t>(d)] == 0) frontier.push_back(d);
    }
  }
  if (processed != nt) {
    index_t stuck = -1;
    for (index_t t = 0; t < nt && stuck < 0; ++t) {
      if (dep[static_cast<std::size_t>(t)] > 0) stuck = t;
    }
    return violation(
        "schedulability",
        std::to_string(nt - processed) +
            " tasks are unreachable from the ready frontier (dependency "
            "cycle); first stuck: " +
            task_str(tasks, stuck) + " with " +
            std::to_string(dep[static_cast<std::size_t>(stuck)]) +
            " unsatisfiable prerequisites");
  }
  if (report) {
    report->tasks_checked += tasks.size();
    report->edges_checked += edges;
  }
  return Status::ok();
}

template <class BM>
Status verify_mapping(const BM& bm, const Mapping& mapping,
                      const std::vector<char>& alive, VerifyReport* report) {
  const auto n_blocks = static_cast<std::size_t>(bm.n_blocks());
  if (mapping.n_ranks < 1)
    return violation("mapping-totality", "mapping has no ranks");
  if (mapping.owner.size() != n_blocks)
    return violation("mapping-totality",
                     "mapping covers " + std::to_string(mapping.owner.size()) +
                         " blocks, layout stores " + std::to_string(n_blocks));
  if (!alive.empty() &&
      alive.size() != static_cast<std::size_t>(mapping.n_ranks))
    return violation("mapping-totality",
                     "alive vector has " + std::to_string(alive.size()) +
                         " entries for " + std::to_string(mapping.n_ranks) +
                         " ranks");
  for (std::size_t pos = 0; pos < n_blocks; ++pos) {
    const rank_t r = mapping.owner[pos];
    if (r < 0 || r >= mapping.n_ranks)
      return violation("mapping-totality",
                       "block " + block_str(bm, static_cast<nnz_t>(pos)) +
                           " is unowned (owner " + std::to_string(r) +
                           " outside the " + std::to_string(mapping.n_ranks) +
                           "-rank cluster)");
    if (!alive.empty() && !alive[static_cast<std::size_t>(r)])
      return violation("mapping-totality",
                       "block " + block_str(bm, static_cast<nnz_t>(pos)) +
                           " is orphaned: owner rank " + std::to_string(r) +
                           " is dead and the block was never re-mapped");
  }
  if (report) report->blocks_checked += n_blocks;
  return Status::ok();
}

template <class BM>
Status verify_messages(const BM& bm, const std::vector<Task>& tasks,
                       const Mapping& mapping, const std::vector<char>& alive,
                       VerifyReport* report) {
  const auto nt = static_cast<index_t>(tasks.size());
  Status s = verify_mapping(bm, mapping, alive, nullptr);
  if (!s.is_ok()) return s;
  std::vector<index_t> fin;
  s = build_finalizers(bm, tasks, &fin);
  if (!s.is_ok()) return s;

  auto rank_of = [&](index_t t) {
    return mapping.owner[static_cast<std::size_t>(
        tasks[static_cast<std::size_t>(t)].target)];
  };
  // Logical message ledger: sends count +1, expected receives count -1;
  // conservation means every key nets to zero. Keyed by the carried block
  // and the (src, dst) rank pair.
  std::map<std::tuple<nnz_t, rank_t, rank_t>, long> ledger;
  std::size_t messages = 0;
  auto send = [&](index_t producer, index_t consumer) {
    const rank_t src = rank_of(producer), dst = rank_of(consumer);
    if (src == dst) return;
    ledger[{tasks[static_cast<std::size_t>(producer)].target, src, dst}]++;
    ++messages;
  };
  auto recv = [&](index_t producer, index_t consumer) {
    const rank_t src = rank_of(producer), dst = rank_of(consumer);
    if (src == dst) return;
    ledger[{tasks[static_cast<std::size_t>(producer)].target, src, dst}]--;
  };

  // Sender side: walk each producer's release edges (the TaskGraph the
  // schedulers execute). Receiver side: each consumer enumerates its own
  // prerequisites. The two traversals must name the same cross-rank edges.
  std::vector<std::vector<index_t>> ssssm_into(
      static_cast<std::size_t>(bm.n_blocks()));
  for (index_t t = 0; t < nt; ++t) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    if (task.kind == TaskKind::kSsssm && pos_ok(bm, task.target))
      ssssm_into[static_cast<std::size_t>(task.target)].push_back(t);
  }
  for (index_t t = 0; t < nt; ++t) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    switch (task.kind) {
      case TaskKind::kGetrf:
        for (index_t p : ssssm_into[static_cast<std::size_t>(task.target)]) {
          send(p, t);  // sender view of the update landing on the diagonal
          recv(p, t);  // receiver view of the same edge
        }
        break;
      case TaskKind::kGessm:
      case TaskKind::kTstrf: {
        const index_t f = fin[static_cast<std::size_t>(task.src_a)];
        send(f, t);
        recv(f, t);
        for (index_t p : ssssm_into[static_cast<std::size_t>(task.target)]) {
          send(p, t);
          recv(p, t);
        }
        break;
      }
      case TaskKind::kSsssm: {
        send(fin[static_cast<std::size_t>(task.src_a)], t);
        recv(fin[static_cast<std::size_t>(task.src_a)], t);
        send(fin[static_cast<std::size_t>(task.src_b)], t);
        recv(fin[static_cast<std::size_t>(task.src_b)], t);
        break;
      }
    }
  }
  for (const auto& [key, net] : ledger) {
    const auto& [pos, src, dst] = key;
    if (net != 0)
      return violation(
          "message-conservation",
          "block " + block_str(bm, pos) + " from rank " + std::to_string(src) +
              " to rank " + std::to_string(dst) +
              (net > 0 ? ": send without a matching expected receive"
                       : ": expected receive without a matching send"));
    if (!alive.empty() && (!alive[static_cast<std::size_t>(src)] ||
                           !alive[static_cast<std::size_t>(dst)]))
      return violation("message-conservation",
                       "block " + block_str(bm, pos) +
                           " must travel from rank " + std::to_string(src) +
                           " to rank " + std::to_string(dst) +
                           " but a dead rank is on that route");
  }
  if (report) {
    report->tasks_checked += tasks.size();
    report->messages_checked += messages;
  }
  return Status::ok();
}

template <class BM>
Status verify_rebalance(const BM& bm, const std::vector<Task>& tasks,
                        const Mapping& before, const Mapping& after,
                        rank_t rank, int delta, const std::vector<char>& alive,
                        VerifyLevel level, VerifyReport* report) {
  if (level == VerifyLevel::kOff) return Status::ok();
  Timer timer;
  if (delta != -1 && delta != 1)
    return violation("rebalance", "delta must be -1 (drain) or +1 (add), got " +
                                      std::to_string(delta));
  if (before.n_ranks != after.n_ranks)
    return violation("rebalance",
                     "rank count changed across rebalance (" +
                         std::to_string(before.n_ranks) + " -> " +
                         std::to_string(after.n_ranks) +
                         "); elastic events keep rank ids stable");
  if (before.owner.size() != after.owner.size())
    return violation("rebalance",
                     "block count changed across rebalance (" +
                         std::to_string(before.owner.size()) + " -> " +
                         std::to_string(after.owner.size()) + ")");
  if (rank < 0 || rank >= after.n_ranks)
    return violation("rebalance", "rebalanced rank " + std::to_string(rank) +
                                      " outside the " +
                                      std::to_string(after.n_ranks) +
                                      "-rank cluster");
  // Totality over the post-change live set: every block owned by an alive
  // rank. This subsumes "the drained rank owns nothing" because a drained
  // rank is dead in `alive`.
  Status s = verify_mapping(bm, after, alive, report);
  if (!s.is_ok()) return s;

  // Bounded movement + count conservation, from the owner diff alone.
  std::vector<nnz_t> gained(static_cast<std::size_t>(after.n_ranks), 0);
  std::vector<nnz_t> lost(static_cast<std::size_t>(after.n_ranks), 0);
  for (std::size_t pos = 0; pos < after.owner.size(); ++pos) {
    const rank_t from = before.owner[pos];
    const rank_t to = after.owner[pos];
    if (from == to) continue;
    if (from < 0 || from >= after.n_ranks)
      return violation("rebalance",
                       "block " + block_str(bm, static_cast<nnz_t>(pos)) +
                           " had out-of-range owner " + std::to_string(from) +
                           " before the rebalance");
    ++lost[static_cast<std::size_t>(from)];
    ++gained[static_cast<std::size_t>(to)];
    if (delta < 0) {
      if (from != rank)
        return violation(
            "rebalance",
            "drain of rank " + std::to_string(rank) + " moved block " +
                block_str(bm, static_cast<nnz_t>(pos)) + " owned by rank " +
                std::to_string(from) + " (movement must be bounded to the "
                "leaver's blocks)");
      if (to == rank || (!alive.empty() && !alive[static_cast<std::size_t>(to)]))
        return violation("rebalance",
                         "drain of rank " + std::to_string(rank) +
                             " sent block " +
                             block_str(bm, static_cast<nnz_t>(pos)) +
                             " to non-live rank " + std::to_string(to));
    } else {
      if (to != rank)
        return violation(
            "rebalance",
            "add of rank " + std::to_string(rank) + " moved block " +
                block_str(bm, static_cast<nnz_t>(pos)) + " to rank " +
                std::to_string(to) + " (only the newcomer may gain blocks)");
    }
  }
  if (delta < 0) {
    nnz_t left = 0;
    for (std::size_t pos = 0; pos < after.owner.size(); ++pos)
      if (after.owner[pos] == rank) ++left;
    if (left != 0)
      return violation("rebalance",
                       "drained rank " + std::to_string(rank) + " still owns " +
                           std::to_string(left) + " blocks");
    // Counter conservation: everything the leaver lost was adopted.
    nnz_t adopted = 0;
    for (rank_t r = 0; r < after.n_ranks; ++r)
      if (r != rank) adopted += gained[static_cast<std::size_t>(r)];
    if (adopted != lost[static_cast<std::size_t>(rank)])
      return violation("rebalance",
                       "drain of rank " + std::to_string(rank) + " lost " +
                           std::to_string(lost[static_cast<std::size_t>(rank)]) +
                           " blocks but survivors adopted " +
                           std::to_string(adopted));
  } else {
    nnz_t donated = 0;
    for (rank_t r = 0; r < after.n_ranks; ++r)
      if (r != rank) donated += lost[static_cast<std::size_t>(r)];
    if (gained[static_cast<std::size_t>(rank)] != donated)
      return violation("rebalance",
                       "add of rank " + std::to_string(rank) + " gained " +
                           std::to_string(gained[static_cast<std::size_t>(rank)]) +
                           " blocks but donors gave up " +
                           std::to_string(donated));
  }

  // No orphaned messages: the post-change mapping must still conserve every
  // logical send/receive over the live set.
  if (level == VerifyLevel::kFull) {
    s = verify_messages(bm, tasks, after, alive, report);
    if (!s.is_ok()) return s;
  }
  if (report) report->seconds += timer.seconds();
  return Status::ok();
}

template <class BM>
Status verify_task_graph(const BM& bm, const std::vector<Task>& tasks,
                         const Mapping& mapping,
                         const std::vector<index_t>& counters,
                         VerifyLevel level, const std::vector<char>& alive,
                         VerifyReport* report) {
  if (level == VerifyLevel::kOff) return Status::ok();
  Timer timer;
  Status s = verify_task_structure(bm, tasks, report);
  if (s.is_ok()) s = verify_counters(bm, tasks, counters, level, report);
  if (s.is_ok()) s = verify_mapping(bm, mapping, alive, report);
  if (level == VerifyLevel::kFull) {
    if (s.is_ok()) s = verify_schedulability(bm, tasks, report);
    if (s.is_ok()) s = verify_messages(bm, tasks, mapping, alive, report);
  }
  if (report) report->seconds += timer.seconds();
  return s;
}


// Explicit instantiations over both precision twins (identical structure,
// so both prove exactly the same invariants).
template Status verify_task_structure(const block::BlockMatrixT<float>&,
                                      const std::vector<Task>&, VerifyReport*);
template Status verify_task_structure(const block::BlockMatrixT<double>&,
                                      const std::vector<Task>&, VerifyReport*);
template Status verify_counters(const block::BlockMatrixT<float>&,
                                const std::vector<Task>&,
                                const std::vector<index_t>&, VerifyLevel,
                                VerifyReport*);
template Status verify_counters(const block::BlockMatrixT<double>&,
                                const std::vector<Task>&,
                                const std::vector<index_t>&, VerifyLevel,
                                VerifyReport*);
template Status verify_schedulability(const block::BlockMatrixT<float>&,
                                      const std::vector<Task>&, VerifyReport*);
template Status verify_schedulability(const block::BlockMatrixT<double>&,
                                      const std::vector<Task>&, VerifyReport*);
template Status verify_mapping(const block::BlockMatrixT<float>&,
                               const Mapping&, const std::vector<char>&,
                               VerifyReport*);
template Status verify_mapping(const block::BlockMatrixT<double>&,
                               const Mapping&, const std::vector<char>&,
                               VerifyReport*);
template Status verify_messages(const block::BlockMatrixT<float>&,
                                const std::vector<Task>&, const Mapping&,
                                const std::vector<char>&, VerifyReport*);
template Status verify_messages(const block::BlockMatrixT<double>&,
                                const std::vector<Task>&, const Mapping&,
                                const std::vector<char>&, VerifyReport*);
template Status verify_rebalance(const block::BlockMatrixT<float>&,
                                 const std::vector<Task>&, const Mapping&,
                                 const Mapping&, rank_t, int,
                                 const std::vector<char>&, VerifyLevel,
                                 VerifyReport*);
template Status verify_rebalance(const block::BlockMatrixT<double>&,
                                 const std::vector<Task>&, const Mapping&,
                                 const Mapping&, rank_t, int,
                                 const std::vector<char>&, VerifyLevel,
                                 VerifyReport*);
template Status verify_task_graph(const block::BlockMatrixT<float>&,
                                  const std::vector<Task>&, const Mapping&,
                                  const std::vector<index_t>&, VerifyLevel,
                                  const std::vector<char>&, VerifyReport*);
template Status verify_task_graph(const block::BlockMatrixT<double>&,
                                  const std::vector<Task>&, const Mapping&,
                                  const std::vector<index_t>&, VerifyLevel,
                                  const std::vector<char>&, VerifyReport*);

}  // namespace pangulu::analysis
