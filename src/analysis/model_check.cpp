#include "analysis/model_check.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_map>
#include <utility>

#include "analysis/verify.hpp"

namespace pangulu::analysis {

const char* to_string(ProtoEventKind kind) {
  switch (kind) {
    case ProtoEventKind::kCommit:
      return "commit";
    case ProtoEventKind::kDeliver:
      return "deliver";
    case ProtoEventKind::kRetransmit:
      return "retransmit";
    case ProtoEventKind::kDrain:
      return "drain";
    case ProtoEventKind::kAdd:
      return "add";
    case ProtoEventKind::kCheckpoint:
      return "checkpoint";
    case ProtoEventKind::kPublish:
      return "publish";
    case ProtoEventKind::kDrop:
      return "drop";
    case ProtoEventKind::kDuplicate:
      return "duplicate";
    case ProtoEventKind::kCrash:
      return "crash";
  }
  return "unknown";
}

const char* to_string(ProtoProperty p) {
  switch (p) {
    case ProtoProperty::kNone:
      return "none";
    case ProtoProperty::kCounterNonNegative:
      return "counter-non-negative";
    case ProtoProperty::kAtMostOnce:
      return "at-most-once";
    case ProtoProperty::kPrematureExecute:
      return "premature-execute";
    case ProtoProperty::kMappingTotality:
      return "mapping-totality";
    case ProtoProperty::kMinRanksFloor:
      return "min-ranks-floor";
    case ProtoProperty::kCheckpointDurability:
      return "checkpoint-durability";
    case ProtoProperty::kOrphanMessage:
      return "orphan-message";
    case ProtoProperty::kDeadlock:
      return "deadlock";
  }
  return "unknown";
}

bool operator==(const ProtoEvent& a, const ProtoEvent& b) {
  return a.kind == b.kind && a.task == b.task && a.edge == b.edge &&
         a.rank == b.rank;
}

bool proto_event_less(const ProtoEvent& a, const ProtoEvent& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.task != b.task) return a.task < b.task;
  if (a.edge != b.edge) return a.edge < b.edge;
  return a.rank < b.rank;
}

std::string to_string(const ProtoEvent& e) {
  std::string s = to_string(e.kind);
  switch (e.kind) {
    case ProtoEventKind::kCommit:
    case ProtoEventKind::kPublish:
      s += "(task=" + std::to_string(e.task) + ")";
      break;
    case ProtoEventKind::kDeliver:
    case ProtoEventKind::kRetransmit:
    case ProtoEventKind::kDrop:
    case ProtoEventKind::kDuplicate:
      s += "(edge=" + std::to_string(e.edge) + ")";
      break;
    case ProtoEventKind::kDrain:
    case ProtoEventKind::kAdd:
      s += "(plan=" + std::to_string(e.edge) +
           ", rank=" + std::to_string(e.rank) + ")";
      break;
    case ProtoEventKind::kCrash:
      s += "(rank=" + std::to_string(e.rank) + ")";
      break;
    case ProtoEventKind::kCheckpoint:
      break;
  }
  return s;
}

namespace {

// Per dependency-edge message lifecycle. A cross-rank edge travels
// none -> inflight -> {counted-msg | lost -> inflight -> ...}; a same-rank
// edge jumps none -> counted at the producer's commit. The counted-msg /
// counted split remembers whether a real message was ever sent, so the
// late-duplicate adversary only targets edges that had one.
enum EdgeState : char {
  kEdgeNone = 0,
  kEdgeInflight = 1,
  kEdgeLost = 2,
  kEdgeCounted = 3,     // applied, was always rank-local
  kEdgeCountedMsg = 4,  // applied via a delivered message
};

struct Ctx {
  /// Type-erased I6 re-proof bound to the caller's block matrix: the
  /// protocol interpreter itself is structure-only, so it never needs the
  /// (precision-templated) block matrix beyond this closure.
  std::function<Status(const block::Mapping& before,
                       const block::Mapping& after, rank_t rank, int delta,
                       const std::vector<char>& alive)>
      rebalance_proof;
  const std::vector<block::Task>* tasks = nullptr;
  const ModelOptions* opts = nullptr;
  rank_t n_ranks = 0;
  index_t nt = 0;
  nnz_t ne = 0;
  block::TaskAdjacency g;
  std::vector<index_t> edge_src;  // edge id (index into g.out_adj) -> source
  std::vector<nnz_t> in_ptr;      // task -> [in_ptr[t], in_ptr[t+1]) in-edges
  std::vector<nnz_t> in_edge;
  std::vector<char> crashable;
};

// The exact protocol state. Everything up to and including `last_ckpt` is
// part of the dedup identity; the trailing counters are replay statistics
// that provably follow from the path, not the state, and are excluded.
struct ProtoState {
  std::vector<char> committed;
  std::vector<char> published;
  std::vector<std::int32_t> rem;  // sync-free remaining-update counters
  std::vector<char> edge;         // EdgeState per dependency edge
  std::vector<char> alive;
  std::vector<char> crashed;
  std::vector<char> efired;  // elastic plan entries already fired
  block::Mapping mapping;
  std::int32_t drops_left = 0;
  std::int32_t dups_left = 0;
  std::int32_t crashes_left = 0;
  std::int32_t ckpts_left = 0;
  index_t commits = 0;
  index_t last_ckpt = 0;

  // Statistics (not part of the identity).
  std::int64_t messages = 0;
  std::int64_t retransmits = 0;
  std::int64_t dups_suppressed = 0;
  std::int64_t crashes = 0;
  std::int64_t drains = 0;
  std::int64_t adds = 0;
  std::int64_t ckpts = 0;
  nnz_t remapped = 0;
  nnz_t migrated = 0;
};

template <class T>
void append_pod_vec(std::string* key, const std::vector<T>& v) {
  key->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

void append_i32(std::string* key, std::int32_t v) {
  key->append(reinterpret_cast<const char*>(&v), sizeof v);
}

void serialize(const ProtoState& st, std::string* key) {
  key->clear();
  append_pod_vec(key, st.committed);
  append_pod_vec(key, st.published);
  append_pod_vec(key, st.rem);
  append_pod_vec(key, st.edge);
  append_pod_vec(key, st.alive);
  append_pod_vec(key, st.crashed);
  append_pod_vec(key, st.efired);
  append_pod_vec(key, st.mapping.owner);
  append_i32(key, st.drops_left);
  append_i32(key, st.dups_left);
  append_i32(key, st.crashes_left);
  append_i32(key, st.ckpts_left);
  append_i32(key, st.last_ckpt);
}

rank_t owner_of_task(const Ctx& ctx, const ProtoState& st, index_t t) {
  return st.mapping
      .owner[static_cast<std::size_t>((*ctx.tasks)[static_cast<std::size_t>(t)]
                                          .target)];
}

rank_t live_count(const ProtoState& st) {
  rank_t n = 0;
  for (char a : st.alive) n += (a != 0) ? 1 : 0;
  return n;
}

template <class BM>
Status init_ctx(const BM& bm, const std::vector<block::Task>& tasks,
                const block::Mapping& mapping, const ModelOptions& opts,
                Ctx* ctx) {
  if (tasks.empty())
    return Status::invalid_argument("model check: empty task list");
  if (mapping.n_ranks < 1)
    return Status::invalid_argument("model check: mapping has no ranks");
  if (static_cast<index_t>(mapping.owner.size()) != bm.n_blocks())
    return Status::invalid_argument(
        "model check: mapping size " + std::to_string(mapping.owner.size()) +
        " does not match block count " + std::to_string(bm.n_blocks()));
  if (opts.max_drops < 0 || opts.max_duplicates < 0 || opts.max_crashes < 0 ||
      opts.max_checkpoints < 0)
    return Status::invalid_argument("model check: negative fault budget");
  if (opts.min_ranks < 1 || opts.min_ranks > mapping.n_ranks)
    return Status::invalid_argument(
        "model check: min_ranks " + std::to_string(opts.min_ranks) +
        " outside [1, " + std::to_string(mapping.n_ranks) + "]");
  if (!opts.initially_alive.empty() &&
      static_cast<rank_t>(opts.initially_alive.size()) != mapping.n_ranks)
    return Status::invalid_argument(
        "model check: initially_alive size does not match rank count");
  for (std::size_t i = 0; i < opts.elastic.size(); ++i) {
    const ModelOptions::ElasticEvent& ev = opts.elastic[i];
    if (ev.rank < 0 || ev.rank >= mapping.n_ranks)
      return Status::invalid_argument("model check: elastic entry " +
                                      std::to_string(i) +
                                      " names out-of-range rank " +
                                      std::to_string(ev.rank));
    if (ev.at_commit < 0 ||
        ev.at_commit > static_cast<index_t>(tasks.size()))
      return Status::invalid_argument("model check: elastic entry " +
                                      std::to_string(i) +
                                      " has out-of-range at_commit " +
                                      std::to_string(ev.at_commit));
  }
  for (rank_t r : opts.crashable)
    if (r < 0 || r >= mapping.n_ranks)
      return Status::invalid_argument(
          "model check: crashable rank out of range");
  for (const block::Task& t : tasks)
    if (t.target < 0 || t.target >= static_cast<nnz_t>(bm.n_blocks()))
      return Status::invalid_argument(
          "model check: task targets out-of-range block");

  ctx->rebalance_proof = [&bm, &tasks](const block::Mapping& before,
                                       const block::Mapping& after,
                                       rank_t rank, int delta,
                                       const std::vector<char>& alive) {
    return verify_rebalance(bm, tasks, before, after, rank, delta, alive,
                            VerifyLevel::kCheap);
  };
  ctx->tasks = &tasks;
  ctx->opts = &opts;
  ctx->n_ranks = mapping.n_ranks;
  ctx->nt = static_cast<index_t>(tasks.size());
  ctx->g = block::TaskAdjacency::build(bm, tasks);
  ctx->ne = static_cast<nnz_t>(ctx->g.out_adj.size());

  ctx->edge_src.assign(ctx->g.out_adj.size(), -1);
  std::vector<nnz_t> indeg(static_cast<std::size_t>(ctx->nt) + 1, 0);
  for (index_t t = 0; t < ctx->nt; ++t)
    for (nnz_t e = ctx->g.out_ptr[static_cast<std::size_t>(t)];
         e < ctx->g.out_ptr[static_cast<std::size_t>(t) + 1]; ++e) {
      ctx->edge_src[static_cast<std::size_t>(e)] = t;
      ++indeg[static_cast<std::size_t>(
                  ctx->g.out_adj[static_cast<std::size_t>(e)]) +
              1];
    }
  ctx->in_ptr.assign(static_cast<std::size_t>(ctx->nt) + 1, 0);
  for (index_t t = 0; t < ctx->nt; ++t)
    ctx->in_ptr[static_cast<std::size_t>(t) + 1] =
        ctx->in_ptr[static_cast<std::size_t>(t)] +
        indeg[static_cast<std::size_t>(t) + 1];
  ctx->in_edge.assign(ctx->g.out_adj.size(), -1);
  std::vector<nnz_t> cursor(ctx->in_ptr.begin(), ctx->in_ptr.end() - 1);
  for (nnz_t e = 0; e < ctx->ne; ++e) {
    index_t d = ctx->g.out_adj[static_cast<std::size_t>(e)];
    ctx->in_edge[static_cast<std::size_t>(cursor[static_cast<std::size_t>(d)]++)] =
        e;
  }
  for (index_t t = 0; t < ctx->nt; ++t) {
    nnz_t deg = ctx->in_ptr[static_cast<std::size_t>(t) + 1] -
                ctx->in_ptr[static_cast<std::size_t>(t)];
    PANGULU_CHECK(deg == static_cast<nnz_t>(
                             ctx->g.dep[static_cast<std::size_t>(t)]),
                  "task in-degree disagrees with sync-free counter");
  }

  ctx->crashable.assign(static_cast<std::size_t>(ctx->n_ranks),
                        opts.crashable.empty() ? char(1) : char(0));
  for (rank_t r : opts.crashable)
    ctx->crashable[static_cast<std::size_t>(r)] = 1;
  return Status::ok();
}

Status init_state(const Ctx& ctx, const block::Mapping& mapping,
                  ProtoState* st) {
  const ModelOptions& opts = *ctx.opts;
  st->committed.assign(static_cast<std::size_t>(ctx.nt), 0);
  st->published.assign(static_cast<std::size_t>(ctx.nt), 0);
  st->rem.resize(static_cast<std::size_t>(ctx.nt));
  for (index_t t = 0; t < ctx.nt; ++t) {
    std::int32_t dep = ctx.g.dep[static_cast<std::size_t>(t)];
    if (opts.mutations.counter_off_by_one && dep >= 1) dep -= 1;
    st->rem[static_cast<std::size_t>(t)] = dep;
  }
  st->edge.assign(static_cast<std::size_t>(ctx.ne), kEdgeNone);
  st->alive.assign(static_cast<std::size_t>(ctx.n_ranks), 1);
  if (!opts.initially_alive.empty()) st->alive = opts.initially_alive;
  st->crashed.assign(static_cast<std::size_t>(ctx.n_ranks), 0);
  st->efired.assign(opts.elastic.size(), 0);
  st->mapping = mapping;
  st->drops_left = opts.max_drops;
  st->dups_left = opts.max_duplicates;
  st->crashes_left = opts.max_crashes;
  st->ckpts_left = opts.max_checkpoints;

  if (live_count(*st) < 1)
    return Status::invalid_argument("model check: no rank initially alive");
  // Provisioned-idle ranks hand their blocks over before the first commit,
  // mirroring the DES's initially_active handling.
  for (rank_t r = 0; r < ctx.n_ranks; ++r) {
    if (st->alive[static_cast<std::size_t>(r)]) continue;
    if (st->mapping.rebalance(r, -1, st->alive) < 0)
      return Status::invalid_argument(
          "model check: cannot re-home blocks of initially-idle rank " +
          std::to_string(r));
  }
  for (rank_t o : st->mapping.owner)
    if (o < 0 || o >= ctx.n_ranks || !st->alive[static_cast<std::size_t>(o)])
      return Status::invalid_argument(
          "model check: initial mapping assigns a block to inactive rank " +
          std::to_string(o));
  return Status::ok();
}

// --- Event enumeration -------------------------------------------------

void enabled_events(const Ctx& ctx, const ProtoState& st,
                    std::vector<ProtoEvent>* out) {
  out->clear();
  const ProtocolMutations& mut = ctx.opts->mutations;
  for (index_t t = 0; t < ctx.nt; ++t)
    if (!st.committed[static_cast<std::size_t>(t)] &&
        st.rem[static_cast<std::size_t>(t)] <= 0 &&
        st.alive[static_cast<std::size_t>(owner_of_task(ctx, st, t))])
      out->push_back({ProtoEventKind::kCommit, t, -1, -1});
  for (nnz_t e = 0; e < ctx.ne; ++e)
    if (st.edge[static_cast<std::size_t>(e)] == kEdgeInflight)
      out->push_back({ProtoEventKind::kDeliver, -1, e, -1});
  if (!mut.skip_retransmit)
    for (nnz_t e = 0; e < ctx.ne; ++e)
      if (st.edge[static_cast<std::size_t>(e)] == kEdgeLost)
        out->push_back({ProtoEventKind::kRetransmit, -1, e, -1});
  const rank_t live = live_count(st);
  for (std::size_t i = 0; i < ctx.opts->elastic.size(); ++i) {
    const ModelOptions::ElasticEvent& ev = ctx.opts->elastic[i];
    if (st.efired[i] || st.commits < ev.at_commit) continue;
    if (ev.is_add) {
      if (!st.alive[static_cast<std::size_t>(ev.rank)] &&
          !st.crashed[static_cast<std::size_t>(ev.rank)])
        out->push_back({ProtoEventKind::kAdd, -1, static_cast<nnz_t>(i),
                        ev.rank});
    } else {
      if (st.alive[static_cast<std::size_t>(ev.rank)] &&
          (mut.drain_ignores_min_ranks || live - 1 >= ctx.opts->min_ranks))
        out->push_back({ProtoEventKind::kDrain, -1, static_cast<nnz_t>(i),
                        ev.rank});
    }
  }
  if (st.ckpts_left > 0 && st.commits > st.last_ckpt)
    out->push_back({ProtoEventKind::kCheckpoint, -1, -1, -1});
  if (mut.commit_before_publish)
    for (index_t t = 0; t < ctx.nt; ++t)
      if (st.committed[static_cast<std::size_t>(t)] &&
          !st.published[static_cast<std::size_t>(t)])
        out->push_back({ProtoEventKind::kPublish, t, -1, -1});
  if (st.drops_left > 0)
    for (nnz_t e = 0; e < ctx.ne; ++e)
      if (st.edge[static_cast<std::size_t>(e)] == kEdgeInflight)
        out->push_back({ProtoEventKind::kDrop, -1, e, -1});
  if (st.dups_left > 0)
    for (nnz_t e = 0; e < ctx.ne; ++e)
      if (st.edge[static_cast<std::size_t>(e)] == kEdgeCountedMsg)
        out->push_back({ProtoEventKind::kDuplicate, -1, e, -1});
  if (st.crashes_left > 0 && live >= 2)
    for (rank_t r = 0; r < ctx.n_ranks; ++r)
      if (st.alive[static_cast<std::size_t>(r)] &&
          ctx.crashable[static_cast<std::size_t>(r)])
        out->push_back({ProtoEventKind::kCrash, -1, -1, r});
}

// --- Transition execution ----------------------------------------------

std::string task_label(const Ctx& ctx, index_t t) {
  const block::Task& tk = (*ctx.tasks)[static_cast<std::size_t>(t)];
  return "task " + std::to_string(t) + " (k=" + std::to_string(tk.k) +
         ", block " + std::to_string(tk.bi) + "," + std::to_string(tk.bj) +
         ")";
}

ProtoProperty check_totality(const Ctx& ctx, const ProtoState& st,
                             const char* after_what, std::string* detail) {
  for (std::size_t pos = 0; pos < st.mapping.owner.size(); ++pos) {
    rank_t o = st.mapping.owner[pos];
    if (o < 0 || o >= ctx.n_ranks || !st.alive[static_cast<std::size_t>(o)]) {
      *detail = std::string("block ") + std::to_string(pos) +
                " owned by dead rank " + std::to_string(o) + " after " +
                after_what;
      return ProtoProperty::kMappingTotality;
    }
  }
  return ProtoProperty::kNone;
}

/// Execute `ev` on `st`. The caller guarantees admissibility (the event was
/// enumerated by enabled_events, or vetted by event_admissible); the one
/// deliberate exception is a replayed commit of an already-committed task,
/// which reports kAtMostOnce. Returns kNone or the violated property.
ProtoProperty step(const Ctx& ctx, ProtoState* st, const ProtoEvent& ev,
                   std::string* detail) {
  const ProtocolMutations& mut = ctx.opts->mutations;
  switch (ev.kind) {
    case ProtoEventKind::kCommit: {
      const index_t t = ev.task;
      if (st->committed[static_cast<std::size_t>(t)]) {
        *detail = task_label(ctx, t) +
                  " committed twice: its kernel would apply numerics a "
                  "second time";
        return ProtoProperty::kAtMostOnce;
      }
      for (nnz_t i = ctx.in_ptr[static_cast<std::size_t>(t)];
           i < ctx.in_ptr[static_cast<std::size_t>(t) + 1]; ++i) {
        const nnz_t e = ctx.in_edge[static_cast<std::size_t>(i)];
        if (st->edge[static_cast<std::size_t>(e)] < kEdgeCounted) {
          *detail = task_label(ctx, t) +
                    " became ready before its dependency from " +
                    task_label(ctx, ctx.edge_src[static_cast<std::size_t>(e)]) +
                    " arrived (edge " + std::to_string(e) + ")";
          return ProtoProperty::kPrematureExecute;
        }
      }
      st->committed[static_cast<std::size_t>(t)] = 1;
      st->commits += 1;
      if (!mut.commit_before_publish)
        st->published[static_cast<std::size_t>(t)] = 1;
      const rank_t ro = owner_of_task(ctx, *st, t);
      for (nnz_t e = ctx.g.out_ptr[static_cast<std::size_t>(t)];
           e < ctx.g.out_ptr[static_cast<std::size_t>(t) + 1]; ++e) {
        const index_t d = ctx.g.out_adj[static_cast<std::size_t>(e)];
        if (owner_of_task(ctx, *st, d) == ro) {
          st->edge[static_cast<std::size_t>(e)] = kEdgeCounted;
          if (--st->rem[static_cast<std::size_t>(d)] < 0) {
            *detail = "sync-free counter of " + task_label(ctx, d) +
                      " went negative on local completion of " +
                      task_label(ctx, t);
            return ProtoProperty::kCounterNonNegative;
          }
        } else {
          st->edge[static_cast<std::size_t>(e)] = kEdgeInflight;
        }
      }
      return ProtoProperty::kNone;
    }
    case ProtoEventKind::kDeliver: {
      const nnz_t e = ev.edge;
      const index_t d = ctx.g.out_adj[static_cast<std::size_t>(e)];
      st->edge[static_cast<std::size_t>(e)] = kEdgeCountedMsg;
      st->messages += 1;
      if (--st->rem[static_cast<std::size_t>(d)] < 0) {
        *detail = "sync-free counter of " + task_label(ctx, d) +
                  " went negative on delivery of edge " + std::to_string(e);
        return ProtoProperty::kCounterNonNegative;
      }
      return ProtoProperty::kNone;
    }
    case ProtoEventKind::kDrop:
      st->edge[static_cast<std::size_t>(ev.edge)] = kEdgeLost;
      st->drops_left -= 1;
      return ProtoProperty::kNone;
    case ProtoEventKind::kRetransmit:
      st->edge[static_cast<std::size_t>(ev.edge)] = kEdgeInflight;
      st->retransmits += 1;
      return ProtoProperty::kNone;
    case ProtoEventKind::kDuplicate: {
      st->dups_left -= 1;
      if (mut.skip_ack_dedup) {
        const index_t d = ctx.g.out_adj[static_cast<std::size_t>(ev.edge)];
        if (--st->rem[static_cast<std::size_t>(d)] < 0) {
          *detail = "duplicate delivery of edge " + std::to_string(ev.edge) +
                    " applied twice: sync-free counter of " +
                    task_label(ctx, d) + " went negative";
          return ProtoProperty::kCounterNonNegative;
        }
      } else {
        st->dups_suppressed += 1;
      }
      return ProtoProperty::kNone;
    }
    case ProtoEventKind::kCrash: {
      const rank_t r = ev.rank;
      st->crashes_left -= 1;
      st->crashes += 1;
      st->alive[static_cast<std::size_t>(r)] = 0;
      st->crashed[static_cast<std::size_t>(r)] = 1;
      const block::Mapping before = st->mapping;
      const nnz_t moved = st->mapping.remap_failed_rank(r, st->alive);
      PANGULU_CHECK(moved >= 0, "crash remap found no survivor");
      st->remapped += moved;
      if (mut.crash_remap_drops_block) {
        for (std::size_t pos = 0; pos < before.owner.size(); ++pos)
          if (before.owner[pos] == r) {
            st->mapping.owner[pos] = r;  // seeded bug: one block forgotten
            break;
          }
      }
      return check_totality(ctx, *st,
                            ("crash of rank " + std::to_string(r)).c_str(),
                            detail);
    }
    case ProtoEventKind::kDrain: {
      const rank_t r = ev.rank;
      st->efired[static_cast<std::size_t>(ev.edge)] = 1;
      st->drains += 1;
      st->alive[static_cast<std::size_t>(r)] = 0;
      if (live_count(*st) < ctx.opts->min_ranks) {
        *detail = "drain of rank " + std::to_string(r) +
                  " left " + std::to_string(live_count(*st)) +
                  " live ranks, below min_ranks " +
                  std::to_string(ctx.opts->min_ranks);
        return ProtoProperty::kMinRanksFloor;
      }
      const block::Mapping before = st->mapping;
      std::vector<nnz_t> moved_pos;
      const nnz_t moved = st->mapping.rebalance(r, -1, st->alive, &moved_pos);
      PANGULU_CHECK(moved >= 0, "drain rebalance found no adopter");
      st->migrated += moved;
      if (mut.skip_rebalance_proof) {
        // Seeded bug: the rebalance leaves one block behind AND the I6
        // re-proof that would catch it is skipped.
        if (!moved_pos.empty())
          st->mapping.owner[static_cast<std::size_t>(moved_pos[0])] = r;
      } else {
        Status proof =
            ctx.rebalance_proof(before, st->mapping, r, -1, st->alive);
        if (!proof.is_ok()) {
          *detail = proof.message();
          return ProtoProperty::kMappingTotality;
        }
      }
      return check_totality(ctx, *st,
                            ("drain of rank " + std::to_string(r)).c_str(),
                            detail);
    }
    case ProtoEventKind::kAdd: {
      const rank_t r = ev.rank;
      st->efired[static_cast<std::size_t>(ev.edge)] = 1;
      st->adds += 1;
      st->alive[static_cast<std::size_t>(r)] = 1;
      const block::Mapping before = st->mapping;
      const nnz_t moved = st->mapping.rebalance(r, +1, st->alive);
      PANGULU_CHECK(moved >= 0, "add rebalance failed");
      st->migrated += moved;
      if (!mut.skip_rebalance_proof) {
        Status proof =
            ctx.rebalance_proof(before, st->mapping, r, +1, st->alive);
        if (!proof.is_ok()) {
          *detail = proof.message();
          return ProtoProperty::kMappingTotality;
        }
      }
      return check_totality(ctx, *st,
                            ("add of rank " + std::to_string(r)).c_str(),
                            detail);
    }
    case ProtoEventKind::kCheckpoint: {
      st->ckpts_left -= 1;
      st->ckpts += 1;
      st->last_ckpt = st->commits;
      for (index_t t = 0; t < ctx.nt; ++t)
        if (st->committed[static_cast<std::size_t>(t)] &&
            !st->published[static_cast<std::size_t>(t)]) {
          *detail = "checkpoint at commit " + std::to_string(st->commits) +
                    " covers " + task_label(ctx, t) +
                    " whose ABFT checksum is not yet published: a resume "
                    "could not audit it";
          return ProtoProperty::kCheckpointDurability;
        }
      return ProtoProperty::kNone;
    }
    case ProtoEventKind::kPublish:
      st->published[static_cast<std::size_t>(ev.task)] = 1;
      return ProtoProperty::kNone;
  }
  return ProtoProperty::kNone;
}

/// State-level premature-execution scan: a commit that is *enabled* (the
/// sync-free counter says ready) while one of its inputs has not arrived is
/// already the bug, whether or not the search happens to fire that commit
/// next. In the correct protocol a counter only reaches zero when every
/// in-edge is counted, so this never triggers on healthy runs; under
/// counter-initialisation or dedup mutations it catches the earliest state
/// where a kernel could consume a missing block. Returns the premature
/// commit event through `out` so the counterexample stays replayable (the
/// replayed commit re-detects the violation in step()).
bool premature_ready_commit(const Ctx& ctx, const std::vector<ProtoEvent>& en,
                            const ProtoState& st, ProtoEvent* out,
                            std::string* detail) {
  for (const ProtoEvent& ev : en) {
    if (ev.kind != ProtoEventKind::kCommit) continue;
    for (nnz_t i = ctx.in_ptr[static_cast<std::size_t>(ev.task)];
         i < ctx.in_ptr[static_cast<std::size_t>(ev.task) + 1]; ++i) {
      const nnz_t e = ctx.in_edge[static_cast<std::size_t>(i)];
      if (st.edge[static_cast<std::size_t>(e)] < kEdgeCounted) {
        *out = ev;
        *detail = task_label(ctx, ev.task) +
                  " is ready to execute before its dependency from " +
                  task_label(ctx,
                             ctx.edge_src[static_cast<std::size_t>(e)]) +
                  " arrived (edge " + std::to_string(e) + ")";
        return true;
      }
    }
  }
  return false;
}

/// Terminal-state properties: nothing enabled, so every message must have
/// been applied and every task committed.
ProtoProperty terminal_violation(const Ctx& ctx, const ProtoState& st,
                                 std::string* detail) {
  for (nnz_t e = 0; e < ctx.ne; ++e) {
    const char s = st.edge[static_cast<std::size_t>(e)];
    if (s == kEdgeInflight || s == kEdgeLost) {
      *detail = std::string("terminal state leaves edge ") +
                std::to_string(e) + " from " +
                task_label(ctx, ctx.edge_src[static_cast<std::size_t>(e)]) +
                " to " +
                task_label(ctx,
                           ctx.g.out_adj[static_cast<std::size_t>(e)]) +
                (s == kEdgeLost ? " lost with no retransmit pending"
                                : " still in flight");
      return ProtoProperty::kOrphanMessage;
    }
  }
  index_t missing = 0;
  index_t first = -1;
  for (index_t t = 0; t < ctx.nt; ++t)
    if (!st.committed[static_cast<std::size_t>(t)]) {
      if (first < 0) first = t;
      ++missing;
    }
  if (missing > 0) {
    *detail = "terminal state with " + std::to_string(missing) +
              " uncommitted tasks; first stuck: " + task_label(ctx, first);
    return ProtoProperty::kDeadlock;
  }
  return ProtoProperty::kNone;
}

// --- Independence for sleep sets ---------------------------------------

bool is_global_event(ProtoEventKind k) {
  // Crash/drain/add mutate the mapping (read by every commit's owner
  // lookup); checkpoint reads the global commit counter and publish bits;
  // publish feeds checkpoint. Treating them as dependent with everything is
  // a sound over-approximation and they are rare.
  return k == ProtoEventKind::kCrash || k == ProtoEventKind::kDrain ||
         k == ProtoEventKind::kAdd || k == ProtoEventKind::kCheckpoint ||
         k == ProtoEventKind::kPublish;
}

bool commit_touches_task(const Ctx& ctx, index_t t, index_t x) {
  if (t == x) return true;
  for (nnz_t e = ctx.g.out_ptr[static_cast<std::size_t>(t)];
       e < ctx.g.out_ptr[static_cast<std::size_t>(t) + 1]; ++e)
    if (ctx.g.out_adj[static_cast<std::size_t>(e)] == x) return true;
  return false;
}

bool commit_touches_edge(const Ctx& ctx, index_t t, nnz_t e) {
  return ctx.edge_src[static_cast<std::size_t>(e)] == t ||
         ctx.g.out_adj[static_cast<std::size_t>(e)] == t;
}

struct MsgFoot {
  index_t task = -1;  // rem[] cell written (-1: none)
  nnz_t edge = -1;
  int budget = 0;  // 1: drop budget, 2: duplicate budget
};

MsgFoot msg_foot(const Ctx& ctx, const ProtoEvent& ev) {
  MsgFoot f;
  f.edge = ev.edge;
  switch (ev.kind) {
    case ProtoEventKind::kDeliver:
      f.task = ctx.g.out_adj[static_cast<std::size_t>(ev.edge)];
      break;
    case ProtoEventKind::kDuplicate:
      f.task = ctx.g.out_adj[static_cast<std::size_t>(ev.edge)];
      f.budget = 2;
      break;
    case ProtoEventKind::kDrop:
      f.budget = 1;
      break;
    default:
      break;
  }
  return f;
}

/// Conservative static dependence: two events are independent only when
/// their read/write footprints (task counters+commit bits, edge states,
/// fault budgets) are provably disjoint in every state. Independent events
/// commute and never enable/disable each other, which is what the sleep-set
/// reduction requires.
bool dependent(const Ctx& ctx, const ProtoEvent& a, const ProtoEvent& b) {
  if (is_global_event(a.kind) || is_global_event(b.kind)) return true;
  const bool a_commit = a.kind == ProtoEventKind::kCommit;
  const bool b_commit = b.kind == ProtoEventKind::kCommit;
  if (a_commit && b_commit) {
    if (commit_touches_task(ctx, a.task, b.task) ||
        commit_touches_task(ctx, b.task, a.task))
      return true;
    // Shared dependent: both decrement the same downstream counter.
    for (nnz_t ea = ctx.g.out_ptr[static_cast<std::size_t>(a.task)];
         ea < ctx.g.out_ptr[static_cast<std::size_t>(a.task) + 1]; ++ea)
      for (nnz_t eb = ctx.g.out_ptr[static_cast<std::size_t>(b.task)];
           eb < ctx.g.out_ptr[static_cast<std::size_t>(b.task) + 1]; ++eb)
        if (ctx.g.out_adj[static_cast<std::size_t>(ea)] ==
            ctx.g.out_adj[static_cast<std::size_t>(eb)])
          return true;
    return false;
  }
  if (a_commit || b_commit) {
    const index_t t = a_commit ? a.task : b.task;
    const MsgFoot f = msg_foot(ctx, a_commit ? b : a);
    if (commit_touches_edge(ctx, t, f.edge)) return true;
    if (f.task >= 0 && commit_touches_task(ctx, t, f.task)) return true;
    return false;
  }
  const MsgFoot fa = msg_foot(ctx, a);
  const MsgFoot fb = msg_foot(ctx, b);
  if (fa.edge == fb.edge) return true;
  if (fa.task >= 0 && fa.task == fb.task) return true;
  if (fa.budget != 0 && fa.budget == fb.budget) return true;
  return false;
}

std::vector<ProtoEvent> subtract(const std::vector<ProtoEvent>& from,
                                 const std::vector<ProtoEvent>& minus) {
  std::vector<ProtoEvent> out;
  out.reserve(from.size());
  for (const ProtoEvent& e : from)
    if (std::find(minus.begin(), minus.end(), e) == minus.end())
      out.push_back(e);
  return out;
}

std::vector<ProtoEvent> intersect(const std::vector<ProtoEvent>& a,
                                  const std::vector<ProtoEvent>& b) {
  std::vector<ProtoEvent> out;
  for (const ProtoEvent& e : a)
    if (std::find(b.begin(), b.end(), e) != b.end()) out.push_back(e);
  return out;
}

// --- Replay (shared by forced_schedule, the minimiser, and tests) -------

bool event_admissible(const Ctx& ctx, const ProtoState& st,
                      const ProtoEvent& ev, std::string* why) {
  const ProtocolMutations& mut = ctx.opts->mutations;
  auto fail = [&](const std::string& m) {
    *why = m;
    return false;
  };
  switch (ev.kind) {
    case ProtoEventKind::kCommit: {
      if (ev.task < 0 || ev.task >= ctx.nt)
        return fail("commit of out-of-range task");
      if (st.rem[static_cast<std::size_t>(ev.task)] > 0)
        return fail(
            task_label(ctx, ev.task) + " is not ready (counter " +
            std::to_string(st.rem[static_cast<std::size_t>(ev.task)]) + ")");
      const rank_t o = owner_of_task(ctx, st, ev.task);
      if (!st.alive[static_cast<std::size_t>(o)])
        return fail(task_label(ctx, ev.task) + " owned by dead rank " +
                    std::to_string(o));
      return true;  // already-committed allowed: surfaces kAtMostOnce
    }
    case ProtoEventKind::kDeliver:
    case ProtoEventKind::kDrop:
      if (ev.edge < 0 || ev.edge >= ctx.ne)
        return fail("message event on out-of-range edge");
      if (st.edge[static_cast<std::size_t>(ev.edge)] != kEdgeInflight)
        return fail("edge " + std::to_string(ev.edge) + " is not in flight");
      if (ev.kind == ProtoEventKind::kDrop && st.drops_left <= 0)
        return fail("drop budget exhausted");
      return true;
    case ProtoEventKind::kRetransmit:
      if (ev.edge < 0 || ev.edge >= ctx.ne)
        return fail("retransmit of out-of-range edge");
      if (mut.skip_retransmit)
        return fail("retransmit disabled by skip_retransmit mutation");
      if (st.edge[static_cast<std::size_t>(ev.edge)] != kEdgeLost)
        return fail("edge " + std::to_string(ev.edge) + " is not lost");
      return true;
    case ProtoEventKind::kDuplicate:
      if (ev.edge < 0 || ev.edge >= ctx.ne)
        return fail("duplicate of out-of-range edge");
      if (st.edge[static_cast<std::size_t>(ev.edge)] != kEdgeCountedMsg)
        return fail("edge " + std::to_string(ev.edge) +
                    " has no applied message to duplicate");
      if (st.dups_left <= 0) return fail("duplicate budget exhausted");
      return true;
    case ProtoEventKind::kCrash:
      if (ev.rank < 0 || ev.rank >= ctx.n_ranks)
        return fail("crash of out-of-range rank");
      if (st.crashes_left <= 0) return fail("crash budget exhausted");
      if (!st.alive[static_cast<std::size_t>(ev.rank)])
        return fail("rank " + std::to_string(ev.rank) + " is already dead");
      if (!ctx.crashable[static_cast<std::size_t>(ev.rank)])
        return fail("rank " + std::to_string(ev.rank) + " is not crashable");
      if (live_count(st) < 2) return fail("no survivor would remain");
      return true;
    case ProtoEventKind::kDrain:
    case ProtoEventKind::kAdd: {
      const bool is_add = ev.kind == ProtoEventKind::kAdd;
      if (ev.edge < 0 ||
          ev.edge >= static_cast<nnz_t>(ctx.opts->elastic.size()))
        return fail("elastic event references out-of-range plan entry");
      const ModelOptions::ElasticEvent& pe =
          ctx.opts->elastic[static_cast<std::size_t>(ev.edge)];
      if (pe.is_add != is_add)
        return fail("elastic plan entry kind mismatch");
      if (ev.rank >= 0 && ev.rank != pe.rank)
        return fail("elastic plan entry rank mismatch");
      if (st.efired[static_cast<std::size_t>(ev.edge)])
        return fail("elastic plan entry already fired");
      if (st.commits < pe.at_commit)
        return fail("elastic plan entry not yet eligible (commits " +
                    std::to_string(st.commits) + " < " +
                    std::to_string(pe.at_commit) + ")");
      if (is_add) {
        if (st.alive[static_cast<std::size_t>(pe.rank)])
          return fail("rank to add is already live");
        if (st.crashed[static_cast<std::size_t>(pe.rank)])
          return fail("rank to add has crashed");
      } else {
        if (!st.alive[static_cast<std::size_t>(pe.rank)])
          return fail("rank to drain is not live");
        if (!mut.drain_ignores_min_ranks &&
            live_count(st) - 1 < ctx.opts->min_ranks)
          return fail("drain would violate min_ranks");
      }
      return true;
    }
    case ProtoEventKind::kCheckpoint:
      if (st.ckpts_left <= 0) return fail("checkpoint budget exhausted");
      if (st.commits <= st.last_ckpt)
        return fail("no new commits since the last checkpoint");
      return true;
    case ProtoEventKind::kPublish:
      if (!mut.commit_before_publish)
        return fail("publish events only exist under commit_before_publish");
      if (ev.task < 0 || ev.task >= ctx.nt)
        return fail("publish of out-of-range task");
      if (!st.committed[static_cast<std::size_t>(ev.task)])
        return fail("publish of uncommitted task");
      if (st.published[static_cast<std::size_t>(ev.task)])
        return fail("task already published");
      return true;
  }
  return fail("unknown event kind");
}

void fill_counters(const ProtoState& st, ReplayResult* rr) {
  rr->commits = st.commits;
  rr->messages = st.messages;
  rr->retransmits = st.retransmits;
  rr->duplicates_suppressed = st.dups_suppressed;
  rr->rank_crashes = st.crashes;
  rr->ranks_drained = st.drains;
  rr->ranks_added = st.adds;
  rr->checkpoints = st.ckpts;
  rr->remapped_blocks = st.remapped;
  rr->migrated_blocks = st.migrated;
}

}  // namespace

template <class BM>
ReplayResult replay_schedule(const BM& bm,
                             const std::vector<block::Task>& tasks,
                             const block::Mapping& mapping,
                             const ModelOptions& opts,
                             const std::vector<ProtoEvent>& schedule) {
  ReplayResult rr;
  // A counterexample must never be rejected by the budget that found it:
  // raise each fault budget to what the schedule actually spends.
  ModelOptions ro = opts;
  int drops = 0, dups = 0, crashes = 0, ckpts = 0;
  for (const ProtoEvent& e : schedule) {
    drops += e.kind == ProtoEventKind::kDrop ? 1 : 0;
    dups += e.kind == ProtoEventKind::kDuplicate ? 1 : 0;
    crashes += e.kind == ProtoEventKind::kCrash ? 1 : 0;
    ckpts += e.kind == ProtoEventKind::kCheckpoint ? 1 : 0;
  }
  ro.max_drops = std::max(ro.max_drops, drops);
  ro.max_duplicates = std::max(ro.max_duplicates, dups);
  ro.max_crashes = std::max(ro.max_crashes, crashes);
  ro.max_checkpoints = std::max(ro.max_checkpoints, ckpts);

  Ctx ctx;
  Status s = init_ctx(bm, tasks, mapping, ro, &ctx);
  if (!s.is_ok()) {
    rr.feasible = false;
    rr.infeasible_reason = s.message();
    return rr;
  }
  ProtoState st;
  s = init_state(ctx, mapping, &st);
  if (!s.is_ok()) {
    rr.feasible = false;
    rr.infeasible_reason = s.message();
    return rr;
  }

  std::string why;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const ProtoEvent& ev = schedule[i];
    if (!event_admissible(ctx, st, ev, &why)) {
      rr.feasible = false;
      rr.infeasible_reason = "schedule step " + std::to_string(i) + " (" +
                             to_string(ev) + ") is not admissible: " + why;
      fill_counters(st, &rr);
      return rr;
    }
    std::string detail;
    const ProtoProperty prop = step(ctx, &st, ev, &detail);
    rr.applied = i + 1;
    if (prop != ProtoProperty::kNone) {
      rr.property = prop;
      rr.detail = detail + " (schedule step " + std::to_string(i) + ": " +
                  to_string(ev) + ")";
      fill_counters(st, &rr);
      return rr;
    }
  }

  std::vector<ProtoEvent> en;
  enabled_events(ctx, st, &en);
  rr.terminal = en.empty();
  if (rr.terminal) {
    std::string detail;
    const ProtoProperty prop = terminal_violation(ctx, st, &detail);
    if (prop != ProtoProperty::kNone) {
      rr.property = prop;
      rr.detail = detail;
    }
  }
  rr.all_committed =
      std::all_of(st.committed.begin(), st.committed.end(),
                  [](char c) { return c != 0; });
  fill_counters(st, &rr);
  return rr;
}

namespace {

/// Greedy delta debugging to a 1-minimal schedule: repeatedly drop any
/// single event whose removal still replays to the same violated property.
/// Replay is the oracle, so minimisation can never "improve" a schedule
/// into a different bug.
template <class BM>
void minimise_counterexample(const BM& bm,
                             const std::vector<block::Task>& tasks,
                             const block::Mapping& mapping,
                             const ModelOptions& opts, Counterexample* cex) {
  constexpr std::size_t kMaxReplays = 4096;
  std::size_t replays = 0;
  bool improved = true;
  while (improved && replays < kMaxReplays) {
    improved = false;
    for (std::size_t i = 0; i < cex->schedule.size(); ++i) {
      std::vector<ProtoEvent> cand = cex->schedule;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      const ReplayResult rr = replay_schedule(bm, tasks, mapping, opts, cand);
      ++replays;
      if (rr.feasible && rr.property == cex->property) {
        cex->schedule = std::move(cand);
        cex->detail = rr.detail;
        improved = true;
        break;
      }
      if (replays >= kMaxReplays) break;
    }
  }
}

}  // namespace

template <class BM>
Status model_check(const BM& bm, const std::vector<block::Task>& tasks,
                   const block::Mapping& mapping, const ModelOptions& opts,
                   ModelCheckResult* result) {
  PANGULU_CHECK(result != nullptr, "model_check needs a result sink");
  *result = ModelCheckResult{};
  const auto t0 = std::chrono::steady_clock::now();
  auto stamp = [&] {
    result->stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };

  Ctx ctx;
  Status s = init_ctx(bm, tasks, mapping, opts, &ctx);
  if (!s.is_ok()) return s;
  ProtoState init;
  s = init_state(ctx, mapping, &init);
  if (!s.is_ok()) return s;

  struct Frame {
    ProtoState st;
    std::vector<ProtoEvent> to_explore;
    std::vector<ProtoEvent> sleep;
    std::vector<ProtoEvent> explored;
    std::size_t idx = 0;
    bool has_via = false;
  };

  // State cache: serialized state -> the sleep set it was explored with.
  // Revisiting with a smaller sleep set re-explores exactly the difference
  // (the standard cache+sleep interaction); the stored set shrinks
  // monotonically, so the search terminates.
  std::unordered_map<std::string, std::vector<ProtoEvent>> visited;
  std::vector<Frame> stack;
  std::vector<ProtoEvent> path;
  ModelStats& stats = result->stats;
  bool truncated = false;

  auto finish_violation = [&](ProtoProperty prop, std::string detail,
                              const ProtoEvent* last,
                              const ProtoEvent* extra = nullptr) {
    result->violation = true;
    result->cex.property = prop;
    result->cex.detail = std::move(detail);
    result->cex.schedule = path;
    if (last != nullptr) result->cex.schedule.push_back(*last);
    if (extra != nullptr) result->cex.schedule.push_back(*extra);
    minimise_counterexample(bm, tasks, mapping, opts, &result->cex);
    stamp();
    return Status::ok();
  };

  {
    std::string key;
    serialize(init, &key);
    std::vector<ProtoEvent> en;
    enabled_events(ctx, init, &en);
    stats.states = 1;
    stats.naive_transitions += en.size();
    visited.emplace(std::move(key), std::vector<ProtoEvent>{});
    if (en.empty()) {
      std::string detail;
      const ProtoProperty prop = terminal_violation(ctx, init, &detail);
      if (prop != ProtoProperty::kNone)
        return finish_violation(prop, std::move(detail), nullptr);
      stats.terminal_states = 1;
      result->complete = true;
      stamp();
      return Status::ok();
    }
    {
      ProtoEvent bad;
      std::string detail;
      if (premature_ready_commit(ctx, en, init, &bad, &detail))
        return finish_violation(ProtoProperty::kPrematureExecute,
                                std::move(detail), &bad);
    }
    Frame root;
    root.st = std::move(init);
    root.to_explore = std::move(en);
    stack.push_back(std::move(root));
  }

  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.idx >= f.to_explore.size()) {
      if (f.has_via) path.pop_back();
      stack.pop_back();
      continue;
    }
    const ProtoEvent a = f.to_explore[f.idx++];

    ProtoState child = f.st;
    std::string detail;
    const ProtoProperty prop = step(ctx, &child, a, &detail);
    stats.transitions += 1;
    if (prop != ProtoProperty::kNone)
      return finish_violation(prop, std::move(detail), &a);

    std::vector<ProtoEvent> child_sleep;
    if (opts.partial_order_reduction) {
      for (const ProtoEvent& b : f.sleep)
        if (!dependent(ctx, a, b)) child_sleep.push_back(b);
      for (const ProtoEvent& b : f.explored)
        if (!dependent(ctx, a, b)) child_sleep.push_back(b);
    }
    f.explored.push_back(a);

    std::string key;
    serialize(child, &key);
    auto it = visited.find(key);
    if (it == visited.end()) {
      if (visited.size() >= opts.max_states) {
        truncated = true;
        break;
      }
      std::vector<ProtoEvent> en;
      enabled_events(ctx, child, &en);
      stats.states += 1;
      stats.naive_transitions += en.size();
      if (en.empty()) {
        visited.emplace(std::move(key), std::vector<ProtoEvent>{});
        const ProtoProperty tprop = terminal_violation(ctx, child, &detail);
        if (tprop != ProtoProperty::kNone)
          return finish_violation(tprop, std::move(detail), &a);
        stats.terminal_states += 1;
        continue;
      }
      {
        ProtoEvent bad;
        if (premature_ready_commit(ctx, en, child, &bad, &detail))
          return finish_violation(ProtoProperty::kPrematureExecute,
                                  std::move(detail), &a, &bad);
      }
      std::vector<ProtoEvent> to = subtract(en, child_sleep);
      stats.sleep_pruned += en.size() - to.size();
      visited.emplace(std::move(key), child_sleep);
      if (to.empty()) continue;
      if (opts.max_depth != 0 && path.size() + 1 > opts.max_depth) {
        truncated = true;
        continue;
      }
      Frame nf;
      nf.st = std::move(child);
      nf.to_explore = std::move(to);
      nf.sleep = std::move(child_sleep);
      nf.has_via = true;
      stack.push_back(std::move(nf));
      path.push_back(a);
      stats.peak_depth = std::max(stats.peak_depth, path.size());
    } else {
      stats.revisits += 1;
      // Events the stored visit slept through but we would not: they were
      // never explored from this state and must be now.
      std::vector<ProtoEvent> re = subtract(it->second, child_sleep);
      it->second = intersect(it->second, child_sleep);
      if (re.empty()) continue;
      if (opts.max_depth != 0 && path.size() + 1 > opts.max_depth) {
        truncated = true;
        continue;
      }
      Frame nf;
      nf.st = std::move(child);
      nf.to_explore = std::move(re);
      nf.sleep = std::move(child_sleep);
      nf.has_via = true;
      stack.push_back(std::move(nf));
      path.push_back(a);
      stats.peak_depth = std::max(stats.peak_depth, path.size());
    }
  }

  stamp();
  result->complete = !truncated;
  if (truncated)
    return Status::resource_exhausted(
        "model check state budget exhausted after " +
        std::to_string(stats.states) + " states / " +
        std::to_string(stats.transitions) +
        " transitions without a conclusion");
  return Status::ok();
}

template <class BM>
std::vector<ProtoEvent> sample_complete_schedule(
    const BM& bm, const std::vector<block::Task>& tasks,
    const block::Mapping& mapping, const ModelOptions& opts) {
  PANGULU_CHECK(!opts.mutations.any(),
                "sample_complete_schedule expects an unmutated protocol");
  Ctx ctx;
  init_ctx(bm, tasks, mapping, opts, &ctx).check();
  ProtoState st;
  init_state(ctx, mapping, &st).check();

  std::vector<ProtoEvent> schedule;
  std::vector<ProtoEvent> en;
  const std::size_t guard = (static_cast<std::size_t>(ctx.nt) +
                             static_cast<std::size_t>(ctx.ne)) *
                                4 +
                            opts.elastic.size() * 2 + 64;
  for (std::size_t iter = 0; iter < guard; ++iter) {
    enabled_events(ctx, st, &en);
    const ProtoEvent* pick = nullptr;
    for (const ProtoEvent& e : en) {
      if (e.kind == ProtoEventKind::kCommit ||
          e.kind == ProtoEventKind::kDeliver ||
          e.kind == ProtoEventKind::kRetransmit ||
          e.kind == ProtoEventKind::kDrain ||
          e.kind == ProtoEventKind::kAdd) {
        pick = &e;
        break;
      }
    }
    if (pick == nullptr) break;
    std::string detail;
    const ProtoProperty prop = step(ctx, &st, *pick, &detail);
    PANGULU_CHECK(prop == ProtoProperty::kNone,
                  "fault-free sample schedule hit a violation: " + detail);
    schedule.push_back(*pick);
  }
  PANGULU_CHECK(std::all_of(st.committed.begin(), st.committed.end(),
                            [](char c) { return c != 0; }),
                "fault-free sample schedule did not commit every task");
  return schedule;
}

template Status model_check(const block::BlockMatrixT<float>&,
                            const std::vector<block::Task>&,
                            const block::Mapping&, const ModelOptions&,
                            ModelCheckResult*);
template Status model_check(const block::BlockMatrixT<double>&,
                            const std::vector<block::Task>&,
                            const block::Mapping&, const ModelOptions&,
                            ModelCheckResult*);
template ReplayResult replay_schedule(const block::BlockMatrixT<float>&,
                                      const std::vector<block::Task>&,
                                      const block::Mapping&,
                                      const ModelOptions&,
                                      const std::vector<ProtoEvent>&);
template ReplayResult replay_schedule(const block::BlockMatrixT<double>&,
                                      const std::vector<block::Task>&,
                                      const block::Mapping&,
                                      const ModelOptions&,
                                      const std::vector<ProtoEvent>&);
template std::vector<ProtoEvent> sample_complete_schedule(
    const block::BlockMatrixT<float>&, const std::vector<block::Task>&,
    const block::Mapping&, const ModelOptions&);
template std::vector<ProtoEvent> sample_complete_schedule(
    const block::BlockMatrixT<double>&, const std::vector<block::Task>&,
    const block::Mapping&, const ModelOptions&);

}  // namespace pangulu::analysis
