// Exhaustive protocol model checker for the DES runtime's fault-tolerance
// protocols (sync-free commit counters, ack/timeout/retransmit message
// recovery, crash remapping, checkpoint commits, elastic drain/grow).
//
// The checker enumerates *every* interleaving of abstract protocol events on
// a small grid — task commits, message deliveries/drops/retransmits/
// duplicates, rank crashes, checkpoint commits, planned drains and adds —
// with exact-state deduplication and sleep-set partial-order reduction
// (Godefroid-style: sleep sets prune redundant transitions between
// provably-commuting events but still visit every reachable state, so
// per-state safety checks lose nothing). Safety is checked at every state:
//
//   * counter non-negativity      a sync-free counter never underflows
//   * at-most-once application    no task commits (and so no kernel runs)
//                                 twice
//   * no premature execution      a commit only fires once every
//                                 prerequisite block has actually arrived
//                                 at the owner (the ground truth the
//                                 counters are supposed to track)
//   * mapping totality (I4/I6)    no block is ever owned by a crashed or
//                                 drained rank, including right after a
//                                 remap or rebalance
//   * min-ranks floor             planned drains never take the live set
//                                 below ElasticPlan::min_ranks
//   * checkpoint durability       a checkpoint only covers commits whose
//                                 ABFT checksums are published
//
// and at every terminal state (no event enabled): all tasks committed, no
// in-flight or lost message orphaned. Together these are the execution-level
// counterparts of the static I1-I6 invariants in analysis/verify.hpp: the
// verifier proves single states consistent, the checker proves the protocol
// keeps them consistent across all small-scope schedules.
//
// On a violation the checker emits a minimal counterexample: an explicit
// event schedule, shrunk by replay-based delta debugging, that
// runtime::SimOptions::forced_schedule replays deterministically — every
// finding is a reproducible failing DES run, not a trace dump.
//
// A mutation-soundness harness (tests/model_check_test.cpp) seeds known
// protocol bugs behind the test-only ProtocolMutations toggles and asserts
// the checker finds each one; the same toggles are honoured by the forced
// replay so the counterexamples reproduce.
//
// Scope and soundness limits: the model abstracts virtual time away (any
// enabled event may fire next, a superset of the DES's timed schedules), so
// "no violation" covers every timing the DES can exhibit within the given
// fault/elastic budgets; it does not cover larger budgets, numeric error, or
// host-side bugs outside the protocol state machines. Elastic events may
// fire at any commit count at or after their threshold, and drains that
// would dip below min_ranks are modelled as load-shed (never fired), which
// mirrors the cooperative runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "block/layout.hpp"
#include "block/mapping.hpp"
#include "block/tasks.hpp"
#include "util/status.hpp"

namespace pangulu::analysis {

/// One abstract protocol event. `task`/`edge`/`rank` identify the operand
/// per kind; unused operands stay -1. The enum order is the deterministic
/// exploration order (progress events first, fault injections last, so the
/// first DFS dive reaches a terminal state quickly).
enum class ProtoEventKind : std::uint8_t {
  kCommit = 0,   // task `task` executes and commits on its current owner
  kDeliver,      // in-flight message for dependency edge `edge` arrives
  kRetransmit,   // sender ack timer fired; lost edge `edge` back in flight
  kDrain,        // planned elastic drain (plan entry `edge`, rank `rank`)
  kAdd,          // planned elastic add   (plan entry `edge`, rank `rank`)
  kCheckpoint,   // checkpoint commit covering the current canonical prefix
  kPublish,      // deferred checksum publication for task `task`
                 // (only exists under the commit_before_publish mutation)
  kDrop,         // in-flight message for edge `edge` is lost (fault budget)
  kDuplicate,    // late extra copy of already-applied edge `edge` arrives
  kCrash,        // rank `rank` dies; survivors remap its blocks
};

const char* to_string(ProtoEventKind kind);

struct ProtoEvent {
  ProtoEventKind kind = ProtoEventKind::kCommit;
  index_t task = -1;  // kCommit / kPublish
  nnz_t edge = -1;    // message events: dependency-edge id;
                      // kDrain / kAdd: index into ModelOptions::elastic
  rank_t rank = -1;   // kCrash / kDrain / kAdd
};

bool operator==(const ProtoEvent& a, const ProtoEvent& b);
bool proto_event_less(const ProtoEvent& a, const ProtoEvent& b);
std::string to_string(const ProtoEvent& e);

/// Test-only seeded protocol bugs. Each toggle plants one defect the
/// protocols are documented to exclude; the mutation-soundness harness
/// asserts the checker catches every one with a replayable counterexample.
/// The forced-schedule replay honours the same toggles, so a counterexample
/// found under a mutation reproduces the identical violation in the DES.
struct ProtocolMutations {
  /// Receiver applies duplicate deliveries instead of suppressing them:
  /// a retransmitted copy double-decrements the sync-free counter.
  bool skip_ack_dedup = false;
  /// Sync-free counters initialised one too low (the classic missing
  /// panel-solve +1): tasks become ready before their inputs arrive.
  bool counter_off_by_one = false;
  /// The I6 re-proof after an elastic rebalance is dropped AND the
  /// rebalance itself is sabotaged to leave one block on the drained rank —
  /// exactly the defect the proof exists to catch at the safe point.
  bool skip_rebalance_proof = false;
  /// A task's commit becomes visible (counter decrements, commit count
  /// advances) before its ABFT checksum publishes, opening the window in
  /// which a checkpoint captures a commit that cannot be audited on resume.
  bool commit_before_publish = false;
  /// Lost messages are never retransmitted: the ack-timeout half of the
  /// recovery protocol is disabled.
  bool skip_retransmit = false;
  /// Planned drains ignore the ElasticPlan::min_ranks floor.
  bool drain_ignores_min_ranks = false;
  /// Crash recovery forgets to re-home one of the dead rank's blocks.
  bool crash_remap_drops_block = false;

  bool any() const {
    return skip_ack_dedup || counter_off_by_one || skip_rebalance_proof ||
           commit_before_publish || skip_retransmit ||
           drain_ignores_min_ranks || crash_remap_drops_block;
  }
};

/// The safety / terminal property a counterexample violates.
enum class ProtoProperty : std::uint8_t {
  kNone = 0,
  kCounterNonNegative,    // a sync-free counter went negative
  kAtMostOnce,            // a task committed twice
  kPrematureExecute,      // commit before a prerequisite arrived
  kMappingTotality,       // block owned by a crashed/drained rank (I4/I6)
  kMinRanksFloor,         // live ranks dipped below min_ranks
  kCheckpointDurability,  // checkpoint covers an unpublished checksum
  kOrphanMessage,         // terminal state with an undelivered/lost message
  kDeadlock,              // terminal state with uncommitted tasks
};

const char* to_string(ProtoProperty p);

struct ModelOptions {
  /// Planned capacity change, the layer-free mirror of
  /// runtime::ElasticPlan::Event (runtime::flatten_elastic converts a plan;
  /// keeping the flat form here avoids an analysis -> runtime dependency).
  /// An event is eligible once `at_commit` tasks have committed; the model
  /// lets it fire at any later commit count too (a superset of the DES's
  /// next-safe-point firing).
  struct ElasticEvent {
    rank_t rank = 0;
    index_t at_commit = 0;
    bool is_add = false;
  };
  std::vector<ElasticEvent> elastic;
  rank_t min_ranks = 1;
  /// Ranks live before the first commit (empty = all). Ranks that start
  /// inactive are re-homed at zero cost before exploration, mirroring the
  /// DES's provisioned-idle handling.
  std::vector<char> initially_alive;

  // Small-scope fault budgets: how many of each fault the adversary may
  // inject per execution. Exhaustiveness is relative to these bounds.
  int max_drops = 0;
  int max_duplicates = 0;
  int max_crashes = 0;
  /// Ranks eligible to crash (empty = all ranks, when max_crashes > 0).
  std::vector<rank_t> crashable;
  /// Checkpoint-commit events the adversary may interleave.
  int max_checkpoints = 0;

  /// Exploration stops with kResourceExhausted after this many distinct
  /// states (the state budget).
  std::size_t max_states = std::size_t(1) << 21;
  /// 0 = unbounded. The event alphabet is consumed monotonically, so DFS
  /// terminates without a bound; this is a belt for experiments.
  std::size_t max_depth = 0;
  /// Sleep-set partial-order reduction. Off = naive full enumeration
  /// (same states, every enabled transition executed) for A/B measurement.
  bool partial_order_reduction = true;

  ProtocolMutations mutations;
};

struct ModelStats {
  std::size_t states = 0;             // distinct states visited
  std::size_t transitions = 0;        // transitions actually executed
  /// What naive enumeration would execute: sum of |enabled| over all
  /// distinct states. Sleep sets visit every reachable state, so this is
  /// exact, not an estimate.
  std::size_t naive_transitions = 0;
  std::size_t sleep_pruned = 0;       // transitions skipped by sleep sets
  std::size_t revisits = 0;           // state-cache hits
  std::size_t terminal_states = 0;
  std::size_t peak_depth = 0;
  double seconds = 0;

  double reduction_factor() const {
    return transitions > 0 ? static_cast<double>(naive_transitions) /
                                 static_cast<double>(transitions)
                           : 1.0;
  }
};

struct Counterexample {
  ProtoProperty property = ProtoProperty::kNone;
  std::string detail;
  /// Minimal event schedule (1-minimal under replay-based delta debugging):
  /// the violation fires at the last event, or — for terminal properties —
  /// in the stuck state the full schedule leaves behind.
  std::vector<ProtoEvent> schedule;
};

struct ModelCheckResult {
  bool violation = false;
  /// True when the search exhausted the whole (budget-bounded) space.
  bool complete = false;
  Counterexample cex;
  ModelStats stats;
};

/// Exhaustively explore the protocol state space of (bm, tasks, mapping)
/// under `opts`. Returns ok() when the search finished — either clean
/// (result->complete) or with a minimal counterexample (result->violation) —
/// kResourceExhausted when the state budget ran out inconclusively, and
/// kInvalidArgument for malformed inputs.
template <class BM>
Status model_check(const BM& bm, const std::vector<block::Task>& tasks,
                   const block::Mapping& mapping, const ModelOptions& opts,
                   ModelCheckResult* result);

/// Outcome of deterministically replaying an explicit event schedule
/// against the protocol interpreter (the execution side of
/// runtime::SimOptions::forced_schedule, and the oracle the counterexample
/// minimiser shrinks against).
struct ReplayResult {
  bool feasible = true;        // every event admissible when it fired
  std::size_t applied = 0;     // events applied before the replay stopped
  std::string infeasible_reason;
  ProtoProperty property = ProtoProperty::kNone;  // kNone: no violation
  std::string detail;
  bool terminal = false;       // no event enabled after the last one
  bool all_committed = false;
  index_t commits = 0;
  // Protocol counters for runtime::SimResult.
  std::int64_t messages = 0;   // remote deliveries applied
  std::int64_t retransmits = 0;
  std::int64_t duplicates_suppressed = 0;
  std::int64_t rank_crashes = 0;
  std::int64_t ranks_drained = 0;
  std::int64_t ranks_added = 0;
  std::int64_t checkpoints = 0;
  nnz_t remapped_blocks = 0;   // crash-recovery block moves
  nnz_t migrated_blocks = 0;   // elastic rebalance block moves
};

/// Replay `schedule` event by event. Fault budgets are auto-raised to what
/// the schedule actually uses (a counterexample must never be rejected by
/// the budget that found it); every other guard is enforced, except that a
/// commit of an already-committed task reports the kAtMostOnce violation
/// instead of infeasibility (so the at-most-once property is directly
/// testable).
template <class BM>
ReplayResult replay_schedule(const BM& bm,
                             const std::vector<block::Task>& tasks,
                             const block::Mapping& mapping,
                             const ModelOptions& opts,
                             const std::vector<ProtoEvent>& schedule);

/// One fault-free complete schedule (greedy: first enabled progress event;
/// never injects drops/duplicates/crashes) that commits every task and
/// leaves no message in flight. Used by replay smoke tests to drive the DES
/// through the forced-schedule path on a healthy run.
template <class BM>
std::vector<ProtoEvent> sample_complete_schedule(
    const BM& bm, const std::vector<block::Task>& tasks,
    const block::Mapping& mapping, const ModelOptions& opts);

}  // namespace pangulu::analysis
