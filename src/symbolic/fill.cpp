#include "symbolic/fill.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <utility>

#include "parallel/partition.hpp"
#include "sparse/ops.hpp"
#include "symbolic/etree.hpp"

namespace pangulu::symbolic {

namespace {

/// Scatter A's values into the filled pattern with one merged pass per
/// column: both patterns are column-sorted and A is a subset of filled, so a
/// two-pointer sweep replaces the old per-entry binary `find` (and moves the
/// subset check out of the hot loop — one count comparison per column).
/// Returns false iff some A entry is missing from the filled pattern.
bool scatter_values_merged_col(const Csc& a, Csc* filled, index_t j) {
  nnz_t q = filled->col_begin(j);
  const nnz_t qe = filled->col_end(j);
  nnz_t hits = 0;
  for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
    const index_t r = a.row_idx()[static_cast<std::size_t>(p)];
    while (q < qe && filled->row_idx()[static_cast<std::size_t>(q)] < r) ++q;
    if (q < qe && filled->row_idx()[static_cast<std::size_t>(q)] == r) {
      filled->values_mut()[static_cast<std::size_t>(q)] =
          a.values()[static_cast<std::size_t>(p)];
      ++q;
      ++hits;
    }
  }
  return hits == static_cast<nnz_t>(a.col_nnz(j));
}

void scatter_values_merged(const Csc& a, Csc* filled) {
  for (index_t j = 0; j < a.n_cols(); ++j) {
    PANGULU_CHECK(scatter_values_merged_col(a, filled, j),
                  "A entry missing from filled pattern");
  }
}

/// Assemble the full L+U pattern Csc from a lower-triangular pattern (with
/// diagonal) and its transpose, then scatter `a`'s values into it.
Csc assemble_filled(const Csc& lower_pat, const Csc& a) {
  const index_t n = lower_pat.n_cols();
  Csc upper_pat = lower_pat.transpose();
  std::vector<nnz_t> col_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j) {
    // upper rows (< j) come from upper_pat col j (rows <= j, diag included);
    // lower rows (>= j) from lower_pat col j. Diagonal counted once.
    nnz_t upper_cnt = upper_pat.col_end(j) - upper_pat.col_begin(j) - 1;
    nnz_t lower_cnt = lower_pat.col_end(j) - lower_pat.col_begin(j);
    col_ptr[static_cast<std::size_t>(j) + 1] =
        col_ptr[static_cast<std::size_t>(j)] + upper_cnt + lower_cnt;
  }
  std::vector<index_t> row_idx(static_cast<std::size_t>(col_ptr.back()));
  std::vector<value_t> values(static_cast<std::size_t>(col_ptr.back()), value_t(0));
  for (index_t j = 0; j < n; ++j) {
    nnz_t q = col_ptr[static_cast<std::size_t>(j)];
    for (nnz_t p = upper_pat.col_begin(j); p < upper_pat.col_end(j); ++p) {
      index_t r = upper_pat.row_idx()[static_cast<std::size_t>(p)];
      if (r < j) row_idx[static_cast<std::size_t>(q++)] = r;
    }
    for (nnz_t p = lower_pat.col_begin(j); p < lower_pat.col_end(j); ++p)
      row_idx[static_cast<std::size_t>(q++)] =
          lower_pat.row_idx()[static_cast<std::size_t>(p)];
    PANGULU_CHECK(q == col_ptr[static_cast<std::size_t>(j) + 1],
                  "assemble_filled: column count mismatch");
  }
  Csc filled = Csc::from_parts(n, n, std::move(col_ptr), std::move(row_idx),
                               std::move(values));
  // Scatter A's values (A's pattern is a subset of the filled pattern).
  scatter_values_merged(a, &filled);
  return filled;
}

/// Parallel assemble: the strictly-lower entries of lower_pat double as the
/// strictly-upper pattern of filled (entry (r, k) of L contributes upper
/// entry (k, r) to filled column r). Chunked counting over source columns,
/// prefix-sum, then scatter into pre-assigned slots — chunks ascend in k, so
/// every filled column receives its upper rows in the same source-column
/// order the serial transpose produces.
Csc assemble_filled_parallel(const Csc& lower_pat, const Csc& a,
                             ThreadPool& tp) {
  const index_t n = lower_pat.n_cols();
  const FixedPartition part = FixedPartition::make(n, n);
  ChunkCounts counts(part.n_chunks, n);
  parallel_for(
      tp, 0, part.n_chunks,
      [&](index_t c) {
        nnz_t* cnt = counts.row(c);
        for (index_t k = part.begin(c); k < part.end(c); ++k) {
          for (nnz_t p = lower_pat.col_begin(k); p < lower_pat.col_end(k); ++p) {
            const index_t r = lower_pat.row_idx()[static_cast<std::size_t>(p)];
            if (r > k) cnt[r]++;
          }
        }
      },
      /*grain=*/1);
  std::vector<nnz_t> upper_cnt(static_cast<std::size_t>(n));
  counts.totals(tp, upper_cnt);
  std::vector<nnz_t> width(static_cast<std::size_t>(n));
  parallel_for_chunks(tp, 0, n, [&](index_t lo, index_t hi) {
    for (index_t j = lo; j < hi; ++j)
      width[static_cast<std::size_t>(j)] =
          upper_cnt[static_cast<std::size_t>(j)] +
          (lower_pat.col_end(j) - lower_pat.col_begin(j));
  });
  std::vector<nnz_t> col_ptr(static_cast<std::size_t>(n) + 1);
  exclusive_prefix_sum(tp, width, col_ptr);
  counts.to_cursors(tp, std::span<const nnz_t>(col_ptr).first(
                            static_cast<std::size_t>(n)));
  std::vector<index_t> row_idx(static_cast<std::size_t>(col_ptr.back()));
  std::vector<value_t> values(static_cast<std::size_t>(col_ptr.back()),
                              value_t(0));
  parallel_for(
      tp, 0, part.n_chunks,
      [&](index_t c) {
        nnz_t* cur = counts.row(c);
        for (index_t k = part.begin(c); k < part.end(c); ++k) {
          for (nnz_t p = lower_pat.col_begin(k); p < lower_pat.col_end(k); ++p) {
            const index_t r = lower_pat.row_idx()[static_cast<std::size_t>(p)];
            if (r > k) row_idx[static_cast<std::size_t>(cur[r]++)] = k;
          }
        }
      },
      /*grain=*/1);
  // Lower section of column j (diagonal first, rows ascending): a straight
  // copy of lower_pat's column.
  parallel_for_chunks(tp, 0, n, [&](index_t lo, index_t hi) {
    for (index_t j = lo; j < hi; ++j) {
      nnz_t q = col_ptr[static_cast<std::size_t>(j)] +
                upper_cnt[static_cast<std::size_t>(j)];
      for (nnz_t p = lower_pat.col_begin(j); p < lower_pat.col_end(j); ++p)
        row_idx[static_cast<std::size_t>(q++)] =
            lower_pat.row_idx()[static_cast<std::size_t>(p)];
    }
  });
  Csc filled = Csc::from_parts_unchecked(n, n, std::move(col_ptr),
                                         std::move(row_idx), std::move(values));
  std::atomic<bool> missing{false};
  parallel_for_chunks(tp, 0, a.n_cols(), [&](index_t lo, index_t hi) {
    for (index_t j = lo; j < hi; ++j) {
      if (!scatter_values_merged_col(a, &filled, j))
        missing.store(true, std::memory_order_relaxed);
    }
  });
  PANGULU_CHECK(!missing.load(), "A entry missing from filled pattern");
  return filled;
}

void finish_result(Csc filled, std::vector<index_t> etree, SymbolicResult* out) {
  const index_t n = filled.n_cols();
  nnz_t nl = 0, nu = 0;
  for (index_t j = 0; j < n; ++j) {
    for (nnz_t p = filled.col_begin(j); p < filled.col_end(j); ++p) {
      index_t r = filled.row_idx()[static_cast<std::size_t>(p)];
      if (r > j)
        ++nl;
      else
        ++nu;  // diagonal counted with U (as stored by GETRF)
    }
  }
  out->filled = std::move(filled);
  out->nnz_l = nl;
  out->nnz_u = nu;
  out->nnz_lu = nl + nu;
  out->etree = std::move(etree);
}

/// finish_result with the L/U split counted by chunked partial sums (integer
/// partials, so the reduction is exact in any association).
void finish_result_parallel(Csc filled, std::vector<index_t> etree,
                            SymbolicResult* out, ThreadPool& tp) {
  const index_t n = filled.n_cols();
  const FixedPartition part = FixedPartition::make(n, 1);
  std::vector<nnz_t> nl_part(static_cast<std::size_t>(part.n_chunks), 0);
  parallel_for(
      tp, 0, part.n_chunks,
      [&](index_t c) {
        nnz_t nl = 0;
        for (index_t j = part.begin(c); j < part.end(c); ++j) {
          for (nnz_t p = filled.col_begin(j); p < filled.col_end(j); ++p) {
            if (filled.row_idx()[static_cast<std::size_t>(p)] > j) ++nl;
          }
        }
        nl_part[static_cast<std::size_t>(c)] = nl;
      },
      /*grain=*/1);
  nnz_t nl = 0;
  for (nnz_t c : nl_part) nl += c;
  const nnz_t total = filled.nnz();
  out->filled = std::move(filled);
  out->nnz_l = nl;
  out->nnz_u = total - nl;
  out->nnz_lu = total;
  out->etree = std::move(etree);
}

}  // namespace

Status check_fill_bounds(index_t n, nnz_t nnz_a) {
  if (n < 0 || nnz_a < 0)
    return Status::invalid_argument("symbolic: negative matrix dimensions");
  constexpr nnz_t kMax = std::numeric_limits<nnz_t>::max();
  // Symmetrisation stores up to 2*nnz + n entries (A + A^T plus an explicit
  // unit diagonal); guard that sum before any allocation sizes on it.
  if (nnz_a > (kMax - static_cast<nnz_t>(n)) / 2)
    return Status::out_of_range(
        "symbolic: symmetrised pattern size 2*nnz + n overflows the 64-bit "
        "nonzero index (nnz = " +
        std::to_string(nnz_a) + ", n = " + std::to_string(n) + ")");
  // The filled pattern is bounded by the dense n*n box; if even that bound
  // cannot be represented, downstream col_ptr arithmetic may wrap.
  if (n > 0 && static_cast<nnz_t>(n) > kMax / static_cast<nnz_t>(n))
    return Status::out_of_range(
        "symbolic: dense bound n*n overflows the 64-bit nonzero index (n = " +
        std::to_string(n) + ")");
  return Status::ok();
}

Status symbolic_symmetric_serial(const Csc& a, SymbolicResult* out) {
  if (a.n_rows() != a.n_cols())
    return Status::invalid_argument("symbolic: square matrices only");
  Status b = check_fill_bounds(a.n_cols(), a.nnz());
  if (!b.is_ok()) return b;
  const index_t n = a.n_cols();
  Csc sym = a.symmetrized().with_full_diagonal();
  std::vector<index_t> parent = elimination_tree(sym);

  // Row-subtree traversal (Liu): row i of L is the union of etree paths
  // k -> ... -> i for every k < i with sym(i,k) != 0. Each entry is visited
  // once — this is the "symmetric pruning" fast path the paper credits for
  // the Figure 11 speedup.
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<index_t>> l_cols(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    mark[static_cast<std::size_t>(i)] = i;
    for (nnz_t p = sym.col_begin(i); p < sym.col_end(i); ++p) {
      index_t k = sym.row_idx()[static_cast<std::size_t>(p)];
      if (k >= i) break;  // upper entries of column i <=> row i's k < i
      while (mark[static_cast<std::size_t>(k)] != i) {
        mark[static_cast<std::size_t>(k)] = i;
        l_cols[static_cast<std::size_t>(k)].push_back(i);  // L(i,k) exists
        k = parent[static_cast<std::size_t>(k)];
        PANGULU_CHECK(k >= 0, "etree walk fell off the root");
      }
    }
  }

  // Lower pattern with diagonal; rows were appended in ascending i.
  std::vector<nnz_t> lptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j)
    lptr[static_cast<std::size_t>(j) + 1] =
        lptr[static_cast<std::size_t>(j)] + 1 +
        static_cast<nnz_t>(l_cols[static_cast<std::size_t>(j)].size());
  std::vector<index_t> lrows(static_cast<std::size_t>(lptr.back()));
  for (index_t j = 0; j < n; ++j) {
    nnz_t q = lptr[static_cast<std::size_t>(j)];
    lrows[static_cast<std::size_t>(q++)] = j;
    for (index_t r : l_cols[static_cast<std::size_t>(j)])
      lrows[static_cast<std::size_t>(q++)] = r;
  }
  const auto lower_nnz = static_cast<std::size_t>(lptr.back());
  Csc lower_pat =
      Csc::from_parts(n, n, std::move(lptr), std::move(lrows),
                      std::vector<value_t>(lower_nnz, value_t(0)));
  finish_result(assemble_filled(lower_pat, a), std::move(parent), out);
  return Status::ok();
}

Status symbolic_symmetric(const Csc& a, SymbolicResult* out, ThreadPool* pool) {
  ThreadPool& tp = effective_pool(pool);
  if (tp.size() <= 1) return symbolic_symmetric_serial(a, out);
  if (a.n_rows() != a.n_cols())
    return Status::invalid_argument("symbolic: square matrices only");
  Status b = check_fill_bounds(a.n_cols(), a.nnz());
  if (!b.is_ok()) return b;
  const index_t n = a.n_cols();
  Csc sym = symmetrized_with_diagonal(a, &tp);
  std::vector<index_t> parent = elimination_tree(sym);

  // Phase A: the Liu row-subtree walks, chunked over rows. Rows are mutually
  // independent given the etree, so chunk c records its discoveries (L entry
  // (i, k) as the pair (k, i)) in its own buffer and bumps its own count row.
  // The leased mark buffers are reused across chunks *without* reset: a mark
  // stores the globally unique row id being walked, so a stale id from a
  // previous holder can never equal the current row.
  const FixedPartition part = FixedPartition::make(n, n);
  const index_t n_chunks = part.n_chunks;
  ChunkCounts counts(n_chunks, n);
  std::vector<std::vector<std::pair<index_t, index_t>>> found(
      static_cast<std::size_t>(n_chunks));
  ScratchArena arena(n);
  std::atomic<bool> fell_off{false};
  parallel_for(
      tp, 0, n_chunks,
      [&](index_t c) {
        ScratchArena::Lease lease(arena);
        index_t* mark = lease.data();
        auto& buf = found[static_cast<std::size_t>(c)];
        nnz_t* cnt = counts.row(c);
        for (index_t i = part.begin(c); i < part.end(c); ++i) {
          mark[static_cast<std::size_t>(i)] = i;
          for (nnz_t p = sym.col_begin(i); p < sym.col_end(i); ++p) {
            index_t k = sym.row_idx()[static_cast<std::size_t>(p)];
            if (k >= i) break;
            while (mark[static_cast<std::size_t>(k)] != i) {
              mark[static_cast<std::size_t>(k)] = i;
              buf.emplace_back(k, i);
              cnt[k]++;
              k = parent[static_cast<std::size_t>(k)];
              if (k < 0) {
                fell_off.store(true, std::memory_order_relaxed);
                return;
              }
            }
          }
        }
      },
      /*grain=*/1);
  PANGULU_CHECK(!fell_off.load(), "etree walk fell off the root");

  // Phase B: column sizes (diagonal + discoveries) -> lptr by prefix sum;
  // count rows become per-(chunk, column) write cursors.
  std::vector<nnz_t> lcnt(static_cast<std::size_t>(n));
  counts.totals(tp, lcnt);
  parallel_for_chunks(tp, 0, n, [&](index_t lo, index_t hi) {
    for (index_t k = lo; k < hi; ++k) lcnt[static_cast<std::size_t>(k)] += 1;
  });
  std::vector<nnz_t> lptr(static_cast<std::size_t>(n) + 1);
  exclusive_prefix_sum(tp, lcnt, lptr);
  std::vector<nnz_t> base(static_cast<std::size_t>(n));
  parallel_for_chunks(tp, 0, n, [&](index_t lo, index_t hi) {
    for (index_t k = lo; k < hi; ++k)
      base[static_cast<std::size_t>(k)] = lptr[static_cast<std::size_t>(k)] + 1;
  });
  counts.to_cursors(tp, base);

  // Phase C: ordered scatter. Chunks ascend in row id and each chunk replays
  // its discoveries in order, so every column receives its rows ascending —
  // exactly the serial append order.
  std::vector<index_t> lrows(static_cast<std::size_t>(lptr.back()));
  parallel_for_chunks(tp, 0, n, [&](index_t lo, index_t hi) {
    for (index_t k = lo; k < hi; ++k)
      lrows[static_cast<std::size_t>(lptr[static_cast<std::size_t>(k)])] = k;
  });
  parallel_for(
      tp, 0, n_chunks,
      [&](index_t c) {
        nnz_t* cur = counts.row(c);
        for (const auto& [k, i] : found[static_cast<std::size_t>(c)])
          lrows[static_cast<std::size_t>(cur[k]++)] = i;
      },
      /*grain=*/1);
  const auto lower_nnz = static_cast<std::size_t>(lptr.back());
  Csc lower_pat =
      Csc::from_parts_unchecked(n, n, std::move(lptr), std::move(lrows),
                                std::vector<value_t>(lower_nnz, value_t(0)));
  finish_result_parallel(assemble_filled_parallel(lower_pat, a, tp),
                         std::move(parent), out, tp);
  return Status::ok();
}

Status symbolic_unsymmetric(const Csc& a, bool use_pruning, SymbolicResult* out) {
  if (a.n_rows() != a.n_cols())
    return Status::invalid_argument("symbolic: square matrices only");
  Status b = check_fill_bounds(a.n_cols(), a.nnz());
  if (!b.is_ok()) return b;
  const index_t n = a.n_cols();
  Csc base = a.with_full_diagonal();

  // Column-DFS reachability (Gilbert-Peierls). l_adj[k] holds the strictly
  // lower pattern of L(:,k); pruned_len[k] limits the DFS to the pruned
  // prefix when symmetric pruning is on.
  std::vector<std::vector<index_t>> l_adj(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> u_rows(static_cast<std::size_t>(n));  // U(:,j) strict rows per column
  std::vector<std::size_t> pruned_len(static_cast<std::size_t>(n), 0);
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  std::vector<index_t> dfs_stack;
  std::vector<std::size_t> dfs_pos;

  for (index_t j = 0; j < n; ++j) {
    std::vector<index_t>& lj = l_adj[static_cast<std::size_t>(j)];
    std::vector<index_t>& uj = u_rows[static_cast<std::size_t>(j)];
    mark[static_cast<std::size_t>(j)] = j;
    for (nnz_t p = base.col_begin(j); p < base.col_end(j); ++p) {
      index_t r0 = base.row_idx()[static_cast<std::size_t>(p)];
      if (mark[static_cast<std::size_t>(r0)] == j) continue;
      // Iterative DFS from r0 through columns < j.
      dfs_stack.assign(1, r0);
      dfs_pos.assign(1, 0);
      mark[static_cast<std::size_t>(r0)] = j;
      while (!dfs_stack.empty()) {
        index_t k = dfs_stack.back();
        if (k >= j) {
          // Row >= j: an L entry; no descent (only columns < j eliminate).
          lj.push_back(k);
          dfs_stack.pop_back();
          dfs_pos.pop_back();
          continue;
        }
        auto& adj = l_adj[static_cast<std::size_t>(k)];
        const std::size_t limit =
            use_pruning ? pruned_len[static_cast<std::size_t>(k)] : adj.size();
        bool descended = false;
        while (dfs_pos.back() < limit) {
          index_t r = adj[dfs_pos.back()++];
          if (mark[static_cast<std::size_t>(r)] != j) {
            mark[static_cast<std::size_t>(r)] = j;
            dfs_stack.push_back(r);
            dfs_pos.push_back(0);
            descended = true;
            break;
          }
        }
        if (!descended) {
          uj.push_back(k);  // k < j fully expanded: a U(k,j) entry
          dfs_stack.pop_back();
          dfs_pos.pop_back();
        }
      }
    }
    std::sort(lj.begin(), lj.end());
    std::sort(uj.begin(), uj.end());
    if (use_pruning) {
      // Eisenstat-Liu: once U(k,j) and L(j,k) both exist, L(:,k)'s DFS
      // adjacency can stop at row j.
      for (index_t k : uj) {
        auto& adj = l_adj[static_cast<std::size_t>(k)];
        if (pruned_len[static_cast<std::size_t>(k)] != adj.size()) continue;
        bool sym_entry =
            std::binary_search(adj.begin(), adj.end(), j);
        if (sym_entry) {
          auto it = std::upper_bound(adj.begin(), adj.end(), j);
          pruned_len[static_cast<std::size_t>(k)] =
              static_cast<std::size_t>(it - adj.begin());
        }
      }
      // Columns never pruned keep full adjacency for later DFS.
      if (pruned_len[static_cast<std::size_t>(j)] == 0)
        pruned_len[static_cast<std::size_t>(j)] = lj.size();
    }
  }
  if (use_pruning) {
    // pruned_len defaults above only set lazily; normalise unpruned columns.
    for (index_t k = 0; k < n; ++k) {
      if (pruned_len[static_cast<std::size_t>(k)] == 0)
        pruned_len[static_cast<std::size_t>(k)] =
            l_adj[static_cast<std::size_t>(k)].size();
    }
  }

  // Assemble L+U pattern column-wise: U rows (<j), diag, L rows (>j).
  std::vector<nnz_t> ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j)
    ptr[static_cast<std::size_t>(j) + 1] =
        ptr[static_cast<std::size_t>(j)] + 1 +
        static_cast<nnz_t>(u_rows[static_cast<std::size_t>(j)].size() +
                           l_adj[static_cast<std::size_t>(j)].size());
  std::vector<index_t> rows(static_cast<std::size_t>(ptr.back()));
  std::vector<value_t> vals(static_cast<std::size_t>(ptr.back()), value_t(0));
  for (index_t j = 0; j < n; ++j) {
    nnz_t q = ptr[static_cast<std::size_t>(j)];
    for (index_t r : u_rows[static_cast<std::size_t>(j)])
      rows[static_cast<std::size_t>(q++)] = r;
    rows[static_cast<std::size_t>(q++)] = j;
    for (index_t r : l_adj[static_cast<std::size_t>(j)])
      rows[static_cast<std::size_t>(q++)] = r;
  }
  Csc filled = Csc::from_parts(n, n, std::move(ptr), std::move(rows), std::move(vals));
  scatter_values_merged(a, &filled);
  finish_result(std::move(filled), {}, out);
  return Status::ok();
}

double factorization_flops(const Csc& filled) {
  const index_t n = filled.n_cols();
  // Count strictly-lower entries per column and strictly-upper entries per
  // row; column k of the factorisation costs |L_k| divisions plus
  // 2*|L_k|*|U_k| multiply-adds in the rank-1 update.
  std::vector<nnz_t> lower_col(static_cast<std::size_t>(n), 0);
  std::vector<nnz_t> upper_row(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    for (nnz_t p = filled.col_begin(j); p < filled.col_end(j); ++p) {
      index_t r = filled.row_idx()[static_cast<std::size_t>(p)];
      if (r > j)
        lower_col[static_cast<std::size_t>(j)]++;
      else if (r < j)
        upper_row[static_cast<std::size_t>(r)]++;
    }
  }
  double flops = 0;
  for (index_t k = 0; k < n; ++k) {
    double lk = static_cast<double>(lower_col[static_cast<std::size_t>(k)]);
    double uk = static_cast<double>(upper_row[static_cast<std::size_t>(k)]);
    flops += lk + 2.0 * lk * uk;
  }
  return flops;
}

}  // namespace pangulu::symbolic
