// Supernode detection with relaxed amalgamation — the structure the
// supernodal baseline (and Figure 3's motivation study) is built on.
//
// A (fundamental) supernode is a maximal run of consecutive columns
// j..j+s-1 of L whose strictly-lower patterns nest: pattern(L(:,j+1)) =
// pattern(L(:,j)) \ {j+1}. Relaxed amalgamation additionally merges a
// column whose pattern differs by at most `relax` rows, introducing
// explicit zero fill-ins — the padding the paper's Figure 1(d) crosses out.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "symbolic/fill.hpp"
#include "util/types.hpp"

namespace pangulu::symbolic {

struct Supernode {
  index_t first_col;  // inclusive
  index_t n_cols;
  index_t n_rows;     // rows of the supernodal panel (cols + strictly lower)
  nnz_t padding;      // explicit zeros introduced by relaxed amalgamation
};

struct SupernodePartition {
  std::vector<Supernode> supernodes;
  /// supernode id of each column.
  std::vector<index_t> col_to_supernode;
  /// Total explicit-zero padding over all panels.
  nnz_t total_padding = 0;
};

/// Detect supernodes on the filled pattern of L+U. `relax` is the maximum
/// number of pattern mismatches tolerated per merged column (0 = strict
/// fundamental supernodes); `max_cols` caps panel width.
SupernodePartition detect_supernodes(const Csc& filled, index_t relax,
                                     index_t max_cols);

}  // namespace pangulu::symbolic
