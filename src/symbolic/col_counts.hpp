// Column counts of the Cholesky/LU factor without computing the fill
// pattern (Gilbert, Ng & Peyton 1994, as in CSparse's cs_counts): O(nnz(A)
// alpha(n)) time, O(n) space. Lets callers size the factorisation — memory,
// block size, FLOPs — before committing to the full symbolic pass.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace pangulu::symbolic {

/// Per-column nonzero counts (diagonal included) of the lower factor L of
/// the symmetric pattern of `a` (symmetrised internally, like
/// symbolic_symmetric). counts[j] == nnz(L(:,j)).
std::vector<nnz_t> factor_column_counts(const Csc& a);

/// Total nnz(L+U) with the diagonal counted once — the same metric
/// SymbolicResult::nnz_lu reports, at a fraction of the cost.
nnz_t estimate_fill(const Csc& a);

}  // namespace pangulu::symbolic
