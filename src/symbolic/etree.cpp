#include "symbolic/etree.hpp"

#include <algorithm>

namespace pangulu::symbolic {

std::vector<index_t> elimination_tree(const Csc& a) {
  const index_t n = a.n_cols();
  PANGULU_CHECK(a.n_rows() == n, "etree: square matrix");
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);
  for (index_t j = 0; j < n; ++j) {
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      index_t i = a.row_idx()[static_cast<std::size_t>(p)];
      if (i >= j) break;  // only upper entries (rows < j) matter
      // Walk from i up to the root with path compression.
      index_t k = i;
      while (k != -1 && k != j) {
        index_t next = ancestor[static_cast<std::size_t>(k)];
        ancestor[static_cast<std::size_t>(k)] = j;
        if (next == -1) parent[static_cast<std::size_t>(k)] = j;
        k = next;
      }
    }
  }
  return parent;
}

std::vector<index_t> postorder(const std::vector<index_t>& parent) {
  const auto n = static_cast<index_t>(parent.size());
  // Build child lists (reverse order so the stack visits low children first).
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(n));
  std::vector<index_t> roots;
  for (index_t v = n - 1; v >= 0; --v) {
    index_t p = parent[static_cast<std::size_t>(v)];
    if (p < 0)
      roots.push_back(v);
    else
      children[static_cast<std::size_t>(p)].push_back(v);
  }
  std::vector<index_t> post;
  post.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> stack;
  std::vector<char> expanded(static_cast<std::size_t>(n), 0);
  for (index_t r : roots) {
    stack.push_back(r);
    while (!stack.empty()) {
      index_t v = stack.back();
      if (!expanded[static_cast<std::size_t>(v)]) {
        expanded[static_cast<std::size_t>(v)] = 1;
        for (index_t c : children[static_cast<std::size_t>(v)])
          stack.push_back(c);
      } else {
        stack.pop_back();
        post.push_back(v);
      }
    }
  }
  return post;
}

std::vector<index_t> tree_levels(const std::vector<index_t>& parent) {
  const auto n = static_cast<index_t>(parent.size());
  std::vector<index_t> level(static_cast<std::size_t>(n), 0);
  // Nodes are numbered so children precede parents in elimination order, so
  // one ascending pass is enough.
  for (index_t v = 0; v < n; ++v) {
    index_t p = parent[static_cast<std::size_t>(v)];
    if (p >= 0) {
      level[static_cast<std::size_t>(p)] =
          std::max(level[static_cast<std::size_t>(p)],
                   level[static_cast<std::size_t>(v)] + 1);
    }
  }
  return level;
}

}  // namespace pangulu::symbolic
