#include "symbolic/supernodes.hpp"

#include <algorithm>

namespace pangulu::symbolic {

SupernodePartition detect_supernodes(const Csc& filled, index_t relax,
                                     index_t max_cols) {
  const index_t n = filled.n_cols();
  PANGULU_CHECK(max_cols >= 1, "max_cols >= 1");

  // Strictly-lower pattern of each column (rows > j), taken from L+U.
  auto lower_rows = [&](index_t j, std::vector<index_t>& out) {
    out.clear();
    for (nnz_t p = filled.col_begin(j); p < filled.col_end(j); ++p) {
      index_t r = filled.row_idx()[static_cast<std::size_t>(p)];
      if (r > j) out.push_back(r);
    }
  };

  SupernodePartition part;
  part.col_to_supernode.assign(static_cast<std::size_t>(n), -1);

  std::vector<index_t> cur, nxt;
  index_t j = 0;
  while (j < n) {
    lower_rows(j, cur);
    Supernode sn{j, 1, static_cast<index_t>(cur.size()) + 1, 0};
    // The union of row patterns over the panel (drives panel height).
    std::vector<index_t> panel_rows = cur;
    nnz_t padding = 0;

    index_t k = j + 1;
    while (k < n && sn.n_cols < max_cols) {
      lower_rows(k, nxt);
      // Candidate merge: compare nxt against panel_rows minus row k.
      // mismatches = rows in either set but not the other (row k excluded
      // from the panel side, since it becomes a diagonal row of the panel).
      std::size_t pi = 0, ni = 0;
      nnz_t mismatch = 0;
      while (pi < panel_rows.size() || ni < nxt.size()) {
        index_t pr = pi < panel_rows.size() ? panel_rows[pi] : n;
        if (pr == k) {
          ++pi;  // column k joins the panel diagonal; not a mismatch
          continue;
        }
        index_t nr = ni < nxt.size() ? nxt[ni] : n;
        if (pr == nr) {
          ++pi;
          ++ni;
        } else if (pr < nr) {
          ++mismatch;  // panel has a row col k lacks -> zero pad in col k
          ++pi;
        } else {
          ++mismatch;  // col k adds a row -> zero pad in earlier columns
          ++ni;
        }
      }
      if (mismatch > relax) break;

      // Merge: union patterns, account padding.
      std::vector<index_t> merged;
      merged.reserve(panel_rows.size() + nxt.size());
      std::set_union(panel_rows.begin(), panel_rows.end(), nxt.begin(),
                     nxt.end(), std::back_inserter(merged));
      merged.erase(std::remove(merged.begin(), merged.end(), k), merged.end());
      padding += mismatch;
      panel_rows = std::move(merged);
      sn.n_cols++;
      ++k;
    }

    sn.n_rows = static_cast<index_t>(panel_rows.size()) + sn.n_cols;
    sn.padding = padding;
    part.total_padding += padding;
    auto id = static_cast<index_t>(part.supernodes.size());
    for (index_t c = sn.first_col; c < sn.first_col + sn.n_cols; ++c)
      part.col_to_supernode[static_cast<std::size_t>(c)] = id;
    part.supernodes.push_back(sn);
    j = sn.first_col + sn.n_cols;
  }
  return part;
}

}  // namespace pangulu::symbolic
