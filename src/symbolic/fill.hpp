// Symbolic factorisation (step 2 of the pipeline, §4.1/§5.2 of the paper).
//
// PanguLU path: symmetrise the matrix and run the O(nnz(L))-ish etree-based
// symbolic Cholesky ("symmetric pruning" — every path is pruned to its etree
// parent). Produces the exact filled pattern of L+U.
//
// Baseline path (what SuperLU_DIST-style solvers do): column-DFS transitive
// reachability on the unsymmetrised pattern (Gilbert-Peierls symbolic),
// optionally accelerated by symmetric pruning. Slower, which is precisely
// the gap Figure 11 measures.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/status.hpp"

namespace pangulu {
class ThreadPool;
}

namespace pangulu::symbolic {

struct SymbolicResult {
  /// Full pattern of L+U with A's values scattered in; fill-ins hold 0.
  Csc filled;
  /// nnz of the strictly-lower / upper-with-diagonal parts.
  nnz_t nnz_l = 0;
  nnz_t nnz_u = 0;
  /// nnz(L+U) counting the diagonal once (the paper's Table 3 metric).
  nnz_t nnz_lu = 0;
  /// Elimination tree used (symmetric path only; empty for the DFS path).
  std::vector<index_t> etree;
};

/// Guard the index arithmetic of symbolic fill before running it: the
/// symmetrised pattern holds up to `2 * nnz + n` entries (A + A^T plus an
/// explicit diagonal) and the filled pattern is bounded by the dense `n * n`
/// box — both sums must fit nnz_t. Returns kOutOfRange with a diagnosis
/// otherwise. Called by every symbolic entry point; exposed for direct
/// boundary testing.
[[nodiscard]] Status check_fill_bounds(index_t n, nnz_t nnz_a);

/// Symmetric-pruning symbolic factorisation on pattern(A + A^T). `a` must be
/// square; it is symmetrised internally. Runs the deterministic parallel
/// front-end on `pool` (nullptr: the global pool) — per-chunk etree row
/// walks into leased scratch, then prefix-sum assembly into pre-assigned
/// slots, so the result is bitwise identical to the serial reference at any
/// thread count. Pools with a single worker dispatch to the serial path.
Status symbolic_symmetric(const Csc& a, SymbolicResult* out,
                          ThreadPool* pool = nullptr);

/// The single-threaded reference implementation (kept callable as the ground
/// truth for the determinism property tests and the serial-vs-parallel
/// preprocessing bench).
Status symbolic_symmetric_serial(const Csc& a, SymbolicResult* out);

/// Gilbert-Peierls column-DFS symbolic factorisation on the unsymmetric
/// pattern. When `use_pruning` is set, DFS descends pruned adjacency only
/// (Eisenstat-Liu symmetric pruning); otherwise full L columns are searched.
Status symbolic_unsymmetric(const Csc& a, bool use_pruning, SymbolicResult* out);

/// FLOP count of an LU factorisation with the given filled pattern:
/// sum over columns of div + 2 * (outer-product update) work, the metric
/// reported in Table 3 ("PanguLU FLOPs").
double factorization_flops(const Csc& filled);

}  // namespace pangulu::symbolic
