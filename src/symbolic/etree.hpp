// Elimination tree utilities (Liu 1990). The etree drives the symmetric
// symbolic factorisation, the level-set schedule of the supernodal baseline,
// and the task priorities of the sync-free scheduler.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace pangulu::symbolic {

/// Elimination tree of the symmetric pattern of `a` (a must be structurally
/// symmetric with full diagonal — see Csc::symmetrized/with_full_diagonal).
/// parent[v] = etree parent, or -1 for roots.
std::vector<index_t> elimination_tree(const Csc& a);

/// Postorder of the forest; children before parents.
std::vector<index_t> postorder(const std::vector<index_t>& parent);

/// Level of each node: leaves are level 0, parent level = 1 + max(children).
/// These are the level sets whose barriers the baseline synchronises on.
std::vector<index_t> tree_levels(const std::vector<index_t>& parent);

}  // namespace pangulu::symbolic
