#include "symbolic/col_counts.hpp"

#include "symbolic/etree.hpp"

namespace pangulu::symbolic {

namespace {

/// cs_leaf: decide whether column j is a (first or subsequent) leaf of row
/// i's row-subtree; for subsequent leaves return the least common ancestor
/// of the previous leaf and j (with path compression on `ancestor`).
index_t leaf(index_t i, index_t j, const std::vector<index_t>& first,
             std::vector<index_t>& maxfirst, std::vector<index_t>& prevleaf,
             std::vector<index_t>& ancestor, int* jleaf) {
  *jleaf = 0;
  if (i <= j || first[static_cast<std::size_t>(j)] <=
                    maxfirst[static_cast<std::size_t>(i)]) {
    return -1;  // j is not a leaf of row i's subtree
  }
  maxfirst[static_cast<std::size_t>(i)] = first[static_cast<std::size_t>(j)];
  const index_t jprev = prevleaf[static_cast<std::size_t>(i)];
  prevleaf[static_cast<std::size_t>(i)] = j;
  *jleaf = (jprev == -1) ? 1 : 2;  // first leaf : subsequent leaf
  if (*jleaf == 1) return i;
  index_t q = jprev;
  while (q != ancestor[static_cast<std::size_t>(q)])
    q = ancestor[static_cast<std::size_t>(q)];
  for (index_t s = jprev; s != q;) {
    const index_t sparent = ancestor[static_cast<std::size_t>(s)];
    ancestor[static_cast<std::size_t>(s)] = q;
    s = sparent;
  }
  return q;  // lca(jprev, j)
}

}  // namespace

std::vector<nnz_t> factor_column_counts(const Csc& a) {
  PANGULU_CHECK(a.n_rows() == a.n_cols(), "column counts: square matrix");
  const index_t n = a.n_cols();
  const Csc sym = a.symmetrized().with_full_diagonal();
  const std::vector<index_t> parent = elimination_tree(sym);
  const std::vector<index_t> post = postorder(parent);

  std::vector<nnz_t> delta(static_cast<std::size_t>(n), 0);
  std::vector<index_t> first(static_cast<std::size_t>(n), -1);
  for (index_t k = 0; k < n; ++k) {
    index_t j = post[static_cast<std::size_t>(k)];
    delta[static_cast<std::size_t>(j)] =
        (first[static_cast<std::size_t>(j)] == -1) ? 1 : 0;  // leaf gets diag
    while (j != -1 && first[static_cast<std::size_t>(j)] == -1) {
      first[static_cast<std::size_t>(j)] = k;
      j = parent[static_cast<std::size_t>(j)];
    }
  }

  std::vector<index_t> maxfirst(static_cast<std::size_t>(n), -1);
  std::vector<index_t> prevleaf(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) ancestor[static_cast<std::size_t>(i)] = i;

  for (index_t k = 0; k < n; ++k) {
    const index_t j = post[static_cast<std::size_t>(k)];
    if (parent[static_cast<std::size_t>(j)] != -1)
      delta[static_cast<std::size_t>(parent[static_cast<std::size_t>(j)])]--;
    // Entries of row j (== column j: the pattern is symmetric) with i > j.
    for (nnz_t p = sym.col_begin(j); p < sym.col_end(j); ++p) {
      const index_t i = sym.row_idx()[static_cast<std::size_t>(p)];
      int jleaf = 0;
      const index_t q = leaf(i, j, first, maxfirst, prevleaf, ancestor, &jleaf);
      if (jleaf >= 1) delta[static_cast<std::size_t>(j)]++;
      if (jleaf == 2) delta[static_cast<std::size_t>(q)]--;
    }
    if (parent[static_cast<std::size_t>(j)] != -1)
      ancestor[static_cast<std::size_t>(j)] = parent[static_cast<std::size_t>(j)];
  }
  // Accumulate the deltas up the elimination tree.
  for (index_t j = 0; j < n; ++j) {
    if (parent[static_cast<std::size_t>(j)] != -1)
      delta[static_cast<std::size_t>(parent[static_cast<std::size_t>(j)])] +=
          delta[static_cast<std::size_t>(j)];
  }
  return delta;
}

nnz_t estimate_fill(const Csc& a) {
  const auto counts = factor_column_counts(a);
  nnz_t total = 0;
  for (nnz_t c : counts) total += 2 * c - 1;  // L col + U row, diag once
  return total;
}

}  // namespace pangulu::symbolic
