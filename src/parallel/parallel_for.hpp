// Range-parallel helpers over a ThreadPool. The grain-size split mirrors how
// GPU kernels assign warps to columns/rows: each chunk is one "warp" of work.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>

#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace pangulu {

/// Execute body(i) for i in [begin, end) across the pool. Blocks until done.
/// Falls back to a serial loop for tiny ranges (launch overhead dominates).
template <typename Body>
void parallel_for(ThreadPool& pool, index_t begin, index_t end, Body body,
                  index_t grain = 0) {
  const index_t n = end - begin;
  if (n <= 0) return;
  const auto workers = static_cast<index_t>(pool.size());
  if (grain <= 0) grain = std::max<index_t>(1, n / (4 * workers));
  if (n <= grain || workers <= 1) {
    for (index_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<index_t> next(begin);
  const index_t g = grain;
  auto worker = [&]() {
    for (;;) {
      index_t lo = next.fetch_add(g, std::memory_order_relaxed);
      if (lo >= end) return;
      index_t hi = std::min<index_t>(lo + g, end);
      for (index_t i = lo; i < hi; ++i) body(i);
    }
  };
  // The calling thread participates too, so the pool being busy elsewhere can
  // never deadlock a nested parallel_for.
  std::atomic<int> done(0);
  int launched = static_cast<int>(workers) - 1;
  for (int t = 0; t < launched; ++t) {
    pool.submit([&worker, &done] {
      worker();
      done.fetch_add(1, std::memory_order_release);
    });
  }
  worker();
  while (done.load(std::memory_order_acquire) < launched) {
    std::this_thread::yield();
  }
}

/// Chunk-granular variant: body(lo, hi) is invoked once per contiguous chunk
/// instead of once per index, so per-thread setup (e.g. leasing a scratch
/// workspace) amortises over the whole chunk. Same work-handout discipline as
/// parallel_for; the calling thread participates.
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, index_t begin, index_t end,
                         Body body, index_t grain = 0) {
  const index_t n = end - begin;
  if (n <= 0) return;
  const auto workers = static_cast<index_t>(pool.size());
  if (grain <= 0) grain = std::max<index_t>(1, n / (4 * workers));
  if (n <= grain || workers <= 1) {
    body(begin, end);
    return;
  }
  std::atomic<index_t> next(begin);
  const index_t g = grain;
  auto worker = [&]() {
    for (;;) {
      index_t lo = next.fetch_add(g, std::memory_order_relaxed);
      if (lo >= end) return;
      body(lo, std::min<index_t>(lo + g, end));
    }
  };
  std::atomic<int> done(0);
  int launched = static_cast<int>(workers) - 1;
  for (int t = 0; t < launched; ++t) {
    pool.submit([&worker, &done] {
      worker();
      done.fetch_add(1, std::memory_order_release);
    });
  }
  worker();
  while (done.load(std::memory_order_acquire) < launched) {
    std::this_thread::yield();
  }
}

/// Convenience overload on the global pool.
template <typename Body>
void parallel_for(index_t begin, index_t end, Body body, index_t grain = 0) {
  parallel_for(ThreadPool::global(), begin, end, std::move(body), grain);
}

}  // namespace pangulu
