// Deterministic fixed partitioning for the parallel preprocessing front-end.
//
// Every parallel phase in the front-end (symbolic fill, 2D blocking, the
// balancer's weight accumulation) must produce *bitwise identical* results to
// its serial reference at any thread count. The discipline that makes this
// possible: chunk boundaries are a pure function of the problem size (never
// of the worker count), each chunk counts its output into a private row of a
// count table, an exclusive prefix across chunk rows turns counts into write
// cursors, and the scatter pass writes every element into its pre-assigned
// slot. Determinism comes from the slot assignment, not from execution
// order, so chunks may be executed by any thread in any interleaving.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "parallel/annotations.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace pangulu {

/// The front-end convention: entry points take `ThreadPool* pool = nullptr`
/// and nullptr selects the process-global pool.
inline ThreadPool& effective_pool(ThreadPool* pool) {
  return pool ? *pool : ThreadPool::global();
}

/// Fixed [begin(c), end(c)) chunk ranges over [0, n). `bins` is the width of
/// the count-table row each chunk will own (see ChunkCounts); the chunk count
/// is clamped so the whole table stays within a fixed memory budget. All
/// fields are pure functions of (n, bins) — never of the worker count.
struct FixedPartition {
  index_t n = 0;
  index_t n_chunks = 1;
  index_t chunk_len = 1;

  static FixedPartition make(index_t n, index_t bins) {
    constexpr index_t kMinGrain = 64;                   // don't split tiny work
    constexpr index_t kMaxChunks = 64;
    constexpr nnz_t kMaxTableEntries = nnz_t(1) << 23;  // <= 64 MiB of cursors
    FixedPartition p;
    if (n <= 0) return p;
    p.n = n;
    const nnz_t by_grain = std::max<nnz_t>(1, static_cast<nnz_t>(n) / kMinGrain);
    const nnz_t by_table =
        std::max<nnz_t>(1, kMaxTableEntries / std::max<nnz_t>(1, bins));
    p.n_chunks = static_cast<index_t>(
        std::min<nnz_t>(kMaxChunks, std::min(by_grain, by_table)));
    p.chunk_len = (n + p.n_chunks - 1) / p.n_chunks;
    return p;
  }

  index_t begin(index_t c) const { return std::min(n, c * chunk_len); }
  index_t end(index_t c) const { return std::min(n, (c + 1) * chunk_len); }
};

/// out[0] = 0, out[i + 1] = out[i] + counts[i]. Two-pass block scan; exact
/// for the integer counters it is used on. `out.size() == counts.size() + 1`.
inline void exclusive_prefix_sum(ThreadPool& pool, std::span<const nnz_t> counts,
                                 std::span<nnz_t> out) {
  const auto n = static_cast<index_t>(counts.size());
  out[0] = 0;
  if (n <= 0) return;
  const FixedPartition part = FixedPartition::make(n, 1);
  std::vector<nnz_t> chunk_sum(static_cast<std::size_t>(part.n_chunks), 0);
  parallel_for(
      pool, 0, part.n_chunks,
      [&](index_t c) {
        nnz_t s = 0;
        for (index_t i = part.begin(c); i < part.end(c); ++i)
          s += counts[static_cast<std::size_t>(i)];
        chunk_sum[static_cast<std::size_t>(c)] = s;
      },
      /*grain=*/1);
  std::vector<nnz_t> chunk_base(static_cast<std::size_t>(part.n_chunks), 0);
  for (index_t c = 1; c < part.n_chunks; ++c)
    chunk_base[static_cast<std::size_t>(c)] =
        chunk_base[static_cast<std::size_t>(c) - 1] +
        chunk_sum[static_cast<std::size_t>(c) - 1];
  parallel_for(
      pool, 0, part.n_chunks,
      [&](index_t c) {
        nnz_t s = chunk_base[static_cast<std::size_t>(c)];
        for (index_t i = part.begin(c); i < part.end(c); ++i) {
          s += counts[static_cast<std::size_t>(i)];
          out[static_cast<std::size_t>(i) + 1] = s;
        }
      },
      /*grain=*/1);
}

/// n_chunks x bins table of counters backing the two-pass counting-scatter:
/// phase 1 has chunk c bump `row(c)[bin]` per element; `to_cursors` then
/// replaces each count with the absolute output slot of the chunk's first
/// element in that bin (given per-bin base offsets), after which `row(c)[bin]`
/// is chunk c's write cursor for the scatter phase. Chunk rows are private to
/// their chunk in both passes, and `totals`/`to_cursors` write each bin from
/// exactly one task, so no two threads ever touch the same counter.
class ChunkCounts {
 public:
  ChunkCounts(index_t n_chunks, index_t bins)
      : n_chunks_(n_chunks),
        bins_(bins),
        data_(static_cast<std::size_t>(n_chunks) * static_cast<std::size_t>(bins),
              0) {}

  nnz_t* row(index_t c) {
    return data_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(bins_);
  }

  /// out[b] = sum over chunks of row(c)[b].
  void totals(ThreadPool& pool, std::span<nnz_t> out) {
    parallel_for_chunks(pool, 0, bins_, [&](index_t lo, index_t hi) {
      for (index_t b = lo; b < hi; ++b) {
        nnz_t s = 0;
        for (index_t c = 0; c < n_chunks_; ++c)
          s += row_const(c)[static_cast<std::size_t>(b)];
        out[static_cast<std::size_t>(b)] = s;
      }
    });
  }

  /// row(c)[b] := base[b] + sum of row(c')[b] over chunks c' < c.
  void to_cursors(ThreadPool& pool, std::span<const nnz_t> base) {
    parallel_for_chunks(pool, 0, bins_, [&](index_t lo, index_t hi) {
      for (index_t b = lo; b < hi; ++b) {
        nnz_t cur = base[static_cast<std::size_t>(b)];
        for (index_t c = 0; c < n_chunks_; ++c) {
          nnz_t& slot = row(c)[static_cast<std::size_t>(b)];
          const nnz_t cnt = slot;
          slot = cur;
          cur += cnt;
        }
      }
    });
  }

 private:
  const nnz_t* row_const(index_t c) const {
    return data_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(bins_);
  }

  index_t n_chunks_;
  index_t bins_;
  std::vector<nnz_t> data_;
};

/// Pool of leased index_t scratch buffers of a fixed length, initialised to
/// -1 on first creation. Mirrors kernels::Workspace::Lease: a task leases a
/// buffer for one chunk of work and returns it on destruction; the free list
/// is the only shared state and lives under `mu_`. Release/acquire pairs on
/// the mutex order the buffer contents between successive holders.
///
/// Reuse deliberately skips re-initialisation: holders store globally unique
/// ids (e.g. the row currently being walked) and test with `==`, so a stale
/// value written by a previous holder can never collide with the current id.
class ScratchArena {
 public:
  explicit ScratchArena(index_t len) : len_(len) {}

  class Lease {
   public:
    explicit Lease(ScratchArena& arena)
        : arena_(arena), buf_(arena.acquire()) {}
    ~Lease() { arena_.release(buf_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    index_t* data() { return buf_->data(); }

   private:
    ScratchArena& arena_;
    std::vector<index_t>* buf_;
  };

 private:
  std::vector<index_t>* acquire() {
    MutexLock lk(mu_);
    if (!free_.empty()) {
      std::vector<index_t>* b = free_.back();
      free_.pop_back();
      return b;
    }
    buffers_.push_back(std::make_unique<std::vector<index_t>>(
        static_cast<std::size_t>(len_), index_t(-1)));
    return buffers_.back().get();
  }

  void release(std::vector<index_t>* b) {
    MutexLock lk(mu_);
    free_.push_back(b);
  }

  index_t len_;
  Mutex mu_;
  std::vector<std::unique_ptr<std::vector<index_t>>> buffers_
      PANGULU_GUARDED_BY(mu_);
  std::vector<std::vector<index_t>*> free_ PANGULU_GUARDED_BY(mu_);
};

}  // namespace pangulu
