#include "parallel/thread_pool.hpp"

namespace pangulu {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lk(mu_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lk(mu_);
  cv_idle_.wait(lk, [this] {
    mu_.assert_held();
    return tasks_.empty() && in_flight_ == 0;
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(mu_);
      cv_task_.wait(lk, [this] {
        mu_.assert_held();
        return stop_ || !tasks_.empty();
      });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      MutexLock lk(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pangulu
