// Fixed-size worker pool. The "G_" kernel variants in src/kernels are
// structured like their GPU counterparts (chunks of work ~ warps); on this
// host they execute on this pool. The pool is also the backbone of the
// ThreadedExecutor runtime backend.
//
// Concurrency discipline is compiler-enforced where the toolchain allows:
// every shared member is PANGULU_GUARDED_BY(mu_) and the build turns
// -Wthread-safety into an error under Clang (see parallel/annotations.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "parallel/annotations.hpp"

namespace pangulu {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task) PANGULU_EXCLUDES(mu_);

  /// Block until every submitted task has finished executing.
  void wait_idle() PANGULU_EXCLUDES(mu_);

  /// Process-wide default pool, sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop() PANGULU_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::condition_variable_any cv_task_;
  std::condition_variable_any cv_idle_;
  std::queue<std::function<void()>> tasks_ PANGULU_GUARDED_BY(mu_);
  std::size_t in_flight_ PANGULU_GUARDED_BY(mu_) = 0;
  bool stop_ PANGULU_GUARDED_BY(mu_) = false;
};

}  // namespace pangulu
