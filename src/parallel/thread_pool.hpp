// Fixed-size worker pool. The "G_" kernel variants in src/kernels are
// structured like their GPU counterparts (chunks of work ~ warps); on this
// host they execute on this pool. The pool is also the backbone of the
// ThreadedExecutor runtime backend.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pangulu {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Process-wide default pool, sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace pangulu
