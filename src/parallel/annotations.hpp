// Clang thread-safety annotations (-Wthread-safety) for the concurrency
// discipline of the thread pool and the threaded sync-free executor.
//
// Under Clang the macros expand to the static-analysis attributes, so a
// guarded member touched without its mutex, a lock released twice, or a
// REQUIRES contract broken is a compile-time diagnostic (an *error* when
// the build enables -Werror=thread-safety, see the top-level CMakeLists).
// Under other compilers everything expands to nothing and the wrappers
// below behave exactly like std::mutex / std::unique_lock.
//
// Clang's analysis does not know std::mutex, so guarded code uses the
// annotated pangulu::Mutex / pangulu::MutexLock capabilities instead, with
// std::condition_variable_any (which accepts any BasicLockable) for waits.
#pragma once

#include <mutex>

#if defined(__clang__)
#define PANGULU_TSA(x) __attribute__((x))
#else
#define PANGULU_TSA(x)
#endif

#define PANGULU_CAPABILITY(x) PANGULU_TSA(capability(x))
#define PANGULU_SCOPED_CAPABILITY PANGULU_TSA(scoped_lockable)
#define PANGULU_GUARDED_BY(x) PANGULU_TSA(guarded_by(x))
#define PANGULU_PT_GUARDED_BY(x) PANGULU_TSA(pt_guarded_by(x))
#define PANGULU_REQUIRES(...) PANGULU_TSA(requires_capability(__VA_ARGS__))
#define PANGULU_ACQUIRE(...) PANGULU_TSA(acquire_capability(__VA_ARGS__))
#define PANGULU_RELEASE(...) PANGULU_TSA(release_capability(__VA_ARGS__))
#define PANGULU_TRY_ACQUIRE(...) PANGULU_TSA(try_acquire_capability(__VA_ARGS__))
#define PANGULU_EXCLUDES(...) PANGULU_TSA(locks_excluded(__VA_ARGS__))
#define PANGULU_ASSERT_CAPABILITY(x) PANGULU_TSA(assert_capability(x))
#define PANGULU_RETURN_CAPABILITY(x) PANGULU_TSA(lock_returned(x))
#define PANGULU_NO_THREAD_SAFETY_ANALYSIS \
  PANGULU_TSA(no_thread_safety_analysis)

namespace pangulu {

/// std::mutex with the capability attribute the analysis needs.
class PANGULU_CAPABILITY("mutex") Mutex {
 public:
  void lock() PANGULU_ACQUIRE() { mu_.lock(); }
  void unlock() PANGULU_RELEASE() { mu_.unlock(); }
  bool try_lock() PANGULU_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tell the analysis the mutex is held here without acquiring it — for
  /// condition-variable predicates, which run with the lock held but whose
  /// lambda bodies the analysis checks in isolation.
  void assert_held() const PANGULU_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex. Also a BasicLockable (public lock/unlock), so
/// std::condition_variable_any can release and re-take it inside wait();
/// analysis-wise the capability is held across the wait, which matches the
/// guarded-data contract the caller relies on.
class PANGULU_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PANGULU_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PANGULU_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable for condition_variable_any (not annotated: the transient
  // unlock/relock inside wait() is invisible to the analysis by design).
  void lock() PANGULU_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() PANGULU_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace pangulu
