// Free-function utilities over sparse matrices and vectors: norms, residuals,
// triangular solves with full matrices (reference paths), permutation helpers.
#pragma once

#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace pangulu {

class ThreadPool;

/// ||v||_2
value_t norm2(std::span<const value_t> v);

/// ||v||_inf
value_t norm_inf(std::span<const value_t> v);

/// ||A||_1 (max column sum of absolute values).
value_t norm1(const Csc& a);

/// Componentwise backward-error style residual: ||b - A x||_inf /
/// (||A||_1 ||x||_inf + ||b||_inf). The acceptance metric of integration
/// tests and examples.
value_t relative_residual(const Csc& a, std::span<const value_t> x,
                          std::span<const value_t> b);

/// Solve L y = b where L is a full (n x n) sparse unit- or non-unit lower
/// triangular CSC matrix. `unit_diag` skips the division.
void lower_solve(const Csc& l, std::span<value_t> x, bool unit_diag);

/// Solve U x = y where U is upper triangular CSC.
void upper_solve(const Csc& u, std::span<value_t> x);

/// a.transpose() computed with deterministic chunked counting-scatter on the
/// pool (nullptr: the global pool). Bitwise identical to the serial method at
/// any thread count.
Csc transposed(const Csc& a, ThreadPool* pool = nullptr);

/// a.symmetrized().with_full_diagonal() in one parallel transpose + per-column
/// merge instead of two COO sort rounds. Bitwise identical output (values of
/// mirrored entries reproduce the reference's `a(r,j) + 0` sums); the fast
/// path of the parallel symbolic front-end.
Csc symmetrized_with_diagonal(const Csc& a, ThreadPool* pool = nullptr);

/// True when p is a permutation of 0..n-1.
bool is_permutation(std::span<const index_t> p);

/// Inverse permutation: q[p[i]] = i.
std::vector<index_t> invert_permutation(std::span<const index_t> p);

/// Identity permutation of length n.
std::vector<index_t> identity_permutation(index_t n);

/// Composition r = p after q, i.e. r[i] = p[q[i]].
std::vector<index_t> compose(std::span<const index_t> p,
                             std::span<const index_t> q);

}  // namespace pangulu
