// Column-major dense matrix. Used as the scratch space of "Direct"
// (dense-mapping) kernels and as the panel storage of the supernodal
// baseline. Templated on the value type V (float/double); the unsuffixed
// alias keeps the historical FP64 spelling.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "sparse/csc.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace pangulu {

template <class V>
class DenseT {
 public:
  DenseT() = default;
  DenseT(index_t rows, index_t cols)
      : n_rows_(rows),
        n_cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              V(0)) {}

  static DenseT from_csc(const CscT<V>& a) {
    DenseT d(a.n_rows(), a.n_cols());
    for (index_t j = 0; j < a.n_cols(); ++j) {
      for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
        d(a.row_idx()[static_cast<std::size_t>(p)], j) =
            a.values()[static_cast<std::size_t>(p)];
      }
    }
    return d;
  }

  index_t n_rows() const { return n_rows_; }
  index_t n_cols() const { return n_cols_; }

  V& operator()(index_t r, index_t c) {
    return data_[static_cast<std::size_t>(c) * n_rows_ + r];
  }
  V operator()(index_t r, index_t c) const {
    return data_[static_cast<std::size_t>(c) * n_rows_ + r];
  }

  V* col(index_t c) { return data_.data() + static_cast<std::size_t>(c) * n_rows_; }
  const V* col(index_t c) const {
    return data_.data() + static_cast<std::size_t>(c) * n_rows_;
  }

  void set_zero() { std::fill(data_.begin(), data_.end(), V(0)); }

  /// Convert to CSC, dropping entries with |v| <= drop_tol.
  CscT<V> to_csc(V drop_tol = V(0)) const {
    CooT<V> coo(n_rows_, n_cols_);
    for (index_t j = 0; j < n_cols_; ++j) {
      for (index_t i = 0; i < n_rows_; ++i) {
        V v = (*this)(i, j);
        if (std::abs(v) > drop_tol) coo.add(i, j, v);
      }
    }
    return CscT<V>::from_coo(coo);
  }

  /// C -= A * B (all dense, shapes must agree). Reference GEMM used by the
  /// supernodal baseline's Schur complement and by kernel tests.
  static void gemm_sub(const DenseT& a, const DenseT& b, DenseT& c) {
    PANGULU_CHECK(a.n_cols() == b.n_rows() && c.n_rows() == a.n_rows() &&
                      c.n_cols() == b.n_cols(),
                  "gemm shape mismatch");
    for (index_t j = 0; j < b.n_cols(); ++j) {
      for (index_t k = 0; k < a.n_cols(); ++k) {
        const V bkj = b(k, j);
        if (bkj == V(0)) continue;
        const V* ak = a.col(k);
        V* cj = c.col(j);
        for (index_t i = 0; i < a.n_rows(); ++i) cj[i] -= ak[i] * bkj;
      }
    }
  }

 private:
  index_t n_rows_ = 0;
  index_t n_cols_ = 0;
  std::vector<V> data_;
};

using Dense = DenseT<value_t>;

}  // namespace pangulu
