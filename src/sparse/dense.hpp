// Column-major dense matrix. Used as the scratch space of "Direct"
// (dense-mapping) kernels and as the panel storage of the supernodal
// baseline.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "sparse/csc.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace pangulu {

class Dense {
 public:
  Dense() = default;
  Dense(index_t rows, index_t cols)
      : n_rows_(rows),
        n_cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              value_t(0)) {}

  static Dense from_csc(const Csc& a) {
    Dense d(a.n_rows(), a.n_cols());
    for (index_t j = 0; j < a.n_cols(); ++j) {
      for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
        d(a.row_idx()[static_cast<std::size_t>(p)], j) =
            a.values()[static_cast<std::size_t>(p)];
      }
    }
    return d;
  }

  index_t n_rows() const { return n_rows_; }
  index_t n_cols() const { return n_cols_; }

  value_t& operator()(index_t r, index_t c) {
    return data_[static_cast<std::size_t>(c) * n_rows_ + r];
  }
  value_t operator()(index_t r, index_t c) const {
    return data_[static_cast<std::size_t>(c) * n_rows_ + r];
  }

  value_t* col(index_t c) { return data_.data() + static_cast<std::size_t>(c) * n_rows_; }
  const value_t* col(index_t c) const {
    return data_.data() + static_cast<std::size_t>(c) * n_rows_;
  }

  void set_zero() { std::fill(data_.begin(), data_.end(), value_t(0)); }

  /// Convert to CSC, dropping entries with |v| <= drop_tol.
  Csc to_csc(value_t drop_tol = value_t(0)) const {
    Coo coo(n_rows_, n_cols_);
    for (index_t j = 0; j < n_cols_; ++j) {
      for (index_t i = 0; i < n_rows_; ++i) {
        value_t v = (*this)(i, j);
        if (std::abs(v) > drop_tol) coo.add(i, j, v);
      }
    }
    return Csc::from_coo(coo);
  }

  /// C -= A * B (all dense, shapes must agree). Reference GEMM used by the
  /// supernodal baseline's Schur complement and by kernel tests.
  static void gemm_sub(const Dense& a, const Dense& b, Dense& c) {
    PANGULU_CHECK(a.n_cols() == b.n_rows() && c.n_rows() == a.n_rows() &&
                      c.n_cols() == b.n_cols(),
                  "gemm shape mismatch");
    for (index_t j = 0; j < b.n_cols(); ++j) {
      for (index_t k = 0; k < a.n_cols(); ++k) {
        const value_t bkj = b(k, j);
        if (bkj == value_t(0)) continue;
        const value_t* ak = a.col(k);
        value_t* cj = c.col(j);
        for (index_t i = 0; i < a.n_rows(); ++i) cj[i] -= ak[i] * bkj;
      }
    }
  }

 private:
  index_t n_rows_ = 0;
  index_t n_cols_ = 0;
  std::vector<value_t> data_;
};

}  // namespace pangulu
