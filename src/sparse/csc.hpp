// Compressed Sparse Column matrix — the workhorse container of the solver.
// Both storage layers of PanguLU's two-layer structure (Figure 6 of the
// paper) are CSC: blocks-of-the-matrix at the first layer, nonzeros-of-a-
// block at the second.
//
// The container is templated on its value type V (float/double) so the
// whole numeric stack instantiates at both precisions (DESIGN.md §14); the
// unsuffixed `Csc` alias keeps the historical FP64 spelling at every
// existing call site. Member definitions live in csc.cpp and are explicitly
// instantiated for float and double.
#pragma once

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace pangulu {

template <class V>
class CscT {
 public:
  using value_type = V;

  CscT() = default;

  /// Empty matrix with the given shape.
  CscT(index_t rows, index_t cols)
      : n_rows_(rows), n_cols_(cols), col_ptr_(static_cast<std::size_t>(cols) + 1, 0) {}

  /// Build from COO. Duplicates are summed; rows sorted within each column.
  static CscT from_coo(const CooT<V>& coo);

  /// Build directly from raw arrays (validated: monotone pointers, in-range
  /// sorted row indices).
  static CscT from_parts(index_t rows, index_t cols, std::vector<nnz_t> col_ptr,
                         std::vector<index_t> row_idx, std::vector<V> values);

  /// As from_parts but without the O(nnz) validation pass — for internal
  /// construction sites that build the arrays in sorted order by design
  /// (e.g. the block-layout splitter on its hot path).
  static CscT from_parts_unchecked(index_t rows, index_t cols,
                                   std::vector<nnz_t> col_ptr,
                                   std::vector<index_t> row_idx,
                                   std::vector<V> values);

  /// Structure-preserving precision conversion: identical pattern arrays,
  /// values static_cast to V. float -> double is exact; double -> float is
  /// the down-conversion of the mixed-precision pipeline.
  template <class U>
  static CscT converted_from(const CscT<U>& other) {
    CscT m;
    m.n_rows_ = other.n_rows_;
    m.n_cols_ = other.n_cols_;
    m.col_ptr_ = other.col_ptr_;
    m.row_idx_ = other.row_idx_;
    m.values_.resize(other.values_.size());
    for (std::size_t i = 0; i < other.values_.size(); ++i)
      m.values_[i] = static_cast<V>(other.values_[i]);
    return m;
  }

  index_t n_rows() const { return n_rows_; }
  index_t n_cols() const { return n_cols_; }
  nnz_t nnz() const { return col_ptr_.empty() ? 0 : col_ptr_.back(); }

  std::span<const nnz_t> col_ptr() const { return col_ptr_; }
  std::span<const index_t> row_idx() const { return row_idx_; }
  std::span<const V> values() const { return values_; }
  std::span<V> values_mut() { return values_; }
  std::span<index_t> row_idx_mut() { return row_idx_; }
  std::vector<nnz_t>& col_ptr_mut() { return col_ptr_; }

  nnz_t col_begin(index_t j) const { return col_ptr_[static_cast<std::size_t>(j)]; }
  nnz_t col_end(index_t j) const { return col_ptr_[static_cast<std::size_t>(j) + 1]; }
  index_t col_nnz(index_t j) const {
    return static_cast<index_t>(col_end(j) - col_begin(j));
  }

  /// Density of the stored pattern relative to the dense rows*cols box.
  double density() const;

  /// Value at (r, c) or 0 when the entry is not stored. Binary search.
  V at(index_t r, index_t c) const;

  /// Position of (r, c) in row_idx/values, or -1. Binary search — the
  /// "Bin-search" addressing method of Table 1 in the paper.
  nnz_t find(index_t r, index_t c) const;

  /// y = A*x (y overwritten).
  void spmv(std::span<const V> x, std::span<V> y) const;

  /// Transposed matrix in CSC form (equivalently: this matrix viewed as CSR).
  CscT transpose() const;

  /// PAQ' style symmetric-application: result(i,j) = this(row_perm[i] -> i ...)
  /// Specifically: result(r2, c2) = A(r, c) where r2 = row_perm[r],
  /// c2 = col_perm[c]. Both perms map old index -> new index.
  CscT permuted(std::span<const index_t> row_perm,
                std::span<const index_t> col_perm) const;

  /// Scale: A(i,j) *= row_scale[i] * col_scale[j].
  void scale(std::span<const V> row_scale, std::span<const V> col_scale);

  /// Pattern of A + A^T (values summed; explicit zeros kept). Ensures a
  /// structurally symmetric matrix for ordering/symbolic factorisation.
  CscT symmetrized() const;

  /// Ensure every diagonal entry exists in the pattern (added as 0 when
  /// missing). The symbolic phase and GETRF both require stored diagonals.
  CscT with_full_diagonal() const;

  /// Extract the sub-matrix rows [r0, r1) x cols [c0, c1).
  CscT sub_matrix(index_t r0, index_t r1, index_t c0, index_t c1) const;

  /// Structure-only copy with all values zero.
  CscT pattern_copy() const;

  /// Max |a_ij| over the matrix.
  V max_abs() const;

  /// True when patterns are identical and values match within tol (absolute
  /// + relative mix).
  bool approx_equal(const CscT& other, V tol) const;

  /// True when (r,c) with r<c never stored / r>c never stored respectively.
  bool is_lower_triangular() const;
  bool is_upper_triangular() const;

  /// Internal invariant check: pointer monotonicity, sorted in-range rows.
  Status validate() const;

 private:
  template <class U>
  friend class CscT;

  index_t n_rows_ = 0;
  index_t n_cols_ = 0;
  std::vector<nnz_t> col_ptr_;
  std::vector<index_t> row_idx_;
  std::vector<V> values_;
};

using Csc = CscT<value_t>;

}  // namespace pangulu
