#include "sparse/ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pangulu {

value_t norm2(std::span<const value_t> v) {
  value_t s = 0;
  for (value_t x : v) s += x * x;
  return std::sqrt(s);
}

value_t norm_inf(std::span<const value_t> v) {
  value_t m = 0;
  for (value_t x : v) m = std::max(m, std::abs(x));
  return m;
}

value_t norm1(const Csc& a) {
  value_t m = 0;
  for (index_t j = 0; j < a.n_cols(); ++j) {
    value_t s = 0;
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p)
      s += std::abs(a.values()[static_cast<std::size_t>(p)]);
    m = std::max(m, s);
  }
  return m;
}

value_t relative_residual(const Csc& a, std::span<const value_t> x,
                          std::span<const value_t> b) {
  std::vector<value_t> r(b.begin(), b.end());
  std::vector<value_t> ax(static_cast<std::size_t>(a.n_rows()));
  a.spmv(x, ax);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= ax[i];
  value_t denom = norm1(a) * norm_inf(x) + norm_inf(b);
  if (denom == value_t(0)) denom = 1;
  return norm_inf(r) / denom;
}

void lower_solve(const Csc& l, std::span<value_t> x, bool unit_diag) {
  PANGULU_CHECK(l.n_rows() == l.n_cols(), "lower_solve: square");
  PANGULU_CHECK(static_cast<index_t>(x.size()) == l.n_rows(), "x size");
  for (index_t j = 0; j < l.n_cols(); ++j) {
    nnz_t p = l.col_begin(j);
    const nnz_t e = l.col_end(j);
    if (!unit_diag) {
      PANGULU_CHECK(p < e && l.row_idx()[static_cast<std::size_t>(p)] == j,
                    "lower_solve: missing diagonal");
      x[static_cast<std::size_t>(j)] /= l.values()[static_cast<std::size_t>(p)];
      ++p;
    } else if (p < e && l.row_idx()[static_cast<std::size_t>(p)] == j) {
      ++p;  // stored unit diagonal; skip
    }
    const value_t xj = x[static_cast<std::size_t>(j)];
    if (xj == value_t(0)) continue;
    for (; p < e; ++p) {
      x[static_cast<std::size_t>(l.row_idx()[static_cast<std::size_t>(p)])] -=
          l.values()[static_cast<std::size_t>(p)] * xj;
    }
  }
}

void upper_solve(const Csc& u, std::span<value_t> x) {
  PANGULU_CHECK(u.n_rows() == u.n_cols(), "upper_solve: square");
  PANGULU_CHECK(static_cast<index_t>(x.size()) == u.n_rows(), "x size");
  for (index_t j = u.n_cols() - 1; j >= 0; --j) {
    const nnz_t b = u.col_begin(j);
    nnz_t p = u.col_end(j) - 1;
    PANGULU_CHECK(p >= b && u.row_idx()[static_cast<std::size_t>(p)] == j,
                  "upper_solve: missing diagonal");
    x[static_cast<std::size_t>(j)] /= u.values()[static_cast<std::size_t>(p)];
    const value_t xj = x[static_cast<std::size_t>(j)];
    if (xj == value_t(0)) continue;
    for (nnz_t q = b; q < p; ++q) {
      x[static_cast<std::size_t>(u.row_idx()[static_cast<std::size_t>(q)])] -=
          u.values()[static_cast<std::size_t>(q)] * xj;
    }
  }
}

bool is_permutation(std::span<const index_t> p) {
  const auto n = static_cast<index_t>(p.size());
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t v : p) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

std::vector<index_t> invert_permutation(std::span<const index_t> p) {
  std::vector<index_t> q(p.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    q[static_cast<std::size_t>(p[i])] = static_cast<index_t>(i);
  return q;
}

std::vector<index_t> identity_permutation(index_t n) {
  std::vector<index_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t(0));
  return p;
}

std::vector<index_t> compose(std::span<const index_t> p,
                             std::span<const index_t> q) {
  PANGULU_CHECK(p.size() == q.size(), "compose: size mismatch");
  std::vector<index_t> r(p.size());
  for (std::size_t i = 0; i < q.size(); ++i)
    r[i] = p[static_cast<std::size_t>(q[i])];
  return r;
}

}  // namespace pangulu
