#include "sparse/ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "parallel/partition.hpp"

namespace pangulu {

value_t norm2(std::span<const value_t> v) {
  value_t s = 0;
  for (value_t x : v) s += x * x;
  return std::sqrt(s);
}

value_t norm_inf(std::span<const value_t> v) {
  value_t m = 0;
  for (value_t x : v) m = std::max(m, std::abs(x));
  return m;
}

value_t norm1(const Csc& a) {
  value_t m = 0;
  for (index_t j = 0; j < a.n_cols(); ++j) {
    value_t s = 0;
    for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p)
      s += std::abs(a.values()[static_cast<std::size_t>(p)]);
    m = std::max(m, s);
  }
  return m;
}

value_t relative_residual(const Csc& a, std::span<const value_t> x,
                          std::span<const value_t> b) {
  std::vector<value_t> r(b.begin(), b.end());
  std::vector<value_t> ax(static_cast<std::size_t>(a.n_rows()));
  a.spmv(x, ax);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= ax[i];
  value_t denom = norm1(a) * norm_inf(x) + norm_inf(b);
  if (denom == value_t(0)) denom = 1;
  return norm_inf(r) / denom;
}

void lower_solve(const Csc& l, std::span<value_t> x, bool unit_diag) {
  PANGULU_CHECK(l.n_rows() == l.n_cols(), "lower_solve: square");
  PANGULU_CHECK(static_cast<index_t>(x.size()) == l.n_rows(), "x size");
  for (index_t j = 0; j < l.n_cols(); ++j) {
    nnz_t p = l.col_begin(j);
    const nnz_t e = l.col_end(j);
    if (!unit_diag) {
      PANGULU_CHECK(p < e && l.row_idx()[static_cast<std::size_t>(p)] == j,
                    "lower_solve: missing diagonal");
      x[static_cast<std::size_t>(j)] /= l.values()[static_cast<std::size_t>(p)];
      ++p;
    } else if (p < e && l.row_idx()[static_cast<std::size_t>(p)] == j) {
      ++p;  // stored unit diagonal; skip
    }
    const value_t xj = x[static_cast<std::size_t>(j)];
    if (xj == value_t(0)) continue;
    for (; p < e; ++p) {
      x[static_cast<std::size_t>(l.row_idx()[static_cast<std::size_t>(p)])] -=
          l.values()[static_cast<std::size_t>(p)] * xj;
    }
  }
}

void upper_solve(const Csc& u, std::span<value_t> x) {
  PANGULU_CHECK(u.n_rows() == u.n_cols(), "upper_solve: square");
  PANGULU_CHECK(static_cast<index_t>(x.size()) == u.n_rows(), "x size");
  for (index_t j = u.n_cols() - 1; j >= 0; --j) {
    const nnz_t b = u.col_begin(j);
    nnz_t p = u.col_end(j) - 1;
    PANGULU_CHECK(p >= b && u.row_idx()[static_cast<std::size_t>(p)] == j,
                  "upper_solve: missing diagonal");
    x[static_cast<std::size_t>(j)] /= u.values()[static_cast<std::size_t>(p)];
    const value_t xj = x[static_cast<std::size_t>(j)];
    if (xj == value_t(0)) continue;
    for (nnz_t q = b; q < p; ++q) {
      x[static_cast<std::size_t>(u.row_idx()[static_cast<std::size_t>(q)])] -=
          u.values()[static_cast<std::size_t>(q)] * xj;
    }
  }
}

bool is_permutation(std::span<const index_t> p) {
  const auto n = static_cast<index_t>(p.size());
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t v : p) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

std::vector<index_t> invert_permutation(std::span<const index_t> p) {
  std::vector<index_t> q(p.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    q[static_cast<std::size_t>(p[i])] = static_cast<index_t>(i);
  return q;
}

std::vector<index_t> identity_permutation(index_t n) {
  std::vector<index_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t(0));
  return p;
}

std::vector<index_t> compose(std::span<const index_t> p,
                             std::span<const index_t> q) {
  PANGULU_CHECK(p.size() == q.size(), "compose: size mismatch");
  std::vector<index_t> r(p.size());
  for (std::size_t i = 0; i < q.size(); ++i)
    r[i] = p[static_cast<std::size_t>(q[i])];
  return r;
}

Csc transposed(const Csc& a, ThreadPool* pool) {
  ThreadPool& tp = effective_pool(pool);
  if (tp.size() <= 1) return a.transpose();
  const index_t nc = a.n_cols();
  const index_t nr = a.n_rows();
  // Chunks over source columns, one count bin per transpose column (= source
  // row). Chunks ascending in j reproduce the serial fill order exactly.
  const FixedPartition part = FixedPartition::make(nc, nr);
  ChunkCounts counts(part.n_chunks, nr);
  parallel_for(
      tp, 0, part.n_chunks,
      [&](index_t c) {
        nnz_t* cnt = counts.row(c);
        for (index_t j = part.begin(c); j < part.end(c); ++j) {
          for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p)
            cnt[a.row_idx()[static_cast<std::size_t>(p)]]++;
        }
      },
      /*grain=*/1);
  std::vector<nnz_t> col_cnt(static_cast<std::size_t>(nr));
  counts.totals(tp, col_cnt);
  std::vector<nnz_t> col_ptr(static_cast<std::size_t>(nr) + 1);
  exclusive_prefix_sum(tp, col_cnt, col_ptr);
  counts.to_cursors(tp, std::span<const nnz_t>(col_ptr).first(
                            static_cast<std::size_t>(nr)));
  std::vector<index_t> row_idx(static_cast<std::size_t>(col_ptr.back()));
  std::vector<value_t> values(static_cast<std::size_t>(col_ptr.back()));
  parallel_for(
      tp, 0, part.n_chunks,
      [&](index_t c) {
        nnz_t* cur = counts.row(c);
        for (index_t j = part.begin(c); j < part.end(c); ++j) {
          for (nnz_t p = a.col_begin(j); p < a.col_end(j); ++p) {
            const index_t r = a.row_idx()[static_cast<std::size_t>(p)];
            const nnz_t q = cur[r]++;
            row_idx[static_cast<std::size_t>(q)] = j;
            values[static_cast<std::size_t>(q)] =
                a.values()[static_cast<std::size_t>(p)];
          }
        }
      },
      /*grain=*/1);
  return Csc::from_parts_unchecked(nc, nr, std::move(col_ptr),
                                   std::move(row_idx), std::move(values));
}

Csc symmetrized_with_diagonal(const Csc& a, ThreadPool* pool) {
  PANGULU_CHECK(a.n_rows() == a.n_cols(), "symmetrize needs a square matrix");
  ThreadPool& tp = effective_pool(pool);
  const index_t n = a.n_cols();
  const Csc at = transposed(a, pool);
  // Per-column three-way merge of a(:,j), a^T(:,j) and the forced diagonal.
  // `emit` sees rows ascending; a mirrored entry reproduces the reference's
  // `a(r,j) + 0` sum so even signed zeros match bitwise.
  const index_t kEnd = n;
  auto merge_col = [&](index_t j, auto&& emit) {
    nnz_t pa = a.col_begin(j);
    const nnz_t ea = a.col_end(j);
    nnz_t pt = at.col_begin(j);
    const nnz_t et = at.col_end(j);
    bool diag_done = false;
    while (pa < ea || pt < et) {
      const index_t ra = pa < ea ? a.row_idx()[static_cast<std::size_t>(pa)] : kEnd;
      const index_t rt =
          pt < et ? at.row_idx()[static_cast<std::size_t>(pt)] : kEnd;
      const index_t r = std::min(ra, rt);
      if (!diag_done && j < r) {
        emit(j, value_t(0));
        diag_done = true;
        continue;
      }
      value_t v = 0;
      if (ra == r) v = a.values()[static_cast<std::size_t>(pa++)];
      if (rt == r) {
        if (r != j) v += value_t(0);
        ++pt;
      }
      if (r == j) diag_done = true;
      emit(r, v);
    }
    if (!diag_done) emit(j, value_t(0));
  };

  std::vector<nnz_t> width(static_cast<std::size_t>(n), 0);
  parallel_for_chunks(tp, 0, n, [&](index_t lo, index_t hi) {
    for (index_t j = lo; j < hi; ++j) {
      nnz_t w = 0;
      merge_col(j, [&](index_t, value_t) { ++w; });
      width[static_cast<std::size_t>(j)] = w;
    }
  });
  std::vector<nnz_t> col_ptr(static_cast<std::size_t>(n) + 1);
  exclusive_prefix_sum(tp, width, col_ptr);
  std::vector<index_t> row_idx(static_cast<std::size_t>(col_ptr.back()));
  std::vector<value_t> values(static_cast<std::size_t>(col_ptr.back()));
  parallel_for_chunks(tp, 0, n, [&](index_t lo, index_t hi) {
    for (index_t j = lo; j < hi; ++j) {
      nnz_t q = col_ptr[static_cast<std::size_t>(j)];
      merge_col(j, [&](index_t r, value_t v) {
        row_idx[static_cast<std::size_t>(q)] = r;
        values[static_cast<std::size_t>(q)] = v;
        ++q;
      });
    }
  });
  return Csc::from_parts_unchecked(n, n, std::move(col_ptr), std::move(row_idx),
                                   std::move(values));
}

}  // namespace pangulu
