// Structural analysis of sparse matrices: the metrics the paper's
// motivation section (§3) reasons about — symmetry, density, bandwidth,
// degree distribution — packaged for examples, benches and tests.
#pragma once

#include <string>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace pangulu {

struct MatrixProfile {
  index_t n_rows = 0;
  index_t n_cols = 0;
  nnz_t nnz = 0;
  double density = 0;             // nnz / (rows*cols)
  /// Fraction of off-diagonal entries (i,j) whose mirror (j,i) is also
  /// stored — 1.0 for structurally symmetric matrices.
  double pattern_symmetry = 0;
  /// Fraction of mirrored pairs with equal values — 1.0 for numerically
  /// symmetric matrices.
  double value_symmetry = 0;
  index_t bandwidth = 0;          // max |i - j| over stored entries
  nnz_t diagonal_nnz = 0;         // stored (structurally nonzero) diagonals
  bool diagonally_dominant = false;
  index_t max_column_nnz = 0;
  double avg_column_nnz = 0;
  /// Ratio max/avg column nnz: >> 1 signals the power-law hubs that defeat
  /// supernode formation (§3.1).
  double column_imbalance = 0;
};

/// Compute the profile in one pass plus a transpose.
MatrixProfile analyze(const Csc& a);

/// Human-readable multi-line report.
std::string to_string(const MatrixProfile& p);

}  // namespace pangulu
