#include "sparse/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pangulu {

MatrixProfile analyze(const Csc& a) {
  MatrixProfile p;
  p.n_rows = a.n_rows();
  p.n_cols = a.n_cols();
  p.nnz = a.nnz();
  p.density = a.density();

  std::vector<value_t> diag_abs;
  std::vector<value_t> offdiag_abs;
  const bool square = a.n_rows() == a.n_cols();
  if (square) {
    diag_abs.assign(static_cast<std::size_t>(a.n_rows()), 0);
    offdiag_abs.assign(static_cast<std::size_t>(a.n_rows()), 0);
  }

  nnz_t offdiag = 0, mirrored = 0, equal_mirror = 0;
  for (index_t j = 0; j < a.n_cols(); ++j) {
    const index_t cn = a.col_nnz(j);
    p.max_column_nnz = std::max(p.max_column_nnz, cn);
    for (nnz_t q = a.col_begin(j); q < a.col_end(j); ++q) {
      const index_t i = a.row_idx()[static_cast<std::size_t>(q)];
      const value_t v = a.values()[static_cast<std::size_t>(q)];
      p.bandwidth = std::max(p.bandwidth, std::abs(i - j));
      if (i == j) {
        ++p.diagonal_nnz;
        if (square) diag_abs[static_cast<std::size_t>(i)] += std::abs(v);
        continue;
      }
      if (square) offdiag_abs[static_cast<std::size_t>(i)] += std::abs(v);
      ++offdiag;
      if (!square) continue;
      const nnz_t m = a.find(j, i);
      if (m >= 0) {
        ++mirrored;
        const value_t mv = a.values()[static_cast<std::size_t>(m)];
        if (std::abs(mv - v) <= 1e-14 * std::max<value_t>(
                                           1, std::max(std::abs(mv), std::abs(v))))
          ++equal_mirror;
      }
    }
  }
  p.pattern_symmetry =
      offdiag > 0 ? static_cast<double>(mirrored) / static_cast<double>(offdiag)
                  : 1.0;
  p.value_symmetry = offdiag > 0 ? static_cast<double>(equal_mirror) /
                                       static_cast<double>(offdiag)
                                 : 1.0;
  p.avg_column_nnz = a.n_cols() > 0
                         ? static_cast<double>(a.nnz()) / a.n_cols()
                         : 0.0;
  p.column_imbalance =
      p.avg_column_nnz > 0 ? p.max_column_nnz / p.avg_column_nnz : 0.0;
  if (square) {
    p.diagonally_dominant = p.diagonal_nnz == a.n_cols();
    for (index_t i = 0; i < a.n_rows() && p.diagonally_dominant; ++i) {
      if (diag_abs[static_cast<std::size_t>(i)] <=
          offdiag_abs[static_cast<std::size_t>(i)])
        p.diagonally_dominant = false;
    }
  }
  return p;
}

std::string to_string(const MatrixProfile& p) {
  std::ostringstream os;
  os << "matrix " << p.n_rows << " x " << p.n_cols << ", nnz " << p.nnz
     << " (density " << 100.0 * p.density << "%)\n";
  os << "pattern symmetry " << 100.0 * p.pattern_symmetry
     << "%, value symmetry " << 100.0 * p.value_symmetry << "%\n";
  os << "bandwidth " << p.bandwidth << ", stored diagonals " << p.diagonal_nnz
     << (p.diagonally_dominant ? " (diagonally dominant)" : "") << "\n";
  os << "column nnz: avg " << p.avg_column_nnz << ", max " << p.max_column_nnz
     << " (imbalance " << p.column_imbalance << "x)";
  return os.str();
}

}  // namespace pangulu
