// Coordinate-format sparse matrix: the assembly/interchange format. Matrix
// generators and the Matrix Market reader produce COO; everything else works
// on CSC (see csc.hpp).
#pragma once

#include <vector>

#include "util/types.hpp"

namespace pangulu {

struct Triplet {
  index_t row;
  index_t col;
  value_t value;
};

struct Coo {
  index_t n_rows = 0;
  index_t n_cols = 0;
  std::vector<Triplet> entries;

  Coo() = default;
  Coo(index_t rows, index_t cols) : n_rows(rows), n_cols(cols) {}

  void add(index_t r, index_t c, value_t v) { entries.push_back({r, c, v}); }

  nnz_t nnz() const { return static_cast<nnz_t>(entries.size()); }

  /// Sort by (col, row) and sum duplicates in place.
  void sort_and_combine();
};

}  // namespace pangulu
