// Coordinate-format sparse matrix: the assembly/interchange format. Matrix
// generators and the Matrix Market reader produce COO; everything else works
// on CSC (see csc.hpp). Templated on the value type V (float/double); the
// unsuffixed aliases keep the historical FP64 spelling.
#pragma once

#include <algorithm>
#include <vector>

#include "util/types.hpp"

namespace pangulu {

template <class V>
struct TripletT {
  index_t row;
  index_t col;
  V value;
};

template <class V>
struct CooT {
  index_t n_rows = 0;
  index_t n_cols = 0;
  std::vector<TripletT<V>> entries;

  CooT() = default;
  CooT(index_t rows, index_t cols) : n_rows(rows), n_cols(cols) {}

  void add(index_t r, index_t c, V v) { entries.push_back({r, c, v}); }

  nnz_t nnz() const { return static_cast<nnz_t>(entries.size()); }

  /// Sort by (col, row) and sum duplicates in place.
  void sort_and_combine() {
    std::sort(entries.begin(), entries.end(),
              [](const TripletT<V>& a, const TripletT<V>& b) {
                return a.col != b.col ? a.col < b.col : a.row < b.row;
              });
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (out > 0 && entries[out - 1].row == entries[i].row &&
          entries[out - 1].col == entries[i].col) {
        entries[out - 1].value += entries[i].value;
      } else {
        entries[out++] = entries[i];
      }
    }
    entries.resize(out);
  }
};

using Triplet = TripletT<value_t>;
using Coo = CooT<value_t>;

}  // namespace pangulu
