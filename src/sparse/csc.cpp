#include "sparse/csc.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pangulu {

template <class V>
CscT<V> CscT<V>::from_coo(const CooT<V>& coo_in) {
  CooT<V> coo = coo_in;
  coo.sort_and_combine();
  CscT<V> m(coo.n_rows, coo.n_cols);
  m.row_idx_.resize(coo.entries.size());
  m.values_.resize(coo.entries.size());
  for (const auto& t : coo.entries) {
    PANGULU_CHECK(t.row >= 0 && t.row < coo.n_rows, "COO row out of range");
    PANGULU_CHECK(t.col >= 0 && t.col < coo.n_cols, "COO col out of range");
    m.col_ptr_[static_cast<std::size_t>(t.col) + 1]++;
  }
  for (index_t j = 0; j < coo.n_cols; ++j) {
    m.col_ptr_[static_cast<std::size_t>(j) + 1] +=
        m.col_ptr_[static_cast<std::size_t>(j)];
  }
  // Entries are already (col, row)-sorted, so a single pass fills in order.
  for (std::size_t i = 0; i < coo.entries.size(); ++i) {
    m.row_idx_[i] = coo.entries[i].row;
    m.values_[i] = coo.entries[i].value;
  }
  return m;
}

template <class V>
CscT<V> CscT<V>::from_parts(index_t rows, index_t cols,
                            std::vector<nnz_t> col_ptr,
                            std::vector<index_t> row_idx,
                            std::vector<V> values) {
  CscT<V> m;
  m.n_rows_ = rows;
  m.n_cols_ = cols;
  m.col_ptr_ = std::move(col_ptr);
  m.row_idx_ = std::move(row_idx);
  m.values_ = std::move(values);
  m.validate().check();
  return m;
}

template <class V>
CscT<V> CscT<V>::from_parts_unchecked(index_t rows, index_t cols,
                                      std::vector<nnz_t> col_ptr,
                                      std::vector<index_t> row_idx,
                                      std::vector<V> values) {
  CscT<V> m;
  m.n_rows_ = rows;
  m.n_cols_ = cols;
  m.col_ptr_ = std::move(col_ptr);
  m.row_idx_ = std::move(row_idx);
  m.values_ = std::move(values);
  return m;
}

template <class V>
double CscT<V>::density() const {
  if (n_rows_ == 0 || n_cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(n_rows_) * static_cast<double>(n_cols_));
}

template <class V>
nnz_t CscT<V>::find(index_t r, index_t c) const {
  nnz_t lo = col_begin(c), hi = col_end(c);
  auto first = row_idx_.begin() + lo;
  auto last = row_idx_.begin() + hi;
  auto it = std::lower_bound(first, last, r);
  if (it == last || *it != r) return -1;
  return lo + (it - first);
}

template <class V>
V CscT<V>::at(index_t r, index_t c) const {
  nnz_t p = find(r, c);
  return p < 0 ? V(0) : values_[static_cast<std::size_t>(p)];
}

template <class V>
void CscT<V>::spmv(std::span<const V> x, std::span<V> y) const {
  PANGULU_CHECK(static_cast<index_t>(x.size()) == n_cols_, "spmv x size");
  PANGULU_CHECK(static_cast<index_t>(y.size()) == n_rows_, "spmv y size");
  std::fill(y.begin(), y.end(), V(0));
  for (index_t j = 0; j < n_cols_; ++j) {
    const V xj = x[static_cast<std::size_t>(j)];
    if (xj == V(0)) continue;
    for (nnz_t p = col_begin(j); p < col_end(j); ++p) {
      y[static_cast<std::size_t>(row_idx_[static_cast<std::size_t>(p)])] +=
          values_[static_cast<std::size_t>(p)] * xj;
    }
  }
}

template <class V>
CscT<V> CscT<V>::transpose() const {
  CscT<V> t(n_cols_, n_rows_);
  t.row_idx_.resize(row_idx_.size());
  t.values_.resize(values_.size());
  // Count entries per row of this matrix (= per column of the transpose).
  for (index_t r : row_idx_) t.col_ptr_[static_cast<std::size_t>(r) + 1]++;
  for (index_t j = 0; j < n_rows_; ++j)
    t.col_ptr_[static_cast<std::size_t>(j) + 1] +=
        t.col_ptr_[static_cast<std::size_t>(j)];
  std::vector<nnz_t> next(t.col_ptr_.begin(), t.col_ptr_.end() - 1);
  for (index_t j = 0; j < n_cols_; ++j) {
    for (nnz_t p = col_begin(j); p < col_end(j); ++p) {
      index_t r = row_idx_[static_cast<std::size_t>(p)];
      nnz_t q = next[static_cast<std::size_t>(r)]++;
      t.row_idx_[static_cast<std::size_t>(q)] = j;
      t.values_[static_cast<std::size_t>(q)] = values_[static_cast<std::size_t>(p)];
    }
  }
  // Columns of the transpose are filled in increasing row order already
  // (outer loop over j ascending), so the result is sorted.
  return t;
}

template <class V>
CscT<V> CscT<V>::permuted(std::span<const index_t> row_perm,
                          std::span<const index_t> col_perm) const {
  PANGULU_CHECK(static_cast<index_t>(row_perm.size()) == n_rows_, "row perm size");
  PANGULU_CHECK(static_cast<index_t>(col_perm.size()) == n_cols_, "col perm size");
  CooT<V> coo(n_rows_, n_cols_);
  coo.entries.reserve(static_cast<std::size_t>(nnz()));
  for (index_t j = 0; j < n_cols_; ++j) {
    for (nnz_t p = col_begin(j); p < col_end(j); ++p) {
      index_t r = row_idx_[static_cast<std::size_t>(p)];
      coo.add(row_perm[static_cast<std::size_t>(r)],
              col_perm[static_cast<std::size_t>(j)],
              values_[static_cast<std::size_t>(p)]);
    }
  }
  return from_coo(coo);
}

template <class V>
void CscT<V>::scale(std::span<const V> row_scale, std::span<const V> col_scale) {
  PANGULU_CHECK(static_cast<index_t>(row_scale.size()) == n_rows_, "row scale");
  PANGULU_CHECK(static_cast<index_t>(col_scale.size()) == n_cols_, "col scale");
  for (index_t j = 0; j < n_cols_; ++j) {
    const V cs = col_scale[static_cast<std::size_t>(j)];
    for (nnz_t p = col_begin(j); p < col_end(j); ++p) {
      values_[static_cast<std::size_t>(p)] *=
          cs * row_scale[static_cast<std::size_t>(
                   row_idx_[static_cast<std::size_t>(p)])];
    }
  }
}

template <class V>
CscT<V> CscT<V>::symmetrized() const {
  PANGULU_CHECK(n_rows_ == n_cols_, "symmetrize needs a square matrix");
  CooT<V> coo(n_rows_, n_cols_);
  coo.entries.reserve(2 * static_cast<std::size_t>(nnz()));
  for (index_t j = 0; j < n_cols_; ++j) {
    for (nnz_t p = col_begin(j); p < col_end(j); ++p) {
      index_t r = row_idx_[static_cast<std::size_t>(p)];
      V v = values_[static_cast<std::size_t>(p)];
      coo.add(r, j, v);
      if (r != j) coo.add(j, r, V(0));
    }
  }
  return from_coo(coo);
}

template <class V>
CscT<V> CscT<V>::with_full_diagonal() const {
  PANGULU_CHECK(n_rows_ == n_cols_, "needs a square matrix");
  CooT<V> coo(n_rows_, n_cols_);
  coo.entries.reserve(static_cast<std::size_t>(nnz()) +
                      static_cast<std::size_t>(n_rows_));
  for (index_t j = 0; j < n_cols_; ++j) {
    bool has_diag = false;
    for (nnz_t p = col_begin(j); p < col_end(j); ++p) {
      index_t r = row_idx_[static_cast<std::size_t>(p)];
      if (r == j) has_diag = true;
      coo.add(r, j, values_[static_cast<std::size_t>(p)]);
    }
    if (!has_diag) coo.add(j, j, V(0));
  }
  return from_coo(coo);
}

template <class V>
CscT<V> CscT<V>::sub_matrix(index_t r0, index_t r1, index_t c0,
                            index_t c1) const {
  PANGULU_CHECK(0 <= r0 && r0 <= r1 && r1 <= n_rows_, "row range");
  PANGULU_CHECK(0 <= c0 && c0 <= c1 && c1 <= n_cols_, "col range");
  CscT<V> s(r1 - r0, c1 - c0);
  // First pass: counts.
  for (index_t j = c0; j < c1; ++j) {
    for (nnz_t p = col_begin(j); p < col_end(j); ++p) {
      index_t r = row_idx_[static_cast<std::size_t>(p)];
      if (r >= r0 && r < r1) s.col_ptr_[static_cast<std::size_t>(j - c0) + 1]++;
    }
  }
  for (index_t j = 0; j < s.n_cols_; ++j)
    s.col_ptr_[static_cast<std::size_t>(j) + 1] +=
        s.col_ptr_[static_cast<std::size_t>(j)];
  s.row_idx_.resize(static_cast<std::size_t>(s.nnz()));
  s.values_.resize(static_cast<std::size_t>(s.nnz()));
  std::vector<nnz_t> next(s.col_ptr_.begin(), s.col_ptr_.end() - 1);
  for (index_t j = c0; j < c1; ++j) {
    for (nnz_t p = col_begin(j); p < col_end(j); ++p) {
      index_t r = row_idx_[static_cast<std::size_t>(p)];
      if (r >= r0 && r < r1) {
        nnz_t q = next[static_cast<std::size_t>(j - c0)]++;
        s.row_idx_[static_cast<std::size_t>(q)] = r - r0;
        s.values_[static_cast<std::size_t>(q)] = values_[static_cast<std::size_t>(p)];
      }
    }
  }
  return s;
}

template <class V>
CscT<V> CscT<V>::pattern_copy() const {
  CscT<V> c = *this;
  std::fill(c.values_.begin(), c.values_.end(), V(0));
  return c;
}

template <class V>
V CscT<V>::max_abs() const {
  V m = 0;
  for (V v : values_) m = std::max(m, std::abs(v));
  return m;
}

template <class V>
bool CscT<V>::approx_equal(const CscT<V>& other, V tol) const {
  if (n_rows_ != other.n_rows_ || n_cols_ != other.n_cols_) return false;
  // Compare as dense-equivalent: walk both patterns per column.
  for (index_t j = 0; j < n_cols_; ++j) {
    nnz_t pa = col_begin(j), pb = other.col_begin(j);
    const nnz_t ea = col_end(j), eb = other.col_end(j);
    while (pa < ea || pb < eb) {
      index_t ra = pa < ea ? row_idx_[static_cast<std::size_t>(pa)] : n_rows_;
      index_t rb = pb < eb ? other.row_idx_[static_cast<std::size_t>(pb)] : n_rows_;
      V va = 0, vb = 0;
      if (ra <= rb) va = values_[static_cast<std::size_t>(pa++)];
      if (rb <= ra) vb = other.values_[static_cast<std::size_t>(pb++)];
      V scale = std::max({std::abs(va), std::abs(vb), V(1)});
      if (std::abs(va - vb) > tol * scale) return false;
    }
  }
  return true;
}

template <class V>
bool CscT<V>::is_lower_triangular() const {
  for (index_t j = 0; j < n_cols_; ++j) {
    if (col_begin(j) < col_end(j) &&
        row_idx_[static_cast<std::size_t>(col_begin(j))] < j)
      return false;
  }
  return true;
}

template <class V>
bool CscT<V>::is_upper_triangular() const {
  for (index_t j = 0; j < n_cols_; ++j) {
    if (col_begin(j) < col_end(j) &&
        row_idx_[static_cast<std::size_t>(col_end(j)) - 1] > j)
      return false;
  }
  return true;
}

template <class V>
Status CscT<V>::validate() const {
  if (n_rows_ < 0 || n_cols_ < 0)
    return Status::invalid_argument("negative dimensions");
  if (col_ptr_.size() != static_cast<std::size_t>(n_cols_) + 1)
    return Status::invalid_argument("col_ptr size mismatch");
  if (col_ptr_.front() != 0) return Status::invalid_argument("col_ptr[0] != 0");
  for (index_t j = 0; j < n_cols_; ++j) {
    if (col_end(j) < col_begin(j))
      return Status::invalid_argument("col_ptr not monotone");
    for (nnz_t p = col_begin(j); p < col_end(j); ++p) {
      index_t r = row_idx_[static_cast<std::size_t>(p)];
      if (r < 0 || r >= n_rows_)
        return Status::out_of_range("row index out of range");
      if (p > col_begin(j) && row_idx_[static_cast<std::size_t>(p - 1)] >= r)
        return Status::invalid_argument("rows not strictly increasing");
    }
  }
  if (row_idx_.size() != static_cast<std::size_t>(nnz()) ||
      values_.size() != static_cast<std::size_t>(nnz()))
    return Status::invalid_argument("array size mismatch");
  return Status::ok();
}

template class CscT<float>;
template class CscT<double>;

}  // namespace pangulu
