# Empty dependencies file for matgen_test.
# This may be replaced when dependencies are built.
