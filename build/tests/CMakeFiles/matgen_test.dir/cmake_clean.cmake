file(REMOVE_RECURSE
  "CMakeFiles/matgen_test.dir/matgen_test.cpp.o"
  "CMakeFiles/matgen_test.dir/matgen_test.cpp.o.d"
  "matgen_test"
  "matgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
