file(REMOVE_RECURSE
  "CMakeFiles/col_counts_test.dir/col_counts_test.cpp.o"
  "CMakeFiles/col_counts_test.dir/col_counts_test.cpp.o.d"
  "col_counts_test"
  "col_counts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/col_counts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
