# Empty dependencies file for col_counts_test.
# This may be replaced when dependencies are built.
