file(REMOVE_RECURSE
  "CMakeFiles/solver_extras_test.dir/solver_extras_test.cpp.o"
  "CMakeFiles/solver_extras_test.dir/solver_extras_test.cpp.o.d"
  "solver_extras_test"
  "solver_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
