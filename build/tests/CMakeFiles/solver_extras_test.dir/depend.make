# Empty dependencies file for solver_extras_test.
# This may be replaced when dependencies are built.
