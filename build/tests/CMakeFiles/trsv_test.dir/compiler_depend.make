# Empty compiler generated dependencies file for trsv_test.
# This may be replaced when dependencies are built.
