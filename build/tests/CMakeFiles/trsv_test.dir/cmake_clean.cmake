file(REMOVE_RECURSE
  "CMakeFiles/trsv_test.dir/trsv_test.cpp.o"
  "CMakeFiles/trsv_test.dir/trsv_test.cpp.o.d"
  "trsv_test"
  "trsv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trsv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
