# Empty compiler generated dependencies file for amd_test.
# This may be replaced when dependencies are built.
