file(REMOVE_RECURSE
  "CMakeFiles/amd_test.dir/amd_test.cpp.o"
  "CMakeFiles/amd_test.dir/amd_test.cpp.o.d"
  "amd_test"
  "amd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
