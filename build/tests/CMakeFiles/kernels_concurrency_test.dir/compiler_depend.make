# Empty compiler generated dependencies file for kernels_concurrency_test.
# This may be replaced when dependencies are built.
