file(REMOVE_RECURSE
  "CMakeFiles/kernels_concurrency_test.dir/kernels_concurrency_test.cpp.o"
  "CMakeFiles/kernels_concurrency_test.dir/kernels_concurrency_test.cpp.o.d"
  "kernels_concurrency_test"
  "kernels_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
