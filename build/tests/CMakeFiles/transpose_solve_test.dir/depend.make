# Empty dependencies file for transpose_solve_test.
# This may be replaced when dependencies are built.
