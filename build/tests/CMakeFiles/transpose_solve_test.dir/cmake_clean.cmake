file(REMOVE_RECURSE
  "CMakeFiles/transpose_solve_test.dir/transpose_solve_test.cpp.o"
  "CMakeFiles/transpose_solve_test.dir/transpose_solve_test.cpp.o.d"
  "transpose_solve_test"
  "transpose_solve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transpose_solve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
