# Empty dependencies file for scaling_stability_test.
# This may be replaced when dependencies are built.
