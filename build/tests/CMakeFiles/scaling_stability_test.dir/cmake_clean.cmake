file(REMOVE_RECURSE
  "CMakeFiles/scaling_stability_test.dir/scaling_stability_test.cpp.o"
  "CMakeFiles/scaling_stability_test.dir/scaling_stability_test.cpp.o.d"
  "scaling_stability_test"
  "scaling_stability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_stability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
