file(REMOVE_RECURSE
  "libpangulu_parallel.a"
)
