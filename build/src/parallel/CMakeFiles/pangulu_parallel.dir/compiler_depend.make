# Empty compiler generated dependencies file for pangulu_parallel.
# This may be replaced when dependencies are built.
