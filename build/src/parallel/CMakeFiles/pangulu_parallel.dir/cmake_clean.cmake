file(REMOVE_RECURSE
  "CMakeFiles/pangulu_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/pangulu_parallel.dir/thread_pool.cpp.o.d"
  "libpangulu_parallel.a"
  "libpangulu_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
