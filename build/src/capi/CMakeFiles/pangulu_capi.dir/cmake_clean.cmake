file(REMOVE_RECURSE
  "CMakeFiles/pangulu_capi.dir/pangulu_c.cpp.o"
  "CMakeFiles/pangulu_capi.dir/pangulu_c.cpp.o.d"
  "libpangulu_capi.a"
  "libpangulu_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
