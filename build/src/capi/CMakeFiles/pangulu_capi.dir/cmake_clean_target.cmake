file(REMOVE_RECURSE
  "libpangulu_capi.a"
)
