# Empty dependencies file for pangulu_capi.
# This may be replaced when dependencies are built.
