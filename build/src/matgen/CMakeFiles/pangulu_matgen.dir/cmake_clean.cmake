file(REMOVE_RECURSE
  "CMakeFiles/pangulu_matgen.dir/generators.cpp.o"
  "CMakeFiles/pangulu_matgen.dir/generators.cpp.o.d"
  "libpangulu_matgen.a"
  "libpangulu_matgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_matgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
