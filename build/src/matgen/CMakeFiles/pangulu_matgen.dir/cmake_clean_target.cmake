file(REMOVE_RECURSE
  "libpangulu_matgen.a"
)
