# Empty dependencies file for pangulu_matgen.
# This may be replaced when dependencies are built.
