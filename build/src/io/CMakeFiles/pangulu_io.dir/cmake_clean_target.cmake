file(REMOVE_RECURSE
  "libpangulu_io.a"
)
