# Empty dependencies file for pangulu_io.
# This may be replaced when dependencies are built.
