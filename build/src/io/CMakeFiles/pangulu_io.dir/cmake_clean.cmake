file(REMOVE_RECURSE
  "CMakeFiles/pangulu_io.dir/matrix_market.cpp.o"
  "CMakeFiles/pangulu_io.dir/matrix_market.cpp.o.d"
  "libpangulu_io.a"
  "libpangulu_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
