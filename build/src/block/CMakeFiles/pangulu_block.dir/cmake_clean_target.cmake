file(REMOVE_RECURSE
  "libpangulu_block.a"
)
