file(REMOVE_RECURSE
  "CMakeFiles/pangulu_block.dir/layout.cpp.o"
  "CMakeFiles/pangulu_block.dir/layout.cpp.o.d"
  "CMakeFiles/pangulu_block.dir/mapping.cpp.o"
  "CMakeFiles/pangulu_block.dir/mapping.cpp.o.d"
  "CMakeFiles/pangulu_block.dir/tasks.cpp.o"
  "CMakeFiles/pangulu_block.dir/tasks.cpp.o.d"
  "libpangulu_block.a"
  "libpangulu_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
