# Empty dependencies file for pangulu_block.
# This may be replaced when dependencies are built.
