file(REMOVE_RECURSE
  "CMakeFiles/pangulu_sparse.dir/analysis.cpp.o"
  "CMakeFiles/pangulu_sparse.dir/analysis.cpp.o.d"
  "CMakeFiles/pangulu_sparse.dir/csc.cpp.o"
  "CMakeFiles/pangulu_sparse.dir/csc.cpp.o.d"
  "CMakeFiles/pangulu_sparse.dir/ops.cpp.o"
  "CMakeFiles/pangulu_sparse.dir/ops.cpp.o.d"
  "libpangulu_sparse.a"
  "libpangulu_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
