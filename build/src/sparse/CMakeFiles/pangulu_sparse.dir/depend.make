# Empty dependencies file for pangulu_sparse.
# This may be replaced when dependencies are built.
