file(REMOVE_RECURSE
  "libpangulu_sparse.a"
)
