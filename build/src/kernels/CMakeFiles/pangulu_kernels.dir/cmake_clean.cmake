file(REMOVE_RECURSE
  "CMakeFiles/pangulu_kernels.dir/calibrate.cpp.o"
  "CMakeFiles/pangulu_kernels.dir/calibrate.cpp.o.d"
  "CMakeFiles/pangulu_kernels.dir/gessm.cpp.o"
  "CMakeFiles/pangulu_kernels.dir/gessm.cpp.o.d"
  "CMakeFiles/pangulu_kernels.dir/getrf.cpp.o"
  "CMakeFiles/pangulu_kernels.dir/getrf.cpp.o.d"
  "CMakeFiles/pangulu_kernels.dir/kernel_common.cpp.o"
  "CMakeFiles/pangulu_kernels.dir/kernel_common.cpp.o.d"
  "CMakeFiles/pangulu_kernels.dir/selector.cpp.o"
  "CMakeFiles/pangulu_kernels.dir/selector.cpp.o.d"
  "CMakeFiles/pangulu_kernels.dir/ssssm.cpp.o"
  "CMakeFiles/pangulu_kernels.dir/ssssm.cpp.o.d"
  "CMakeFiles/pangulu_kernels.dir/tstrf.cpp.o"
  "CMakeFiles/pangulu_kernels.dir/tstrf.cpp.o.d"
  "libpangulu_kernels.a"
  "libpangulu_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
