# Empty dependencies file for pangulu_kernels.
# This may be replaced when dependencies are built.
