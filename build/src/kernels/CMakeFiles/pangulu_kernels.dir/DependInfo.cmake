
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/calibrate.cpp" "src/kernels/CMakeFiles/pangulu_kernels.dir/calibrate.cpp.o" "gcc" "src/kernels/CMakeFiles/pangulu_kernels.dir/calibrate.cpp.o.d"
  "/root/repo/src/kernels/gessm.cpp" "src/kernels/CMakeFiles/pangulu_kernels.dir/gessm.cpp.o" "gcc" "src/kernels/CMakeFiles/pangulu_kernels.dir/gessm.cpp.o.d"
  "/root/repo/src/kernels/getrf.cpp" "src/kernels/CMakeFiles/pangulu_kernels.dir/getrf.cpp.o" "gcc" "src/kernels/CMakeFiles/pangulu_kernels.dir/getrf.cpp.o.d"
  "/root/repo/src/kernels/kernel_common.cpp" "src/kernels/CMakeFiles/pangulu_kernels.dir/kernel_common.cpp.o" "gcc" "src/kernels/CMakeFiles/pangulu_kernels.dir/kernel_common.cpp.o.d"
  "/root/repo/src/kernels/selector.cpp" "src/kernels/CMakeFiles/pangulu_kernels.dir/selector.cpp.o" "gcc" "src/kernels/CMakeFiles/pangulu_kernels.dir/selector.cpp.o.d"
  "/root/repo/src/kernels/ssssm.cpp" "src/kernels/CMakeFiles/pangulu_kernels.dir/ssssm.cpp.o" "gcc" "src/kernels/CMakeFiles/pangulu_kernels.dir/ssssm.cpp.o.d"
  "/root/repo/src/kernels/tstrf.cpp" "src/kernels/CMakeFiles/pangulu_kernels.dir/tstrf.cpp.o" "gcc" "src/kernels/CMakeFiles/pangulu_kernels.dir/tstrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/pangulu_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/pangulu_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
