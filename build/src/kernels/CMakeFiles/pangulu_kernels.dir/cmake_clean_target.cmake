file(REMOVE_RECURSE
  "libpangulu_kernels.a"
)
