# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("parallel")
subdirs("io")
subdirs("sparse")
subdirs("matgen")
subdirs("ordering")
subdirs("symbolic")
subdirs("block")
subdirs("kernels")
subdirs("runtime")
subdirs("baseline")
subdirs("solver")
subdirs("capi")
