file(REMOVE_RECURSE
  "CMakeFiles/pangulu_runtime.dir/device_model.cpp.o"
  "CMakeFiles/pangulu_runtime.dir/device_model.cpp.o.d"
  "CMakeFiles/pangulu_runtime.dir/sim.cpp.o"
  "CMakeFiles/pangulu_runtime.dir/sim.cpp.o.d"
  "CMakeFiles/pangulu_runtime.dir/threaded.cpp.o"
  "CMakeFiles/pangulu_runtime.dir/threaded.cpp.o.d"
  "CMakeFiles/pangulu_runtime.dir/trace.cpp.o"
  "CMakeFiles/pangulu_runtime.dir/trace.cpp.o.d"
  "CMakeFiles/pangulu_runtime.dir/trsv_sim.cpp.o"
  "CMakeFiles/pangulu_runtime.dir/trsv_sim.cpp.o.d"
  "libpangulu_runtime.a"
  "libpangulu_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
