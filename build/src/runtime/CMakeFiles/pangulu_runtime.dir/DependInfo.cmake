
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/device_model.cpp" "src/runtime/CMakeFiles/pangulu_runtime.dir/device_model.cpp.o" "gcc" "src/runtime/CMakeFiles/pangulu_runtime.dir/device_model.cpp.o.d"
  "/root/repo/src/runtime/sim.cpp" "src/runtime/CMakeFiles/pangulu_runtime.dir/sim.cpp.o" "gcc" "src/runtime/CMakeFiles/pangulu_runtime.dir/sim.cpp.o.d"
  "/root/repo/src/runtime/threaded.cpp" "src/runtime/CMakeFiles/pangulu_runtime.dir/threaded.cpp.o" "gcc" "src/runtime/CMakeFiles/pangulu_runtime.dir/threaded.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/runtime/CMakeFiles/pangulu_runtime.dir/trace.cpp.o" "gcc" "src/runtime/CMakeFiles/pangulu_runtime.dir/trace.cpp.o.d"
  "/root/repo/src/runtime/trsv_sim.cpp" "src/runtime/CMakeFiles/pangulu_runtime.dir/trsv_sim.cpp.o" "gcc" "src/runtime/CMakeFiles/pangulu_runtime.dir/trsv_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/block/CMakeFiles/pangulu_block.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/pangulu_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/pangulu_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/pangulu_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
