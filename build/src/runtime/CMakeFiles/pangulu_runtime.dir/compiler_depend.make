# Empty compiler generated dependencies file for pangulu_runtime.
# This may be replaced when dependencies are built.
