file(REMOVE_RECURSE
  "libpangulu_runtime.a"
)
