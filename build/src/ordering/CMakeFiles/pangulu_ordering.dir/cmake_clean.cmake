file(REMOVE_RECURSE
  "CMakeFiles/pangulu_ordering.dir/amd.cpp.o"
  "CMakeFiles/pangulu_ordering.dir/amd.cpp.o.d"
  "CMakeFiles/pangulu_ordering.dir/graph.cpp.o"
  "CMakeFiles/pangulu_ordering.dir/graph.cpp.o.d"
  "CMakeFiles/pangulu_ordering.dir/mc64.cpp.o"
  "CMakeFiles/pangulu_ordering.dir/mc64.cpp.o.d"
  "CMakeFiles/pangulu_ordering.dir/min_degree.cpp.o"
  "CMakeFiles/pangulu_ordering.dir/min_degree.cpp.o.d"
  "CMakeFiles/pangulu_ordering.dir/multilevel.cpp.o"
  "CMakeFiles/pangulu_ordering.dir/multilevel.cpp.o.d"
  "CMakeFiles/pangulu_ordering.dir/nested_dissection.cpp.o"
  "CMakeFiles/pangulu_ordering.dir/nested_dissection.cpp.o.d"
  "CMakeFiles/pangulu_ordering.dir/rcm.cpp.o"
  "CMakeFiles/pangulu_ordering.dir/rcm.cpp.o.d"
  "CMakeFiles/pangulu_ordering.dir/reorder.cpp.o"
  "CMakeFiles/pangulu_ordering.dir/reorder.cpp.o.d"
  "libpangulu_ordering.a"
  "libpangulu_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
