# Empty compiler generated dependencies file for pangulu_ordering.
# This may be replaced when dependencies are built.
