file(REMOVE_RECURSE
  "libpangulu_ordering.a"
)
