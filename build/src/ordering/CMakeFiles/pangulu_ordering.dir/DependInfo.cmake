
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordering/amd.cpp" "src/ordering/CMakeFiles/pangulu_ordering.dir/amd.cpp.o" "gcc" "src/ordering/CMakeFiles/pangulu_ordering.dir/amd.cpp.o.d"
  "/root/repo/src/ordering/graph.cpp" "src/ordering/CMakeFiles/pangulu_ordering.dir/graph.cpp.o" "gcc" "src/ordering/CMakeFiles/pangulu_ordering.dir/graph.cpp.o.d"
  "/root/repo/src/ordering/mc64.cpp" "src/ordering/CMakeFiles/pangulu_ordering.dir/mc64.cpp.o" "gcc" "src/ordering/CMakeFiles/pangulu_ordering.dir/mc64.cpp.o.d"
  "/root/repo/src/ordering/min_degree.cpp" "src/ordering/CMakeFiles/pangulu_ordering.dir/min_degree.cpp.o" "gcc" "src/ordering/CMakeFiles/pangulu_ordering.dir/min_degree.cpp.o.d"
  "/root/repo/src/ordering/multilevel.cpp" "src/ordering/CMakeFiles/pangulu_ordering.dir/multilevel.cpp.o" "gcc" "src/ordering/CMakeFiles/pangulu_ordering.dir/multilevel.cpp.o.d"
  "/root/repo/src/ordering/nested_dissection.cpp" "src/ordering/CMakeFiles/pangulu_ordering.dir/nested_dissection.cpp.o" "gcc" "src/ordering/CMakeFiles/pangulu_ordering.dir/nested_dissection.cpp.o.d"
  "/root/repo/src/ordering/rcm.cpp" "src/ordering/CMakeFiles/pangulu_ordering.dir/rcm.cpp.o" "gcc" "src/ordering/CMakeFiles/pangulu_ordering.dir/rcm.cpp.o.d"
  "/root/repo/src/ordering/reorder.cpp" "src/ordering/CMakeFiles/pangulu_ordering.dir/reorder.cpp.o" "gcc" "src/ordering/CMakeFiles/pangulu_ordering.dir/reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/pangulu_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
