# Empty dependencies file for pangulu_solver.
# This may be replaced when dependencies are built.
