file(REMOVE_RECURSE
  "libpangulu_solver.a"
)
