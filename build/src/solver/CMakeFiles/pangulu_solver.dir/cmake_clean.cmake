file(REMOVE_RECURSE
  "CMakeFiles/pangulu_solver.dir/solver.cpp.o"
  "CMakeFiles/pangulu_solver.dir/solver.cpp.o.d"
  "libpangulu_solver.a"
  "libpangulu_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
