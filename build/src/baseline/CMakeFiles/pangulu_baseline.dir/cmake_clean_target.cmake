file(REMOVE_RECURSE
  "libpangulu_baseline.a"
)
