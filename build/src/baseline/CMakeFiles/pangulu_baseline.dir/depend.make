# Empty dependencies file for pangulu_baseline.
# This may be replaced when dependencies are built.
