file(REMOVE_RECURSE
  "CMakeFiles/pangulu_baseline.dir/supernodal.cpp.o"
  "CMakeFiles/pangulu_baseline.dir/supernodal.cpp.o.d"
  "libpangulu_baseline.a"
  "libpangulu_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
