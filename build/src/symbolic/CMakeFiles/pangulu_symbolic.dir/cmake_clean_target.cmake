file(REMOVE_RECURSE
  "libpangulu_symbolic.a"
)
