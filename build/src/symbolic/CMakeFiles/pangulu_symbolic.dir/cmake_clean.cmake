file(REMOVE_RECURSE
  "CMakeFiles/pangulu_symbolic.dir/col_counts.cpp.o"
  "CMakeFiles/pangulu_symbolic.dir/col_counts.cpp.o.d"
  "CMakeFiles/pangulu_symbolic.dir/etree.cpp.o"
  "CMakeFiles/pangulu_symbolic.dir/etree.cpp.o.d"
  "CMakeFiles/pangulu_symbolic.dir/fill.cpp.o"
  "CMakeFiles/pangulu_symbolic.dir/fill.cpp.o.d"
  "CMakeFiles/pangulu_symbolic.dir/supernodes.cpp.o"
  "CMakeFiles/pangulu_symbolic.dir/supernodes.cpp.o.d"
  "libpangulu_symbolic.a"
  "libpangulu_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pangulu_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
