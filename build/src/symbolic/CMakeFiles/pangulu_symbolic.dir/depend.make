# Empty dependencies file for pangulu_symbolic.
# This may be replaced when dependencies are built.
