# Empty compiler generated dependencies file for bench_fig07_kernels.
# This may be replaced when dependencies are built.
