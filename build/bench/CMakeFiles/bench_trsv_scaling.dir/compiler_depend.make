# Empty compiler generated dependencies file for bench_trsv_scaling.
# This may be replaced when dependencies are built.
