file(REMOVE_RECURSE
  "CMakeFiles/bench_trsv_scaling.dir/bench_trsv_scaling.cpp.o"
  "CMakeFiles/bench_trsv_scaling.dir/bench_trsv_scaling.cpp.o.d"
  "bench_trsv_scaling"
  "bench_trsv_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trsv_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
