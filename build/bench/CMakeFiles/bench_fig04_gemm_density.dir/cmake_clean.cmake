file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_gemm_density.dir/bench_fig04_gemm_density.cpp.o"
  "CMakeFiles/bench_fig04_gemm_density.dir/bench_fig04_gemm_density.cpp.o.d"
  "bench_fig04_gemm_density"
  "bench_fig04_gemm_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_gemm_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
