# Empty dependencies file for bench_fig04_gemm_density.
# This may be replaced when dependencies are built.
