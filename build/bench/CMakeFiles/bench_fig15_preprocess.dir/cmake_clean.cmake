file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_preprocess.dir/bench_fig15_preprocess.cpp.o"
  "CMakeFiles/bench_fig15_preprocess.dir/bench_fig15_preprocess.cpp.o.d"
  "bench_fig15_preprocess"
  "bench_fig15_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
