# Empty dependencies file for bench_table4_kernel_time.
# This may be replaced when dependencies are built.
