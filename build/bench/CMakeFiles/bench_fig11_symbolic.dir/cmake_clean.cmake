file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_symbolic.dir/bench_fig11_symbolic.cpp.o"
  "CMakeFiles/bench_fig11_symbolic.dir/bench_fig11_symbolic.cpp.o.d"
  "bench_fig11_symbolic"
  "bench_fig11_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
