# Empty dependencies file for bench_fig05_sync_ratio.
# This may be replaced when dependencies are built.
