# Empty compiler generated dependencies file for bench_fig13_sync128.
# This may be replaced when dependencies are built.
