file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_sync128.dir/bench_fig13_sync128.cpp.o"
  "CMakeFiles/bench_fig13_sync128.dir/bench_fig13_sync128.cpp.o.d"
  "bench_fig13_sync128"
  "bench_fig13_sync128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_sync128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
