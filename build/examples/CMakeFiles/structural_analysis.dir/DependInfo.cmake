
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/structural_analysis.cpp" "examples/CMakeFiles/structural_analysis.dir/structural_analysis.cpp.o" "gcc" "examples/CMakeFiles/structural_analysis.dir/structural_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matgen/CMakeFiles/pangulu_matgen.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/pangulu_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/pangulu_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pangulu_io.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/pangulu_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/pangulu_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/pangulu_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pangulu_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/pangulu_block.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/pangulu_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/pangulu_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/pangulu_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
