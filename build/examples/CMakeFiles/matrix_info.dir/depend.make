# Empty dependencies file for matrix_info.
# This may be replaced when dependencies are built.
